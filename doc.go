// Package repro is a from-scratch Go reproduction of "Transparent
// Communication Management in Wireless Networks" (Kidston, University
// of Waterloo 1998; HotOS 1999): the Comma service-proxy architecture,
// the Execution-Environment Monitor, the Kati third-party control
// shell, and the TCP-Transparency-Support Filter, together with every
// substrate they need — a deterministic discrete-event network
// simulator, full TCP/IPv4/UDP stacks, and Mobile IP.
//
// Start with internal/core (assembled deployments), cmd/wsim (the
// experiment driver regenerating the thesis's tables and figures), and
// the runnable programs under examples/. DESIGN.md maps every paper
// artifact to the module and benchmark that reproduces it;
// EXPERIMENTS.md records the measured results.
package repro
