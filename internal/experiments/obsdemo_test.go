package experiments

import (
	"bytes"
	"testing"
)

// TestObsDeterminism is the acceptance gate of the observability
// layer: the full ObsDemo scenario — two EEM sessions, lossy ARQ
// wireless, packet tracing, metrics — run twice with the same seed
// must produce byte-identical output. Any wall-clock or map-iteration
// leak into the event log or snapshot fails this immediately.
func TestObsDeterminism(t *testing.T) {
	run := func() []byte {
		var buf bytes.Buffer
		if err := ObsDemo(7, &buf); err != nil {
			t.Fatalf("ObsDemo: %v", err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if bytes.Equal(a, b) {
		return
	}
	// Locate the first differing line for a useful failure message.
	la, lb := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
	for i := 0; i < len(la) && i < len(lb); i++ {
		if !bytes.Equal(la[i], lb[i]) {
			t.Fatalf("outputs diverge at line %d:\n  run1: %s\n  run2: %s", i+1, la[i], lb[i])
		}
	}
	t.Fatalf("outputs differ in length: %d vs %d bytes", len(a), len(b))
}
