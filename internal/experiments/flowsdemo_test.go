package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestFlowsDeterminism is the flow-analytics gate: two in-process runs
// of the flow-log scenario with the same seed must produce
// byte-identical output — transfer legs, flow aggregates, the rendered
// flows table, policy transitions, event log, metrics, everything —
// and that output must show the rule firing on flow.retrans_ratio and
// reverting after recovery.
func TestFlowsDeterminism(t *testing.T) {
	var a, b bytes.Buffer
	if err := FlowsDemo(42, &a); err != nil {
		t.Fatalf("run 1: %v\n%s", err, a.String())
	}
	if err := FlowsDemo(42, &b); err != nil {
		t.Fatalf("run 2: %v\n%s", err, b.String())
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		la, lb := strings.Split(a.String(), "\n"), strings.Split(b.String(), "\n")
		for i := 0; i < len(la) && i < len(lb); i++ {
			if la[i] != lb[i] {
				t.Fatalf("outputs diverge at line %d:\n run1: %s\n run2: %s", i+1, la[i], lb[i])
			}
		}
		t.Fatalf("outputs differ in length: %d vs %d bytes", a.Len(), b.Len())
	}
	out := a.String()
	for _, want := range []string{
		"policy\tfire\tshed", "policy\trevert\tshed",
		"flow.retrans_ratio", "=== flows (after lossy leg) ===",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("flow analytics output missing %q:\n%s", want, out)
		}
	}
}
