// Package experiments regenerates every table- and figure-shaped
// artifact of the thesis (see DESIGN.md's per-experiment index,
// E1–E16). Each experiment builds a fresh deterministic simulation via
// internal/core, drives the scenario, and prints its result through
// internal/trace. cmd/wsim runs them from the command line; the
// repository benchmarks wrap them for `go test -bench`.
package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Experiment is one runnable reproduction.
type Experiment struct {
	ID          string
	Paper       string // the thesis artifact it regenerates
	Description string
	Run         func(w io.Writer)
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID)
	}
	registry[e.ID] = e
}

// All returns the experiments sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		// Numeric-aware: E2 before E10.
		a, b := out[i].ID, out[j].ID
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return a < b
	})
	return out
}

// Run executes one experiment by ID.
func Run(id string, w io.Writer) error {
	e, ok := registry[id]
	if !ok {
		return fmt.Errorf("experiments: unknown id %q", id)
	}
	fmt.Fprintf(w, "=== %s — %s ===\n%s\n\n", e.ID, e.Paper, e.Description)
	e.Run(w)
	return nil
}

// RunAll executes every experiment in order.
func RunAll(w io.Writer) {
	for _, e := range All() {
		Run(e.ID, w)
		fmt.Fprintln(w)
	}
}
