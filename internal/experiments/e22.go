package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/filters"
	"repro/internal/ip"
	"repro/internal/media"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/trace"
)

func init() {
	register(Experiment{
		ID:          "E22",
		Paper:       "ch. 6 motivation (adaptive services via the EEM)",
		Description: "The adiscard filter follows link quality through a mobility trajectory: full quality on a fast cell, base-layer-only on a slow one, restored on return — with base frames on time throughout.",
		Run:         runE22,
	})
}

func runE22(w io.Writer) {
	run := func(adaptive bool) (*trace.Table, string) {
		sys := core.NewSystem(core.Config{
			Seed:     22,
			Wireless: netsim.LinkConfig{Bandwidth: 4e6, Delay: 10 * time.Millisecond, QueueLen: 30},
		})
		if adaptive {
			sys.MustCommand("load adiscard")
			sys.MustCommand(fmt.Sprintf("add adiscard %v 4000 %v 4001 1 3", core.WiredAddr, core.MobileAddr))
		}

		// Per-phase accounting at the mobile.
		type phase struct {
			name       string
			base, enh  int
			baseOnTime int
			baseSent   int
		}
		phases := []*phase{
			{name: "fast cell (4 Mb/s), 0–8 s"},
			{name: "slow cell (600 kb/s), 8–16 s"},
			{name: "fast cell again, 16–24 s"},
		}
		phaseAt := func(t sim.Time) *phase {
			switch {
			case t < sim.Time(8*time.Second):
				return phases[0]
			case t < sim.Time(16*time.Second):
				return phases[1]
			default:
				return phases[2]
			}
		}
		sent := map[uint32]sim.Time{}
		sys.MobileUDP.Bind(4001, func(_ ip.Addr, _ uint16, payload []byte) {
			f, err := media.UnmarshalFrame(payload)
			if err != nil {
				return
			}
			ph := phaseAt(sys.Sched.Now())
			if f.Layer == 0 {
				ph.base++
				if sys.Sched.Now().Sub(sent[f.Seq]) < 100*time.Millisecond {
					ph.baseOnTime++
				}
			} else {
				ph.enh++
			}
		})
		// 25 fps, 4 layers, 300 B base ≈ 900 kb/s full rate.
		src := media.NewLayeredSource(4, 300, 22)
		frames := 0
		var tick func()
		tick = func() {
			fs := src.Next()
			sent[fs[0].Seq] = sys.Sched.Now()
			phaseAt(sys.Sched.Now()).baseSent++
			for _, f := range fs {
				sys.WiredUDP.Send(4000, core.MobileAddr, 4001, media.MarshalFrame(f))
			}
			frames++
			if frames < 600 {
				sys.Sched.After(40*time.Millisecond, tick)
			}
		}
		sys.Sched.After(0, tick)

		sys.Sched.RunFor(8 * time.Second)
		sys.Wireless.Shape(netsim.DirBoth, netsim.Shaping{Fields: netsim.ShapeBandwidth, Bandwidth: 600e3})
		sys.Sched.RunFor(8 * time.Second)
		sys.Wireless.Shape(netsim.DirBoth, netsim.Shaping{Fields: netsim.ShapeBandwidth, Bandwidth: 4e6})
		sys.Sched.RunFor(9 * time.Second)

		mode := "no service"
		if adaptive {
			mode = "adiscard (EEM-driven)"
		}
		t := trace.NewTable(fmt.Sprintf("E22/%s", mode),
			"phase", "base on time", "enh. frames delivered")
		for _, ph := range phases {
			t.AddRow(ph.name, fmt.Sprintf("%d/%d", ph.baseOnTime, ph.baseSent), ph.enh)
		}
		extra := ""
		if adaptive {
			k := filter.Key{SrcIP: core.WiredAddr, SrcPort: 4000, DstIP: core.MobileAddr, DstPort: 4001}
			if st, ok := filters.ADiscardStatsFor(k); ok {
				extra = fmt.Sprintf("adaptations: %d, final layer threshold: %d",
					st.Adaptations, st.CurrentMaxLayer)
			}
		}
		return t, extra
	}

	t1, _ := run(false)
	t1.Fprint(w)
	fmt.Fprintln(w)
	t2, extra := run(true)
	t2.Fprint(w)
	if extra != "" {
		fmt.Fprintln(w, extra)
	}
	fmt.Fprintln(w, `
shape check: without the service, the slow cell destroys base-layer timing
(the full stream needs 900 kb/s). The EEM-driven adiscard sheds enhancement
layers on the slow cell, keeps base frames on time through all three phases,
and restores the enhancement layers when the mobile returns to a fast cell —
"minimal operation can continue and regular operation resume" (thesis ch. 6).`)
}
