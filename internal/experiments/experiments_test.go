package experiments_test

import (
	"strings"
	"testing"

	"repro/internal/experiments"
)

func TestRegistryComplete(t *testing.T) {
	all := experiments.All()
	if len(all) != 22 {
		t.Fatalf("registered %d experiments, want 22 (E1–E22)", len(all))
	}
	// Numeric-aware ordering.
	if all[0].ID != "E1" || all[9].ID != "E10" || all[21].ID != "E22" {
		var ids []string
		for _, e := range all {
			ids = append(ids, e.ID)
		}
		t.Fatalf("ordering: %v", ids)
	}
	for _, e := range all {
		if e.Paper == "" || e.Description == "" || e.Run == nil {
			t.Errorf("%s incomplete: %+v", e.ID, e)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	var sb strings.Builder
	if err := experiments.Run("E99", &sb); err == nil {
		t.Fatal("unknown experiment ran")
	}
}

// TestExperimentOutputs runs every experiment and checks for the
// signature content each must produce. The heavier sweeps are skipped
// under -short.
func TestExperimentOutputs(t *testing.T) {
	slow := map[string]bool{"E7": true, "E8": true, "E11": true, "E15": true, "E18": true, "E19": true, "E21": true, "E22": true}
	want := map[string][]string{
		"E1":  {"telnet", "report", "rdrop", "11.11.10.99 7 -> 11.11.10.10 1169", "Connection closed."},
		"E2":  {"sysUpTime changed: 1000", "sysUpTime changed: 2000", "no update"},
		"E3":  {"kati> streams", "[tcp,wsize]", "ipForwDatagrams"},
		"E4":  {"seq=1461 len=80", "ack=2921", "completed=true"},
		"E5":  {"wireless", "delivered intact: true"},
		"E6":  {"Comma(+Kati)", "Snoop", "BSSP"},
		"E7":  {"plain", "snoop", "split", "shape check"},
		"E8":  {"2048", "shape check"},
		"E9":  {"with ZWSM", "plain TCP", "persist probes"},
		"E10": {"sender completed", "true"},
		"E11": {"text (repetitive)", "image (random pixels)", "intact"},
		"E12": {"no discard", "discard >0", "250/250"},
		"E13": {"triangular", "binding cache", "lost"},
		"E14": {"RGB image -> mono", "text preserved: true"},
		"E15": {"filters in queue", "ns/packet"},
		"E16": {"sender completed cleanly:        true", "⊆ original:      true"},
		"E17": {"I-TCP split", "completed cleanly", "knows delivery failed"},
		"E18": {"interactive alone", "wsize cap on bulk", "shape check"},
		"E19": {"Bernoulli", "Gilbert", "finding"},
		"E20": {"no service", "cache filter at proxy", "shape check"},
		"E21": {"link ARQ", "snoop (TCP-aware)", "finding"},
		"E22": {"slow cell", "adaptations", "shape check"},
	}
	for _, e := range experiments.All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			if testing.Short() && slow[e.ID] {
				t.Skip("slow sweep")
			}
			var sb strings.Builder
			if err := experiments.Run(e.ID, &sb); err != nil {
				t.Fatal(err)
			}
			out := sb.String()
			if len(out) < 100 {
				t.Fatalf("suspiciously short output:\n%s", out)
			}
			for _, w := range want[e.ID] {
				if !strings.Contains(out, w) {
					t.Errorf("output missing %q:\n%s", w, out)
				}
			}
		})
	}
}

// TestExperimentsDeterministic: the seeded experiments produce
// identical output across runs (E15's wall-clock table excluded).
func TestExperimentsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs experiments twice")
	}
	for _, id := range []string{"E1", "E4", "E5", "E9", "E10", "E13", "E17"} {
		var a, b strings.Builder
		if err := experiments.Run(id, &a); err != nil {
			t.Fatal(err)
		}
		if err := experiments.Run(id, &b); err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Errorf("%s not deterministic", id)
		}
	}
}
