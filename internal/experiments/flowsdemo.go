package experiments

import (
	"crypto/sha256"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/netsim"
)

// FlowsDemo is the flow-log analytics scenario behind `wsim -flows`
// and `make flows-determinism`: the policy loop closed over
// traffic-derived variables instead of link metrics. The proxy's flow
// log accumulates per-flow L4 records (retransmissions by sequence
// regression, zero-window events, SYN→SYN-ACK and data→ACK RTT) on the
// intercept path; their fleet aggregates are EEM variables, and a
// policy rule watches flow.retrans_ratio — retransmitted-per-data
// segments over the last aggregation window.
//
// An injected fault makes the wireless link lossy without touching its
// bandwidth, so no link-level variable moves: only the flow log sees
// the degradation. The rule must fire on the climbing retrans ratio
// and shed load by clamping the streams' advertised windows (the
// thesis §8.2.2 wsize prioritization service), then revert once the
// loss clears and the ratio windows decay to zero. Three checksummed
// transfer legs bracket the cycle. Everything runs on virtual time:
// the full output must be byte-identical across runs with the same
// seed — TestFlowsDeterminism and `make flows-determinism` diff it.
func FlowsDemo(seed int64, w io.Writer) error {
	sys := core.NewSystem(core.Config{
		Seed:         seed,
		EEMInterval:  time.Second,
		ObsRetention: 1 << 16,
		Wireless:     netsim.LinkConfig{Bandwidth: 2e6, Delay: 10 * time.Millisecond},
		Policy: core.PolicyConfig{
			Period: 250 * time.Millisecond,
			Rules: []string{
				"shed when flow.retrans_ratio GT 0.02 exit 0.005 for 2" +
					" then load wsize on 11.11.10.99 0 11.11.10.10 0 rate 1",
			},
		},
	})
	fmt.Fprintf(w, "=== flow-log analytics (seed %d) ===\n", seed)

	// Static plumbing: interception with remarshal bookkeeping in both
	// directions — wsize rewrites reverse-direction ACK windows, so the
	// reverse streams need the tcp filter to reseal what it dirties.
	for _, c := range []string{"load tcp",
		"add tcp 11.11.10.99 0 11.11.10.10 0",
		"add tcp 11.11.10.10 0 11.11.10.99 0"} {
		sys.MustCommand(c)
	}
	sys.Sched.RunFor(time.Second)

	inj := faults.NewInjector(sys.Sched, sys.Obs)
	payload := repeatText(120_000)
	bulk := repeatText(1_200_000)
	policyEvents := func() (fires, reverts int) {
		for _, e := range sys.Obs.Events() {
			if e.Subsys != "policy" {
				continue
			}
			switch e.Kind {
			case "fire":
				fires++
			case "revert":
				reverts++
			}
		}
		return
	}
	flowLine := func(tag string) {
		fs := sys.Plane.FlowStats()
		fmt.Fprintf(w, "flow aggregates %-9s active=%d opened=%d closed=%d retrans=%d zero_win=%d rtt_samples=%d\n",
			tag, fs.Active, fs.Opened, fs.Closed, fs.Retrans, fs.ZeroWin, fs.RTTSamples)
	}
	leg := func(name string, payload []byte, srcPort, dstPort uint16, window time.Duration) error {
		res, err := sys.Transfer(payload, srcPort, dstPort, window)
		if err != nil {
			return fmt.Errorf("flows: leg %s: %w", name, err)
		}
		sum, want := sha256.Sum256(res.Received), sha256.Sum256(payload)
		intact := res.Completed && sum == want
		fmt.Fprintf(w, "leg %-8s sent=%d received=%d elapsed=%v intact=%v\n",
			name, res.Sent, len(res.Received), res.Elapsed, intact)
		if !intact {
			return fmt.Errorf("flows: leg %s corrupt or incomplete: completed=%v received=%d/%d",
				name, res.Completed, len(res.Received), res.Sent)
		}
		return nil
	}

	// Leg 1: clean link — the flow log records the stream, the ratio
	// stays at zero, and the engine must not act.
	if err := leg("baseline", payload, 7000, 7001, 30*time.Second); err != nil {
		return err
	}
	flowLine("baseline")
	if f, r := policyEvents(); f != 0 || r != 0 {
		return fmt.Errorf("flows: engine acted on a clean link (fires=%d reverts=%d)", f, r)
	}

	// The link turns lossy (5% Bernoulli) at unchanged bandwidth for
	// 60 s: invisible to every link variable, unmistakable in the flow
	// log once traffic flows through the loss.
	inj.DegradeLink("wireless", sys.Wireless, 100*time.Millisecond, 60*time.Second,
		2_000_000, netsim.Bernoulli{P: 0.05})

	// Leg 2: a 10x bulk transfer rides the lossy window. TCP's
	// retransmissions keep it intact; the flow log counts every one of
	// them, the ratio windows climb over the enter bound mid-transfer,
	// and the rule loads wsize — the rest of the leg runs under the
	// clamped window.
	if err := leg("lossy", bulk, 7100, 7101, 45*time.Second); err != nil {
		return err
	}
	flowLine("lossy")
	fires, _ := policyEvents()
	fmt.Fprintf(w, "lossy window: policy fires=%d\n", fires)
	if fires < 1 {
		return fmt.Errorf("flows: rule never fired on the retrans ratio (fires=%d)", fires)
	}

	fmt.Fprintf(w, "\n=== flows (after lossy leg) ===\n")
	fmt.Fprint(w, sys.MustCommand("flows 16"))

	// Past the fault window the loss is gone; with no retransmissions
	// feeding them, the ratio windows decay to zero, and the engine
	// must hold below the exit bound and revert.
	sys.Sched.RunFor(40 * time.Second)
	fires, reverts := policyEvents()
	fmt.Fprintf(w, "\nrestored: policy fires=%d reverts=%d\n", fires, reverts)
	if reverts < 1 {
		return fmt.Errorf("flows: rule never reverted after recovery (reverts=%d)", reverts)
	}

	// Leg 3: clean again, windows unclamped.
	if err := leg("clean", payload, 7200, 7201, 30*time.Second); err != nil {
		return err
	}
	flowLine("clean")

	fmt.Fprintf(w, "\n=== policy state ===\n")
	fmt.Fprint(w, sys.MustCommand("policy list"))
	fmt.Fprintf(w, "\n=== policy trace ===\n")
	fmt.Fprint(w, sys.MustCommand("policy trace 40"))
	fmt.Fprintf(w, "\n=== policy events ===\n")
	for _, e := range sys.Obs.Events() {
		if e.Subsys == "policy" {
			fmt.Fprintln(w, e.String())
		}
	}
	fmt.Fprintf(w, "\n=== metrics snapshot ===\n")
	fmt.Fprint(w, sys.Metrics.Table("flow analytics metrics").String())
	return nil
}
