package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/eem"
	"repro/internal/netsim"
)

// ObsDemo is the determinism-gate scenario behind `wsim -events`: a
// full deployment (wired host, proxy+EEM, lossy ARQ wireless link,
// mobile host, Kati workstation) with packet tracing on, two EEM
// client sessions, and a filtered bulk transfer. It dumps the complete
// observability event log and the unified metrics snapshot.
//
// Everything printed derives from virtual time and the seeded
// scheduler, so two runs with the same seed must be byte-identical —
// TestObsDeterminism and `make obs-determinism` diff exactly this
// output. The scenario deliberately exercises the historical
// nondeterminism sources: multiple EEM sessions ticked every second
// (map-ordered before the ordered-slice fix) and ARQ recovery
// accounting on the lossy link.
func ObsDemo(seed int64, w io.Writer) error {
	sys := core.NewSystem(core.Config{
		Seed:        seed,
		WithUser:    true,
		EEMInterval: time.Second,
		Wireless: netsim.LinkConfig{
			Bandwidth: 2e6,
			Delay:     10 * time.Millisecond,
			QueueLen:  32,
			Loss:      netsim.Bernoulli{P: 0.15},
			ARQ:       &netsim.ARQConfig{RetransDelay: 20 * time.Millisecond, MaxRetries: 4, PDup: 0.1},
		},
	})
	sys.Obs.SetTracePackets(true)

	// Service the transfer stream: tcp bookkeeping plus a 2% random
	// dropper, so the log shows queue builds and filter drops.
	sys.MustCommand("load tcp")
	sys.MustCommand("load rdrop")
	key := fmt.Sprintf("%v 5000 %v 5001", core.WiredAddr, core.MobileAddr)
	sys.MustCommand("add tcp " + key)
	sys.MustCommand("add rdrop " + key + " 2")

	// Two EEM sessions from different hosts, both watching an
	// always-in-range variable (one update per session per tick) plus
	// an interrupt registration. Their per-tick wire order is the
	// determinism hazard the ordered session registry fixes.
	always := eem.Attr{Lower: eem.LongValue(0), Op: eem.GTE}
	userClient := eem.NewComma(eem.SimDialer(sys.UserTCP))
	if err := userClient.Register(eem.ID{Var: "sysUpTime", Server: "11.11.9.1"}, always); err != nil {
		return fmt.Errorf("obsdemo: user register: %w", err)
	}
	// Interrupt-mode registration (WithCallback turns the server-side
	// interrupt flag on); the demo only cares about the wire traffic,
	// so the callback discards the notification.
	if err := userClient.Register(eem.ID{Var: "tcpCurrEstab", Server: "11.11.9.1"},
		eem.Attr{Lower: eem.LongValue(0), Op: eem.GT},
		eem.WithCallback(func(eem.ID, eem.Value) {})); err != nil {
		return fmt.Errorf("obsdemo: user register: %w", err)
	}
	wiredClient := eem.NewComma(eem.SimDialer(sys.WiredTCP))
	if err := wiredClient.Register(eem.ID{Var: "sysUpTime", Server: core.ProxyCtrlAddr.String()}, always); err != nil {
		return fmt.Errorf("obsdemo: wired register: %w", err)
	}
	sys.Sched.RunFor(500 * time.Millisecond)

	// A 16 KB transfer across the lossy wireless link, long enough for
	// a dozen EEM ticks.
	res, err := sys.Transfer(pattern(16*1024), 5000, 5001, 12*time.Second)
	if err != nil {
		return fmt.Errorf("obsdemo: transfer: %w", err)
	}
	fmt.Fprintf(w, "=== obs demo (seed %d) ===\n", seed)
	fmt.Fprintf(w, "transfer: sent=%d received=%d completed=%v elapsed=%v\n\n",
		res.Sent, len(res.Received), res.Completed, res.Elapsed)

	fmt.Fprintf(w, "=== obs event log ===\n")
	if err := sys.Obs.WriteLog(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\n=== metrics snapshot ===\n")
	fmt.Fprint(w, sys.Metrics.Table("comma deployment metrics").String())
	return nil
}
