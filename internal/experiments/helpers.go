package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/filters"
	"repro/internal/ip"
	"repro/internal/tcp"
)

// dropNth is a deterministic transparency-demo service filter: it
// drops exactly the nth data segment of the stream (1-based). It
// stands in for rdrop when an experiment needs a reproducible trace
// (Fig 8.3's worked example drops one specific packet).
type dropNth struct{}

func (*dropNth) Name() string              { return "dropnth" }
func (*dropNth) Priority() filter.Priority { return filter.Low }
func (*dropNth) Description() string       { return "drops exactly the nth data segment" }

func (f *dropNth) New(env filter.Env, k filter.Key, args []string) error {
	n := 2
	if len(args) > 0 {
		v, err := strconv.Atoi(args[0])
		if err != nil || v < 1 {
			return fmt.Errorf("dropnth: bad segment index %q", args[0])
		}
		n = v
	}
	seen := 0
	dropped := false
	_, err := env.Attach(k, filter.Hooks{
		Filter: "dropnth", Priority: filter.Low,
		Out: func(p *filter.Packet) {
			if p.TCP == nil || len(p.TCP.Payload) == 0 || p.Dropped() {
				return
			}
			if dropped {
				return
			}
			seen++
			if seen == n {
				dropped = true
				p.Drop()
			}
		},
	})
	return err
}

// registerExtras adds the experiment-only filters to a system catalog.
func registerExtras(sys *core.System) {
	sys.Catalog.Register("dropnth", func() filter.Factory { return &dropNth{} })
}

// segTracer records a one-line-per-segment trace at a stack, with
// sequence numbers rebased to the first SYN seen in each direction so
// traces read like the thesis figures (segments start at 1).
type segTracer struct {
	w     io.Writer
	label string
	base  map[string]uint32 // "src>dst" -> ISS
	lines int
	max   int
}

func newSegTracer(w io.Writer, label string, max int) *segTracer {
	return &segTracer{w: w, label: label, base: make(map[string]uint32), max: max}
}

// hook returns an OnSegment callback for a tcp.Stack.
func (st *segTracer) hook() func(send bool, src, dst ip.Addr, seg *tcp.Segment) {
	return func(send bool, src, dst ip.Addr, seg *tcp.Segment) {
		dirKey := src.String() + ">" + dst.String()
		revKey := dst.String() + ">" + src.String()
		if seg.Flags&tcp.FlagSYN != 0 {
			st.base[dirKey] = seg.Seq
			if seg.Flags&tcp.FlagACK != 0 {
				// SYN-ACK: ack rebases against the other direction.
			}
		}
		if st.lines >= st.max {
			return
		}
		st.lines++
		rel := seg.Seq - st.base[dirKey]
		relAck := seg.Ack - st.base[revKey]
		dir := "rcv"
		if send {
			dir = "snd"
		}
		fmt.Fprintf(st.w, "  %-6s %s: seq=%d len=%d ack=%d [%s]\n",
			st.label, dir, rel, len(seg.Payload), relAck, seg.FlagString())
	}
}

// runControlScript opens a control session from the wired host to the
// proxy's SP port, sends each command, and renders a telnet-style
// transcript (thesis Fig 5.3).
func runControlScript(w io.Writer, sys *core.System, commands []string) {
	conn, err := sys.WiredTCP.Connect(core.ProxyCtrlAddr, 12000)
	if err != nil {
		fmt.Fprintf(w, "connect: %v\n", err)
		return
	}
	fmt.Fprintf(w, "wired:~> telnet %v 12000\n", core.ProxyCtrlAddr)
	fmt.Fprintf(w, "Trying %v...\nConnected to proxy.\n", core.ProxyCtrlAddr)
	var pending []string
	conn.OnData = func(b []byte) {
		for _, line := range strings.Split(strings.TrimRight(string(b), "\n"), "\n") {
			fmt.Fprintln(w, line)
		}
	}
	send := func() {
		if len(pending) == 0 {
			conn.Close()
			return
		}
		cmd := pending[0]
		pending = pending[1:]
		fmt.Fprintln(w, cmd)
		conn.Write([]byte(cmd + "\n"))
	}
	pending = commands
	conn.OnEstablished = func() { send() }
	// Pace commands so replies interleave in order.
	for i := 0; i <= len(commands); i++ {
		sys.Sched.RunFor(200 * time.Millisecond)
		if i < len(commands) {
			send()
		}
	}
	fmt.Fprintln(w, "Connection closed.")
}

// pattern builds n bytes of deterministic, incompressible-ish data.
func pattern(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*31 + i/253)
	}
	return b
}

// repeatText builds ~n bytes of highly compressible text.
func repeatText(n int) []byte {
	const chunk = "the quick brown fox jumps over the lazy dog. "
	b := make([]byte, 0, n+len(chunk))
	for len(b) < n {
		b = append(b, chunk...)
	}
	return b[:n]
}

// randomBytes builds n bytes of seeded uniform noise (incompressible).
func randomBytes(seed int64, n int) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

// parseAddr wraps ip.ParseAddr for dialers.
func parseAddr(s string) (ip.Addr, error) { return ip.ParseAddr(s) }

// filterKeyFor names the forward key of a Transfer stream to port 5001.
func filterKeyFor(srcPort uint16) filter.Key {
	return filter.Key{SrcIP: core.WiredAddr, SrcPort: srcPort,
		DstIP: core.MobileAddr, DstPort: 5001}
}

// ttsfStats fetches TTSF stats for a stream key.
func ttsfStats(k filter.Key) (filters.TTSFStats, bool) {
	return filters.TTSFStatsFor(k)
}

// keepAliveStream opens a long-lived stream wired:7 -> mobile:1169
// with a trickle of data so filter queues stay populated.
func keepAliveStream(sys *core.System) *tcp.Conn {
	sys.MobileTCP.Listen(1169, func(c *tcp.Conn) {})
	client, err := sys.WiredTCP.ConnectFrom(7, core.MobileAddr, 1169)
	if err != nil {
		panic(err)
	}
	var trickle func()
	trickle = func() {
		if client.State() == tcp.StateEstablished {
			client.Write([]byte("tick "))
		}
		sys.Sched.After(500*time.Millisecond, trickle)
	}
	client.OnEstablished = func() { sys.Sched.After(0, trickle) }
	return client
}
