package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/tcp"
	"repro/internal/trace"
)

func init() {
	register(Experiment{
		ID:          "E19",
		Paper:       "§2.3 ablation (burst loss)",
		Description: "E7 repeated under Gilbert–Elliott burst loss instead of independent loss, at the same average rate.",
		Run:         runE19,
	})
}

func runE19(w io.Writer) {
	// Both models are tuned to the same ~5% average loss; the GE model
	// concentrates it into bursts (mean burst ≈ 3 packets).
	iid := netsim.Bernoulli{P: 0.05}
	mkGE := func() netsim.LossModel {
		return &netsim.GilbertElliott{PGB: 0.017, PBG: 0.33, PBad: 1.0}
	}
	t := trace.NewTable("E19: loss-model ablation at ≈5% average loss (300 KB, 2 Mb/s, 25 ms)",
		"loss model", "plain TCP KB/s", "snoop KB/s", "snoop advantage")
	for _, model := range []string{"independent (Bernoulli)", "bursty (Gilbert–Elliott)"} {
		goodput := map[string]float64{}
		for _, mode := range []string{"plain", "snoop"} {
			total := 0.0
			const seeds = 3
			for seed := int64(41); seed < 41+seeds; seed++ {
				var loss netsim.LossModel = iid
				if model != "independent (Bernoulli)" {
					loss = mkGE()
				}
				sys := core.NewSystem(core.Config{
					Seed: seed,
					TCP:  tcp.Config{RcvWnd: 16384},
					Wireless: netsim.LinkConfig{Bandwidth: 2e6, Delay: 25 * time.Millisecond,
						Loss: loss, QueueLen: 200},
				})
				sys.MustCommand("load tcp")
				sys.MustCommand("load launcher")
				svc := "tcp"
				if mode == "snoop" {
					sys.MustCommand("load snoop")
					svc = "tcp snoop"
				}
				sys.MustCommand(fmt.Sprintf("add launcher %v 0 %v 0 %s", core.WiredAddr, core.MobileAddr, svc))
				res, err := sys.Transfer(pattern(300_000), 7, 5001, 900*time.Second)
				if err == nil && res.Completed {
					total += float64(res.Sent) / res.Elapsed.Seconds() / 1000
				}
			}
			goodput[mode] = total / seeds
		}
		adv := goodput["snoop"] / goodput["plain"]
		t.AddRow(model, goodput["plain"], goodput["snoop"], fmt.Sprintf("%.2fx", adv))
	}
	t.Fprint(w)
	fmt.Fprintln(w, `
finding: at equal *average* loss, concentrating losses into bursts produces
fewer recovery events, so goodput is comparable (slightly better) for both
modes — the penalty of wireless loss is per-event, not per-packet. Snoop's
local-repair advantage persists under both models.`)
}
