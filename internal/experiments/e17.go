package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/ip"
	"repro/internal/itcp"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/trace"
)

func init() {
	register(Experiment{
		ID:          "E17",
		Paper:       "§5.1.2 (the end-to-end semantics problem)",
		Description: "A permanent mid-transfer disconnection: the split-connection proxy (I-TCP) silently loses data it already acknowledged; end-to-end TCP — whose ack semantics every Comma service preserves — never lies to the sender.",
		Run:         runE17,
	})
}

// splitRig builds wired — proxy — wireless — mobile with no service
// proxy, optionally attaching an I-TCP relay on the middle node.
type splitRig struct {
	sched          *sim.Scheduler
	wired, mobile  *netsim.Node
	wStack, mStack *tcp.Stack
	relay          *itcp.Relay
	wless          *netsim.Link
	proxyNode      *netsim.Node
}

func newSplitRig(seed int64, wireless netsim.LinkConfig, withRelay bool) *splitRig {
	s := sim.NewScheduler(seed)
	n := netsim.New(s)
	w := n.AddNode("wired")
	p := n.AddNode("proxy")
	m := n.AddNode("mobile")
	p.Forwarding = true
	wire := netsim.LinkConfig{Bandwidth: 100e6, Delay: 2 * time.Millisecond}
	wiredA := ip.MustParseAddr("11.11.10.99")
	proxyA := ip.MustParseAddr("11.11.10.1")
	mobileA := ip.MustParseAddr("11.11.10.10")
	lw := n.Connect(w, wiredA, p, proxyA, wire)
	lm := n.Connect(p, ip.MustParseAddr("11.11.11.1"), m, mobileA, wireless)
	w.AddDefaultRoute(lw.IfaceA())
	m.AddDefaultRoute(lm.IfaceB())
	p.AddRoute(mobileA.Mask(32), 32, lm.IfaceA())

	r := &splitRig{sched: s, wired: w, mobile: m, wless: lm, proxyNode: p}
	r.wStack = tcp.NewStack(w, tcp.Config{})
	r.mStack = tcp.NewStack(m, tcp.Config{})
	w.RegisterProto(ip.ProtoTCP, func(h ip.Header, pl, raw []byte, in *netsim.Iface) { r.wStack.Deliver(h.Src, h.Dst, pl) })
	m.RegisterProto(ip.ProtoTCP, func(h ip.Header, pl, raw []byte, in *netsim.Iface) { r.mStack.Deliver(h.Src, h.Dst, pl) })
	if withRelay {
		relay, err := itcp.New(p, mobileA, []uint16{5001}, tcp.Config{}, tcp.Config{})
		if err != nil {
			panic(err)
		}
		r.relay = relay
	}
	return r
}

func runE17(w io.Writer) {
	t := trace.NewTable("E17: permanent disconnection at t=1s of a 200 KB transfer (500 kb/s wireless)",
		"proxy model", "sender outcome", "sender believes delivered", "mobile actually got", "silently lost")
	mobileA := ip.MustParseAddr("11.11.10.10")

	type outcome struct {
		model    string
		sender   string
		believed int64
		received int
		stranded int64
	}
	run := func(model string) outcome {
		wireless := netsim.LinkConfig{Bandwidth: 500e3, Delay: 20 * time.Millisecond}
		r := newSplitRig(17, wireless, model == "I-TCP split")
		rcvd := 0
		r.mStack.Listen(5001, func(c *tcp.Conn) { c.OnData = func(b []byte) { rcvd += len(b) } })
		payload := pattern(200_000)
		client, _ := r.wStack.Connect(mobileA, 5001)
		closedClean := false
		client.OnClose = func(err error) { closedClean = err == nil }
		client.OnEstablished = func() { client.Write(payload); client.Close() }
		r.sched.RunFor(time.Second)
		r.wless.SetDown(true) // the mobile never comes back
		r.sched.RunFor(300 * time.Second)

		o := outcome{model: model, received: rcvd}
		st := client.Stats()
		o.believed = st.BytesAcked
		switch {
		case closedClean:
			o.sender = "completed cleanly"
		case client.State() == tcp.StateClosed:
			o.sender = "failed (reset)"
		default:
			o.sender = fmt.Sprintf("stuck in %v (knows delivery failed)", client.State())
		}
		if r.relay != nil {
			o.stranded = r.relay.Stranded()
		} else {
			o.stranded = 0 // direct TCP: acked == delivered, nothing silent
		}
		return o
	}

	for _, model := range []string{"none (end-to-end TCP)", "I-TCP split"} {
		o := run(model)
		t.AddRow(o.model, o.sender, o.believed, o.received, o.stranded)
	}
	t.Fprint(w)
	fmt.Fprintln(w, `
The split connection acknowledged the whole transfer to the sender before the
mobile received it; when the mobile vanished, the data was silently lost while
the sender had already closed successfully. End-to-end TCP (and therefore
every Comma service, which preserves its ack semantics via the TTSF) leaves
the sender stuck with unacknowledged data — it *knows* delivery failed. This
is the §5.1.2 argument for transparent stream modification over splitting.`)
}
