package experiments

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/obs"
)

// TestMigrateDeterminism is the migration gate: two in-process runs of
// the stream-migration scenario with the same seed must produce
// byte-identical output — leg outcomes, migration events (including the
// injected faults and the retries they provoke), and the metrics
// snapshot. The scenario itself asserts the ownership invariant on
// every leg; this test asserts the whole fault matrix replays exactly.
func TestMigrateDeterminism(t *testing.T) {
	var a, b bytes.Buffer
	if err := MigrateDemo(23, &a); err != nil {
		t.Fatalf("run 1: %v\n%s", err, a.String())
	}
	if err := MigrateDemo(23, &b); err != nil {
		t.Fatalf("run 2: %v\n%s", err, b.String())
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		la, lb := strings.Split(a.String(), "\n"), strings.Split(b.String(), "\n")
		for i := 0; i < len(la) && i < len(lb); i++ {
			if la[i] != lb[i] {
				t.Fatalf("outputs diverge at line %d:\n run1: %s\n run2: %s", i+1, la[i], lb[i])
			}
		}
		t.Fatalf("outputs differ in length: %d vs %d bytes", a.Len(), b.Len())
	}
	out := a.String()
	for _, want := range []string{
		"leg clean", "leg corrupt-offer", "leg crash-post-commit", "leg round-trip",
		"outcomes account for every attempt",
		"migrate.attempts", "migrate.completed", "migrate.resumed", "migrate.aborted", "migrate.bytes",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("migration output missing %q:\n%s", want, out)
		}
	}
}

// migrateOnce runs one clean A→B migration on a system with the given
// shard count and returns the migrate.* metric samples afterwards.
func migrateOnce(t *testing.T, shards int) []obs.Sample {
	t.Helper()
	sys := core.NewSystem(core.Config{
		Seed:        5,
		DoubleProxy: true,
		Migration:   true,
		Shards:      shards,
		Wireless:    netsim.LinkConfig{Bandwidth: 2e6, Delay: 10 * time.Millisecond},
	})
	const srcPort, dstPort = 7000, 8000
	keyStr := fmt.Sprintf("11.11.10.99 %d 11.11.10.10 %d", srcPort, dstPort)
	for _, c := range []string{
		"load tcp", "load ttsf",
		"add tcp " + keyStr, "add ttsf " + keyStr,
	} {
		sys.MustCommand(c)
	}
	var cmdOut string
	sys.Sched.After(300*time.Millisecond, func() {
		cmdOut = sys.Plane.Command("migrate " + keyStr + " 11.11.11.2")
	})
	res, err := sys.Transfer(repeatText(128_000), srcPort, dstPort, 30*time.Second)
	if err != nil || !res.Completed {
		t.Fatalf("shards=%d: transfer failed: err=%v completed=%v", shards, err, res.Completed)
	}
	if !strings.HasPrefix(cmdOut, "migrating") {
		t.Fatalf("shards=%d: migrate command answered %q", shards, cmdOut)
	}
	a, c, r, ab := sys.Migrate.Counters()
	if a != 1 || c != 1 || r != 0 || ab != 0 {
		t.Fatalf("shards=%d: outcome attempts=%d completed=%d resumed=%d aborted=%d, want one clean completion",
			shards, a, c, r, ab)
	}
	var out []obs.Sample
	for _, s := range sys.Metrics.Snapshot() {
		if strings.HasPrefix(s.Name, "migrate") {
			out = append(out, s)
		}
	}
	return out
}

// TestMigrateMetricsAcrossShards pins the migration counters to the
// unified metrics registry regardless of data-plane sharding: the same
// clean migration on a 1-shard and a 4-shard plane must publish
// identical migrate.* samples (one attempt, one completion, same
// snapshot byte count) — sharding changes where streams live, not what
// the migration plane reports.
func TestMigrateMetricsAcrossShards(t *testing.T) {
	one := migrateOnce(t, 1)
	four := migrateOnce(t, 4)
	if len(one) == 0 {
		t.Fatal("no migrate.* metrics registered")
	}
	if !reflect.DeepEqual(one, four) {
		t.Fatalf("migrate metrics diverge across shard counts:\n 1 shard: %+v\n 4 shards: %+v", one, four)
	}
	want := map[string]string{
		"migrate.attempts": "1", "migrate.completed": "1",
		"migrate.resumed": "0", "migrate.aborted": "0",
	}
	for _, s := range one {
		if v, ok := want[s.Name]; ok && s.Value != v {
			t.Fatalf("metric %s = %s, want %s", s.Name, s.Value, v)
		}
	}
}
