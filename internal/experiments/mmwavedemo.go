package experiments

import (
	"crypto/sha256"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
)

// MMWaveTrace is the committed blockage trace behind `wsim -mmwave`:
// one 5s urban-canyon cycle, looped. A long line-of-sight segment at
// full mmWave rate, a hard blockage (zero capacity — the beam is
// gone, not the link), a short LoS gap, and a soft NLoS segment where
// a reflected path carries a fraction of the rate with extra delay,
// jitter, and loss. Committing the trace makes the scenario's link
// dynamics part of its reproducible input (the same segments at the
// same virtual-time boundaries every run).
func MMWaveTrace() netsim.TraceProfile {
	return netsim.TraceProfile{
		Name: "mmwave-urban",
		Segments: []netsim.TraceSegment{
			{Dur: 1200 * time.Millisecond, Shape: netsim.Shaping{
				Fields: netsim.ShapeAll, Bandwidth: 20e6, Delay: 2 * time.Millisecond}},
			{Dur: 1500 * time.Millisecond, Shape: netsim.Shaping{
				Fields: netsim.ShapeBandwidth, Bandwidth: 0}},
			{Dur: 800 * time.Millisecond, Shape: netsim.Shaping{
				Fields: netsim.ShapeAll, Bandwidth: 20e6, Delay: 2 * time.Millisecond}},
			{Dur: 1500 * time.Millisecond, Shape: netsim.Shaping{
				Fields: netsim.ShapeAll, Bandwidth: 3e6, Delay: 3 * time.Millisecond,
				Jitter: 3 * time.Millisecond, Loss: netsim.Bernoulli{P: 0.02}}},
		},
	}
}

// mmLeg describes one comparison leg of the scenario.
type mmLeg struct {
	name  string
	mwin  bool     // launcher-spawned tcp+mwin chain on the proxy
	rules []string // policy rules (arms the engine when non-empty)
}

// mmResult is what one leg measured.
type mmResult struct {
	name           string
	elapsed        time.Duration
	bps            float64
	peak           int   // mmWave transmit-queue high-water mark
	lteBytes       int64 // bytes the LTE leg carried toward the mobile
	zeroCap        int64 // packets lost to zero-capacity blockage
	fires, reverts int
}

// MMWaveDemo is the 5G scenario behind `wsim -mmwave`: a dual-link
// (mmWave + LTE) deployment replaying the committed blockage trace,
// compared across three legs built from the same seed:
//
//	baseline   no proxy services — TCP rides the raw mmWave leg and
//	           eats every blockage as RTO backoff
//	mwin       the delay-aware window filter sizes the wired sender's
//	           view of the receive window to the measured wireless BDP
//	mwin+shed  mwin plus a policy rule on the link.bw EEM variable that
//	           sheds traffic to the LTE leg during hard blockage via
//	           the `mmwave shed` command and brings it back on LoS
//
// The scenario asserts checksum-clean delivery on every leg, that mwin
// keeps the proxy's mmWave buffer occupancy below the baseline's, and
// that the full pack moves data at >= 1.5x the no-proxy baseline.
// Everything runs on virtual time; output is byte-identical per seed.
func MMWaveDemo(seed int64, w io.Writer) error {
	trace := MMWaveTrace()
	fmt.Fprintf(w, "=== 5G mmWave dual-connectivity scenario (seed %d) ===\n", seed)
	fmt.Fprintf(w, "blockage trace %q: %d segments, loop period %v\n",
		trace.Name, len(trace.Segments), trace.Duration())
	for i, seg := range trace.Segments {
		fmt.Fprintf(w, "  seg %d  %-6v %v\n", i, seg.Dur, seg.Shape)
	}

	payload := pattern(8 << 20)
	want := sha256.Sum256(payload)
	shedRule := "shed when link.bw:1 LT 1000000 for 1 then command mmwave:shed" +
		" on 0.0.0.0 0 0.0.0.0 0 rate 1"
	legs := []mmLeg{
		{name: "baseline"},
		{name: "mwin", mwin: true},
		{name: "mwin+shed", mwin: true, rules: []string{shedRule}},
	}

	results := make([]mmResult, 0, len(legs))
	for _, leg := range legs {
		r, err := runMMWaveLeg(w, seed, payload, want, leg)
		if err != nil {
			return err
		}
		results = append(results, r)
	}
	base, mwin, managed := results[0], results[1], results[2]

	fmt.Fprintf(w, "\nRESULT mmwave baseline_bps=%.0f mwin_bps=%.0f managed_bps=%.0f"+
		" baseline_peak=%d mwin_peak=%d managed_peak=%d speedup=%.2f\n",
		base.bps, mwin.bps, managed.bps, base.peak, mwin.peak, managed.peak,
		managed.bps/base.bps)

	if mwin.peak >= base.peak {
		return fmt.Errorf("mmwave: mwin peak mmWave queue %d not below baseline %d",
			mwin.peak, base.peak)
	}
	if managed.peak >= base.peak {
		return fmt.Errorf("mmwave: managed peak mmWave queue %d not below baseline %d",
			managed.peak, base.peak)
	}
	if managed.bps < 1.5*base.bps {
		return fmt.Errorf("mmwave: managed goodput %.0f b/s under 1.5x baseline %.0f b/s",
			managed.bps, base.bps)
	}
	if managed.fires < 2 || managed.reverts < 1 {
		return fmt.Errorf("mmwave: shed rule barely exercised (fires=%d reverts=%d)",
			managed.fires, managed.reverts)
	}
	if base.lteBytes != 0 || mwin.lteBytes != 0 {
		return fmt.Errorf("mmwave: LTE leg carried traffic without shedding (%d/%d bytes)",
			base.lteBytes, mwin.lteBytes)
	}
	if managed.lteBytes == 0 {
		return fmt.Errorf("mmwave: shed leg never used LTE")
	}
	return nil
}

// runMMWaveLeg builds a fresh system (same seed — the legs differ only
// in proxy services), replays the trace, and pushes the payload.
func runMMWaveLeg(w io.Writer, seed int64, payload []byte, want [32]byte, leg mmLeg) (mmResult, error) {
	sys := core.NewSystem(core.Config{
		Seed:         seed,
		MMWave:       true,
		EEMInterval:  time.Second,
		ObsRetention: 1 << 16,
		// A deep transmit queue (128 vs the 64 default) keeps the buffer
		// from censoring the occupancy comparison: an unmanaged sender is
		// free to pile up what the blocked leg cannot drain, so the peak
		// measures behavior, not the cap.
		Wireless: netsim.LinkConfig{Bandwidth: 20e6, Delay: 2 * time.Millisecond,
			QueueLen: 128},
		// A low-latency anchor leg (5G NSA keeps the sub-6GHz carrier a
		// few ms away, not classic-LTE 25ms): the smaller the delay gap,
		// the shorter the reordering window when traffic swings back to
		// mmWave after a shed.
		LTE:    netsim.LinkConfig{Bandwidth: 12e6, Delay: 10 * time.Millisecond},
		Policy: core.PolicyConfig{Period: 100 * time.Millisecond, Rules: leg.rules},
	})
	if leg.mwin {
		sys.MustCommand("load tcp")
		sys.MustCommand("load mwin")
		sys.MustCommand("load launcher")
		sys.MustCommand("add launcher 11.11.10.99 0 11.11.10.10 0 tcp mwin")
	}
	player := MMWaveTrace().Replay(sys.Sched, sys.Wireless, netsim.DirBoth, true)
	defer player.Stop()
	sys.Sched.RunFor(300 * time.Millisecond)

	res, err := sys.Transfer(payload, 7000, 5001, 30*time.Second)
	if err != nil {
		return mmResult{}, fmt.Errorf("mmwave: leg %s: %w", leg.name, err)
	}
	sum := sha256.Sum256(res.Received)
	if !res.Completed || sum != want {
		return mmResult{}, fmt.Errorf("mmwave: leg %s corrupt or incomplete: completed=%v received=%d/%d",
			leg.name, res.Completed, len(res.Received), res.Sent)
	}

	out := mmResult{
		name:     leg.name,
		elapsed:  res.Elapsed,
		bps:      float64(len(payload)) * 8 / res.Elapsed.Seconds(),
		peak:     sys.Wireless.StatsAB().PeakQueue,
		lteBytes: sys.LTELink.StatsAB().Bytes,
		zeroCap:  sys.Wireless.StatsAB().ZeroCapDrops + sys.Wireless.StatsBA().ZeroCapDrops,
	}
	for _, e := range sys.Obs.Events() {
		if e.Subsys != "policy" {
			continue
		}
		switch e.Kind {
		case "fire":
			out.fires++
		case "revert":
			out.reverts++
		}
	}
	fmt.Fprintf(w, "leg %-10s elapsed=%-12v goodput=%6.2f Mb/s peak_mmwave_queue=%-3d"+
		" lte_bytes=%-8d zero_cap_drops=%-5d fires=%d reverts=%d sha=%x\n",
		leg.name, res.Elapsed, out.bps/1e6, out.peak,
		out.lteBytes, out.zeroCap, out.fires, out.reverts, sum[:8])
	if leg.rules != nil {
		fmt.Fprintf(w, "  %s\n", sys.Plane.Command("mmwave status"))
		fmt.Fprintf(w, "  shed timeline (first 10):\n")
		shown := 0
		for _, e := range sys.Obs.Events() {
			if e.Subsys != "mmwave" {
				continue
			}
			if shown < 10 {
				fmt.Fprintf(w, "    %s\n", e.String())
			}
			shown++
		}
		fmt.Fprintf(w, "  shed events total: %d\n", shown)
	}
	return out, nil
}
