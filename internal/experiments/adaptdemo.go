package experiments

import (
	"crypto/sha256"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/eem"
	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/policy"
)

// AdaptDemo is the adaptive-services scenario behind `wsim -adapt` and
// `make adapt`: the closed EEM→SP control loop of the thesis running
// end to end. A double-proxy deployment carries bulk transfers while
// policy engines on both proxies watch the wireless bandwidth through
// the comma_* client API. When an injected fault degrades the link
// below the rules' enter bound, the A engine loads and attaches the
// compress filter and the B engine the decompressor — no operator, no
// Kati session. When the link recovers past the exit bound, both
// engines withdraw their filters again.
//
// Three transfer legs bracket the cycle: a baseline leg before the
// fault, a compressed leg during it (which must put well under half
// the payload bytes on the wireless link), and a restored leg after
// the revert (which must put the full payload back on the air). The
// scenario asserts one complete load→hold→unload hysteresis cycle on
// each engine and checksum-clean delivery on every leg. Everything
// runs on virtual time, so the full output must be byte-identical
// across runs with the same seed; TestPolicyDeterminism and
// `make adapt` diff exactly this output.
func AdaptDemo(seed int64, w io.Writer) error {
	const (
		enterBound = 1_000_000 // b/s: rules engage below this
		exitBound  = 1_500_000 // b/s: and disengage at/above this
		wild       = " on 11.11.10.99 0 11.11.10.10 0 rate 1"
	)
	sys := core.NewSystem(core.Config{
		Seed:         seed,
		DoubleProxy:  true,
		EEMInterval:  time.Second,
		ObsRetention: 1 << 16,
		Wireless:     netsim.LinkConfig{Bandwidth: 2e6, Delay: 10 * time.Millisecond},
		Policy: core.PolicyConfig{
			Period: 250 * time.Millisecond,
			Rules: []string{
				fmt.Sprintf("compress when ifSpeed:1 LT %d exit %d for 2 then load comp:6%s",
					enterBound, exitBound, wild),
			},
		},
	})
	fmt.Fprintf(w, "=== adaptive services (seed %d) ===\n", seed)

	// The B proxy gets its own engine: same EEM server (the A proxy
	// host's ifSpeed:1 IS the shared wireless link), its own client
	// API session, and the B data plane as control surface.
	cmB := eem.NewComma(eem.SimDialer(sys.WiredTCP))
	cmB.UseScheduler(sys.Sched)
	cmB.SetObs(sys.Obs)
	engB := policy.New(policy.Config{
		Sched:   sys.Sched,
		Comma:   cmB,
		Control: sys.PlaneB,
		Server:  core.ProxyCtrlAddr.String(),
		Bus:     sys.Obs,
		Period:  250 * time.Millisecond,
	})
	engB.RegisterMetrics(sys.Metrics, "policyB")
	if err := engB.AddRule(fmt.Sprintf("expand when ifSpeed:1 LT %d exit %d for 2 then load decomp%s",
		enterBound, exitBound, wild)); err != nil {
		return fmt.Errorf("adapt: B rule: %w", err)
	}
	engB.Start()

	// Static plumbing both engines build on: interception and sequence
	// fixing on every wired→mobile stream. The adaptive comp/decomp
	// registrations are appended behind these when the rules fire, so
	// streams spawned during the degraded window get the full chain.
	for _, c := range []string{"load tcp", "load ttsf",
		"add tcp 11.11.10.99 0 11.11.10.10 0", "add ttsf 11.11.10.99 0 11.11.10.10 0"} {
		sys.MustCommand(c)
		sys.MustCommandB(c)
	}
	sys.Sched.RunFor(time.Second)

	inj := faults.NewInjector(sys.Sched, sys.Obs)
	payload := repeatText(120_000)
	policyEvents := func() (fires, reverts int) {
		for _, e := range sys.Obs.Events() {
			if e.Subsys != "policy" {
				continue
			}
			switch e.Kind {
			case "fire":
				fires++
			case "revert":
				reverts++
			}
		}
		return
	}
	leg := func(name string, srcPort, dstPort uint16, window time.Duration) (carried int64, err error) {
		before := sys.Wireless.StatsAB().Bytes
		res, err := sys.Transfer(payload, srcPort, dstPort, window)
		if err != nil {
			return 0, fmt.Errorf("adapt: leg %s: %w", name, err)
		}
		carried = sys.Wireless.StatsAB().Bytes - before
		sum, want := sha256.Sum256(res.Received), sha256.Sum256(payload)
		intact := res.Completed && sum == want
		fmt.Fprintf(w, "leg %-10s sent=%d received=%d wireless=%d ratio=%.2f elapsed=%v intact=%v\n",
			name, res.Sent, len(res.Received), carried,
			float64(carried)/float64(res.Sent), res.Elapsed, intact)
		if !intact {
			return 0, fmt.Errorf("adapt: leg %s corrupt or incomplete: completed=%v received=%d/%d",
				name, res.Completed, len(res.Received), res.Sent)
		}
		return carried, nil
	}

	// Leg 1: full-quality baseline; the engines stay idle.
	if _, err := leg("baseline", 7000, 7001, 30*time.Second); err != nil {
		return err
	}
	if f, r := policyEvents(); f != 0 || r != 0 {
		return fmt.Errorf("adapt: engines acted on a healthy link (fires=%d reverts=%d)", f, r)
	}

	// The link degrades well under the enter bound for 40 s. Both
	// engines must observe it through their PDA pumps, hold for two
	// ticks, and fire.
	inj.DegradeLink("wireless", sys.Wireless, 100*time.Millisecond, 40*time.Second,
		256_000, netsim.Bernoulli{})
	sys.Sched.RunFor(3 * time.Second)
	fires, _ := policyEvents()
	fmt.Fprintf(w, "degraded to 256 kb/s: policy fires=%d\n", fires)
	if fires < 2 {
		return fmt.Errorf("adapt: want both engines fired after degrade, got %d fires", fires)
	}

	// Leg 2: spawned inside the degraded window, so the chain is
	// tcp→ttsf→comp on A and tcp→ttsf→decomp on B. The highly
	// redundant payload must shrink to well under half its size on
	// the wireless hop.
	carried, err := leg("compressed", 7100, 7101, 30*time.Second)
	if err != nil {
		return err
	}
	if carried >= int64(len(payload))/2 {
		return fmt.Errorf("adapt: compressed leg carried %d of %d bytes — compression not in path",
			carried, len(payload))
	}

	// The degrade window expires; the link is back at 2 Mb/s, above
	// the exit bound. Both engines must hold and revert.
	sys.Sched.RunFor(12 * time.Second)
	fires, reverts := policyEvents()
	fmt.Fprintf(w, "restored to 2 Mb/s: policy fires=%d reverts=%d\n", fires, reverts)
	if reverts < 2 {
		return fmt.Errorf("adapt: want both engines reverted after restore, got %d reverts", reverts)
	}

	// Leg 3: the adaptive filters are gone; the full payload rides the
	// air again.
	carried, err = leg("restored", 7200, 7201, 30*time.Second)
	if err != nil {
		return err
	}
	if carried < int64(len(payload))/2 {
		return fmt.Errorf("adapt: restored leg carried only %d of %d bytes — compression still attached",
			carried, len(payload))
	}

	// The control surface view: rule state through the SP `policy`
	// command (engine A rides the A plane's command table) and the B
	// engine queried directly.
	fmt.Fprintf(w, "\n=== policy state ===\n")
	fmt.Fprint(w, sys.MustCommand("policy list"))
	fmt.Fprint(w, engB.Command([]string{"list"}))
	fmt.Fprintf(w, "\n=== policy trace (A) ===\n")
	fmt.Fprint(w, sys.MustCommand("policy trace 40"))
	fmt.Fprintf(w, "\n=== policy events ===\n")
	for _, e := range sys.Obs.Events() {
		if e.Subsys == "policy" {
			fmt.Fprintln(w, e.String())
		}
	}
	fmt.Fprintf(w, "\n=== metrics snapshot ===\n")
	fmt.Fprint(w, sys.Metrics.Table("adaptive services metrics").String())
	return nil
}
