package experiments

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/filters"
	"repro/internal/ip"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/trace"
)

func init() {
	register(Experiment{
		ID:          "E20",
		Paper:       "§5.2 (application partitioning / proxy-as-agent)",
		Description: "The cache filter answers repeated document fetches at the proxy: response latency and wired-link traffic with and without the service.",
		Run:         runE20,
	})
}

func runE20(w io.Writer) {
	t := trace.NewTable("E20: 30 fetches of 10 documents (10 KB each) from the mobile",
		"scenario", "mean latency (ms)", "wired-link KB", "server requests")
	run := func(withCache bool) {
		sys := core.NewSystem(core.Config{
			Seed: 20,
			// Slow, distant wired path: the thesis's motivation for
			// placing application agents at the proxy.
			Wire:     netsim.LinkConfig{Bandwidth: 1e6, Delay: 50 * time.Millisecond},
			Wireless: netsim.LinkConfig{Bandwidth: 2e6, Delay: 10 * time.Millisecond},
		})
		if withCache {
			sys.MustCommand("load cache")
			sys.MustCommand(fmt.Sprintf("add cache %v 6001 %v 6000 64", core.MobileAddr, core.WiredAddr))
		}
		served := 0
		sys.WiredUDP.Bind(6000, func(src ip.Addr, sp uint16, payload []byte) {
			key, _, isReq, ok := filters.DecodeFetch(payload)
			if !ok || !isReq {
				return
			}
			served++
			body := bytes.Repeat([]byte(key+"|"), 10_000/(len(key)+1))
			sys.WiredUDP.Send(6000, src, sp, filters.EncodeFetchResponse(key, body))
		})

		var latencies []time.Duration
		pending := sim.Time(-1)
		sys.MobileUDP.Bind(6001, func(_ ip.Addr, _ uint16, payload []byte) {
			if _, _, isReq, ok := filters.DecodeFetch(payload); ok && !isReq && pending >= 0 {
				latencies = append(latencies, sys.Sched.Now().Sub(pending))
				pending = -1
			}
		})

		// 30 fetches over 10 distinct documents (Zipf-ish repetition).
		docs := []string{"a", "b", "a", "c", "a", "b", "d", "a", "e", "b",
			"a", "f", "a", "b", "c", "g", "a", "b", "h", "a",
			"i", "a", "b", "c", "a", "j", "b", "a", "d", "a"}
		for _, d := range docs {
			pending = sys.Sched.Now()
			sys.MobileUDP.Send(6001, core.WiredAddr, 6000, filters.EncodeFetchRequest("doc-"+d))
			sys.Sched.RunFor(2 * time.Second)
		}

		var mean float64
		for _, l := range latencies {
			mean += l.Seconds() * 1000
		}
		if len(latencies) > 0 {
			mean /= float64(len(latencies))
		}
		wiredKB := (sys.Wired.Ifaces()[0].Link().StatsAB().Bytes +
			sys.Wired.Ifaces()[0].Link().StatsBA().Bytes) / 1000
		scenario := "no service"
		if withCache {
			scenario = "cache filter at proxy"
		}
		t.AddRow(scenario, mean, wiredKB, served)
	}
	run(false)
	run(true)
	t.Fprint(w)
	fmt.Fprintln(w, `
shape check: two thirds of the fetches repeat a document; the proxy-side
cache absorbs them, cutting the slow wired path out of the loop — lower
latency for the mobile and a fraction of the wired traffic, with the server
untouched (§5.2's "single administrative point" acting as the application's
agent).`)
}
