package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/eem"
	"repro/internal/kati"
	"repro/internal/netsim"
	"repro/internal/trace"
)

func init() {
	register(Experiment{
		ID:          "E1",
		Paper:       "Fig 5.3 (SP interface example)",
		Description: "Telnet session to the service proxy: report, add rdrop 50%, report, delete wsize, report.",
		Run:         runE1,
	})
	register(Experiment{
		ID:          "E2",
		Paper:       "Fig 6.2 + Tables 6.1–6.7 (EEM sample client)",
		Description: "Register sysUpTime with an IN [0,20s] attribute, poll the protected data area at 10s intervals for two minutes.",
		Run:         runE2,
	})
	register(Experiment{
		ID:          "E3",
		Paper:       "Figs 7.1–7.4 (Kati session)",
		Description: "Third-party service control: view streams, add a service from Kati, new service appears.",
		Run:         runE3,
	})
	register(Experiment{
		ID:          "E4",
		Paper:       "Figs 8.2/8.3 (TTSF packet-dropping example)",
		Description: "A service drops one segment under the TTSF; endpoint traces show the sequence-space remapping.",
		Run:         runE4,
	})
	register(Experiment{
		ID:          "E5",
		Paper:       "Fig 8.4 (TTSF packet-compression example)",
		Description: "Double-proxy transparent compression; per-hop byte counts show the wireless savings.",
		Run:         runE5,
	})
	register(Experiment{
		ID:          "E6",
		Paper:       "Table 3.1 (comparison of the work reviewed)",
		Description: "The thesis's related-work matrix, annotated with what this repository implements.",
		Run:         runE6,
	})
}

func runE1(w io.Writer) {
	sys := core.NewSystem(core.Config{Seed: 11})
	// Pre-load the filter pool of the thesis example: tcp, launcher
	// (applying tcp+wsize to mobile-bound streams), wsize, rdrop.
	sys.MustCommand("load tcp")
	sys.MustCommand("load launcher")
	sys.MustCommand("load wsize")
	sys.MustCommand("load rdrop")
	sys.MustCommand(fmt.Sprintf("add launcher %v 0 %v 0 tcp wsize:cap:8192", core.WiredAddr, core.MobileAddr))
	keepAliveStream(sys)
	sys.Sched.RunFor(2 * time.Second)

	key := fmt.Sprintf("%v 7 %v 1169", core.WiredAddr, core.MobileAddr)
	runControlScript(w, sys, []string{
		"report",
		"add rdrop " + key + " 50",
		"report",
		"delete wsize " + key,
		"report",
	})
}

func runE2(w io.Writer) {
	sys := core.NewSystem(core.Config{Seed: 12, WithUser: true, EEMInterval: 10 * time.Second})
	cm := eem.NewComma(eem.SimDialer(sys.UserTCP))
	id := eem.ID{Var: "sysUpTime", Server: "11.11.9.1"}
	attr := eem.Attr{Lower: eem.LongValue(0), Upper: eem.LongValue(2000), Op: eem.IN}
	if err := cm.Register(id, attr); err != nil {
		fmt.Fprintf(w, "register: %v\n", err)
		return
	}
	fmt.Fprintf(w, "registered %s with IN [0,2000] (TimeTicks); polling PDA every 10s:\n", id)
	for i := 0; i < 12; i++ {
		sys.Sched.RunFor(10 * time.Second)
		if cm.HasChanged(id) {
			v, _ := cm.GetValue(id)
			fmt.Fprintf(w, "  t=%3ds  sysUpTime changed: %s\n", (i+1)*10, v)
		} else {
			fmt.Fprintf(w, "  t=%3ds  (no update — variable outside region)\n", (i+1)*10)
		}
	}
}

func runE3(w io.Writer) {
	sys := core.NewSystem(core.Config{Seed: 13, WithUser: true, EEMInterval: time.Second})
	sys.MustCommand("load tcp")
	sys.MustCommand("load launcher")
	sys.MustCommand("load wsize")
	sys.MustCommand(fmt.Sprintf("add launcher %v 0 %v 0 tcp", core.WiredAddr, core.MobileAddr))
	client := keepAliveStream(sys)
	sys.Sched.RunFor(2 * time.Second)

	spDial := func(addr string, onReply func(string)) (*kati.SPSession, error) {
		a, err := parseAddr(addr)
		if err != nil {
			return nil, err
		}
		c, err := sys.UserTCP.Connect(a, 12000)
		if err != nil {
			return nil, err
		}
		c.OnData = func(b []byte) { onReply(string(b)) }
		return kati.NewSPSession(func(line string) error { return c.Write([]byte(line)) }, func() { c.Close() }), nil
	}
	cm := eem.NewComma(eem.SimDialer(sys.UserTCP))
	shell := kati.New(w, spDial, cm)
	run := func(cmd string) {
		fmt.Fprintf(w, "kati> %s\n", cmd)
		shell.Exec(cmd)
		sys.Sched.RunFor(500 * time.Millisecond)
	}
	run("sp 11.11.9.1")
	run("streams")
	run(fmt.Sprintf("add wsize %v %d %v 1169 cap 4096", core.WiredAddr, client.LocalPort(), core.MobileAddr))
	run("streams")
	run("get 11.11.9.1 ipForwDatagrams")
}

func runE4(w io.Writer) {
	sys := core.NewSystem(core.Config{Seed: 14})
	registerExtras(sys)
	sys.MustCommand("load tcp")
	sys.MustCommand("load ttsf")
	sys.MustCommand("load dropnth")
	sys.MustCommand("load launcher")
	sys.MustCommand(fmt.Sprintf("add launcher %v 0 %v 0 tcp ttsf dropnth:2", core.WiredAddr, core.MobileAddr))

	fmt.Fprintln(w, "wired sender transmits 3000 B (segments of 1460+1460+80); the service drops segment 2 at the proxy:")
	tr := newSegTracer(w, "", 40)
	sys.WiredTCP.OnSegment = tr.hook()
	trM := newSegTracer(w, "mobile", 40)
	sys.MobileTCP.OnSegment = trM.hook()
	tr.label = "wired"

	payload := pattern(3000)
	res, err := sys.Transfer(payload, 7, 5001, 60*time.Second)
	if err != nil {
		fmt.Fprintf(w, "transfer: %v\n", err)
		return
	}
	fmt.Fprintf(w, "\nsender sent %d B and completed=%v; mobile received %d B (segment 2 excised)\n",
		res.Sent, res.Client.State().String() == "CLOSED" || res.Client.State().String() == "TIME_WAIT", len(res.Received))
	k := filterKeyFor(7)
	if st, ok := ttsfStats(k); ok {
		fmt.Fprintf(w, "ttsf: edits=%d bytesIn=%d bytesOut=%d synthesizedAcks=%d\n",
			st.Edits, st.BytesIn, st.BytesOut, st.SynthesizedAcks)
	}
}

func runE5(w io.Writer) {
	sys := core.NewSystem(core.Config{
		Seed: 15, DoubleProxy: true,
		Wireless: netsim.LinkConfig{Bandwidth: 1e6, Delay: 20 * time.Millisecond},
	})
	for _, c := range []string{"load tcp", "load ttsf", "load comp", "load launcher",
		fmt.Sprintf("add launcher %v 0 %v 0 tcp ttsf comp:6", core.WiredAddr, core.MobileAddr)} {
		sys.MustCommand(c)
	}
	for _, c := range []string{"load tcp", "load ttsf", "load decomp", "load launcher",
		fmt.Sprintf("add launcher %v 0 %v 0 tcp ttsf decomp", core.WiredAddr, core.MobileAddr)} {
		sys.MustCommandB(c)
	}
	payload := repeatText(120_000)
	res, err := sys.Transfer(payload, 7, 5001, 300*time.Second)
	if err != nil {
		fmt.Fprintf(w, "transfer: %v\n", err)
		return
	}
	t := trace.NewTable("Fig 8.4 reproduction: transparent compression, per-hop bytes",
		"hop", "payload bytes", "ratio")
	carried := sys.Wireless.StatsAB().Bytes
	t.AddRow("wired sender -> proxy A", res.Sent, 1.0)
	t.AddRow("proxy A -> proxy B (wireless)", carried, float64(carried)/float64(res.Sent))
	t.AddRow("proxy B -> mobile app", len(res.Received), float64(len(res.Received))/float64(res.Sent))
	t.Fprint(w)
	fmt.Fprintf(w, "delivered intact: %v; transfer time %v\n",
		string(res.Received) == string(payload), res.Elapsed)
}

func runE6(w io.Writer) {
	t := trace.NewTable("Table 3.1: A Comparison of the Work Reviewed",
		"Project", "ProtocolTransp", "ApplicTransp", "GeneralApplic", "in this repo")
	rows := [][]string{
		{"Coda", "Yes", "Yes", "No", "-"},
		{"Rover", "Yes", "No", "Yes", "-"},
		{"WIT", "Yes", "No", "Yes", "-"},
		{"I-TCP", "No", "Yes", "No", "-"},
		{"Snoop", "Yes", "Yes", "No", "filters/snoop"},
		{"BSSP", "Yes", "Yes", "No", "filters/wsize (cap+zwsm)"},
		{"TranSend", "No", "No", "No", "filters/comp (distillation analogue)"},
		{"MOWGLI", "No", "No", "No", "-"},
		{"Columbia", "No", "No", "Yes", "proxy + filter framework"},
		{"Comma(+Kati)", "Yes", "Yes", "Yes", "entire repository"},
	}
	for _, r := range rows {
		t.AddRow(r[0], r[1], r[2], r[3], r[4])
	}
	t.Fprint(w)
}
