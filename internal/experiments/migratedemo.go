package experiments

import (
	"crypto/sha256"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/filter"
	"repro/internal/filters"
	"repro/internal/migrate"
	"repro/internal/netsim"
)

// MigrateDemo is the live stream-migration scenario behind
// `wsim -migrate` and `make migrate-determinism`: proxy-to-proxy
// handoff of serviced streams under a matrix of injected faults.
//
// A double-proxy deployment runs migration managers on both SPs. Each
// leg starts a bulk transfer serviced on the A proxy by tcp + ttsf +
// a wsize window cap, then — mid-transfer — issues the `migrate`
// command to freeze the stream at a batch boundary and hand it, filter
// state included, to the B proxy. The legs walk the fault matrix:
//
//	clean            no fault; completes on B
//	corrupt-offer    snapshot bit-flipped in flight; B's checksum NAKs
//	                 it and the stream resumes (counted aborted) on A
//	drop-offer       first OFFER suppressed; the retry completes on B
//	partition        wireless blackholed around the attempt; the OFFER
//	                 budget runs dry and the stream resumes on A
//	crash-pre-commit source manager crashes before its journal commits;
//	                 restart resumes the stream on A
//	crash-post-commit source crashes after committing but before
//	                 COMMIT is sent; restart re-drives it to completion
//	round-trip       A→B migration followed by B→A of the same stream
//
// Every leg asserts the ownership invariant (exactly one proxy holds
// the stream's bindings afterwards — completed XOR resumed, never both,
// never neither), checksum-clean payload delivery through the fault,
// and — when the stream lands on a proxy — TTSF byte-count continuity
// proving the filter state really moved instead of restarting fresh.
// Everything runs on virtual time; the output is byte-identical across
// runs with the same seed.
func MigrateDemo(seed int64, w io.Writer) error {
	sys := core.NewSystem(core.Config{
		Seed:         seed,
		DoubleProxy:  true,
		Migration:    true,
		ObsRetention: 1 << 16,
		Wireless:     netsim.LinkConfig{Bandwidth: 2e6, Delay: 10 * time.Millisecond},
	})
	fmt.Fprintf(w, "=== live stream migration (seed %d) ===\n", seed)
	inj := faults.NewInjector(sys.Sched, sys.Obs)
	payload := repeatText(256_000)
	wantSum := sha256.Sum256(payload)

	for _, c := range []string{"load tcp", "load ttsf", "load wsize"} {
		sys.MustCommand(c) // A only: B auto-loads from its catalog on import
	}

	// outcome deltas of one leg on one manager
	type delta struct{ attempts, completed, resumed, aborted int64 }
	counters := func(m *migrate.Manager) delta {
		a, c, r, ab := m.Counters()
		return delta{a, c, r, ab}
	}
	sub := func(x, y delta) delta {
		return delta{x.attempts - y.attempts, x.completed - y.completed,
			x.resumed - y.resumed, x.aborted - y.aborted}
	}

	type leg struct {
		name    string
		port    uint16 // src port; dst is port+1000
		arm     func(migrateAt time.Duration)
		back    bool  // also migrate B→A afterwards (round-trip)
		want    delta // expected A-manager outcome
		ownerB  bool  // stream must end on B (else back on A)
		install int   // expected "installed" events on the bus for this key
	}
	legs := []leg{
		{name: "clean", port: 7000, want: delta{1, 1, 0, 0}, ownerB: true, install: 1},
		{name: "corrupt-offer", port: 7100,
			arm: func(at time.Duration) {
				inj.ArmMigrationFault("A", sys.Migrate, at-50*time.Millisecond, "corrupt-offer")
			},
			want: delta{1, 0, 0, 1}, install: 0},
		{name: "drop-offer", port: 7200,
			arm:  func(at time.Duration) { inj.ArmMigrationFault("A", sys.Migrate, at-50*time.Millisecond, "drop-offer") },
			want: delta{1, 1, 0, 0}, ownerB: true, install: 1},
		{name: "partition", port: 7300,
			arm: func(at time.Duration) {
				inj.PartitionAB("wireless", sys.Wireless, at-50*time.Millisecond, 2*time.Second)
			},
			want: delta{1, 0, 1, 0}, install: 0},
		{name: "crash-pre-commit", port: 7400,
			arm: func(at time.Duration) {
				inj.ArmMigrationFault("A", sys.Migrate, at-50*time.Millisecond, "crash-pre-commit")
				inj.RestartMigration("A", sys.Migrate, at+500*time.Millisecond)
			},
			want: delta{1, 0, 1, 0}, install: 0},
		{name: "crash-post-commit", port: 7500,
			arm: func(at time.Duration) {
				inj.ArmMigrationFault("A", sys.Migrate, at-50*time.Millisecond, "crash-post-commit")
				inj.RestartMigration("A", sys.Migrate, at+500*time.Millisecond)
			},
			want: delta{1, 1, 0, 0}, ownerB: true, install: 1},
		{name: "round-trip", port: 7600, back: true,
			want: delta{1, 1, 0, 0}, ownerB: false, install: 2},
	}

	for _, lg := range legs {
		srcPort, dstPort := lg.port, lg.port+1000
		keyStr := fmt.Sprintf("11.11.10.99 %d 11.11.10.10 %d", srcPort, dstPort)
		k := filter.Key{SrcIP: core.WiredAddr, SrcPort: srcPort, DstIP: core.MobileAddr, DstPort: dstPort}
		sys.MustCommand("add tcp " + keyStr)
		sys.MustCommand("add ttsf " + keyStr)
		sys.MustCommand("add wsize " + keyStr + " cap 16000")

		const migrateAt = 300 * time.Millisecond
		if lg.arm != nil {
			lg.arm(migrateAt)
		}
		beforeA, beforeB := counters(sys.Migrate), counters(sys.MigrateB)
		nEvents := len(sys.Obs.Events())
		var preBytes int64
		var cmdOut string
		sys.Sched.After(migrateAt, func() {
			if st, ok := filters.TTSFStatsFor(k); ok {
				preBytes = st.BytesIn
			}
			cmdOut = sys.Plane.Command("migrate " + keyStr + " 11.11.11.2")
		})
		// Transfer runs the scheduler for its whole deadline, well past the
		// tcp filter's close-grace teardown, so the surviving TTSF instance
		// is sampled in-sim: a probe tracks the last stats seen for the key
		// until the owning queue is torn down.
		var post filters.TTSFStats
		var postOK, stopProbe bool
		var probe func()
		probe = func() {
			if stopProbe {
				return
			}
			if st, ok := filters.TTSFStatsFor(k); ok {
				post, postOK = st, true
			}
			sys.Sched.After(50*time.Millisecond, probe)
		}
		sys.Sched.After(migrateAt, probe)
		if lg.back {
			// Re-arm until the stream has actually landed on B (the A→B
			// protocol is still in flight at +300ms), then send it home.
			var back func()
			back = func() {
				if out := sys.PlaneB.Command("migrate " + keyStr + " 11.11.11.1"); strings.HasPrefix(out, "error") {
					sys.Sched.After(100*time.Millisecond, back)
				}
			}
			sys.Sched.After(migrateAt+300*time.Millisecond, back)
		}

		res, err := sys.Transfer(payload, srcPort, dstPort, 60*time.Second)
		if err != nil {
			return fmt.Errorf("migrate: leg %s: %w", lg.name, err)
		}
		stopProbe = true
		sys.Sched.RunFor(8 * time.Second) // protocol wrap-up + queue teardown grace

		intact := res.Completed && sha256.Sum256(res.Received) == wantSum
		if !intact {
			return fmt.Errorf("migrate: leg %s corrupt or incomplete: completed=%v received=%d/%d",
				lg.name, res.Completed, len(res.Received), res.Sent)
		}
		if !strings.HasPrefix(cmdOut, "migrating") {
			return fmt.Errorf("migrate: leg %s: command answered %q", lg.name, cmdOut)
		}
		dA := sub(counters(sys.Migrate), beforeA)
		if dA != lg.want {
			return fmt.Errorf("migrate: leg %s: A outcome %+v, want %+v", lg.name, dA, lg.want)
		}
		// The ownership invariant: exactly one proxy holds the stream's
		// exact-key bindings, and it is the one the outcome names.
		bindA, bindB := sys.Plane.StreamBindings(k), sys.PlaneB.StreamBindings(k)
		wantA, wantB := 3, 0
		if lg.ownerB {
			wantA, wantB = 0, 3
		}
		if lg.back {
			dB := sub(counters(sys.MigrateB), beforeB)
			if dB != (delta{1, 1, 0, 0}) {
				return fmt.Errorf("migrate: leg %s: B outcome %+v, want one completion", lg.name, dB)
			}
		}
		if bindA != wantA || bindB != wantB {
			return fmt.Errorf("migrate: leg %s: bindings A=%d B=%d, want A=%d B=%d (dual or lost ownership)",
				lg.name, bindA, bindB, wantA, wantB)
		}
		// Filter-state continuity: the TTSF instance that ends up owning
		// the stream must carry the byte counts from before the freeze.
		if preBytes == 0 {
			return fmt.Errorf("migrate: leg %s: ttsf saw no bytes before the freeze", lg.name)
		}
		if !postOK || post.BytesIn < preBytes {
			return fmt.Errorf("migrate: leg %s: ttsf continuity broken: pre=%d post=%d ok=%v",
				lg.name, preBytes, post.BytesIn, postOK)
		}
		installed := 0
		for _, e := range sys.Obs.Events()[nEvents:] {
			if e.Subsys == "migrate" && e.Kind == "installed" && e.Key == k.String() {
				installed++
			}
		}
		if installed != lg.install {
			return fmt.Errorf("migrate: leg %s: %d installs on the bus, want %d",
				lg.name, installed, lg.install)
		}
		fmt.Fprintf(w, "leg %-17s outcome=%s owner=%s bindings=A:%d/B:%d ttsf_bytes=%d->%d installs=%d intact=%v\n",
			lg.name, outcomeName(dA), ownerName(lg.ownerB), bindA, bindB, preBytes, post.BytesIn, installed, intact)
	}

	// Command-surface error paths: unknown streams and wild cards are
	// rejected before anything freezes.
	if out := sys.Plane.Command("migrate 11.11.10.99 1 11.11.10.10 2 11.11.11.2"); !strings.HasPrefix(out, "error") {
		return fmt.Errorf("migrate: bogus key accepted: %q", out)
	}
	if out := sys.Plane.Command("migrate 11.11.10.99 0 11.11.10.10 0 11.11.11.2"); !strings.HasPrefix(out, "error") {
		return fmt.Errorf("migrate: wild-card key accepted: %q", out)
	}
	a, c, r, ab := sys.Migrate.Counters()
	if a != c+r+ab {
		return fmt.Errorf("migrate: attempts=%d but outcomes sum to %d — an attempt neither completed nor resumed",
			a, c+r+ab)
	}
	fmt.Fprintf(w, "A manager: attempts=%d completed=%d resumed=%d aborted=%d (outcomes account for every attempt)\n",
		a, c, r, ab)

	fmt.Fprintf(w, "\n=== migration events ===\n")
	for _, e := range sys.Obs.Events() {
		if e.Subsys == "migrate" || strings.HasPrefix(e.Kind, "migrate-") {
			fmt.Fprintln(w, e.String())
		}
	}
	fmt.Fprintf(w, "\n=== metrics snapshot ===\n")
	fmt.Fprint(w, sys.Metrics.Table("stream migration metrics").String())
	return nil
}

func outcomeName(d struct{ attempts, completed, resumed, aborted int64 }) string {
	switch {
	case d.completed > 0:
		return "completed"
	case d.resumed > 0:
		return "resumed"
	case d.aborted > 0:
		return "aborted"
	}
	return "none"
}

func ownerName(onB bool) string {
	if onB {
		return "B"
	}
	return "A"
}
