package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:          "E18",
		Paper:       "§8.2.2 claim (priority streams get 'more bandwidth and smaller delay')",
		Description: "Interactive session latency while a bulk download shares the wireless link, with and without capping the bulk stream's window.",
		Run:         runE18,
	})
}

func runE18(w io.Writer) {
	t := trace.NewTable("E18: interactive latency under bulk cross-traffic (500 kb/s wireless, 64 B exchanges)",
		"scenario", "mean latency (ms)", "worst latency (ms)", "exchanges", "bulk KB moved")
	run := func(scenario string, withBulk, withCap bool) {
		sys := core.NewSystem(core.Config{
			Seed:     18,
			Wireless: netsim.LinkConfig{Bandwidth: 500e3, Delay: 20 * time.Millisecond, QueueLen: 30},
		})
		sys.MustCommand("load tcp")
		sys.MustCommand(fmt.Sprintf("add tcp 0.0.0.0 0 %v 0", core.MobileAddr))
		if withCap {
			sys.MustCommand("load wsize")
			// The bulk stream goes to port 5002; cap it hard.
			sys.MustCommand(fmt.Sprintf("add wsize 0.0.0.0 0 %v 5002 cap 1460", core.MobileAddr))
		}
		if err := workload.ServeEcho(sys.MobileTCP, 5001); err != nil {
			panic(err)
		}
		bulkCount := 0
		if err := workload.ServeSink(sys.MobileTCP, 5002, &bulkCount); err != nil {
			panic(err)
		}
		iw, err := workload.StartInteractive(sys.Sched, sys.WiredTCP, core.MobileAddr, 5001,
			250*time.Millisecond, 64)
		if err != nil {
			panic(err)
		}
		if withBulk {
			if _, err := workload.StartBulk(sys.WiredTCP, core.MobileAddr, 5002, 4_000_000); err != nil {
				panic(err)
			}
		}
		sys.Sched.RunFor(30 * time.Second)
		iw.Stop()
		t.AddRow(scenario,
			iw.Mean().Seconds()*1000, iw.Max().Seconds()*1000,
			len(iw.Latencies), bulkCount/1000)
	}
	run("interactive alone", false, false)
	run("with bulk, no service", true, false)
	run("with bulk, wsize cap on bulk", true, true)
	t.Fprint(w)
	fmt.Fprintln(w, `
shape check: the uncontrolled bulk stream fills the base-station queue and
multiplies interactive latency; capping its window restores latency to near
the unloaded value while the bulk stream continues in the background —
exactly BSSP's "more bandwidth and smaller delay" for priority streams.`)
}
