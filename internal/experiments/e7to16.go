package experiments

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/ip"
	"repro/internal/media"
	"repro/internal/mobileip"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/trace"
)

func init() {
	register(Experiment{
		ID:          "E7",
		Paper:       "§2.3/§8.2.1 claim (TCP misreads wireless loss as congestion; snoop repairs it)",
		Description: "Goodput vs wireless loss rate: plain TCP vs TCP behind the snoop filter.",
		Run:         runE7,
	})
	register(Experiment{
		ID:          "E8",
		Paper:       "§8.2.2 claim (BSSP stream prioritization)",
		Description: "Two competing streams; capping the low-priority stream's window shifts bandwidth to the priority stream.",
		Run:         runE8,
	})
	register(Experiment{
		ID:          "E9",
		Paper:       "§8.2.2 claim (ZWSM disconnection management)",
		Description: "Burst sent during a 20s disconnection: sender timeouts and restart latency with vs without ZWSM.",
		Run:         runE9,
	})
	register(Experiment{
		ID:          "E10",
		Paper:       "§8.1.5 (rdrop under the TTSF)",
		Description: "Permanent data reduction: wireless bytes and delivered fraction vs drop rate, sender always completes.",
		Run:         runE10,
	})
	register(Experiment{
		ID:          "E11",
		Paper:       "§8.1.6 + Table 8.1 (compression by data class)",
		Description: "Transparent compression savings for the thesis's data classes (text, image, binary).",
		Run:         runE11,
	})
	register(Experiment{
		ID:          "E12",
		Paper:       "§8.3.2 (hierarchical discard)",
		Description: "Layered media over a constrained wireless link: base-layer on-time delivery with and without discard.",
		Run:         runE12,
	})
	register(Experiment{
		ID:          "E13",
		Paper:       "§2.1 (Mobile IP: triangular routing, handoff loss)",
		Description: "Tunnel-path latency vs binding-cache optimization; packets lost across a handoff gap.",
		Run:         runE13,
	})
	register(Experiment{
		ID:          "E14",
		Paper:       "§8.3.3 (data-type translation)",
		Description: "Colour→mono image tiles and rich-text→ASCII: wireless bandwidth reduction with intact semantics.",
		Run:         runE14,
	})
	register(Experiment{
		ID:          "E15",
		Paper:       "§5.2 (filter-queue mechanism)",
		Description: "Proxy forwarding cost vs filter-queue depth (stacked 0%-rdrop filters as no-ops).",
		Run:         runE15,
	})
	register(Experiment{
		ID:          "E16",
		Paper:       "§8.1 end-to-end invariant",
		Description: "One seeded instance of the randomized TTSF property (full test: TestTTSFPropertyRandomTransformations).",
		Run:         runE16,
	})
}

func runE7(w io.Writer) {
	s := trace.NewSeries("E7: goodput vs wireless loss (300 KB transfer, 2 Mb/s, 25 ms, 16 KB window)",
		"loss %", "goodput KB/s")
	for _, lossPct := range []float64{0, 2, 5, 10, 15, 20} {
		for _, mode := range []string{"plain", "snoop", "split"} {
			if mode == "split" {
				s.Add(mode, lossPct, splitGoodput(lossPct))
				continue
			}
			// Average over seeds: a single run's goodput at high loss
			// is dominated by a handful of timeout coincidences.
			total := 0.0
			const seeds = 3
			for seed := int64(41); seed < 41+seeds; seed++ {
				sys := core.NewSystem(core.Config{
					Seed: seed,
					// A 16 KB receive window matches the era's BSD
					// socket buffers and keeps the base-station queue
					// near the bandwidth-delay product, as in the
					// Snoop testbed.
					TCP: tcp.Config{RcvWnd: 16384},
					Wireless: netsim.LinkConfig{Bandwidth: 2e6, Delay: 25 * time.Millisecond,
						Loss: netsim.Bernoulli{P: lossPct / 100}, QueueLen: 200},
				})
				sys.MustCommand("load tcp")
				sys.MustCommand("load launcher")
				svc := "tcp"
				if mode == "snoop" {
					sys.MustCommand("load snoop")
					svc = "tcp snoop"
				}
				sys.MustCommand(fmt.Sprintf("add launcher %v 0 %v 0 %s", core.WiredAddr, core.MobileAddr, svc))
				res, err := sys.Transfer(pattern(300_000), 7, 5001, 600*time.Second)
				if err == nil && res.Completed {
					total += float64(res.Sent) / res.Elapsed.Seconds() / 1000
				}
			}
			s.Add(mode, lossPct, total/seeds)
		}
	}
	s.Fprint(w)
	fmt.Fprintln(w, "\nshape check: parity at 0% loss; snoop and the split connection both beat")
	fmt.Fprintln(w, "plain TCP as loss grows — but the split connection pays with broken")
	fmt.Fprintln(w, "end-to-end semantics (see E17).")
}

// splitGoodput measures the I-TCP baseline at one loss point, averaged
// over the same seeds as the other modes.
func splitGoodput(lossPct float64) float64 {
	total := 0.0
	const seeds = 3
	for seed := int64(41); seed < 41+seeds; seed++ {
		wireless := netsim.LinkConfig{Bandwidth: 2e6, Delay: 25 * time.Millisecond,
			Loss: netsim.Bernoulli{P: lossPct / 100}, QueueLen: 200}
		r := newSplitRig(seed, wireless, true)
		payload := pattern(300_000)
		rcvd := 0
		first, done := sim.Time(-1), sim.Time(-1)
		r.mStack.Listen(5001, func(c *tcp.Conn) {
			c.OnData = func(b []byte) {
				if first < 0 {
					first = r.sched.Now()
				}
				rcvd += len(b)
				if rcvd == len(payload) {
					done = r.sched.Now()
				}
			}
		})
		client, _ := r.wStack.Connect(ip.MustParseAddr("11.11.10.10"), 5001)
		client.OnEstablished = func() { client.Write(payload) }
		r.sched.RunFor(600 * time.Second)
		if done >= 0 {
			total += float64(len(payload)) / done.Sub(0).Seconds() / 1000
		}
	}
	return total / seeds
}

func runE8(w io.Writer) {
	t := trace.NewTable("E8: window-cap prioritization (two 8 MB streams, 2 Mb/s shared link, 20 s)",
		"low-priority cap (B)", "priority stream KB", "capped stream KB", "ratio")
	for _, cap := range []int{65535, 16384, 8192, 4096, 2048} {
		sys := core.NewSystem(core.Config{
			Seed:     8,
			Wireless: netsim.LinkConfig{Bandwidth: 2e6, Delay: 20 * time.Millisecond},
		})
		sys.MustCommand("load tcp")
		sys.MustCommand("load wsize")
		sys.MustCommand(fmt.Sprintf("add wsize 0.0.0.0 0 %v 5002 cap %d", core.MobileAddr, cap))
		sys.MustCommand(fmt.Sprintf("add tcp 0.0.0.0 0 %v 5002", core.MobileAddr))
		sys.MustCommand(fmt.Sprintf("add tcp 0.0.0.0 0 %v 5001", core.MobileAddr))

		var hi, lo int
		sys.MobileTCP.Listen(5001, func(c *tcp.Conn) { c.OnData = func(b []byte) { hi += len(b) } })
		sys.MobileTCP.Listen(5002, func(c *tcp.Conn) { c.OnData = func(b []byte) { lo += len(b) } })
		// Big enough that neither stream finishes inside the window:
		// the table shows the steady-state bandwidth split.
		big := pattern(8_000_000)
		c1, _ := sys.WiredTCP.Connect(core.MobileAddr, 5001)
		c1.OnEstablished = func() { c1.Write(big) }
		c2, _ := sys.WiredTCP.Connect(core.MobileAddr, 5002)
		c2.OnEstablished = func() { c2.Write(big) }
		sys.Sched.RunFor(20 * time.Second)
		ratio := float64(hi) / float64(lo+1)
		t.AddRow(cap, hi/1000, lo/1000, ratio)
	}
	t.Fprint(w)
	fmt.Fprintln(w, "\nshape check: smaller caps starve the low-priority stream; the priority stream absorbs the difference.")
}

func runE9(w io.Writer) {
	t := trace.NewTable("E9: 20 s disconnection during bursty transfer (2 Mb/s, 10 ms)",
		"mode", "sender RTOs", "persist probes", "zero-window seen", "restart after reconnect (ms)")
	run := func(withZWSM bool) {
		sys := core.NewSystem(core.Config{
			Seed:     7,
			Wireless: netsim.LinkConfig{Bandwidth: 2e6, Delay: 10 * time.Millisecond},
		})
		sys.MustCommand("load tcp")
		sys.MustCommand("load launcher")
		mode := "plain TCP"
		if withZWSM {
			sys.MustCommand("load wsize")
			sys.MustCommand(fmt.Sprintf("add launcher %v 0 %v 0 tcp wsize:zwsm:300", core.WiredAddr, core.MobileAddr))
			mode = "with ZWSM"
		} else {
			sys.MustCommand(fmt.Sprintf("add launcher %v 0 %v 0 tcp", core.WiredAddr, core.MobileAddr))
		}
		var rcvd int
		done := sim.Time(-1)
		sys.MobileTCP.Listen(5001, func(c *tcp.Conn) {
			c.OnData = func(b []byte) {
				rcvd += len(b)
				if rcvd == 40_000 {
					done = sys.Sched.Now()
				}
			}
		})
		client, _ := sys.WiredTCP.ConnectFrom(7, core.MobileAddr, 5001)
		client.OnEstablished = func() { client.Write(pattern(20_000)) }
		sys.Sched.RunFor(2 * time.Second)
		sys.Wireless.SetDown(true)
		sys.Sched.RunFor(time.Second)
		client.Write(pattern(20_000))
		sys.Sched.RunFor(19 * time.Second)
		sys.Wireless.SetDown(false)
		reconnect := sys.Sched.Now()
		sys.Sched.RunFor(120 * time.Second)
		restartMS := -1.0
		if done >= 0 {
			restartMS = done.Sub(reconnect).Seconds() * 1000
		}
		st := client.Stats()
		t.AddRow(mode, st.Timeouts, st.PersistProbes, st.ZeroWindowSeen, restartMS)
	}
	run(false)
	run(true)
	t.Fprint(w)
	fmt.Fprintln(w, "\nshape check: ZWSM replaces RTO backoff with persist probes and restarts sooner.")
}

func runE10(w io.Writer) {
	t := trace.NewTable("E10: rdrop under the TTSF (200 KB offered, 5 Mb/s wireless)",
		"drop rate %", "delivered KB", "delivered %", "wireless KB", "sender completed")
	for _, rate := range []int{0, 25, 50, 75} {
		sys := core.NewSystem(core.Config{
			Seed:     10,
			Wireless: netsim.LinkConfig{Bandwidth: 5e6, Delay: 10 * time.Millisecond},
		})
		for _, c := range []string{"load tcp", "load ttsf", "load rdrop", "load launcher",
			fmt.Sprintf("add launcher %v 0 %v 0 tcp ttsf rdrop:%d", core.WiredAddr, core.MobileAddr, rate)} {
			sys.MustCommand(c)
		}
		res, err := sys.Transfer(pattern(200_000), 7, 5001, 600*time.Second)
		if err != nil {
			fmt.Fprintf(w, "rate %d: %v\n", rate, err)
			continue
		}
		completed := res.Client.State() == tcp.StateClosed || res.Client.State() == tcp.StateTimeWait
		t.AddRow(rate, len(res.Received)/1000,
			float64(len(res.Received))*100/float64(res.Sent),
			sys.Wireless.StatsAB().Bytes/1000, completed)
	}
	t.Fprint(w)
	fmt.Fprintln(w, "\nshape check: delivered fraction tracks (100 - drop rate); the sender finishes at every rate.")
}

func runE11(w io.Writer) {
	t := trace.NewTable("E11: transparent compression by data class (Table 8.1; 120 KB each, double proxy)",
		"data class", "payload KB", "wireless KB", "ratio", "intact")
	classes := []struct {
		name string
		data []byte
	}{
		{"text (repetitive)", repeatText(120_000)},
		{"image (random pixels)", randomBytes(7, 120_000)},
		{"binary (structured)", structured(120_000)},
	}
	for _, cl := range classes {
		sys := core.NewSystem(core.Config{
			Seed: 11, DoubleProxy: true,
			Wireless: netsim.LinkConfig{Bandwidth: 2e6, Delay: 20 * time.Millisecond},
		})
		for _, c := range []string{"load tcp", "load ttsf", "load comp", "load launcher",
			fmt.Sprintf("add launcher %v 0 %v 0 tcp ttsf comp:6", core.WiredAddr, core.MobileAddr)} {
			sys.MustCommand(c)
		}
		for _, c := range []string{"load tcp", "load ttsf", "load decomp", "load launcher",
			fmt.Sprintf("add launcher %v 0 %v 0 tcp ttsf decomp", core.WiredAddr, core.MobileAddr)} {
			sys.MustCommandB(c)
		}
		res, err := sys.Transfer(cl.data, 7, 5001, 600*time.Second)
		if err != nil {
			fmt.Fprintf(w, "%s: %v\n", cl.name, err)
			continue
		}
		carried := sys.Wireless.StatsAB().Bytes
		t.AddRow(cl.name, res.Sent/1000, carried/1000,
			float64(carried)/float64(res.Sent), bytes.Equal(res.Received, cl.data))
	}
	t.Fprint(w)
	fmt.Fprintln(w, "\nshape check: text compresses hard, structured binary some, random data not at all (stored frames).")
}

// structured builds binary data with redundancy (repeating records).
func structured(n int) []byte {
	rec := make([]byte, 64)
	for i := range rec {
		rec[i] = byte(i * 7)
	}
	b := make([]byte, 0, n+64)
	for len(b) < n {
		rec[0]++
		b = append(b, rec...)
	}
	return b[:n]
}

func runE12(w io.Writer) {
	t := trace.NewTable("E12: hierarchical discard (4-layer media, 25 fps, 300 B base; 800 kb/s wireless)",
		"mode", "base frames on time", "all frames delivered", "wireless KB", "mean base lateness (ms)")
	for _, mode := range []string{"no discard", "discard >1", "discard >0"} {
		sys := core.NewSystem(core.Config{
			Seed:     12,
			Wireless: netsim.LinkConfig{Bandwidth: 800e3, Delay: 10 * time.Millisecond, QueueLen: 30},
		})
		switch mode {
		case "discard >1":
			sys.MustCommand("load discard")
			sys.MustCommand(fmt.Sprintf("add discard %v 4000 %v 4001 1", core.WiredAddr, core.MobileAddr))
		case "discard >0":
			sys.MustCommand("load discard")
			sys.MustCommand(fmt.Sprintf("add discard %v 4000 %v 4001 0", core.WiredAddr, core.MobileAddr))
		}
		const frames = 250
		const interval = 40 * time.Millisecond // 25 fps
		src := media.NewLayeredSource(4, 300, 12)
		sent := map[uint32]sim.Time{}
		baseOnTime, delivered := 0, 0
		var lateness time.Duration
		sys.MobileUDP.Bind(4001, func(_ ip.Addr, _ uint16, payload []byte) {
			f, err := media.UnmarshalFrame(payload)
			if err != nil {
				return
			}
			delivered++
			if f.Layer == 0 {
				late := sys.Sched.Now().Sub(sent[f.Seq])
				lateness += late
				if late < 100*time.Millisecond {
					baseOnTime++
				}
			}
		})
		n := 0
		var tick func()
		tick = func() {
			fs := src.Next()
			sent[fs[0].Seq] = sys.Sched.Now()
			for _, f := range fs {
				sys.WiredUDP.Send(4000, core.MobileAddr, 4001, media.MarshalFrame(f))
			}
			n++
			if n < frames {
				sys.Sched.After(interval, tick)
			}
		}
		sys.Sched.After(0, tick)
		sys.Sched.RunFor(time.Duration(frames)*interval + 5*time.Second)
		meanLate := 0.0
		if baseOnTime > 0 {
			meanLate = lateness.Seconds() * 1000 / frames
		}
		t.AddRow(mode, fmt.Sprintf("%d/%d", baseOnTime, frames), delivered,
			sys.Wireless.StatsAB().Bytes/1000, meanLate)
	}
	t.Fprint(w)
	fmt.Fprintln(w, "\nshape check: without discard the queue swamps the base layer; discarding enhancement layers restores real-time delivery.")
}

func runE13(w io.Writer) {
	// Reuses the Mobile IP topology of the package tests, scripted.
	s := sim.NewScheduler(13)
	n := netsim.New(s)
	corr := n.AddNode("correspondent")
	inet := n.AddNode("internet")
	haN := n.AddNode("ha")
	faN := n.AddNode("fa")
	mobN := n.AddNode("mobile")
	for _, nd := range []*netsim.Node{inet, haN, faN} {
		nd.Forwarding = true
	}
	corrA := ip.MustParseAddr("1.1.1.1")
	haA := ip.MustParseAddr("10.0.0.254")
	mobHome := ip.MustParseAddr("10.0.0.99")
	faCareOf := ip.MustParseAddr("20.0.0.254")
	wire := netsim.LinkConfig{Bandwidth: 100e6, Delay: 15 * time.Millisecond}
	lc := n.Connect(corr, corrA, inet, ip.MustParseAddr("1.1.1.254"), wire)
	lh := n.Connect(inet, ip.MustParseAddr("10.0.1.1"), haN, haA, netsim.LinkConfig{Bandwidth: 100e6, Delay: 40 * time.Millisecond})
	lf := n.Connect(inet, ip.MustParseAddr("20.0.1.1"), faN, faCareOf, wire)
	corr.AddDefaultRoute(lc.IfaceA())
	inet.AddRoute(ip.MustParseAddr("10.0.0.0"), 16, lh.IfaceA())
	inet.AddRoute(ip.MustParseAddr("20.0.0.0"), 16, lf.IfaceA())
	inet.AddRoute(ip.MustParseAddr("1.1.1.0"), 24, lc.IfaceB())
	haN.AddDefaultRoute(lh.IfaceB())
	faN.AddDefaultRoute(lf.IfaceB())
	ha := mobileip.NewHomeAgent(haN)
	fa := mobileip.NewForeignAgent(faN, faCareOf)
	mob := mobileip.NewMobile(mobN, haA, mobHome)
	n.Connect(faN, ip.MustParseAddr("20.0.0.1"), mobN, mobHome,
		netsim.LinkConfig{Bandwidth: 2e6, Delay: 10 * time.Millisecond})
	mobN.AddDefaultRoute(mobN.Ifaces()[0])
	fa.StartAdvertising(500 * time.Millisecond)
	s.RunFor(2 * time.Second)
	fa.StopAdvertising()
	_ = mob

	var arrive sim.Time
	mobN.RegisterProto(ip.ProtoUDP, func(ip.Header, []byte, []byte, *netsim.Iface) { arrive = s.Now() })
	start := s.Now()
	corr.SendIP(mobHome, ip.ProtoUDP, []byte("x"))
	s.RunFor(time.Second)
	triangular := arrive.Sub(start)

	bc := mobileip.NewBindingCache(corr)
	bc.Learn(mobHome, faCareOf, time.Minute)
	send := bc.WrapSend()
	start = s.Now()
	send(mobHome, ip.ProtoUDP, []byte("y"))
	s.RunFor(time.Second)
	direct := arrive.Sub(start)

	t := trace.NewTable("E13a: triangular routing vs binding-cache route optimization",
		"path", "one-way delivery (ms)")
	t.AddRow("via home agent (triangular)", triangular.Seconds()*1000)
	t.AddRow("direct tunnel (binding cache)", direct.Seconds()*1000)
	t.Fprint(w)
	fmt.Fprintf(w, "home agent tunneled %d packets\n\n", ha.Tunneled)

	// Handoff gap: packets sent during the gap are lost.
	t2 := trace.NewTable("E13b: packet loss across the handoff gap (20 pkts at 25 ms spacing)",
		"scenario", "delivered", "lost")
	delivered := 0
	mobN.RegisterProto(ip.ProtoUDP, func(ip.Header, []byte, []byte, *netsim.Iface) { delivered++ })
	for i := 0; i < 20; i++ {
		s.After(time.Duration(i)*25*time.Millisecond, func() {
			corr.SendIP(mobHome, ip.ProtoUDP, []byte("stream"))
		})
	}
	// Gap: detach at 100 ms, reattach + re-register at 350 ms.
	s.After(100*time.Millisecond, func() { mobN.Ifaces()[0].Link().SetDown(true) })
	s.After(350*time.Millisecond, func() {
		mobN.Ifaces()[0].Link().SetDown(false)
		mob.Solicit()
	})
	s.RunFor(3 * time.Second)
	t2.AddRow("250 ms outage during 500 ms stream", delivered, 20-delivered)
	t2.Fprint(w)
}

func runE14(w io.Writer) {
	t := trace.NewTable("E14: data-type translation (§8.3.3)",
		"translation", "bytes in", "bytes out", "ratio", "semantics")
	// Colour → monochrome image tiles.
	sys := core.NewSystem(core.Config{Seed: 14})
	sys.MustCommand("load translate")
	sys.MustCommand(fmt.Sprintf("add translate %v 4000 %v 4001 mono", core.WiredAddr, core.MobileAddr))
	var outBytes int
	monoOK := true
	sys.MobileUDP.Bind(4001, func(_ ip.Addr, _ uint16, payload []byte) {
		outBytes += len(payload)
		tile, err := media.UnmarshalTile(payload)
		if err != nil || tile.Mode != media.ModeMono {
			monoOK = false
		}
	})
	inBytes := 0
	for _, tile := range media.TestImageTiles(128, 128, 8, 14) {
		b, _ := media.MarshalTile(tile)
		inBytes += len(b)
		sys.WiredUDP.Send(4000, core.MobileAddr, 4001, b)
		sys.Sched.RunFor(10 * time.Millisecond)
	}
	sys.Sched.RunFor(time.Second)
	t.AddRow("RGB image -> mono", inBytes, outBytes, float64(outBytes)/float64(inBytes),
		fmt.Sprintf("all tiles mono: %v", monoOK))

	// Rich text → ASCII.
	sys2 := core.NewSystem(core.Config{Seed: 15})
	sys2.MustCommand("load translate")
	sys2.MustCommand(fmt.Sprintf("add translate %v 4000 %v 4001 ascii", core.WiredAddr, core.MobileAddr))
	var asciiOut []byte
	sys2.MobileUDP.Bind(4001, func(_ ip.Addr, _ uint16, payload []byte) {
		asciiOut = append(asciiOut, payload...)
	})
	text := "Transparent communication management in wireless networks."
	rich := media.EncodeRich(text, 0x17)
	sys2.WiredUDP.Send(4000, core.MobileAddr, 4001, rich)
	sys2.Sched.RunFor(time.Second)
	t.AddRow("rich text -> ASCII", len(rich), len(asciiOut), float64(len(asciiOut))/float64(len(rich)),
		fmt.Sprintf("text preserved: %v", string(asciiOut) == text))
	t.Fprint(w)
}

func runE15(w io.Writer) {
	t := trace.NewTable("E15: proxy forwarding cost vs filter-queue depth (2 MB transfer, best of 3)",
		"filters in queue", "packets through proxy", "wall µs/packet", "relative")
	filterQueueCost(2) // warm up the process before measuring
	base := 0.0
	for _, depth := range []int{0, 1, 2, 4, 8} {
		pkts, usPerPkt := filterQueueCost(depth)
		if depth == 0 {
			base = usPerPkt
		}
		rel := 0.0
		if base > 0 {
			rel = usPerPkt / base
		}
		t.AddRow(depth, pkts, usPerPkt, rel)
	}
	t.Fprint(w)
	fmt.Fprintln(w, "\nend-to-end cost is dominated by the simulator; isolated filter-queue cost:")
	t2 := trace.NewTable("", "filters in queue", "ns/packet (hook only)", "relative")
	base = 0.0
	for _, depth := range []int{0, 1, 2, 4, 8} {
		ns := hookCost(depth)
		if depth == 0 {
			base = ns
		}
		t2.AddRow(depth, ns, ns/base)
	}
	t2.Fprint(w)
}

// hookCost drives the proxy's interception hook directly with a
// prepared TCP data packet, isolating the filter-queue mechanism from
// the rest of the simulation.
func hookCost(depth int) float64 {
	sys := core.NewSystem(core.Config{Seed: 17})
	sys.MustCommand("load tcp")
	key := fmt.Sprintf("%v 7 %v 5001", core.WiredAddr, core.MobileAddr)
	sys.MustCommand("add tcp " + key)
	if depth > 0 {
		sys.MustCommand("load rdrop")
		for i := 0; i < depth; i++ {
			sys.MustCommand(fmt.Sprintf("add rdrop %s 0", key))
		}
	}
	seg := tcp.Segment{SrcPort: 7, DstPort: 5001, Seq: 1, Ack: 1,
		Flags: tcp.FlagACK, Window: 65535, Payload: pattern(1000)}
	h := ip.Header{TTL: 64, Protocol: ip.ProtoTCP, Src: core.WiredAddr, Dst: core.MobileAddr}
	raw, _ := h.Marshal(seg.Marshal(core.WiredAddr, core.MobileAddr))
	hook := sys.ProxyHost.PacketHook()
	in := sys.ProxyHost.Ifaces()[0]
	const iters = 200_000
	start := time.Now()
	for i := 0; i < iters; i++ {
		hook(raw, in)
	}
	return float64(time.Since(start).Nanoseconds()) / iters
}

// filterQueueCost measures per-packet wall-clock cost through a queue
// of depth no-op service filters (rdrop at 0%), plus the tcp filter.
// The best of several repetitions is reported; single runs at this
// scale are dominated by scheduler noise.
func filterQueueCost(depth int) (pkts int64, usPerPkt float64) {
	best := -1.0
	for rep := 0; rep < 3; rep++ {
		sys := core.NewSystem(core.Config{Seed: 16,
			Wireless: netsim.LinkConfig{Bandwidth: 100e6, Delay: time.Millisecond}})
		sys.MustCommand("load tcp")
		sys.MustCommand("load launcher")
		svc := "tcp"
		if depth > 0 {
			sys.MustCommand("load rdrop")
			for i := 0; i < depth; i++ {
				svc += " rdrop:0"
			}
		}
		sys.MustCommand(fmt.Sprintf("add launcher %v 0 %v 0 %s", core.WiredAddr, core.MobileAddr, svc))
		start := time.Now()
		res, err := sys.Transfer(pattern(2_000_000), 7, 5001, 120*time.Second)
		if err != nil || !res.Completed {
			return 0, -1
		}
		pkts = sys.Proxy.Stats.Intercepted.Load()
		us := float64(time.Since(start).Microseconds()) / float64(pkts)
		if best < 0 || us < best {
			best = us
		}
	}
	return pkts, best
}

func runE16(w io.Writer) {
	sys := core.NewSystem(core.Config{
		Seed:     99,
		Wireless: netsim.LinkConfig{Bandwidth: 5e6, Delay: 10 * time.Millisecond, Loss: netsim.Bernoulli{P: 0.03}, QueueLen: 500},
	})
	for _, c := range []string{"load tcp", "load ttsf", "load rdrop", "load launcher",
		fmt.Sprintf("add launcher %v 0 %v 0 tcp ttsf rdrop:40", core.WiredAddr, core.MobileAddr)} {
		sys.MustCommand(c)
	}
	payload := pattern(100_000)
	res, err := sys.Transfer(payload, 7, 5001, 600*time.Second)
	if err != nil {
		fmt.Fprintf(w, "transfer: %v\n", err)
		return
	}
	completed := res.Client.State() == tcp.StateClosed || res.Client.State() == tcp.StateTimeWait
	subseq := isSubsequence(res.Received, payload)
	fmt.Fprintf(w, "seeded instance (3%% wireless loss + 40%% permanent rdrop under TTSF):\n")
	fmt.Fprintf(w, "  sender completed cleanly:        %v\n", completed)
	fmt.Fprintf(w, "  receiver stream ⊆ original:      %v (%d of %d bytes)\n", subseq, len(res.Received), res.Sent)
	fmt.Fprintln(w, "full randomized property: go test ./internal/filters -run TestTTSFPropertyRandomTransformations")
}

func isSubsequence(got, want []byte) bool {
	gi := 0
	for wi := 0; wi < len(want) && gi < len(got); wi++ {
		if want[wi] == got[gi] {
			gi++
		}
	}
	return gi == len(got)
}
