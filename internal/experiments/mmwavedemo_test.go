package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestMMWaveDeterminism is the 5G scenario gate: two in-process runs
// with the same seed must produce byte-identical output — the trace
// table, every leg's goodput/occupancy line (including the SHA of the
// delivered payload), the shed timeline, and the RESULT summary. The
// scenario itself asserts the throughput and buffer-occupancy ordering
// across its legs; this test asserts the whole blockage replay is
// reproducible.
func TestMMWaveDeterminism(t *testing.T) {
	var a, b bytes.Buffer
	if err := MMWaveDemo(7, &a); err != nil {
		t.Fatalf("run 1: %v\n%s", err, a.String())
	}
	if err := MMWaveDemo(7, &b); err != nil {
		t.Fatalf("run 2: %v\n%s", err, b.String())
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		la, lb := strings.Split(a.String(), "\n"), strings.Split(b.String(), "\n")
		for i := 0; i < len(la) && i < len(lb); i++ {
			if la[i] != lb[i] {
				t.Fatalf("outputs diverge at line %d:\n run1: %s\n run2: %s", i+1, la[i], lb[i])
			}
		}
		t.Fatalf("outputs differ in length: %d vs %d bytes", a.Len(), b.Len())
	}
	out := a.String()
	for _, want := range []string{
		"blockage trace \"mmwave-urban\"",
		"leg baseline", "leg mwin", "leg mwin+shed",
		"shed timeline", "RESULT mmwave",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("mmwave output missing %q:\n%s", want, out)
		}
	}
	// The three legs deliver the same payload: one SHA, three mentions.
	shaLine := ""
	for _, line := range strings.Split(out, "\n") {
		if i := strings.Index(line, "sha="); i >= 0 && strings.HasPrefix(line, "leg ") {
			sha := line[i:]
			if shaLine == "" {
				shaLine = sha
			} else if sha != shaLine {
				t.Fatalf("legs delivered different payloads: %s vs %s", shaLine, sha)
			}
		}
	}
	if shaLine == "" {
		t.Fatal("no per-leg sha lines in output")
	}
}
