package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/tcp"
	"repro/internal/trace"
)

func init() {
	register(Experiment{
		ID:          "E21",
		Paper:       "§3.2 (AIRMAIL-style link ARQ vs TCP-aware snoop)",
		Description: "A TCP-oblivious link-layer ARQ hides loss but produces duplicates and delay spikes that trigger spurious sender retransmissions; snoop repairs loss without confusing the transport.",
		Run:         runE21,
	})
}

func runE21(w io.Writer) {
	t := trace.NewTable("E21: 300 KB over a 2 Mb/s, 25 ms link at 8% frame loss (3 seeds)",
		"link recovery", "goodput KB/s", "sender fast rexmits", "sender RTOs",
		"dup ACKs at sender", "wireless KB carried")
	type result struct {
		goodput             float64
		fast, rtos, dupAcks int64
		wirelessKB          int64
	}
	run := func(mode string) result {
		var acc result
		const seeds = 3
		for seed := int64(51); seed < 51+seeds; seed++ {
			wireless := netsim.LinkConfig{Bandwidth: 2e6, Delay: 25 * time.Millisecond,
				Loss: netsim.Bernoulli{P: 0.08}, QueueLen: 200}
			if mode == "link ARQ (AIRMAIL-style)" {
				// One ARQ round costs a frame timeout + resend over the
				// 25 ms link; lost link acks duplicate 30% of retries.
				wireless.ARQ = &netsim.ARQConfig{
					RetransDelay: 60 * time.Millisecond,
					MaxRetries:   6,
					PDup:         0.3,
				}
			}
			sys := core.NewSystem(core.Config{
				Seed:     seed,
				TCP:      tcp.Config{RcvWnd: 16384},
				Wireless: wireless,
			})
			sys.MustCommand("load tcp")
			sys.MustCommand("load launcher")
			svc := "tcp"
			if mode == "snoop (TCP-aware)" {
				sys.MustCommand("load snoop")
				svc = "tcp snoop"
			}
			sys.MustCommand(fmt.Sprintf("add launcher %v 0 %v 0 %s", core.WiredAddr, core.MobileAddr, svc))
			res, err := sys.Transfer(pattern(300_000), 7, 5001, 900*time.Second)
			if err == nil && res.Completed {
				acc.goodput += float64(res.Sent) / res.Elapsed.Seconds() / 1000
			}
			st := res.Client.Stats()
			acc.fast += st.FastRetransmits
			acc.rtos += st.Timeouts
			acc.dupAcks += st.DupAcksRcvd
			acc.wirelessKB += sys.Wireless.StatsAB().DeliveredBytes / 1000
		}
		acc.goodput /= seeds
		return acc
	}
	for _, mode := range []string{"none (plain TCP)", "link ARQ (AIRMAIL-style)", "snoop (TCP-aware)"} {
		r := run(mode)
		t.AddRow(mode, r.goodput, r.fast/3, r.rtos/3, r.dupAcks/3, r.wirelessKB/3)
	}
	t.Fprint(w)
	fmt.Fprintln(w, `
finding (the §3.2 trade-off): the oblivious ARQ hides loss completely and
posts the best raw goodput on this uncontended link — but its duplicates and
delay spikes reach the sender as duplicate ACKs, triggering spurious fast
retransmissions and window reductions for data that already arrived, and its
duplicates + the spurious retransmissions inflate the bytes actually carried
over the wireless link. Snoop recovers loss with *zero* transport confusion
and the leanest wireless usage; on a shared or saturated cell (E18), that
wasted capacity is other users' latency. This is §3.2's point: link recovery
should be TCP-aware.`)
}
