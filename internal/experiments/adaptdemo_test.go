package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestPolicyDeterminism is the adaptation-trace gate: two in-process
// runs of the adaptive-services scenario with the same seed must
// produce byte-identical output — transfers, policy transitions, trace,
// event log, metrics, everything — and that output must contain at
// least one full fire and revert per engine.
func TestPolicyDeterminism(t *testing.T) {
	var a, b bytes.Buffer
	if err := AdaptDemo(42, &a); err != nil {
		t.Fatalf("run 1: %v\n%s", err, a.String())
	}
	if err := AdaptDemo(42, &b); err != nil {
		t.Fatalf("run 2: %v\n%s", err, b.String())
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		la, lb := strings.Split(a.String(), "\n"), strings.Split(b.String(), "\n")
		for i := 0; i < len(la) && i < len(lb); i++ {
			if la[i] != lb[i] {
				t.Fatalf("outputs diverge at line %d:\n run1: %s\n run2: %s", i+1, la[i], lb[i])
			}
		}
		t.Fatalf("outputs differ in length: %d vs %d bytes", a.Len(), b.Len())
	}
	out := a.String()
	for _, want := range []string{"policy\tfire\tcompress", "policy\tfire\texpand",
		"policy\trevert\tcompress", "policy\trevert\texpand"} {
		if !strings.Contains(out, want) {
			t.Fatalf("adaptation trace missing %q:\n%s", want, out)
		}
	}
}
