package ip

import (
	"bytes"
	"testing"
)

// FuzzIPParse drives the IPv4 codec with arbitrary bytes: decoding
// must never panic, and any datagram that decodes must survive a
// decode→encode→decode round trip with identical fields and reach a
// byte-stable encoding.
func FuzzIPParse(f *testing.F) {
	// Real packets as seeds: plain, with options, odd payload length,
	// and trailing junk past TotalLen.
	h := Header{TTL: 64, Protocol: ProtoTCP,
		Src: MustParseAddr("11.11.10.99"), Dst: MustParseAddr("11.11.10.10")}
	plain, _ := h.Marshal([]byte("hello wireless world"))
	f.Add(plain)
	ho := h
	ho.Options = []byte{1, 1, 1, 0} // NOP NOP NOP EOL
	withOpts, _ := ho.Marshal([]byte{0xde, 0xad, 0xbe})
	f.Add(withOpts)
	f.Add(append(append([]byte{}, plain...), 0xff, 0xfe, 0xfd))
	f.Add([]byte{0x45})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, b []byte) {
		h1, payload1, err := Unmarshal(b)
		if err != nil {
			return
		}
		enc1, err := h1.Marshal(payload1)
		if err != nil {
			t.Fatalf("re-marshal of decoded datagram failed: %v", err)
		}
		h2, payload2, err := Unmarshal(enc1)
		if err != nil {
			t.Fatalf("decode of re-marshalled datagram failed: %v", err)
		}
		// Marshal wrote the recomputed TotalLen/Checksum back into h1,
		// so the round-tripped header must match field for field.
		if h1.TOS != h2.TOS || h1.TotalLen != h2.TotalLen || h1.ID != h2.ID ||
			h1.Flags != h2.Flags || h1.FragOff != h2.FragOff || h1.TTL != h2.TTL ||
			h1.Protocol != h2.Protocol || h1.Checksum != h2.Checksum ||
			h1.Src != h2.Src || h1.Dst != h2.Dst ||
			!bytes.Equal(h1.Options, h2.Options) {
			t.Fatalf("header changed across round trip:\n%+v\n%+v", h1, h2)
		}
		if !bytes.Equal(payload1, payload2) {
			t.Fatalf("payload changed across round trip")
		}
		if !VerifyChecksum(enc1) {
			t.Fatalf("re-marshalled datagram has bad header checksum")
		}
		enc2, err := h2.Marshal(payload2)
		if err != nil {
			t.Fatalf("second re-marshal failed: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("encoding not stable:\n% x\n% x", enc1, enc2)
		}
	})
}
