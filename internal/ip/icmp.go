package ip

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ICMP message types used by the simulator. Router discovery (RFC 1256)
// is what Mobile IP mobiles use to find routers and foreign agents when
// they enter a new network (thesis §2.1).
const (
	ICMPEchoReply           = 0
	ICMPDestUnreachable     = 3
	ICMPEcho                = 8
	ICMPRouterAdvertisement = 9
	ICMPRouterSolicitation  = 10
	ICMPTimeExceeded        = 11
)

// ICMPMessage is a decoded ICMP datagram body.
type ICMPMessage struct {
	Type byte
	Code byte
	// ID and Seq occupy the "rest of header" word for echo messages;
	// for router advertisements ID is NumAddrs<<8|EntrySize and Seq is
	// the lifetime in seconds.
	ID, Seq uint16
	Body    []byte
}

// MarshalICMP encodes the message with a correct ICMP checksum.
func MarshalICMP(m ICMPMessage) []byte {
	b := make([]byte, 8+len(m.Body))
	b[0] = m.Type
	b[1] = m.Code
	binary.BigEndian.PutUint16(b[4:], m.ID)
	binary.BigEndian.PutUint16(b[6:], m.Seq)
	copy(b[8:], m.Body)
	binary.BigEndian.PutUint16(b[2:], Checksum(b))
	return b
}

// ErrICMPChecksum reports an ICMP message whose checksum is invalid.
var ErrICMPChecksum = errors.New("ip: bad ICMP checksum")

// UnmarshalICMP decodes an ICMP datagram body, verifying its checksum.
func UnmarshalICMP(b []byte) (ICMPMessage, error) {
	var m ICMPMessage
	if len(b) < 8 {
		return m, ErrTruncated
	}
	if Checksum(b) != 0 {
		return m, ErrICMPChecksum
	}
	m.Type = b[0]
	m.Code = b[1]
	m.ID = binary.BigEndian.Uint16(b[4:])
	m.Seq = binary.BigEndian.Uint16(b[6:])
	m.Body = b[8:]
	return m, nil
}

// RouterAdvertisement is the body of an ICMP router-advertisement as a
// router or Mobile IP foreign agent periodically broadcasts it.
type RouterAdvertisement struct {
	Lifetime uint16 // seconds the advertisement remains valid
	Addrs    []Addr // advertised router addresses, preference ignored
	// AgentFlags carries the Mobile IP mobility-agent extension bits;
	// AgentFlagFA marks the router as a foreign agent offering care-of
	// service, AgentFlagHA as a home agent.
	AgentFlags byte
}

// Mobility-agent advertisement flag bits.
const (
	AgentFlagFA = 0x1
	AgentFlagHA = 0x2
)

// MarshalRouterAdvertisement encodes the advertisement as an ICMP
// message.
func MarshalRouterAdvertisement(ra RouterAdvertisement) []byte {
	body := make([]byte, 8*len(ra.Addrs)+1)
	for i, a := range ra.Addrs {
		binary.BigEndian.PutUint32(body[8*i:], uint32(a))
		binary.BigEndian.PutUint32(body[8*i+4:], 0) // preference
	}
	body[len(body)-1] = ra.AgentFlags
	return MarshalICMP(ICMPMessage{
		Type: ICMPRouterAdvertisement,
		ID:   uint16(len(ra.Addrs))<<8 | 8,
		Seq:  ra.Lifetime,
		Body: body,
	})
}

// ParseRouterAdvertisement decodes a router-advertisement message body.
func ParseRouterAdvertisement(m ICMPMessage) (RouterAdvertisement, error) {
	var ra RouterAdvertisement
	if m.Type != ICMPRouterAdvertisement {
		return ra, fmt.Errorf("ip: ICMP type %d is not a router advertisement", m.Type)
	}
	n := int(m.ID >> 8)
	if len(m.Body) < 8*n {
		return ra, ErrTruncated
	}
	ra.Lifetime = m.Seq
	for i := 0; i < n; i++ {
		ra.Addrs = append(ra.Addrs, Addr(binary.BigEndian.Uint32(m.Body[8*i:])))
	}
	if len(m.Body) > 8*n {
		ra.AgentFlags = m.Body[8*n]
	}
	return ra, nil
}
