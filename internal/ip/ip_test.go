package ip

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestAddrRoundTrip(t *testing.T) {
	cases := []string{"0.0.0.0", "11.11.10.99", "129.97.40.42", "255.255.255.255"}
	for _, s := range cases {
		a, err := ParseAddr(s)
		if err != nil {
			t.Fatalf("ParseAddr(%q): %v", s, err)
		}
		if a.String() != s {
			t.Errorf("round trip %q -> %q", s, a.String())
		}
	}
}

func TestParseAddrRejectsBad(t *testing.T) {
	for _, s := range []string{"", "1.2.3", "300.1.1.1", "a.b.c.d"} {
		if _, err := ParseAddr(s); err == nil {
			t.Errorf("ParseAddr(%q) succeeded, want error", s)
		}
	}
}

func TestAddrMask(t *testing.T) {
	a := MustParseAddr("11.11.10.99")
	if got := a.Mask(24); got != MustParseAddr("11.11.10.0") {
		t.Errorf("Mask(24) = %v", got)
	}
	if got := a.Mask(16); got != MustParseAddr("11.11.0.0") {
		t.Errorf("Mask(16) = %v", got)
	}
	if got := a.Mask(0); got != 0 {
		t.Errorf("Mask(0) = %v", got)
	}
	if got := a.Mask(32); got != a {
		t.Errorf("Mask(32) = %v", got)
	}
}

func TestHeaderMarshalUnmarshal(t *testing.T) {
	h := Header{
		TOS:      0x10,
		ID:       0x1234,
		Flags:    FlagDF,
		TTL:      64,
		Protocol: ProtoTCP,
		Src:      MustParseAddr("11.11.10.99"),
		Dst:      MustParseAddr("11.11.10.10"),
	}
	payload := []byte("hello wireless world")
	b, err := h.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyChecksum(b) {
		t.Fatal("marshalled header fails checksum verification")
	}
	g, p, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if g.Src != h.Src || g.Dst != h.Dst || g.Protocol != h.Protocol ||
		g.TTL != h.TTL || g.ID != h.ID || g.TOS != h.TOS || g.Flags != h.Flags {
		t.Fatalf("decoded header mismatch: %+v vs %+v", g, h)
	}
	if !bytes.Equal(p, payload) {
		t.Fatalf("payload mismatch: %q", p)
	}
	if int(g.TotalLen) != HeaderLen+len(payload) {
		t.Fatalf("TotalLen = %d", g.TotalLen)
	}
}

func TestHeaderWithOptions(t *testing.T) {
	h := Header{TTL: 1, Protocol: ProtoUDP, Options: []byte{1, 1, 1, 1}}
	b, err := h.Marshal([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	g, p, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(g.Options, h.Options) {
		t.Fatalf("options mismatch: %v", g.Options)
	}
	if string(p) != "x" {
		t.Fatalf("payload = %q", p)
	}
}

func TestMarshalRejectsBadOptions(t *testing.T) {
	h := Header{Options: []byte{1, 2, 3}}
	if _, err := h.Marshal(nil); err == nil {
		t.Fatal("odd options length accepted")
	}
	h.Options = make([]byte, 44)
	if _, err := h.Marshal(nil); err == nil {
		t.Fatal("oversize options accepted")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, _, err := Unmarshal(make([]byte, 10)); err != ErrTruncated {
		t.Errorf("short buffer: %v", err)
	}
	b := make([]byte, 20)
	b[0] = 6 << 4
	if _, _, err := Unmarshal(b); err != ErrVersion {
		t.Errorf("wrong version: %v", err)
	}
	// Valid header claiming more bytes than present.
	h := Header{TTL: 1, Protocol: ProtoTCP}
	enc, _ := h.Marshal([]byte("abcdef"))
	if _, _, err := Unmarshal(enc[:22]); err != ErrTruncated {
		t.Errorf("truncated payload: %v", err)
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	h := Header{TTL: 9, Protocol: ProtoTCP, Src: 1, Dst: 2}
	b, _ := h.Marshal(nil)
	b[8] ^= 0xff // flip TTL
	if VerifyChecksum(b) {
		t.Fatal("corrupted header passed checksum")
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 worked example.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data); got != ^uint16(0xddf2) {
		t.Fatalf("Checksum = %#x, want %#x", got, ^uint16(0xddf2))
	}
}

func TestPseudoHeaderChecksumVaries(t *testing.T) {
	seg := []byte{0, 80, 0, 99, 0, 0, 0, 0, 0, 0, 0, 0, 5 << 4, 0, 0, 0, 0, 0, 0, 0}
	a := PseudoHeaderChecksum(1, 2, ProtoTCP, seg)
	b := PseudoHeaderChecksum(1, 3, ProtoTCP, seg)
	if a == b {
		t.Fatal("pseudo-header checksum ignores destination address")
	}
}

func TestEncapsulateDecapsulate(t *testing.T) {
	inner := Header{TTL: 64, Protocol: ProtoTCP, Src: MustParseAddr("10.0.0.1"), Dst: MustParseAddr("10.0.0.2")}
	in, _ := inner.Marshal([]byte("payload"))
	enc, err := Encapsulate(MustParseAddr("1.1.1.1"), MustParseAddr("2.2.2.2"), in, 7)
	if err != nil {
		t.Fatal(err)
	}
	oh, _, err := Unmarshal(enc)
	if err != nil {
		t.Fatal(err)
	}
	if oh.Protocol != ProtoIPIP || oh.Src != MustParseAddr("1.1.1.1") {
		t.Fatalf("outer header wrong: %+v", oh)
	}
	out, err := Decapsulate(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, in) {
		t.Fatal("inner packet corrupted by tunnel round trip")
	}
	// Decapsulating a non-tunnel packet must fail.
	if _, err := Decapsulate(in); err == nil {
		t.Fatal("decapsulated a TCP packet")
	}
}

func TestICMPRoundTrip(t *testing.T) {
	m := ICMPMessage{Type: ICMPEcho, Code: 0, ID: 77, Seq: 3, Body: []byte("ping")}
	b := MarshalICMP(m)
	g, err := UnmarshalICMP(b)
	if err != nil {
		t.Fatal(err)
	}
	if g.Type != m.Type || g.ID != m.ID || g.Seq != m.Seq || !bytes.Equal(g.Body, m.Body) {
		t.Fatalf("ICMP round trip mismatch: %+v", g)
	}
	b[8] ^= 1
	if _, err := UnmarshalICMP(b); err != ErrICMPChecksum {
		t.Fatalf("corrupted ICMP: err = %v", err)
	}
}

func TestRouterAdvertisementRoundTrip(t *testing.T) {
	ra := RouterAdvertisement{
		Lifetime:   1800,
		Addrs:      []Addr{MustParseAddr("11.11.10.1"), MustParseAddr("11.11.10.2")},
		AgentFlags: AgentFlagFA,
	}
	b := MarshalRouterAdvertisement(ra)
	m, err := UnmarshalICMP(b)
	if err != nil {
		t.Fatal(err)
	}
	g, err := ParseRouterAdvertisement(m)
	if err != nil {
		t.Fatal(err)
	}
	if g.Lifetime != ra.Lifetime || len(g.Addrs) != 2 || g.Addrs[0] != ra.Addrs[0] || g.AgentFlags != AgentFlagFA {
		t.Fatalf("advertisement mismatch: %+v", g)
	}
	// Parsing a non-advertisement must fail.
	if _, err := ParseRouterAdvertisement(ICMPMessage{Type: ICMPEcho}); err == nil {
		t.Fatal("parsed echo as router advertisement")
	}
}

// Property: header marshal/unmarshal round-trips for arbitrary field
// values, and the checksum always verifies.
func TestHeaderRoundTripProperty(t *testing.T) {
	f := func(tos, ttl, proto byte, id uint16, src, dst uint32, payload []byte) bool {
		if len(payload) > 1000 {
			payload = payload[:1000]
		}
		h := Header{TOS: tos, TTL: ttl, Protocol: proto, ID: id, Src: Addr(src), Dst: Addr(dst)}
		b, err := h.Marshal(payload)
		if err != nil {
			return false
		}
		if !VerifyChecksum(b) {
			return false
		}
		g, p, err := Unmarshal(b)
		if err != nil {
			return false
		}
		return g.Src == h.Src && g.Dst == h.Dst && g.TTL == ttl &&
			g.Protocol == proto && g.ID == id && bytes.Equal(p, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
