// Package ip implements the IPv4 wire format used throughout the
// simulated network: header encode/decode with real ones'-complement
// checksums, protocol numbers, and IP-in-IP encapsulation as used by
// Mobile IP tunneling (RFC 2003).
//
// The Comma service proxy manipulates packets at this level — filters
// receive the raw bytes of a full IP datagram and may rewrite any part
// of it — so the formats here match the real protocols bit-for-bit.
package ip

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Protocol numbers carried in the IPv4 Protocol field.
const (
	ProtoICMP = 1
	ProtoIPIP = 4 // IP-in-IP encapsulation (Mobile IP tunnels)
	ProtoTCP  = 6
	ProtoUDP  = 17
)

// HeaderLen is the length of an IPv4 header without options. The
// simulator does not generate IP options, but the decoder accepts them.
const HeaderLen = 20

// MaxPacket is the largest datagram the simulated networks carry.
const MaxPacket = 65535

// Addr is an IPv4 address in host byte order.
type Addr uint32

// AddrFrom4 builds an Addr from four dotted-quad octets.
func AddrFrom4(a, b, c, d byte) Addr {
	return Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// ParseAddr parses a dotted-quad string such as "11.11.10.99". The
// string must be exactly four decimal octets — trailing characters,
// signs, or missing parts are errors (control-interface input passes
// through here, so laxness would silently accept operator typos).
func ParseAddr(s string) (Addr, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("ip: parse %q: need 4 octets", s)
	}
	var oct [4]byte
	for i, ps := range parts {
		v, err := strconv.ParseUint(ps, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("ip: parse %q: bad octet %q", s, ps)
		}
		oct[i] = byte(v)
	}
	return AddrFrom4(oct[0], oct[1], oct[2], oct[3]), nil
}

// MustParseAddr is ParseAddr for trusted literals; it panics on error.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// String renders the address in dotted-quad form.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// IsZero reports whether the address is the wildcard 0.0.0.0.
func (a Addr) IsZero() bool { return a == 0 }

// Mask applies a prefix length, clearing host bits.
func (a Addr) Mask(prefix int) Addr {
	if prefix <= 0 {
		return 0
	}
	if prefix >= 32 {
		return a
	}
	return a & Addr(^uint32(0)<<(32-prefix))
}

// Header is a decoded IPv4 header. Fields mirror the wire layout; IHL
// and Version are implied (options are preserved verbatim in Options).
type Header struct {
	TOS      byte
	TotalLen uint16
	ID       uint16
	Flags    byte   // upper 3 bits of the fragment word
	FragOff  uint16 // 13-bit fragment offset, in 8-byte units
	TTL      byte
	Protocol byte
	Checksum uint16 // as read from the wire; recomputed on Marshal
	Src, Dst Addr
	Options  []byte // raw options, length must be a multiple of 4
}

// Flag bits for Header.Flags.
const (
	FlagDF = 0x2 // don't fragment
	FlagMF = 0x1 // more fragments
)

var (
	// ErrTruncated reports a buffer too short for the encoded header.
	ErrTruncated = errors.New("ip: truncated packet")
	// ErrVersion reports a packet whose version field is not 4.
	ErrVersion = errors.New("ip: not an IPv4 packet")
)

// HeaderLength returns the encoded header length in bytes,
// including options.
func (h *Header) HeaderLength() int { return HeaderLen + len(h.Options) }

// Marshal encodes the header followed by payload into a fresh slice,
// setting TotalLen and Checksum. The caller's Header is updated with
// the computed values.
func (h *Header) Marshal(payload []byte) ([]byte, error) {
	optLen := len(h.Options)
	if optLen%4 != 0 || optLen > 40 {
		return nil, fmt.Errorf("ip: bad options length %d", optLen)
	}
	hl := HeaderLen + optLen
	total := hl + len(payload)
	if total > MaxPacket {
		return nil, fmt.Errorf("ip: packet too large (%d bytes)", total)
	}
	h.TotalLen = uint16(total)
	b := make([]byte, total)
	b[0] = 4<<4 | byte(hl/4)
	b[1] = h.TOS
	binary.BigEndian.PutUint16(b[2:], h.TotalLen)
	binary.BigEndian.PutUint16(b[4:], h.ID)
	binary.BigEndian.PutUint16(b[6:], uint16(h.Flags)<<13|h.FragOff&0x1fff)
	b[8] = h.TTL
	b[9] = h.Protocol
	// checksum at b[10:12] computed below
	binary.BigEndian.PutUint32(b[12:], uint32(h.Src))
	binary.BigEndian.PutUint32(b[16:], uint32(h.Dst))
	copy(b[20:], h.Options)
	h.Checksum = Checksum(b[:hl])
	binary.BigEndian.PutUint16(b[10:], h.Checksum)
	copy(b[hl:], payload)
	return b, nil
}

// Unmarshal decodes an IPv4 header from b. It returns the decoded
// header and the payload sub-slice of b (aliasing b, not a copy).
// The header checksum is not verified; call VerifyChecksum.
func Unmarshal(b []byte) (Header, []byte, error) {
	var h Header
	if len(b) < HeaderLen {
		return h, nil, ErrTruncated
	}
	if b[0]>>4 != 4 {
		return h, nil, ErrVersion
	}
	hl := int(b[0]&0x0f) * 4
	if hl < HeaderLen || len(b) < hl {
		return h, nil, ErrTruncated
	}
	h.TOS = b[1]
	h.TotalLen = binary.BigEndian.Uint16(b[2:])
	if int(h.TotalLen) < hl || int(h.TotalLen) > len(b) {
		return h, nil, ErrTruncated
	}
	h.ID = binary.BigEndian.Uint16(b[4:])
	frag := binary.BigEndian.Uint16(b[6:])
	h.Flags = byte(frag >> 13)
	h.FragOff = frag & 0x1fff
	h.TTL = b[8]
	h.Protocol = b[9]
	h.Checksum = binary.BigEndian.Uint16(b[10:])
	h.Src = Addr(binary.BigEndian.Uint32(b[12:]))
	h.Dst = Addr(binary.BigEndian.Uint32(b[16:]))
	if hl > HeaderLen {
		h.Options = b[HeaderLen:hl]
	}
	return h, b[hl:h.TotalLen], nil
}

// VerifyChecksum reports whether the header checksum of the encoded
// packet b is valid.
func VerifyChecksum(b []byte) bool {
	if len(b) < HeaderLen {
		return false
	}
	hl := int(b[0]&0x0f) * 4
	if hl < HeaderLen || len(b) < hl {
		return false
	}
	return Checksum(b[:hl]) == 0
}

// Checksum computes the RFC 1071 Internet checksum over b. For a
// buffer whose checksum field is zeroed it returns the value to store;
// over a buffer containing a correct checksum it returns zero.
func Checksum(b []byte) uint16 {
	return finishChecksum(sumBytes(0, b))
}

// sumBytes accumulates the 16-bit ones'-complement sum of b onto acc.
func sumBytes(acc uint32, b []byte) uint32 {
	n := len(b) &^ 1
	for i := 0; i < n; i += 2 {
		acc += uint32(binary.BigEndian.Uint16(b[i:]))
	}
	if len(b)%2 == 1 {
		acc += uint32(b[len(b)-1]) << 8
	}
	return acc
}

func finishChecksum(acc uint32) uint16 {
	for acc>>16 != 0 {
		acc = acc&0xffff + acc>>16
	}
	return ^uint16(acc)
}

// PseudoHeaderChecksum starts a transport checksum with the IPv4
// pseudo-header (src, dst, protocol, transport length) and adds the
// transport segment bytes. Used by TCP and UDP.
func PseudoHeaderChecksum(src, dst Addr, proto byte, segment []byte) uint16 {
	var ph [12]byte
	binary.BigEndian.PutUint32(ph[0:], uint32(src))
	binary.BigEndian.PutUint32(ph[4:], uint32(dst))
	ph[9] = proto
	binary.BigEndian.PutUint16(ph[10:], uint16(len(segment)))
	return finishChecksum(sumBytes(sumBytes(0, ph[:]), segment))
}

// Encapsulate wraps an encoded IP packet inner in a new IP-in-IP outer
// datagram from src to dst, as a Mobile IP home agent does when
// forwarding to a care-of address.
func Encapsulate(src, dst Addr, inner []byte, id uint16) ([]byte, error) {
	outer := Header{
		TTL:      64,
		Protocol: ProtoIPIP,
		ID:       id,
		Src:      src,
		Dst:      dst,
	}
	return outer.Marshal(inner)
}

// Decapsulate strips an IP-in-IP outer header, returning a copy of the
// inner datagram. It fails if the packet is not protocol 4.
func Decapsulate(b []byte) ([]byte, error) {
	h, payload, err := Unmarshal(b)
	if err != nil {
		return nil, err
	}
	if h.Protocol != ProtoIPIP {
		return nil, fmt.Errorf("ip: decapsulate: protocol %d, want %d", h.Protocol, ProtoIPIP)
	}
	inner := make([]byte, len(payload))
	copy(inner, payload)
	return inner, nil
}
