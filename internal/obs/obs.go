// Package obs is the deterministic observability layer shared by the
// service proxy, the EEM, the network simulator, and the TCP stack.
//
// It has two halves. The event bus records structured records
// (sim.Time, subsystem, kind, key, fields) in the exact order the
// scheduler produced them, with ring-buffer retention and an optional
// pcap-style packet-capture sink. The metrics registry unifies the
// per-package counters (proxy.Stats, netsim.LinkStats/NodeStats, the
// tcp MIB, eem.Server stats) behind named, snapshotable counters and
// gauges rendered through internal/trace.
//
// Determinism contract: everything emitted derives from simulation
// state — virtual time, seeded randomness, scheduler order. Two runs
// of the same seeded scenario therefore produce byte-identical event
// logs and metrics snapshots; `make obs-determinism` and the
// TestObsDeterminism golden test enforce exactly that. Wall-clock
// time, goroutine identity, and map iteration order must never leak
// into an event or a snapshot.
package obs

import (
	"fmt"
	"io"
	"strconv"

	"repro/internal/sim"
)

// Field is one key=value pair attached to an event. Values are
// formatted at emission time so records are immutable and rendering is
// byte-stable.
type Field struct {
	K, V string
}

// F builds a Field, formatting v deterministically. Supported value
// types are the ones simulation state is made of; everything else goes
// through %v (callers must ensure that is deterministic too — no maps,
// no pointers).
func F(k string, v any) Field {
	var s string
	switch x := v.(type) {
	case string:
		s = x
	case int:
		s = strconv.Itoa(x)
	case int64:
		s = strconv.FormatInt(x, 10)
	case uint64:
		s = strconv.FormatUint(x, 10)
	case uint16:
		s = strconv.FormatUint(uint64(x), 10)
	case bool:
		s = strconv.FormatBool(x)
	case float64:
		s = strconv.FormatFloat(x, 'g', -1, 64)
	case sim.Time:
		s = x.String()
	case fmt.Stringer:
		s = x.String()
	default:
		s = fmt.Sprintf("%v", v)
	}
	return Field{K: k, V: s}
}

// Event is one structured observability record.
type Event struct {
	At     sim.Time // virtual time of emission
	Seq    uint64   // global emission index (0-based, never recycled)
	Subsys string   // emitting subsystem: "proxy", "eem", "netsim", "tcp"
	Kind   string   // event kind within the subsystem
	Key    string   // primary key: stream key, session id, link name
	Fields []Field  // ordered extra fields
}

// appendLine renders the event in the canonical tab-separated log
// format: "time<TAB>subsys<TAB>kind<TAB>key<TAB>k=v k=v".
func (e Event) appendLine(b []byte) []byte {
	b = append(b, e.At.String()...)
	b = append(b, '\t')
	b = append(b, e.Subsys...)
	b = append(b, '\t')
	b = append(b, e.Kind...)
	b = append(b, '\t')
	b = append(b, e.Key...)
	for i, f := range e.Fields {
		if i == 0 {
			b = append(b, '\t')
		} else {
			b = append(b, ' ')
		}
		b = append(b, f.K...)
		b = append(b, '=')
		b = append(b, f.V...)
	}
	return append(b, '\n')
}

// String renders the event as one canonical log line (no newline).
func (e Event) String() string {
	b := e.appendLine(nil)
	return string(b[:len(b)-1])
}

// DefaultRetention is the ring-buffer capacity of a Bus when the
// caller does not choose one.
const DefaultRetention = 4096

// Bus is the event bus: an append-only log in scheduler order with
// bounded retention. A nil *Bus is valid and inert, so subsystems emit
// unconditionally through whatever bus they were (or were not) given.
//
// The bus is not internally synchronized: like every simulation
// component it lives on the scheduler's single thread (the realtime
// driver funnels daemon access through DoSync).
type Bus struct {
	clock *sim.Scheduler
	ring  []Event
	next  int    // ring slot the next event lands in
	total uint64 // events emitted over the bus's lifetime

	capture      *Capture
	tracePackets bool
}

// NewBus creates a bus stamping events with clock's virtual time and
// retaining the last retention events (DefaultRetention if <= 0).
func NewBus(clock *sim.Scheduler, retention int) *Bus {
	if retention <= 0 {
		retention = DefaultRetention
	}
	return &Bus{clock: clock, ring: make([]Event, 0, retention)}
}

// Enabled reports whether events emitted here are recorded.
func (b *Bus) Enabled() bool { return b != nil }

// Emit appends one event. Safe on a nil bus (no-op).
func (b *Bus) Emit(subsys, kind, key string, fields ...Field) {
	if b == nil {
		return
	}
	e := Event{At: b.clock.Now(), Seq: b.total, Subsys: subsys, Kind: kind, Key: key, Fields: fields}
	b.total++
	if len(b.ring) < cap(b.ring) {
		b.ring = append(b.ring, e)
		b.next = len(b.ring) % cap(b.ring)
		return
	}
	b.ring[b.next] = e
	b.next = (b.next + 1) % len(b.ring)
}

// SetCapture attaches a pcap-style packet sink fed by EmitPacket.
func (b *Bus) SetCapture(c *Capture) { b.capture = c }

// SetTracePackets toggles per-packet events from EmitPacket. Off by
// default: the packet path is the hot path, and per-packet records are
// only worth their cost when someone asked to see them.
func (b *Bus) SetTracePackets(on bool) { b.tracePackets = on }

// PacketsTraced reports whether EmitPacket currently does anything, so
// hot paths can skip building the key string. Safe on a nil bus.
func (b *Bus) PacketsTraced() bool {
	return b != nil && (b.tracePackets || b.capture != nil)
}

// EmitPacket records a packet-level event: the raw datagram goes to
// the capture sink (if attached) and a compact event (length only) to
// the ring (if packet tracing is on). Safe on a nil bus.
func (b *Bus) EmitPacket(subsys, kind, key string, raw []byte) {
	if !b.PacketsTraced() {
		return
	}
	if b.capture != nil {
		b.capture.Packet(b.clock.Now(), raw)
	}
	if b.tracePackets {
		b.Emit(subsys, kind, key, F("len", len(raw)))
	}
}

// Total returns the number of events emitted over the bus's lifetime
// (retained or not).
func (b *Bus) Total() uint64 {
	if b == nil {
		return 0
	}
	return b.total
}

// Events returns the retained events, oldest first.
func (b *Bus) Events() []Event {
	if b == nil || len(b.ring) == 0 {
		return nil
	}
	out := make([]Event, 0, len(b.ring))
	if len(b.ring) < cap(b.ring) {
		return append(out, b.ring...)
	}
	out = append(out, b.ring[b.next:]...)
	return append(out, b.ring[:b.next]...)
}

// WriteLog writes the canonical event log: a header line followed by
// one line per retained event. The rendering is byte-stable — two
// deterministic runs produce identical logs.
func (b *Bus) WriteLog(w io.Writer) error {
	evs := b.Events()
	if _, err := fmt.Fprintf(w, "# obs events: total=%d retained=%d\n", b.Total(), len(evs)); err != nil {
		return err
	}
	var line []byte
	for _, e := range evs {
		line = e.appendLine(line[:0])
		if _, err := w.Write(line); err != nil {
			return err
		}
	}
	return nil
}

// Tail renders the last n retained events (all of them when n <= 0 or
// exceeds retention), one line each.
func (b *Bus) Tail(n int) string {
	evs := b.Events()
	if n > 0 && n < len(evs) {
		evs = evs[len(evs)-n:]
	}
	var out []byte
	for _, e := range evs {
		out = e.appendLine(out)
	}
	return string(out)
}
