package obs

import (
	"encoding/binary"
	"io"

	"repro/internal/sim"
)

// pcap file constants: classic libpcap format, microsecond timestamps,
// LINKTYPE_RAW (packets begin with the IP header — exactly what the
// interception hook sees).
const (
	pcapMagic    = 0xa1b2c3d4
	pcapVerMajor = 2
	pcapVerMinor = 4
	pcapLinkRaw  = 101

	// DefaultSnapLen bounds the bytes stored per packet.
	DefaultSnapLen = 65535
)

// Capture writes raw IP datagrams as a pcap stream readable by
// tcpdump/wireshark. Timestamps are virtual (seconds/microseconds from
// simulation start), so a capture is as deterministic as the run that
// produced it. Attach one to a Bus with SetCapture and feed it through
// Bus.EmitPacket.
type Capture struct {
	w       io.Writer
	snaplen int
	started bool
	packets uint64
	err     error
	scratch [16]byte
}

// NewCapture creates a capture writing to w, storing at most snaplen
// bytes per packet (DefaultSnapLen if <= 0).
func NewCapture(w io.Writer, snaplen int) *Capture {
	if snaplen <= 0 {
		snaplen = DefaultSnapLen
	}
	return &Capture{w: w, snaplen: snaplen}
}

// Packet appends one datagram stamped with virtual time at. The global
// header is written lazily before the first packet. Write errors are
// sticky: the first one stops the capture and is reported by Err.
func (c *Capture) Packet(at sim.Time, raw []byte) {
	if c == nil || c.err != nil {
		return
	}
	if !c.started {
		c.started = true
		var hdr [24]byte
		binary.LittleEndian.PutUint32(hdr[0:], pcapMagic)
		binary.LittleEndian.PutUint16(hdr[4:], pcapVerMajor)
		binary.LittleEndian.PutUint16(hdr[6:], pcapVerMinor)
		// thiszone=0, sigfigs=0
		binary.LittleEndian.PutUint32(hdr[16:], uint32(c.snaplen))
		binary.LittleEndian.PutUint32(hdr[20:], pcapLinkRaw)
		if _, err := c.w.Write(hdr[:]); err != nil {
			c.err = err
			return
		}
	}
	incl := len(raw)
	if incl > c.snaplen {
		incl = c.snaplen
	}
	ns := int64(at)
	binary.LittleEndian.PutUint32(c.scratch[0:], uint32(ns/1e9))
	binary.LittleEndian.PutUint32(c.scratch[4:], uint32(ns%1e9/1e3))
	binary.LittleEndian.PutUint32(c.scratch[8:], uint32(incl))
	binary.LittleEndian.PutUint32(c.scratch[12:], uint32(len(raw)))
	if _, err := c.w.Write(c.scratch[:]); err != nil {
		c.err = err
		return
	}
	if _, err := c.w.Write(raw[:incl]); err != nil {
		c.err = err
		return
	}
	c.packets++
}

// Packets returns the number of packets successfully written.
func (c *Capture) Packets() uint64 { return c.packets }

// Err returns the first write error, if any.
func (c *Capture) Err() error { return c.err }
