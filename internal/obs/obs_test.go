package obs

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestBusRecordsInOrder(t *testing.T) {
	s := sim.NewScheduler(1)
	b := NewBus(s, 8)
	b.Emit("proxy", "a", "k1", F("n", 1))
	s.After(time.Second, func() { b.Emit("eem", "b", "k2") })
	s.Run()
	evs := b.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2", len(evs))
	}
	if evs[0].Kind != "a" || evs[1].Kind != "b" {
		t.Fatalf("order wrong: %v", evs)
	}
	if evs[0].At != 0 || evs[1].At != sim.Time(time.Second) {
		t.Fatalf("timestamps wrong: %v %v", evs[0].At, evs[1].At)
	}
	if evs[0].Seq != 0 || evs[1].Seq != 1 {
		t.Fatalf("seq wrong: %d %d", evs[0].Seq, evs[1].Seq)
	}
	want := "0s\tproxy\ta\tk1\tn=1"
	if got := evs[0].String(); got != want {
		t.Fatalf("line = %q, want %q", got, want)
	}
}

func TestBusRingRetention(t *testing.T) {
	s := sim.NewScheduler(1)
	b := NewBus(s, 4)
	for i := 0; i < 10; i++ {
		b.Emit("x", "e", "k", F("i", i))
	}
	if b.Total() != 10 {
		t.Fatalf("total = %d", b.Total())
	}
	evs := b.Events()
	if len(evs) != 4 {
		t.Fatalf("retained = %d, want 4", len(evs))
	}
	for j, e := range evs {
		want := Field{K: "i", V: string(rune('6' + j))}
		if e.Fields[0] != want {
			t.Fatalf("retained[%d] = %v, want i=%s", j, e.Fields[0], want.V)
		}
	}
	// Tail clamps to what is retained.
	if got := strings.Count(b.Tail(2), "\n"); got != 2 {
		t.Fatalf("Tail(2) lines = %d", got)
	}
	if got := strings.Count(b.Tail(0), "\n"); got != 4 {
		t.Fatalf("Tail(0) lines = %d", got)
	}
}

func TestNilBusIsInert(t *testing.T) {
	var b *Bus
	b.Emit("x", "y", "z")
	b.EmitPacket("x", "y", "z", []byte{1})
	if b.Enabled() || b.PacketsTraced() || b.Total() != 0 || b.Events() != nil {
		t.Fatal("nil bus not inert")
	}
}

func TestWriteLogIsByteStable(t *testing.T) {
	run := func() string {
		s := sim.NewScheduler(42)
		b := NewBus(s, 16)
		b.Emit("netsim", "loss", "10.0.0.1->10.0.0.2", F("len", 40))
		s.After(3*time.Millisecond, func() { b.Emit("eem", "update", "s1", F("vars", 2)) })
		s.Run()
		var buf bytes.Buffer
		if err := b.WriteLog(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, c := run(), run()
	if a != c {
		t.Fatalf("two identical runs produced different logs:\n%s\n---\n%s", a, c)
	}
	if !strings.HasPrefix(a, "# obs events: total=2 retained=2\n") {
		t.Fatalf("header: %q", a)
	}
}

func TestRegistrySnapshotSorted(t *testing.T) {
	r := NewRegistry()
	n := int64(7)
	r.Counter("z.count", func() int64 { return n })
	r.Gauge("a.gauge", func() float64 { return 1.5 })
	r.Counter("m.count", func() int64 { return 2 * n })
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot = %v", snap)
	}
	if snap[0].Name != "a.gauge" || snap[1].Name != "m.count" || snap[2].Name != "z.count" {
		t.Fatalf("not sorted: %v", snap)
	}
	if snap[0].Value != "1.5" || snap[1].Value != "14" || snap[2].Value != "7" {
		t.Fatalf("values: %v", snap)
	}
	n = 9
	if got := r.Snapshot()[2].Value; got != "9" {
		t.Fatalf("counter not read live: %v", got)
	}
	tbl := r.Table("t").String()
	if !strings.Contains(tbl, "a.gauge") || !strings.Contains(tbl, "counter") {
		t.Fatalf("table rendering: %q", tbl)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("x", func() int64 { return 0 })
	r.Gauge("x", func() float64 { return 0 })
}

func TestCaptureWritesPcap(t *testing.T) {
	var buf bytes.Buffer
	c := NewCapture(&buf, 0)
	pkt := []byte{0x45, 0, 0, 4}
	c.Packet(sim.Time(1500*time.Millisecond), pkt)
	c.Packet(sim.Time(2*time.Second), pkt)
	if c.Err() != nil || c.Packets() != 2 {
		t.Fatalf("err=%v packets=%d", c.Err(), c.Packets())
	}
	b := buf.Bytes()
	if len(b) != 24+2*(16+len(pkt)) {
		t.Fatalf("capture size = %d", len(b))
	}
	if got := binary.LittleEndian.Uint32(b[0:]); got != pcapMagic {
		t.Fatalf("magic = %#x", got)
	}
	if got := binary.LittleEndian.Uint32(b[20:]); got != pcapLinkRaw {
		t.Fatalf("linktype = %d", got)
	}
	// First record: ts 1.5s, lengths 4/4.
	rec := b[24:]
	if sec, usec := binary.LittleEndian.Uint32(rec[0:]), binary.LittleEndian.Uint32(rec[4:]); sec != 1 || usec != 500000 {
		t.Fatalf("timestamp = %d.%06d", sec, usec)
	}
	if incl, orig := binary.LittleEndian.Uint32(rec[8:]), binary.LittleEndian.Uint32(rec[12:]); incl != 4 || orig != 4 {
		t.Fatalf("lengths = %d/%d", incl, orig)
	}
}

func TestCaptureSnaplenTruncates(t *testing.T) {
	var buf bytes.Buffer
	c := NewCapture(&buf, 2)
	c.Packet(0, []byte{1, 2, 3, 4, 5})
	b := buf.Bytes()
	rec := b[24:]
	if incl, orig := binary.LittleEndian.Uint32(rec[8:]), binary.LittleEndian.Uint32(rec[12:]); incl != 2 || orig != 5 {
		t.Fatalf("lengths = %d/%d, want 2/5", incl, orig)
	}
	if len(b) != 24+16+2 {
		t.Fatalf("size = %d", len(b))
	}
}

func TestEmitPacketGating(t *testing.T) {
	s := sim.NewScheduler(1)
	b := NewBus(s, 8)
	b.EmitPacket("proxy", "pkt", "k", []byte{1, 2})
	if b.Total() != 0 {
		t.Fatal("EmitPacket recorded with tracing off")
	}
	b.SetTracePackets(true)
	if !b.PacketsTraced() {
		t.Fatal("PacketsTraced false with tracing on")
	}
	b.EmitPacket("proxy", "pkt", "k", []byte{1, 2})
	if b.Total() != 1 {
		t.Fatal("EmitPacket did not record with tracing on")
	}
	var buf bytes.Buffer
	b.SetTracePackets(false)
	b.SetCapture(NewCapture(&buf, 0))
	b.EmitPacket("proxy", "pkt", "k", []byte{1, 2})
	if b.Total() != 1 {
		t.Fatal("capture-only EmitPacket polluted the event ring")
	}
	if buf.Len() == 0 {
		t.Fatal("capture sink received nothing")
	}
}
