package obs

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/trace"
)

// Registry is the metrics side of the observability layer: a set of
// named counters and gauges read on demand from the subsystems that
// own the underlying state. Registration hands over a closure, not a
// value, so the registry never needs updating on the hot path — a
// snapshot reads whatever the counters say at that instant, in sorted
// name order.
type Registry struct {
	counters map[string]func() int64
	gauges   map[string]func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]func() int64),
		gauges:   make(map[string]func() float64),
	}
}

// Counter registers a monotonically increasing integer metric read
// through fn. Duplicate names are wiring bugs and panic.
func (r *Registry) Counter(name string, fn func() int64) {
	r.checkNew(name)
	r.counters[name] = fn
}

// Gauge registers a point-in-time float metric read through fn.
// Duplicate names are wiring bugs and panic.
func (r *Registry) Gauge(name string, fn func() float64) {
	r.checkNew(name)
	r.gauges[name] = fn
}

func (r *Registry) checkNew(name string) {
	if _, dup := r.counters[name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %q", name))
	}
	if _, dup := r.gauges[name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %q", name))
	}
}

// Sample is one metric at one instant, with its value already rendered
// in the canonical (byte-stable) form.
type Sample struct {
	Name  string
	Kind  string // "counter" or "gauge"
	Value string
}

// Names lists all registered metric names, sorted.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.counters)+len(r.gauges))
	for n := range r.counters {
		out = append(out, n)
	}
	for n := range r.gauges {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Snapshot reads every metric once and returns the samples sorted by
// name. Sorting (not registration order) makes the snapshot
// independent of wiring order and map iteration.
func (r *Registry) Snapshot() []Sample {
	out := make([]Sample, 0, len(r.counters)+len(r.gauges))
	for _, n := range r.Names() {
		if fn, ok := r.counters[n]; ok {
			out = append(out, Sample{Name: n, Kind: "counter", Value: strconv.FormatInt(fn(), 10)})
		} else {
			out = append(out, Sample{Name: n, Kind: "gauge",
				Value: strconv.FormatFloat(r.gauges[n](), 'g', -1, 64)})
		}
	}
	return out
}

// Table renders a snapshot as an aligned trace.Table, the same
// rendering the experiment artifacts use.
func (r *Registry) Table(title string) *trace.Table {
	t := trace.NewTable(title, "metric", "kind", "value")
	for _, s := range r.Snapshot() {
		t.AddRow(s.Name, s.Kind, s.Value)
	}
	return t
}
