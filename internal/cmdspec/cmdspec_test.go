package cmdspec

import "testing"

// TestHelpLineGolden pins the SP help line byte-for-byte: it is part of
// the control-interface surface that experiment outputs and Kati
// transcripts depend on, so grammar-table edits must show up here.
func TestHelpLineGolden(t *testing.T) {
	const want = "commands: load remove add delete report streams filters service unservice services stats events flows auth help\n"
	if got := HelpLine(); got != want {
		t.Fatalf("HelpLine():\n got %q\nwant %q", got, want)
	}
	const wantExt = "commands: load remove add delete report streams filters service unservice services stats events flows auth help policy\n"
	if got := HelpLine("policy"); got != wantExt {
		t.Fatalf("HelpLine(policy):\n got %q\nwant %q", got, wantExt)
	}
	// Extension names are sorted regardless of registration order.
	const wantTwo = "commands: load remove add delete report streams filters service unservice services stats events flows auth help aaa policy\n"
	if got := HelpLine("policy", "aaa"); got != wantTwo {
		t.Fatalf("HelpLine(policy, aaa):\n got %q\nwant %q", got, wantTwo)
	}
}

// TestKatiHelpGolden pins the generated forwarded-command section of
// Kati's help text.
func TestKatiHelpGolden(t *testing.T) {
	const want = "" +
		"  load <filter-lib>                      load a filter library\n" +
		"  remove <filter-lib>                    unload a filter library\n" +
		"  add <filter> <srcIP> <srcPort> <dstIP> <dstPort> [args] add a filter/service to a stream key\n" +
		"  delete <filter> <srcIP> <srcPort> <dstIP> <dstPort> remove a filter/service from a stream key\n" +
		"  report [<filter>]                      per-filter stream report\n" +
		"  streams                                active streams with packet/byte accounting\n" +
		"  filters                                loaded and loadable filters\n" +
		"  service <name> <filter[:args]>...      define a named composition\n" +
		"  unservice <name>                       undefine a named composition\n" +
		"  services                               list defined services\n" +
		"  stats                                  unified metrics snapshot (proxy/links/tcp/eem)\n" +
		"  events [n]                             tail of the observability event log\n" +
		"  flows [n]                              per-flow L4 records (active + recently closed)\n" +
		"  auth <token>                           authenticate a guarded proxy\n" +
		"  policy list|add <rule>|del <name>|trace [n] inspect and mutate adaptive policy rules\n" +
		"  migrate <srcIP> <srcPort> <dstIP> <dstPort> <peerIP> hand the keyed stream (and its filter state) to the peer SP\n"
	if got := KatiHelp(); got != want {
		t.Fatalf("KatiHelp():\n got %q\nwant %q", got, want)
	}
}

func TestLookupAndFlags(t *testing.T) {
	for _, name := range []string{"load", "remove", "add", "delete", "report",
		"streams", "filters", "service", "unservice", "services", "stats",
		"events", "flows", "auth", "help", "policy", "migrate"} {
		if _, ok := Lookup(name); !ok {
			t.Errorf("Lookup(%q) missing", name)
		}
	}
	if _, ok := Lookup("bogus"); ok {
		t.Errorf("Lookup(bogus) unexpectedly present")
	}
	for _, name := range []string{"load", "remove", "add", "delete", "service", "unservice", "policy", "migrate"} {
		if !Mutating(name) {
			t.Errorf("Mutating(%q) = false, want true", name)
		}
	}
	for _, name := range []string{"report", "streams", "filters", "services",
		"stats", "events", "flows", "auth", "help", "bogus"} {
		if Mutating(name) {
			t.Errorf("Mutating(%q) = true, want false", name)
		}
	}
	if KatiForwards("help") || KatiForwards("bogus") {
		t.Errorf("KatiForwards should exclude help and unknown names")
	}
	if !KatiForwards("load") || !KatiForwards("policy") || !KatiForwards("migrate") {
		t.Errorf("KatiForwards should include load, policy, and migrate")
	}
}

func TestArityAndUsage(t *testing.T) {
	cases := []struct {
		name       string
		n          int
		ok         bool
		usageError string
	}{
		{"load", 0, false, "error: usage: load <filter-lib>\n"},
		{"load", 1, true, ""},
		{"load", 2, false, ""},
		{"add", 4, false, "error: usage: add <filter> <srcIP> <srcPort> <dstIP> <dstPort> [args]\n"},
		{"add", 5, true, ""},
		{"add", 9, true, ""},
		{"delete", 5, true, ""},
		{"delete", 6, false, "error: usage: delete <filter> <srcIP> <srcPort> <dstIP> <dstPort>\n"},
		{"report", 0, true, ""},
		{"help", 0, true, ""},
		{"policy", 0, false, "error: usage: policy list|add <rule>|del <name>|trace [n]\n"},
		{"policy", 1, true, ""},
		{"policy", 12, true, ""},
	}
	for _, c := range cases {
		s, ok := Lookup(c.name)
		if !ok {
			t.Fatalf("Lookup(%q) missing", c.name)
		}
		if got := s.ArityOK(c.n); got != c.ok {
			t.Errorf("%s.ArityOK(%d) = %v, want %v", c.name, c.n, got, c.ok)
		}
		if c.usageError != "" && s.UsageError() != c.usageError {
			t.Errorf("%s.UsageError() = %q, want %q", c.name, s.UsageError(), c.usageError)
		}
	}
}
