// Package cmdspec is the single authoritative table of the SP control
// grammar: every command's name, argument signature, arity bounds,
// help text, mutation flag, and data-plane routing class lives here.
// proxy/control.go (arity checks, usage diagnostics, help, auth
// gating), dataplane/plane.go (shard routing), and kati/kati.go
// (forwarding set, generated help) all read this table, so the three
// surfaces cannot drift apart.
package cmdspec

import (
	"fmt"
	"sort"
	"strings"
)

// Route classifies how the sharded data plane executes a command.
type Route int

// Routing classes.
const (
	// RouteShard0 answers from shard 0 (replicated shared state).
	RouteShard0 Route = iota
	// RouteBroadcast mutates every shard under the quiesce barrier.
	RouteBroadcast
	// RouteKeyed routes an exact-key mutation to the owning shard and
	// falls back to broadcast for wild-card keys.
	RouteKeyed
	// RouteMergedReport merges per-shard report data.
	RouteMergedReport
	// RouteMergedStreams merges per-shard stream accounting.
	RouteMergedStreams
	// RouteMergedFlows merges per-shard flow-log records.
	RouteMergedFlows
)

// Spec describes one control command.
type Spec struct {
	// Name is the command word.
	Name string
	// Args is the display signature after the name ("" for none).
	Args string
	// Help is the one-line description rendered in Kati's help.
	Help string
	// MinArgs/MaxArgs bound the argument count (MaxArgs -1 = unbounded).
	MinArgs, MaxArgs int
	// Mutating marks commands that change proxy state (auth-gated under
	// a ControlPolicy token).
	Mutating bool
	// Kati marks commands the Kati shell forwards verbatim to the
	// currently selected service proxy.
	Kati bool
	// Ext marks plane-extension commands (registered at runtime via
	// Plane.RegisterCommand, absent from a bare proxy): they are not
	// listed in the base help line and a lone proxy answers them with
	// "unknown command".
	Ext bool
	// Route is the data-plane routing class.
	Route Route
}

// Usage renders "name args".
func (s *Spec) Usage() string {
	if s.Args == "" {
		return s.Name
	}
	return s.Name + " " + s.Args
}

// UsageError renders the control-interface usage diagnostic.
func (s *Spec) UsageError() string {
	return fmt.Sprintf("error: usage: %s\n", s.Usage())
}

// ArityOK reports whether n arguments satisfy the bounds.
func (s *Spec) ArityOK(n int) bool {
	if n < s.MinArgs {
		return false
	}
	return s.MaxArgs < 0 || n <= s.MaxArgs
}

// Specs is the command table, in help-line order.
var Specs = []Spec{
	{Name: "load", Args: "<filter-lib>", Help: "load a filter library",
		MinArgs: 1, MaxArgs: 1, Mutating: true, Kati: true, Route: RouteBroadcast},
	{Name: "remove", Args: "<filter-lib>", Help: "unload a filter library",
		MinArgs: 1, MaxArgs: 1, Mutating: true, Kati: true, Route: RouteBroadcast},
	{Name: "add", Args: "<filter> <srcIP> <srcPort> <dstIP> <dstPort> [args]",
		Help:    "add a filter/service to a stream key",
		MinArgs: 5, MaxArgs: -1, Mutating: true, Kati: true, Route: RouteKeyed},
	{Name: "delete", Args: "<filter> <srcIP> <srcPort> <dstIP> <dstPort>",
		Help:    "remove a filter/service from a stream key",
		MinArgs: 5, MaxArgs: 5, Mutating: true, Kati: true, Route: RouteKeyed},
	{Name: "report", Args: "[<filter>]", Help: "per-filter stream report",
		MinArgs: 0, MaxArgs: -1, Kati: true, Route: RouteMergedReport},
	{Name: "streams", Help: "active streams with packet/byte accounting",
		MinArgs: 0, MaxArgs: -1, Kati: true, Route: RouteMergedStreams},
	{Name: "filters", Help: "loaded and loadable filters",
		MinArgs: 0, MaxArgs: -1, Kati: true, Route: RouteShard0},
	{Name: "service", Args: "<name> <filter[:args]>...", Help: "define a named composition",
		MinArgs: 2, MaxArgs: -1, Mutating: true, Kati: true, Route: RouteBroadcast},
	{Name: "unservice", Args: "<name>", Help: "undefine a named composition",
		MinArgs: 1, MaxArgs: 1, Mutating: true, Kati: true, Route: RouteBroadcast},
	{Name: "services", Help: "list defined services",
		MinArgs: 0, MaxArgs: -1, Kati: true, Route: RouteShard0},
	{Name: "stats", Help: "unified metrics snapshot (proxy/links/tcp/eem)",
		MinArgs: 0, MaxArgs: -1, Kati: true, Route: RouteShard0},
	{Name: "events", Args: "[n]", Help: "tail of the observability event log",
		MinArgs: 0, MaxArgs: -1, Kati: true, Route: RouteShard0},
	{Name: "flows", Args: "[n]", Help: "per-flow L4 records (active + recently closed)",
		MinArgs: 0, MaxArgs: 1, Kati: true, Route: RouteMergedFlows},
	{Name: "auth", Args: "<token>", Help: "authenticate a guarded proxy",
		MinArgs: 1, MaxArgs: 1, Kati: true, Route: RouteShard0},
	{Name: "help", Help: "list commands",
		MinArgs: 0, MaxArgs: -1, Route: RouteShard0},
	{Name: "policy", Args: "list|add <rule>|del <name>|trace [n]",
		Help:    "inspect and mutate adaptive policy rules",
		MinArgs: 1, MaxArgs: -1, Mutating: true, Kati: true, Ext: true, Route: RouteShard0},
	{Name: "migrate", Args: "<srcIP> <srcPort> <dstIP> <dstPort> <peerIP>",
		Help:    "hand the keyed stream (and its filter state) to the peer SP",
		MinArgs: 5, MaxArgs: 5, Mutating: true, Kati: true, Ext: true, Route: RouteShard0},
}

// index maps names to table entries.
var index = func() map[string]*Spec {
	m := make(map[string]*Spec, len(Specs))
	for i := range Specs {
		m[Specs[i].Name] = &Specs[i]
	}
	return m
}()

// Lookup finds a command's spec.
func Lookup(name string) (*Spec, bool) {
	s, ok := index[name]
	return s, ok
}

// Mutating reports whether name is a state-changing command. Unknown
// names are not mutating (they fail before touching state).
func Mutating(name string) bool {
	s, ok := index[name]
	return ok && s.Mutating
}

// KatiForwards reports whether the Kati shell forwards name verbatim
// to the current service proxy.
func KatiForwards(name string) bool {
	s, ok := index[name]
	return ok && s.Kati
}

// HelpLine renders the SP "help" output: the base (non-extension)
// commands in table order, then any runtime-registered extension
// command names, sorted.
func HelpLine(extNames ...string) string {
	var names []string
	for i := range Specs {
		if !Specs[i].Ext {
			names = append(names, Specs[i].Name)
		}
	}
	sorted := append([]string(nil), extNames...)
	sort.Strings(sorted)
	names = append(names, sorted...)
	return "commands: " + strings.Join(names, " ") + "\n"
}

// KatiHelp renders the forwarded-command section of Kati's help text,
// one aligned line per Kati-forwarded command in table order.
func KatiHelp() string {
	var b strings.Builder
	for i := range Specs {
		s := &Specs[i]
		if !s.Kati {
			continue
		}
		fmt.Fprintf(&b, "  %-38s %s\n", s.Usage(), s.Help)
	}
	return b.String()
}
