package tcp_test

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/ip"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/tcp"
)

// pair wires two hosts together over one link and attaches stacks.
type pair struct {
	sched  *sim.Scheduler
	net    *netsim.Network
	a, b   *netsim.Node
	sa, sb *tcp.Stack
	link   *netsim.Link
}

func newPair(seed int64, cfg netsim.LinkConfig, tcpCfg tcp.Config) *pair {
	s := sim.NewScheduler(seed)
	n := netsim.New(s)
	a := n.AddNode("a")
	b := n.AddNode("b")
	link := n.Connect(a, ip.MustParseAddr("10.0.0.1"), b, ip.MustParseAddr("10.0.0.2"), cfg)
	p := &pair{sched: s, net: n, a: a, b: b, link: link}
	p.sa = tcp.NewStack(a, tcpCfg)
	p.sb = tcp.NewStack(b, tcpCfg)
	a.RegisterProto(ip.ProtoTCP, func(h ip.Header, payload, raw []byte, in *netsim.Iface) {
		p.sa.Deliver(h.Src, h.Dst, payload)
	})
	b.RegisterProto(ip.ProtoTCP, func(h ip.Header, payload, raw []byte, in *netsim.Iface) {
		p.sb.Deliver(h.Src, h.Dst, payload)
	})
	return p
}

// transfer sends payload from a to b over a fresh connection, runs the
// simulation to completion, and returns what b received plus the two
// connections.
func (p *pair) transfer(t *testing.T, payload []byte, deadline time.Duration) ([]byte, *tcp.Conn, *tcp.Conn) {
	t.Helper()
	var rcvd bytes.Buffer
	var server *tcp.Conn
	_, err := p.sb.Listen(80, func(c *tcp.Conn) {
		server = c
		c.OnData = func(b []byte) { rcvd.Write(b) }
		c.OnRemoteClose = func() { c.Close() }
	})
	if err != nil {
		t.Fatal(err)
	}
	client, err := p.sa.Connect(p.b.Addr(), 80)
	if err != nil {
		t.Fatal(err)
	}
	client.OnEstablished = func() {
		if err := client.Write(payload); err != nil {
			t.Errorf("write: %v", err)
		}
		client.Close()
	}
	p.sched.RunFor(deadline)
	return rcvd.Bytes(), client, server
}

func TestHandshakeAndSmallTransfer(t *testing.T) {
	p := newPair(1, netsim.LinkConfig{}, tcp.Config{})
	got, client, server := p.transfer(t, []byte("hello, wireless world"), 5*time.Second)
	if string(got) != "hello, wireless world" {
		t.Fatalf("received %q", got)
	}
	if client.State() != tcp.StateClosed {
		t.Fatalf("client state = %v (FIN not acked?)", client.State())
	}
	if server == nil {
		t.Fatal("server conn never accepted")
	}
}

func TestBulkTransferLossless(t *testing.T) {
	p := newPair(2, netsim.LinkConfig{Bandwidth: 10e6, Delay: 5 * time.Millisecond}, tcp.Config{})
	payload := make([]byte, 500_000)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	got, client, _ := p.transfer(t, payload, 60*time.Second)
	if !bytes.Equal(got, payload) {
		t.Fatalf("bulk payload corrupted: got %d bytes, want %d", len(got), len(payload))
	}
	st := client.Stats()
	if st.Retransmits != 0 {
		t.Errorf("lossless link saw %d retransmits", st.Retransmits)
	}
}

func TestBulkTransferConstrainedLink(t *testing.T) {
	// 1 Mb/s, small queue: congestion drops force retransmission, but
	// everything must still arrive intact and in order.
	p := newPair(3, netsim.LinkConfig{Bandwidth: 1e6, Delay: 10 * time.Millisecond, QueueLen: 8}, tcp.Config{})
	payload := make([]byte, 300_000)
	for i := range payload {
		payload[i] = byte(i)
	}
	got, client, _ := p.transfer(t, payload, 120*time.Second)
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload corrupted: got %d bytes, want %d", len(got), len(payload))
	}
	// Goodput sanity: 300KB over 1Mb/s is 2.4s minimum; the transfer
	// should not have taken more than ~10x that even with drops.
	if client.Stats().Timeouts > 50 {
		t.Errorf("excessive timeouts: %d", client.Stats().Timeouts)
	}
}

func TestTransferOverLossyLink(t *testing.T) {
	p := newPair(4, netsim.LinkConfig{
		Bandwidth: 2e6, Delay: 20 * time.Millisecond,
		Loss: netsim.Bernoulli{P: 0.05}, QueueLen: 100,
	}, tcp.Config{})
	payload := make([]byte, 100_000)
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	got, client, _ := p.transfer(t, payload, 300*time.Second)
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload corrupted over lossy link: got %d want %d bytes", len(got), len(payload))
	}
	if client.Stats().Retransmits == 0 {
		t.Error("5% loss produced zero retransmits?")
	}
}

func TestFastRetransmitTriggers(t *testing.T) {
	// Drop exactly one data packet mid-stream with a hook; the stream
	// behind it generates dup ACKs and fast retransmit recovers without
	// an RTO.
	p := newPair(5, netsim.LinkConfig{Bandwidth: 10e6, Delay: 5 * time.Millisecond}, tcp.Config{})
	dropped := false
	dataSegs := 0
	p.b.SetHook(func(raw []byte, in *netsim.Iface) [][]byte {
		h, payload, err := ip.Unmarshal(raw)
		if err != nil || h.Protocol != ip.ProtoTCP {
			return [][]byte{raw}
		}
		seg, err := tcp.Unmarshal(payload)
		if err != nil || len(seg.Payload) == 0 {
			return [][]byte{raw}
		}
		dataSegs++
		// Drop the 20th data segment: by then cwnd is large enough
		// that plenty of later segments follow to generate dup ACKs.
		if dataSegs == 20 && !dropped {
			dropped = true
			return nil
		}
		return [][]byte{raw}
	})
	payload := make([]byte, 120_000)
	got, client, _ := p.transfer(t, payload, 30*time.Second)
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload corrupted: %d bytes", len(got))
	}
	if !dropped {
		t.Skip("hook never matched a segment to drop")
	}
	st := client.Stats()
	if st.FastRetransmits == 0 {
		t.Errorf("expected a fast retransmit, stats: %+v", st)
	}
	if st.Timeouts != 0 {
		t.Errorf("single loss should not need an RTO, saw %d", st.Timeouts)
	}
}

func TestRTOOnTotalBlackout(t *testing.T) {
	p := newPair(6, netsim.LinkConfig{Bandwidth: 1e6, Delay: 5 * time.Millisecond}, tcp.Config{})
	payload := make([]byte, 200_000)
	var rcvd bytes.Buffer
	p.sb.Listen(80, func(c *tcp.Conn) { c.OnData = func(b []byte) { rcvd.Write(b) } })
	client, _ := p.sa.Connect(p.b.Addr(), 80)
	client.OnEstablished = func() { client.Write(payload) }
	// Let it get started, then black out the link for 3 seconds.
	p.sched.RunFor(100 * time.Millisecond)
	p.link.SetDown(true)
	p.sched.RunFor(3 * time.Second)
	p.link.SetDown(false)
	p.sched.RunFor(60 * time.Second)
	if rcvd.Len() != len(payload) {
		t.Fatalf("received %d of %d bytes after blackout", rcvd.Len(), len(payload))
	}
	if client.Stats().Timeouts == 0 {
		t.Error("blackout produced no RTO")
	}
	if client.CongestionWindow() > 64*1024 {
		t.Errorf("cwnd = %d", client.CongestionWindow())
	}
}

func TestExponentialBackoffDuringBlackout(t *testing.T) {
	p := newPair(7, netsim.LinkConfig{}, tcp.Config{})
	p.sb.Listen(80, func(c *tcp.Conn) {})
	client, _ := p.sa.Connect(p.b.Addr(), 80)
	client.OnEstablished = func() {
		// Cut the link the instant the handshake completes so the
		// whole write is stranded in flight.
		p.link.SetDown(true)
		client.Write(make([]byte, 1000))
	}
	p.sched.RunFor(30 * time.Second)
	st := client.Stats()
	// With doubling from ~200ms-1s, 30s of blackout allows only a
	// handful of timeouts; linear retry would give dozens.
	if st.Timeouts == 0 {
		t.Fatal("no timeouts during blackout")
	}
	if st.Timeouts > 10 {
		t.Fatalf("timeouts = %d; backoff not exponential", st.Timeouts)
	}
}

func TestZeroWindowPersist(t *testing.T) {
	// Receiver advertises a zero window by having a tiny buffer that
	// we fill via a hook rewriting the advertised window to zero.
	p := newPair(8, netsim.LinkConfig{}, tcp.Config{})
	var rcvd bytes.Buffer
	p.sb.Listen(80, func(c *tcp.Conn) { c.OnData = func(b []byte) { rcvd.Write(b) } })
	client, _ := p.sa.Connect(p.b.Addr(), 80)

	// Hook on host a rewrites ACKs from b: window := 0 for a while.
	stall := true
	p.a.SetHook(func(raw []byte, in *netsim.Iface) [][]byte {
		if !stall {
			return [][]byte{raw}
		}
		h, payload, err := ip.Unmarshal(raw)
		if err != nil || h.Protocol != ip.ProtoTCP {
			return [][]byte{raw}
		}
		seg, err := tcp.Unmarshal(payload)
		if err != nil || seg.Flags&tcp.FlagSYN != 0 {
			return [][]byte{raw}
		}
		seg.Window = 0
		out, _ := h.Marshal(seg.Marshal(h.Src, h.Dst))
		return [][]byte{out}
	})

	client.OnEstablished = func() { client.Write(make([]byte, 10_000)) }
	p.sched.RunFor(5 * time.Second)
	if client.Stats().ZeroWindowSeen == 0 {
		t.Fatal("sender never saw the zero window")
	}
	if client.Stats().PersistProbes == 0 {
		t.Fatal("sender never sent persist probes")
	}
	midway := rcvd.Len()
	stall = false
	p.sched.RunFor(30 * time.Second)
	if rcvd.Len() != 10_000 {
		t.Fatalf("received %d bytes after window reopened (was %d mid-stall)", rcvd.Len(), midway)
	}
}

func TestCleanCloseBothDirections(t *testing.T) {
	p := newPair(9, netsim.LinkConfig{}, tcp.Config{})
	var serverConn *tcp.Conn
	serverSawEOF := false
	p.sb.Listen(80, func(c *tcp.Conn) {
		serverConn = c
		c.OnRemoteClose = func() {
			serverSawEOF = true
			c.Write([]byte("goodbye"))
			c.Close()
		}
	})
	var clientGot bytes.Buffer
	clientClosed := false
	client, _ := p.sa.Connect(p.b.Addr(), 80)
	client.OnData = func(b []byte) { clientGot.Write(b) }
	client.OnClose = func(err error) {
		if err != nil {
			t.Errorf("client close error: %v", err)
		}
		clientClosed = true
	}
	client.OnEstablished = func() {
		client.Write([]byte("hello"))
		client.Close()
	}
	p.sched.RunFor(30 * time.Second)
	if !serverSawEOF {
		t.Fatal("server never saw client FIN")
	}
	if clientGot.String() != "goodbye" {
		t.Fatalf("client got %q", clientGot.String())
	}
	if !clientClosed {
		t.Fatal("client never fully closed")
	}
	if serverConn.State() != tcp.StateClosed {
		t.Fatalf("server state = %v", serverConn.State())
	}
	if p.sa.ConnCount()+p.sb.ConnCount() != 0 {
		t.Fatalf("connections leaked: %d + %d", p.sa.ConnCount(), p.sb.ConnCount())
	}
}

func TestRSTToUnknownPort(t *testing.T) {
	p := newPair(10, netsim.LinkConfig{}, tcp.Config{})
	client, _ := p.sa.Connect(p.b.Addr(), 9999) // nothing listening
	var closeErr error
	gotClose := false
	client.OnClose = func(err error) { closeErr = err; gotClose = true }
	p.sched.RunFor(5 * time.Second)
	if !gotClose {
		t.Fatal("client never notified of refused connection")
	}
	if closeErr == nil {
		t.Fatal("refused connection reported clean close")
	}
}

func TestAbortSendsRST(t *testing.T) {
	p := newPair(11, netsim.LinkConfig{}, tcp.Config{})
	var server *tcp.Conn
	var serverErr error
	serverClosed := false
	p.sb.Listen(80, func(c *tcp.Conn) {
		server = c
		c.OnClose = func(err error) { serverErr = err; serverClosed = true }
	})
	client, _ := p.sa.Connect(p.b.Addr(), 80)
	client.OnEstablished = func() {
		client.Write([]byte("data"))
	}
	p.sched.RunFor(time.Second)
	client.Abort()
	p.sched.RunFor(time.Second)
	if server == nil || !serverClosed {
		t.Fatal("server did not observe the reset")
	}
	if serverErr == nil {
		t.Fatal("server close error is nil, want reset")
	}
}

func TestMSSNegotiation(t *testing.T) {
	sched := sim.NewScheduler(12)
	n := netsim.New(sched)
	a := n.AddNode("a")
	b := n.AddNode("b")
	n.Connect(a, ip.MustParseAddr("10.0.0.1"), b, ip.MustParseAddr("10.0.0.2"), netsim.LinkConfig{})
	sa := tcp.NewStack(a, tcp.Config{MSS: 1460})
	sb := tcp.NewStack(b, tcp.Config{MSS: 536})
	a.RegisterProto(ip.ProtoTCP, func(h ip.Header, p, raw []byte, in *netsim.Iface) { sa.Deliver(h.Src, h.Dst, p) })
	b.RegisterProto(ip.ProtoTCP, func(h ip.Header, p, raw []byte, in *netsim.Iface) { sb.Deliver(h.Src, h.Dst, p) })
	maxSeen := 0
	sb.OnSegment = func(send bool, src, dst ip.Addr, seg *tcp.Segment) {
		if !send && len(seg.Payload) > maxSeen {
			maxSeen = len(seg.Payload)
		}
	}
	sb.Listen(80, func(c *tcp.Conn) {})
	client, _ := sa.Connect(b.Addr(), 80)
	client.OnEstablished = func() { client.Write(make([]byte, 20_000)) }
	sched.RunFor(10 * time.Second)
	if client.MSS() != 536 {
		t.Fatalf("negotiated MSS = %d, want 536", client.MSS())
	}
	if maxSeen > 536 {
		t.Fatalf("segment of %d bytes exceeded negotiated MSS", maxSeen)
	}
}

func TestFlowControlRespectsWindow(t *testing.T) {
	// Small receive window: the sender must never have more than the
	// advertised window outstanding.
	p := newPair(13, netsim.LinkConfig{Bandwidth: 100e6, Delay: 50 * time.Millisecond}, tcp.Config{RcvWnd: 8192})
	maxOutstanding := 0
	p.sa.OnSegment = func(send bool, src, dst ip.Addr, seg *tcp.Segment) {
		if send && len(seg.Payload) > 0 {
			// can't see una directly; rely on window semantics below
		}
	}
	var rcvd bytes.Buffer
	p.sb.Listen(80, func(c *tcp.Conn) { c.OnData = func(b []byte) { rcvd.Write(b) } })
	client, _ := p.sa.Connect(p.b.Addr(), 80)
	client.OnEstablished = func() { client.Write(make([]byte, 100_000)) }
	// Sample outstanding data over time.
	var sample func()
	sample = func() {
		out := client.BufferedOut() - 0
		_ = out
		if fl := flight(client); fl > maxOutstanding {
			maxOutstanding = fl
		}
		if p.sched.Pending() > 0 {
			p.sched.After(10*time.Millisecond, sample)
		}
	}
	p.sched.After(10*time.Millisecond, sample)
	p.sched.RunFor(60 * time.Second)
	if rcvd.Len() != 100_000 {
		t.Fatalf("received %d bytes", rcvd.Len())
	}
	if maxOutstanding > 8192 {
		t.Fatalf("outstanding %d exceeded advertised window 8192", maxOutstanding)
	}
}

// flight computes sent-but-unacked payload via stats.
func flight(c *tcp.Conn) int {
	st := c.Stats()
	return int(st.BytesSent - st.BytesAcked) // overcounts with rexmits; fine as a bound check helper
}

func TestSlowStartGrowth(t *testing.T) {
	p := newPair(14, netsim.LinkConfig{Bandwidth: 100e6, Delay: 20 * time.Millisecond}, tcp.Config{})
	p.sb.Listen(80, func(c *tcp.Conn) {})
	client, _ := p.sa.Connect(p.b.Addr(), 80)
	client.OnEstablished = func() { client.Write(make([]byte, 200_000)) }
	initial := client.CongestionWindow()
	p.sched.RunFor(500 * time.Millisecond)
	if client.CongestionWindow() <= initial*2 {
		t.Fatalf("cwnd grew from %d only to %d in 0.5s of slow start",
			initial, client.CongestionWindow())
	}
}

func TestRTTEstimation(t *testing.T) {
	p := newPair(15, netsim.LinkConfig{Bandwidth: 100e6, Delay: 30 * time.Millisecond}, tcp.Config{})
	p.sb.Listen(80, func(c *tcp.Conn) {})
	client, _ := p.sa.Connect(p.b.Addr(), 80)
	client.OnEstablished = func() { client.Write(make([]byte, 50_000)) }
	p.sched.RunFor(5 * time.Second)
	srtt := client.SRTT()
	if srtt < 55*time.Millisecond || srtt > 150*time.Millisecond {
		t.Fatalf("SRTT = %v, want ≈ 60ms+", srtt)
	}
	if client.RTO() < client.SRTT() {
		t.Fatalf("RTO %v < SRTT %v", client.RTO(), client.SRTT())
	}
}

func TestSimultaneousTransferBothDirections(t *testing.T) {
	p := newPair(16, netsim.LinkConfig{Bandwidth: 5e6, Delay: 10 * time.Millisecond}, tcp.Config{})
	up := make([]byte, 80_000)
	down := make([]byte, 80_000)
	for i := range up {
		up[i] = byte(i)
		down[i] = byte(i * 3)
	}
	var gotUp, gotDown bytes.Buffer
	p.sb.Listen(80, func(c *tcp.Conn) {
		c.OnData = func(b []byte) { gotUp.Write(b) }
		c.Write(down)
	})
	client, _ := p.sa.Connect(p.b.Addr(), 80)
	client.OnData = func(b []byte) { gotDown.Write(b) }
	client.OnEstablished = func() { client.Write(up) }
	p.sched.RunFor(120 * time.Second)
	if !bytes.Equal(gotUp.Bytes(), up) {
		t.Fatalf("upstream corrupted: %d bytes", gotUp.Len())
	}
	if !bytes.Equal(gotDown.Bytes(), down) {
		t.Fatalf("downstream corrupted: %d bytes", gotDown.Len())
	}
}

func TestSegmentCodecRoundTrip(t *testing.T) {
	seg := tcp.Segment{
		SrcPort: 7, DstPort: 1169,
		Seq: 0xdeadbeef, Ack: 0x01020304,
		Flags: tcp.FlagACK | tcp.FlagPSH, Window: 8760,
		MSS: 1460, Payload: []byte("payload bytes"),
	}
	src, dst := ip.MustParseAddr("11.11.10.99"), ip.MustParseAddr("11.11.10.10")
	raw := seg.Marshal(src, dst)
	if !tcp.VerifyChecksum(src, dst, raw) {
		t.Fatal("checksum invalid after marshal")
	}
	got, err := tcp.Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != seg.Seq || got.Ack != seg.Ack || got.MSS != 1460 ||
		got.Window != 8760 || !bytes.Equal(got.Payload, seg.Payload) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	// Corruption must be detected.
	raw[len(raw)-1] ^= 0xff
	if tcp.VerifyChecksum(src, dst, raw) {
		t.Fatal("corrupted segment passed checksum")
	}
}

func TestSegmentFlagString(t *testing.T) {
	s := tcp.Segment{Flags: tcp.FlagSYN | tcp.FlagACK}
	if s.FlagString() != "SA" {
		t.Fatalf("FlagString = %q", s.FlagString())
	}
	s.Flags = 0
	if s.FlagString() != "." {
		t.Fatalf("FlagString = %q", s.FlagString())
	}
}

// Property: for random payload sizes and loss rates up to 10%, the
// receiver always gets exactly the sent bytes.
func TestTransferIntegrityProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property test is slow")
	}
	f := func(seed int64, sizeK uint8, lossPct uint8) bool {
		size := (int(sizeK)%64 + 1) * 1024
		loss := float64(lossPct%10) / 100
		p := newPair(seed, netsim.LinkConfig{
			Bandwidth: 5e6, Delay: 10 * time.Millisecond,
			Loss: netsim.Bernoulli{P: loss}, QueueLen: 1000,
		}, tcp.Config{})
		payload := make([]byte, size)
		for i := range payload {
			payload[i] = byte(int(seed) + i)
		}
		var rcvd bytes.Buffer
		p.sb.Listen(80, func(c *tcp.Conn) { c.OnData = func(b []byte) { rcvd.Write(b) } })
		client, err := p.sa.Connect(p.b.Addr(), 80)
		if err != nil {
			return false
		}
		client.OnEstablished = func() { client.Write(payload) }
		p.sched.RunFor(600 * time.Second)
		if !bytes.Equal(rcvd.Bytes(), payload) {
			t.Logf("seed=%d size=%d loss=%.2f: got %d bytes want %d",
				seed, size, loss, rcvd.Len(), size)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestConnectToSelfPortReuse(t *testing.T) {
	p := newPair(17, netsim.LinkConfig{}, tcp.Config{})
	p.sb.Listen(80, func(c *tcp.Conn) {})
	seen := map[uint16]bool{}
	for i := 0; i < 5; i++ {
		c, err := p.sa.Connect(p.b.Addr(), 80)
		if err != nil {
			t.Fatal(err)
		}
		if seen[c.LocalPort()] {
			t.Fatalf("ephemeral port %d reused while live", c.LocalPort())
		}
		seen[c.LocalPort()] = true
	}
}

func TestListenDuplicatePortFails(t *testing.T) {
	p := newPair(18, netsim.LinkConfig{}, tcp.Config{})
	if _, err := p.sb.Listen(80, func(*tcp.Conn) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.sb.Listen(80, func(*tcp.Conn) {}); err == nil {
		t.Fatal("duplicate listen succeeded")
	}
}

func TestWriteAfterCloseFails(t *testing.T) {
	p := newPair(19, netsim.LinkConfig{}, tcp.Config{})
	p.sb.Listen(80, func(c *tcp.Conn) {})
	client, _ := p.sa.Connect(p.b.Addr(), 80)
	established := false
	client.OnEstablished = func() {
		established = true
		client.Close()
		if err := client.Write([]byte("x")); err == nil {
			t.Error("write after close succeeded")
		}
	}
	p.sched.RunFor(5 * time.Second)
	if !established {
		t.Fatal("never established")
	}
}

func ExampleSegment_String() {
	s := tcp.Segment{Seq: 1000, Ack: 500, Window: 8760, Flags: tcp.FlagACK | tcp.FlagPSH, Payload: make([]byte, 1000)}
	fmt.Println(s.String())
	// Output: 1000:2000(1000) ack 500 win 8760 [PA]
}

func TestNagleCoalescesSmallWrites(t *testing.T) {
	run := func(nagle bool) (segments int64, received int) {
		p := newPair(21, netsim.LinkConfig{Bandwidth: 10e6, Delay: 20 * time.Millisecond},
			tcp.Config{Nagle: nagle})
		var rcvd bytes.Buffer
		p.sb.Listen(80, func(c *tcp.Conn) { c.OnData = func(b []byte) { rcvd.Write(b) } })
		client, _ := p.sa.Connect(p.b.Addr(), 80)
		// Dribble 100 ten-byte writes faster than the RTT.
		var drip func(i int)
		drip = func(i int) {
			client.Write(make([]byte, 10))
			if i < 99 {
				p.sched.After(time.Millisecond, func() { drip(i + 1) })
			}
		}
		client.OnEstablished = func() { drip(0) }
		p.sched.RunFor(30 * time.Second)
		st := client.Stats()
		return st.SegmentsSent, rcvd.Len()
	}
	segsPlain, rcvdPlain := run(false)
	segsNagle, rcvdNagle := run(true)
	if rcvdPlain != 1000 || rcvdNagle != 1000 {
		t.Fatalf("delivery broken: plain=%d nagle=%d", rcvdPlain, rcvdNagle)
	}
	if segsNagle*2 >= segsPlain {
		t.Fatalf("Nagle did not coalesce: %d vs %d segments", segsNagle, segsPlain)
	}
	t.Logf("plain: %d segments, nagle: %d segments for the same 1000 bytes", segsPlain, segsNagle)
}
