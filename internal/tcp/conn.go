package tcp

import (
	"errors"
	"sort"
	"time"

	"repro/internal/ip"
	"repro/internal/sim"
)

// Stats counts per-connection protocol events, used by the experiment
// harness to show where time and bandwidth went.
type Stats struct {
	BytesSent       int64 // payload bytes passed to the network (incl. rexmits)
	BytesAcked      int64 // payload bytes acknowledged by the peer
	BytesReceived   int64 // payload bytes delivered to the application
	SegmentsSent    int64
	SegmentsRcvd    int64
	Retransmits     int64 // fast retransmits + timeouts
	Timeouts        int64 // RTO firings
	FastRetransmits int64
	DupAcksRcvd     int64
	ZeroWindowSeen  int64 // times the peer advertised a zero window
	PersistProbes   int64
}

// ErrReset is delivered to OnClose when the peer resets the connection.
var ErrReset = errors.New("tcp: connection reset by peer")

// Conn is one endpoint of a TCP connection. All methods must be called
// from the simulation goroutine (the event loop is single-threaded).
type Conn struct {
	stack *Stack
	tuple fourTuple
	state State
	smss  uint16 // effective send MSS after negotiation

	// Callbacks. All optional.
	OnEstablished func()
	OnData        func([]byte) // in-order payload delivery
	OnRemoteClose func()       // peer FIN arrived (read-side EOF)
	OnClose       func(error)  // nil error = clean close
	acceptFn      func(*Conn)  // listener accept, fired at establishment

	// Send state (RFC 793 names).
	iss       uint32
	sndUna    uint32 // oldest unacknowledged sequence number
	sndNxt    uint32 // next sequence number to send
	sndMax    uint32 // highest sequence number ever sent (>= sndNxt)
	sndWnd    int    // peer-advertised window
	sndWL1    uint32 // seq of segment used for last window update
	sndWL2    uint32 // ack of segment used for last window update
	sndBuf    []byte // unacknowledged + unsent data; sndBuf[0] is at seq bufSeq
	bufSeq    uint32 // sequence number of sndBuf[0] (== sndUna after SYN acked)
	finQueued bool   // application closed its write side
	finSent   bool

	// Receive state.
	irs     uint32
	rcvNxt  uint32
	oooSegs []oooSeg // out-of-order reassembly queue, sorted by seq
	finRcvd bool     // peer FIN processed (rcvNxt advanced past it)

	// Congestion control (Reno with NewReno partial-ack recovery).
	cwnd       int
	ssthresh   int
	dupAcks    int
	inRecovery bool
	recover    uint32 // snd.nxt at loss detection

	// RTT estimation (Jacobson/Karels, Karn's rule).
	srtt, rttvar time.Duration
	rto          time.Duration
	rttPending   bool
	rttSeq       uint32 // sequence number whose ACK samples the RTT
	rttStart     sim.Time
	backoff      uint

	rtxTimer     *sim.Timer
	persistTimer *sim.Timer
	persistShift uint
	probePending bool // a one-byte zero-window probe is outstanding
	twTimer      *sim.Timer

	stats Stats
}

type oooSeg struct {
	seq  uint32
	data []byte
	fin  bool
}

func (s *Stack) newConn(t fourTuple) *Conn {
	c := &Conn{
		stack:    s,
		tuple:    t,
		state:    StateClosed,
		smss:     s.cfg.MSS,
		rto:      s.cfg.InitialRTO,
		ssthresh: 64 * 1024,
	}
	c.cwnd = int(c.smss) * s.cfg.InitialCwndSegs
	return c
}

// State returns the connection's current protocol state.
func (c *Conn) State() State { return c.state }

// Stats returns a snapshot of the connection's counters.
func (c *Conn) Stats() Stats { return c.stats }

// LocalPort and RemotePort expose the connection's addressing.
func (c *Conn) LocalPort() uint16  { return c.tuple.localPort }
func (c *Conn) RemotePort() uint16 { return c.tuple.remotePort }

// LocalAddr and RemoteAddr expose the connection's endpoints.
func (c *Conn) LocalAddr() ip.Addr  { return c.tuple.localAddr }
func (c *Conn) RemoteAddr() ip.Addr { return c.tuple.remoteAddr }

// BufferedOut returns the number of payload bytes queued but not yet
// acknowledged (the send backlog).
func (c *Conn) BufferedOut() int { return len(c.sndBuf) }

// CongestionWindow returns the current cwnd in bytes (experiments).
func (c *Conn) CongestionWindow() int { return c.cwnd }

// RTO returns the current retransmission timeout (experiments).
func (c *Conn) RTO() time.Duration { return c.rto }

// SRTT returns the smoothed round-trip estimate (experiments).
func (c *Conn) SRTT() time.Duration { return c.srtt }

// MSS returns the effective maximum segment size after negotiation.
func (c *Conn) MSS() int { return int(c.smss) }

func (c *Conn) clock() *sim.Scheduler { return c.stack.net.Clock() }

// Write queues p for transmission. The send buffer is unbounded; flow
// and congestion control pace the network, not the API.
func (c *Conn) Write(p []byte) error {
	switch c.state {
	case StateEstablished, StateCloseWait, StateSynSent, StateSynRcvd:
	default:
		return errors.New("tcp: write on closed connection")
	}
	if c.finQueued {
		return errors.New("tcp: write after Close")
	}
	c.sndBuf = append(c.sndBuf, p...)
	c.output()
	return nil
}

// Close closes the write side: queued data is still delivered, then a
// FIN is sent. The read side stays open until the peer closes.
func (c *Conn) Close() {
	if c.finQueued {
		return
	}
	switch c.state {
	case StateEstablished, StateSynRcvd:
		c.finQueued = true
		c.state = StateFinWait1
		c.output()
	case StateCloseWait:
		c.finQueued = true
		c.state = StateLastAck
		c.output()
	case StateSynSent:
		// Data may already be queued behind the handshake; defer the
		// FIN until establishment so it drains first.
		c.finQueued = true
	case StateClosed:
		c.teardown(nil)
	}
}

// Abort sends a RST and tears the connection down immediately.
func (c *Conn) Abort() {
	if c.state == StateClosed {
		return
	}
	c.sendSegment(&Segment{Flags: FlagRST | FlagACK, Seq: c.sndNxt, Ack: c.rcvNxt})
	c.teardown(ErrReset)
}

// --- sequence bookkeeping -------------------------------------------------

// rcvWndSize computes the window to advertise. Delivered bytes leave
// TCP immediately via OnData, so the advertised window is simply the
// configured buffer size. Out-of-order segments are not charged
// against it: doing so would change the window field of duplicate
// ACKs, which would stop the peer (and the snoop filter) from
// recognizing them as duplicates.
func (c *Conn) rcvWndSize() int {
	w := c.stack.cfg.RcvWnd
	if w > 65535 {
		w = 65535
	}
	return w
}

// flightSize is the amount of data sent but not yet acknowledged.
func (c *Conn) flightSize() int { return int(c.sndNxt - c.sndUna) }

// --- output path -----------------------------------------------------------

// output transmits as much queued data as the congestion and peer
// windows allow, then the FIN if its turn has come.
func (c *Conn) output() {
	if c.state == StateSynSent || c.state == StateSynRcvd || c.state == StateClosed {
		return
	}
	wnd := c.sndWnd
	if c.cwnd < wnd {
		wnd = c.cwnd
	}
	for {
		inFlight := c.flightSize()
		// Unsent bytes; int32 conversion keeps the result signed when
		// sndNxt has moved past the buffer (FIN consumed a sequence).
		avail := int(int32(c.bufSeq + uint32(len(c.sndBuf)) - c.sndNxt))
		if avail <= 0 {
			break
		}
		room := wnd - inFlight
		if room <= 0 {
			break
		}
		n := avail
		if n > int(c.smss) {
			n = int(c.smss)
		}
		// Nagle: don't emit a sub-MSS segment while data is in flight
		// and more may be coalesced (unless we're closing).
		if c.stack.cfg.Nagle && n < int(c.smss) && inFlight > 0 && !c.finQueued {
			break
		}
		if n > room {
			// Don't send tiny sub-MSS fragments when the window is
			// nearly full unless that's all the data there is.
			if room < int(c.smss) && avail > room {
				n = room
			} else {
				n = room
			}
		}
		if n <= 0 {
			break
		}
		off := int(c.sndNxt - c.bufSeq)
		payload := c.sndBuf[off : off+n]
		seg := &Segment{
			Flags: FlagACK, Seq: c.sndNxt, Ack: c.rcvNxt,
			Window:  uint16(c.rcvWndSize()),
			Payload: payload,
		}
		if off+n == len(c.sndBuf) {
			seg.Flags |= FlagPSH
		}
		c.sendSegment(seg)
		// One RTT sample in flight at a time (Karn).
		if !c.rttPending {
			c.rttPending = true
			c.rttSeq = c.sndNxt + uint32(n)
			c.rttStart = c.clock().Now()
		}
		c.sndNxt += uint32(n)
		c.sndMax = seqMax(c.sndMax, c.sndNxt)
		c.probePending = false // a normal send supersedes any probe
		c.stats.BytesSent += int64(n)
		c.armRetransmit()
	}
	// FIN goes out once all data has been transmitted.
	if c.finQueued && !c.finSent && c.sndNxt == c.bufSeq+uint32(len(c.sndBuf)) {
		inFlight := c.flightSize()
		if inFlight < wnd || inFlight == 0 {
			c.sendSegment(&Segment{
				Flags: FlagFIN | FlagACK, Seq: c.sndNxt, Ack: c.rcvNxt,
				Window: uint16(c.rcvWndSize()),
			})
			c.finSent = true
			c.sndNxt++
			c.sndMax = seqMax(c.sndMax, c.sndNxt)
			c.armRetransmit()
		}
	}
	c.updatePersist()
}

// updatePersist arms the zero-window probe timer when data is waiting
// but the peer advertises no room, and disarms it otherwise.
func (c *Conn) updatePersist() {
	dataWaiting := int32(c.bufSeq+uint32(len(c.sndBuf))-c.sndNxt) > 0
	if c.sndWnd == 0 && dataWaiting && c.flightSize() == 0 {
		if c.persistTimer.Active() {
			return
		}
		d := c.stack.cfg.PersistBase << c.persistShift
		if d > c.stack.cfg.PersistMax {
			d = c.stack.cfg.PersistMax
		}
		c.persistTimer = c.clock().After(d, c.persistProbe)
	} else {
		c.persistTimer.Stop()
		c.persistShift = 0
	}
}

// persistProbe sends a single byte beyond the closed window to elicit a
// fresh window advertisement.
func (c *Conn) persistProbe() {
	if c.state == StateClosed || c.sndWnd != 0 {
		return
	}
	off := int(c.sndNxt - c.bufSeq)
	if off >= len(c.sndBuf) {
		return
	}
	c.stats.PersistProbes++
	seg := &Segment{
		Flags: FlagACK, Seq: c.sndNxt, Ack: c.rcvNxt,
		Window:  uint16(c.rcvWndSize()),
		Payload: c.sndBuf[off : off+1],
	}
	c.sendSegment(seg)
	c.probePending = true
	if c.persistShift < 16 {
		c.persistShift++
	}
	c.persistTimer = nil
	c.updatePersist()
}

// sendSegment stamps ports, marshals, counts, and emits a segment.
func (c *Conn) sendSegment(seg *Segment) {
	seg.SrcPort = c.tuple.localPort
	seg.DstPort = c.tuple.remotePort
	c.stats.SegmentsSent++
	c.stack.mib.OutSegs++
	if c.stack.OnSegment != nil {
		c.stack.OnSegment(true, c.tuple.localAddr, c.tuple.remoteAddr, seg)
	}
	raw := seg.Marshal(c.tuple.localAddr, c.tuple.remoteAddr)
	c.stack.net.SendIPFrom(c.tuple.localAddr, c.tuple.remoteAddr, ip.ProtoTCP, raw)
}

// --- retransmission --------------------------------------------------------

func (c *Conn) armRetransmit() {
	if c.rtxTimer.Active() {
		return
	}
	d := c.rto << c.backoff
	if d > c.stack.cfg.MaxRTO {
		d = c.stack.cfg.MaxRTO
	}
	c.rtxTimer = c.clock().After(d, c.onRetransmitTimeout)
}

// onRetransmitTimeout implements the congestion response the thesis
// §2.2/§2.3 describes: the loss is presumed to be congestion, so the
// window collapses and the timeout backs off exponentially — exactly
// the misbehaviour a wireless link provokes.
func (c *Conn) onRetransmitTimeout() {
	c.rtxTimer = nil
	if c.state == StateClosed || c.state == StateTimeWait {
		return
	}
	outstanding := c.flightSize()
	if outstanding == 0 && !c.handshakeInProgress() {
		return
	}
	c.stats.Timeouts++
	c.stats.Retransmits++
	if c.backoff < 12 {
		c.backoff++
	}
	// Karn: a retransmission invalidates the pending RTT sample.
	c.rttPending = false
	switch c.state {
	case StateSynSent:
		c.sendSegment(&Segment{Flags: FlagSYN, Seq: c.iss, Window: uint16(c.rcvWndSize()), MSS: c.stack.cfg.MSS})
	case StateSynRcvd:
		c.sendSegment(&Segment{Flags: FlagSYN | FlagACK, Seq: c.iss, Ack: c.rcvNxt, Window: uint16(c.rcvWndSize()), MSS: c.stack.cfg.MSS})
	default:
		half := outstanding / 2
		if half < 2*int(c.smss) {
			half = 2 * int(c.smss)
		}
		c.ssthresh = half
		c.cwnd = int(c.smss)
		c.inRecovery = false
		c.dupAcks = 0
		// Go-back-N: roll the send point back to the oldest unacked
		// byte so slow start retransmits the whole lost window with
		// ACK clocking (classic BSD behaviour). Without this, a
		// multi-segment loss would crawl back at one segment per RTO.
		if seqLT(c.sndUna, c.sndNxt) {
			c.sndNxt = c.sndUna
			if c.finSent {
				c.finSent = false // the FIN is resent after the data
			}
			c.probePending = false
		}
		c.output()
	}
	c.armRetransmit()
}

// retransmitOne resends the oldest unacknowledged segment.
func (c *Conn) retransmitOne() {
	c.stack.mib.RetransSegs++
	off := int(c.sndUna - c.bufSeq)
	dataLen := len(c.sndBuf) - off
	if dataLen > int(c.smss) {
		dataLen = int(c.smss)
	}
	if dataLen > 0 {
		seg := &Segment{
			Flags: FlagACK, Seq: c.sndUna, Ack: c.rcvNxt,
			Window:  uint16(c.rcvWndSize()),
			Payload: c.sndBuf[off : off+dataLen],
		}
		c.sendSegment(seg)
		c.stats.BytesSent += int64(dataLen)
		return
	}
	if c.finSent && seqLE(c.sndUna, c.sndNxt-1) {
		c.sendSegment(&Segment{
			Flags: FlagFIN | FlagACK, Seq: c.sndNxt - 1, Ack: c.rcvNxt,
			Window: uint16(c.rcvWndSize()),
		})
	}
}

func (c *Conn) handshakeInProgress() bool {
	return c.state == StateSynSent || c.state == StateSynRcvd
}

// --- RTT estimation ---------------------------------------------------------

func (c *Conn) sampleRTT(ack uint32) {
	if !c.rttPending || seqLT(ack, c.rttSeq) {
		return
	}
	c.rttPending = false
	m := c.clock().Now().Sub(c.rttStart)
	if c.srtt == 0 {
		c.srtt = m
		c.rttvar = m / 2
	} else {
		d := c.srtt - m
		if d < 0 {
			d = -d
		}
		c.rttvar = (3*c.rttvar + d) / 4
		c.srtt = (7*c.srtt + m) / 8
	}
	rto := c.srtt + 4*c.rttvar
	if rto < c.stack.cfg.MinRTO {
		rto = c.stack.cfg.MinRTO
	}
	if rto > c.stack.cfg.MaxRTO {
		rto = c.stack.cfg.MaxRTO
	}
	c.rto = rto
}

// --- input path --------------------------------------------------------------

func (c *Conn) handle(seg *Segment) {
	c.stats.SegmentsRcvd++
	if seg.Flags&FlagRST != 0 {
		c.handleRST(seg)
		return
	}
	switch c.state {
	case StateSynSent:
		c.handleSynSent(seg)
		return
	case StateClosed:
		return
	}
	// States with synchronized sequence numbers.
	c.handleSynchronized(seg)
}

func (c *Conn) handleRST(seg *Segment) {
	switch c.state {
	case StateSynSent:
		if seg.Flags&FlagACK != 0 && seg.Ack == c.sndNxt {
			c.teardown(ErrReset)
		}
	default:
		// Acceptable if within window; be permissive for simplicity.
		c.teardown(ErrReset)
	}
}

func (c *Conn) handleSynSent(seg *Segment) {
	if seg.Flags&FlagSYN == 0 || seg.Flags&FlagACK == 0 || seg.Ack != c.sndNxt {
		return
	}
	c.irs = seg.Seq
	c.rcvNxt = seg.Seq + 1
	c.sndUna = seg.Ack
	c.bufSeq = c.sndUna
	c.sndWnd = int(seg.Window)
	c.sndWL1 = seg.Seq
	c.sndWL2 = seg.Ack
	if seg.MSS != 0 && seg.MSS < c.smss {
		c.smss = seg.MSS
	}
	c.cwnd = int(c.smss) * c.stack.cfg.InitialCwndSegs
	c.rtxTimer.Stop()
	c.backoff = 0
	c.state = StateEstablished
	if c.finQueued {
		// Close was called while connecting; finish the handshake,
		// drain the queued data, then FIN.
		c.state = StateFinWait1
	}
	c.sendSegment(&Segment{Flags: FlagACK, Seq: c.sndNxt, Ack: c.rcvNxt, Window: uint16(c.rcvWndSize())})
	if c.OnEstablished != nil {
		c.OnEstablished()
	}
	c.output()
}

func (c *Conn) handleSynchronized(seg *Segment) {
	// Sequence acceptability (simplified RFC 793 check): some overlap
	// with the receive window, or a zero-length segment at rcvNxt.
	if !c.acceptable(seg) {
		// Out-of-window: re-ACK to resynchronize the peer.
		c.sendACK()
		return
	}
	if seg.Flags&FlagSYN != 0 && c.state == StateSynRcvd && seg.Seq == c.irs {
		// Duplicate SYN: peer missed our SYN-ACK; resend it.
		c.sendSegment(&Segment{Flags: FlagSYN | FlagACK, Seq: c.iss, Ack: c.rcvNxt, Window: uint16(c.rcvWndSize()), MSS: c.stack.cfg.MSS})
		return
	}
	if seg.Flags&FlagACK == 0 {
		return
	}
	if c.state == StateSynRcvd {
		if seg.Ack != c.sndNxt {
			return
		}
		c.state = StateEstablished
		c.sndUna = seg.Ack
		c.bufSeq = c.sndUna
		c.sndWnd = int(seg.Window)
		c.sndWL1 = seg.Seq
		c.sndWL2 = seg.Ack
		c.rtxTimer.Stop()
		c.backoff = 0
		if c.acceptFn != nil {
			fn := c.acceptFn
			c.acceptFn = nil
			fn(c)
		}
		if c.OnEstablished != nil {
			c.OnEstablished()
		}
		// Fall through: the ACK may carry data.
	}
	c.processACK(seg)
	c.processPayload(seg)
	c.output()
}

func (c *Conn) acceptable(seg *Segment) bool {
	segLen := seg.SeqLen()
	wnd := uint32(c.rcvWndSize())
	if segLen == 0 {
		if wnd == 0 {
			return seg.Seq == c.rcvNxt
		}
		return seqLE(c.rcvNxt, seg.Seq) && seqLT(seg.Seq, c.rcvNxt+wnd) ||
			seqLE(seg.Seq, c.rcvNxt) && seqLE(c.rcvNxt, seg.Seq+segLen)
	}
	if wnd == 0 {
		return false
	}
	// Any overlap with [rcvNxt, rcvNxt+wnd).
	startsInWindow := seqLE(c.rcvNxt, seg.Seq) && seqLT(seg.Seq, c.rcvNxt+wnd)
	endsInWindow := seqLT(c.rcvNxt, seg.Seq+segLen) && seqLE(seg.Seq+segLen, c.rcvNxt+wnd)
	coversWindow := seqLE(seg.Seq, c.rcvNxt) && seqLT(c.rcvNxt, seg.Seq+segLen)
	return startsInWindow || endsInWindow || coversWindow
}

func (c *Conn) processACK(seg *Segment) {
	ack := seg.Ack
	if c.probePending && ack == c.sndNxt+1 {
		// The receiver accepted our one-byte zero-window probe; the
		// byte now officially occupies sequence space.
		c.sndNxt++
		c.sndMax = seqMax(c.sndMax, c.sndNxt)
		c.probePending = false
		c.stats.BytesSent++
	}
	if seqLT(c.sndMax, ack) {
		// ACK for data we never sent: ignore after re-ACKing.
		c.sendACK()
		return
	}
	if seqLT(c.sndUna, ack) {
		c.advanceUna(seg)
		return
	}
	// ack <= sndUna: possible duplicate.
	if ack == c.sndUna && len(seg.Payload) == 0 &&
		c.flightSize() > 0 && int(seg.Window) == c.sndWnd {
		c.stats.DupAcksRcvd++
		c.dupAcks++
		switch {
		case c.dupAcks == 3 && !c.inRecovery:
			c.enterFastRecovery()
		case c.inRecovery:
			c.cwnd += int(c.smss) // inflate
		}
	}
	c.maybeUpdateWindow(seg)
}

func (c *Conn) advanceUna(seg *Segment) {
	ack := seg.Ack
	acked := int(ack - c.sndUna)
	c.sampleRTT(ack)
	c.backoff = 0

	// Consume SYN/FIN sequence space.
	dataAcked := acked
	if c.state == StateSynRcvd || (c.sndUna == c.iss && seqLT(c.iss, ack)) {
		dataAcked-- // SYN
	}
	finAcked := false
	if c.finSent && ack == c.sndMax && ack == c.sndNxt {
		dataAcked--
		finAcked = true
	}
	if dataAcked > 0 {
		c.stats.BytesAcked += int64(dataAcked)
		off := int(c.sndUna - c.bufSeq)
		drop := off + dataAcked
		if drop > len(c.sndBuf) {
			drop = len(c.sndBuf)
		}
		c.sndBuf = c.sndBuf[drop:]
	}
	c.sndUna = ack
	c.bufSeq = ack
	// After a go-back-N rollback an ACK may land beyond the rolled-back
	// send point (the receiver had the data all along); keep sndNxt on
	// or ahead of una.
	if seqLT(c.sndNxt, c.sndUna) {
		c.sndNxt = c.sndUna
	}

	if c.inRecovery {
		if seqLT(ack, c.recover) {
			// NewReno partial ACK: the next hole is lost too.
			c.retransmitOne()
			c.cwnd -= acked
			if c.cwnd < int(c.smss) {
				c.cwnd = int(c.smss)
			}
			c.cwnd += int(c.smss)
			c.dupAcks = 0
		} else {
			c.inRecovery = false
			c.dupAcks = 0
			c.cwnd = c.ssthresh
		}
	} else {
		c.dupAcks = 0
		if c.cwnd < c.ssthresh {
			c.cwnd += int(c.smss) // slow start
		} else {
			add := int(c.smss) * int(c.smss) / c.cwnd // congestion avoidance
			if add == 0 {
				add = 1
			}
			c.cwnd += add
		}
	}

	c.maybeUpdateWindow(seg)

	c.rtxTimer.Stop()
	if c.flightSize() > 0 {
		c.armRetransmit()
	}

	if finAcked {
		switch c.state {
		case StateFinWait1:
			c.state = StateFinWait2
		case StateClosing:
			c.enterTimeWait()
		case StateLastAck:
			c.teardown(nil)
		}
	}
}

func (c *Conn) maybeUpdateWindow(seg *Segment) {
	if seqLT(c.sndWL1, seg.Seq) ||
		(c.sndWL1 == seg.Seq && seqLE(c.sndWL2, seg.Ack)) {
		if int(seg.Window) == 0 && c.sndWnd != 0 {
			c.stats.ZeroWindowSeen++
		}
		c.sndWnd = int(seg.Window)
		c.sndWL1 = seg.Seq
		c.sndWL2 = seg.Ack
		c.updatePersist()
	}
}

func (c *Conn) enterFastRecovery() {
	c.stats.FastRetransmits++
	c.stats.Retransmits++
	half := c.flightSize() / 2
	if half < 2*int(c.smss) {
		half = 2 * int(c.smss)
	}
	c.ssthresh = half
	c.recover = c.sndNxt
	c.inRecovery = true
	c.retransmitOne()
	c.cwnd = c.ssthresh + 3*int(c.smss)
	// Karn: retransmission invalidates the pending sample.
	c.rttPending = false
}

// processPayload handles the data and FIN portions of a segment.
func (c *Conn) processPayload(seg *Segment) {
	data := seg.Payload
	seq := seg.Seq
	fin := seg.Flags&FlagFIN != 0

	if len(data) == 0 && !fin {
		return
	}
	// Trim data lying before rcvNxt (retransmitted overlap).
	if seqLT(seq, c.rcvNxt) {
		skip := c.rcvNxt - seq
		if uint32(len(data)) <= skip {
			if !(fin && seq+seg.SeqLen()-1 == c.rcvNxt) {
				// Entirely old data: re-ACK.
				if len(data) > 0 || fin {
					c.sendACK()
				}
				return
			}
			data = nil
		} else {
			data = data[skip:]
		}
		seq = c.rcvNxt
	}

	if seq == c.rcvNxt {
		c.deliver(data, fin)
		c.drainOOO()
		c.sendACK()
		c.checkFinStates()
		return
	}
	// Out of order: queue and send a duplicate ACK (the signal fast
	// retransmit — and the snoop filter — listen for).
	c.insertOOO(oooSeg{seq: seq, data: append([]byte(nil), data...), fin: fin})
	c.sendACK()
}

func (c *Conn) deliver(data []byte, fin bool) {
	if len(data) > 0 {
		c.rcvNxt += uint32(len(data))
		c.stats.BytesReceived += int64(len(data))
		if c.OnData != nil {
			c.OnData(data)
		}
	}
	if fin && !c.finRcvd {
		c.finRcvd = true
		c.rcvNxt++
	}
}

func (c *Conn) insertOOO(s oooSeg) {
	i := sort.Search(len(c.oooSegs), func(i int) bool {
		return seqLE(s.seq, c.oooSegs[i].seq)
	})
	if i < len(c.oooSegs) && c.oooSegs[i].seq == s.seq {
		if len(s.data) > len(c.oooSegs[i].data) {
			c.oooSegs[i] = s
		}
		return
	}
	c.oooSegs = append(c.oooSegs, oooSeg{})
	copy(c.oooSegs[i+1:], c.oooSegs[i:])
	c.oooSegs[i] = s
}

func (c *Conn) drainOOO() {
	for len(c.oooSegs) > 0 {
		s := c.oooSegs[0]
		if seqLT(c.rcvNxt, s.seq) {
			return
		}
		c.oooSegs = c.oooSegs[1:]
		data := s.data
		if seqLT(s.seq, c.rcvNxt) {
			skip := c.rcvNxt - s.seq
			if uint32(len(data)) <= skip {
				if s.fin && seqLE(s.seq+uint32(len(s.data)), c.rcvNxt) {
					c.deliver(nil, true)
				}
				continue
			}
			data = data[skip:]
		}
		c.deliver(data, s.fin)
	}
}

// checkFinStates advances the close handshake after the peer's FIN has
// been consumed by deliver.
func (c *Conn) checkFinStates() {
	if !c.finRcvd {
		return
	}
	switch c.state {
	case StateEstablished:
		c.state = StateCloseWait
		if c.OnRemoteClose != nil {
			c.OnRemoteClose()
		}
	case StateFinWait1:
		// FIN arrived together with (or before) the ACK of ours.
		if c.finSent && c.sndUna == c.sndNxt {
			c.enterTimeWait()
		} else {
			c.state = StateClosing
		}
	case StateFinWait2:
		c.enterTimeWait()
	}
}

func (c *Conn) sendACK() {
	c.sendSegment(&Segment{
		Flags: FlagACK, Seq: c.sndNxt, Ack: c.rcvNxt,
		Window: uint16(c.rcvWndSize()),
	})
}

func (c *Conn) enterTimeWait() {
	if c.state == StateTimeWait {
		return
	}
	c.state = StateTimeWait
	c.rtxTimer.Stop()
	c.persistTimer.Stop()
	c.twTimer = c.clock().After(c.stack.cfg.TimeWait, func() { c.teardown(nil) })
}

// teardown releases all connection state and fires OnClose.
func (c *Conn) teardown(err error) {
	if c.state == StateClosed {
		return
	}
	if err != nil {
		switch c.state {
		case StateEstablished, StateCloseWait:
			c.stack.mib.EstabResets++
		case StateSynSent, StateSynRcvd:
			c.stack.mib.AttemptFails++
		}
	}
	c.state = StateClosed
	c.rtxTimer.Stop()
	c.persistTimer.Stop()
	c.twTimer.Stop()
	delete(c.stack.conns, c.tuple)
	if c.OnClose != nil {
		c.OnClose(err)
	}
}
