package tcp

import "repro/internal/obs"

// MIB holds the stack-wide counters of the SNMP MIB-II tcp group
// (RFC 1213), which the thesis's EEM exports (Table 6.1). Gauges
// (tcpCurrEstab) are computed on demand; counters accumulate for the
// stack's lifetime.
type MIB struct {
	ActiveOpens  int64 // transitions CLOSED -> SYN_SENT
	PassiveOpens int64 // transitions LISTEN -> SYN_RCVD
	AttemptFails int64 // handshakes that never reached ESTABLISHED
	EstabResets  int64 // resets out of ESTABLISHED/CLOSE_WAIT
	InSegs       int64 // segments received, including errors
	OutSegs      int64 // segments sent, excluding retransmissions
	RetransSegs  int64 // segments retransmitted
	InErrs       int64 // segments discarded for bad checksum/format
}

// MIB returns a snapshot of the stack's protocol counters.
func (s *Stack) MIB() MIB { return s.mib }

// CurrEstab counts connections currently in ESTABLISHED or CLOSE_WAIT
// (the SNMP tcpCurrEstab gauge).
func (s *Stack) CurrEstab() int {
	n := 0
	for _, c := range s.conns {
		if c.state == StateEstablished || c.state == StateCloseWait {
			n++
		}
	}
	return n
}

// RegisterMetrics exposes the stack's MIB counters and the
// tcpCurrEstab gauge in a metrics registry under prefix.
func (s *Stack) RegisterMetrics(r *obs.Registry, prefix string) {
	r.Counter(prefix+".active_opens", func() int64 { return s.mib.ActiveOpens })
	r.Counter(prefix+".passive_opens", func() int64 { return s.mib.PassiveOpens })
	r.Counter(prefix+".attempt_fails", func() int64 { return s.mib.AttemptFails })
	r.Counter(prefix+".estab_resets", func() int64 { return s.mib.EstabResets })
	r.Counter(prefix+".in_segs", func() int64 { return s.mib.InSegs })
	r.Counter(prefix+".out_segs", func() int64 { return s.mib.OutSegs })
	r.Counter(prefix+".retrans_segs", func() int64 { return s.mib.RetransSegs })
	r.Counter(prefix+".in_errs", func() int64 { return s.mib.InErrs })
	r.Gauge(prefix+".curr_estab", func() float64 { return float64(s.CurrEstab()) })
}
