// Package tcp implements the Transmission Control Protocol over the
// simulated network: the wire-format segment codec (the header of
// thesis Fig 8.1) and a full endpoint with sliding-window flow control,
// Jacobson/Karels RTO estimation, slow start, congestion avoidance,
// fast retransmit and fast recovery, exponential backoff, and
// zero-window persistence.
//
// The endpoint deliberately reproduces the behaviours the thesis's
// filters exploit or correct: it interprets loss as congestion (so the
// snoop filter has something to fix), respects the advertised receive
// window verbatim (so the wsize filter can throttle or stall it), and
// acknowledges cumulatively by sequence number (so the TTSF's
// sequence-space remapping is observable end to end).
package tcp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"

	"repro/internal/ip"
)

// Header flag bits (thesis Fig 8.1).
const (
	FlagFIN = 1 << 0
	FlagSYN = 1 << 1
	FlagRST = 1 << 2
	FlagPSH = 1 << 3
	FlagACK = 1 << 4
	FlagURG = 1 << 5
)

// HeaderLen is the length of a TCP header without options.
const HeaderLen = 20

// Segment is a decoded TCP segment: header fields plus payload.
type Segment struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            byte
	Window           uint16
	Checksum         uint16 // as read; recomputed on Marshal
	Urgent           uint16
	MSS              uint16 // MSS option value; 0 = option absent
	Payload          []byte
}

// FlagString renders the flag bits in tcpdump style, e.g. "SA" for
// SYN|ACK.
func (s *Segment) FlagString() string {
	var b strings.Builder
	for _, f := range []struct {
		bit  byte
		name byte
	}{
		{FlagFIN, 'F'}, {FlagSYN, 'S'}, {FlagRST, 'R'},
		{FlagPSH, 'P'}, {FlagACK, 'A'}, {FlagURG, 'U'},
	} {
		if s.Flags&f.bit != 0 {
			b.WriteByte(f.name)
		}
	}
	if b.Len() == 0 {
		return "."
	}
	return b.String()
}

// SeqLen returns the amount of sequence space the segment consumes:
// payload length plus one for each of SYN and FIN.
func (s *Segment) SeqLen() uint32 {
	n := uint32(len(s.Payload))
	if s.Flags&FlagSYN != 0 {
		n++
	}
	if s.Flags&FlagFIN != 0 {
		n++
	}
	return n
}

// Marshal encodes the segment, computing the transport checksum over
// the IPv4 pseudo-header for src→dst.
func (s *Segment) Marshal(src, dst ip.Addr) []byte {
	return s.AppendMarshal(nil, src, dst)
}

// AppendMarshal appends the encoded segment to dst0, growing it as
// needed, and returns the extended slice. It lets hot paths reuse a
// scratch buffer instead of allocating per segment; the appended
// region must not already alias s.Payload.
func (s *Segment) AppendMarshal(dst0 []byte, src, dst ip.Addr) []byte {
	optLen := 0
	if s.MSS != 0 {
		optLen = 4
	}
	hl := HeaderLen + optLen
	off := len(dst0)
	dst0 = growSlice(dst0, hl+len(s.Payload))
	b := dst0[off:]
	binary.BigEndian.PutUint16(b[0:], s.SrcPort)
	binary.BigEndian.PutUint16(b[2:], s.DstPort)
	binary.BigEndian.PutUint32(b[4:], s.Seq)
	binary.BigEndian.PutUint32(b[8:], s.Ack)
	b[12] = byte(hl/4) << 4
	b[13] = s.Flags
	binary.BigEndian.PutUint16(b[14:], s.Window)
	b[16], b[17] = 0, 0 // checksum field must be zero while summing
	binary.BigEndian.PutUint16(b[18:], s.Urgent)
	if s.MSS != 0 {
		b[20] = 2 // kind: MSS
		b[21] = 4 // length
		binary.BigEndian.PutUint16(b[22:], s.MSS)
	}
	copy(b[hl:], s.Payload)
	s.Checksum = ip.PseudoHeaderChecksum(src, dst, ip.ProtoTCP, b)
	binary.BigEndian.PutUint16(b[16:], s.Checksum)
	return dst0
}

// growSlice extends b by n bytes, reallocating only when capacity
// runs out (the reused-buffer steady state never does).
func growSlice(b []byte, n int) []byte {
	if cap(b)-len(b) < n {
		nb := make([]byte, len(b), len(b)+n)
		copy(nb, b)
		b = nb
	}
	return b[:len(b)+n]
}

// Errors returned by Unmarshal and VerifyChecksum.
var (
	ErrTruncated = errors.New("tcp: truncated segment")
	ErrChecksum  = errors.New("tcp: bad checksum")
)

// Unmarshal decodes a TCP segment. Payload aliases b. The checksum is
// not verified here; use VerifyChecksum with the pseudo-header
// addresses.
func Unmarshal(b []byte) (Segment, error) {
	var s Segment
	if len(b) < HeaderLen {
		return s, ErrTruncated
	}
	s.SrcPort = binary.BigEndian.Uint16(b[0:])
	s.DstPort = binary.BigEndian.Uint16(b[2:])
	s.Seq = binary.BigEndian.Uint32(b[4:])
	s.Ack = binary.BigEndian.Uint32(b[8:])
	hl := int(b[12]>>4) * 4
	if hl < HeaderLen || len(b) < hl {
		return s, ErrTruncated
	}
	s.Flags = b[13]
	s.Window = binary.BigEndian.Uint16(b[14:])
	s.Checksum = binary.BigEndian.Uint16(b[16:])
	s.Urgent = binary.BigEndian.Uint16(b[18:])
	// Walk options looking for MSS.
	opts := b[HeaderLen:hl]
	for len(opts) > 0 {
		switch opts[0] {
		case 0: // end of options
			opts = nil
		case 1: // NOP
			opts = opts[1:]
		default:
			if len(opts) < 2 || int(opts[1]) < 2 || int(opts[1]) > len(opts) {
				return s, ErrTruncated
			}
			if opts[0] == 2 && opts[1] == 4 {
				s.MSS = binary.BigEndian.Uint16(opts[2:])
			}
			opts = opts[opts[1]:]
		}
	}
	s.Payload = b[hl:]
	return s, nil
}

// VerifyChecksum reports whether the encoded segment b carried between
// src and dst has a valid transport checksum.
func VerifyChecksum(src, dst ip.Addr, b []byte) bool {
	if len(b) < HeaderLen {
		return false
	}
	return ip.PseudoHeaderChecksum(src, dst, ip.ProtoTCP, b) == 0
}

// String summarizes the segment for traces:
// "1000:2000(1000) ack 500 win 8760 [PA]".
func (s *Segment) String() string {
	return fmt.Sprintf("%d:%d(%d) ack %d win %d [%s]",
		s.Seq, s.Seq+uint32(len(s.Payload)), len(s.Payload), s.Ack, s.Window, s.FlagString())
}

// seqLT reports a < b in 32-bit sequence-number space.
func seqLT(a, b uint32) bool { return int32(a-b) < 0 }

// seqLE reports a <= b in sequence space.
func seqLE(a, b uint32) bool { return int32(a-b) <= 0 }

// seqMax returns the later of a and b in sequence space.
func seqMax(a, b uint32) uint32 {
	if seqLT(a, b) {
		return b
	}
	return a
}
