package tcp

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/ip"
	"repro/internal/sim"
)

// State is a TCP connection state (RFC 793 §3.2).
type State int

// Connection states.
const (
	StateClosed State = iota
	StateListen
	StateSynSent
	StateSynRcvd
	StateEstablished
	StateFinWait1
	StateFinWait2
	StateCloseWait
	StateClosing
	StateLastAck
	StateTimeWait
)

var stateNames = [...]string{
	"CLOSED", "LISTEN", "SYN_SENT", "SYN_RCVD", "ESTABLISHED",
	"FIN_WAIT_1", "FIN_WAIT_2", "CLOSE_WAIT", "CLOSING", "LAST_ACK", "TIME_WAIT",
}

func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Network is the IP service a Stack runs over: a host in the simulated
// network (or any other packet carrier).
type Network interface {
	// SendIP emits an IP datagram with the given protocol and payload
	// toward dst, using the host's primary address as source.
	SendIP(dst ip.Addr, proto byte, payload []byte)
	// SendIPFrom is SendIP with an explicit source address, needed on
	// multi-homed hosts so segments leave with the address the
	// connection is bound to.
	SendIPFrom(src, dst ip.Addr, proto byte, payload []byte)
	// Addr returns the host's primary IP address.
	Addr() ip.Addr
	// Clock returns the scheduler driving this host.
	Clock() *sim.Scheduler
}

// Config tunes a Stack. The zero value selects the defaults below.
type Config struct {
	MSS    uint16 // default 1460
	RcvWnd int    // receive window in bytes, default 65535
	// Nagle enables RFC 896 small-segment coalescing: sub-MSS data is
	// held back while earlier data is unacknowledged. Off by default —
	// the thesis-era interactive experiments want each exchange on the
	// wire immediately.
	Nagle           bool
	MinRTO          time.Duration // default 200ms
	MaxRTO          time.Duration // default 60s
	InitialRTO      time.Duration // default 1s
	TimeWait        time.Duration // default 1s (shortened 2MSL for simulation)
	PersistBase     time.Duration // zero-window probe base interval, default 500ms
	PersistMax      time.Duration // probe backoff cap, default 8s
	InitialCwndSegs int           // default 2 segments
}

func (c Config) withDefaults() Config {
	if c.MSS == 0 {
		c.MSS = 1460
	}
	if c.RcvWnd == 0 {
		c.RcvWnd = 65535
	}
	if c.MinRTO == 0 {
		c.MinRTO = 200 * time.Millisecond
	}
	if c.MaxRTO == 0 {
		c.MaxRTO = 60 * time.Second
	}
	if c.InitialRTO == 0 {
		c.InitialRTO = time.Second
	}
	if c.TimeWait == 0 {
		c.TimeWait = time.Second
	}
	if c.PersistBase == 0 {
		c.PersistBase = 500 * time.Millisecond
	}
	if c.PersistMax == 0 {
		c.PersistMax = 8 * time.Second
	}
	if c.InitialCwndSegs == 0 {
		c.InitialCwndSegs = 2
	}
	return c
}

type fourTuple struct {
	localAddr  ip.Addr
	localPort  uint16
	remoteAddr ip.Addr
	remotePort uint16
}

func (t fourTuple) String() string {
	return fmt.Sprintf("%v:%d -> %v:%d", t.localAddr, t.localPort, t.remoteAddr, t.remotePort)
}

// Stack is a host TCP implementation: a demultiplexer of segments to
// connections plus a listener table.
type Stack struct {
	net       Network
	cfg       Config
	conns     map[fourTuple]*Conn
	listeners map[uint16]*Listener
	ephemeral uint16

	// OnSegment, when non-nil, observes every segment the stack sends
	// (send=true) or receives (send=false), for traces and tests.
	OnSegment func(send bool, src, dst ip.Addr, seg *Segment)

	mib MIB
}

// NewStack creates a TCP stack on the given network host.
func NewStack(n Network, cfg Config) *Stack {
	return &Stack{
		net:       n,
		cfg:       cfg.withDefaults(),
		conns:     make(map[fourTuple]*Conn),
		listeners: make(map[uint16]*Listener),
		ephemeral: 1024,
	}
}

// Clock exposes the stack's scheduler so components layered on top
// (control sessions, supervisors) can arm timers on the same timeline.
func (s *Stack) Clock() *sim.Scheduler { return s.net.Clock() }

// Listener accepts inbound connections on a port.
type Listener struct {
	stack  *Stack
	port   uint16
	accept func(*Conn)
	closed bool
}

// Close stops accepting new connections. Existing connections live on.
func (l *Listener) Close() {
	if !l.closed {
		l.closed = true
		delete(l.stack.listeners, l.port)
	}
}

// Listen registers accept to be called with each connection that
// completes the handshake on port.
func (s *Stack) Listen(port uint16, accept func(*Conn)) (*Listener, error) {
	if _, dup := s.listeners[port]; dup {
		return nil, fmt.Errorf("tcp: port %d already listening", port)
	}
	l := &Listener{stack: s, port: port, accept: accept}
	s.listeners[port] = l
	return l, nil
}

// Connect opens a connection to raddr:rport from an ephemeral local
// port. The returned Conn is in SYN_SENT; use OnEstablished to learn
// when the handshake completes.
func (s *Stack) Connect(raddr ip.Addr, rport uint16) (*Conn, error) {
	return s.ConnectFrom(0, raddr, rport)
}

// ConnectFrom is Connect with an explicit local port (0 = ephemeral).
func (s *Stack) ConnectFrom(lport uint16, raddr ip.Addr, rport uint16) (*Conn, error) {
	if lport == 0 {
		for i := 0; i < 65536; i++ {
			cand := s.ephemeral
			s.ephemeral++
			if s.ephemeral == 0 {
				s.ephemeral = 1024
			}
			if _, used := s.conns[fourTuple{s.net.Addr(), cand, raddr, rport}]; !used {
				lport = cand
				break
			}
		}
		if lport == 0 {
			return nil, errors.New("tcp: no free ephemeral ports")
		}
	}
	t := fourTuple{s.net.Addr(), lport, raddr, rport}
	if _, dup := s.conns[t]; dup {
		return nil, fmt.Errorf("tcp: connection %v already exists", t)
	}
	c := s.newConn(t)
	s.conns[t] = c
	s.mib.ActiveOpens++
	c.state = StateSynSent
	c.iss = uint32(s.net.Clock().Rand().Int31())
	c.sndUna = c.iss
	c.sndNxt = c.iss + 1
	c.sndMax = c.sndNxt
	c.sendSegment(&Segment{Flags: FlagSYN, Seq: c.iss, Window: uint16(c.rcvWndSize()), MSS: s.cfg.MSS})
	c.armRetransmit()
	return c, nil
}

// Deliver hands the stack a TCP segment carried in an IP datagram from
// src to dst. Hosts call this from their protocol demux.
func (s *Stack) Deliver(src, dst ip.Addr, payload []byte) {
	s.mib.InSegs++
	if !VerifyChecksum(src, dst, payload) {
		s.mib.InErrs++
		return // corrupted in flight or by a buggy filter: drop silently
	}
	seg, err := Unmarshal(payload)
	if err != nil {
		s.mib.InErrs++
		return
	}
	if s.OnSegment != nil {
		s.OnSegment(false, src, dst, &seg)
	}
	t := fourTuple{dst, seg.DstPort, src, seg.SrcPort}
	if c, ok := s.conns[t]; ok {
		c.handle(&seg)
		return
	}
	if l, ok := s.listeners[seg.DstPort]; ok && seg.Flags&FlagSYN != 0 && seg.Flags&FlagACK == 0 {
		s.acceptSyn(l, t, &seg)
		return
	}
	// No socket: answer with RST unless the offender was itself a RST.
	if seg.Flags&FlagRST == 0 {
		rst := &Segment{
			SrcPort: seg.DstPort, DstPort: seg.SrcPort,
			Flags: FlagRST | FlagACK,
			Ack:   seg.Seq + seg.SeqLen(),
		}
		s.transmit(dst, src, rst)
	}
}

func (s *Stack) acceptSyn(l *Listener, t fourTuple, seg *Segment) {
	c := s.newConn(t)
	s.conns[t] = c
	s.mib.PassiveOpens++
	c.state = StateSynRcvd
	c.irs = seg.Seq
	c.rcvNxt = seg.Seq + 1
	c.iss = uint32(s.net.Clock().Rand().Int31())
	c.sndUna = c.iss
	c.sndNxt = c.iss + 1
	c.sndMax = c.sndNxt
	c.sndWnd = int(seg.Window)
	if seg.MSS != 0 && seg.MSS < c.smss {
		c.smss = seg.MSS
	}
	c.acceptFn = l.accept
	c.sendSegment(&Segment{
		Flags: FlagSYN | FlagACK, Seq: c.iss, Ack: c.rcvNxt,
		Window: uint16(c.rcvWndSize()), MSS: s.cfg.MSS,
	})
	c.armRetransmit()
}

// transmit marshals and emits a segment that is not tied to a live
// connection (RSTs to unknown ports).
func (s *Stack) transmit(src, dst ip.Addr, seg *Segment) {
	s.mib.OutSegs++
	if s.OnSegment != nil {
		s.OnSegment(true, src, dst, seg)
	}
	s.net.SendIPFrom(src, dst, ip.ProtoTCP, seg.Marshal(src, dst))
}

// ConnCount returns the number of live connections (tests).
func (s *Stack) ConnCount() int { return len(s.conns) }
