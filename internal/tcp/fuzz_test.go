package tcp

import (
	"bytes"
	"testing"

	"repro/internal/ip"
)

// FuzzTCPParse drives the segment codec with arbitrary bytes: decoding
// must never panic, any segment that decodes must keep its fields
// across a decode→encode→decode round trip, and the normalized
// encoding (unknown options dropped, MSS kept) must be byte-stable.
func FuzzTCPParse(f *testing.F) {
	src := ip.MustParseAddr("11.11.10.99")
	dst := ip.MustParseAddr("11.11.10.10")
	data := Segment{SrcPort: 7, DstPort: 5001, Seq: 1000, Ack: 1,
		Flags: FlagACK | FlagPSH, Window: 8760, Payload: []byte("payload bytes")}
	f.Add(uint32(src), uint32(dst), data.Marshal(src, dst))
	syn := Segment{SrcPort: 7, DstPort: 5001, Seq: 99, Flags: FlagSYN,
		Window: 65535, MSS: 1460}
	f.Add(uint32(src), uint32(dst), syn.Marshal(src, dst))
	f.Add(uint32(0), uint32(0), []byte{})
	f.Add(uint32(1), uint32(2), bytes.Repeat([]byte{0x01}, 40)) // NOP options

	f.Fuzz(func(t *testing.T, srcU, dstU uint32, b []byte) {
		src, dst := ip.Addr(srcU), ip.Addr(dstU)
		s1, err := Unmarshal(b)
		if err != nil {
			return
		}
		enc1 := s1.Marshal(src, dst)
		s2, err := Unmarshal(enc1)
		if err != nil {
			t.Fatalf("decode of re-marshalled segment failed: %v", err)
		}
		// Marshal wrote the recomputed checksum back into s1, so every
		// field must survive the round trip.
		if s1.SrcPort != s2.SrcPort || s1.DstPort != s2.DstPort ||
			s1.Seq != s2.Seq || s1.Ack != s2.Ack || s1.Flags != s2.Flags ||
			s1.Window != s2.Window || s1.Checksum != s2.Checksum ||
			s1.Urgent != s2.Urgent || s1.MSS != s2.MSS {
			t.Fatalf("segment changed across round trip:\n%+v\n%+v", s1, s2)
		}
		if !bytes.Equal(s1.Payload, s2.Payload) {
			t.Fatalf("payload changed across round trip")
		}
		if !VerifyChecksum(src, dst, enc1) {
			t.Fatalf("re-marshalled segment has bad checksum")
		}
		// Second round trip: the normalized form must be a fixed point.
		enc2 := s2.Marshal(src, dst)
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("encoding not stable:\n% x\n% x", enc1, enc2)
		}
		// AppendMarshal into a dirty reused buffer must agree with the
		// fresh allocation (the hot path's scratch-buffer discipline).
		scratch := bytes.Repeat([]byte{0xa5}, 64)
		app := s2.AppendMarshal(scratch[:0], src, dst)
		if !bytes.Equal(app, enc2) {
			t.Fatalf("AppendMarshal into dirty scratch diverges from Marshal")
		}
	})
}
