// Package trace renders experiment results: aligned text tables for
// the paper's table-shaped artifacts and ASCII series plots for its
// figure-shaped ones. The experiment driver (cmd/wsim) and the
// benchmark harness print through it so EXPERIMENTS.md entries can be
// regenerated verbatim.
package trace

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells are rendered with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// Fprint writes the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", pad))
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

// Series is a named sequence of (x, y) points — a figure.
type Series struct {
	Title  string
	XLabel string
	YLabel string
	Lines  []Line
}

// Line is one curve within a Series.
type Line struct {
	Name string
	X, Y []float64
}

// NewSeries creates a figure with axis labels.
func NewSeries(title, xlabel, ylabel string) *Series {
	return &Series{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// Add appends a point to the named line, creating it on first use.
func (s *Series) Add(name string, x, y float64) {
	for i := range s.Lines {
		if s.Lines[i].Name == name {
			s.Lines[i].X = append(s.Lines[i].X, x)
			s.Lines[i].Y = append(s.Lines[i].Y, y)
			return
		}
	}
	s.Lines = append(s.Lines, Line{Name: name, X: []float64{x}, Y: []float64{y}})
}

// Fprint writes the series as a data table followed by a coarse ASCII
// plot (y rescaled per line set, x taken from the first line).
func (s *Series) Fprint(w io.Writer) {
	t := NewTable(s.Title, append([]string{s.XLabel}, lineNames(s.Lines)...)...)
	if len(s.Lines) > 0 {
		for i, x := range s.Lines[0].X {
			row := []any{formatFloat(x)}
			for _, l := range s.Lines {
				if i < len(l.Y) {
					row = append(row, l.Y[i])
				} else {
					row = append(row, "")
				}
			}
			t.AddRow(row...)
		}
	}
	t.Fprint(w)
	s.plot(w)
}

func lineNames(lines []Line) []string {
	out := make([]string, len(lines))
	for i, l := range lines {
		out[i] = l.Name
	}
	return out
}

// plot draws each line as a row of scaled bars, one row per x value.
func (s *Series) plot(w io.Writer) {
	maxY := 0.0
	for _, l := range s.Lines {
		for _, y := range l.Y {
			if y > maxY {
				maxY = y
			}
		}
	}
	if maxY <= 0 {
		return
	}
	const width = 50
	fmt.Fprintf(w, "\n%s (bar = %s, full scale %s)\n", s.Title, s.YLabel, formatFloat(maxY))
	for _, l := range s.Lines {
		fmt.Fprintf(w, "%s:\n", l.Name)
		for i, y := range l.Y {
			n := int(y / maxY * width)
			if n < 0 {
				n = 0
			}
			fmt.Fprintf(w, "  %10s |%s %s\n", formatFloat(l.X[i]), strings.Repeat("#", n), formatFloat(y))
		}
	}
}

// String renders the series.
func (s *Series) String() string {
	var b strings.Builder
	s.Fprint(&b)
	return b.String()
}
