package trace

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("T1", "name", "value")
	tb.AddRow("short", 1)
	tb.AddRow("a-much-longer-name", 123456)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "T1" {
		t.Errorf("title line %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name") || !strings.Contains(lines[1], "value") {
		t.Errorf("header %q", lines[1])
	}
	// Columns align: "value" column starts at the same offset in every
	// data row.
	idx := strings.Index(lines[3], "1")
	if idx < 0 || !strings.HasPrefix(lines[4][idx-len("a-much-longer-name")+len("short"):], "") {
		t.Logf("alignment heuristic weak; output:\n%s", out)
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tb := NewTable("", "v")
	tb.AddRow(3.0)
	tb.AddRow(3.14159)
	tb.AddRow(12345.678)
	out := tb.String()
	if !strings.Contains(out, "3\n") {
		t.Errorf("integral float not compact:\n%s", out)
	}
	if !strings.Contains(out, "3.14") {
		t.Errorf("fraction lost:\n%s", out)
	}
}

func TestSeriesTableAndPlot(t *testing.T) {
	s := NewSeries("goodput vs loss", "loss%", "KB/s")
	s.Add("plain", 0, 240)
	s.Add("plain", 5, 80)
	s.Add("snoop", 0, 240)
	s.Add("snoop", 5, 180)
	out := s.String()
	for _, want := range []string{"goodput vs loss", "loss%", "plain", "snoop", "240", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestEmptySeriesPlot(t *testing.T) {
	s := NewSeries("empty", "x", "y")
	if out := s.String(); !strings.Contains(out, "empty") {
		t.Errorf("empty series output: %q", out)
	}
	s.Add("zero", 1, 0)
	_ = s.String() // must not divide by zero
}
