package kati_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/eem"
	"repro/internal/filter"
	"repro/internal/filters"
	"repro/internal/ip"
	"repro/internal/kati"
	"repro/internal/netsim"
	"repro/internal/proxy"
	"repro/internal/sim"
	"repro/internal/tcp"
)

// katiRig: a user workstation running Kati, a proxy router with an SP
// control port and an EEM server, and wired/mobile hosts with a live
// TCP stream through the proxy.
type katiRig struct {
	sched      *sim.Scheduler
	out        bytes.Buffer
	shell      *kati.Shell
	prox       *proxy.Proxy
	wStack     *tcp.Stack
	mStack     *tcp.Stack
	mobileAddr ip.Addr
	proxyAddr  string
}

func newKatiRig(t *testing.T) *katiRig {
	t.Helper()
	s := sim.NewScheduler(9)
	n := netsim.New(s)
	user := n.AddNode("user")
	r := n.AddNode("proxyhost")
	wired := n.AddNode("wired")
	mobile := n.AddNode("mobile")
	r.Forwarding = true

	wire := netsim.LinkConfig{Bandwidth: 100e6, Delay: time.Millisecond}
	lu := n.Connect(user, ip.MustParseAddr("10.0.9.1"), r, ip.MustParseAddr("10.0.9.254"), wire)
	lw := n.Connect(wired, ip.MustParseAddr("10.0.1.1"), r, ip.MustParseAddr("10.0.1.254"), wire)
	lm := n.Connect(r, ip.MustParseAddr("10.0.2.254"), mobile, ip.MustParseAddr("10.0.2.1"), wire)
	user.AddDefaultRoute(lu.IfaceA())
	wired.AddDefaultRoute(lw.IfaceA())
	mobile.AddDefaultRoute(lm.IfaceB())
	r.AddRoute(ip.MustParseAddr("10.0.2.0"), 24, lm.IfaceA())
	r.AddRoute(ip.MustParseAddr("10.0.1.0"), 24, lw.IfaceB())
	r.AddRoute(ip.MustParseAddr("10.0.9.0"), 24, lu.IfaceB())

	cat := filter.NewCatalog()
	filters.RegisterAll(cat)
	prox := proxy.New(r, cat)

	// Control plane on the proxy host: SP port 12000, EEM port 12001.
	ctrlStack := tcp.NewStack(r, tcp.Config{})
	r.RegisterProto(ip.ProtoTCP, func(h ip.Header, p, raw []byte, in *netsim.Iface) {
		ctrlStack.Deliver(h.Src, h.Dst, p)
	})
	if err := proxy.ServeControl(ctrlStack, proxy.ControlPort, prox); err != nil {
		t.Fatal(err)
	}
	srv := eem.NewServer("proxyhost")
	srv.Interval = time.Second
	srv.AddSource(&eem.NodeSource{Node: r})
	if err := eem.ServeSim(ctrlStack, eem.DefaultPort, srv); err != nil {
		t.Fatal(err)
	}
	srv.StartSimTicker(s)

	// Data plane stacks.
	wStack := tcp.NewStack(wired, tcp.Config{})
	mStack := tcp.NewStack(mobile, tcp.Config{})
	wired.RegisterProto(ip.ProtoTCP, func(h ip.Header, p, raw []byte, in *netsim.Iface) { wStack.Deliver(h.Src, h.Dst, p) })
	mobile.RegisterProto(ip.ProtoTCP, func(h ip.Header, p, raw []byte, in *netsim.Iface) { mStack.Deliver(h.Src, h.Dst, p) })

	// Kati on the user workstation.
	userStack := tcp.NewStack(user, tcp.Config{})
	user.RegisterProto(ip.ProtoTCP, func(h ip.Header, p, raw []byte, in *netsim.Iface) { userStack.Deliver(h.Src, h.Dst, p) })

	rig := &katiRig{sched: s, prox: prox, wStack: wStack, mStack: mStack,
		mobileAddr: ip.MustParseAddr("10.0.2.1"), proxyAddr: "10.0.9.254"}

	spDial := func(addr string, onReply func(string)) (*kati.SPSession, error) {
		a, err := ip.ParseAddr(addr)
		if err != nil {
			return nil, err
		}
		c, err := userStack.Connect(a, proxy.ControlPort)
		if err != nil {
			return nil, err
		}
		c.OnData = func(b []byte) { onReply(string(b)) }
		return kati.NewSPSession(
			func(line string) error { return c.Write([]byte(line)) },
			func() { c.Close() },
		), nil
	}
	cm := eem.NewComma(eem.SimDialer(userStack))
	rig.shell = kati.New(&rig.out, spDial, cm)
	return rig
}

// run executes a shell command and lets the simulation settle.
func (r *katiRig) run(cmd string) {
	r.shell.Exec(cmd)
	r.sched.RunFor(500 * time.Millisecond)
}

func TestKatiSPControlSession(t *testing.T) {
	r := newKatiRig(t)
	r.run("sp " + r.proxyAddr)
	r.run("load tcp")
	r.run("load rdrop")
	r.run("add rdrop 10.0.1.1 7 10.0.2.1 1169 50")
	r.run("report")
	out := r.out.String()
	if !strings.Contains(out, "connected to service proxy") {
		t.Fatalf("no connect confirmation:\n%s", out)
	}
	if !strings.Contains(out, "rdrop") || !strings.Contains(out, "10.0.1.1 7 -> 10.0.2.1 1169") {
		t.Fatalf("report output missing:\n%s", out)
	}
	r.out.Reset()
	r.run("delete rdrop 10.0.1.1 7 10.0.2.1 1169")
	r.run("report rdrop")
	if strings.Contains(r.out.String(), "10.0.1.1") {
		t.Fatalf("deleted service still reported:\n%s", r.out.String())
	}
}

// TestKatiAddServiceAppears reproduces the Figs 7.3/7.4 interaction:
// a third party adds a service to a live stream from the shell, and
// the new service appears in the stream view.
func TestKatiAddServiceAppears(t *testing.T) {
	r := newKatiRig(t)
	r.run("sp " + r.proxyAddr)
	r.run("load tcp")
	r.run("load launcher")
	r.run("add launcher 10.0.1.1 0 10.0.2.1 0 tcp")

	// Start a live stream wired -> mobile through the proxy.
	r.mStack.Listen(5001, func(c *tcp.Conn) {})
	client, err := r.wStack.ConnectFrom(7, r.mobileAddr, 5001)
	if err != nil {
		t.Fatal(err)
	}
	client.OnEstablished = func() { client.Write(make([]byte, 40_000)) }
	r.sched.RunFor(2 * time.Second)

	r.out.Reset()
	r.run("streams")
	first := r.out.String()
	if !strings.Contains(first, "tcp") {
		t.Fatalf("live stream not visible:\n%s", first)
	}
	if strings.Contains(first, "wsize") {
		t.Fatalf("wsize present before add:\n%s", first)
	}

	// Third-party adds a wsize cap to the live stream.
	r.run("load wsize")
	key := fmt.Sprintf("10.0.1.1 %d 10.0.2.1 5001", client.LocalPort())
	r.run("add wsize " + key + " cap 4096")
	r.out.Reset()
	r.run("streams")
	second := r.out.String()
	if !strings.Contains(second, "wsize") {
		t.Fatalf("new service did not appear (Fig 7.4):\n%s", second)
	}
}

func TestKatiEEMCommands(t *testing.T) {
	r := newKatiRig(t)
	r.run("vars " + r.proxyAddr)
	if !strings.Contains(r.out.String(), "sysUpTime") {
		t.Fatalf("vars listing missing sysUpTime:\n%s", r.out.String())
	}
	r.out.Reset()
	r.run("get " + r.proxyAddr + " sysName")
	if !strings.Contains(r.out.String(), "sysName = proxyhost") {
		t.Fatalf("get output:\n%s", r.out.String())
	}
	r.out.Reset()
	r.run("watch " + r.proxyAddr + " sysUpTime GTE 0")
	r.sched.RunFor(3 * time.Second)
	r.run("status")
	out := r.out.String()
	if !strings.Contains(out, "watching") || !strings.Contains(out, "sysUpTime") {
		t.Fatalf("watch/status output:\n%s", out)
	}
	if !strings.Contains(out, "[eem]") {
		t.Fatalf("no interrupt notification printed:\n%s", out)
	}
	r.out.Reset()
	r.run("unwatch " + r.proxyAddr + " sysUpTime")
	r.run("status")
	if !strings.Contains(r.out.String(), "nothing watched") {
		t.Fatalf("unwatch failed:\n%s", r.out.String())
	}
}

func TestKatiErrorsAndHelp(t *testing.T) {
	r := newKatiRig(t)
	r.run("bogus")
	if !strings.Contains(r.out.String(), "unknown command") {
		t.Fatal("no error for unknown command")
	}
	r.out.Reset()
	r.run("streams")
	if !strings.Contains(r.out.String(), "no proxy selected") {
		t.Fatal("no error for command without proxy")
	}
	r.out.Reset()
	r.run("help")
	if !strings.Contains(r.out.String(), "kati commands") {
		t.Fatal("help missing")
	}
	r.out.Reset()
	r.run("sp 1.2.3")
	if !strings.Contains(r.out.String(), "connect") {
		t.Fatalf("bad address not reported:\n%s", r.out.String())
	}
}

func TestKatiMultipleProxies(t *testing.T) {
	r := newKatiRig(t)
	r.run("sp " + r.proxyAddr)
	r.run("sps")
	if !strings.Contains(r.out.String(), "* "+r.proxyAddr) {
		t.Fatalf("sps listing:\n%s", r.out.String())
	}
	r.out.Reset()
	r.run("use 9.9.9.9")
	if !strings.Contains(r.out.String(), "not connected") {
		t.Fatal("use of unknown proxy accepted")
	}
}
