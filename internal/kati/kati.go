// Package kati implements the Kati user shell of thesis chapter 7:
// the third-party monitoring and control interface to the Comma
// system. Kati connects to Service Proxies (to view streams and
// filters and to add or remove services) and to EEM servers (to watch
// execution-environment variables) — giving users, rather than
// applications, control over transparent stream services.
//
// The thesis's Kati was an X11 GUI (Figs 7.1–7.4); this implementation
// is a line-oriented shell performing the same operations: the main
// window's stream/filter views map to the `streams`, `filters`, and
// `report` commands, the Xnetload-style variable graphs to `watch`,
// and the add-service dialog to `add`.
package kati

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/cmdspec"
	"repro/internal/eem"
)

// SPSession is an open control connection to one service proxy.
type SPSession struct {
	send  func(line string) error
	close func()
}

// NewSPSession builds a session from transport functions.
func NewSPSession(send func(string) error, close func()) *SPSession {
	return &SPSession{send: send, close: close}
}

// SPDialer opens a control session to a service proxy at addr.
// Responses must be delivered to onReply as they arrive.
type SPDialer func(addr string, onReply func(string)) (*SPSession, error)

// Shell is the Kati command interpreter. Output is written to Out as
// it becomes available; in the simulator, run the scheduler after Exec
// to let responses arrive.
type Shell struct {
	out     io.Writer
	spDial  SPDialer
	eem     *eem.Comma
	sps     map[string]*SPSession
	current string // address of the currently selected SP
	watches map[eem.ID]bool
}

// New creates a shell writing to out, dialing proxies with spDial and
// EEM servers through cm (the comma_* client facade). Watched
// variables register with an interrupt callback that prints each
// in-region update.
func New(out io.Writer, spDial SPDialer, cm *eem.Comma) *Shell {
	return &Shell{
		out:     out,
		spDial:  spDial,
		eem:     cm,
		sps:     make(map[string]*SPSession),
		watches: make(map[eem.ID]bool),
	}
}

// Exec runs one command line.
func (sh *Shell) Exec(line string) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return
	}
	cmd, rest := fields[0], fields[1:]
	switch cmd {
	case "help":
		sh.help()
	case "sp":
		sh.cmdSP(rest)
	case "sps":
		sh.cmdSPs()
	case "use":
		sh.cmdUse(rest)
	case "vars":
		sh.cmdVars(rest)
	case "get":
		sh.cmdGet(rest)
	case "watch":
		sh.cmdWatch(rest)
	case "unwatch":
		sh.cmdUnwatch(rest)
	case "status":
		sh.cmdStatus()
	default:
		// SP commands forward verbatim to the selected proxy; the shared
		// grammar table decides which names qualify.
		if cmdspec.KatiForwards(cmd) {
			sh.forward(cmd, rest)
			return
		}
		fmt.Fprintf(sh.out, "kati: unknown command %q (try help)\n", cmd)
	}
}

func (sh *Shell) help() {
	fmt.Fprint(sh.out, `kati commands:
  sp <addr[:port]>            connect to a service proxy
  sps                         list connected proxies
  use <addr>                  select the current proxy
  vars <server>               list EEM variables
  get <server> <var> [index]  poll a variable once
  watch <server> <var> <op> <lower> [upper]   register interest
  unwatch <server> <var>      deregister
  status                      show watched variables (protected data area)
  help                        this text
forwarded to the current service proxy:
`)
	fmt.Fprint(sh.out, cmdspec.KatiHelp())
}

func (sh *Shell) cmdSP(args []string) {
	if len(args) != 1 {
		fmt.Fprintln(sh.out, "usage: sp <addr[:port]>")
		return
	}
	addr := args[0]
	if _, dup := sh.sps[addr]; dup {
		sh.current = addr
		fmt.Fprintf(sh.out, "kati: already connected to %s (selected)\n", addr)
		return
	}
	sess, err := sh.spDial(addr, func(reply string) {
		for _, l := range strings.Split(strings.TrimRight(reply, "\n"), "\n") {
			fmt.Fprintf(sh.out, "[%s] %s\n", addr, l)
		}
	})
	if err != nil {
		fmt.Fprintf(sh.out, "kati: connect %s: %v\n", addr, err)
		return
	}
	sh.sps[addr] = sess
	sh.current = addr
	fmt.Fprintf(sh.out, "kati: connected to service proxy %s\n", addr)
}

func (sh *Shell) cmdSPs() {
	if len(sh.sps) == 0 {
		fmt.Fprintln(sh.out, "kati: no proxies connected")
		return
	}
	var addrs []string
	for a := range sh.sps {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	for _, a := range addrs {
		mark := " "
		if a == sh.current {
			mark = "*"
		}
		fmt.Fprintf(sh.out, "%s %s\n", mark, a)
	}
}

func (sh *Shell) cmdUse(args []string) {
	if len(args) != 1 {
		fmt.Fprintln(sh.out, "usage: use <addr>")
		return
	}
	if _, ok := sh.sps[args[0]]; !ok {
		fmt.Fprintf(sh.out, "kati: not connected to %s\n", args[0])
		return
	}
	sh.current = args[0]
}

// forward sends an SP command verbatim over the current session.
func (sh *Shell) forward(cmd string, args []string) {
	sess, ok := sh.sps[sh.current]
	if !ok {
		fmt.Fprintln(sh.out, "kati: no proxy selected (use `sp <addr>` first)")
		return
	}
	line := cmd
	if len(args) > 0 {
		line += " " + strings.Join(args, " ")
	}
	if err := sess.send(line + "\n"); err != nil {
		fmt.Fprintf(sh.out, "kati: send: %v\n", err)
	}
}

func (sh *Shell) cmdVars(args []string) {
	if sh.eem == nil {
		fmt.Fprintln(sh.out, "kati: no EEM client")
		return
	}
	if len(args) != 1 {
		fmt.Fprintln(sh.out, "usage: vars <server>")
		return
	}
	err := sh.eem.ListVariables(args[0], func(names []string) {
		fmt.Fprintf(sh.out, "[eem] %d variables at %s:\n", len(names), args[0])
		for _, n := range names {
			fmt.Fprintf(sh.out, "  %s\n", n)
		}
	})
	if err != nil {
		fmt.Fprintf(sh.out, "kati: %v\n", err)
	}
}

func (sh *Shell) cmdGet(args []string) {
	if sh.eem == nil {
		fmt.Fprintln(sh.out, "kati: no EEM client")
		return
	}
	if len(args) < 2 {
		fmt.Fprintln(sh.out, "usage: get <server> <var> [index]")
		return
	}
	id := eem.ID{Server: args[0], Var: args[1]}
	if len(args) > 2 {
		if _, err := fmt.Sscanf(args[2], "%d", &id.Index); err != nil {
			fmt.Fprintf(sh.out, "kati: bad index %q\n", args[2])
			return
		}
	}
	err := sh.eem.GetValueOnce(id, func(v eem.Value, err error) {
		if err != nil {
			fmt.Fprintf(sh.out, "[eem] %s: %v\n", id, err)
			return
		}
		fmt.Fprintf(sh.out, "[eem] %s = %s\n", id, v)
	})
	if err != nil {
		fmt.Fprintf(sh.out, "kati: %v\n", err)
	}
}

func (sh *Shell) cmdWatch(args []string) {
	if sh.eem == nil {
		fmt.Fprintln(sh.out, "kati: no EEM client")
		return
	}
	if len(args) < 4 {
		fmt.Fprintln(sh.out, "usage: watch <server> <var> <op> <lower> [upper]")
		return
	}
	id := eem.ID{Server: args[0], Var: args[1]}
	op, err := eem.ParseOperator(strings.ToUpper(args[2]))
	if err != nil {
		fmt.Fprintf(sh.out, "kati: %v\n", err)
		return
	}
	attr := eem.Attr{Op: op}
	if attr.Lower, err = parseValue(args[3]); err != nil {
		fmt.Fprintf(sh.out, "kati: bad lower bound: %v\n", err)
		return
	}
	if len(args) > 4 {
		if attr.Upper, err = parseValue(args[4]); err != nil {
			fmt.Fprintf(sh.out, "kati: bad upper bound: %v\n", err)
			return
		}
	} else if op == eem.IN || op == eem.OUT {
		fmt.Fprintln(sh.out, "kati: IN/OUT need both bounds")
		return
	}
	err = sh.eem.Register(id, attr, eem.WithCallback(func(id eem.ID, v eem.Value) {
		fmt.Fprintf(sh.out, "[eem] %s = %s\n", id, v)
	}))
	if err != nil {
		fmt.Fprintf(sh.out, "kati: %v\n", err)
		return
	}
	sh.watches[id] = true
	fmt.Fprintf(sh.out, "kati: watching %s (%s %s)\n", id, op, args[3])
}

func (sh *Shell) cmdUnwatch(args []string) {
	if sh.eem == nil || len(args) < 2 {
		fmt.Fprintln(sh.out, "usage: unwatch <server> <var>")
		return
	}
	id := eem.ID{Server: args[0], Var: args[1]}
	delete(sh.watches, id)
	if err := sh.eem.Deregister(id); err != nil {
		fmt.Fprintf(sh.out, "kati: %v\n", err)
	}
}

// cmdStatus dumps the protected data area for watched variables — the
// text rendering of the Xnetload window (Fig 7.2).
func (sh *Shell) cmdStatus() {
	if len(sh.watches) == 0 {
		fmt.Fprintln(sh.out, "kati: nothing watched")
		return
	}
	var ids []eem.ID
	for id := range sh.watches {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].String() < ids[j].String() })
	for _, id := range ids {
		if v, ok := sh.eem.GetValue(id); ok {
			in := " "
			if sh.eem.IsInRange(id) {
				in = "*"
			}
			fmt.Fprintf(sh.out, "%s %s = %s\n", in, id, v)
		} else {
			fmt.Fprintf(sh.out, "  %s = (no data yet)\n", id)
		}
	}
}

// parseValue reads a long, double, or string value.
func parseValue(s string) (eem.Value, error) {
	var l int64
	if _, err := fmt.Sscanf(s, "%d", &l); err == nil && fmt.Sprintf("%d", l) == s {
		return eem.LongValue(l), nil
	}
	var d float64
	if _, err := fmt.Sscanf(s, "%g", &d); err == nil {
		return eem.DoubleValue(d), nil
	}
	return eem.StringValue(s), nil
}
