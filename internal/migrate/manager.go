package migrate

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/dataplane"
	"repro/internal/filter"
	"repro/internal/ip"
	"repro/internal/obs"
	"repro/internal/proxy"
	"repro/internal/sim"
	"repro/internal/tcp"
)

// Port is the proxy-to-proxy migration control port, next to the SP
// command port (12000) and the EEM event port (12001).
const Port = 12002

// Message types of the transfer protocol. Each migration attempt is a
// two-phase exchange between the source manager (which froze the
// stream) and the destination manager:
//
//	source                         destination
//	  | -- OFFER(snapshot) ----------> |  validate, hold pending
//	  | <-------------- PREPARED/NAK - |
//	  |  journal phase := committed    |  (the ack boundary)
//	  | -- COMMIT -------------------> |  install pending stream
//	  | <------------------ DONE/GONE- |
//	  |  completed / resumed           |
//
// The destination installs nothing before COMMIT and the source stops
// being able to resume only after its journal says committed, so at
// every instant exactly one side can end up owning the stream:
// completed-on-destination XOR resumed-on-source.
const (
	msgOffer byte = iota + 1
	msgPrepared
	msgNak
	msgCommit
	msgDone
	msgAbort
	msgGone
)

// Source-side journal phases. The journal survives Crash/Restart — it
// models the durable write-ahead log a real SP would keep.
const (
	phaseOffered = iota
	phaseCommitted
)

const frameHeader = 1 + 8 + 4 // type | txid | payload length

// Config wires a Manager into one service proxy.
type Config struct {
	Name  string           // manager name in events/log lines ("migrate", "migrateB")
	ID    uint8            // manager ID, high byte of every txid it issues
	Sched *sim.Scheduler   // simulation clock
	Plane *dataplane.Plane // the data plane whose streams migrate
	Stack *tcp.Stack       // control stack the protocol runs over
	Bus   *obs.Bus         // event bus (nil-safe)
	Log   func(string, ...any)

	// OfferTimeout paces source-side OFFER retries; after Retries
	// expiries without a PREPARED the source resumes the stream, so a
	// dead or partitioned peer never wedges it. CommitTimeout paces
	// COMMIT re-sends (CommitRetries of them) once the journal says
	// committed. PendingTimeout bounds how long the destination holds a
	// validated-but-uncommitted offer.
	OfferTimeout   time.Duration
	Retries        int
	CommitTimeout  time.Duration
	CommitRetries  int
	PendingTimeout time.Duration
}

type journalEntry struct {
	tx    uint64
	peer  ip.Addr
	ex    *proxy.StreamExport
	snap  []byte
	phase int
}

// attempt is the volatile half of a source-side migration: the live
// connection and retry budget. Lost on Crash; rebuilt by Restart from
// the journal.
type attempt struct {
	conn    *tcp.Conn
	retries int
	timer   *sim.Timer
}

type pendingOffer struct {
	ex    *proxy.StreamExport
	timer *sim.Timer
}

// Manager runs both halves of the migration protocol for one SP: it is
// the source for streams this SP pushes out and the destination for
// streams peers push in. All methods run on the simulation goroutine.
type Manager struct {
	cfg      Config
	listener *tcp.Listener
	nextTx   uint64

	// Source side.
	journal  map[uint64]*journalEntry
	attempts map[uint64]*attempt

	// Destination side. pending is volatile (lost on Crash, so an
	// uncommitted offer dies with the process); done and discarded are
	// durable like the journal — they record which transfers this SP
	// owns or has renounced, which a restarted peer re-asks via COMMIT.
	pending   map[uint64]*pendingOffer
	done      map[uint64]bool
	discarded map[uint64]bool

	conns []*tcp.Conn // live protocol connections, aborted on Crash
	down  bool
	gen   uint64 // bumped by Crash/Restart; invalidates armed timers

	faults map[string]bool // one-shot fault points armed by the injector

	nAttempts  atomic.Int64
	nCompleted atomic.Int64
	nResumed   atomic.Int64
	nAborted   atomic.Int64
	nBytes     atomic.Int64
}

// NewManager builds a Manager; call Serve to start accepting peers.
func NewManager(cfg Config) *Manager {
	if cfg.OfferTimeout <= 0 {
		cfg.OfferTimeout = 250 * time.Millisecond
	}
	if cfg.Retries <= 0 {
		cfg.Retries = 3
	}
	if cfg.CommitTimeout <= 0 {
		cfg.CommitTimeout = 250 * time.Millisecond
	}
	if cfg.CommitRetries <= 0 {
		cfg.CommitRetries = 25
	}
	if cfg.PendingTimeout <= 0 {
		cfg.PendingTimeout = 2 * time.Second
	}
	if cfg.Log == nil {
		cfg.Log = func(string, ...any) {}
	}
	return &Manager{
		cfg:       cfg,
		journal:   make(map[uint64]*journalEntry),
		attempts:  make(map[uint64]*attempt),
		pending:   make(map[uint64]*pendingOffer),
		done:      make(map[uint64]bool),
		discarded: make(map[uint64]bool),
		faults:    make(map[string]bool),
	}
}

// Serve starts the destination half: accept peer connections on Port.
func (m *Manager) Serve() error {
	l, err := m.cfg.Stack.Listen(Port, m.accept)
	if err != nil {
		return err
	}
	m.listener = l
	return nil
}

// RegisterMetrics exposes the migration counters, e.g. as
// "migrate.attempts". attempts counts successful freezes; completed,
// resumed and aborted are disjoint final outcomes; bytes sums encoded
// snapshot sizes at freeze time.
func (m *Manager) RegisterMetrics(r *obs.Registry, prefix string) {
	r.Counter(prefix+".attempts", m.nAttempts.Load)
	r.Counter(prefix+".completed", m.nCompleted.Load)
	r.Counter(prefix+".resumed", m.nResumed.Load)
	r.Counter(prefix+".aborted", m.nAborted.Load)
	r.Counter(prefix+".bytes", m.nBytes.Load)
}

// Counters returns (attempts, completed, resumed, aborted) for
// assertions in experiments.
func (m *Manager) Counters() (attempts, completed, resumed, aborted int64) {
	return m.nAttempts.Load(), m.nCompleted.Load(), m.nResumed.Load(), m.nAborted.Load()
}

// Down reports whether the manager is crashed.
func (m *Manager) Down() bool { return m.down }

// ArmFault arms a one-shot fault point: "drop-offer", "corrupt-offer",
// "crash-pre-commit", "crash-post-commit". The next time the protocol
// passes the point, the fault fires once and disarms.
func (m *Manager) ArmFault(point string) { m.faults[point] = true }

func (m *Manager) takeFault(point string) bool {
	if !m.faults[point] {
		return false
	}
	delete(m.faults, point)
	return true
}

// Command implements the "migrate <srcIP> <srcPort> <dstIP> <dstPort>
// <peerIP>" control command: freeze the keyed stream now and hand it
// to the peer SP. The transfer itself proceeds asynchronously; watch
// the migrate.* counters or the event log for the outcome.
func (m *Manager) Command(args []string) string {
	if len(args) != 5 {
		return "error: usage: migrate <srcIP> <srcPort> <dstIP> <dstPort> <peerIP>\n"
	}
	k, err := filter.ParseKey(args[:4])
	if err != nil {
		return fmt.Sprintf("error: %v\n", err)
	}
	if k.IsWild() {
		return "error: migrate needs an exact stream key\n"
	}
	peer, err := ip.ParseAddr(args[4])
	if err != nil {
		return fmt.Sprintf("error: %v\n", err)
	}
	if err := m.Migrate(k, peer); err != nil {
		return fmt.Sprintf("error: %v\n", err)
	}
	return fmt.Sprintf("migrating %v -> %v\n", k, peer)
}

// Migrate freezes stream k at a batch boundary, journals the snapshot,
// and starts the transfer to peer. An error means nothing was frozen
// (the stream stays where it is); after a nil return the stream ends
// either completed on the peer or resumed here.
func (m *Manager) Migrate(k filter.Key, peer ip.Addr) error {
	if m.down {
		return fmt.Errorf("migrate: %s is down", m.cfg.Name)
	}
	ex, err := m.cfg.Plane.ExtractStream(k)
	if err != nil {
		return err
	}
	snap, err := EncodeSnapshot(ex)
	if err != nil {
		if rerr := m.cfg.Plane.RestoreStream(ex); rerr != nil {
			m.cfg.Log("migrate: %s: reinstall after encode failure: %v", m.cfg.Name, rerr)
		}
		return err
	}
	tx := m.newTx()
	m.journal[tx] = &journalEntry{tx: tx, peer: peer, ex: ex, snap: snap, phase: phaseOffered}
	m.nAttempts.Add(1)
	m.nBytes.Add(int64(len(snap)))
	m.emit("start", k.String(), obs.F("tx", txString(tx)),
		obs.F("peer", peer.String()), obs.F("bytes", len(snap)))
	m.startAttempt(tx)
	return nil
}

// newTx issues a transfer ID unique across managers: the manager's ID
// in the high byte, a local counter below. Deterministic by
// construction.
func (m *Manager) newTx() uint64 {
	m.nextTx++
	return uint64(m.cfg.ID)<<56 | m.nextTx
}

func txString(tx uint64) string { return fmt.Sprintf("%02x:%d", tx>>56, tx&^(uint64(0xff)<<56)) }

// --- source side --------------------------------------------------------

func (m *Manager) startAttempt(tx uint64) {
	e := m.journal[tx]
	if e == nil {
		return
	}
	at := &attempt{retries: m.cfg.Retries}
	m.attempts[tx] = at
	c, err := m.cfg.Stack.Connect(e.peer, Port)
	if err != nil {
		m.resumeSource(tx, "connect: "+err.Error())
		return
	}
	at.conn = c
	m.track(c)
	m.wireSourceConn(c)
	m.sendOffer(tx)
	m.armRetry(tx)
}

func (m *Manager) wireSourceConn(c *tcp.Conn) {
	fb := &frameBuf{}
	c.OnData = func(b []byte) { m.onData(c, fb, b, m.onSourceFrame) }
}

func (m *Manager) sendOffer(tx uint64) {
	e, at := m.journal[tx], m.attempts[tx]
	if e == nil || at == nil || at.conn == nil {
		return
	}
	payload := e.snap
	if m.takeFault("corrupt-offer") {
		payload = append([]byte(nil), e.snap...)
		payload[len(payload)/2] ^= 0x40
		m.emit("fault", e.ex.Key.String(), obs.F("point", "corrupt-offer"))
	}
	if m.takeFault("drop-offer") {
		m.emit("fault", e.ex.Key.String(), obs.F("point", "drop-offer"))
		return
	}
	if err := at.conn.Write(encodeFrame(msgOffer, tx, payload)); err != nil {
		return // retry timer will try again or resume
	}
	m.emit("offer", e.ex.Key.String(), obs.F("tx", txString(tx)), obs.F("bytes", len(payload)))
}

func (m *Manager) sendCommit(tx uint64) {
	e, at := m.journal[tx], m.attempts[tx]
	if e == nil || at == nil || at.conn == nil {
		return
	}
	if err := at.conn.Write(encodeFrame(msgCommit, tx, nil)); err != nil {
		return
	}
	m.emit("commit", e.ex.Key.String(), obs.F("tx", txString(tx)))
}

// armRetry schedules the source-side pacing timer for tx. One timer
// serves both phases: re-send OFFER while offered (resume when the
// budget runs out), re-send COMMIT while committed.
func (m *Manager) armRetry(tx uint64) {
	at := m.attempts[tx]
	if at == nil {
		return
	}
	e := m.journal[tx]
	if e == nil {
		return
	}
	d := m.cfg.OfferTimeout
	if e.phase == phaseCommitted {
		d = m.cfg.CommitTimeout
	}
	gen := m.gen
	at.timer = m.cfg.Sched.After(d, func() {
		if m.gen != gen {
			return
		}
		m.onRetryTimer(tx)
	})
}

func (m *Manager) onRetryTimer(tx uint64) {
	e := m.journal[tx]
	if e == nil {
		return
	}
	at := m.attempts[tx]
	if at == nil {
		return
	}
	if at.retries <= 0 {
		if e.phase == phaseOffered {
			m.resumeSource(tx, "no answer from peer")
		} else {
			// Committed but the peer never confirmed: the stream may
			// already run over there, so resuming could double-own it.
			// Park the journal entry; Restart (or the operator) retries.
			m.emit("stuck", e.ex.Key.String(), obs.F("tx", txString(tx)))
			m.cfg.Log("migrate: %s: tx %s stuck in committed phase", m.cfg.Name, txString(tx))
		}
		return
	}
	at.retries--
	if e.phase == phaseOffered {
		m.sendOffer(tx)
	} else {
		m.sendCommit(tx)
	}
	m.armRetry(tx)
}

func (m *Manager) onSourceFrame(c *tcp.Conn, typ byte, tx uint64, payload []byte) {
	if m.down {
		return
	}
	switch typ {
	case msgPrepared:
		m.onPrepared(tx)
	case msgNak:
		m.onNak(tx, string(payload))
	case msgDone:
		m.onDone(tx)
	case msgGone:
		m.onGone(tx)
	}
}

func (m *Manager) onPrepared(tx uint64) {
	e := m.journal[tx]
	if e == nil {
		return
	}
	if e.phase == phaseCommitted {
		m.sendCommit(tx) // duplicate PREPARED; COMMIT again
		return
	}
	if m.takeFault("crash-pre-commit") {
		m.emit("fault", e.ex.Key.String(), obs.F("point", "crash-pre-commit"))
		m.Crash()
		return
	}
	// The ack boundary: from this journal write on, the destination may
	// own the stream, so the source may no longer resume it.
	e.phase = phaseCommitted
	if at := m.attempts[tx]; at != nil {
		at.retries = m.cfg.CommitRetries
		if at.timer != nil {
			at.timer.Stop()
		}
	}
	if m.takeFault("crash-post-commit") {
		m.emit("fault", e.ex.Key.String(), obs.F("point", "crash-post-commit"))
		m.Crash()
		return
	}
	m.sendCommit(tx)
	m.armRetry(tx)
}

func (m *Manager) onNak(tx uint64, reason string) {
	e := m.journal[tx]
	if e == nil || e.phase != phaseOffered {
		return
	}
	m.finishAttempt(tx)
	if err := m.cfg.Plane.RestoreStream(e.ex); err != nil {
		m.cfg.Log("migrate: %s: reinstall after NAK: %v", m.cfg.Name, err)
	}
	m.nAborted.Add(1)
	m.emit("aborted", e.ex.Key.String(), obs.F("tx", txString(tx)), obs.F("reason", reason))
}

func (m *Manager) onDone(tx uint64) {
	e := m.journal[tx]
	if e == nil {
		return
	}
	m.finishAttempt(tx)
	m.nCompleted.Add(1)
	m.emit("completed", e.ex.Key.String(), obs.F("tx", txString(tx)))
}

func (m *Manager) onGone(tx uint64) {
	e := m.journal[tx]
	if e == nil {
		return
	}
	// The destination renounced the transfer (pending expired, install
	// failed, or it never saw the offer): the stream provably does not
	// run over there, so resuming here is safe in either phase.
	m.finishAttempt(tx)
	if err := m.cfg.Plane.RestoreStream(e.ex); err != nil {
		m.cfg.Log("migrate: %s: reinstall after GONE: %v", m.cfg.Name, err)
	}
	m.nResumed.Add(1)
	m.emit("resumed", e.ex.Key.String(), obs.F("tx", txString(tx)), obs.F("reason", "peer renounced"))
}

// resumeSource reinstalls an offered-phase stream locally and tells the
// peer (best effort) to forget the transfer.
func (m *Manager) resumeSource(tx uint64, reason string) {
	e := m.journal[tx]
	if e == nil {
		return
	}
	if at := m.attempts[tx]; at != nil && at.conn != nil {
		at.conn.Write(encodeFrame(msgAbort, tx, nil)) // best effort
	}
	m.finishAttempt(tx)
	if err := m.cfg.Plane.RestoreStream(e.ex); err != nil {
		m.cfg.Log("migrate: %s: reinstall on resume: %v", m.cfg.Name, err)
	}
	m.nResumed.Add(1)
	m.emit("resumed", e.ex.Key.String(), obs.F("tx", txString(tx)), obs.F("reason", reason))
}

// finishAttempt retires tx on the source: journal entry out, timer
// stopped, connection closed.
func (m *Manager) finishAttempt(tx uint64) {
	delete(m.journal, tx)
	at := m.attempts[tx]
	if at == nil {
		return
	}
	delete(m.attempts, tx)
	if at.timer != nil {
		at.timer.Stop()
	}
	if at.conn != nil {
		at.conn.Close()
	}
}

// --- destination side ---------------------------------------------------

func (m *Manager) accept(c *tcp.Conn) {
	if m.down {
		c.Abort()
		return
	}
	m.track(c)
	fb := &frameBuf{}
	c.OnData = func(b []byte) { m.onData(c, fb, b, m.onDestFrame) }
}

func (m *Manager) onDestFrame(c *tcp.Conn, typ byte, tx uint64, payload []byte) {
	if m.down {
		return
	}
	switch typ {
	case msgOffer:
		m.onOffer(c, tx, payload)
	case msgCommit:
		m.onCommit(c, tx)
	case msgAbort:
		m.onAbort(tx)
	}
}

func (m *Manager) onOffer(c *tcp.Conn, tx uint64, payload []byte) {
	if m.done[tx] || m.pending[tx] != nil {
		// Duplicate offer: our earlier answer was lost. Re-answer;
		// nothing is re-validated and nothing is installed here.
		c.Write(encodeFrame(msgPrepared, tx, nil))
		return
	}
	ex, err := DecodeSnapshot(payload)
	if err == nil {
		err = m.cfg.Plane.ValidateImport(ex)
	}
	if err != nil {
		m.emit("nak", txString(tx), obs.F("reason", err.Error()))
		c.Write(encodeFrame(msgNak, tx, []byte(err.Error())))
		return
	}
	delete(m.discarded, tx) // a fresh full offer supersedes an old discard
	po := &pendingOffer{ex: ex}
	m.pending[tx] = po
	gen := m.gen
	po.timer = m.cfg.Sched.After(m.cfg.PendingTimeout, func() {
		if m.gen != gen {
			return
		}
		if m.pending[tx] != po {
			return
		}
		delete(m.pending, tx)
		m.discarded[tx] = true
		m.emit("pending-expired", ex.Key.String(), obs.F("tx", txString(tx)))
	})
	m.emit("prepared", ex.Key.String(), obs.F("tx", txString(tx)),
		obs.F("bindings", len(ex.Bindings)), obs.F("states", len(ex.States)))
	c.Write(encodeFrame(msgPrepared, tx, nil))
}

func (m *Manager) onCommit(c *tcp.Conn, tx uint64) {
	if m.done[tx] {
		c.Write(encodeFrame(msgDone, tx, nil)) // idempotent
		return
	}
	po := m.pending[tx]
	if po == nil {
		// Unknown or discarded: we provably never installed it.
		m.emit("gone", txString(tx))
		c.Write(encodeFrame(msgGone, tx, nil))
		return
	}
	delete(m.pending, tx)
	if po.timer != nil {
		po.timer.Stop()
	}
	if err := m.cfg.Plane.RestoreStream(po.ex); err != nil {
		m.discarded[tx] = true
		m.emit("install-failed", po.ex.Key.String(), obs.F("tx", txString(tx)), obs.F("err", err.Error()))
		c.Write(encodeFrame(msgGone, tx, nil))
		return
	}
	m.done[tx] = true
	m.emit("installed", po.ex.Key.String(), obs.F("tx", txString(tx)),
		obs.F("bindings", len(po.ex.Bindings)), obs.F("states", len(po.ex.States)))
	c.Write(encodeFrame(msgDone, tx, nil))
}

func (m *Manager) onAbort(tx uint64) {
	po := m.pending[tx]
	if po == nil {
		return
	}
	delete(m.pending, tx)
	if po.timer != nil {
		po.timer.Stop()
	}
	m.discarded[tx] = true
	m.emit("abort-rcvd", po.ex.Key.String(), obs.F("tx", txString(tx)))
}

// --- crash / restart ----------------------------------------------------

// Crash models the SP's migration subsystem dying: every connection is
// reset, volatile state (attempts, pending offers) is lost, armed
// timers die. The journal and the done/discarded ledgers survive —
// they model the durable log a real SP keeps precisely so migration is
// crash-safe.
func (m *Manager) Crash() {
	if m.down {
		return
	}
	m.down = true
	m.gen++
	cs := m.conns
	m.conns = nil // detach first: Abort fires OnClose, which edits conns
	for _, c := range cs {
		c.Abort()
	}
	m.attempts = make(map[uint64]*attempt)
	m.pending = make(map[uint64]*pendingOffer)
	m.emit("crash", m.cfg.Name)
}

// Restart recovers from Crash by replaying the journal in txid order:
// offered-phase transfers resume locally (the peer cannot have
// installed them — no COMMIT was ever sent), committed-phase transfers
// re-send COMMIT until the peer answers DONE or GONE.
func (m *Manager) Restart() {
	if !m.down {
		return
	}
	m.down = false
	m.gen++
	m.emit("restart", m.cfg.Name)
	txs := make([]uint64, 0, len(m.journal))
	for tx := range m.journal {
		txs = append(txs, tx)
	}
	sort.Slice(txs, func(i, j int) bool { return txs[i] < txs[j] })
	for _, tx := range txs {
		e := m.journal[tx]
		switch e.phase {
		case phaseOffered:
			m.emit("recover-offered", e.ex.Key.String(), obs.F("tx", txString(tx)))
			m.resumeSource(tx, "restart with uncommitted journal entry")
		case phaseCommitted:
			m.emit("recover-committed", e.ex.Key.String(), obs.F("tx", txString(tx)))
			at := &attempt{retries: m.cfg.CommitRetries}
			m.attempts[tx] = at
			c, err := m.cfg.Stack.Connect(e.peer, Port)
			if err != nil {
				m.emit("stuck", e.ex.Key.String(), obs.F("tx", txString(tx)))
				continue
			}
			at.conn = c
			m.track(c)
			m.wireSourceConn(c)
			m.sendCommit(tx)
			m.armRetry(tx)
		}
	}
}

// --- framing ------------------------------------------------------------

type frameBuf struct{ b []byte }

func encodeFrame(typ byte, tx uint64, payload []byte) []byte {
	b := make([]byte, 0, frameHeader+len(payload))
	b = append(b, typ)
	b = binary.BigEndian.AppendUint64(b, tx)
	b = binary.BigEndian.AppendUint32(b, uint32(len(payload)))
	return append(b, payload...)
}

// onData reassembles frames from the TCP byte stream and dispatches
// complete ones. A frame claiming more than the snapshot bound aborts
// the connection before anything is buffered for it.
func (m *Manager) onData(c *tcp.Conn, fb *frameBuf, data []byte,
	handler func(c *tcp.Conn, typ byte, tx uint64, payload []byte)) {
	fb.b = append(fb.b, data...)
	for {
		if len(fb.b) < frameHeader {
			return
		}
		typ := fb.b[0]
		tx := binary.BigEndian.Uint64(fb.b[1:9])
		n := int(binary.BigEndian.Uint32(fb.b[9:frameHeader]))
		if n > MaxSnapshotSize+256 {
			m.cfg.Log("migrate: %s: oversized frame (%d bytes), resetting peer", m.cfg.Name, n)
			c.Abort()
			return
		}
		if len(fb.b) < frameHeader+n {
			return
		}
		payload := append([]byte(nil), fb.b[frameHeader:frameHeader+n]...)
		fb.b = fb.b[frameHeader+n:]
		handler(c, typ, tx, payload)
	}
}

func (m *Manager) track(c *tcp.Conn) {
	m.conns = append(m.conns, c)
	c.OnClose = func(error) {
		for i, cc := range m.conns {
			if cc == c {
				m.conns = append(m.conns[:i], m.conns[i+1:]...)
				break
			}
		}
	}
}

func (m *Manager) emit(kind, key string, fields ...obs.Field) {
	if m.cfg.Bus == nil {
		return
	}
	fields = append([]obs.Field{obs.F("mgr", m.cfg.Name)}, fields...)
	m.cfg.Bus.Emit("migrate", kind, key, fields...)
}
