package migrate

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"reflect"
	"testing"

	"repro/internal/filter"
	"repro/internal/ip"
	"repro/internal/proxy"
)

func testKey() filter.Key {
	return filter.Key{
		SrcIP: ip.MustParseAddr("11.11.10.99"), SrcPort: 5001,
		DstIP: ip.MustParseAddr("11.11.10.10"), DstPort: 9001,
	}
}

func testExport() *proxy.StreamExport {
	k := testKey()
	return &proxy.StreamExport{
		Key:      k,
		Pkts:     1234,
		Bytes:    987654,
		RevPkts:  555,
		RevBytes: 4242,
		Bindings: []proxy.BindingExport{
			{Filter: "tcp", Key: k, Args: nil},
			{Filter: "ttsf", Key: k, Args: []string{"snoop"}},
			{Filter: "wsize", Key: k.Reverse(), Args: []string{"cap", "4096"}},
		},
		States: []proxy.FilterState{
			{Filter: "ttsf", Key: k, Ordinal: 0, State: []byte{1, 2, 3, 4, 5}},
			{Filter: "wsize", Key: k.Reverse(), Ordinal: 0, State: []byte{0x10, 0x00}},
			{Filter: "wsize", Key: k.Reverse(), Ordinal: 1, State: nil},
		},
	}
}

// reseal recomputes the SHA-256 trailer over a mutated body, so tests
// can reach the structural decode errors behind the checksum gate.
func reseal(b []byte) []byte {
	body := b[:len(b)-sha256.Size]
	sum := sha256.Sum256(body)
	return append(append([]byte(nil), body...), sum[:]...)
}

func TestSnapshotRoundTrip(t *testing.T) {
	ex := testExport()
	b, err := EncodeSnapshot(ex)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeSnapshot(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	// Canonical encoding: nil and empty blobs both decode to nil.
	want := testExport()
	want.States[2].State = nil
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	// And re-encoding is byte-identical.
	b2, err := EncodeSnapshot(got)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytesEqual(b, b2) {
		t.Fatalf("re-encode not canonical: %d vs %d bytes", len(b), len(b2))
	}
}

func TestSnapshotEmptySections(t *testing.T) {
	ex := &proxy.StreamExport{Key: testKey()}
	b, err := EncodeSnapshot(ex)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeSnapshot(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, ex) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestSnapshotChecksum(t *testing.T) {
	b, _ := EncodeSnapshot(testExport())
	for _, i := range []int{0, 5, len(b) / 2, len(b) - 1} {
		c := append([]byte(nil), b...)
		c[i] ^= 0x80
		if _, err := DecodeSnapshot(c); !errors.Is(err, ErrChecksum) {
			t.Fatalf("flip byte %d: got %v, want ErrChecksum", i, err)
		}
	}
}

func TestSnapshotBadMagic(t *testing.T) {
	b, _ := EncodeSnapshot(testExport())
	c := append([]byte(nil), b...)
	c[0] = 'X'
	if _, err := DecodeSnapshot(reseal(c)); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("got %v, want ErrBadMagic", err)
	}
}

func TestSnapshotBadVersion(t *testing.T) {
	b, _ := EncodeSnapshot(testExport())
	c := append([]byte(nil), b...)
	c[4] = 99
	if _, err := DecodeSnapshot(reseal(c)); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("got %v, want ErrBadVersion", err)
	}
}

func TestSnapshotTruncated(t *testing.T) {
	if _, err := DecodeSnapshot(nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("nil input: got %v, want ErrTruncated", err)
	}
	if _, err := DecodeSnapshot([]byte{1, 2, 3}); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short input: got %v, want ErrTruncated", err)
	}
	// A binding count larger than the sections present: the checksum is
	// valid, the structure is not.
	b, _ := EncodeSnapshot(testExport())
	off := 4 + 1 + 12 + 4*8 // magic, version, key, four counters
	c := append([]byte(nil), b...)
	binary.BigEndian.PutUint16(c[off:], 500)
	if _, err := DecodeSnapshot(reseal(c)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("lying binding count: got %v, want ErrTruncated", err)
	}
}

func TestSnapshotLyingBlobLength(t *testing.T) {
	// A state blob declaring far more bytes than follow must fail
	// without allocating the declared amount.
	ex := &proxy.StreamExport{
		Key:    testKey(),
		States: []proxy.FilterState{{Filter: "ttsf", Key: testKey(), State: []byte{1, 2, 3}}},
	}
	b, _ := EncodeSnapshot(ex)
	// The blob length field sits 4 bytes before its 3 payload bytes,
	// which are the last bytes before the trailer.
	off := len(b) - sha256.Size - 3 - 4
	c := append([]byte(nil), b...)
	binary.BigEndian.PutUint32(c[off:], 900_000)
	if _, err := DecodeSnapshot(reseal(c)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("lying blob length: got %v, want ErrTruncated", err)
	}
}

func TestSnapshotOversize(t *testing.T) {
	if _, err := DecodeSnapshot(make([]byte, MaxSnapshotSize+1)); !errors.Is(err, ErrOversize) {
		t.Fatalf("got %v, want ErrOversize", err)
	}
	big := &proxy.StreamExport{
		Key:    testKey(),
		States: []proxy.FilterState{{Filter: "ttsf", Key: testKey(), State: make([]byte, MaxSnapshotSize)}},
	}
	if _, err := EncodeSnapshot(big); !errors.Is(err, ErrOversize) {
		t.Fatalf("encode oversize: got %v, want ErrOversize", err)
	}
}

func TestSnapshotTrailingBytes(t *testing.T) {
	b, _ := EncodeSnapshot(testExport())
	c := append([]byte(nil), b[:len(b)-sha256.Size]...)
	c = append(c, 0xAA, 0xBB)
	if _, err := DecodeSnapshot(reseal(c)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("trailing bytes: got %v, want ErrTruncated", err)
	}
}
