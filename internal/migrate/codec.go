// Package migrate implements live proxy-to-proxy stream migration: a
// versioned wire codec for stream snapshots (this file) and a
// crash-safe two-phase transfer protocol between service proxies
// (manager.go).
//
// A snapshot is the self-contained description of one serviced stream:
// its exact-key filter bindings, the serialized per-filter state of
// every attachment implementing filter.StateSnapshotter, and the
// per-stream accounting. The layout is length-framed throughout and
// closed by a SHA-256 trailer over everything before it, so a
// corrupted or truncated snapshot is rejected before any of it is
// installed.
//
//	magic "CMG1" (4) | version (1) | key (12)
//	| pkts i64 | bytes i64 | revPkts i64 | revBytes i64
//	| nBindings u16 | binding...
//	| nStates u16 | state...
//	| sha256 (32, over all preceding bytes)
//
//	binding: name (u16-len + bytes) | key (12) | nArgs u16 | arg (u16-len + bytes)...
//	state:   name (u16-len + bytes) | key (12) | ordinal u16 | blob (u32-len + bytes)
//
// Keys serialize as srcIP u32 | srcPort u16 | dstIP u32 | dstPort u16,
// big-endian. All decode errors are typed; Decode never panics on
// malformed input and never allocates more than the input's own length
// plus small constants, however the length prefixes lie.
package migrate

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/filter"
	"repro/internal/ip"
	"repro/internal/proxy"
)

// SnapshotVersion is the current codec version. A decoder rejects
// snapshots from a newer (or unknown older) codec rather than guessing
// at their layout.
const SnapshotVersion = 1

// MaxSnapshotSize bounds an encoded snapshot. Decode rejects longer
// inputs up front, and the transfer protocol refuses to buffer past it,
// so a corrupt length field cannot balloon memory on either peer.
const MaxSnapshotSize = 1 << 20

var snapshotMagic = [4]byte{'C', 'M', 'G', '1'}

// Typed decode errors, distinguishable by errors.Is.
var (
	ErrBadMagic   = errors.New("migrate: bad snapshot magic")
	ErrBadVersion = errors.New("migrate: unsupported snapshot version")
	ErrTruncated  = errors.New("migrate: truncated snapshot")
	ErrOversize   = errors.New("migrate: snapshot exceeds size bound")
	ErrChecksum   = errors.New("migrate: snapshot checksum mismatch")
)

// EncodeSnapshot serializes a stream export for the wire.
func EncodeSnapshot(ex *proxy.StreamExport) ([]byte, error) {
	b := make([]byte, 0, 256)
	b = append(b, snapshotMagic[:]...)
	b = append(b, SnapshotVersion)
	b = appendKey(b, ex.Key)
	b = binary.BigEndian.AppendUint64(b, uint64(ex.Pkts))
	b = binary.BigEndian.AppendUint64(b, uint64(ex.Bytes))
	b = binary.BigEndian.AppendUint64(b, uint64(ex.RevPkts))
	b = binary.BigEndian.AppendUint64(b, uint64(ex.RevBytes))
	if len(ex.Bindings) > 0xffff || len(ex.States) > 0xffff {
		return nil, fmt.Errorf("migrate: snapshot of %v has too many sections", ex.Key)
	}
	b = binary.BigEndian.AppendUint16(b, uint16(len(ex.Bindings)))
	for _, bd := range ex.Bindings {
		b = appendString(b, bd.Filter)
		b = appendKey(b, bd.Key)
		if len(bd.Args) > 0xffff {
			return nil, fmt.Errorf("migrate: binding %s has too many args", bd.Filter)
		}
		b = binary.BigEndian.AppendUint16(b, uint16(len(bd.Args)))
		for _, a := range bd.Args {
			b = appendString(b, a)
		}
	}
	b = binary.BigEndian.AppendUint16(b, uint16(len(ex.States)))
	for _, st := range ex.States {
		b = appendString(b, st.Filter)
		b = appendKey(b, st.Key)
		b = binary.BigEndian.AppendUint16(b, st.Ordinal)
		b = binary.BigEndian.AppendUint32(b, uint32(len(st.State)))
		b = append(b, st.State...)
	}
	sum := sha256.Sum256(b)
	b = append(b, sum[:]...)
	if len(b) > MaxSnapshotSize {
		return nil, fmt.Errorf("%w: %d bytes encoding %v", ErrOversize, len(b), ex.Key)
	}
	return b, nil
}

// DecodeSnapshot parses and integrity-checks an encoded snapshot.
func DecodeSnapshot(b []byte) (*proxy.StreamExport, error) {
	if len(b) > MaxSnapshotSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrOversize, len(b))
	}
	if len(b) < len(snapshotMagic)+1+sha256.Size {
		return nil, ErrTruncated
	}
	body, trailer := b[:len(b)-sha256.Size], b[len(b)-sha256.Size:]
	if sum := sha256.Sum256(body); !bytesEqual(sum[:], trailer) {
		return nil, ErrChecksum
	}
	r := &snapReader{b: body}
	var magic [4]byte
	copy(magic[:], r.take(4))
	if r.err == nil && magic != snapshotMagic {
		return nil, ErrBadMagic
	}
	if v := r.u8(); r.err == nil && v != SnapshotVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	ex := &proxy.StreamExport{}
	ex.Key = r.key()
	ex.Pkts = r.i64()
	ex.Bytes = r.i64()
	ex.RevPkts = r.i64()
	ex.RevBytes = r.i64()
	nb := int(r.u16())
	for i := 0; i < nb && r.err == nil; i++ {
		var bd proxy.BindingExport
		bd.Filter = r.str()
		bd.Key = r.key()
		na := int(r.u16())
		for j := 0; j < na && r.err == nil; j++ {
			bd.Args = append(bd.Args, r.str())
		}
		ex.Bindings = append(ex.Bindings, bd)
	}
	ns := int(r.u16())
	for i := 0; i < ns && r.err == nil; i++ {
		var st proxy.FilterState
		st.Filter = r.str()
		st.Key = r.key()
		st.Ordinal = r.u16()
		st.State = r.blob()
		ex.States = append(ex.States, st)
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrTruncated, len(r.b))
	}
	return ex, nil
}

func appendKey(b []byte, k filter.Key) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(k.SrcIP))
	b = binary.BigEndian.AppendUint16(b, k.SrcPort)
	b = binary.BigEndian.AppendUint32(b, uint32(k.DstIP))
	b = binary.BigEndian.AppendUint16(b, k.DstPort)
	return b
}

func appendString(b []byte, s string) []byte {
	if len(s) > 0xffff {
		s = s[:0xffff]
	}
	b = binary.BigEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// snapReader consumes snapshot fields with bounds checking: the first
// short read latches err and later reads return zero values, so the
// decoder parses straight-line and checks err once per section. Every
// declared length is validated against the remaining buffer before any
// allocation.
type snapReader struct {
	b   []byte
	err error
}

func (r *snapReader) take(n int) []byte {
	if r.err != nil || len(r.b) < n {
		r.err = ErrTruncated
		return nil
	}
	v := r.b[:n]
	r.b = r.b[n:]
	return v
}

func (r *snapReader) u8() byte {
	v := r.take(1)
	if v == nil {
		return 0
	}
	return v[0]
}

func (r *snapReader) u16() uint16 {
	v := r.take(2)
	if v == nil {
		return 0
	}
	return binary.BigEndian.Uint16(v)
}

func (r *snapReader) u32() uint32 {
	v := r.take(4)
	if v == nil {
		return 0
	}
	return binary.BigEndian.Uint32(v)
}

func (r *snapReader) i64() int64 {
	v := r.take(8)
	if v == nil {
		return 0
	}
	return int64(binary.BigEndian.Uint64(v))
}

func (r *snapReader) key() filter.Key {
	v := r.take(12)
	if v == nil {
		return filter.Key{}
	}
	return filter.Key{
		SrcIP:   ip.Addr(binary.BigEndian.Uint32(v[0:4])),
		SrcPort: binary.BigEndian.Uint16(v[4:6]),
		DstIP:   ip.Addr(binary.BigEndian.Uint32(v[6:10])),
		DstPort: binary.BigEndian.Uint16(v[10:12]),
	}
}

func (r *snapReader) str() string {
	n := int(r.u16())
	v := r.take(n)
	if v == nil {
		return ""
	}
	return string(v)
}

func (r *snapReader) blob() []byte {
	n := int(r.u32())
	if n == 0 {
		return nil
	}
	v := r.take(n)
	if v == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, v)
	return out
}
