package migrate

import (
	"bytes"
	"crypto/sha256"
	"testing"

	"repro/internal/proxy"
)

// FuzzMigrationSnapshotDecode drives DecodeSnapshot with arbitrary
// bytes: it must never panic, never allocate past the input's own
// length (a lying length prefix is the classic trap), and report only
// the typed codec errors. Anything it does accept must re-encode
// byte-identically — the codec is canonical, which is what makes the
// chaos scenarios byte-reproducible.
func FuzzMigrationSnapshotDecode(f *testing.F) {
	valid, err := EncodeSnapshot(testExport())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-sha256.Size]) // trailer gone
	f.Add(valid[:13])                     // mid-header
	f.Add([]byte{})
	f.Add([]byte("CMG1"))
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	empty, _ := EncodeSnapshot(&proxy.StreamExport{Key: testKey()})
	f.Add(empty)

	f.Fuzz(func(t *testing.T, data []byte) {
		ex, err := DecodeSnapshot(data)
		if err != nil {
			if ex != nil {
				t.Fatalf("error %v with non-nil export", err)
			}
			return
		}
		re, err := EncodeSnapshot(ex)
		if err != nil {
			t.Fatalf("decoded snapshot does not re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not canonical: %d in, %d out", len(data), len(re))
		}
	})
}
