package policy

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/eem"
	"repro/internal/filter"
)

// Rule is one declarative adaptation rule:
//
//	<name> when <var>[:<index>] <op> <enter> [exit <bound>] for <hold>
//	       then <load|remove|config|command> <filter[:args]> on <sIP> <sP> <dIP> <dP>
//	       [rate <ticks>]
//
// The variable names an EEM variable on the engine's server. The rule
// enters (fires its action) once `<var> <op> <enter>` has held for
// <hold> consecutive engine ticks, and exits (reverts the action) once
// `<var> <op> <exit-bound>` has been false for <hold> consecutive
// ticks. The exit bound defaults to the enter bound; giving a wider
// one opens a hysteresis band so the rule does not flap when the
// variable hovers at the threshold. `rate` spaces consecutive fires by
// at least that many ticks.
type Rule struct {
	Name   string
	Var    string
	Index  int
	Op     eem.Operator
	Enter  eem.Value
	Exit   eem.Value
	Hold   int
	Action string // "load", "remove", or "config"
	Filter string
	FArgs  []string
	Key    filter.Key
	Rate   int
}

// Actions a rule may take on its stream key.
const (
	ActionLoad   = "load"   // load the filter library and attach it
	ActionRemove = "remove" // detach the filter; revert re-attaches
	ActionConfig = "config" // re-attach with new args; revert detaches
	// ActionCommand drives a registered SP command instead of a filter:
	// fire runs `<name> <args...> on`, revert runs `<name> <args...>
	// off`. This is how a rule reaches management verbs that are not
	// per-stream filters — the mmWave pack's `mmwave shed` leg switch.
	// The rule's stream key is not used; write it as zeros.
	ActionCommand = "command"
)

// ParseRule parses the rule grammar above.
func ParseRule(spec string) (*Rule, error) {
	toks := strings.Fields(spec)
	r := &Rule{Hold: 1}
	next := func() (string, bool) {
		if len(toks) == 0 {
			return "", false
		}
		t := toks[0]
		toks = toks[1:]
		return t, true
	}
	expect := func(word string) error {
		t, ok := next()
		if !ok || t != word {
			return fmt.Errorf("policy: rule %q: expected %q, got %q", r.Name, word, t)
		}
		return nil
	}

	name, ok := next()
	if !ok {
		return nil, fmt.Errorf("policy: empty rule")
	}
	r.Name = name
	if err := expect("when"); err != nil {
		return nil, err
	}

	v, ok := next()
	if !ok {
		return nil, fmt.Errorf("policy: rule %q: missing variable", r.Name)
	}
	if i := strings.IndexByte(v, ':'); i >= 0 {
		idx, err := strconv.Atoi(v[i+1:])
		if err != nil || idx < 0 {
			return nil, fmt.Errorf("policy: rule %q: bad variable index in %q", r.Name, v)
		}
		r.Var, r.Index = v[:i], idx
	} else {
		r.Var = v
	}

	opTok, ok := next()
	if !ok {
		return nil, fmt.Errorf("policy: rule %q: missing operator", r.Name)
	}
	op, err := eem.ParseOperator(strings.ToUpper(opTok))
	if err != nil {
		return nil, fmt.Errorf("policy: rule %q: %v", r.Name, err)
	}
	if op == eem.IN || op == eem.OUT {
		return nil, fmt.Errorf("policy: rule %q: IN/OUT not supported; use exit bounds for hysteresis", r.Name)
	}
	r.Op = op

	bound, ok := next()
	if !ok {
		return nil, fmt.Errorf("policy: rule %q: missing enter bound", r.Name)
	}
	r.Enter = parseValue(bound)
	r.Exit = r.Enter

	t, ok := next()
	if ok && t == "exit" {
		b, ok := next()
		if !ok {
			return nil, fmt.Errorf("policy: rule %q: missing exit bound", r.Name)
		}
		r.Exit = parseValue(b)
		t, ok = next()
	}
	if !ok || t != "for" {
		return nil, fmt.Errorf("policy: rule %q: expected \"for\", got %q", r.Name, t)
	}
	holdTok, ok := next()
	if !ok {
		return nil, fmt.Errorf("policy: rule %q: missing hold count", r.Name)
	}
	hold, err := strconv.Atoi(holdTok)
	if err != nil || hold < 1 {
		return nil, fmt.Errorf("policy: rule %q: bad hold count %q", r.Name, holdTok)
	}
	r.Hold = hold
	if err := expect("then"); err != nil {
		return nil, err
	}

	action, ok := next()
	if !ok {
		return nil, fmt.Errorf("policy: rule %q: missing action", r.Name)
	}
	switch action {
	case ActionLoad, ActionRemove, ActionConfig, ActionCommand:
		r.Action = action
	default:
		return nil, fmt.Errorf("policy: rule %q: unknown action %q (want load/remove/config/command)", r.Name, action)
	}

	fspec, ok := next()
	if !ok {
		return nil, fmt.Errorf("policy: rule %q: missing filter", r.Name)
	}
	parts := strings.Split(fspec, ":")
	r.Filter, r.FArgs = parts[0], parts[1:]
	if r.Filter == "" {
		return nil, fmt.Errorf("policy: rule %q: empty filter name", r.Name)
	}
	if err := expect("on"); err != nil {
		return nil, err
	}
	if len(toks) < 4 {
		return nil, fmt.Errorf("policy: rule %q: stream key needs <srcIP> <srcPort> <dstIP> <dstPort>", r.Name)
	}
	k, err := filter.ParseKey(toks[:4])
	if err != nil {
		return nil, fmt.Errorf("policy: rule %q: %v", r.Name, err)
	}
	r.Key = k
	toks = toks[4:]

	if t, ok := next(); ok {
		if t != "rate" {
			return nil, fmt.Errorf("policy: rule %q: unexpected token %q", r.Name, t)
		}
		rateTok, ok := next()
		if !ok {
			return nil, fmt.Errorf("policy: rule %q: missing rate", r.Name)
		}
		rate, err := strconv.Atoi(rateTok)
		if err != nil || rate < 0 {
			return nil, fmt.Errorf("policy: rule %q: bad rate %q", r.Name, rateTok)
		}
		r.Rate = rate
	}
	if len(toks) != 0 {
		return nil, fmt.Errorf("policy: rule %q: trailing tokens %v", r.Name, toks)
	}
	return r, nil
}

// String renders the canonical rule text (parse-roundtrip stable).
func (r *Rule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s when %s", r.Name, r.Var)
	if r.Index != 0 {
		fmt.Fprintf(&b, ":%d", r.Index)
	}
	fmt.Fprintf(&b, " %s %s", r.Op, r.Enter)
	if !r.Exit.Equal(r.Enter) {
		fmt.Fprintf(&b, " exit %s", r.Exit)
	}
	fmt.Fprintf(&b, " for %d then %s %s", r.Hold, r.Action, r.filterSpec())
	fmt.Fprintf(&b, " on %s %d %s %d", r.Key.SrcIP, r.Key.SrcPort, r.Key.DstIP, r.Key.DstPort)
	if r.Rate > 0 {
		fmt.Fprintf(&b, " rate %d", r.Rate)
	}
	return b.String()
}

func (r *Rule) filterSpec() string {
	if len(r.FArgs) == 0 {
		return r.Filter
	}
	return r.Filter + ":" + strings.Join(r.FArgs, ":")
}

// id is the EEM identity the rule samples, on the engine's server.
func (r *Rule) id(server string) eem.ID {
	return eem.ID{Server: server, Var: r.Var, Index: r.Index}
}

// enterAttr is the region of interest whose entry fires the rule.
func (r *Rule) enterAttr() eem.Attr { return eem.Attr{Op: r.Op, Lower: r.Enter} }

// exitAttr is the region whose exit reverts the rule (the hysteresis
// band when Exit differs from Enter).
func (r *Rule) exitAttr() eem.Attr { return eem.Attr{Op: r.Op, Lower: r.Exit} }

// parseValue reads a long, double, or string value — the same coercion
// order Kati uses for watch bounds.
func parseValue(s string) eem.Value {
	if l, err := strconv.ParseInt(s, 10, 64); err == nil {
		return eem.LongValue(l)
	}
	if d, err := strconv.ParseFloat(s, 64); err == nil {
		return eem.DoubleValue(d)
	}
	return eem.StringValue(s)
}
