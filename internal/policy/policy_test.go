package policy_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/eem"
	"repro/internal/filter"
	"repro/internal/ip"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/tcp"
)

// fakeControl records every control mutation the engine performs and
// can be scripted to fail, standing in for the SP data plane.
type fakeControl struct {
	calls   []string
	failAdd error
	loaded  map[string]bool
}

func (f *fakeControl) LoadFilter(lib string) (string, error) {
	f.calls = append(f.calls, "load:"+lib)
	if f.loaded == nil {
		f.loaded = make(map[string]bool)
	}
	f.loaded[lib] = true
	return lib, nil
}

func (f *fakeControl) UnloadFilter(name string) error {
	f.calls = append(f.calls, "unload:"+name)
	delete(f.loaded, name)
	return nil
}

func (f *fakeControl) AddFilter(name string, k filter.Key, args []string) error {
	f.calls = append(f.calls, "add:"+name)
	return f.failAdd
}

func (f *fakeControl) DeleteFilter(name string, k filter.Key) error {
	f.calls = append(f.calls, "del:"+name)
	return nil
}

// polRig is a two-host EEM rig whose server exports a test-scripted
// "load" variable, with a policy engine sampling it every 100ms.
type polRig struct {
	sched *sim.Scheduler
	bus   *obs.Bus
	eng   *policy.Engine
	ctrl  *fakeControl
	val   *int64
}

func newPolRig(t *testing.T) *polRig {
	t.Helper()
	s := sim.NewScheduler(7)
	n := netsim.New(s)
	ch := n.AddNode("engine")
	sh := n.AddNode("proxyhost")
	n.Connect(ch, ip.MustParseAddr("10.0.0.1"), sh, ip.MustParseAddr("10.0.0.2"), netsim.LinkConfig{})
	cStack := tcp.NewStack(ch, tcp.Config{})
	sStack := tcp.NewStack(sh, tcp.Config{})
	ch.RegisterProto(ip.ProtoTCP, func(h ip.Header, p, raw []byte, in *netsim.Iface) { cStack.Deliver(h.Src, h.Dst, p) })
	sh.RegisterProto(ip.ProtoTCP, func(h ip.Header, p, raw []byte, in *netsim.Iface) { sStack.Deliver(h.Src, h.Dst, p) })

	val := new(int64)
	srv := eem.NewServer("proxyhost")
	srv.Interval = time.Hour // isolate the engine's own PDA pump
	srv.AddSource(eem.SourceFunc{
		Names: []string{"load"},
		Fn: func(name string, index int) (eem.Value, error) {
			return eem.LongValue(*val), nil
		},
	})
	if err := eem.ServeSim(sStack, eem.DefaultPort, srv); err != nil {
		t.Fatal(err)
	}
	srv.StartSimTicker(s)

	cm := eem.NewComma(eem.SimDialer(cStack))
	cm.UseScheduler(s)
	bus := obs.NewBus(s, 4096)
	cm.SetObs(bus)
	ctrl := &fakeControl{}
	eng := policy.New(policy.Config{
		Sched:   s,
		Comma:   cm,
		Control: ctrl,
		Server:  "10.0.0.2",
		Bus:     bus,
		Period:  100 * time.Millisecond,
	})
	return &polRig{sched: s, bus: bus, eng: eng, ctrl: ctrl, val: val}
}

func (r *polRig) kinds() map[string]int {
	m := map[string]int{}
	for _, e := range r.bus.Events() {
		if e.Subsys == "policy" {
			m[e.Kind]++
		}
	}
	return m
}

func TestParseRuleRoundTrip(t *testing.T) {
	specs := []string{
		"compress when ifSpeed:1 LT 1000000 for 2 then load comp:6 on 11.11.10.99 0 11.11.10.10 0 rate 1",
		"shed when cpuLoadAvg GT 0.9 exit 0.5 for 3 then remove snoop on 10.0.0.1 7 10.0.0.2 80",
		"tune when netLatency GTE 50 for 1 then config wsize:8192 on 10.0.0.1 0 10.0.0.2 0",
	}
	for _, spec := range specs {
		r, err := policy.ParseRule(spec)
		if err != nil {
			t.Fatalf("%q: %v", spec, err)
		}
		again, err := policy.ParseRule(r.String())
		if err != nil {
			t.Fatalf("re-parse of %q: %v", r.String(), err)
		}
		if again.String() != r.String() {
			t.Fatalf("round-trip unstable:\n first %q\n again %q", r.String(), again.String())
		}
	}
}

func TestParseRuleErrors(t *testing.T) {
	cases := []struct {
		spec     string
		contains string
	}{
		{"", "empty rule"},
		{"r1", `expected "when"`},
		{"r1 when", "missing variable"},
		{"r1 when x:-1 GT 1 for 1 then load f on 1.2.3.4 0 5.6.7.8 0", "bad variable index"},
		{"r1 when x IN 1 for 1 then load f on 1.2.3.4 0 5.6.7.8 0", "IN/OUT not supported"},
		{"r1 when x GT 1 for 0 then load f on 1.2.3.4 0 5.6.7.8 0", "bad hold count"},
		{"r1 when x GT 1 for 1 then explode f on 1.2.3.4 0 5.6.7.8 0", "unknown action"},
		{"r1 when x GT 1 for 1 then load f on 1.2.3.4 0", "stream key needs"},
		{"r1 when x GT 1 for 1 then load f on 1.2.3.4 0 5.6.7.8 0 rate -1", "bad rate"},
		{"r1 when x GT 1 for 1 then load f on 1.2.3.4 0 5.6.7.8 0 junk", "unexpected token"},
	}
	for _, c := range cases {
		_, err := policy.ParseRule(c.spec)
		if err == nil {
			t.Errorf("%q: no error", c.spec)
			continue
		}
		if !strings.Contains(err.Error(), c.contains) {
			t.Errorf("%q: error %q missing %q", c.spec, err, c.contains)
		}
	}
}

// TestEngineHysteresisCycle drives one full load→hold→unload cycle:
// the variable crosses the enter bound, holds for the hold window, the
// action fires; it then drops below the exit bound, holds again, and
// the action reverts. The band between exit (5) and enter (10) must
// not flap the rule in either direction.
func TestEngineHysteresisCycle(t *testing.T) {
	r := newPolRig(t)
	err := r.eng.AddRule("shed when load GT 10 exit 5 for 3 then load comp:6 on 10.0.0.1 7 10.0.0.2 80")
	if err != nil {
		t.Fatal(err)
	}
	r.eng.Start()
	r.sched.RunFor(2 * time.Second) // below enter: nothing happens
	if len(r.ctrl.calls) != 0 {
		t.Fatalf("actions before threshold: %v", r.ctrl.calls)
	}

	*r.val = 20
	r.sched.RunFor(2 * time.Second)
	if got := strings.Join(r.ctrl.calls, " "); got != "load:comp add:comp" {
		t.Fatalf("fire calls = %q, want load then add", got)
	}
	if !strings.Contains(r.eng.Command([]string{"list"}), "[active]") {
		t.Fatalf("rule not active after fire:\n%s", r.eng.Command([]string{"list"}))
	}

	// Inside the hysteresis band: no exit, no re-fire.
	*r.val = 7
	r.sched.RunFor(2 * time.Second)
	if len(r.ctrl.calls) != 2 {
		t.Fatalf("band value mutated control state: %v", r.ctrl.calls)
	}

	// Below the exit bound: revert after the hold window.
	*r.val = 2
	r.sched.RunFor(2 * time.Second)
	if got := strings.Join(r.ctrl.calls, " "); got != "load:comp add:comp del:comp unload:comp" {
		t.Fatalf("cycle calls = %q", got)
	}
	if !strings.Contains(r.eng.Command([]string{"list"}), "[idle]") {
		t.Fatalf("rule not idle after revert:\n%s", r.eng.Command([]string{"list"}))
	}
	k := r.kinds()
	if k["fire"] != 1 || k["revert"] != 1 {
		t.Fatalf("events = %v, want one fire and one revert", k)
	}
	trace := r.eng.Command([]string{"trace"})
	for _, want := range []string{"fire shed", "revert shed"} {
		if !strings.Contains(trace, want) {
			t.Fatalf("trace missing %q:\n%s", want, trace)
		}
	}
}

// TestEngineHoldAbortsOnDip: a spike shorter than the hold window must
// not fire — that is the point of the hold count.
func TestEngineHoldAbortsOnDip(t *testing.T) {
	r := newPolRig(t)
	if err := r.eng.AddRule("shed when load GT 10 for 10 then load comp on 10.0.0.1 7 10.0.0.2 80"); err != nil {
		t.Fatal(err)
	}
	r.eng.Start()
	r.sched.RunFor(time.Second)
	*r.val = 20
	r.sched.RunFor(400 * time.Millisecond) // ~4 ticks < hold 10
	*r.val = 0
	r.sched.RunFor(2 * time.Second)
	if len(r.ctrl.calls) != 0 {
		t.Fatalf("short spike fired the rule: %v", r.ctrl.calls)
	}
	if r.kinds()["hold-abort"] == 0 {
		t.Fatal("no hold-abort event for the aborted spike")
	}
}

// TestEngineRateLimit: with `rate 20`, a second fire within 20 ticks
// of the first is deferred, not dropped — it lands once the window
// passes.
func TestEngineRateLimit(t *testing.T) {
	r := newPolRig(t)
	err := r.eng.AddRule("shed when load GT 10 for 1 then load comp on 10.0.0.1 7 10.0.0.2 80 rate 20")
	if err != nil {
		t.Fatal(err)
	}
	r.eng.Start()
	*r.val = 20
	r.sched.RunFor(time.Second) // fire #1
	*r.val = 0
	r.sched.RunFor(500 * time.Millisecond) // revert
	*r.val = 20
	r.sched.RunFor(500 * time.Millisecond) // within 20 ticks of fire #1
	k := r.kinds()
	if k["fire"] != 1 {
		t.Fatalf("fires = %d before the rate window passed, want 1 (events %v)", k["fire"], k)
	}
	if k["rate-limited"] == 0 {
		t.Fatalf("no rate-limited event while deferred (events %v)", k)
	}
	r.sched.RunFor(3 * time.Second) // window passes
	if got := r.kinds()["fire"]; got != 2 {
		t.Fatalf("fires = %d after the rate window, want 2", got)
	}
}

// TestEngineRollbackOnAddFailure: when the attach step fails after the
// library loaded, the engine unloads the library again so a failed
// fire leaves no residue, then succeeds on a later tick once the
// control plane recovers.
func TestEngineRollbackOnAddFailure(t *testing.T) {
	r := newPolRig(t)
	if err := r.eng.AddRule("shed when load GT 10 for 1 then load comp on 10.0.0.1 7 10.0.0.2 80"); err != nil {
		t.Fatal(err)
	}
	r.ctrl.failAdd = errors.New("shard wedged")
	r.eng.Start()
	*r.val = 20
	r.sched.RunFor(time.Second)
	if len(r.ctrl.calls) < 3 || r.ctrl.calls[2] != "unload:comp" {
		t.Fatalf("no rollback unload after add failure: %v", r.ctrl.calls[:min(3, len(r.ctrl.calls))])
	}
	k := r.kinds()
	if k["rollback"] == 0 || k["action-failed"] == 0 {
		t.Fatalf("events = %v, want rollback and action-failed", k)
	}
	if strings.Contains(r.eng.Command([]string{"list"}), "[active]") {
		t.Fatal("rule active after failed fire")
	}

	// Control plane recovers: the still-true condition re-fires.
	r.ctrl.failAdd = nil
	r.sched.RunFor(time.Second)
	if r.kinds()["fire"] == 0 {
		t.Fatal("no fire after the control plane recovered")
	}
	if !strings.Contains(r.eng.Command([]string{"list"}), "[active]") {
		t.Fatal("rule not active after recovery fire")
	}
}

// TestEngineCommand covers the `policy` control-command surface.
func TestEngineCommand(t *testing.T) {
	r := newPolRig(t)
	spec := "shed when load GT 10 for 1 then load comp on 10.0.0.1 7 10.0.0.2 80"
	if out := r.eng.Command([]string{"add", "shed", "when", "load", "GT", "10", "for", "1",
		"then", "load", "comp", "on", "10.0.0.1", "7", "10.0.0.2", "80"}); out != "" {
		t.Fatalf("add: %q", out)
	}
	if out := r.eng.Command([]string{"list"}); !strings.Contains(out, spec) {
		t.Fatalf("list missing rule:\n%s", out)
	}
	if out := r.eng.Command([]string{"add", spec}); !strings.Contains(out, "error:") {
		t.Fatalf("duplicate add accepted: %q", out)
	}
	if out := r.eng.Command([]string{"trace"}); !strings.Contains(out, "rule-add") {
		t.Fatalf("trace missing rule-add: %q", out)
	}
	if out := r.eng.Command([]string{"trace", "zero"}); !strings.Contains(out, "usage") {
		t.Fatalf("bad trace arg accepted: %q", out)
	}
	if out := r.eng.Command([]string{"del", "shed"}); out != "" {
		t.Fatalf("del: %q", out)
	}
	if out := r.eng.Command([]string{"del", "shed"}); !strings.Contains(out, "error:") {
		t.Fatalf("del of missing rule silent: %q", out)
	}
	if out := r.eng.Command([]string{"frobnicate"}); !strings.Contains(out, "unknown policy subcommand") {
		t.Fatalf("unknown subcommand: %q", out)
	}
	if out := r.eng.Command([]string{"list"}); out != "" {
		t.Fatalf("list after del: %q", out)
	}
}

// TestEngineDelRevertsActiveRule: deleting a rule whose action is
// applied withdraws the action first.
func TestEngineDelRevertsActiveRule(t *testing.T) {
	r := newPolRig(t)
	if err := r.eng.AddRule("shed when load GT 10 for 1 then load comp on 10.0.0.1 7 10.0.0.2 80"); err != nil {
		t.Fatal(err)
	}
	r.eng.Start()
	*r.val = 20
	r.sched.RunFor(time.Second)
	if err := r.eng.DelRule("shed"); err != nil {
		t.Fatal(err)
	}
	want := "load:comp add:comp del:comp unload:comp"
	if got := strings.Join(r.ctrl.calls, " "); got != want {
		t.Fatalf("calls = %q, want %q", got, want)
	}
	// The subscription is gone too: further ticks see no value, no calls.
	r.sched.RunFor(time.Second)
	if got := strings.Join(r.ctrl.calls, " "); got != want {
		t.Fatalf("deleted rule still acting: %q", got)
	}
}

// TestEngineMetrics pins the registered counter names and a couple of
// values after a full cycle.
func TestEngineMetrics(t *testing.T) {
	r := newPolRig(t)
	reg := obs.NewRegistry()
	r.eng.RegisterMetrics(reg, "policy")
	if err := r.eng.AddRule("shed when load GT 10 exit 5 for 1 then load comp on 10.0.0.1 7 10.0.0.2 80"); err != nil {
		t.Fatal(err)
	}
	r.eng.Start()
	*r.val = 20
	r.sched.RunFor(time.Second)
	*r.val = 0
	r.sched.RunFor(time.Second)
	got := map[string]string{}
	for _, s := range reg.Snapshot() {
		got[s.Name] = s.Value
	}
	for name, want := range map[string]string{
		"policy.fires": "1", "policy.reverts": "1", "policy.rules": "1",
		"policy.active": "0", "policy.rollbacks": "0",
	} {
		if got[name] != want {
			t.Fatalf("%s = %q, want %q (all: %v)", name, got[name], want, got)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
