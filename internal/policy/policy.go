// Package policy closes the EEM→SP control loop of the thesis: an
// adaptive policy engine subscribes to execution-environment variables
// through the comma_* client API and mutates Service Proxy filter
// state when declarative rules trip. Chapter 6 builds the monitoring
// plane and chapter 5 the control plane; this package is the automatic
// controller the thesis sketches between them — services that load
// themselves when the environment degrades and withdraw when it
// recovers, with no human at the Kati prompt.
//
// The engine is scheduler-driven and fully deterministic: it samples
// each rule's variable from the protected data area on a fixed tick,
// applies a hysteresis state machine (enter/exit bounds plus hold
// counts), rate-limits fires, and rolls partially-applied actions back
// when a control mutation fails. Every transition emits an obs event
// and is appended to a bounded trace ring that the `policy trace`
// control command renders.
package policy

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/eem"
	"repro/internal/filter"
	"repro/internal/obs"
	"repro/internal/proxy"
	"repro/internal/sim"
)

// Control is the typed SP mutation surface the engine drives. Both
// *proxy.Proxy and the sharded *dataplane.Plane satisfy it; the engine
// depends on the shape, not the implementation, so it works identically
// against one shard or many.
type Control interface {
	LoadFilter(lib string) (string, error)
	UnloadFilter(name string) error
	AddFilter(name string, k filter.Key, args []string) error
	DeleteFilter(name string, k filter.Key) error
}

// Commander is the raw SP command surface a Control may additionally
// expose (the sharded plane and the proxy both do). Rules with the
// "command" action need it; on a Control without it such rules fail
// their fire instead of silently doing nothing.
type Commander interface {
	Command(line string) string
}

// DefaultPeriod is the sampling tick when Config.Period is zero.
const DefaultPeriod = 500 * time.Millisecond

// DefaultTraceCap bounds the transition trace ring.
const DefaultTraceCap = 128

// Config assembles an Engine.
type Config struct {
	Sched   *sim.Scheduler
	Comma   *eem.Comma // client API session the engine subscribes through
	Control Control
	// Server is the EEM server (addr[:port]) rule variables live on.
	Server string
	Bus    *obs.Bus // optional
	// Period is the sampling tick (DefaultPeriod when zero).
	Period time.Duration
	// TraceCap bounds the trace ring (DefaultTraceCap when zero).
	TraceCap int
}

// Rule states.
const (
	stIdle    = iota // condition false, action not applied
	stHolding        // enter condition true, counting toward Hold
	stActive         // action applied
	stExiting        // exit condition true, counting toward Hold
)

func stateName(st int) string {
	switch st {
	case stIdle:
		return "idle"
	case stHolding:
		return "holding"
	case stActive:
		return "active"
	case stExiting:
		return "exiting"
	}
	return "?"
}

// boundRule is a Rule plus its runtime state.
type boundRule struct {
	*Rule
	state     int
	count     int   // consecutive ticks the pending condition has held
	lastFire  int64 // engine tick of the last fire; -1 = never
	weLoaded  bool  // the fire loaded the filter library (unload on revert/rollback)
	loadedLib string
}

// Engine evaluates rules on a fixed scheduler tick.
type Engine struct {
	sched    *sim.Scheduler
	cm       *eem.Comma
	ctrl     Control
	server   string
	bus      *obs.Bus
	period   time.Duration
	traceCap int

	rules []*boundRule
	trace []string
	tick  int64

	fires, reverts, rollbacks   int64
	rateLimited, actionFailures int64
	running                     bool
}

// New builds an engine; call AddRule and then Start.
func New(cfg Config) *Engine {
	if cfg.Period <= 0 {
		cfg.Period = DefaultPeriod
	}
	if cfg.TraceCap <= 0 {
		cfg.TraceCap = DefaultTraceCap
	}
	return &Engine{
		sched:    cfg.Sched,
		cm:       cfg.Comma,
		ctrl:     cfg.Control,
		server:   cfg.Server,
		bus:      cfg.Bus,
		period:   cfg.Period,
		traceCap: cfg.TraceCap,
	}
}

// Period returns the engine's sampling tick.
func (e *Engine) Period() time.Duration { return e.period }

// RegisterMetrics publishes the engine's counters under prefix.
func (e *Engine) RegisterMetrics(reg *obs.Registry, prefix string) {
	reg.Counter(prefix+".fires", func() int64 { return e.fires })
	reg.Counter(prefix+".reverts", func() int64 { return e.reverts })
	reg.Counter(prefix+".rollbacks", func() int64 { return e.rollbacks })
	reg.Counter(prefix+".rate_limited", func() int64 { return e.rateLimited })
	reg.Counter(prefix+".action_failures", func() int64 { return e.actionFailures })
	reg.Counter(prefix+".rules", func() int64 { return int64(len(e.rules)) })
	reg.Counter(prefix+".active", func() int64 {
		var n int64
		for _, r := range e.rules {
			if r.state == stActive || r.state == stExiting {
				n++
			}
		}
		return n
	})
}

// AddRule parses spec, subscribes its variable through the client API
// (WithPDA keeps the protected data area fresh even while the variable
// sits outside the region of interest), and arms the rule.
func (e *Engine) AddRule(spec string) error {
	r, err := ParseRule(spec)
	if err != nil {
		return err
	}
	for _, have := range e.rules {
		if have.Name == r.Name {
			return fmt.Errorf("policy: duplicate rule %q", r.Name)
		}
	}
	id := r.id(e.server)
	if err := e.cm.Register(id, r.enterAttr(), eem.WithPDA(e.period)); err != nil {
		return fmt.Errorf("policy: rule %q: register %s: %w", r.Name, id, err)
	}
	br := &boundRule{Rule: r, lastFire: -1}
	e.rules = append(e.rules, br)
	e.event("rule-add", r.Name, obs.F("rule", r.String()))
	e.traceAdd(fmt.Sprintf("rule-add %s", r.String()))
	return nil
}

// DelRule removes a rule by name, reverting its action first if it is
// currently applied, and drops the variable subscription when no other
// rule shares it.
func (e *Engine) DelRule(name string) error {
	idx := -1
	for i, r := range e.rules {
		if r.Name == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("policy: no rule %q", name)
	}
	r := e.rules[idx]
	if r.state == stActive || r.state == stExiting {
		e.doRevert(r)
	}
	e.rules = append(e.rules[:idx], e.rules[idx+1:]...)
	id := r.id(e.server)
	shared := false
	for _, other := range e.rules {
		if other.id(e.server) == id {
			shared = true
			break
		}
	}
	if !shared {
		if err := e.cm.Deregister(id); err != nil {
			e.event("deregister-failed", r.Name, obs.F("err", err.Error()))
		}
	}
	e.event("rule-del", r.Name)
	e.traceAdd(fmt.Sprintf("rule-del %s", r.Name))
	return nil
}

// Start arms the sampling tick. Idempotent.
func (e *Engine) Start() {
	if e.running {
		return
	}
	e.running = true
	var tick func()
	tick = func() {
		if !e.running {
			return
		}
		e.step()
		e.sched.After(e.period, tick)
	}
	e.sched.After(e.period, tick)
}

// Stop halts the sampling tick; applied actions stay applied.
func (e *Engine) Stop() { e.running = false }

// step evaluates every rule once, in insertion order — determinism
// depends on this order being stable.
func (e *Engine) step() {
	e.tick++
	for _, r := range e.rules {
		v, ok := e.cm.GetValue(r.id(e.server))
		if !ok {
			continue // no sample yet
		}
		enter, err := r.enterAttr().Matches(v)
		if err != nil {
			enter = false
		}
		switch r.state {
		case stIdle:
			if enter {
				r.state, r.count = stHolding, 1
				e.transition(r, v, "hold")
				if r.count >= r.Hold {
					e.tryFire(r, v)
				}
			}
		case stHolding:
			if !enter {
				r.state, r.count = stIdle, 0
				e.transition(r, v, "hold-abort")
				continue
			}
			r.count++
			if r.count >= r.Hold {
				e.tryFire(r, v)
			}
		case stActive, stExiting:
			in, err := r.exitAttr().Matches(v)
			if err != nil {
				in = true // unreadable sample: stay applied
			}
			if r.state == stActive {
				if !in {
					r.state, r.count = stExiting, 1
					e.transition(r, v, "exit-hold")
					if r.count >= r.Hold {
						e.tryRevert(r, v)
					}
				}
				continue
			}
			if in {
				r.state, r.count = stActive, 0
				e.transition(r, v, "exit-abort")
				continue
			}
			r.count++
			if r.count >= r.Hold {
				e.tryRevert(r, v)
			}
		}
	}
}

// tryFire applies the rule's action, honoring the rate limit.
func (e *Engine) tryFire(r *boundRule, v eem.Value) {
	if r.Rate > 0 && r.lastFire >= 0 && e.tick-r.lastFire < int64(r.Rate) {
		e.rateLimited++
		// Hold at the threshold and retry next tick.
		r.count = r.Hold
		e.transition(r, v, "rate-limited")
		return
	}
	if err := e.doFire(r); err != nil {
		e.actionFailures++
		r.state, r.count = stIdle, 0
		e.event("action-failed", r.Name, obs.F("err", err.Error()))
		e.traceAdd(fmt.Sprintf("action-failed %s: %v", r.Name, err))
		return
	}
	e.fires++
	r.lastFire = e.tick
	r.state, r.count = stActive, 0
	e.transition(r, v, "fire")
}

// doFire executes the action, rolling back partial steps on failure.
func (e *Engine) doFire(r *boundRule) error {
	switch r.Action {
	case ActionLoad:
		r.weLoaded = false
		name, err := e.ctrl.LoadFilter(r.Filter)
		switch {
		case err == nil:
			r.weLoaded, r.loadedLib = true, name
		case errors.Is(err, proxy.ErrAlreadyLoaded):
			// Someone else loaded it; attach to the existing pool entry.
		case errors.Is(err, filter.ErrUnknownFilter):
			// Not a library name — a defined service; add resolves it.
		default:
			return fmt.Errorf("load %s: %w", r.Filter, err)
		}
		if err := e.ctrl.AddFilter(r.Filter, r.Key, r.FArgs); err != nil {
			if r.weLoaded {
				// Roll the load back so a failed fire leaves no residue.
				if uerr := e.ctrl.UnloadFilter(r.loadedLib); uerr == nil {
					e.rollbacks++
					e.event("rollback", r.Name, obs.F("filter", r.loadedLib))
					e.traceAdd(fmt.Sprintf("rollback %s: unloaded %s", r.Name, r.loadedLib))
				}
				r.weLoaded = false
			}
			return fmt.Errorf("add %s: %w", r.Filter, err)
		}
		return nil
	case ActionRemove:
		if err := e.ctrl.DeleteFilter(r.Filter, r.Key); err != nil && !errors.Is(err, proxy.ErrNoSuchStream) {
			return fmt.Errorf("delete %s: %w", r.Filter, err)
		}
		return nil
	case ActionConfig:
		// Reconfigure: replace any current attachment with the rule's
		// args. A missing attachment is fine — config then behaves as
		// a plain add.
		if err := e.ctrl.DeleteFilter(r.Filter, r.Key); err != nil && !errors.Is(err, proxy.ErrNoSuchStream) {
			return fmt.Errorf("delete %s: %w", r.Filter, err)
		}
		if err := e.ctrl.AddFilter(r.Filter, r.Key, r.FArgs); err != nil {
			return fmt.Errorf("add %s: %w", r.Filter, err)
		}
		return nil
	case ActionCommand:
		return e.runCommand(r, "on")
	}
	return fmt.Errorf("unknown action %q", r.Action)
}

// runCommand drives a registered SP command for an ActionCommand rule:
// the rule's filter spec becomes the command name and arguments, with
// "on" (fire) or "off" (revert) appended.
func (e *Engine) runCommand(r *boundRule, state string) error {
	cmdr, ok := e.ctrl.(Commander)
	if !ok {
		return fmt.Errorf("command %s: control surface has no raw commands", r.Filter)
	}
	parts := append([]string{r.Filter}, r.FArgs...)
	line := strings.Join(append(parts, state), " ")
	if out := cmdr.Command(line); strings.HasPrefix(out, "error") {
		return fmt.Errorf("command %q: %s", line, out)
	}
	return nil
}

// tryRevert withdraws the rule's action.
func (e *Engine) tryRevert(r *boundRule, v eem.Value) {
	if err := e.doRevert(r); err != nil {
		e.actionFailures++
		// Stay active: the exit detector re-arms next tick and the
		// revert retries after another hold window.
		r.state, r.count = stActive, 0
		e.event("action-failed", r.Name, obs.F("err", err.Error()))
		e.traceAdd(fmt.Sprintf("action-failed %s: %v", r.Name, err))
		return
	}
	e.reverts++
	r.state, r.count = stIdle, 0
	e.transition(r, v, "revert")
}

// doRevert undoes doFire.
func (e *Engine) doRevert(r *boundRule) error {
	switch r.Action {
	case ActionLoad:
		if err := e.ctrl.DeleteFilter(r.Filter, r.Key); err != nil && !errors.Is(err, proxy.ErrNoSuchStream) {
			return fmt.Errorf("delete %s: %w", r.Filter, err)
		}
		if r.weLoaded {
			if err := e.ctrl.UnloadFilter(r.loadedLib); err != nil && !errors.Is(err, proxy.ErrNotLoaded) {
				return fmt.Errorf("unload %s: %w", r.loadedLib, err)
			}
			r.weLoaded = false
		}
		return nil
	case ActionRemove:
		return e.ctrl.AddFilter(r.Filter, r.Key, r.FArgs)
	case ActionConfig:
		if err := e.ctrl.DeleteFilter(r.Filter, r.Key); err != nil && !errors.Is(err, proxy.ErrNoSuchStream) {
			return fmt.Errorf("delete %s: %w", r.Filter, err)
		}
		return nil
	case ActionCommand:
		return e.runCommand(r, "off")
	}
	return fmt.Errorf("unknown action %q", r.Action)
}

// transition records a state-machine step in the event log and trace.
func (e *Engine) transition(r *boundRule, v eem.Value, kind string) {
	e.event(kind, r.Name, obs.F("value", v.String()), obs.F("state", stateName(r.state)))
	e.traceAdd(fmt.Sprintf("%s %s %s=%s state=%s", kind, r.Name, r.Var, v, stateName(r.state)))
}

func (e *Engine) event(kind, key string, fields ...obs.Field) {
	if e.bus != nil {
		e.bus.Emit("policy", kind, key, fields...)
	}
}

func (e *Engine) traceAdd(line string) {
	entry := fmt.Sprintf("[%v] %s", e.sched.Now(), line)
	e.trace = append(e.trace, entry)
	if len(e.trace) > e.traceCap {
		e.trace = e.trace[len(e.trace)-e.traceCap:]
	}
}

// Command implements the `policy` control command:
//
//	policy list           rules with their current state
//	policy add <rule>     parse and arm a rule
//	policy del <name>     disarm and remove a rule
//	policy trace [n]      last n trace entries (default 20)
//
// It is registered on the data plane via RegisterCommand, so it speaks
// the same fail-silent telnet dialect as the rest of the SP grammar.
func (e *Engine) Command(args []string) string {
	switch args[0] {
	case "list":
		var b strings.Builder
		for _, r := range e.rules {
			fmt.Fprintf(&b, "%s [%s] %s\n", r.Name, stateName(r.state), r.String())
		}
		return b.String()
	case "add":
		if len(args) < 2 {
			return "error: usage: policy add <rule>\n"
		}
		if err := e.AddRule(strings.Join(args[1:], " ")); err != nil {
			return fmt.Sprintf("error: %v\n", err)
		}
		return ""
	case "del":
		if len(args) != 2 {
			return "error: usage: policy del <name>\n"
		}
		if err := e.DelRule(args[1]); err != nil {
			return fmt.Sprintf("error: %v\n", err)
		}
		return ""
	case "trace":
		n := 20
		if len(args) > 1 {
			parsed, err := strconv.Atoi(args[1])
			if err != nil || parsed < 1 {
				return "error: usage: policy trace [n]\n"
			}
			n = parsed
		}
		start := len(e.trace) - n
		if start < 0 {
			start = 0
		}
		var b strings.Builder
		for _, line := range e.trace[start:] {
			b.WriteString(line)
			b.WriteByte('\n')
		}
		return b.String()
	default:
		return fmt.Sprintf("error: unknown policy subcommand %q\n", args[0])
	}
}
