// Package itcp implements the split-connection baseline of thesis
// §3.2 (Bakre & Badrinath's I-TCP): the proxy terminates the wired
// host's TCP connection locally — answering with the mobile's own
// address — and relays the byte stream over a second, independent
// connection to the mobile.
//
// It exists as a comparator: split connections insulate the wired
// sender from wireless behaviour, but they break end-to-end semantics —
// "data sent on the wired first half of the connection may be
// acknowledged by the proxy before the corresponding data has reached
// the final destination" (§5.1.2). Experiment E17 demonstrates exactly
// that failure, which is the thesis's motivation for the transparent
// (TTSF) approach instead.
package itcp

import (
	"fmt"

	"repro/internal/filter"
	"repro/internal/ip"
	"repro/internal/netsim"
	"repro/internal/tcp"
)

// Stats counts relay activity.
type Stats struct {
	Accepted          int64 // wired-side connections terminated
	BytesAckedToWired int64 // bytes the proxy acknowledged to the sender
	WiredClosed       int64 // wired halves that closed cleanly
	MobileFailed      int64 // mobile halves that died before draining
}

// Relay is an I-TCP style Mobility Support Router function attached to
// one proxy node: for each configured (mobileAddr, port), inbound
// connections from the wired side are terminated at the proxy and
// re-originated toward the mobile.
type Relay struct {
	node   *netsim.Node
	mobile ip.Addr

	// wiredSide impersonates the mobile toward wired senders; packets
	// addressed to the mobile on relayed ports are hijacked into it.
	wiredSide *tcp.Stack
	// mobileSide originates the wireless-specific connections. The
	// thesis-era I-TCP used a wireless-tuned transport here; we use the
	// same TCP with its own (typically more aggressive) configuration,
	// which preserves the property under study: two independent
	// reliability domains.
	mobileSide *tcp.Stack

	ports map[uint16]bool
	pipes []*pipe

	// emit is the reusable pass-through return of hook (see
	// netsim.Hook's ownership contract).
	emit [][]byte

	Stats Stats
}

// pipe is one bridged connection pair.
type pipe struct {
	ackedToWired int64
	mobileConn   *tcp.Conn
	mobileAcked  int64 // frozen at close; live value read from the conn
	closed       bool
}

// Stranded returns the number of bytes the relay acknowledged to wired
// senders that the mobile side has not acknowledged — data the sender
// wrongly believes delivered. A live, healthy relay has a small
// in-flight value here; after a mobile-side failure it is permanent
// loss (the §5.1.2 end-to-end hazard).
func (r *Relay) Stranded() int64 {
	var total int64
	for _, p := range r.pipes {
		acked := p.mobileAcked
		if !p.closed {
			acked = p.mobileConn.Stats().BytesAcked
		}
		if d := p.ackedToWired - acked; d > 0 {
			total += d
		}
	}
	return total
}

// New attaches a relay to the proxy node for connections to
// mobile:port. wiredCfg and mobileCfg configure the two connection
// halves independently (I-TCP's point: the wireless side can use
// different parameters).
func New(node *netsim.Node, mobile ip.Addr, ports []uint16, wiredCfg, mobileCfg tcp.Config) (*Relay, error) {
	r := &Relay{
		node:       node,
		mobile:     mobile,
		wiredSide:  tcp.NewStack(node, wiredCfg),
		mobileSide: tcp.NewStack(node, mobileCfg),
		ports:      make(map[uint16]bool),
	}
	for _, p := range ports {
		p := p
		r.ports[p] = true
		if _, err := r.wiredSide.Listen(p, func(c *tcp.Conn) { r.accept(c, p) }); err != nil {
			return nil, fmt.Errorf("itcp: %w", err)
		}
	}
	node.SetHook(r.hook)
	node.RegisterProto(ip.ProtoTCP, func(h ip.Header, payload, raw []byte, in *netsim.Iface) {
		// Mobile-side traffic addressed to the proxy itself.
		r.mobileSide.Deliver(h.Src, h.Dst, payload)
	})
	return r, nil
}

// hook hijacks wired-side segments addressed to the mobile on relayed
// ports into the local impersonating stack; everything else passes.
func (r *Relay) hook(raw []byte, in *netsim.Iface) [][]byte {
	pkt, err := filter.Parse(raw)
	if err != nil {
		return r.passThrough(raw)
	}
	if pkt.TCP == nil {
		pkt.Release()
		return r.passThrough(raw)
	}
	// Wired -> mobile on a relayed port: terminate locally.
	if pkt.IP.Dst == r.mobile && r.ports[pkt.TCP.DstPort] {
		r.wiredSide.Deliver(pkt.IP.Src, pkt.IP.Dst, pkt.Data)
		pkt.Release()
		return nil
	}
	// Mobile -> wired replies to the impersonated connections are
	// generated locally by wiredSide, so anything arriving *from* the
	// mobile for a relayed source port belongs to the mobileSide stack
	// and is delivered by the protocol handler (dst == proxy address).
	pkt.Release()
	return r.passThrough(raw)
}

func (r *Relay) passThrough(raw []byte) [][]byte {
	if len(r.emit) > 0 {
		r.emit[0] = nil
	}
	r.emit = append(r.emit[:0], raw)
	return r.emit
}

// accept bridges one wired-side connection to a fresh mobile-side
// connection.
func (r *Relay) accept(wired *tcp.Conn, port uint16) {
	r.Stats.Accepted++
	mobileConn, err := r.mobileSide.Connect(r.mobile, port)
	if err != nil {
		wired.Abort()
		return
	}
	p := &pipe{mobileConn: mobileConn}
	r.pipes = append(r.pipes, p)

	wired.OnData = func(b []byte) {
		// The wired side has already acknowledged these bytes (our
		// stack delivered them); relay them onward. If the mobile half
		// is dead the bytes are stranded — the wired sender cannot
		// know (§5.1.2).
		r.Stats.BytesAckedToWired += int64(len(b))
		p.ackedToWired += int64(len(b))
		mobileConn.Write(b)
	}
	wired.OnRemoteClose = func() {
		r.Stats.WiredClosed++
		mobileConn.Close()
		wired.Close()
	}
	// Reverse direction: mobile -> wired.
	mobileConn.OnData = func(b []byte) { wired.Write(b) }
	mobileConn.OnRemoteClose = func() { wired.Close() }
	mobileConn.OnClose = func(err error) {
		p.mobileAcked = mobileConn.Stats().BytesAcked
		p.closed = true
		if err != nil {
			r.Stats.MobileFailed++
		}
	}
}
