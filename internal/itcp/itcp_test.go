package itcp_test

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/ip"
	"repro/internal/itcp"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/tcp"
)

var (
	wiredAddr  = ip.MustParseAddr("11.11.10.99")
	proxyAddr  = ip.MustParseAddr("11.11.10.1")
	mobileAddr = ip.MustParseAddr("11.11.10.10")
)

// itcpRig: wired — proxy(relay) — wireless — mobile, no service proxy.
type itcpRig struct {
	sched          *sim.Scheduler
	wired, mobile  *netsim.Node
	wStack, mStack *tcp.Stack
	relay          *itcp.Relay
	wless          *netsim.Link
}

func newITCPRig(t *testing.T, wireless netsim.LinkConfig) *itcpRig {
	t.Helper()
	s := sim.NewScheduler(3)
	n := netsim.New(s)
	w := n.AddNode("wired")
	p := n.AddNode("proxy")
	m := n.AddNode("mobile")
	p.Forwarding = true
	wire := netsim.LinkConfig{Bandwidth: 100e6, Delay: 2 * time.Millisecond}
	lw := n.Connect(w, wiredAddr, p, proxyAddr, wire)
	lm := n.Connect(p, ip.MustParseAddr("11.11.11.1"), m, mobileAddr, wireless)
	w.AddDefaultRoute(lw.IfaceA())
	m.AddDefaultRoute(lm.IfaceB())
	p.AddRoute(mobileAddr.Mask(32), 32, lm.IfaceA())

	r := &itcpRig{sched: s, wired: w, mobile: m, wless: lm}
	r.wStack = tcp.NewStack(w, tcp.Config{})
	r.mStack = tcp.NewStack(m, tcp.Config{})
	w.RegisterProto(ip.ProtoTCP, func(h ip.Header, pl, raw []byte, in *netsim.Iface) { r.wStack.Deliver(h.Src, h.Dst, pl) })
	m.RegisterProto(ip.ProtoTCP, func(h ip.Header, pl, raw []byte, in *netsim.Iface) { r.mStack.Deliver(h.Src, h.Dst, pl) })

	relay, err := itcp.New(p, mobileAddr, []uint16{5001}, tcp.Config{}, tcp.Config{MinRTO: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	r.relay = relay
	return r
}

func TestSplitConnectionRelaysData(t *testing.T) {
	r := newITCPRig(t, netsim.LinkConfig{Bandwidth: 2e6, Delay: 20 * time.Millisecond})
	var rcvd bytes.Buffer
	r.mStack.Listen(5001, func(c *tcp.Conn) {
		c.OnData = func(b []byte) { rcvd.Write(b) }
		c.OnRemoteClose = func() { c.Close() }
	})
	payload := make([]byte, 100_000)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	client, _ := r.wStack.Connect(mobileAddr, 5001)
	closed := false
	client.OnClose = func(error) { closed = true }
	client.OnEstablished = func() { client.Write(payload); client.Close() }
	r.sched.RunFor(120 * time.Second)
	if !bytes.Equal(rcvd.Bytes(), payload) {
		t.Fatalf("relayed %d of %d bytes", rcvd.Len(), len(payload))
	}
	if !closed {
		t.Fatal("wired side never closed")
	}
	if r.relay.Stats.Accepted != 1 {
		t.Fatalf("accepted = %d", r.relay.Stats.Accepted)
	}
	if got := r.relay.Stranded(); got != 0 {
		t.Fatalf("healthy relay stranded %d bytes", got)
	}
}

func TestSplitConnectionSurvivesWirelessLoss(t *testing.T) {
	r := newITCPRig(t, netsim.LinkConfig{Bandwidth: 2e6, Delay: 20 * time.Millisecond,
		Loss: netsim.Bernoulli{P: 0.08}, QueueLen: 200})
	var rcvd bytes.Buffer
	r.mStack.Listen(5001, func(c *tcp.Conn) { c.OnData = func(b []byte) { rcvd.Write(b) } })
	payload := make([]byte, 150_000)
	client, _ := r.wStack.Connect(mobileAddr, 5001)
	client.OnEstablished = func() { client.Write(payload) }
	r.sched.RunFor(300 * time.Second)
	if rcvd.Len() != len(payload) {
		t.Fatalf("relayed %d of %d bytes over lossy link", rcvd.Len(), len(payload))
	}
	// The wired sender must have been insulated: its connection never
	// saw the wireless losses (at most a handful of retransmits on the
	// clean wire).
	if client.Stats().Retransmits > 2 {
		t.Fatalf("wired sender saw wireless loss: %+v", client.Stats())
	}
}

func TestEndToEndSemanticsViolation(t *testing.T) {
	// The §5.1.2 hazard: the wired sender's data is fully acknowledged
	// by the proxy; then the mobile disconnects permanently. The
	// sender believes everything was delivered; it was not.
	r := newITCPRig(t, netsim.LinkConfig{Bandwidth: 500e3, Delay: 20 * time.Millisecond})
	var rcvd bytes.Buffer
	r.mStack.Listen(5001, func(c *tcp.Conn) { c.OnData = func(b []byte) { rcvd.Write(b) } })
	payload := make([]byte, 200_000)
	client, _ := r.wStack.Connect(mobileAddr, 5001)
	senderDone := false
	client.OnClose = func(err error) {
		if err == nil {
			senderDone = true
		}
	}
	client.OnEstablished = func() { client.Write(payload); client.Close() }

	// The wired half drains into the relay at 100 Mb/s almost
	// instantly; the 500 kb/s wireless half lags far behind. Cut the
	// wireless link for good mid-transfer.
	r.sched.RunFor(1 * time.Second)
	r.wless.SetDown(true)
	r.sched.RunFor(180 * time.Second)

	if !senderDone {
		t.Fatalf("wired sender did not complete cleanly (stats %+v)", client.Stats())
	}
	if rcvd.Len() >= len(payload) {
		t.Fatal("mobile somehow received everything")
	}
	stranded := r.relay.Stranded()
	if stranded == 0 {
		t.Fatal("no stranded bytes recorded despite permanent loss")
	}
	t.Logf("sender completed cleanly; mobile got %d of %d bytes; %d bytes stranded at the proxy",
		rcvd.Len(), len(payload), stranded)
}

func TestEchoThroughRelay(t *testing.T) {
	// Reverse-direction data flows too (mobile responses).
	r := newITCPRig(t, netsim.LinkConfig{Bandwidth: 2e6, Delay: 10 * time.Millisecond})
	r.mStack.Listen(5001, func(c *tcp.Conn) {
		c.OnData = func(b []byte) { c.Write(bytes.ToUpper(b)) }
	})
	var got bytes.Buffer
	client, _ := r.wStack.Connect(mobileAddr, 5001)
	client.OnData = func(b []byte) { got.Write(b) }
	client.OnEstablished = func() { client.Write([]byte("hello relay")) }
	r.sched.RunFor(10 * time.Second)
	if got.String() != "HELLO RELAY" {
		t.Fatalf("echo = %q", got.String())
	}
}
