package classifier

import (
	"math/rand"
	"testing"

	"repro/internal/filter"
	"repro/internal/ip"
)

// refMatch is the reference answer: a linear scan with
// filter.Key.Matches, the semantics the compiled program must
// reproduce exactly.
func refMatch(rules []filter.Key, k filter.Key) bool {
	for _, r := range rules {
		if r.Matches(k) {
			return true
		}
	}
	return false
}

func refIndices(rules []filter.Key, k filter.Key) []int32 {
	var out []int32
	for i, r := range rules {
		if r.Matches(k) {
			out = append(out, int32(i))
		}
	}
	return out
}

func sameIndices(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkParity asserts Match and AppendMatches agree with the reference
// scan for key k.
func checkParity(t *testing.T, pr *Program, rules []filter.Key, k filter.Key) {
	t.Helper()
	want := refMatch(rules, k)
	if got := pr.Match(k); got != want {
		t.Fatalf("Match(%v) = %v, reference scan says %v (rules=%v, scan=%v)",
			k, got, want, rules, pr.Stats().Scan)
	}
	wantIdx := refIndices(rules, k)
	gotIdx := pr.AppendMatches(nil, k)
	if !sameIndices(gotIdx, wantIdx) {
		t.Fatalf("AppendMatches(%v) = %v, reference scan says %v (rules=%v)",
			k, gotIdx, wantIdx, rules)
	}
}

// Small pools force value collisions so random rule sets exercise
// shared classes, not just distinct singletons.
var (
	testAddrs = []ip.Addr{
		0, // wild-card
		ip.MustParseAddr("10.0.0.1"),
		ip.MustParseAddr("10.0.0.2"),
		ip.MustParseAddr("11.11.10.10"),
		ip.MustParseAddr("11.11.10.99"),
	}
	testPorts = []uint16{0, 1, 7, 80, 1169, 8080}
)

func randKey(rng *rand.Rand) filter.Key {
	return filter.Key{
		SrcIP:   testAddrs[rng.Intn(len(testAddrs))],
		SrcPort: testPorts[rng.Intn(len(testPorts))],
		DstIP:   testAddrs[rng.Intn(len(testAddrs))],
		DstPort: testPorts[rng.Intn(len(testPorts))],
	}
}

func TestCompiledParityRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		rules := make([]filter.Key, rng.Intn(12))
		for i := range rules {
			rules[i] = randKey(rng)
		}
		pr := Compile(rules)
		if pr.Stats().Scan {
			t.Fatalf("small rule set unexpectedly fell back to scan: %v", rules)
		}
		for probe := 0; probe < 64; probe++ {
			checkParity(t, pr, rules, randKey(rng))
		}
	}
}

func TestEmptyProgramMatchesNothing(t *testing.T) {
	for _, pr := range []*Program{Compile(nil), Compile([]filter.Key{}), new(Program)} {
		k := filter.Key{SrcIP: testAddrs[1], SrcPort: 7, DstIP: testAddrs[2], DstPort: 80}
		if pr.Match(k) {
			t.Fatal("empty program matched a key")
		}
		if got := pr.AppendMatches(nil, k); got != nil {
			t.Fatalf("empty program returned matches %v", got)
		}
		if pr.Len() != 0 {
			t.Fatalf("Len() = %d, want 0", pr.Len())
		}
	}
}

func TestAllWildRuleMatchesEverything(t *testing.T) {
	rules := []filter.Key{{}} // all fields wild
	pr := Compile(rules)
	probes := []filter.Key{
		{}, // all-zero lookup key
		{SrcIP: testAddrs[1]},
		{SrcPort: 9999},
		{SrcIP: testAddrs[3], SrcPort: 1169, DstIP: testAddrs[4], DstPort: 7},
	}
	for _, k := range probes {
		checkParity(t, pr, rules, k)
		if !pr.Match(k) {
			t.Fatalf("all-wild rule did not match %v", k)
		}
	}
}

// TestZeroFieldLookupKeys pins the port-0 / zero-address lookup edge:
// a zero field in the *lookup* key must behave exactly as the
// reference scan treats it (only rules wild-carding that field can
// match), even though zero normally marks wild-cards in rules.
func TestZeroFieldLookupKeys(t *testing.T) {
	rules := []filter.Key{
		{SrcIP: testAddrs[1], SrcPort: 7, DstIP: testAddrs[2], DstPort: 80},
		{SrcPort: 7},              // src port only
		{DstIP: testAddrs[2]},     // dst addr only
		{},                        // all wild
		{SrcIP: testAddrs[1]},     // src addr only
		{SrcPort: 7, DstPort: 80}, // both ports
		{SrcIP: 0, SrcPort: 0, DstIP: 0, DstPort: 443},
	}
	pr := Compile(rules)
	probes := []filter.Key{
		{},
		{SrcPort: 7},
		{SrcIP: testAddrs[1], SrcPort: 0, DstIP: 0, DstPort: 80},
		{SrcIP: testAddrs[1], SrcPort: 7, DstIP: testAddrs[2], DstPort: 80},
		{DstPort: 443},
		{SrcIP: testAddrs[4], DstPort: 443},
	}
	for _, k := range probes {
		checkParity(t, pr, rules, k)
	}
}

func TestDuplicateRules(t *testing.T) {
	r := filter.Key{SrcIP: testAddrs[1], SrcPort: 7}
	rules := []filter.Key{r, r, r}
	pr := Compile(rules)
	k := filter.Key{SrcIP: testAddrs[1], SrcPort: 7, DstIP: testAddrs[2], DstPort: 80}
	got := pr.AppendMatches(nil, k)
	if !sameIndices(got, []int32{0, 1, 2}) {
		t.Fatalf("duplicate rules: got indices %v, want [0 1 2]", got)
	}
}

// TestScanFallbackParity forces the cross-product cap: ~1100 rules
// each with a distinct source address AND distinct source port give
// 1101×1101 > 2^20 source-pair entries, so Compile must fall back to
// the linear-scan program — and still answer identically.
func TestScanFallbackParity(t *testing.T) {
	const n = 1100
	rules := make([]filter.Key, n)
	for i := range rules {
		rules[i] = filter.Key{
			SrcIP:   ip.AddrFrom4(10, 1, byte(i>>8), byte(i)),
			SrcPort: uint16(1000 + i),
		}
	}
	pr := Compile(rules)
	if !pr.Stats().Scan {
		t.Fatalf("expected scan fallback at %d distinct src addr×port rules (stats %+v)",
			n, pr.Stats())
	}
	rng := rand.New(rand.NewSource(11))
	for probe := 0; probe < 200; probe++ {
		i := rng.Intn(n)
		k := filter.Key{
			SrcIP:   ip.AddrFrom4(10, 1, byte(i>>8), byte(i)),
			SrcPort: uint16(1000 + rng.Intn(n+100)),
			DstIP:   testAddrs[rng.Intn(len(testAddrs))],
			DstPort: testPorts[rng.Intn(len(testPorts))],
		}
		checkParity(t, pr, rules, k)
	}
}

// TestAppendMatchesReusesDst pins the zero-allocation contract: with a
// pre-grown dst, AppendMatches must not allocate.
func TestAppendMatchesReusesDst(t *testing.T) {
	rules := []filter.Key{{SrcPort: 7}, {SrcPort: 7, DstPort: 80}, {}}
	pr := Compile(rules)
	k := filter.Key{SrcIP: testAddrs[1], SrcPort: 7, DstIP: testAddrs[2], DstPort: 80}
	dst := make([]int32, 0, 16)
	allocs := testing.AllocsPerRun(100, func() {
		dst = pr.AppendMatches(dst[:0], k)
	})
	if allocs != 0 {
		t.Fatalf("AppendMatches into pre-grown dst allocated %.1f/op", allocs)
	}
	if !sameIndices(dst, []int32{0, 1, 2}) {
		t.Fatalf("got %v, want [0 1 2]", dst)
	}
}

// TestLargeRegistryShape compiles a perf-bench-shaped registry (many
// rules differing in one dimension) and checks the table program, not
// the fallback, handles it.
func TestLargeRegistryShape(t *testing.T) {
	const n = 8000
	rules := make([]filter.Key, n)
	for i := range rules {
		rules[i] = filter.Key{SrcPort: uint16(10000 + i%50000), DstIP: testAddrs[3]}
	}
	pr := Compile(rules)
	if st := pr.Stats(); st.Scan {
		t.Fatalf("one-varying-dimension registry fell back to scan: %+v", st)
	}
	rng := rand.New(rand.NewSource(3))
	for probe := 0; probe < 100; probe++ {
		k := filter.Key{
			SrcIP:   testAddrs[4],
			SrcPort: uint16(rng.Intn(65536)),
			DstIP:   testAddrs[rng.Intn(len(testAddrs))],
			DstPort: uint16(rng.Intn(3)),
		}
		checkParity(t, pr, rules, k)
	}
}
