package classifier

import (
	"testing"

	"repro/internal/filter"
	"repro/internal/ip"
)

// decodeKey maps 4 fuzz bytes onto a key drawn from small value pools,
// so random inputs collide often enough to exercise shared classes,
// wild-cards, and zero-field lookup keys.
func decodeKey(b []byte) filter.Key {
	addr := func(v byte) ip.Addr {
		if v&7 == 0 {
			return 0 // wild-card / zero field
		}
		return ip.AddrFrom4(10, 0, 0, v&31)
	}
	port := func(v byte) uint16 {
		if v&7 == 0 {
			return 0
		}
		return uint16(v&31) * 1000
	}
	return filter.Key{
		SrcIP:   addr(b[0]),
		SrcPort: port(b[1]),
		DstIP:   addr(b[2]),
		DstPort: port(b[3]),
	}
}

// FuzzClassifierParity feeds arbitrary byte strings decoded as a rule
// set plus lookup keys and asserts the compiled program answers every
// lookup exactly as the reference filter.Key.Matches scan.
func FuzzClassifierParity(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 0, 0, 0, 0, 9, 9, 9, 9})
	f.Add([]byte{8, 8, 8, 8, 8, 8, 8, 8, 16, 0, 16, 0, 8, 8, 8, 8})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		// First chunk count picks how many 4-byte groups become rules;
		// the rest become lookup keys.
		groups := len(data) / 4
		nRules := int(data[0]) % (groups + 1)
		rules := make([]filter.Key, 0, nRules)
		for i := 0; i < nRules; i++ {
			rules = append(rules, decodeKey(data[i*4:]))
		}
		pr := Compile(rules)
		for i := nRules; i < groups; i++ {
			k := decodeKey(data[i*4:])
			want := refMatch(rules, k)
			if got := pr.Match(k); got != want {
				t.Fatalf("Match(%v) = %v, reference = %v (rules %v)", k, got, want, rules)
			}
			if got, want := pr.AppendMatches(nil, k), refIndices(rules, k); !sameIndices(got, want) {
				t.Fatalf("AppendMatches(%v) = %v, reference = %v (rules %v)", k, got, want, rules)
			}
		}
	})
}
