// Package classifier compiles the stream registry's wild-card key set
// into an immutable match program whose lookup cost is independent of
// rule count. The construction is dimension-wise equivalence-class
// cross-producting (recursive flow classification, the shape of
// yanet2's filter/ range-compiled tables): each of the four key
// dimensions (source address, source port, destination address,
// destination port) maps a packet value to an equivalence class — two
// values share a class iff exactly the same rules accept them — and
// pairs of class dimensions are folded together through deduplicated
// cross-product tables until a single table entry names the full set
// of matching rules.
//
// A lookup is then two map reads (addresses), two dense-array reads
// (ports), and three table reads — O(1) in the number of rules, with
// zero allocations. The price is paid at compile time, which the proxy
// runs only on registry mutations (control-plane rare); mutations on
// the concurrent plane already execute on the owning shard goroutine
// at batch/epoch boundaries, so the program swap needs no locking.
//
// The reference semantics are filter.Key.Matches: a compiled program
// must answer every lookup exactly as a linear scan of the rules would
// (pinned by the parity property and fuzz tests).
package classifier

import (
	"repro/internal/filter"
	"repro/internal/ip"
)

// MaxCrossEntries caps the size of any one cross-product table. A
// pathological rule set — thousands of distinct source addresses
// multiplied by thousands of distinct source ports — can make the
// pairwise tables quadratic; past the cap Compile falls back to a
// linear-scan program rather than exploding memory. Realistic registry
// shapes (many rules sharing wild-carded dimensions) stay far below it.
const MaxCrossEntries = 1 << 20

// numPorts is the size of a dense port lookup table.
const numPorts = 1 << 16

// zeroPorts is the shared port table for a dimension with no concrete
// port values: every port (including 0) is in class 0. Read-only, so
// one instance serves every program.
var zeroPorts = make([]uint32, numPorts)

// Program is an immutable compiled match program. The zero value (and
// a program compiled from an empty rule set) matches nothing. Lookups
// are safe from any number of goroutines; mutation is by recompiling
// and swapping the pointer.
type Program struct {
	n int // rule count

	// scanKeys, when non-nil, marks a fallback program: the cross
	// product blew past MaxCrossEntries, so lookups linear-scan this
	// copy of the rules instead of using tables.
	scanKeys []filter.Key

	// Phase 0: per-dimension value -> class. Addresses absent from the
	// map (and the zero address) are class 0; ports index dense tables
	// where port 0's entry is always class 0. Class 0 is the "only
	// wild-carded rules accept this value" class, which is exactly the
	// right answer for lookup keys carrying zero fields.
	srcIP   map[ip.Addr]uint32
	dstIP   map[ip.Addr]uint32
	srcPort []uint32
	dstPort []uint32

	// Phase 1: (srcIP class, srcPort class) -> source-pair class, and
	// likewise for the destination side. Row-major: a*nB + b.
	nSrcPort uint32
	nDstPort uint32
	tSrc     []uint32
	tDst     []uint32

	// Phase 2: (source-pair class, destination-pair class) -> result.
	nDstPair uint32
	final    []uint32

	// results maps a final class to the ascending rule indices it
	// matches; nil means no rule matches.
	results [][]int32

	// classes / tableEntries record compile-time shape for Stats.
	classes      int
	tableEntries int
}

// Compile builds the match program for rules. The slice is not
// retained (fallback scan programs keep their own copy).
func Compile(rules []filter.Key) *Program {
	n := len(rules)
	pr := &Program{n: n}
	if n == 0 {
		return pr
	}

	srcIPDim, srcIPMap := addrDim(rules, func(r filter.Key) ip.Addr { return r.SrcIP })
	srcPortDim, srcPortTbl := portDim(rules, func(r filter.Key) uint16 { return r.SrcPort })
	dstIPDim, dstIPMap := addrDim(rules, func(r filter.Key) ip.Addr { return r.DstIP })
	dstPortDim, dstPortTbl := portDim(rules, func(r filter.Key) uint16 { return r.DstPort })

	tSrc, srcPair, ok := cross(srcIPDim, srcPortDim, n)
	if !ok {
		return scanProgram(rules)
	}
	tDst, dstPair, ok := cross(dstIPDim, dstPortDim, n)
	if !ok {
		return scanProgram(rules)
	}
	final, fin, ok := cross(srcPair, dstPair, n)
	if !ok {
		return scanProgram(rules)
	}

	pr.srcIP, pr.dstIP = srcIPMap, dstIPMap
	pr.srcPort, pr.dstPort = srcPortTbl, dstPortTbl
	pr.nSrcPort = uint32(len(srcPortDim.classes))
	pr.nDstPort = uint32(len(dstPortDim.classes))
	pr.tSrc, pr.tDst = tSrc, tDst
	pr.nDstPair = uint32(len(dstPair.classes))
	pr.final = final
	pr.results = make([][]int32, len(fin.classes))
	for c, b := range fin.classes {
		pr.results[c] = b.indices()
	}
	pr.classes = len(srcIPDim.classes) + len(srcPortDim.classes) +
		len(dstIPDim.classes) + len(dstPortDim.classes) +
		len(srcPair.classes) + len(dstPair.classes) + len(fin.classes)
	pr.tableEntries = len(tSrc) + len(tDst) + len(final)
	return pr
}

// scanProgram is the linear fallback for rule sets whose cross product
// exceeds MaxCrossEntries.
func scanProgram(rules []filter.Key) *Program {
	return &Program{n: len(rules), scanKeys: append([]filter.Key(nil), rules...)}
}

// classify runs the table pipeline on one exact key. Addresses missing
// from the maps read as class 0 (Go's zero value for absent map keys),
// so never-registered values cost the same as registered ones.
func (pr *Program) classify(k filter.Key) uint32 {
	cs := pr.tSrc[pr.srcIP[k.SrcIP]*pr.nSrcPort+pr.srcPort[k.SrcPort]]
	cd := pr.tDst[pr.dstIP[k.DstIP]*pr.nDstPort+pr.dstPort[k.DstPort]]
	return pr.final[cs*pr.nDstPair+cd]
}

// Match reports whether any rule matches k. Allocation-free.
func (pr *Program) Match(k filter.Key) bool {
	if pr.n == 0 {
		return false
	}
	if pr.scanKeys != nil {
		for i := range pr.scanKeys {
			if pr.scanKeys[i].Matches(k) {
				return true
			}
		}
		return false
	}
	return pr.results[pr.classify(k)] != nil
}

// AppendMatches appends the indices (ascending, in compile order) of
// every rule matching k to dst and returns the extended slice. It
// allocates only if dst needs growing.
func (pr *Program) AppendMatches(dst []int32, k filter.Key) []int32 {
	if pr.n == 0 {
		return dst
	}
	if pr.scanKeys != nil {
		for i := range pr.scanKeys {
			if pr.scanKeys[i].Matches(k) {
				dst = append(dst, int32(i))
			}
		}
		return dst
	}
	return append(dst, pr.results[pr.classify(k)]...)
}

// Len returns the number of rules the program was compiled from.
func (pr *Program) Len() int { return pr.n }

// Stats describes the compiled shape, for observability and tests.
type Stats struct {
	Rules        int  // rule count
	Classes      int  // equivalence classes across all seven dimensions
	TableEntries int  // total cross-product table entries
	Scan         bool // true when the program fell back to linear scan
}

// Stats returns the program's compile-time shape.
func (pr *Program) Stats() Stats {
	return Stats{
		Rules:        pr.n,
		Classes:      pr.classes,
		TableEntries: pr.tableEntries,
		Scan:         pr.scanKeys != nil,
	}
}

// --- compilation machinery ---------------------------------------------------

// bitset is a fixed-width set of rule indices.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

// indices returns the set bits ascending, or nil when empty.
func (b bitset) indices() []int32 {
	var out []int32
	for wi, w := range b {
		for bit := 0; w != 0; bit++ {
			if w&1 != 0 {
				out = append(out, int32(wi*64+bit))
			}
			w >>= 1
		}
	}
	return out
}

// andInto sets dst = a & b; all three share a width.
func andInto(dst, a, b bitset) {
	for i := range dst {
		dst[i] = a[i] & b[i]
	}
}

// dimension interns bitsets as equivalence classes: identical rule
// sets share one class id.
type dimension struct {
	classes []bitset
	index   map[string]uint32
	keyBuf  []byte
}

func newDimension() *dimension {
	return &dimension{index: make(map[string]uint32)}
}

// class returns the id for b, registering a copy if unseen.
func (d *dimension) class(b bitset) uint32 {
	d.keyBuf = d.keyBuf[:0]
	for _, w := range b {
		d.keyBuf = append(d.keyBuf,
			byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
			byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
	}
	k := string(d.keyBuf)
	if id, ok := d.index[k]; ok {
		return id
	}
	id := uint32(len(d.classes))
	d.classes = append(d.classes, append(bitset(nil), b...))
	d.index[k] = id
	return id
}

// addrDim builds one address dimension: class 0 is the set of rules
// wild-carding the field (the answer for any unregistered address,
// including the zero address), and each distinct concrete address gets
// the class of wild-rules ∪ its own rules.
func addrDim(rules []filter.Key, get func(filter.Key) ip.Addr) (*dimension, map[ip.Addr]uint32) {
	n := len(rules)
	wild := newBitset(n)
	byVal := make(map[ip.Addr][]int)
	for i, r := range rules {
		if v := get(r); v.IsZero() {
			wild.set(i)
		} else {
			byVal[v] = append(byVal[v], i)
		}
	}
	d := newDimension()
	d.class(wild) // class 0
	var m map[ip.Addr]uint32
	if len(byVal) > 0 {
		m = make(map[ip.Addr]uint32, len(byVal))
		tmp := newBitset(n)
		for v, idxs := range byVal {
			copy(tmp, wild)
			for _, i := range idxs {
				tmp.set(i)
			}
			m[v] = d.class(tmp)
		}
	}
	return d, m
}

// portDim builds one port dimension as a dense 65536-entry table.
// Port 0 can never be a concrete rule value (zero means wild-card), so
// its entry stays class 0 and zero-port lookup keys get the pure
// wild-card answer — matching the reference scan.
func portDim(rules []filter.Key, get func(filter.Key) uint16) (*dimension, []uint32) {
	n := len(rules)
	wild := newBitset(n)
	byVal := make(map[uint16][]int)
	for i, r := range rules {
		if v := get(r); v == 0 {
			wild.set(i)
		} else {
			byVal[v] = append(byVal[v], i)
		}
	}
	d := newDimension()
	d.class(wild) // class 0
	if len(byVal) == 0 {
		return d, zeroPorts
	}
	tbl := make([]uint32, numPorts)
	tmp := newBitset(n)
	for v, idxs := range byVal {
		copy(tmp, wild)
		for _, i := range idxs {
			tmp.set(i)
		}
		tbl[v] = d.class(tmp)
	}
	return d, tbl
}

// cross folds two class dimensions into one: the returned table maps
// (a-class, b-class) row-major to a class in the returned dimension,
// whose bitsets are the pairwise intersections. ok is false when the
// table would exceed MaxCrossEntries.
func cross(a, b *dimension, n int) (tbl []uint32, out *dimension, ok bool) {
	na, nb := len(a.classes), len(b.classes)
	if na*nb > MaxCrossEntries {
		return nil, nil, false
	}
	tbl = make([]uint32, na*nb)
	out = newDimension()
	tmp := newBitset(n)
	for i := 0; i < na; i++ {
		for j := 0; j < nb; j++ {
			andInto(tmp, a.classes[i], b.classes[j])
			tbl[i*nb+j] = out.class(tmp)
		}
	}
	return tbl, out, true
}
