package flowlog

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/filter"
	"repro/internal/ip"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/workload"
)

var (
	cliIP = ip.MustParseAddr("11.11.10.99")
	srvIP = ip.MustParseAddr("11.11.10.10")
	fwd   = filter.Key{SrcIP: cliIP, SrcPort: 7, DstIP: srvIP, DstPort: 5001}
)

// clock is a settable virtual clock for table tests.
type clock struct{ t sim.Time }

func (c *clock) now() sim.Time          { return c.t }
func (c *clock) advance(d sim.Duration) { c.t = c.t.Add(d) }

func newTestTable(cfg Config) (*Table, *clock) {
	c := &clock{}
	return New(c.now, cfg), c
}

// seg builds a segment and records it. rawLen is approximated as
// 40 + payload.
func rec(t *Table, k filter.Key, flags byte, seq, ack uint32, win uint16, payload int) {
	s := &tcp.Segment{
		SrcPort: k.SrcPort, DstPort: k.DstPort,
		Seq: seq, Ack: ack, Flags: flags, Window: win,
	}
	if payload > 0 {
		s.Payload = make([]byte, payload)
	}
	t.Record(k, s, 40+payload)
}

// one finds the single record matching state, failing otherwise.
func one(t *testing.T, tbl *Table, state string) Record {
	t.Helper()
	var found []Record
	for _, r := range tbl.AppendRecords(nil) {
		if r.State == state {
			found = append(found, r)
		}
	}
	if len(found) != 1 {
		t.Fatalf("want exactly one %q record, got %d (all: %v)", state, len(found), tbl.AppendRecords(nil))
	}
	return found[0]
}

func TestHandshakeRTTAndCounters(t *testing.T) {
	tbl, clk := newTestTable(Config{})
	rec(tbl, fwd, tcp.FlagSYN, 100, 0, 65535, 0)
	clk.advance(10 * time.Millisecond)
	rec(tbl, fwd.Reverse(), tcp.FlagSYN|tcp.FlagACK, 900, 101, 65535, 0)
	rec(tbl, fwd, tcp.FlagACK, 101, 901, 65535, 0)

	r := one(t, tbl, StateActive)
	if r.Key != fwd {
		t.Fatalf("record key %v, want initiator orientation %v", r.Key, fwd)
	}
	if r.Score != ScoreHandshake {
		t.Fatalf("score %d, want %d", r.Score, ScoreHandshake)
	}
	if r.Init.Syn != 1 || r.Resp.SynAck != 1 {
		t.Fatalf("syn/synack = %d/%d, want 1/1", r.Init.Syn, r.Resp.SynAck)
	}
	if r.Init.Pkts != 2 || r.Resp.Pkts != 1 {
		t.Fatalf("pkts %d/%d, want 2/1", r.Init.Pkts, r.Resp.Pkts)
	}
	if want := int64(10_000); r.SRTTMicros != want {
		t.Fatalf("handshake srtt %dµs, want %d", r.SRTTMicros, want)
	}

	// A data→ACK sample folds in with gain 1/8.
	rec(tbl, fwd, tcp.FlagACK|tcp.FlagPSH, 101, 901, 65535, 100)
	clk.advance(2 * time.Millisecond)
	rec(tbl, fwd.Reverse(), tcp.FlagACK, 901, 201, 65535, 0)
	r = one(t, tbl, StateActive)
	if want := int64(10_000 + (2_000-10_000)/8); r.SRTTMicros != want {
		t.Fatalf("srtt after data sample %dµs, want %d", r.SRTTMicros, want)
	}
	if snap := tbl.Stats().Snapshot(); snap.RTTSamples != 2 {
		t.Fatalf("RTTSamples %d, want 2", snap.RTTSamples)
	}
}

func TestRetransDetection(t *testing.T) {
	tbl, _ := newTestTable(Config{})
	rec(tbl, fwd, tcp.FlagACK, 1000, 1, 65535, 100) // new data, frontier 1100
	rec(tbl, fwd, tcp.FlagACK, 1000, 1, 65535, 100) // full retransmission
	rec(tbl, fwd, tcp.FlagACK, 1050, 1, 65535, 100) // partial overlap: new data
	rec(tbl, fwd, tcp.FlagACK, 1100, 1, 65535, 50)  // fully below frontier 1150
	r := one(t, tbl, StateActive)
	if r.Init.Retrans != 2 {
		t.Fatalf("retrans %d, want 2", r.Init.Retrans)
	}
	if snap := tbl.Stats().Snapshot(); snap.Retrans != 2 || snap.DataPkts != 4 {
		t.Fatalf("stats retrans/data = %d/%d, want 2/4", snap.Retrans, snap.DataPkts)
	}
}

func TestRetransmittedSYNGivesNoRTTSample(t *testing.T) {
	tbl, clk := newTestTable(Config{})
	rec(tbl, fwd, tcp.FlagSYN, 100, 0, 65535, 0)
	clk.advance(time.Second)
	rec(tbl, fwd, tcp.FlagSYN, 100, 0, 65535, 0) // SYN retransmission
	clk.advance(10 * time.Millisecond)
	rec(tbl, fwd.Reverse(), tcp.FlagSYN|tcp.FlagACK, 900, 101, 65535, 0)
	r := one(t, tbl, StateActive)
	if r.SRTTMicros != 0 {
		t.Fatalf("srtt %dµs after ambiguous handshake, want 0 (Karn)", r.SRTTMicros)
	}
	if r.Init.Retrans != 1 {
		t.Fatalf("SYN retrans not counted: %d", r.Init.Retrans)
	}
}

func TestZeroWindowEvents(t *testing.T) {
	tbl, _ := newTestTable(Config{})
	rec(tbl, fwd, tcp.FlagSYN, 100, 0, 65535, 0)
	rec(tbl, fwd.Reverse(), tcp.FlagACK, 900, 101, 0, 0) // zero-window ACK
	rec(tbl, fwd.Reverse(), tcp.FlagRST, 900, 0, 0, 0)   // RST window is not a zwin event
	r := one(t, tbl, StateReset)
	if r.Resp.ZeroWin != 1 {
		t.Fatalf("zero-window events %d, want 1", r.Resp.ZeroWin)
	}
}

func TestCloseTransitions(t *testing.T) {
	tbl, clk := newTestTable(Config{IdleTimeout: time.Second})

	// FIN in both directions closes.
	rec(tbl, fwd, tcp.FlagSYN, 100, 0, 65535, 0)
	rec(tbl, fwd, tcp.FlagFIN|tcp.FlagACK, 101, 1, 65535, 0)
	rec(tbl, fwd.Reverse(), tcp.FlagFIN|tcp.FlagACK, 900, 102, 65535, 0)
	if r := one(t, tbl, StateClosed); r.Key != fwd {
		t.Fatalf("closed record key %v, want %v", r.Key, fwd)
	}
	if got := tbl.ActiveFlows(); got != 0 {
		t.Fatalf("active after FIN-FIN %d, want 0", got)
	}

	// The trailing pure ACK of the teardown must not reopen a flow.
	rec(tbl, fwd, tcp.FlagACK, 102, 901, 65535, 0)
	if got := tbl.ActiveFlows(); got != 0 {
		t.Fatalf("trailing ACK opened a ghost flow (active=%d)", got)
	}

	// Idle timeout closes via lazy aging on a later unrelated packet.
	k2 := filter.Key{SrcIP: cliIP, SrcPort: 8, DstIP: srvIP, DstPort: 5001}
	rec(tbl, k2, tcp.FlagSYN, 1, 0, 65535, 0)
	clk.advance(2 * time.Second)
	k3 := filter.Key{SrcIP: cliIP, SrcPort: 9, DstIP: srvIP, DstPort: 5001}
	rec(tbl, k3, tcp.FlagSYN, 1, 0, 65535, 0)
	if r := one(t, tbl, StateIdle); r.Key != k2 {
		t.Fatalf("idle-closed record key %v, want %v", r.Key, k2)
	}
	snap := tbl.Stats().Snapshot()
	if snap.IdleClosed != 1 || snap.Closed != 2 || snap.Active != 1 {
		t.Fatalf("snapshot idle/closed/active = %d/%d/%d, want 1/2/1",
			snap.IdleClosed, snap.Closed, snap.Active)
	}
}

func TestEvictionBound(t *testing.T) {
	tbl, _ := newTestTable(Config{MaxActive: 4, ClosedRing: 8})
	for port := uint16(1000); port < 1020; port++ {
		k := filter.Key{SrcIP: cliIP, SrcPort: port, DstIP: srvIP, DstPort: 5001}
		rec(tbl, k, tcp.FlagSYN, 1, 0, 65535, 0)
		if got := tbl.ActiveFlows(); got > 4 {
			t.Fatalf("active %d exceeds MaxActive=4", got)
		}
	}
	snap := tbl.Stats().Snapshot()
	if snap.Active != 4 || snap.Evicted != 16 || snap.Opened != 20 {
		t.Fatalf("active/evicted/opened = %d/%d/%d, want 4/16/20",
			snap.Active, snap.Evicted, snap.Opened)
	}
	// The closed ring holds only its bound (the 8 most recent).
	recs := tbl.AppendRecords(nil)
	if len(recs) != 4+8 {
		t.Fatalf("records %d, want 12 (4 active + 8 ring)", len(recs))
	}
}

func TestDirectionCanonicalization(t *testing.T) {
	// Both directions of the same stream must land on one record, with
	// the record oriented by the initiator even when the responder's
	// endpoint sorts first canonically.
	tbl, _ := newTestTable(Config{})
	rev := fwd.Reverse()
	rec(tbl, rev, tcp.FlagSYN, 500, 0, 65535, 0) // "server side" initiates
	rec(tbl, fwd, tcp.FlagSYN|tcp.FlagACK, 100, 501, 65535, 0)
	recs := tbl.AppendRecords(nil)
	if len(recs) != 1 {
		t.Fatalf("both directions should share one record, got %d", len(recs))
	}
	if recs[0].Key != rev {
		t.Fatalf("record key %v, want initiator orientation %v", recs[0].Key, rev)
	}
	if recs[0].Init.Syn != 1 || recs[0].Resp.SynAck != 1 {
		t.Fatalf("init/resp mixup: %+v", recs[0])
	}
}

func TestRenderDeterministicUnderOrder(t *testing.T) {
	tbl, clk := newTestTable(Config{})
	rng := rand.New(rand.NewSource(42))
	for port := uint16(2000); port < 2040; port++ {
		k := filter.Key{SrcIP: cliIP, SrcPort: port, DstIP: srvIP, DstPort: 5001}
		rec(tbl, k, tcp.FlagSYN, 1, 0, 65535, 0)
		rec(tbl, k, tcp.FlagACK, 2, 1, 65535, int(port%7)*10)
		if port%3 == 0 {
			rec(tbl, k, tcp.FlagFIN|tcp.FlagACK, 100, 1, 65535, 0)
			rec(tbl, k.Reverse(), tcp.FlagFIN|tcp.FlagACK, 1, 101, 65535, 0)
		}
		clk.advance(time.Millisecond)
	}
	recs := tbl.AppendRecords(nil)
	want := Render(recs, 64)
	for trial := 0; trial < 5; trial++ {
		shuffled := append([]Record(nil), recs...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		if got := Render(shuffled, 64); got != want {
			t.Fatalf("Render depends on input order:\n got %q\nwant %q", got, want)
		}
	}
	if !strings.HasPrefix(want, "flows: ") {
		t.Fatalf("missing header: %q", want)
	}
}

// TestChurnStormBound is the PR 8 bugfix-sweep regression: a
// workload.Churn storm (fresh key per flow, FIN teardown) must never
// grow the active table — every flow closes on its second FIN — and a
// teardown-free SYN flood must saturate at MaxActive, not beyond.
func TestChurnStormBound(t *testing.T) {
	tbl, _ := newTestTable(Config{MaxActive: 64})
	c := workload.NewChurn(workload.ChurnConfig{DataPkts: 2, PayloadSize: 64})
	peak := int64(0)
	st := c.Drive(5000, func(raw []byte) {
		pkt, err := filter.Parse(raw)
		if err != nil {
			t.Fatalf("churn packet unparseable: %v", err)
		}
		if pkt.TCP != nil {
			tbl.Record(pkt.Key, pkt.TCP, len(raw))
		}
		if a := tbl.ActiveFlows(); a > peak {
			peak = a
		}
		pkt.Release()
	})
	snap := tbl.Stats().Snapshot()
	if snap.Active != 0 {
		t.Fatalf("churn left %d active flows, want 0 (all FIN-closed)", snap.Active)
	}
	if peak > 1 {
		t.Fatalf("churn peak active %d, want <= 1 (flows are sequential)", peak)
	}
	if snap.Opened != int64(st.Flows) || snap.Closed != int64(st.Flows) {
		t.Fatalf("opened/closed = %d/%d, want %d/%d", snap.Opened, snap.Closed, st.Flows, st.Flows)
	}
	if snap.Evicted != 0 {
		t.Fatalf("churn evicted %d flows, want 0", snap.Evicted)
	}

	// SYN flood with no teardown: the LRU bound holds.
	flood, _ := newTestTable(Config{MaxActive: 64})
	for i := 0; i < 10_000; i++ {
		k := filter.Key{
			SrcIP: cliIP, SrcPort: uint16(1024 + i%60000),
			DstIP: srvIP + ip.Addr(i/60000), DstPort: 5001,
		}
		rec(flood, k, tcp.FlagSYN, 1, 0, 65535, 0)
		if a := flood.ActiveFlows(); a > 64 {
			t.Fatalf("SYN flood grew active table to %d (> MaxActive=64)", a)
		}
	}
	if got := flood.ActiveFlows(); got != 64 {
		t.Fatalf("SYN flood steady state %d, want 64", got)
	}
}

// TestSteadyStateRecordZeroAlloc pins the hot-path contract at the
// package level: folding segments of an established flow allocates
// nothing.
func TestSteadyStateRecordZeroAlloc(t *testing.T) {
	tbl, _ := newTestTable(Config{})
	seg := &tcp.Segment{
		SrcPort: fwd.SrcPort, DstPort: fwd.DstPort,
		Seq: 1, Ack: 1, Flags: tcp.FlagACK, Window: 65535,
		Payload: make([]byte, 100),
	}
	tbl.Record(fwd, seg, 140) // open
	seq := uint32(101)
	allocs := testing.AllocsPerRun(1000, func() {
		seg.Seq = seq
		seq += 100
		tbl.Record(fwd, seg, 140)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Record allocates %.1f/op, want 0", allocs)
	}
}
