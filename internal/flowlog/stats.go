package flowlog

import "sync/atomic"

// Stats are the table's fleet-aggregate counters: single-writer
// (owning goroutine) atomics, readable from any goroutine, merged
// across shards exactly like proxy.Stats.
type Stats struct {
	Active       atomic.Int64 // current active flows (gauge)
	Opened       atomic.Int64
	Closed       atomic.Int64 // all closes, any state
	Evicted      atomic.Int64 // closes forced by the MaxActive bound
	IdleClosed   atomic.Int64 // closes from the idle timeout
	Pkts         atomic.Int64 // TCP segments recorded
	DataPkts     atomic.Int64 // segments with payload
	Retrans      atomic.Int64
	ZeroWin      atomic.Int64
	RTTSamples   atomic.Int64
	RTTSumMicros atomic.Int64
}

// StatsSnapshot is a point-in-time copy of Stats.
type StatsSnapshot struct {
	Active       int64
	Opened       int64
	Closed       int64
	Evicted      int64
	IdleClosed   int64
	Pkts         int64
	DataPkts     int64
	Retrans      int64
	ZeroWin      int64
	RTTSamples   int64
	RTTSumMicros int64
}

// Stats exposes the table's counters.
func (t *Table) Stats() *Stats { return &t.stats }

// Snapshot copies the counters.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Active:       s.Active.Load(),
		Opened:       s.Opened.Load(),
		Closed:       s.Closed.Load(),
		Evicted:      s.Evicted.Load(),
		IdleClosed:   s.IdleClosed.Load(),
		Pkts:         s.Pkts.Load(),
		DataPkts:     s.DataPkts.Load(),
		Retrans:      s.Retrans.Load(),
		ZeroWin:      s.ZeroWin.Load(),
		RTTSamples:   s.RTTSamples.Load(),
		RTTSumMicros: s.RTTSumMicros.Load(),
	}
}

// Merge folds another shard's snapshot into s. Every field sums —
// including the Active gauge, since a flow lives whole on one shard.
func (s StatsSnapshot) Merge(o StatsSnapshot) StatsSnapshot {
	s.Active += o.Active
	s.Opened += o.Opened
	s.Closed += o.Closed
	s.Evicted += o.Evicted
	s.IdleClosed += o.IdleClosed
	s.Pkts += o.Pkts
	s.DataPkts += o.DataPkts
	s.Retrans += o.Retrans
	s.ZeroWin += o.ZeroWin
	s.RTTSamples += o.RTTSamples
	s.RTTSumMicros += o.RTTSumMicros
	return s
}
