package flowlog

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/trace"
)

// Render formats a merged record set as the deterministic columnar
// table the "flows [n]" command prints: active flows first, then the
// n most recently closed. The sort key (Opened, Last, key string) is
// total over any real traffic script — virtual open times break most
// ties, the key string the rest — so every shard layout of the same
// traffic renders the same bytes. Both the single-proxy control port
// and the merged data-plane command call this one function, which is
// what makes the N-shard output byte-equal to the inline one.
func Render(recs []Record, n int) string {
	if n <= 0 {
		n = DefaultShow
	}
	var active, closed []Record
	for _, r := range recs {
		if r.State == StateActive {
			active = append(active, r)
		} else {
			closed = append(closed, r)
		}
	}
	byAge := func(s []Record) func(i, j int) bool {
		return func(i, j int) bool {
			a, b := s[i], s[j]
			if a.Opened != b.Opened {
				return a.Opened < b.Opened
			}
			if a.Last != b.Last {
				return a.Last < b.Last
			}
			return a.Key.String() < b.Key.String()
		}
	}
	sort.Slice(active, byAge(active))
	sort.Slice(closed, byAge(closed))

	showA := active
	if len(showA) > n {
		showA = showA[:n]
	}
	showC := closed
	if len(showC) > n {
		showC = showC[len(showC)-n:] // most recently closed
	}

	var b strings.Builder
	fmt.Fprintf(&b, "flows: %d active, %d closed retained (showing %d + %d)\n",
		len(active), len(closed), len(showA), len(showC))
	tbl := trace.NewTable("",
		"flow", "state", "score",
		"tx_pkts", "tx_bytes", "rx_pkts", "rx_bytes", "payload",
		"syn", "synack", "retx", "zwin", "srtt_ms")
	for _, r := range append(showA, showC...) {
		srtt := "-"
		if r.SRTTMicros > 0 {
			srtt = fmt.Sprintf("%.2f", float64(r.SRTTMicros)/1000)
		}
		tbl.AddRow(
			r.Key.String(), r.State, int64(r.Score),
			r.Init.Pkts, r.Init.Bytes, r.Resp.Pkts, r.Resp.Bytes,
			r.Init.Payload+r.Resp.Payload,
			r.Init.Syn+r.Resp.Syn,
			r.Init.SynAck+r.Resp.SynAck,
			fmt.Sprintf("%d/%d", r.Init.Retrans, r.Resp.Retrans),
			fmt.Sprintf("%d/%d", r.Init.ZeroWin, r.Resp.ZeroWin),
			srtt,
		)
	}
	b.WriteString(tbl.String())
	return b.String()
}
