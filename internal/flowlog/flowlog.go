// Package flowlog is the flow-log analytics plane: a per-shard,
// allocation-free accumulator of per-flow L4 records in the style of
// deepflow's l4_flow_log schema. Every TCP segment the proxy
// intercepts is folded into the record of its flow — per-direction
// packet/byte/payload counts, SYN and SYN-ACK counts, retransmissions
// (sequence-regression detection), zero-window events, and a smoothed
// RTT estimate from SYN→SYN-ACK and data→ACK timing. Flows transition
// active→closed on FIN/RST/idle and age into a bounded ring of
// closed-flow records; fleet aggregates (retransmission ratio,
// zero-window rate, mean RTT) feed the EEM so policy rules can fire on
// traffic conditions, not just link metrics.
//
// Concurrency contract: Record and AppendRecords run only on the
// owning goroutine (the proxy's interception path / the shard
// goroutine under the plane's quiesce barrier); the Stats counters are
// single-writer atomics, so Snapshot is safe from any goroutine and
// per-shard snapshots merge exactly, like proxy.StatsSnapshot.
package flowlog

import (
	"time"

	"repro/internal/filter"
	"repro/internal/sim"
	"repro/internal/tcp"
)

// Defaults for Config's zero values and the "flows" command.
const (
	// DefaultMaxActive bounds the active-flow table; at capacity the
	// least-recently-seen flow is evicted into the closed ring, so a
	// SYN storm (workload.Churn without FINs) can never grow the table
	// past the bound.
	DefaultMaxActive = 4096
	// DefaultClosedRing bounds the closed-flow record ring (oldest
	// records are overwritten).
	DefaultClosedRing = 256
	// DefaultIdleTimeout closes a flow that has carried no segment for
	// this long (lazy aging: expiry is checked against the LRU head on
	// each Record call, so no timer fires on the hot path).
	DefaultIdleTimeout = 60 * time.Second
	// DefaultShow is the "flows [n]" display bound when n is omitted.
	DefaultShow = 20
)

// Config shapes a Table. Zero values select the defaults above.
type Config struct {
	MaxActive   int
	ClosedRing  int
	IdleTimeout time.Duration
}

// DirCounts accumulates one direction of a flow.
type DirCounts struct {
	Pkts    int64
	Bytes   int64 // raw datagram bytes
	Payload int64 // TCP payload bytes
	Syn     int64
	SynAck  int64
	Retrans int64
	ZeroWin int64
}

func (d DirCounts) add(o DirCounts) DirCounts {
	d.Pkts += o.Pkts
	d.Bytes += o.Bytes
	d.Payload += o.Payload
	d.Syn += o.Syn
	d.SynAck += o.SynAck
	d.Retrans += o.Retrans
	d.ZeroWin += o.ZeroWin
	return d
}

// Flow states of a Record.
const (
	StateActive = "active"
	StateClosed = "closed" // both FINs seen
	StateReset  = "reset"  // RST
	StateIdle   = "idle"   // idle timeout
	StateEvict  = "evict"  // displaced by a newer flow at MaxActive
)

// Direction-score constants (deepflow convention: >=128 means the
// client/server orientation is usable, 255 means certain).
const (
	ScoreGuessed   = 128 // oriented by the flow's first observed segment
	ScoreHandshake = 255 // oriented by an observed SYN or SYN-ACK
)

// Record is one flow's accumulated state, oriented so Init is the
// connection initiator's direction (per Score's confidence).
type Record struct {
	Key        filter.Key // initiator → responder
	State      string
	Score      uint8
	Init, Resp DirCounts
	SRTTMicros int64 // smoothed RTT estimate; 0 = no sample
	Opened     sim.Time
	Last       sim.Time
}

// flowState is the live accumulator of one active flow, keyed and
// direction-indexed canonically (smaller 48-bit endpoint first — the
// same normalization as the data plane's steering hash, so a flow is
// always whole on one shard). It is free-listed: steady-state churn
// recycles states instead of allocating.
type flowState struct {
	key  filter.Key // canonical orientation
	dir  [2]DirCounts
	prev *flowState // intrusive LRU list, head = least recently seen
	next *flowState

	opened sim.Time
	last   sim.Time

	// Sequence-regression retransmission detection: the highest
	// sequence end seen per direction.
	maxSeqEnd [2]uint32
	haveSeq   [2]bool

	// RTT sampling state: handshake (SYN→SYN-ACK) and data→ACK, with
	// Karn's rule (a retransmitted segment never yields a sample).
	synTime     sim.Time
	synDir      int8
	awaitSynAck bool
	hsDone      bool
	pendSeq     [2]uint32
	pendTime    [2]sim.Time
	pendSet     [2]bool
	srtt        int64 // microseconds

	finSeen [2]bool
	initDir int8 // 0 or 1 (canonical index of the initiator)
	score   uint8
}

// Table is one shard's flow accumulator.
type Table struct {
	cfg Config
	now func() sim.Time

	active   map[filter.Key]*flowState
	lruHead  *flowState
	lruTail  *flowState
	freeList *flowState

	closed     []Record // ring of closed-flow records
	closedNext int
	closedLen  int

	stats Stats
}

// New builds a Table reading virtual time through now.
func New(now func() sim.Time, cfg Config) *Table {
	if cfg.MaxActive <= 0 {
		cfg.MaxActive = DefaultMaxActive
	}
	if cfg.ClosedRing <= 0 {
		cfg.ClosedRing = DefaultClosedRing
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = DefaultIdleTimeout
	}
	return &Table{
		cfg:    cfg,
		now:    now,
		active: make(map[filter.Key]*flowState),
		closed: make([]Record, cfg.ClosedRing),
	}
}

// canonical reduces k to the flow's canonical orientation, mirroring
// dataplane.Hash's smaller-48-bit-endpoint-first ordering. dir is the
// canonical index of the segment's direction: 0 when k already is
// canonical, 1 when the segment travels the reverse way.
func canonical(k filter.Key) (ck filter.Key, dir int) {
	a := uint64(k.SrcIP)<<16 | uint64(k.SrcPort)
	b := uint64(k.DstIP)<<16 | uint64(k.DstPort)
	if a > b {
		return k.Reverse(), 1
	}
	return k, 0
}

// seqLT/seqLE are TCP sequence-space comparisons (wrap-safe).
func seqLT(a, b uint32) bool { return int32(a-b) < 0 }
func seqLE(a, b uint32) bool { return int32(a-b) <= 0 }

// Record folds one TCP segment into its flow. k is the packet's parse
// key (source endpoint first); seg's fields are copied, never
// retained, honoring the packet pool's release contract. Steady state
// (existing flow) is allocation-free.
func (t *Table) Record(k filter.Key, seg *tcp.Segment, rawLen int) {
	now := t.now()
	t.stats.Pkts.Add(1)
	t.expireIdle(now)

	ck, d := canonical(k)
	f := t.active[ck]
	if f == nil {
		// Only segments that consume sequence space (SYN, FIN, or
		// payload) open a flow: the trailing pure ACK of a teardown —
		// arriving after the second FIN closed the record — must not
		// resurrect the flow as a one-packet ghost.
		if seg.SeqLen() == 0 {
			return
		}
		f = t.open(ck, d, now)
	}
	f.last = now
	t.lruMoveBack(f)

	dc := &f.dir[d]
	plen := len(seg.Payload)
	dc.Pkts++
	dc.Bytes += int64(rawLen)
	dc.Payload += int64(plen)
	if plen > 0 {
		t.stats.DataPkts.Add(1)
	}

	retrans := false
	if slen := seg.SeqLen(); slen > 0 {
		end := seg.Seq + slen
		if f.haveSeq[d] && seqLE(end, f.maxSeqEnd[d]) {
			// The segment's whole range is at or below the frontier:
			// a retransmission. (A partial overlap advances the
			// frontier and counts as new data.)
			retrans = true
			dc.Retrans++
			t.stats.Retrans.Add(1)
			f.pendSet[d] = false // Karn: the pending sample is ambiguous now
		} else {
			if !f.haveSeq[d] || seqLT(f.maxSeqEnd[d], end) {
				f.maxSeqEnd[d] = end
				f.haveSeq[d] = true
			}
			if plen > 0 && !f.pendSet[d] {
				f.pendSet[d] = true
				f.pendSeq[d] = end
				f.pendTime[d] = now
			}
		}
	}

	switch {
	case seg.Flags&tcp.FlagSYN != 0 && seg.Flags&tcp.FlagACK == 0:
		dc.Syn++
		f.initDir, f.score = int8(d), ScoreHandshake
		if !f.hsDone && !retrans {
			f.synTime, f.synDir, f.awaitSynAck = now, int8(d), true
		}
		if retrans {
			f.awaitSynAck = false // Karn, handshake edition
		}
	case seg.Flags&(tcp.FlagSYN|tcp.FlagACK) == tcp.FlagSYN|tcp.FlagACK:
		dc.SynAck++
		f.initDir, f.score = int8(1-d), ScoreHandshake
		if f.awaitSynAck && int8(d) != f.synDir && !f.hsDone {
			t.sample(f, now.Sub(f.synTime))
			f.hsDone, f.awaitSynAck = true, false
		}
	}

	if seg.Flags&tcp.FlagACK != 0 {
		o := 1 - d
		if f.pendSet[o] && seqLE(f.pendSeq[o], seg.Ack) {
			t.sample(f, now.Sub(f.pendTime[o]))
			f.pendSet[o] = false
		}
	}

	if seg.Window == 0 && seg.Flags&tcp.FlagRST == 0 {
		dc.ZeroWin++
		t.stats.ZeroWin.Add(1)
	}

	switch {
	case seg.Flags&tcp.FlagRST != 0:
		t.close(f, StateReset)
	case seg.Flags&tcp.FlagFIN != 0:
		f.finSeen[d] = true
		if f.finSeen[0] && f.finSeen[1] {
			t.close(f, StateClosed)
		}
	}
}

// sample folds one RTT measurement into the flow's smoothed estimate
// (the classic srtt += (sample - srtt)/8) and the table aggregates.
func (t *Table) sample(f *flowState, d time.Duration) {
	us := int64(d / time.Microsecond)
	if us < 1 {
		us = 1 // keep "have a sample" distinct from "no sample"
	}
	if f.srtt == 0 {
		f.srtt = us
	} else {
		f.srtt += (us - f.srtt) / 8
	}
	t.stats.RTTSamples.Add(1)
	t.stats.RTTSumMicros.Add(us)
}

// expireIdle lazily closes flows whose last segment predates the idle
// timeout. At most two expire per Record call, bounding the per-packet
// cost while still draining any backlog over a handful of packets.
func (t *Table) expireIdle(now sim.Time) {
	for i := 0; i < 2; i++ {
		h := t.lruHead
		if h == nil || now.Sub(h.last) < t.cfg.IdleTimeout {
			return
		}
		t.close(h, StateIdle)
	}
}

// open admits a new flow, evicting the least-recently-seen one when
// the table is at capacity.
func (t *Table) open(ck filter.Key, d int, now sim.Time) *flowState {
	if len(t.active) >= t.cfg.MaxActive {
		t.close(t.lruHead, StateEvict)
	}
	f := t.freeList
	if f != nil {
		t.freeList = f.next
		*f = flowState{}
	} else {
		f = &flowState{}
	}
	f.key = ck
	f.opened, f.last = now, now
	f.initDir, f.score = int8(d), ScoreGuessed
	t.active[ck] = f
	t.lruPushBack(f)
	t.stats.Opened.Add(1)
	t.stats.Active.Add(1)
	return f
}

// close finalizes f into the closed ring under the given state and
// recycles its accumulator.
func (t *Table) close(f *flowState, state string) {
	rec := f.record(state)
	t.closed[t.closedNext] = rec
	t.closedNext = (t.closedNext + 1) % len(t.closed)
	if t.closedLen < len(t.closed) {
		t.closedLen++
	}
	delete(t.active, f.key)
	t.lruRemove(f)
	f.next = t.freeList
	t.freeList = f
	t.stats.Active.Add(-1)
	t.stats.Closed.Add(1)
	switch state {
	case StateEvict:
		t.stats.Evicted.Add(1)
	case StateIdle:
		t.stats.IdleClosed.Add(1)
	}
}

// record renders f as a Record oriented by the initiator direction.
func (f *flowState) record(state string) Record {
	r := Record{
		Key:        f.key,
		State:      state,
		Score:      f.score,
		Init:       f.dir[0],
		Resp:       f.dir[1],
		SRTTMicros: f.srtt,
		Opened:     f.opened,
		Last:       f.last,
	}
	if f.initDir == 1 {
		r.Key = f.key.Reverse()
		r.Init, r.Resp = f.dir[1], f.dir[0]
	}
	return r
}

// AppendRecords appends every active flow (as StateActive records) and
// every retained closed record to dst and returns it. Owning-goroutine
// only; the data plane gathers per-shard slices under its quiesce
// barrier and merges them — a flow is always whole on one shard, so
// concatenation is the whole merge.
func (t *Table) AppendRecords(dst []Record) []Record {
	for f := t.lruHead; f != nil; f = f.next {
		dst = append(dst, f.record(StateActive))
	}
	start := t.closedNext - t.closedLen
	for i := 0; i < t.closedLen; i++ {
		dst = append(dst, t.closed[(start+i+len(t.closed))%len(t.closed)])
	}
	return dst
}

// ActiveFlows returns the current active-flow count (safe from any
// goroutine).
func (t *Table) ActiveFlows() int64 { return t.stats.Active.Load() }

// SRTT returns the smoothed RTT estimate of k's active flow (either
// orientation; the table canonicalizes). ok is false when the flow is
// unknown or has produced no RTT sample yet. Owning-goroutine only,
// like Record — this is the lookup behind the proxy's
// filter.FlowSampler.
func (t *Table) SRTT(k filter.Key) (time.Duration, bool) {
	ck, _ := canonical(k)
	f := t.active[ck]
	if f == nil || f.srtt == 0 {
		return 0, false
	}
	return time.Duration(f.srtt) * time.Microsecond, true
}

// --- intrusive LRU -----------------------------------------------------------

func (t *Table) lruPushBack(f *flowState) {
	f.prev, f.next = t.lruTail, nil
	if t.lruTail != nil {
		t.lruTail.next = f
	} else {
		t.lruHead = f
	}
	t.lruTail = f
}

func (t *Table) lruRemove(f *flowState) {
	if f.prev != nil {
		f.prev.next = f.next
	} else {
		t.lruHead = f.next
	}
	if f.next != nil {
		f.next.prev = f.prev
	} else {
		t.lruTail = f.prev
	}
	f.prev, f.next = nil, nil
}

func (t *Table) lruMoveBack(f *flowState) {
	if t.lruTail == f {
		return
	}
	t.lruRemove(f)
	t.lruPushBack(f)
}
