package perf

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/filters"
	"repro/internal/ip"
	"repro/internal/netsim"
	"repro/internal/tcp"
)

func pattern(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*31 + i/253)
	}
	return b
}

// mkTCP builds a raw wired→mobile TCP datagram (the E15 packet shape).
func mkTCP(tb testing.TB, seq uint32, payload int) []byte {
	tb.Helper()
	seg := tcp.Segment{SrcPort: 7, DstPort: 5001, Seq: seq, Ack: 1,
		Flags: tcp.FlagACK, Window: 65535, Payload: pattern(payload)}
	h := ip.Header{TTL: 64, Protocol: ip.ProtoTCP, Src: core.WiredAddr, Dst: core.MobileAddr}
	raw, err := h.Marshal(seg.Marshal(core.WiredAddr, core.MobileAddr))
	if err != nil {
		tb.Fatal(err)
	}
	return raw
}

func benchKey() string {
	return fmt.Sprintf("%v 7 %v 5001", core.WiredAddr, core.MobileAddr)
}

// --- packet codec ------------------------------------------------------------

// BenchmarkPacketParse is the pooled decode path: steady state is
// allocation-free because Parse recycles Released packets.
func BenchmarkPacketParse(b *testing.B) {
	raw := mkTCP(b, 1, 1000)
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pkt, err := filter.Parse(raw)
		if err != nil {
			b.Fatal(err)
		}
		pkt.Release()
	}
}

// BenchmarkPacketRemarshal is the modified-packet rebuild: the
// transport layer marshals into pooled scratch, so the only allocation
// is the fresh IP buffer that escapes to the network.
func BenchmarkPacketRemarshal(b *testing.B) {
	raw := mkTCP(b, 1, 1000)
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pkt, err := filter.Parse(raw)
		if err != nil {
			b.Fatal(err)
		}
		pkt.TCP.Window = 4096
		pkt.MarkDirty()
		if err := pkt.Remarshal(); err != nil {
			b.Fatal(err)
		}
		pkt.Release()
	}
}

// --- interception ------------------------------------------------------------

// passThroughSetup builds a proxy whose registry holds one wild-card
// registration that does NOT match the benchmark stream, so every
// packet takes the compiled-classifier miss (pass-through) path.
func passThroughSetup(tb testing.TB) (netsim.Hook, *netsim.Iface, []byte) {
	tb.Helper()
	sys := core.NewSystem(core.Config{Seed: 17})
	sys.MustCommand("load rdrop")
	sys.MustCommand(fmt.Sprintf("add rdrop %v 9999 %v 0 0", core.WiredAddr, core.MobileAddr))
	return sys.ProxyHost.PacketHook(), sys.ProxyHost.Ifaces()[0], mkTCP(tb, 1, 1000)
}

// tcpFilterSetup builds a proxy with the tcp bookkeeping filter
// attached to the benchmark stream's exact key: the packet traverses a
// real filter queue but leaves clean (no remarshal).
func tcpFilterSetup(tb testing.TB) (netsim.Hook, *netsim.Iface, []byte) {
	tb.Helper()
	sys := core.NewSystem(core.Config{Seed: 17})
	sys.MustCommand("load tcp")
	sys.MustCommand("add tcp " + benchKey())
	return sys.ProxyHost.PacketHook(), sys.ProxyHost.Ifaces()[0], mkTCP(tb, 1, 1000)
}

// BenchmarkInterceptPassThrough is the steady-state cost of carrying
// unserviced traffic: parse (pooled), compiled-classifier miss, reuse
// of the emit list. Must run at 0 allocs/op — asserted by
// TestInterceptPassThroughZeroAlloc.
func BenchmarkInterceptPassThrough(b *testing.B) {
	hook, in, raw := passThroughSetup(b)
	hook(raw, in) // warm pool, emit list, and compiled program
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hook(raw, in)
	}
}

// BenchmarkInterceptTCPFilter is the cheapest serviced path: a clean
// traversal of the tcp bookkeeping filter's queue. Must run at
// 0 allocs/op — asserted by TestInterceptTCPFilterZeroAlloc.
func BenchmarkInterceptTCPFilter(b *testing.B) {
	hook, in, raw := tcpFilterSetup(b)
	hook(raw, in)
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hook(raw, in)
	}
}

// TestInterceptPassThroughZeroAlloc gates the pass-through invariant:
// a regression that allocates on the unserviced hot path fails the
// ordinary test run, not just a benchmark inspection.
func TestInterceptPassThroughZeroAlloc(t *testing.T) {
	hook, in, raw := passThroughSetup(t)
	hook(raw, in)
	if allocs := testing.AllocsPerRun(1000, func() { hook(raw, in) }); allocs != 0 {
		t.Fatalf("pass-through intercept allocates %.1f times per packet, want 0", allocs)
	}
}

// TestInterceptTCPFilterZeroAlloc gates the clean filtered path.
func TestInterceptTCPFilterZeroAlloc(t *testing.T) {
	hook, in, raw := tcpFilterSetup(t)
	hook(raw, in)
	if allocs := testing.AllocsPerRun(1000, func() { hook(raw, in) }); allocs != 0 {
		t.Fatalf("tcp-filtered intercept allocates %.1f times per packet, want 0", allocs)
	}
}

// mkTCPRev builds the reverse-direction (mobile→wired) ACK for the
// benchmark stream, acknowledging up to ack.
func mkTCPRev(tb testing.TB, seq, ack uint32) []byte {
	tb.Helper()
	seg := tcp.Segment{SrcPort: 5001, DstPort: 7, Seq: seq, Ack: ack,
		Flags: tcp.FlagACK, Window: 65535}
	h := ip.Header{TTL: 64, Protocol: ip.ProtoTCP, Src: core.MobileAddr, Dst: core.WiredAddr}
	raw, err := h.Marshal(seg.Marshal(core.MobileAddr, core.WiredAddr))
	if err != nil {
		tb.Fatal(err)
	}
	return raw
}

// TestInterceptFlowLogZeroAlloc gates the flow-log analytics plane on
// the serviced intercept path: bidirectional traffic of one
// established flow — advancing data segments that each arm an RTT
// probe, and the ACKs that resolve them — must not allocate. The
// packets are prebuilt in two distinct cycles so AllocsPerRun's
// warm-up invocation consumes the first (opening the flow and growing
// the table) and the measured invocation runs entirely on the
// advancing-frontier/new-data branches, not the retransmission path.
func TestInterceptFlowLogZeroAlloc(t *testing.T) {
	sys := core.NewSystem(core.Config{Seed: 17})
	sys.MustCommand("load tcp")
	sys.MustCommand("add tcp " + benchKey())
	hook := sys.ProxyHost.PacketHook()
	in := sys.ProxyHost.Ifaces()[0]

	const perCycle = 512
	cycles := make([][][]byte, 2)
	seq := uint32(1)
	for c := range cycles {
		for i := 0; i < perCycle; i++ {
			cycles[c] = append(cycles[c], mkTCP(t, seq, 100))
			seq += 100
			cycles[c] = append(cycles[c], mkTCPRev(t, 1, seq))
		}
	}
	cycle := 0
	if allocs := testing.AllocsPerRun(1, func() {
		for _, raw := range cycles[cycle%len(cycles)] {
			hook(raw, in)
		}
		cycle++
	}); allocs != 0 {
		t.Fatalf("flow-logged intercept allocates %.0f times per cycle, want 0", allocs)
	}
	fs := sys.Proxy.FlowStats()
	if fs.Active != 1 || fs.RTTSamples == 0 {
		t.Fatalf("flow log missed the stream: active=%d rtt_samples=%d", fs.Active, fs.RTTSamples)
	}
}

// TestPacketParseReleaseZeroAlloc gates the pooled codec on its own,
// so a pool regression is attributed to Parse rather than the proxy.
func TestPacketParseReleaseZeroAlloc(t *testing.T) {
	raw := mkTCP(t, 1, 1000)
	if pkt, err := filter.Parse(raw); err != nil {
		t.Fatal(err)
	} else {
		pkt.Release()
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		pkt, err := filter.Parse(raw)
		if err != nil {
			t.Fatal(err)
		}
		pkt.Release()
	}); allocs != 0 {
		t.Fatalf("Parse+Release allocates %.1f times per packet, want 0", allocs)
	}
}

// BenchmarkInterceptQueueDepth stacks 0..8 no-op rdrop filters on top
// of the tcp filter: the marginal cost of queue traversal per filter
// (the E15 curve, with allocations reported).
func BenchmarkInterceptQueueDepth(b *testing.B) {
	for _, depth := range []int{0, 1, 2, 4, 8} {
		b.Run(fmt.Sprintf("depth-%d", depth), func(b *testing.B) {
			sys := core.NewSystem(core.Config{Seed: 17})
			sys.MustCommand("load tcp")
			sys.MustCommand("add tcp " + benchKey())
			if depth > 0 {
				sys.MustCommand("load rdrop")
				for i := 0; i < depth; i++ {
					sys.MustCommand(fmt.Sprintf("add rdrop %s 0", benchKey()))
				}
			}
			hook := sys.ProxyHost.PacketHook()
			in := sys.ProxyHost.Ifaces()[0]
			raw := mkTCP(b, 1, 1000)
			hook(raw, in)
			b.SetBytes(int64(len(raw)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hook(raw, in)
			}
		})
	}
}

// --- registry matching -------------------------------------------------------

// BenchmarkRegistryMatch measures the full interception path for a
// packet no registration matches, at increasing registry sizes. The
// compiled classifier answers every lookup in O(1) w.r.t. rule count,
// so all sizes should land on the same cost — there is no separate
// "first-sight" scan anymore (the old negative cache only deferred it).
// BenchmarkRegistryLookup in registry_test.go isolates the classifier
// itself; this one keeps the whole hook in the loop.
func BenchmarkRegistryMatch(b *testing.B) {
	for _, regs := range []int{1, 100, 10000} {
		sys := core.NewSystem(core.Config{Seed: 17})
		sys.MustCommand("load rdrop")
		for i := 0; i < regs; i++ {
			// Wild destination port, source port never equal to the
			// probe's: registered but never matching, never instantiated.
			k := filter.Key{SrcIP: core.WiredAddr, SrcPort: uint16(10000 + i%50000),
				DstIP: core.MobileAddr}
			if err := sys.Proxy.AddFilter("rdrop", k, []string{"0"}); err != nil {
				b.Fatal(err)
			}
		}
		hook := sys.ProxyHost.PacketHook()
		in := sys.ProxyHost.Ifaces()[0]
		raw := mkTCP(b, 1, 1000)
		b.Run(fmt.Sprintf("regs-%d", regs), func(b *testing.B) {
			hook(raw, in) // compile the program, warm pool and emit list
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hook(raw, in)
			}
		})
	}
}

// --- TTSF edit map -----------------------------------------------------------

// chopHalf is a minimal TTSF service for benchmarking: it truncates
// every data payload to half, forcing the TTSF to record one edit per
// segment.
type chopHalf struct{}

func (chopHalf) Name() string              { return "chop" }
func (chopHalf) Priority() filter.Priority { return filter.Low }
func (chopHalf) Description() string       { return "truncate payloads to half (bench helper)" }
func (chopHalf) New(env filter.Env, k filter.Key, args []string) error {
	_, err := env.Attach(k, filter.Hooks{
		Filter: "chop", Priority: filter.Low,
		Out: func(p *filter.Packet) {
			if p.TCP != nil && len(p.TCP.Payload) > 1 {
				p.TCP.Payload = p.TCP.Payload[:len(p.TCP.Payload)/2]
				p.MarkDirty()
			}
		},
	})
	return err
}

// BenchmarkTTSFEditMap measures sequence-space remapping against a
// growing edit log: a pure ACK at the frontier walks every live edit
// in mapOrig. No reverse traffic flows, so nothing is pruned and the
// log size stays fixed at the sub-benchmark's edit count.
func BenchmarkTTSFEditMap(b *testing.B) {
	for _, edits := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("edits-%d", edits), func(b *testing.B) {
			sys := core.NewSystem(core.Config{Seed: 17})
			sys.Catalog.Register("chop", func() filter.Factory { return chopHalf{} })
			sys.MustCommand("load tcp")
			sys.MustCommand("load ttsf")
			sys.MustCommand("load chop")
			sys.MustCommand("add tcp " + benchKey())
			sys.MustCommand("add ttsf " + benchKey())
			sys.MustCommand("add chop " + benchKey())
			hook := sys.ProxyHost.PacketHook()
			in := sys.ProxyHost.Ifaces()[0]
			seq := uint32(1000)
			for i := 0; i < edits; i++ {
				hook(mkTCP(b, seq, 100), in)
				seq += 100
			}
			k := filter.Key{SrcIP: core.WiredAddr, SrcPort: 7,
				DstIP: core.MobileAddr, DstPort: 5001}
			if st, ok := filters.TTSFStatsFor(k); !ok || st.Edits != int64(edits) {
				b.Fatalf("edit log has %d edits, want %d", st.Edits, edits)
			}
			ack := mkTCP(b, seq, 0) // pure ACK at the frontier
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hook(ack, in)
			}
		})
	}
}
