//go:build race

package perf

// raceEnabled reports whether this test binary carries the race
// detector, whose shadow-memory instrumentation allocates on its own
// and breaks AllocsPerRun invariants over large working sets.
const raceEnabled = true
