//go:build !race

package perf

// raceEnabled reports whether this test binary carries the race
// detector; see race_on_test.go.
const raceEnabled = false
