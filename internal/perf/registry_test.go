package perf

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/classifier"
	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/ip"
	"repro/internal/tcp"
	"repro/internal/workload"
)

// lookupSink defeats dead-code elimination in the lookup benchmarks.
var lookupSink int

// registryRules builds n distinct registrations of the proxy's common
// shape — concrete endpoints, wild destination port — so the compiled
// program has one source-port class per rule.
func registryRules(n int) []filter.Key {
	rules := make([]filter.Key, n)
	for i := range rules {
		rules[i] = filter.Key{SrcIP: core.WiredAddr,
			SrcPort: uint16(10000 + i%50000), DstIP: core.MobileAddr}
	}
	return rules
}

// registryProbes returns 16 rotating lookup keys: even slots hit rule
// 0 (source port 10000, present at every registry size), odd slots
// miss (source ports 2001..2015 are never registered).
func registryProbes() []filter.Key {
	probes := make([]filter.Key, 16)
	for i := range probes {
		if i%2 == 0 {
			probes[i] = filter.Key{SrcIP: core.WiredAddr, SrcPort: 10000,
				DstIP: core.MobileAddr, DstPort: uint16(5001 + i)}
		} else {
			probes[i] = filter.Key{SrcIP: core.WiredAddr, SrcPort: uint16(2000 + i),
				DstIP: core.MobileAddr, DstPort: 5001}
		}
	}
	return probes
}

// BenchmarkRegistryLookup isolates the compiled classifier: one
// AppendMatches per op against registries of increasing size. The
// program answers in O(1) w.r.t. rule count — two map probes, two port
// table reads, three cross-table reads — so ns/lookup must stay flat
// as rules grow. scripts/bench_registry_gate.sh enforces that the
// 8000-rule cost stays within 1.25x of the 1-rule cost, at
// 0 allocs/op everywhere.
func BenchmarkRegistryLookup(b *testing.B) {
	for _, rules := range []int{1, 64, 1000, 8000} {
		b.Run(fmt.Sprintf("rules-%d", rules), func(b *testing.B) {
			pr := classifier.Compile(registryRules(rules))
			probes := registryProbes()
			var scratch []int32
			hits := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				scratch = pr.AppendMatches(scratch[:0], probes[i&15])
				hits += len(scratch)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/lookup")
			lookupSink = hits
		})
	}
}

// BenchmarkRegistryChurn is the full short-flow lifecycle under a
// wild-card launcher: per op, one fresh-key flow (SYN handshake, one
// data segment, FIN both ways) traverses the proxy, spawning and —
// once simulated time passes the tcp filter's close grace — reclaiming
// a queue pair. bytes/flow is the end-to-end allocation cost of one
// flow (generator included); the scheduler is pumped every 1024 flows
// so teardown work is paid inside the measured region.
func BenchmarkRegistryChurn(b *testing.B) {
	sys := core.NewSystem(core.Config{Seed: 29})
	sys.MustCommand("load tcp")
	sys.MustCommand("load launcher")
	sys.MustCommand("add launcher 0.0.0.0 0 0.0.0.0 0 tcp")
	hook := sys.ProxyHost.PacketHook()
	in := sys.ProxyHost.Ifaces()[0]
	c := workload.NewChurn(workload.ChurnConfig{DataPkts: 1, PayloadSize: 64})
	for _, raw := range c.NextFlow() { // warm pools and the compiled program
		hook(raw, in)
	}
	sys.Sched.RunFor(30e9)
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	before := ms.TotalAlloc
	pkts := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, raw := range c.NextFlow() {
			hook(raw, in)
			pkts++
		}
		if i%1024 == 1023 {
			sys.Sched.RunFor(30e9)
		}
	}
	sys.Sched.RunFor(30e9)
	b.StopTimer()
	runtime.ReadMemStats(&ms)
	b.ReportMetric(float64(ms.TotalAlloc-before)/float64(b.N), "bytes/flow")
	b.ReportMetric(float64(pkts)/b.Elapsed().Seconds(), "pkts/s")
	if got := sys.Proxy.QueueCount(); got != 0 {
		b.Fatalf("%d queues leaked after churn", got)
	}
}

// TestRegistryLookupZeroAlloc gates the classifier's allocation
// invariant at scale: neither Match nor AppendMatches into a reused
// buffer may allocate against an 8000-rule program.
func TestRegistryLookupZeroAlloc(t *testing.T) {
	pr := classifier.Compile(registryRules(8000))
	probes := registryProbes()
	var scratch []int32
	i := 0
	if allocs := testing.AllocsPerRun(1000, func() {
		k := probes[i&15]
		i++
		if pr.Match(k) != (len(pr.AppendMatches(scratch[:0], k)) > 0) {
			t.Fatal("Match disagrees with AppendMatches")
		}
	}); allocs != 0 {
		t.Fatalf("8000-rule lookup allocates %.1f times per probe, want 0", allocs)
	}
}

// mkMissPkt builds a minimal TCP datagram from an unregistered source
// address, so it can never match registryRules registrations.
func mkMissPkt(tb testing.TB, src ip.Addr, srcPort uint16) []byte {
	tb.Helper()
	seg := tcp.Segment{SrcPort: srcPort, DstPort: 5001, Seq: 1, Ack: 1,
		Flags: tcp.FlagACK, Window: 65535, Payload: []byte("miss")}
	h := ip.Header{TTL: 64, Protocol: ip.ProtoTCP, Src: src, Dst: core.MobileAddr}
	raw, err := h.Marshal(seg.Marshal(src, core.MobileAddr))
	if err != nil {
		tb.Fatal(err)
	}
	return raw
}

// TestRegistryMissChurnZeroAlloc is the negative-cache regression
// pinned as an allocation invariant: more than 2^16 packets on
// distinct never-matching stream keys traverse the full interception
// path against an 8000-rule registry, and the proxy must allocate
// nothing. The deleted negative cache failed this exactly — it
// inserted an entry per distinct key and threw the whole cache away at
// 2^16 entries, re-running the linear registry scan for every live
// flow (the mass-eviction cliff).
func TestRegistryMissChurnZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates across this working set")
	}
	sys := core.NewSystem(core.Config{Seed: 31})
	sys.MustCommand("load rdrop")
	for _, k := range registryRules(8000) {
		if err := sys.Proxy.AddFilter("rdrop", k, []string{"0"}); err != nil {
			t.Fatal(err)
		}
	}
	hook := sys.ProxyHost.PacketHook()
	in := sys.ProxyHost.Ifaces()[0]

	const keys = 1<<16 + 4096
	pkts := make([][]byte, keys)
	for i := range pkts {
		// 64511 ports per source address, then advance the address:
		// every packet is a distinct first-sight stream key.
		src := ip.AddrFrom4(10, 0, 0, 1) + ip.Addr(i/64511)
		pkts[i] = mkMissPkt(t, src, uint16(1024+i%64511))
	}
	hook(pkts[0], in) // warm pool, emit list, compiled program
	if allocs := testing.AllocsPerRun(1, func() {
		for _, raw := range pkts {
			hook(raw, in)
		}
	}); allocs != 0 {
		t.Fatalf("miss churn over %d distinct keys allocated %.0f times, want 0", keys, allocs)
	}
	if sys.Proxy.QueueCount() != 0 {
		t.Fatal("miss churn built filter queues")
	}
}
