package perf

import (
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/dataplane"
	"repro/internal/filter"
	"repro/internal/filters"
	"repro/internal/ip"
	"repro/internal/tcp"
)

// mkTCPFlow is mkTCP with a caller-chosen source port, so benchmarks
// can spread traffic across distinct streams (and therefore shards).
func mkTCPFlow(tb testing.TB, srcPort uint16, seq uint32, payload int) []byte {
	tb.Helper()
	seg := tcp.Segment{SrcPort: srcPort, DstPort: 5001, Seq: seq, Ack: 1,
		Flags: tcp.FlagACK, Window: 65535, Payload: pattern(payload)}
	h := ip.Header{TTL: 64, Protocol: ip.ProtoTCP, Src: core.WiredAddr, Dst: core.MobileAddr}
	raw, err := h.Marshal(seg.Marshal(core.WiredAddr, core.MobileAddr))
	if err != nil {
		tb.Fatal(err)
	}
	return raw
}

// shardedPlane builds a concurrent plane with the tcp bookkeeping
// filter plus `depth` no-op rdrop filters on every stream — the same
// per-packet work as the E15 queue-depth benchmarks, now spread over
// shards. batch is the ring-slot batch size (0 = default).
func shardedPlane(tb testing.TB, shards, depth, batch int, sink dataplane.Sink) *dataplane.Plane {
	tb.Helper()
	cat := filter.NewCatalog()
	filters.RegisterAll(cat)
	pl := dataplane.NewConcurrent(dataplane.ConcurrentConfig{
		Shards: shards, Catalog: cat, Seed: 17, RingSize: 1024,
		BatchSize: batch, Sink: sink,
	})
	cmds := []string{"load tcp", "load rdrop", "add tcp 0.0.0.0 0 0.0.0.0 0"}
	for i := 0; i < depth; i++ {
		cmds = append(cmds, "add rdrop 0.0.0.0 0 0.0.0.0 0 0")
	}
	for _, c := range cmds {
		if out := pl.Command(c); len(out) >= 5 && out[:5] == "error" {
			tb.Fatalf("%s: %s", c, out)
		}
	}
	return pl
}

// benchSharded is the shared body of the sharded throughput
// benchmarks: GOMAXPROCS-many shards behind the flow-steering
// dispatcher, 4 flows per shard, tcp + 4 rdrop filters per stream.
func benchSharded(b *testing.B, batch int) {
	shards := runtime.GOMAXPROCS(0)
	var emitted atomic.Int64
	pl := shardedPlane(b, shards, 4, batch, func(_ int, out [][]byte) {
		emitted.Add(int64(len(out)))
	})
	defer pl.Close()
	flows := make([][]byte, 4*shards)
	for i := range flows {
		flows[i] = mkTCPFlow(b, uint16(1000+i), 1, 1000)
	}
	for _, raw := range flows { // build queues, warm pools and caches
		pl.Dispatch(raw)
	}
	pl.Drain()
	b.SetBytes(int64(len(flows[0])))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl.Dispatch(flows[i%len(flows)])
	}
	pl.Drain()
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
	if got := emitted.Load(); got != int64(b.N+len(flows)) {
		b.Fatalf("emitted %d packets, want %d", got, b.N+len(flows))
	}
}

// BenchmarkShardedIntercept is the multi-core aggregate interception
// rate through the batched pipeline (default batch size). Run with
// -cpu 1,2,4,8 to sweep the shard count; `make bench-shard` records
// the curve in BENCH_shard.json and `make bench-gate` enforces it.
// The steady state must stay 0 allocs/op: arenas and delivery buffers
// recycle, packets are never copied.
func BenchmarkShardedIntercept(b *testing.B) {
	benchSharded(b, 0)
}

// BenchmarkShardedInterceptBatch1 is the same pipeline degenerated to
// one packet per ring slot — the per-packet handoff the pre-batching
// plane paid on every packet. The gap to BenchmarkShardedIntercept is
// the amortization win; on a single-core host it is the difference
// between collapsing under futex traffic and keeping pace.
func BenchmarkShardedInterceptBatch1(b *testing.B) {
	benchSharded(b, 1)
}

// BenchmarkSteerKey is the dispatcher's per-packet overhead on its
// own: key extraction plus the shard hash.
func BenchmarkSteerKey(b *testing.B) {
	raw := mkTCP(b, 1, 1000)
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k, ok := filter.SteerKey(raw)
		if !ok {
			b.Fatal("SteerKey failed")
		}
		if dataplane.ShardOf(k, 8) > 7 {
			b.Fatal("impossible shard")
		}
	}
}

// TestShardedInlineZeroAlloc gates the sharded steady-state invariant:
// steering (SteerKey + ShardOf) plus the owning shard's interception
// must stay allocation-free, exactly like the single-proxy hot path.
func TestShardedInlineZeroAlloc(t *testing.T) {
	sys := core.NewSystem(core.Config{Seed: 17, Shards: 4})
	sys.MustCommand("load tcp")
	sys.MustCommand("add tcp 0.0.0.0 0 0.0.0.0 0")
	hook := sys.ProxyHost.PacketHook()
	in := sys.ProxyHost.Ifaces()[0]
	flows := make([][]byte, 8)
	for i := range flows {
		flows[i] = mkTCPFlow(t, uint16(1000+i), 1, 1000)
		hook(flows[i], in) // build each stream's queue outside the measurement
	}
	i := 0
	if allocs := testing.AllocsPerRun(1000, func() {
		hook(flows[i%len(flows)], in)
		i++
	}); allocs != 0 {
		t.Fatalf("sharded inline intercept allocates %.1f times per packet, want 0", allocs)
	}
}

// TestShardedConcurrentNoLoss sanity-checks the benchmark harness
// itself: every dispatched packet comes out exactly once.
func TestShardedConcurrentNoLoss(t *testing.T) {
	var emitted atomic.Int64
	pl := shardedPlane(t, 4, 2, 16, func(_ int, out [][]byte) {
		emitted.Add(int64(len(out)))
	})
	defer pl.Close()
	flows := make([][]byte, 16)
	for i := range flows {
		flows[i] = mkTCPFlow(t, uint16(1000+i), 1, 200)
	}
	const n = 5000
	for i := 0; i < n; i++ {
		pl.Dispatch(flows[i%len(flows)])
	}
	pl.Drain()
	if got := emitted.Load(); got != n {
		t.Fatalf("emitted %d packets, dispatched %d", got, n)
	}
	if snap := pl.StatsSnapshot(); snap.Intercepted != n {
		t.Fatalf("intercepted %d, want %d", snap.Intercepted, n)
	}
}
