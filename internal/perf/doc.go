// Package perf holds the micro-benchmarks and allocation gates for
// the packet hot path: parse/remarshal cost, interception with filter
// queues of increasing depth, registry matching at increasing registry
// sizes (first-sight scan vs the negative-match cache), and TTSF
// edit-map lookup at increasing edit counts.
//
// The pass-through invariants — BenchmarkInterceptPassThrough and
// BenchmarkInterceptTCPFilter run at 0 allocs/op — are asserted by
// tests in this package via testing.AllocsPerRun, so a regression
// fails `go test ./...`, not just a benchmark eyeball.
//
// Run `./bench.sh` (or `make bench`) for benchstat-ready output:
// every benchmark reports allocations and runs with -count=10.
package perf
