package media_test

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/media"
)

func TestFrameRoundTrip(t *testing.T) {
	f := media.Frame{Seq: 42, Layer: 3, Data: []byte("enhancement bits")}
	b := media.MarshalFrame(f)
	g, err := media.UnmarshalFrame(b)
	if err != nil {
		t.Fatal(err)
	}
	if g.Seq != 42 || g.Layer != 3 || !bytes.Equal(g.Data, f.Data) {
		t.Fatalf("round trip: %+v", g)
	}
	if _, err := media.UnmarshalFrame(b[:4]); err == nil {
		t.Fatal("short frame accepted")
	}
	if _, err := media.UnmarshalFrame(b[:len(b)-2]); err == nil {
		t.Fatal("truncated data accepted")
	}
}

func TestLayeredSourceShape(t *testing.T) {
	src := media.NewLayeredSource(3, 100, 1)
	for i := 0; i < 5; i++ {
		fs := src.Next()
		if len(fs) != 3 {
			t.Fatalf("instant %d has %d frames", i, len(fs))
		}
		for l, f := range fs {
			if f.Seq != uint32(i) || int(f.Layer) != l {
				t.Fatalf("frame %d/%d: %+v", i, l, f)
			}
			want := 100 << l
			if len(f.Data) != want {
				t.Fatalf("layer %d size %d, want %d", l, len(f.Data), want)
			}
		}
	}
	// Determinism across sources with the same seed.
	a := media.NewLayeredSource(2, 50, 9).Next()
	b := media.NewLayeredSource(2, 50, 9).Next()
	if !bytes.Equal(a[0].Data, b[0].Data) {
		t.Fatal("layered source not deterministic per seed")
	}
	if media.NewLayeredSource(0, 10, 1).Layers != 1 {
		t.Fatal("layer floor not applied")
	}
}

func TestTileRoundTripAndValidation(t *testing.T) {
	tile := media.ImageTile{X: 0, Y: 8, W: 4, H: 2, Mode: media.ModeRGB,
		Pixels: bytes.Repeat([]byte{10, 20, 30}, 8)}
	b, err := media.MarshalTile(tile)
	if err != nil {
		t.Fatal(err)
	}
	g, err := media.UnmarshalTile(b)
	if err != nil {
		t.Fatal(err)
	}
	if g.W != 4 || g.H != 2 || g.Mode != media.ModeRGB || !bytes.Equal(g.Pixels, tile.Pixels) {
		t.Fatalf("round trip: %+v", g)
	}
	// Wrong pixel count rejected.
	tile.Pixels = tile.Pixels[:10]
	if _, err := media.MarshalTile(tile); err == nil {
		t.Fatal("short pixel buffer accepted")
	}
	if _, err := media.UnmarshalTile(b[:len(b)-1]); err == nil {
		t.Fatal("truncated tile accepted")
	}
}

func TestToMonoLuma(t *testing.T) {
	// Pure red, green, blue pixels: BT.601 weights.
	tile := media.ImageTile{W: 3, H: 1, Mode: media.ModeRGB,
		Pixels: []byte{255, 0, 0, 0, 255, 0, 0, 0, 255}}
	mono := media.ToMono(tile)
	if mono.Mode != media.ModeMono || len(mono.Pixels) != 3 {
		t.Fatalf("mono tile: %+v", mono)
	}
	want := []byte{76, 149, 29} // 0.299, 0.587, 0.114 of 255
	for i, w := range want {
		if d := int(mono.Pixels[i]) - int(w); d < -1 || d > 1 {
			t.Fatalf("luma[%d] = %d, want ≈%d", i, mono.Pixels[i], w)
		}
	}
	// Mono input passes through unchanged.
	again := media.ToMono(mono)
	if !bytes.Equal(again.Pixels, mono.Pixels) {
		t.Fatal("ToMono not idempotent")
	}
}

func TestTestImageTilesCoverImage(t *testing.T) {
	tiles := media.TestImageTiles(32, 20, 8, 4)
	rows := 0
	for _, tile := range tiles {
		if tile.W != 32 || tile.Mode != media.ModeRGB {
			t.Fatalf("tile shape: %+v", tile)
		}
		rows += int(tile.H)
	}
	if rows != 20 {
		t.Fatalf("tiles cover %d rows, want 20", rows)
	}
	// Last tile is the 4-row remainder.
	if tiles[len(tiles)-1].H != 4 {
		t.Fatalf("remainder tile H = %d", tiles[len(tiles)-1].H)
	}
}

func TestRichTextRoundTrip(t *testing.T) {
	rich := media.EncodeRich("hello", 0x99)
	if len(rich) != 10 {
		t.Fatalf("rich length %d", len(rich))
	}
	if string(media.RichToASCII(rich)) != "hello" {
		t.Fatalf("ascii: %q", media.RichToASCII(rich))
	}
	// Odd-length input keeps the trailing char.
	if string(media.RichToASCII(rich[:9])) != "hello" {
		t.Fatalf("odd ascii: %q", media.RichToASCII(rich[:9]))
	}
}

func TestRichTextProperty(t *testing.T) {
	f := func(text string, style byte) bool {
		return string(media.RichToASCII(media.EncodeRich(text, style))) == text
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	f := func(seq uint32, layer uint8, data []byte) bool {
		if len(data) > 60000 {
			data = data[:60000]
		}
		g, err := media.UnmarshalFrame(media.MarshalFrame(media.Frame{Seq: seq, Layer: layer, Data: data}))
		return err == nil && g.Seq == seq && g.Layer == layer && bytes.Equal(g.Data, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
