// Package media defines the synthetic application data formats the
// thesis's data-manipulation services operate on (§8.3): hierarchical
// layered real-time frames (for the hierarchical-discard filter),
// image tiles (for colour→monochrome data-type translation), and
// styled rich text (for rich-text→ASCII translation).
//
// These stand in for the audio/video and document formats the thesis
// motivates; what matters to the proxy services is their structure —
// a layer hierarchy, per-pixel colour, in-band styling — not their
// codec fidelity.
package media

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
)

// Frame is one unit of a layered real-time stream (§8.3.2). Layer 0 is
// the base layer the application needs for minimal operation; higher
// layers refine quality and may be discarded under low QoS.
type Frame struct {
	Seq   uint32 // frame sequence number (one per media instant)
	Layer uint8  // 0 = base, increasing = enhancement
	Data  []byte
}

// frameHeaderLen is the encoded frame header size.
const frameHeaderLen = 7

// ErrTruncated reports a buffer too short for the declared content.
var ErrTruncated = errors.New("media: truncated")

// MarshalFrame encodes a frame.
func MarshalFrame(f Frame) []byte {
	b := make([]byte, frameHeaderLen+len(f.Data))
	binary.BigEndian.PutUint32(b[0:], f.Seq)
	b[4] = f.Layer
	binary.BigEndian.PutUint16(b[5:], uint16(len(f.Data)))
	copy(b[frameHeaderLen:], f.Data)
	return b
}

// UnmarshalFrame decodes a frame; Data aliases b.
func UnmarshalFrame(b []byte) (Frame, error) {
	var f Frame
	if len(b) < frameHeaderLen {
		return f, ErrTruncated
	}
	f.Seq = binary.BigEndian.Uint32(b[0:])
	f.Layer = b[4]
	n := int(binary.BigEndian.Uint16(b[5:]))
	if len(b) < frameHeaderLen+n {
		return f, ErrTruncated
	}
	f.Data = b[frameHeaderLen : frameHeaderLen+n]
	return f, nil
}

// LayeredSource generates a deterministic layered stream: each media
// instant emits one frame per layer, the base layer small and
// essential, enhancement layers progressively larger (as subband video
// coders behave).
type LayeredSource struct {
	Layers    int // total layers (≥1)
	BaseBytes int // payload size of layer 0
	rng       *rand.Rand
	seq       uint32
}

// NewLayeredSource creates a source with the given shape.
func NewLayeredSource(layers, baseBytes int, seed int64) *LayeredSource {
	if layers < 1 {
		layers = 1
	}
	return &LayeredSource{Layers: layers, BaseBytes: baseBytes, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the frames of the next media instant, base layer first.
func (s *LayeredSource) Next() []Frame {
	frames := make([]Frame, s.Layers)
	seq := s.seq
	s.seq++
	for l := 0; l < s.Layers; l++ {
		size := s.BaseBytes << l // each enhancement layer doubles
		data := make([]byte, size)
		s.rng.Read(data)
		frames[l] = Frame{Seq: seq, Layer: uint8(l), Data: data}
	}
	return frames
}

// --- image tiles ----------------------------------------------------------------

// Pixel modes for ImageTile.
const (
	ModeRGB  = 0 // 3 bytes per pixel
	ModeMono = 1 // 1 byte per pixel (luminance)
)

// ImageTile is a rectangular piece of an image in transit, the unit
// the data-type translation filter converts (§8.3.3: "images can be
// converted from colour to monochrome").
type ImageTile struct {
	X, Y, W, H uint16
	Mode       byte
	Pixels     []byte
}

// tileHeaderLen is the encoded tile header size.
const tileHeaderLen = 9

// bytesPerPixel returns the pixel stride for a mode.
func bytesPerPixel(mode byte) int {
	if mode == ModeRGB {
		return 3
	}
	return 1
}

// MarshalTile encodes a tile.
func MarshalTile(t ImageTile) ([]byte, error) {
	want := int(t.W) * int(t.H) * bytesPerPixel(t.Mode)
	if len(t.Pixels) != want {
		return nil, fmt.Errorf("media: tile %dx%d mode %d needs %d pixel bytes, have %d",
			t.W, t.H, t.Mode, want, len(t.Pixels))
	}
	b := make([]byte, tileHeaderLen+len(t.Pixels))
	binary.BigEndian.PutUint16(b[0:], t.X)
	binary.BigEndian.PutUint16(b[2:], t.Y)
	binary.BigEndian.PutUint16(b[4:], t.W)
	binary.BigEndian.PutUint16(b[6:], t.H)
	b[8] = t.Mode
	copy(b[tileHeaderLen:], t.Pixels)
	return b, nil
}

// UnmarshalTile decodes a tile; Pixels aliases b.
func UnmarshalTile(b []byte) (ImageTile, error) {
	var t ImageTile
	if len(b) < tileHeaderLen {
		return t, ErrTruncated
	}
	t.X = binary.BigEndian.Uint16(b[0:])
	t.Y = binary.BigEndian.Uint16(b[2:])
	t.W = binary.BigEndian.Uint16(b[4:])
	t.H = binary.BigEndian.Uint16(b[6:])
	t.Mode = b[8]
	want := int(t.W) * int(t.H) * bytesPerPixel(t.Mode)
	if len(b) < tileHeaderLen+want {
		return t, ErrTruncated
	}
	t.Pixels = b[tileHeaderLen : tileHeaderLen+want]
	return t, nil
}

// ToMono converts an RGB tile to monochrome using the ITU-R BT.601
// luma weights. Mono tiles are returned unchanged.
func ToMono(t ImageTile) ImageTile {
	if t.Mode != ModeRGB {
		return t
	}
	n := int(t.W) * int(t.H)
	mono := make([]byte, n)
	for i := 0; i < n; i++ {
		r := int(t.Pixels[3*i])
		g := int(t.Pixels[3*i+1])
		b := int(t.Pixels[3*i+2])
		mono[i] = byte((299*r + 587*g + 114*b) / 1000)
	}
	return ImageTile{X: t.X, Y: t.Y, W: t.W, H: t.H, Mode: ModeMono, Pixels: mono}
}

// TestImageTiles cuts a deterministic synthetic w×h RGB image into
// tiles of tileH rows each, for driving the translation filter.
func TestImageTiles(w, h, tileH int, seed int64) []ImageTile {
	rng := rand.New(rand.NewSource(seed))
	var tiles []ImageTile
	for y := 0; y < h; y += tileH {
		rows := tileH
		if y+rows > h {
			rows = h - y
		}
		px := make([]byte, w*rows*3)
		rng.Read(px)
		tiles = append(tiles, ImageTile{X: 0, Y: uint16(y), W: uint16(w), H: uint16(rows), Mode: ModeRGB, Pixels: px})
	}
	return tiles
}

// --- rich text -----------------------------------------------------------------

// EncodeRich encodes text as (char, style) byte pairs — a toy stand-in
// for PostScript-like formatted documents (§8.3.3: "text from
// PostScript to ASCII").
func EncodeRich(text string, style byte) []byte {
	b := make([]byte, 0, 2*len(text))
	for i := 0; i < len(text); i++ {
		b = append(b, text[i], style)
	}
	return b
}

// RichToASCII strips the style bytes, halving the size. Odd-length
// input keeps its trailing character.
func RichToASCII(rich []byte) []byte {
	out := make([]byte, 0, (len(rich)+1)/2)
	for i := 0; i < len(rich); i += 2 {
		out = append(out, rich[i])
	}
	return out
}
