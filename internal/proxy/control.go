package proxy

import (
	"fmt"
	"strings"
	"time"
	"unicode/utf8"

	"repro/internal/cmdspec"
	"repro/internal/filter"
	"repro/internal/flowlog"
	"repro/internal/ip"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/tcp"
)

// ControlPort is the TCP port the SP command interface listens on
// (thesis §5.3: "a telnet session to a port (12000) on the SP
// machine").
const ControlPort = 12000

// Command executes one SP command line and returns its output. Per the
// thesis the interface is fail-silent: successful load prints the
// registered name, report prints its listing, and everything else
// prints nothing. Errors return a brief diagnostic (a small usability
// deviation, documented in DESIGN.md).
//
// Commands:
//
//	load <filter-lib>
//	remove <filter-lib>
//	add <filter> <srcIP> <srcPort> <dstIP> <dstPort> [args...]
//	delete <filter> <srcIP> <srcPort> <dstIP> <dstPort>
//	report [<filter>]
func (p *Proxy) Command(line string) string {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return ""
	}
	p.obs.Emit("proxy", "command", fields[0], obs.F("args", len(fields)-1))
	return p.exec(fields)
}

// Exec runs one command line without emitting the "proxy/command"
// event. The sharded data plane broadcasts a mutation by Exec-ing it
// on every shard after emitting a single command event itself, so the
// event log does not depend on the shard count.
func (p *Proxy) Exec(line string) string {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return ""
	}
	return p.exec(fields)
}

// execHandlers dispatches command names to proxy operations. The
// grammar — arity bounds, usage diagnostics, help, mutation class —
// comes from the shared cmdspec table, so this map holds only the
// semantics. Table entries without a handler here (auth, which the
// ControlSession intercepts, and plane extensions like policy) fall
// through to the unknown-command diagnostic on a bare proxy.
var execHandlers = map[string]func(p *Proxy, rest []string) string{
	"load": func(p *Proxy, rest []string) string {
		name, err := p.LoadFilter(rest[0])
		if err != nil {
			return fmt.Sprintf("error: %v\n", err)
		}
		return name + "\n"
	},
	"remove": func(p *Proxy, rest []string) string {
		if err := p.UnloadFilter(rest[0]); err != nil {
			return fmt.Sprintf("error: %v\n", err)
		}
		return ""
	},
	"add": func(p *Proxy, rest []string) string {
		k, err := filter.ParseKey(rest[1:5])
		if err != nil {
			return fmt.Sprintf("error: %v\n", err)
		}
		if err := p.AddFilter(rest[0], k, rest[5:]); err != nil {
			return fmt.Sprintf("error: %v\n", err)
		}
		return ""
	},
	"delete": func(p *Proxy, rest []string) string {
		k, err := filter.ParseKey(rest[1:5])
		if err != nil {
			return fmt.Sprintf("error: %v\n", err)
		}
		if err := p.DeleteFilter(rest[0], k); err != nil {
			return fmt.Sprintf("error: %v\n", err)
		}
		return ""
	},
	// service <name> <filter[:args]>... — define a composition
	// (thesis §10.2.1's layered service abstraction).
	"service": func(p *Proxy, rest []string) string {
		if err := p.DefineService(rest[0], rest[1:]); err != nil {
			return fmt.Sprintf("error: %v\n", err)
		}
		return ""
	},
	"unservice": func(p *Proxy, rest []string) string {
		if err := p.UndefineService(rest[0]); err != nil {
			return fmt.Sprintf("error: %v\n", err)
		}
		return ""
	},
	"services": func(p *Proxy, rest []string) string {
		var b strings.Builder
		for _, n := range p.Services() {
			specs, _ := p.ServiceSpec(n)
			fmt.Fprintf(&b, "%s = %s\n", n, strings.Join(specs, " "))
		}
		return b.String()
	},
	"report": func(p *Proxy, rest []string) string {
		name := ""
		if len(rest) > 0 {
			name = rest[0]
		}
		out, err := p.Report(name)
		if err != nil {
			return fmt.Sprintf("error: %v\n", err)
		}
		return out
	},
	// filters: extension used by Kati — the loaded pool and what the
	// catalog could still load.
	"filters": func(p *Proxy, rest []string) string {
		var b strings.Builder
		for _, n := range p.LoadedFilters() {
			desc := ""
			if f, ok := p.pool[n]; ok {
				desc = "\t" + f.Description()
			}
			fmt.Fprintf(&b, "loaded: %s%s\n", n, desc)
		}
		loaded := map[string]bool{}
		for _, n := range p.LoadedFilters() {
			loaded[n] = true
		}
		for _, n := range p.Available() {
			if !loaded[n] {
				fmt.Fprintf(&b, "available: %s\n", n)
			}
		}
		return b.String()
	},
	// streams: extension used by Kati — per-stream accounting.
	"streams": func(p *Proxy, rest []string) string {
		var b strings.Builder
		for _, si := range p.Streams() {
			fmt.Fprintf(&b, "%s\t[%s]\t%d pkts %d bytes\n",
				si.Key, strings.Join(si.Filters, ","), si.Packets, si.Bytes)
		}
		return b.String()
	},
	// stats: extension used by Kati — the unified metrics snapshot
	// (proxy, links, TCP stacks, EEM — whatever is registered).
	"stats": func(p *Proxy, rest []string) string {
		if p.metrics == nil {
			return "error: no metrics registry attached\n"
		}
		return p.metrics.Table("proxy statistics").String()
	},
	// events: extension used by Kati — the tail of the observability
	// event log (default last 20 events).
	"events": func(p *Proxy, rest []string) string {
		if p.obs == nil {
			return "error: no event bus attached\n"
		}
		n := 20
		if len(rest) > 0 {
			if _, err := fmt.Sscanf(rest[0], "%d", &n); err != nil {
				spec, _ := cmdspec.Lookup("events")
				return spec.UsageError()
			}
		}
		return p.obs.Tail(n)
	},
	// flows: per-flow L4 records from the flow-log analytics plane
	// (default display bound flowlog.DefaultShow).
	"flows": func(p *Proxy, rest []string) string {
		n := flowlog.DefaultShow
		if len(rest) > 0 {
			if _, err := fmt.Sscanf(rest[0], "%d", &n); err != nil {
				spec, _ := cmdspec.Lookup("flows")
				return spec.UsageError()
			}
		}
		return flowlog.Render(p.AppendFlowRecords(nil), n)
	},
	"help": func(p *Proxy, rest []string) string {
		return cmdspec.HelpLine()
	},
}

func (p *Proxy) exec(fields []string) string {
	cmd, rest := fields[0], fields[1:]
	h, ok := execHandlers[cmd]
	if !ok {
		return fmt.Sprintf("error: unknown command %q\n", cmd)
	}
	spec, _ := cmdspec.Lookup(cmd)
	if !spec.ArityOK(len(rest)) {
		return spec.UsageError()
	}
	return h(p, rest)
}

// Commander executes SP command lines — implemented by *Proxy and by
// the sharded dataplane.Plane, so the control interface (and Kati
// behind it) works unchanged against either.
type Commander interface {
	Command(line string) string
}

// Control-session bounds: the control plane sits at a sensitive
// network position, so a wedged or malicious client must not be able
// to hold it by streaming newline-less bytes or parking a dead
// session.
const (
	// MaxControlLine bounds one command line. A session that buffers
	// this much without a newline gets a clear error and is severed;
	// a framed line over the bound is rejected but the session lives.
	MaxControlLine = 4096
	// ControlIdleTimeout severs a session that completes no command
	// line for this long. Generous enough for a human at a telnet
	// prompt, small enough that abandoned sessions don't accumulate.
	ControlIdleTimeout = 2 * time.Minute
)

// serveControlConn wires the shared line framing, size bounds, UTF-8
// validation, and idle deadline of one control connection; exec runs
// each complete, validated command line.
func serveControlConn(stack *tcp.Stack, c *tcp.Conn, exec func(string) string) {
	var buf []byte
	clock := stack.Clock()
	var idle *sim.Timer
	armIdle := func() {
		if idle != nil {
			idle.Stop()
		}
		idle = clock.After(ControlIdleTimeout, func() { c.Abort() })
	}
	armIdle()
	c.OnData = func(b []byte) {
		buf = append(buf, b...)
		for {
			i := indexByte(buf, '\n')
			if i < 0 {
				if len(buf) > MaxControlLine {
					// Unframed flood: no newline in sight and the
					// buffer is past the bound. Tell the client why,
					// then sever — buffering further is the DoS.
					c.Write([]byte(fmt.Sprintf("error: command line exceeds %d bytes\n", MaxControlLine)))
					idle.Stop()
					buf = nil
					c.Abort()
				}
				return
			}
			line := strings.TrimRight(string(buf[:i]), "\r")
			buf = buf[i+1:]
			armIdle()
			if len(line) > MaxControlLine {
				if err := c.Write([]byte(fmt.Sprintf("error: command line exceeds %d bytes\n", MaxControlLine))); err != nil {
					return
				}
				continue
			}
			if !utf8.ValidString(line) {
				if err := c.Write([]byte("error: command line is not valid UTF-8\n")); err != nil {
					return
				}
				continue
			}
			if out := exec(line); out != "" {
				if err := c.Write([]byte(out)); err != nil {
					return
				}
			}
		}
	}
	c.OnRemoteClose = func() { c.Close() }
	c.OnClose = func(error) {
		if idle != nil {
			idle.Stop()
		}
	}
}

// ServeControl exposes the command interface on the given simulated
// TCP stack, one command per line, mirroring the thesis's telnet
// interface on port 12000.
func ServeControl(stack *tcp.Stack, port uint16, p Commander) error {
	_, err := stack.Listen(port, func(c *tcp.Conn) {
		serveControlConn(stack, c, p.Command)
	})
	return err
}

func indexByte(b []byte, c byte) int {
	for i, v := range b {
		if v == c {
			return i
		}
	}
	return -1
}

// ControlPolicy restricts who may use the control interface — the
// thesis's chapter 9 concern: a proxy executes third-party filter code
// at a sensitive network position, so service control must not be open
// to arbitrary hosts.
type ControlPolicy struct {
	// AllowedPeers lists source addresses permitted to connect; empty
	// means any peer may connect.
	AllowedPeers []ip.Addr
	// Token, when non-empty, must be presented with `auth <token>`
	// before any mutating command (load/remove/add/delete/service).
	// Read-only commands (report, streams, services, help) are always
	// available to connected peers.
	Token string
}

// peerAllowed reports whether addr may open a control session.
func (cp *ControlPolicy) peerAllowed(addr ip.Addr) bool {
	if cp == nil || len(cp.AllowedPeers) == 0 {
		return true
	}
	for _, a := range cp.AllowedPeers {
		if a == addr {
			return true
		}
	}
	return false
}

// mutating reports whether a command changes proxy state (the shared
// grammar table is authoritative).
func mutating(cmd string) bool { return cmdspec.Mutating(cmd) }

// ControlSession wraps Command with the per-connection authentication
// state of a ControlPolicy.
type ControlSession struct {
	p      Commander
	policy *ControlPolicy
	authed bool
}

// NewControlSession creates a session under the given policy (nil
// policy = fully open, matching the thesis's prototype).
func NewControlSession(p Commander, policy *ControlPolicy) *ControlSession {
	return &ControlSession{p: p, policy: policy}
}

// Exec runs one command line under the session's authentication state.
func (s *ControlSession) Exec(line string) string {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return ""
	}
	if fields[0] == "auth" {
		if s.policy == nil || s.policy.Token == "" {
			return "error: authentication not enabled\n"
		}
		if len(fields) == 2 && fields[1] == s.policy.Token {
			s.authed = true
			return ""
		}
		return "error: bad token\n"
	}
	if s.policy != nil && s.policy.Token != "" && !s.authed && mutating(fields[0]) {
		return "error: authentication required (auth <token>)\n"
	}
	return s.p.Command(line)
}

// ServeControlWithPolicy is ServeControl with per-peer access control
// and per-session authentication.
func ServeControlWithPolicy(stack *tcp.Stack, port uint16, p Commander, policy *ControlPolicy) error {
	_, err := stack.Listen(port, func(c *tcp.Conn) {
		if !policy.peerAllowed(c.RemoteAddr()) {
			c.Abort()
			return
		}
		sess := NewControlSession(p, policy)
		serveControlConn(stack, c, sess.Exec)
	})
	return err
}
