package proxy_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/filter"
	"repro/internal/ip"
	"repro/internal/netsim"
	"repro/internal/proxy"
	"repro/internal/sim"
	"repro/internal/tcp"
)

func mkDgram(t testing.TB, srcPort uint16, seq uint32, payload []byte) []byte {
	t.Helper()
	src := ip.MustParseAddr("11.11.10.99")
	dst := ip.MustParseAddr("11.11.10.10")
	seg := tcp.Segment{SrcPort: srcPort, DstPort: 5001, Seq: seq, Ack: 1,
		Flags: tcp.FlagACK, Window: 65535, Payload: payload}
	h := ip.Header{TTL: 64, Protocol: ip.ProtoTCP, Src: src, Dst: dst}
	raw, err := h.Marshal(seg.Marshal(src, dst))
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestInterceptAppendBufferStability pins the contract the batched
// data plane depends on: buffers appended by InterceptAppend stay
// intact across any number of subsequent interceptions — whether they
// were the caller's raw passthrough or freshly marshalled modified
// packets — because the proxy never reuses them. (Intercept's own emit
// slice is the reusable thing; InterceptAppend exists so a shard can
// accumulate a whole batch's output before one sink delivery.)
func TestInterceptAppendBufferStability(t *testing.T) {
	cat := filter.NewCatalog()
	cat.Register("trunc", func() filter.Factory {
		return &fakeFilter{name: "trunc", priority: filter.Normal,
			onNew: func(env filter.Env, k filter.Key, args []string) error {
				_, err := env.Attach(k, filter.Hooks{
					Filter: "trunc", Priority: filter.Normal,
					Out: func(pkt *filter.Packet) {
						if pkt.TCP == nil || len(pkt.TCP.Payload) == 0 {
							return
						}
						pkt.TCP.Payload = pkt.TCP.Payload[:len(pkt.TCP.Payload)-1]
						pkt.MarkDirty()
					},
				})
				return err
			}}
	})
	s := sim.NewScheduler(5)
	net := netsim.New(s)
	node := net.AddNode("proxy")
	p := proxy.NewDetached(node, cat)
	if out := p.Command("load trunc"); out != "trunc\n" {
		t.Fatalf("load output %q", out)
	}
	// Odd flows get the remarshalling filter; even flows pass the
	// caller's raw buffer through untouched. Both kinds must be stable.
	if out := p.Command("add trunc 11.11.10.99 1001 11.11.10.10 5001"); out != "" {
		t.Fatalf("add output %q", out)
	}
	if out := p.Command("add trunc 11.11.10.99 1003 11.11.10.10 5001"); out != "" {
		t.Fatalf("add output %q", out)
	}

	const rounds = 40
	var batch [][]byte
	var want [][]byte
	seqs := map[uint16]uint32{1000: 1, 1001: 1, 1002: 1, 1003: 1}
	for i := 0; i < rounds; i++ {
		port := uint16(1000 + i%4)
		payload := []byte(fmt.Sprintf("round=%d port=%d data", i, port))
		raw := mkDgram(t, port, seqs[port], payload)
		seqs[port] += uint32(len(payload))
		before := len(batch)
		batch = p.InterceptAppend(raw, nil, batch)
		for _, out := range batch[before:] {
			want = append(want, append([]byte(nil), out...))
		}
	}
	if len(batch) != rounds {
		t.Fatalf("accumulated %d outputs over %d interceptions", len(batch), rounds)
	}
	// Every buffer appended along the way must still hold the bytes it
	// held the moment it was appended.
	for i := range want {
		if !bytes.Equal(batch[i], want[i]) {
			t.Fatalf("output %d mutated by a later interception:\n got %q\nwant %q",
				i, batch[i], want[i])
		}
	}
	// The filtered flows really were remarshalled (shorter payload), so
	// the stability above covered fresh buffers, not just passthrough.
	snap := p.Stats.Snapshot()
	if snap.Filtered == 0 {
		t.Fatal("no packet went through the modifying filter")
	}
	if snap.Intercepted != rounds {
		t.Fatalf("intercepted %d, want %d", snap.Intercepted, rounds)
	}
}
