package proxy

import "errors"

// Typed sentinels for the SP control surface. The message text of the
// wrapping errors is unchanged from the historical stringly errors
// (the sentinel text is the old suffix), so control-session output and
// golden experiment transcripts stay byte-identical while callers —
// the policy engine's rollback path above all — branch with errors.Is.
var (
	// ErrNotLoaded marks an operation on a filter absent from the pool
	// (and not a defined service).
	ErrNotLoaded = errors.New("not loaded")
	// ErrAlreadyLoaded marks a duplicate load.
	ErrAlreadyLoaded = errors.New("already loaded")
	// ErrNoSuchStream marks a delete that matched neither a
	// registration nor a live attachment.
	ErrNoSuchStream = errors.New("no such stream")
)
