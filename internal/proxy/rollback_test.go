package proxy_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/filter"
	"repro/internal/ip"
	"repro/internal/tcp"
)

var errTestInit = errors.New("filter init failed")

// TestAddFilterRollsBackFailedRegistration covers the state-rollback
// bug: "add" on an exact key used to append the registry entry before
// instantiating the filter, so a failed instantiation left a dangling
// registration behind — the next matching packet would silently respawn
// the broken filter through buildQueue.
func TestAddFilterRollsBackFailedRegistration(t *testing.T) {
	newCalls := 0
	cat := filter.NewCatalog()
	cat.Register("flaky", func() filter.Factory {
		return &fakeFilter{name: "flaky", priority: filter.Normal,
			onNew: func(env filter.Env, k filter.Key, args []string) error {
				newCalls++
				if newCalls == 1 {
					return errTestInit
				}
				_, err := env.Attach(k, filter.Hooks{Filter: "flaky", Priority: filter.Normal})
				return err
			}}
	})
	rig := newRig(t, cat)
	p := rig.prox
	p.Command("load flaky")

	const key = "10.1.0.1 7 10.2.0.1 2000"
	if out := p.Command("add flaky " + key); !strings.HasPrefix(out, "error") {
		t.Fatalf("failed add reported %q, want error", out)
	}
	if newCalls != 1 {
		t.Fatalf("factory.New called %d times during add, want 1", newCalls)
	}

	// Drive a packet with exactly that key through the proxy. With the
	// registration rolled back the factory must NOT be re-invoked.
	seg := tcp.Segment{SrcPort: 7, DstPort: 2000, Seq: 1, Flags: tcp.FlagSYN, Window: 1000}
	rig.wired.SendIP(rig.mobile.Addr(), ip.ProtoTCP, seg.Marshal(rig.wired.Addr(), rig.mobile.Addr()))
	rig.sched.RunFor(1e9)

	if newCalls != 1 {
		t.Fatalf("factory.New called %d times after traffic, want 1 (dangling registration respawned the filter)", newCalls)
	}
	if streams := p.Streams(); len(streams) != 0 {
		t.Fatalf("failed add left live streams: %v", streams)
	}

	// A later add of the (now healthy) filter must work normally.
	if out := p.Command("add flaky " + key); out != "" {
		t.Fatalf("second add: %q", out)
	}
	if newCalls != 2 {
		t.Fatalf("factory.New called %d times, want 2", newCalls)
	}
	if streams := p.Streams(); len(streams) != 1 {
		t.Fatalf("healthy add produced %d streams, want 1", len(streams))
	}
}
