package proxy_test

import (
	"strings"
	"testing"

	"repro/internal/filter"
	"repro/internal/ip"
	"repro/internal/netsim"
	"repro/internal/proxy"
	"repro/internal/sim"
	"repro/internal/tcp"
)

// fakeFilter is a configurable test filter.
type fakeFilter struct {
	name     string
	priority filter.Priority
	onNew    func(env filter.Env, k filter.Key, args []string) error
}

func (f *fakeFilter) Name() string              { return f.name }
func (f *fakeFilter) Priority() filter.Priority { return f.priority }
func (f *fakeFilter) Description() string       { return "test filter" }
func (f *fakeFilter) New(env filter.Env, k filter.Key, args []string) error {
	return f.onNew(env, k, args)
}

// testRig is a wired-host -> proxy -> mobile topology with a proxy on
// the middle router.
type testRig struct {
	sched          *sim.Scheduler
	net            *netsim.Network
	wired, mobile  *netsim.Node
	router         *netsim.Node
	prox           *proxy.Proxy
	catalog        *filter.Catalog
	wStack, mStack *tcp.Stack
}

func newRig(t *testing.T, catalog *filter.Catalog) *testRig {
	t.Helper()
	s := sim.NewScheduler(11)
	n := netsim.New(s)
	w := n.AddNode("wired")
	r := n.AddNode("proxy")
	m := n.AddNode("mobile")
	r.Forwarding = true
	n.Connect(w, ip.MustParseAddr("10.1.0.1"), r, ip.MustParseAddr("10.1.0.254"), netsim.LinkConfig{})
	lm := n.Connect(r, ip.MustParseAddr("10.2.0.254"), m, ip.MustParseAddr("10.2.0.1"), netsim.LinkConfig{})
	w.AddDefaultRoute(w.Ifaces()[0])
	m.AddDefaultRoute(m.Ifaces()[0])
	r.AddRoute(ip.MustParseAddr("10.2.0.0"), 24, lm.IfaceA())
	rig := &testRig{sched: s, net: n, wired: w, mobile: m, router: r, catalog: catalog}
	rig.prox = proxy.New(r, catalog)
	rig.wStack = tcp.NewStack(w, tcp.Config{})
	rig.mStack = tcp.NewStack(m, tcp.Config{})
	w.RegisterProto(ip.ProtoTCP, func(h ip.Header, p, raw []byte, in *netsim.Iface) { rig.wStack.Deliver(h.Src, h.Dst, p) })
	m.RegisterProto(ip.ProtoTCP, func(h ip.Header, p, raw []byte, in *netsim.Iface) { rig.mStack.Deliver(h.Src, h.Dst, p) })
	return rig
}

func TestLoadAddReportDelete(t *testing.T) {
	cat := filter.NewCatalog()
	cat.Register("noop", func() filter.Factory {
		return &fakeFilter{name: "noop", priority: filter.Normal,
			onNew: func(env filter.Env, k filter.Key, args []string) error {
				_, err := env.Attach(k, filter.Hooks{Filter: "noop", Priority: filter.Normal})
				return err
			}}
	})
	rig := newRig(t, cat)
	p := rig.prox

	if out := p.Command("load noop"); out != "noop\n" {
		t.Fatalf("load output %q", out)
	}
	if out := p.Command("load noop"); !strings.HasPrefix(out, "error") {
		t.Fatalf("duplicate load: %q", out)
	}
	if out := p.Command("add noop 10.1.0.1 80 10.2.0.1 2000"); out != "" {
		t.Fatalf("add output %q", out)
	}
	rep := p.Command("report")
	if !strings.Contains(rep, "noop") || !strings.Contains(rep, "10.1.0.1 80 -> 10.2.0.1 2000") {
		t.Fatalf("report missing entries:\n%s", rep)
	}
	if out := p.Command("delete noop 10.1.0.1 80 10.2.0.1 2000"); out != "" {
		t.Fatalf("delete output %q", out)
	}
	rep = p.Command("report noop")
	if strings.Contains(rep, "10.1.0.1") {
		t.Fatalf("deleted key still reported:\n%s", rep)
	}
	if out := p.Command("remove noop"); out != "" {
		t.Fatalf("remove output %q", out)
	}
	if out := p.Command("report noop"); !strings.HasPrefix(out, "error") {
		t.Fatalf("report on unloaded filter: %q", out)
	}
}

func TestUnknownCommandsAndErrors(t *testing.T) {
	rig := newRig(t, filter.NewCatalog())
	p := rig.prox
	if out := p.Command("bogus"); !strings.HasPrefix(out, "error") {
		t.Errorf("bogus command: %q", out)
	}
	if out := p.Command("load nothere"); !strings.HasPrefix(out, "error") {
		t.Errorf("load missing: %q", out)
	}
	if out := p.Command("add nofilter 0.0.0.0 0 0.0.0.0 0"); !strings.HasPrefix(out, "error") {
		t.Errorf("add unloaded: %q", out)
	}
	if out := p.Command("add x 1.2.3.4 99"); !strings.HasPrefix(out, "error") {
		t.Errorf("short add: %q", out)
	}
	if out := p.Command(""); out != "" {
		t.Errorf("empty command: %q", out)
	}
}

func TestWildcardMatchingBuildsQueues(t *testing.T) {
	cat := filter.NewCatalog()
	var seenKeys []filter.Key
	cat.Register("watch", func() filter.Factory {
		return &fakeFilter{name: "watch", priority: filter.Normal,
			onNew: func(env filter.Env, k filter.Key, args []string) error {
				seenKeys = append(seenKeys, k)
				_, err := env.Attach(k, filter.Hooks{Filter: "watch", Priority: filter.Normal})
				return err
			}}
	})
	rig := newRig(t, cat)
	p := rig.prox
	p.Command("load watch")
	// Wild-card: everything to the mobile, any port.
	p.Command("add watch 0.0.0.0 0 10.2.0.1 0")

	// Drive a TCP connection through the proxy.
	rig.mStack.Listen(2000, func(c *tcp.Conn) {})
	client, _ := rig.wStack.Connect(rig.mobile.Addr(), 2000)
	client.OnEstablished = func() { client.Write([]byte("hello")); client.Close() }
	rig.sched.RunFor(5e9)

	if len(seenKeys) != 1 {
		t.Fatalf("filter instantiated %d times, want 1 (keys: %v)", len(seenKeys), seenKeys)
	}
	k := seenKeys[0]
	if k.DstIP != rig.mobile.Addr() || k.DstPort != 2000 {
		t.Fatalf("instantiated on wrong key %v", k)
	}
	if k.IsWild() {
		t.Fatalf("trigger key is wild: %v", k)
	}
}

func TestInOutOrderingByPriority(t *testing.T) {
	var order []string
	mk := func(name string, prio filter.Priority) func() filter.Factory {
		return func() filter.Factory {
			return &fakeFilter{name: name, priority: prio,
				onNew: func(env filter.Env, k filter.Key, args []string) error {
					_, err := env.Attach(k, filter.Hooks{
						Filter: name, Priority: prio,
						In:  func(p *filter.Packet) { order = append(order, "in:"+name) },
						Out: func(p *filter.Packet) { order = append(order, "out:"+name) },
					})
					return err
				}}
		}
	}
	cat := filter.NewCatalog()
	cat.Register("hi", mk("hi", filter.High))
	cat.Register("mid", mk("mid", filter.Normal))
	cat.Register("lo", mk("lo", filter.Low))
	rig := newRig(t, cat)
	p := rig.prox
	for _, c := range []string{"load hi", "load mid", "load lo",
		"add lo 0.0.0.0 0 10.2.0.1 0",
		"add hi 0.0.0.0 0 10.2.0.1 0",
		"add mid 0.0.0.0 0 10.2.0.1 0"} {
		if out := p.Command(c); out != "" && !strings.Contains(out, "\n") {
			t.Fatalf("%s: %q", c, out)
		}
	}
	// Send one UDP packet through (no TCP ports in key, but still a
	// stream key with ports 0... ports 0 are wild; use TCP instead).
	rig.mStack.Listen(2000, func(c *tcp.Conn) {})
	client, _ := rig.wStack.Connect(rig.mobile.Addr(), 2000)
	_ = client
	rig.sched.RunFor(1e9)

	// Find the first full traversal (the SYN packet).
	if len(order) < 6 {
		t.Fatalf("order too short: %v", order)
	}
	want := []string{"in:hi", "in:mid", "in:lo", "out:lo", "out:mid", "out:hi"}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("traversal order = %v, want %v", order[:6], want)
		}
	}
}

func TestFilterDropsPacket(t *testing.T) {
	cat := filter.NewCatalog()
	cat.Register("blackhole", func() filter.Factory {
		return &fakeFilter{name: "blackhole", priority: filter.Normal,
			onNew: func(env filter.Env, k filter.Key, args []string) error {
				_, err := env.Attach(k, filter.Hooks{Filter: "blackhole", Priority: filter.Normal,
					Out: func(p *filter.Packet) { p.Drop() }})
				return err
			}}
	})
	rig := newRig(t, cat)
	rig.prox.Command("load blackhole")
	rig.prox.Command("add blackhole 0.0.0.0 0 10.2.0.1 0")

	accepted := false
	rig.mStack.Listen(2000, func(c *tcp.Conn) { accepted = true })
	client, _ := rig.wStack.Connect(rig.mobile.Addr(), 2000)
	_ = client
	rig.sched.RunFor(3e9)
	if accepted {
		t.Fatal("SYN crossed a blackhole filter")
	}
	if rig.prox.Stats.DroppedByFilter.Load() == 0 {
		t.Fatal("no drops counted")
	}
}

func TestModificationWithoutRemarshalBreaksChecksum(t *testing.T) {
	// A filter that rewrites the window but never remarshals leaves a
	// stale checksum; the receiving stack must discard the segment.
	// This is why the thesis's tcp filter exists.
	cat := filter.NewCatalog()
	cat.Register("careless", func() filter.Factory {
		return &fakeFilter{name: "careless", priority: filter.Normal,
			onNew: func(env filter.Env, k filter.Key, args []string) error {
				_, err := env.Attach(k, filter.Hooks{Filter: "careless", Priority: filter.Normal,
					Out: func(p *filter.Packet) {
						if p.TCP != nil {
							p.TCP.Window = 17
							p.MarkDirty()
							// Deliberately no Remarshal.
						}
					}})
				return err
			}}
	})
	rig := newRig(t, cat)
	rig.prox.Command("load careless")
	rig.prox.Command("add careless 0.0.0.0 0 10.2.0.1 0")
	accepted := false
	rig.mStack.Listen(2000, func(c *tcp.Conn) { accepted = true })
	rig.wStack.Connect(rig.mobile.Addr(), 2000)
	rig.sched.RunFor(3e9)
	if accepted {
		t.Fatal("segment with stale checksum was accepted")
	}
}

func TestSpawnViaLauncherPattern(t *testing.T) {
	cat := filter.NewCatalog()
	spawned := false
	cat.Register("svc", func() filter.Factory {
		return &fakeFilter{name: "svc", priority: filter.Normal,
			onNew: func(env filter.Env, k filter.Key, args []string) error {
				spawned = true
				_, err := env.Attach(k, filter.Hooks{Filter: "svc", Priority: filter.Normal})
				return err
			}}
	})
	cat.Register("spawner", func() filter.Factory {
		return &fakeFilter{name: "spawner", priority: filter.Highest,
			onNew: func(env filter.Env, k filter.Key, args []string) error {
				return env.(filter.Spawner).Spawn("svc", k, nil)
			}}
	})
	rig := newRig(t, cat)
	rig.prox.Command("load svc")
	rig.prox.Command("load spawner")
	rig.prox.Command("add spawner 0.0.0.0 0 10.2.0.1 0")
	rig.mStack.Listen(2000, func(c *tcp.Conn) {})
	rig.wStack.Connect(rig.mobile.Addr(), 2000)
	rig.sched.RunFor(1e9)
	if !spawned {
		t.Fatal("launcher-style spawn never happened")
	}
	rep := rig.prox.Command("report svc")
	if !strings.Contains(rep, "10.2.0.1 2000") {
		t.Fatalf("spawned filter not in report:\n%s", rep)
	}
}

func TestAddExactKeyToActiveStream(t *testing.T) {
	cat := filter.NewCatalog()
	hits := 0
	cat.Register("count", func() filter.Factory {
		return &fakeFilter{name: "count", priority: filter.Normal,
			onNew: func(env filter.Env, k filter.Key, args []string) error {
				_, err := env.Attach(k, filter.Hooks{Filter: "count", Priority: filter.Normal,
					In: func(p *filter.Packet) { hits++ }})
				return err
			}}
	})
	rig := newRig(t, cat)
	rig.prox.Command("load count")
	var server *tcp.Conn
	rig.mStack.Listen(2000, func(c *tcp.Conn) { server = c })
	client, _ := rig.wStack.Connect(rig.mobile.Addr(), 2000)
	client.OnEstablished = func() { client.Write([]byte("before")) }
	rig.sched.RunFor(1e9)
	if hits != 0 {
		t.Fatalf("filter counted %d packets before being added", hits)
	}
	// Add on the exact live key mid-stream.
	k := filter.Key{SrcIP: rig.wired.Addr(), SrcPort: client.LocalPort(),
		DstIP: rig.mobile.Addr(), DstPort: 2000}
	if err := rig.prox.AddFilter("count", k, nil); err != nil {
		t.Fatal(err)
	}
	client.Write([]byte("after"))
	rig.sched.RunFor(1e9)
	if hits == 0 {
		t.Fatal("filter added to live stream never saw packets")
	}
	_ = server
}

func TestRemoveStreamClosesHooks(t *testing.T) {
	cat := filter.NewCatalog()
	closed := 0
	cat.Register("cl", func() filter.Factory {
		return &fakeFilter{name: "cl", priority: filter.Normal,
			onNew: func(env filter.Env, k filter.Key, args []string) error {
				_, err := env.Attach(k, filter.Hooks{Filter: "cl", Priority: filter.Normal,
					OnClose: func() { closed++ }})
				return err
			}}
	})
	rig := newRig(t, cat)
	rig.prox.Command("load cl")
	k := filter.Key{SrcIP: rig.wired.Addr(), SrcPort: 80, DstIP: rig.mobile.Addr(), DstPort: 2000}
	rig.prox.AddFilter("cl", k, nil)
	if len(rig.prox.Streams()) != 1 {
		t.Fatalf("streams = %v", rig.prox.Streams())
	}
	rig.prox.RemoveStream(k)
	if closed != 1 {
		t.Fatalf("OnClose called %d times", closed)
	}
	if len(rig.prox.Streams()) != 0 {
		t.Fatal("stream not removed")
	}
}

func TestControlOverSimulatedTCP(t *testing.T) {
	// Reproduce the shape of thesis Fig 5.3: telnet to port 12000 on
	// the proxy host and run commands over the simulated network.
	cat := filter.NewCatalog()
	cat.Register("noop", func() filter.Factory {
		return &fakeFilter{name: "noop", priority: filter.Normal,
			onNew: func(env filter.Env, k filter.Key, args []string) error {
				_, err := env.Attach(k, filter.Hooks{Filter: "noop", Priority: filter.Normal})
				return err
			}}
	})
	rig := newRig(t, cat)
	// The proxy's control interface listens on the router node itself.
	ctrlStack := tcp.NewStack(rig.router, tcp.Config{})
	rig.router.RegisterProto(ip.ProtoTCP, func(h ip.Header, p, raw []byte, in *netsim.Iface) {
		if rig.router.HasAddr(h.Dst) {
			ctrlStack.Deliver(h.Src, h.Dst, p)
		}
	})
	if err := proxy.ServeControl(ctrlStack, proxy.ControlPort, rig.prox); err != nil {
		t.Fatal(err)
	}
	var resp strings.Builder
	client, err := rig.wStack.Connect(ip.MustParseAddr("10.1.0.254"), proxy.ControlPort)
	if err != nil {
		t.Fatal(err)
	}
	client.OnData = func(b []byte) { resp.Write(b) }
	client.OnEstablished = func() {
		client.Write([]byte("load noop\nadd noop 10.1.0.1 7 10.2.0.1 1169\nreport\n"))
	}
	rig.sched.RunFor(5e9)
	got := resp.String()
	if !strings.Contains(got, "noop\n") || !strings.Contains(got, "10.1.0.1 7 -> 10.2.0.1 1169") {
		t.Fatalf("control session output:\n%s", got)
	}
}

func TestStreamsAccounting(t *testing.T) {
	cat := filter.NewCatalog()
	cat.Register("noop", func() filter.Factory {
		return &fakeFilter{name: "noop", priority: filter.Normal,
			onNew: func(env filter.Env, k filter.Key, args []string) error {
				_, err := env.Attach(k, filter.Hooks{Filter: "noop", Priority: filter.Normal})
				return err
			}}
	})
	rig := newRig(t, cat)
	rig.prox.Command("load noop")
	rig.prox.Command("add noop 0.0.0.0 0 10.2.0.1 0")
	rig.mStack.Listen(2000, func(c *tcp.Conn) {})
	client, _ := rig.wStack.Connect(rig.mobile.Addr(), 2000)
	client.OnEstablished = func() { client.Write(make([]byte, 5000)) }
	rig.sched.RunFor(5e9)
	ss := rig.prox.Streams()
	if len(ss) != 1 {
		t.Fatalf("streams = %v", ss)
	}
	if ss[0].Packets == 0 || ss[0].Bytes < 5000 {
		t.Fatalf("accounting: %+v", ss[0])
	}
	out := rig.prox.Command("streams")
	if !strings.Contains(out, "noop") {
		t.Fatalf("streams command output: %q", out)
	}
}

func TestFiltersCommand(t *testing.T) {
	cat := filter.NewCatalog()
	cat.Register("noop2", func() filter.Factory {
		return &fakeFilter{name: "noop2", priority: filter.Normal,
			onNew: func(env filter.Env, k filter.Key, args []string) error { return nil }}
	})
	cat.Register("other", func() filter.Factory {
		return &fakeFilter{name: "other", priority: filter.Normal,
			onNew: func(env filter.Env, k filter.Key, args []string) error { return nil }}
	})
	rig := newRig(t, cat)
	rig.prox.Command("load noop2")
	out := rig.prox.Command("filters")
	if !strings.Contains(out, "loaded: noop2") {
		t.Fatalf("filters output missing loaded:\n%s", out)
	}
	if !strings.Contains(out, "available: other") {
		t.Fatalf("filters output missing available:\n%s", out)
	}
}
