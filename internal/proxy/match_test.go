package proxy

import (
	"math/rand"
	"testing"

	"repro/internal/filter"
	"repro/internal/ip"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// nopFactory registers without attaching any hooks, so the property
// test can churn the registry without building filter queues.
type nopFactory struct{ name string }

func (f nopFactory) Name() string                             { return f.name }
func (nopFactory) Priority() filter.Priority                  { return filter.Normal }
func (nopFactory) Description() string                        { return "registry churn stub" }
func (nopFactory) New(filter.Env, filter.Key, []string) error { return nil }

func newMatchProxy(t *testing.T) *Proxy {
	t.Helper()
	cat := filter.NewCatalog()
	cat.Register("nop", func() filter.Factory { return nopFactory{name: "nop"} })
	node := netsim.New(sim.NewScheduler(1)).AddNode("proxy")
	p := New(node, cat)
	if _, err := p.LoadFilter("nop"); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCachedMatchAgreesWithReference is the negative-cache property
// test: across random interleavings of add/delete on random exact and
// wild-card keys, cachedMatch must agree with the naive registry scan
// on every lookup — including repeat lookups served from the cache,
// and lookups after deletions (which deliberately do not invalidate:
// removals can only shrink the match set).
func TestCachedMatchAgreesWithReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	// A small universe so adds, deletes, and lookups collide often.
	addrs := []ip.Addr{0, ip.MustParseAddr("10.0.0.1"), ip.MustParseAddr("10.0.0.2")}
	ports := []uint16{0, 7, 9}
	randKey := func(exact bool) filter.Key {
		k := filter.Key{
			SrcIP: addrs[rng.Intn(len(addrs))], SrcPort: ports[rng.Intn(len(ports))],
			DstIP: addrs[rng.Intn(len(addrs))], DstPort: ports[rng.Intn(len(ports))],
		}
		if exact {
			// Lookup keys are real stream keys: no wild-card fields.
			k.SrcIP, k.DstIP = addrs[1+rng.Intn(len(addrs)-1)], addrs[1+rng.Intn(len(addrs)-1)]
			k.SrcPort, k.DstPort = ports[1+rng.Intn(len(ports)-1)], ports[1+rng.Intn(len(ports)-1)]
		}
		return k
	}

	p := newMatchProxy(t)
	var registered []filter.Key
	for i := 0; i < 5000; i++ {
		switch op := rng.Intn(10); {
		case op < 2: // add a (often wild-card) registration
			k := randKey(false)
			if err := p.AddFilter("nop", k, nil); err != nil {
				t.Fatal(err)
			}
			registered = append(registered, k)
		case op < 3 && len(registered) > 0: // delete a random registration
			j := rng.Intn(len(registered))
			if err := p.DeleteFilter("nop", registered[j]); err != nil {
				t.Fatal(err)
			}
			// DeleteFilter removes every registration with that exact
			// (name, key) pair; mirror that in the shadow list.
			k := registered[j]
			kept := registered[:0]
			for _, r := range registered {
				if r != k {
					kept = append(kept, r)
				}
			}
			registered = kept
		default: // lookup: cached and reference matchers must agree
			k := randKey(true)
			want := p.matchesRegistry(k)
			if got := p.cachedMatch(k); got != want {
				t.Fatalf("op %d: cachedMatch(%v) = %v, reference = %v (registry %d entries, cache %d)",
					i, k, got, want, len(p.registry), len(p.negCache))
			}
			// Immediate repeat: the cache-resident answer must agree too.
			if got := p.cachedMatch(k); got != want {
				t.Fatalf("op %d: cache-hit lookup of %v = %v, reference = %v", i, k, got, want)
			}
		}
	}
}

// TestNegCacheMassEviction drives the cache past its bound: the
// overflow reset must keep lookups correct and the cache size bounded.
func TestNegCacheMassEviction(t *testing.T) {
	p := newMatchProxy(t)
	if err := p.AddFilter("nop", filter.Key{SrcPort: 9999}, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < negCacheMax+64; i++ {
		k := filter.Key{
			SrcIP: ip.AddrFrom4(10, byte(i>>16), byte(i>>8), byte(i)), SrcPort: 7,
			DstIP: ip.AddrFrom4(10, 0, 0, 1), DstPort: 80,
		}
		if p.cachedMatch(k) {
			t.Fatalf("key %v matched a srcport-9999 registration", k)
		}
		if len(p.negCache) > negCacheMax {
			t.Fatalf("cache grew past bound: %d entries", len(p.negCache))
		}
	}
	// A key matching the registration must still be found post-eviction.
	if !p.cachedMatch(filter.Key{SrcIP: addr1(), SrcPort: 9999, DstIP: addr1(), DstPort: 80}) {
		t.Fatal("matching key reported unmatched after mass eviction")
	}
}

func addr1() ip.Addr { return ip.MustParseAddr("10.0.0.1") }

// TestAddInvalidatesNegativeCache pins the invalidation rule: a key
// cached as unmatched must be re-scanned once a new registration that
// matches it appears.
func TestAddInvalidatesNegativeCache(t *testing.T) {
	p := newMatchProxy(t)
	k := filter.Key{SrcIP: addr1(), SrcPort: 7, DstIP: addr1(), DstPort: 80}
	if p.cachedMatch(k) {
		t.Fatal("empty registry matched")
	}
	if err := p.AddFilter("nop", filter.Key{DstPort: 80}, nil); err != nil {
		t.Fatal(err)
	}
	if !p.cachedMatch(k) {
		t.Fatal("stale negative cache entry survived AddFilter")
	}
}
