package proxy

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/filter"
	"repro/internal/ip"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// nopFactory registers without attaching any hooks, so the property
// test can churn the registry without building filter queues.
type nopFactory struct{ name string }

func (f nopFactory) Name() string                             { return f.name }
func (nopFactory) Priority() filter.Priority                  { return filter.Normal }
func (nopFactory) Description() string                        { return "registry churn stub" }
func (nopFactory) New(filter.Env, filter.Key, []string) error { return nil }

// failFactory always fails instantiation, for rollback tests.
type failFactory struct{}

func (failFactory) Name() string              { return "fail" }
func (failFactory) Priority() filter.Priority { return filter.Normal }
func (failFactory) Description() string       { return "always-failing stub" }
func (failFactory) New(filter.Env, filter.Key, []string) error {
	return errors.New("fail: refusing instantiation")
}

func newMatchProxy(t *testing.T) *Proxy {
	t.Helper()
	cat := filter.NewCatalog()
	cat.Register("nop", func() filter.Factory { return nopFactory{name: "nop"} })
	cat.Register("fail", func() filter.Factory { return failFactory{} })
	node := netsim.New(sim.NewScheduler(1)).AddNode("proxy")
	p := New(node, cat)
	if _, err := p.LoadFilter("nop"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.LoadFilter("fail"); err != nil {
		t.Fatal(err)
	}
	return p
}

// refIndices is the reference match list: scan the registry in order
// with filter.Key.Matches.
func refIndices(p *Proxy, k filter.Key) []int32 {
	var out []int32
	for i, r := range p.registry {
		if r.key.Matches(k) {
			out = append(out, int32(i))
		}
	}
	return out
}

func sameIndices(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCompiledMatchAgreesWithReference is the compiled-classifier
// property test: across random interleavings of add/delete on random
// exact and wild-card keys, the compiled program must agree with the
// naive registry scan on every lookup — both the boolean answer and
// the exact ordered set of matching registrations buildQueue would
// instantiate.
func TestCompiledMatchAgreesWithReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	// A small universe so adds, deletes, and lookups collide often.
	addrs := []ip.Addr{0, ip.MustParseAddr("10.0.0.1"), ip.MustParseAddr("10.0.0.2")}
	ports := []uint16{0, 7, 9}
	randKey := func(exact bool) filter.Key {
		k := filter.Key{
			SrcIP: addrs[rng.Intn(len(addrs))], SrcPort: ports[rng.Intn(len(ports))],
			DstIP: addrs[rng.Intn(len(addrs))], DstPort: ports[rng.Intn(len(ports))],
		}
		if exact {
			// Lookup keys are real stream keys: no wild-card fields.
			k.SrcIP, k.DstIP = addrs[1+rng.Intn(len(addrs)-1)], addrs[1+rng.Intn(len(addrs)-1)]
			k.SrcPort, k.DstPort = ports[1+rng.Intn(len(ports)-1)], ports[1+rng.Intn(len(ports)-1)]
		}
		return k
	}

	p := newMatchProxy(t)
	var registered []filter.Key
	for i := 0; i < 5000; i++ {
		switch op := rng.Intn(10); {
		case op < 2: // add a (often wild-card) registration
			k := randKey(false)
			if err := p.AddFilter("nop", k, nil); err != nil {
				t.Fatal(err)
			}
			registered = append(registered, k)
		case op < 3 && len(registered) > 0: // delete a random registration
			j := rng.Intn(len(registered))
			if err := p.DeleteFilter("nop", registered[j]); err != nil {
				t.Fatal(err)
			}
			// DeleteFilter removes every registration with that exact
			// (name, key) pair; mirror that in the shadow list.
			k := registered[j]
			kept := registered[:0]
			for _, r := range registered {
				if r != k {
					kept = append(kept, r)
				}
			}
			registered = kept
		default: // lookup: compiled and reference matchers must agree
			k := randKey(true)
			want := p.matchesRegistry(k)
			if got := p.program().Match(k); got != want {
				t.Fatalf("op %d: prog.Match(%v) = %v, reference = %v (registry %d entries)",
					i, k, got, want, len(p.registry))
			}
			if got, ref := p.program().AppendMatches(nil, k), refIndices(p, k); !sameIndices(got, ref) {
				t.Fatalf("op %d: prog.AppendMatches(%v) = %v, reference = %v", i, k, got, ref)
			}
		}
	}
}

// TestMissStormBuildsNoState replaces the old negCache mass-eviction
// test: the miss path must carry no per-key state at all, so a storm
// of distinct unmatched keys (far past the old 2^16 cache bound that
// used to trigger a full-cache discard and rescan cliff) leaves the
// proxy with nothing but a miss counter — and matching lookups still
// answer correctly afterwards.
func TestMissStormBuildsNoState(t *testing.T) {
	p := newMatchProxy(t)
	if err := p.AddFilter("nop", filter.Key{SrcPort: 9999}, nil); err != nil {
		t.Fatal(err)
	}
	const storm = 1<<16 + 4096
	for i := 0; i < storm; i++ {
		k := filter.Key{
			SrcIP: ip.AddrFrom4(10, byte(i>>16), byte(i>>8), byte(i)), SrcPort: 7,
			DstIP: ip.AddrFrom4(10, 0, 0, 1), DstPort: 80,
		}
		if q := p.buildQueue(k); q != nil {
			t.Fatalf("key %v built a queue against a srcport-9999 registration", k)
		}
	}
	if got := p.Stats.RegistryMisses.Load(); got != storm {
		t.Fatalf("RegistryMisses = %d, want %d", got, storm)
	}
	if got := p.QueueCount(); got != 0 {
		t.Fatalf("miss storm left %d queues", got)
	}
	// A key matching the registration must still be found.
	if !p.program().Match(filter.Key{SrcIP: addr1(), SrcPort: 9999, DstIP: addr1(), DstPort: 80}) {
		t.Fatal("matching key reported unmatched after miss storm")
	}
}

func addr1() ip.Addr { return ip.MustParseAddr("10.0.0.1") }

// TestAddRebuildsProgram pins the rebuild rule: a key the program
// answers as unmatched must match as soon as a covering registration
// is added — there is no stale cached negative to invalidate, because
// AddFilter marks the program dirty and the next lookup recompiles it.
func TestAddRebuildsProgram(t *testing.T) {
	p := newMatchProxy(t)
	k := filter.Key{SrcIP: addr1(), SrcPort: 7, DstIP: addr1(), DstPort: 80}
	if p.program().Match(k) {
		t.Fatal("empty registry matched")
	}
	rebuilds := p.Stats.RegistryRebuilds.Load()
	if err := p.AddFilter("nop", filter.Key{DstPort: 80}, nil); err != nil {
		t.Fatal(err)
	}
	if !p.program().Match(k) {
		t.Fatal("program not rebuilt by AddFilter")
	}
	if got := p.Stats.RegistryRebuilds.Load(); got != rebuilds+1 {
		t.Fatalf("RegistryRebuilds moved %d -> %d across one add, want +1", rebuilds, got)
	}
}

// TestFailedAddRebuildsProgram covers the AddFilter rollback path: a
// failed exact-key instantiation must leave the program compiled from
// the *restored* registry, so the key reads as unmatched again (the
// old code restored a saved negCache snapshot here; the invariant —
// nothing can mutate the registry between the append and the rollback
// — is now documented at the rollback site and moot, since the program
// is recompiled from the registry itself).
func TestFailedAddRebuildsProgram(t *testing.T) {
	p := newMatchProxy(t)
	k := filter.Key{SrcIP: addr1(), SrcPort: 7, DstIP: addr1(), DstPort: 80}
	if err := p.AddFilter("fail", k, nil); err == nil {
		t.Fatal("failing factory add succeeded")
	}
	if p.RegistrationCount() != 0 {
		t.Fatalf("failed add left %d registrations", p.RegistrationCount())
	}
	if p.program().Match(k) {
		t.Fatal("failed add left the key matched in the compiled program")
	}
	if q := p.buildQueue(k); q != nil {
		t.Fatal("failed add left a buildable queue behind")
	}
}
