package proxy_test

import (
	"bytes"
	"testing"

	"repro/internal/filter"
	"repro/internal/obs"
	"repro/internal/proxy"
	"repro/internal/tcp"
)

// TestPanickingFilterQuarantined is the quarantine regression test: an
// always-panicking filter must be detached after QuarantineStrikes
// panics, the stream must keep flowing unmodified (fail open), the
// panics must surface as obs events and counters — and the proxy must
// never crash.
func TestPanickingFilterQuarantined(t *testing.T) {
	cat := filter.NewCatalog()
	cat.Register("bomb", func() filter.Factory {
		return &fakeFilter{name: "bomb", priority: filter.Normal,
			onNew: func(env filter.Env, k filter.Key, args []string) error {
				_, err := env.Attach(k, filter.Hooks{
					Filter:   "bomb",
					Priority: filter.Normal,
					In:       func(p *filter.Packet) { panic("bomb: rigged to blow") },
				})
				return err
			}}
	})
	rig := newRig(t, cat)
	bus := obs.NewBus(rig.sched, 4096)
	rig.prox.SetObs(bus, nil)
	rig.prox.Command("load bomb")
	if out := rig.prox.Command("add bomb 0.0.0.0 0 0.0.0.0 0"); out != "" {
		t.Fatalf("add bomb: %q", out)
	}

	payload := bytes.Repeat([]byte("resilience"), 400)
	var got []byte
	done := false
	rig.mStack.Listen(2000, func(c *tcp.Conn) {
		c.OnData = func(b []byte) { got = append(got, b...) }
		c.OnRemoteClose = func() { done = true; c.Close() }
	})
	client, err := rig.wStack.Connect(rig.mobile.Addr(), 2000)
	if err != nil {
		t.Fatal(err)
	}
	client.OnEstablished = func() { client.Write(payload); client.Close() }
	rig.sched.RunFor(30e9)

	// Transparency: the transfer completes intact despite the filter
	// detonating on the stream's first packets.
	if !done {
		t.Fatal("transfer did not complete under a panicking filter")
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload corrupted: got %d bytes, want %d", len(got), len(payload))
	}

	// Containment: the wild-card registration instantiates the filter
	// once per stream direction, so exactly QuarantineStrikes panics
	// and one quarantine per direction — then silence.
	if n := rig.prox.Stats.HookPanics.Load(); n != 2*proxy.QuarantineStrikes {
		t.Fatalf("HookPanics = %d, want %d", n, 2*proxy.QuarantineStrikes)
	}
	if n := rig.prox.Stats.FilterQuarantines.Load(); n != 2 {
		t.Fatalf("FilterQuarantines = %d, want 2", n)
	}

	// Observability: the panic and the quarantine are both events.
	var panics, quarantines int
	for _, e := range bus.Events() {
		if e.Subsys != "proxy" {
			continue
		}
		switch e.Kind {
		case "filter-panic":
			panics++
		case "filter-quarantine":
			quarantines++
		}
	}
	if panics != 2*proxy.QuarantineStrikes || quarantines != 2 {
		t.Fatalf("events: %d filter-panic (want %d), %d filter-quarantine (want 2)",
			panics, 2*proxy.QuarantineStrikes, quarantines)
	}
}

// TestQuarantineFailsOpenNotRebuilt pins the tombstone behavior: after
// the quarantined filter empties its queue, later packets on the same
// stream must NOT rebuild the queue (which would re-instantiate the
// broken filter and buy it another round of panics).
func TestQuarantineFailsOpenNotRebuilt(t *testing.T) {
	instantiations := 0
	cat := filter.NewCatalog()
	cat.Register("bomb", func() filter.Factory {
		return &fakeFilter{name: "bomb", priority: filter.Normal,
			onNew: func(env filter.Env, k filter.Key, args []string) error {
				instantiations++
				_, err := env.Attach(k, filter.Hooks{
					Filter:   "bomb",
					Priority: filter.Normal,
					In:       func(p *filter.Packet) { panic("again") },
				})
				return err
			}}
	})
	rig := newRig(t, cat)
	rig.prox.Command("load bomb")
	rig.prox.Command("add bomb 0.0.0.0 0 0.0.0.0 0")

	rig.mStack.Listen(2000, func(c *tcp.Conn) {})
	client, err := rig.wStack.Connect(rig.mobile.Addr(), 2000)
	if err != nil {
		t.Fatal(err)
	}
	client.OnEstablished = func() { client.Write(bytes.Repeat([]byte("x"), 4000)) }
	rig.sched.RunFor(30e9)

	// One instantiation per direction of the stream at most; a rebuild
	// loop would push this far higher (one per QuarantineStrikes pkts).
	if instantiations > 2 {
		t.Fatalf("broken filter instantiated %d times — queue rebuilt after quarantine", instantiations)
	}
	if n := rig.prox.Stats.HookPanics.Load(); n > 2*proxy.QuarantineStrikes {
		t.Fatalf("HookPanics = %d — quarantine did not stick", n)
	}
}
