package proxy

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/filter"
)

// This file implements the layered service abstraction of thesis
// §10.2.1 ("a high-level service abstraction... users would deal with
// services rather than individual filters"): a named composition of
// filters that can be defined once and applied to stream keys like a
// single filter. A service spec is a list of `filter[:arg[:arg...]]`
// entries, the same syntax the launcher takes.

// serviceDef is a named filter composition.
type serviceDef struct {
	name  string
	specs []string
}

// DefineService registers (or replaces) a named composition. Every
// referenced filter must already be loaded.
func (p *Proxy) DefineService(name string, specs []string) error {
	if len(specs) == 0 {
		return fmt.Errorf("proxy: service %q has no filters", name)
	}
	if _, clash := p.pool[name]; clash {
		return fmt.Errorf("proxy: %q is a loaded filter, not a service name", name)
	}
	for _, spec := range specs {
		fname := strings.SplitN(spec, ":", 2)[0]
		if _, ok := p.pool[fname]; !ok {
			return fmt.Errorf("proxy: service %q references unloaded filter %q", name, fname)
		}
	}
	if p.services == nil {
		p.services = make(map[string]*serviceDef)
	}
	p.services[name] = &serviceDef{name: name, specs: specs}
	return nil
}

// UndefineService removes a service definition. Existing attachments
// made through it are left in place (they belong to the filters).
func (p *Proxy) UndefineService(name string) error {
	if _, ok := p.services[name]; !ok {
		return fmt.Errorf("proxy: no service %q", name)
	}
	delete(p.services, name)
	return nil
}

// Services lists defined service names, sorted.
func (p *Proxy) Services() []string {
	out := make([]string, 0, len(p.services))
	for n := range p.services {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ServiceSpec returns the composition of a defined service.
func (p *Proxy) ServiceSpec(name string) ([]string, bool) {
	d, ok := p.services[name]
	if !ok {
		return nil, false
	}
	return d.specs, true
}

// applyService instantiates every filter of a service on the given
// exact key, in spec order.
func (p *Proxy) applyService(d *serviceDef, k filter.Key) error {
	for _, spec := range d.specs {
		parts := strings.Split(spec, ":")
		if err := p.Spawn(parts[0], k, parts[1:]); err != nil {
			return fmt.Errorf("proxy: service %s: %w", d.name, err)
		}
	}
	return nil
}

// serviceFactory adapts a service definition to the filter.Factory
// interface so AddFilter/registry machinery (wild-card keys, report)
// works unchanged for services.
type serviceFactory struct {
	p *Proxy
	d *serviceDef
}

func (f *serviceFactory) Name() string              { return f.d.name }
func (f *serviceFactory) Priority() filter.Priority { return filter.Highest }
func (f *serviceFactory) Description() string {
	return "service: " + strings.Join(f.d.specs, " ")
}
func (f *serviceFactory) New(env filter.Env, k filter.Key, args []string) error {
	return f.p.applyService(f.d, k)
}
