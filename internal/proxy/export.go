// Stream export/import: the proxy half of live proxy-to-proxy stream
// migration. ExportStream serializes what one exact stream key owns on
// this proxy — its exact-key registry entries (both directions), the
// per-filter state of every attachment implementing
// filter.StateSnapshotter, and the queue accounting — into a plain
// value the migration codec frames for the wire. ExtractStream is the
// destructive variant (export, then release ownership); ImportStream
// rebinds an export on the destination proxy.
//
// Only exact-key registrations travel: wild-card registrations service
// many streams and stay where they are. Attachments spawned without an
// exact registration (the launcher's per-stream spawns, wild-card
// instantiations) therefore migrate as fresh instances if the
// destination's own registry matches them, or not at all — the fail-open
// choice, matching the filter-quarantine philosophy: a stream must never
// be wedged by its services.
package proxy

import (
	"fmt"

	"repro/internal/filter"
	"repro/internal/obs"
)

// BindingExport is one exact-key registry entry of a migrating stream.
type BindingExport struct {
	Filter string
	Key    filter.Key
	Args   []string
}

// FilterState is the serialized per-stream state of one snapshottable
// attachment. Ordinal disambiguates multiple attachments of the same
// filter on the same key (queue order, counting only snapshotters).
type FilterState struct {
	Filter  string
	Key     filter.Key
	Ordinal uint16
	State   []byte
}

// StreamExport is everything one stream key owns on a proxy, in a form
// a peer can rebind. Key is the forward (serviced) direction; bindings
// and states may reference Key or Key.Reverse().
type StreamExport struct {
	Key      filter.Key
	Bindings []BindingExport
	States   []FilterState
	// Queue accounting for both directions, restored so per-stream
	// byte/packet counters survive the migration.
	Pkts, Bytes       int64
	RevPkts, RevBytes int64
}

// ExportStream serializes stream k without mutating the proxy. The
// stream must have a live filter queue in the forward direction.
// Owning-goroutine only.
func (p *Proxy) ExportStream(k filter.Key) (*StreamExport, error) {
	if k.IsWild() {
		return nil, fmt.Errorf("proxy: cannot export wild-card key %v", k)
	}
	q := p.queues[k]
	if q == nil {
		return nil, fmt.Errorf("proxy: %w %v", ErrNoSuchStream, k)
	}
	ex := &StreamExport{Key: k, Pkts: q.pkts, Bytes: q.bytes}
	if rq := p.queues[k.Reverse()]; rq != nil {
		ex.RevPkts, ex.RevBytes = rq.pkts, rq.bytes
	}
	for _, r := range p.registry {
		if r.key == k || r.key == k.Reverse() {
			args := append([]string(nil), r.args...)
			ex.Bindings = append(ex.Bindings, BindingExport{
				Filter: r.factory.Name(), Key: r.key, Args: args,
			})
		}
	}
	for _, qk := range []filter.Key{k, k.Reverse()} {
		sq := p.queues[qk]
		if sq == nil {
			continue
		}
		ordinals := make(map[string]uint16)
		for _, a := range sq.attached {
			if a.hooks.State == nil || a.quarantined {
				continue
			}
			ord := ordinals[a.hooks.Filter]
			ordinals[a.hooks.Filter] = ord + 1
			b, err := a.hooks.State.SnapshotState()
			if err != nil {
				// Fail open: the filter migrates fresh rather than
				// wedging the whole stream's migration.
				p.Logf("proxy: snapshot of %s on %v failed (migrating fresh): %v",
					a.hooks.Filter, qk, err)
				continue
			}
			ex.States = append(ex.States, FilterState{
				Filter: a.hooks.Filter, Key: qk, Ordinal: ord, State: b,
			})
		}
	}
	return ex, nil
}

// ExtractStream exports stream k and then releases this proxy's
// ownership of it: the exact-key registrations are removed and both
// directions' filter queues are torn down (OnClose fires, so filters
// release their process-global state). The stream's packets pass
// through unserviced from the next interception on. Owning-goroutine
// only.
func (p *Proxy) ExtractStream(k filter.Key) (*StreamExport, error) {
	ex, err := p.ExportStream(k)
	if err != nil {
		return nil, err
	}
	p.DropStream(k)
	p.obs.Emit("proxy", "stream-extract", k.String(),
		obs.F("bindings", len(ex.Bindings)), obs.F("states", len(ex.States)))
	return ex, nil
}

// ValidateImport checks that every binding of ex could instantiate
// here: the filter is loaded or loadable from the catalog. It is the
// destination-side OFFER check, run before the source commits.
func (p *Proxy) ValidateImport(ex *StreamExport) error {
	if ex.Key.IsWild() {
		return fmt.Errorf("proxy: cannot import wild-card key %v", ex.Key)
	}
	for _, b := range ex.Bindings {
		if b.Key != ex.Key && b.Key != ex.Key.Reverse() {
			return fmt.Errorf("proxy: import binding %s keyed %v outside stream %v",
				b.Filter, b.Key, ex.Key)
		}
		if _, loaded := p.pool[b.Filter]; loaded {
			continue
		}
		if _, isSvc := p.services[b.Filter]; isSvc {
			continue
		}
		if _, err := p.catalog.Load(b.Filter); err != nil {
			return fmt.Errorf("proxy: import: %w", err)
		}
	}
	return nil
}

// ImportStream rebinds an exported stream on this proxy: filters not
// yet in the pool are loaded from the catalog, every exported binding
// is registered and instantiated (exact keys instantiate immediately),
// snapshotted per-filter state is restored onto the matching
// attachments, and the queue accounting carries over. Owning-goroutine
// only. On error the proxy may hold a partial import; callers tear the
// stream down (ExtractStream/RemoveStream) before reporting failure.
func (p *Proxy) ImportStream(ex *StreamExport) error {
	if err := p.ValidateImport(ex); err != nil {
		return err
	}
	for _, b := range ex.Bindings {
		if _, loaded := p.pool[b.Filter]; !loaded {
			if _, isSvc := p.services[b.Filter]; !isSvc {
				if _, err := p.LoadFilter(b.Filter); err != nil {
					return fmt.Errorf("proxy: import load %s: %w", b.Filter, err)
				}
			}
		}
		if err := p.AddFilter(b.Filter, b.Key, b.Args); err != nil {
			return fmt.Errorf("proxy: import add %s on %v: %w", b.Filter, b.Key, err)
		}
	}
	for _, fs := range ex.States {
		a := p.findSnapshotter(fs.Filter, fs.Key, fs.Ordinal)
		if a == nil {
			// The binding that owned this state did not reattach here
			// (launcher spawn, differing args): fresh instance, fail open.
			p.Logf("proxy: no attachment for migrated state %s on %v (ordinal %d): running fresh",
				fs.Filter, fs.Key, fs.Ordinal)
			continue
		}
		if err := a.hooks.State.RestoreState(fs.State); err != nil {
			return fmt.Errorf("proxy: restore %s on %v: %w", fs.Filter, fs.Key, err)
		}
	}
	if q := p.queues[ex.Key]; q != nil {
		q.pkts, q.bytes = ex.Pkts, ex.Bytes
	}
	if rq := p.queues[ex.Key.Reverse()]; rq != nil {
		rq.pkts, rq.bytes = ex.RevPkts, ex.RevBytes
	}
	p.obs.Emit("proxy", "stream-import", ex.Key.String(),
		obs.F("bindings", len(ex.Bindings)), obs.F("states", len(ex.States)))
	return nil
}

// DropStream releases stream k unconditionally: exact-key
// registrations in both directions are stripped and any live filter
// queues torn down. ExtractStream uses it after a successful export;
// callers use it directly to clean up a failed import. Owning-goroutine
// only.
func (p *Proxy) DropStream(k filter.Key) {
	keep := p.registry[:0]
	for _, r := range p.registry {
		if r.key == k || r.key == k.Reverse() {
			continue
		}
		keep = append(keep, r)
	}
	p.registry = keep
	p.noteSizes()
	p.markProgramDirty()
	p.RemoveStream(k)
	p.RemoveStream(k.Reverse())
}

// findSnapshotter locates the ordinal'th snapshottable attachment of
// the named filter on key k, in queue order.
func (p *Proxy) findSnapshotter(name string, k filter.Key, ordinal uint16) *attachment {
	q := p.queues[k]
	if q == nil {
		return nil
	}
	var ord uint16
	for _, a := range q.attached {
		if a.hooks.Filter != name || a.hooks.State == nil {
			continue
		}
		if ord == ordinal {
			return a
		}
		ord++
	}
	return nil
}

// HasStream reports whether this proxy owns stream k: a live forward
// filter queue or an exact-key registration in either direction.
// Owning-goroutine only.
func (p *Proxy) HasStream(k filter.Key) bool {
	if _, ok := p.queues[k]; ok {
		return true
	}
	return p.StreamBindings(k) > 0
}

// StreamBindings counts the exact-key registrations bound to k or its
// reverse — the ownership measure the migration invariant checks (live
// queues come and go with TCP connections; registrations persist).
// Owning-goroutine only.
func (p *Proxy) StreamBindings(k filter.Key) int {
	n := 0
	for _, r := range p.registry {
		if r.key == k || r.key == k.Reverse() {
			n++
		}
	}
	return n
}
