package proxy_test

import (
	"strings"
	"testing"

	"repro/internal/filter"
	"repro/internal/filters"
	"repro/internal/netsim"
	"repro/internal/proxy"
	"repro/internal/sim"
)

func newControlProxy(t *testing.T) *proxy.Proxy {
	t.Helper()
	cat := filter.NewCatalog()
	filters.RegisterAll(cat)
	node := netsim.New(sim.NewScheduler(1)).AddNode("proxy")
	return proxy.New(node, cat)
}

// TestCommandMalformedLines drives the SP control parser with
// malformed load/add/delete/report lines: every one must produce an
// "error:" diagnostic rather than being silently accepted with a
// half-parsed key or filter name.
func TestCommandMalformedLines(t *testing.T) {
	goodKey := "11.11.10.99 7 11.11.10.10 5001"
	cases := []struct {
		name string
		line string
	}{
		{"load no arg", "load"},
		{"load extra args", "load rdrop tcp"},
		{"load unknown lib", "load nosuchfilter"},
		{"remove no arg", "remove"},
		{"remove not loaded", "remove rdrop"},
		{"add no key", "add rdrop"},
		{"add short key", "add rdrop 11.11.10.99 7 11.11.10.10"},
		{"add unloaded filter", "add nosuchfilter " + goodKey},
		{"add port trailing junk", "add rdrop 11.11.10.99 7x 11.11.10.10 5001 50"},
		{"add port out of range", "add rdrop 11.11.10.99 70000 11.11.10.10 5001 50"},
		{"add negative port", "add rdrop 11.11.10.99 -1 11.11.10.10 5001 50"},
		{"add addr trailing junk", "add rdrop 11.11.10.99x 7 11.11.10.10 5001 50"},
		{"add addr too few octets", "add rdrop 11.11.10 7 11.11.10.10 5001 50"},
		{"add addr too many octets", "add rdrop 11.11.10.99.1 7 11.11.10.10 5001 50"},
		{"add addr octet out of range", "add rdrop 11.11.10.999 7 11.11.10.10 5001 50"},
		{"add addr signed octet", "add rdrop 11.11.10.+9 7 11.11.10.10 5001 50"},
		{"delete arity short", "delete rdrop 11.11.10.99 7 11.11.10.10"},
		{"delete arity long", "delete rdrop " + goodKey + " extra"},
		{"delete bad port", "delete rdrop 11.11.10.99 7 11.11.10.10 50x1"},
		{"delete not loaded", "delete rdrop " + goodKey},
		{"report unknown filter", "report nosuchfilter"},
		{"unknown command", "frobnicate everything"},
	}
	p := newControlProxy(t)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out := p.Command(tc.line)
			if !strings.HasPrefix(out, "error:") {
				t.Fatalf("Command(%q) = %q, want an error: diagnostic", tc.line, out)
			}
		})
	}
	// None of the rejected lines may have left state behind.
	if got := p.LoadedFilters(); len(got) != 0 {
		t.Fatalf("rejected commands loaded filters: %v", got)
	}
	if got := p.Streams(); len(got) != 0 {
		t.Fatalf("rejected commands created streams: %v", got)
	}
}

// TestCommandWellFormedLines pins the happy path the experiments rely
// on, so the strictness added for malformed input cannot regress it.
func TestCommandWellFormedLines(t *testing.T) {
	p := newControlProxy(t)
	goodKey := "11.11.10.99 7 11.11.10.10 5001"
	steps := []struct {
		line string
		want string // exact output, or "" for fail-silent success
	}{
		{"load rdrop", "rdrop\n"},
		{"add rdrop " + goodKey + " 50", ""},
		{"add rdrop 0.0.0.0 0 11.11.10.10 0 25", ""}, // wild-cards stay accepted
		{"delete rdrop " + goodKey, ""},
		{"remove rdrop", ""},
	}
	for _, s := range steps {
		if out := p.Command(s.line); out != s.want {
			t.Fatalf("Command(%q) = %q, want %q", s.line, out, s.want)
		}
	}
}
