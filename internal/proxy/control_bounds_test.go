package proxy_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/filter"
	"repro/internal/ip"
	"repro/internal/netsim"
	"repro/internal/proxy"
	"repro/internal/sim"
	"repro/internal/tcp"
)

// controlRig is a minimal client ↔ SP topology with a live control
// session over simulated TCP, for exercising the session-level bounds
// (line length, UTF-8, idle deadline) that the in-process Command
// tests cannot reach.
type controlRig struct {
	sched  *sim.Scheduler
	client *tcp.Conn
	reply  []byte
	closed bool
}

func newControlRig(t *testing.T) *controlRig {
	t.Helper()
	s := sim.NewScheduler(5)
	n := netsim.New(s)
	ch := n.AddNode("kati")
	sh := n.AddNode("sp")
	n.Connect(ch, ip.MustParseAddr("10.0.0.1"), sh, ip.MustParseAddr("10.0.0.2"), netsim.LinkConfig{})
	cs := tcp.NewStack(ch, tcp.Config{})
	ss := tcp.NewStack(sh, tcp.Config{})
	ch.RegisterProto(ip.ProtoTCP, func(h ip.Header, p, raw []byte, in *netsim.Iface) { cs.Deliver(h.Src, h.Dst, p) })
	sh.RegisterProto(ip.ProtoTCP, func(h ip.Header, p, raw []byte, in *netsim.Iface) { ss.Deliver(h.Src, h.Dst, p) })
	p := proxy.New(sh, filter.NewCatalog())
	if err := proxy.ServeControl(ss, proxy.ControlPort, p); err != nil {
		t.Fatal(err)
	}
	rig := &controlRig{sched: s}
	c, err := cs.Connect(sh.Addr(), proxy.ControlPort)
	if err != nil {
		t.Fatal(err)
	}
	c.OnData = func(b []byte) { rig.reply = append(rig.reply, b...) }
	c.OnClose = func(error) { rig.closed = true }
	rig.client = c
	s.RunFor(time.Second)
	return rig
}

// TestControlSessionBounds is the table-driven companion to the
// strict-parse tests: each case sends raw bytes down a fresh control
// session and checks the diagnostic, whether the session survives,
// and whether a follow-up command still works.
func TestControlSessionBounds(t *testing.T) {
	cases := []struct {
		name       string
		send       []byte
		wantReply  string // substring the server must answer
		wantSever  bool   // session aborted by the server
		followUpOK bool   // a later "help" must still be served
	}{
		{
			name:       "well-formed line",
			send:       []byte("help\n"),
			wantReply:  "commands:",
			wantSever:  false,
			followUpOK: true,
		},
		{
			name:       "malformed UTF-8 rejected, session lives",
			send:       append([]byte("load \xff\xfe"), '\n'),
			wantReply:  "not valid UTF-8",
			wantSever:  false,
			followUpOK: true,
		},
		{
			name:       "CRLF framing with valid UTF-8 accepted",
			send:       []byte("help\r\n"),
			wantReply:  "commands:",
			wantSever:  false,
			followUpOK: true,
		},
		{
			name:      "newline-less flood severed with diagnostic",
			send:      bytes.Repeat([]byte("A"), proxy.MaxControlLine+1000),
			wantReply: "exceeds",
			wantSever: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rig := newControlRig(t)
			if err := rig.client.Write(tc.send); err != nil {
				t.Fatal(err)
			}
			rig.sched.RunFor(5 * time.Second)
			if !strings.Contains(string(rig.reply), tc.wantReply) {
				t.Fatalf("reply %q does not contain %q", rig.reply, tc.wantReply)
			}
			if rig.closed != tc.wantSever {
				t.Fatalf("session closed = %v, want %v", rig.closed, tc.wantSever)
			}
			if tc.followUpOK {
				rig.reply = nil
				if err := rig.client.Write([]byte("help\n")); err != nil {
					t.Fatal(err)
				}
				rig.sched.RunFor(5 * time.Second)
				if !strings.Contains(string(rig.reply), "commands:") {
					t.Fatalf("follow-up help not served, reply %q", rig.reply)
				}
			}
		})
	}
}

// TestControlIdleTimeout pins the per-session read deadline: a session
// that never completes a command line is severed after
// ControlIdleTimeout, and activity resets the clock.
func TestControlIdleTimeout(t *testing.T) {
	rig := newControlRig(t)

	// Activity before the deadline keeps the session alive past one
	// full timeout measured from connect.
	rig.sched.RunFor(proxy.ControlIdleTimeout / 2)
	if err := rig.client.Write([]byte("help\n")); err != nil {
		t.Fatal(err)
	}
	rig.sched.RunFor(proxy.ControlIdleTimeout*3/4 + time.Second)
	if rig.closed {
		t.Fatal("session severed despite recent activity")
	}

	// Then full idleness crosses the deadline and the server aborts.
	rig.sched.RunFor(proxy.ControlIdleTimeout)
	if !rig.closed {
		t.Fatal("idle session not severed after ControlIdleTimeout")
	}
}
