// Package proxy implements the Comma Service Proxy (thesis chapter 5):
// packet interception at a routing bottleneck, a stream registry of
// wild-card keys bound to filters, per-stream filter queues with the
// in/out priority discipline of Fig 5.2, filter accounting, and the
// telnet-style command interface of §5.3.
package proxy

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/classifier"
	"repro/internal/filter"
	"repro/internal/flowlog"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/sim"
)

// QuarantineStrikes is the number of panics a filter instance may
// cause before the proxy detaches it from its queue. The stream then
// fails open — packets keep flowing unmodified — because the thesis's
// transparency promise ranks "never break TCP end-to-end" above "keep
// the service applied".
const QuarantineStrikes = 3

// attachment is one filter instance's hooks spliced into a queue.
type attachment struct {
	hooks filter.Hooks
	seq   int // insertion order breaks priority ties (FIFO)

	// strikes counts hook panics; at QuarantineStrikes the attachment
	// is marked quarantined and swept out of the queue at the end of
	// the current interception.
	strikes     int
	quarantined bool
}

// queue is the double filter queue of one exact stream key: conceptually
// an in queue (descending priority) and an out queue (ascending
// priority) over the same attachments (thesis Fig 5.2).
type queue struct {
	key      filter.Key
	attached []*attachment // kept sorted by descending priority, then seq
	pkts     int64
	bytes    int64

	// pendingQuarantine flags that some attachment was quarantined
	// during the current interception; the sweep runs once per packet,
	// after the out queue, keeping the per-hook path branch-cheap.
	pendingQuarantine bool
}

func (q *queue) insert(a *attachment) {
	i := sort.Search(len(q.attached), func(i int) bool {
		b := q.attached[i]
		if b.hooks.Priority != a.hooks.Priority {
			return b.hooks.Priority < a.hooks.Priority
		}
		return b.seq > a.seq
	})
	q.attached = append(q.attached, nil)
	copy(q.attached[i+1:], q.attached[i:])
	q.attached[i] = a
}

// registration is a stream-registry entry: a (wild-card) key bound to a
// loaded filter with arguments.
type registration struct {
	key     filter.Key
	factory filter.Factory
	args    []string
}

// Proxy is a Comma service proxy instance attached to one node of the
// simulated network.
type Proxy struct {
	node    *netsim.Node
	catalog *filter.Catalog

	pool     map[string]filter.Factory // loaded filters
	services map[string]*serviceDef    // named compositions (§10.2.1)
	registry []*registration
	queues   map[filter.Key]*queue
	seq      int

	// prog is the compiled registry match program: per-packet lookups
	// cost O(1) in the rule count with zero allocations — no negative
	// cache needed, hence no mass-eviction rescan cliff under SYN/FIN
	// churn. Registry mutations set progDirty instead of recompiling
	// inline, so a burst of control mutations (policy storms, bulk
	// provisioning) costs one compile, paid by the first lookup after
	// the burst — still on the owning goroutine, between packets.
	// Single-writer: only the owning goroutine swaps the pointer.
	prog      *classifier.Program
	progDirty bool

	// progKeys and matchScratch are reusable compile/lookup scratch.
	progKeys     []filter.Key
	matchScratch []int32

	// emit is the reusable return slice of intercept: the node
	// consumes it before the next interception, so the hot path never
	// allocates a fresh [][]byte per packet.
	emit [][]byte

	// Log, when non-nil, receives diagnostic lines from filters and
	// the proxy itself.
	Log func(string)

	// metricSource, when set, answers filters' execution-environment
	// queries (filter.Metrics); typically wired to the host's EEM
	// variable source.
	metricSource func(name string, index int) (float64, bool)

	// obs and metrics, when set, receive structured events and expose
	// the proxy's counters. Per-packet events stay off the hot path
	// unless packet tracing is enabled on the bus.
	obs     *obs.Bus
	metrics *obs.Registry

	// nQueues/nRegs mirror len(queues)/len(registry) atomically so a
	// sharded data plane can expose merged gauges without entering the
	// shard goroutine. Updated (single-writer) at every mutation.
	nQueues atomic.Int64
	nRegs   atomic.Int64

	// Stats counts proxy-level events.
	Stats Stats

	// flows is the per-shard flow-log accumulator: every parsed TCP
	// segment folds into its flow record on the interception path.
	flows *flowlog.Table
}

// Stats counts packets through the interception module. The counters
// are atomics so the sharded data plane can sum per-shard instances
// exactly while shard goroutines keep writing: each field has a single
// writer (the owning shard) and any number of readers.
type Stats struct {
	Intercepted       atomic.Int64
	Filtered          atomic.Int64 // packets that traversed a non-empty queue
	DroppedByFilter   atomic.Int64
	Injected          atomic.Int64
	Reinjected        atomic.Int64
	HookPanics        atomic.Int64 // filter hook panics caught (never crashes)
	FilterQuarantines atomic.Int64 // attachments detached after repeated panics
	RegistryMisses    atomic.Int64 // first-sight packets no registration matched
	RegistryRebuilds  atomic.Int64 // match-program recompiles (registry mutations)
}

// Snapshot returns a point-in-time copy of the counters.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Intercepted:       s.Intercepted.Load(),
		Filtered:          s.Filtered.Load(),
		DroppedByFilter:   s.DroppedByFilter.Load(),
		Injected:          s.Injected.Load(),
		Reinjected:        s.Reinjected.Load(),
		HookPanics:        s.HookPanics.Load(),
		FilterQuarantines: s.FilterQuarantines.Load(),
		RegistryMisses:    s.RegistryMisses.Load(),
		RegistryRebuilds:  s.RegistryRebuilds.Load(),
	}
}

// StatsSnapshot is a plain-value copy of Stats, mergeable across
// shards.
type StatsSnapshot struct {
	Intercepted       int64
	Filtered          int64
	DroppedByFilter   int64
	Injected          int64
	Reinjected        int64
	HookPanics        int64
	FilterQuarantines int64
	RegistryMisses    int64
	RegistryRebuilds  int64
}

// Merge returns the field-wise sum of a and b.
func (a StatsSnapshot) Merge(b StatsSnapshot) StatsSnapshot {
	a.Intercepted += b.Intercepted
	a.Filtered += b.Filtered
	a.DroppedByFilter += b.DroppedByFilter
	a.Injected += b.Injected
	a.Reinjected += b.Reinjected
	a.HookPanics += b.HookPanics
	a.FilterQuarantines += b.FilterQuarantines
	a.RegistryMisses += b.RegistryMisses
	a.RegistryRebuilds += b.RegistryRebuilds
	return a
}

// New attaches a new service proxy to node, installing its packet
// hook. Filters are loaded from catalog by the load command.
func New(node *netsim.Node, catalog *filter.Catalog) *Proxy {
	p := NewDetached(node, catalog)
	node.SetHook(p.intercept)
	return p
}

// NewDetached builds a proxy bound to node for clock/injection but
// without installing the node packet hook: the sharded data plane owns
// dispatch and feeds each shard through Intercept directly.
func NewDetached(node *netsim.Node, catalog *filter.Catalog) *Proxy {
	return &Proxy{
		node:    node,
		catalog: catalog,
		pool:    make(map[string]filter.Factory),
		queues:  make(map[filter.Key]*queue),
		prog:    classifier.Compile(nil),
		flows:   flowlog.New(func() sim.Time { return node.Clock().Now() }, flowlog.Config{}),
	}
}

// Node returns the network node hosting the proxy.
func (p *Proxy) Node() *netsim.Node { return p.node }

// SetObs attaches the observability bus and metrics registry. The
// registry is what the "stats" control command renders; the bus feeds
// the "events" command.
func (p *Proxy) SetObs(b *obs.Bus, r *obs.Registry) {
	p.obs = b
	p.metrics = r
}

// RegisterMetrics exposes the proxy's counters under prefix
// (e.g. "proxy" -> "proxy.intercepted").
func (p *Proxy) RegisterMetrics(r *obs.Registry, prefix string) {
	r.Counter(prefix+".intercepted", func() int64 { return p.Stats.Intercepted.Load() })
	r.Counter(prefix+".filtered", func() int64 { return p.Stats.Filtered.Load() })
	r.Counter(prefix+".dropped_by_filter", func() int64 { return p.Stats.DroppedByFilter.Load() })
	r.Counter(prefix+".injected", func() int64 { return p.Stats.Injected.Load() })
	r.Counter(prefix+".reinjected", func() int64 { return p.Stats.Reinjected.Load() })
	r.Counter(prefix+".hook_panics", func() int64 { return p.Stats.HookPanics.Load() })
	r.Counter(prefix+".filter_quarantines", func() int64 { return p.Stats.FilterQuarantines.Load() })
	r.Counter(prefix+".registry_misses", func() int64 { return p.Stats.RegistryMisses.Load() })
	r.Counter(prefix+".registry_rebuilds", func() int64 { return p.Stats.RegistryRebuilds.Load() })
	r.Gauge(prefix+".streams", func() float64 { return float64(p.QueueCount()) })
	r.Gauge(prefix+".registrations", func() float64 { return float64(p.RegistrationCount()) })
	fs := p.flows.Stats()
	r.Gauge(prefix+".flow.active", func() float64 { return float64(fs.Active.Load()) })
	r.Counter(prefix+".flow.opened", func() int64 { return fs.Opened.Load() })
	r.Counter(prefix+".flow.closed", func() int64 { return fs.Closed.Load() })
	r.Counter(prefix+".flow.evicted", func() int64 { return fs.Evicted.Load() })
	r.Counter(prefix+".flow.retrans", func() int64 { return fs.Retrans.Load() })
	r.Counter(prefix+".flow.zero_win", func() int64 { return fs.ZeroWin.Load() })
}

// FlowLog exposes the proxy's flow-log accumulator (owning-goroutine
// access rules apply to Record/AppendRecords; Stats are atomics).
func (p *Proxy) FlowLog() *flowlog.Table { return p.flows }

// FlowStats snapshots the flow-log counters. Safe from any goroutine.
func (p *Proxy) FlowStats() flowlog.StatsSnapshot { return p.flows.Stats().Snapshot() }

// AppendFlowRecords appends this proxy's flow records (active +
// retained closed) to dst. Owning-goroutine only.
func (p *Proxy) AppendFlowRecords(dst []flowlog.Record) []flowlog.Record {
	return p.flows.AppendRecords(dst)
}

// QueueCount returns the number of live filter queues (streams). Safe
// from any goroutine.
func (p *Proxy) QueueCount() int64 { return p.nQueues.Load() }

// RegistrationCount returns the stream-registry size. Safe from any
// goroutine.
func (p *Proxy) RegistrationCount() int64 { return p.nRegs.Load() }

// noteSizes refreshes the atomic mirrors of len(queues)/len(registry);
// called by the owning goroutine after every mutation.
func (p *Proxy) noteSizes() {
	p.nQueues.Store(int64(len(p.queues)))
	p.nRegs.Store(int64(len(p.registry)))
}

// --- filter.Env -------------------------------------------------------------

// Clock implements filter.Env.
func (p *Proxy) Clock() *sim.Scheduler { return p.node.Clock() }

// Attach implements filter.Env: it splices hooks into the queue for
// exact key k, creating the queue if necessary.
func (p *Proxy) Attach(k filter.Key, h filter.Hooks) (func(), error) {
	if k.IsWild() {
		return nil, fmt.Errorf("proxy: cannot attach hooks to wild-card key %v", k)
	}
	q := p.queues[k]
	if q == nil {
		q = &queue{key: k}
		p.queues[k] = q
		p.noteSizes()
	}
	a := &attachment{hooks: h, seq: p.seq}
	p.seq++
	q.insert(a)
	detached := false
	return func() {
		if detached {
			return
		}
		detached = true
		p.detach(q, a)
	}, nil
}

func (p *Proxy) detach(q *queue, a *attachment) {
	for i, b := range q.attached {
		if b == a {
			q.attached = append(q.attached[:i], q.attached[i+1:]...)
			if a.hooks.OnClose != nil {
				a.hooks.OnClose()
			}
			break
		}
	}
	if len(q.attached) == 0 {
		delete(p.queues, q.key)
		p.noteSizes()
		p.obs.Emit("proxy", "queue-teardown", q.key.String(),
			obs.F("pkts", q.pkts), obs.F("bytes", q.bytes))
	}
}

// RemoveStream implements filter.Env: tear down the queue for k.
func (p *Proxy) RemoveStream(k filter.Key) {
	q := p.queues[k]
	if q == nil {
		return
	}
	delete(p.queues, k)
	p.noteSizes()
	for _, a := range q.attached {
		if a.hooks.OnClose != nil {
			a.hooks.OnClose()
		}
	}
	p.obs.Emit("proxy", "queue-teardown", k.String(),
		obs.F("pkts", q.pkts), obs.F("bytes", q.bytes))
}

// Inject implements filter.Env: emit a raw datagram from the proxy.
func (p *Proxy) Inject(raw []byte) {
	p.Stats.Injected.Add(1)
	p.node.InjectPacket(raw)
}

// Logf implements filter.Env.
func (p *Proxy) Logf(format string, args ...any) {
	if p.Log != nil {
		p.Log(fmt.Sprintf(format, args...))
	}
}

var _ filter.Env = (*Proxy)(nil)
var _ filter.Spawner = (*Proxy)(nil)
var _ filter.Metrics = (*Proxy)(nil)
var _ filter.FlowSampler = (*Proxy)(nil)

// FlowSRTT implements filter.FlowSampler: the smoothed RTT of k's flow
// out of this proxy's flow log. Owning-goroutine only, like the flow
// log itself — filter hooks and timers already run there.
func (p *Proxy) FlowSRTT(k filter.Key) (time.Duration, bool) {
	return p.flows.SRTT(k)
}

// SetMetricSource wires the proxy host's execution-environment
// variables (e.g. an eem.NodeSource) into the filters' Env.
func (p *Proxy) SetMetricSource(fn func(name string, index int) (float64, bool)) {
	p.metricSource = fn
}

// Metric implements filter.Metrics.
func (p *Proxy) Metric(name string, index int) (float64, bool) {
	if p.metricSource == nil {
		return 0, false
	}
	return p.metricSource(name, index)
}

// Spawn implements filter.Spawner: instantiate a loaded filter on an
// exact key without creating a stream-registry entry. The launcher
// filter uses this to apply its configured services to each new
// stream matching its wild-card key.
func (p *Proxy) Spawn(name string, k filter.Key, args []string) error {
	f, ok := p.pool[name]
	if !ok {
		return fmt.Errorf("proxy: spawn: filter %q %w", name, ErrNotLoaded)
	}
	if k.IsWild() {
		return fmt.Errorf("proxy: spawn: key %v is not exact", k)
	}
	return f.New(p, k, args)
}

// --- interception path -------------------------------------------------------

// Intercept runs the interception path on one raw datagram exactly as
// the node packet hook would. The sharded data plane calls it from
// shard workers (in may be nil — the path ignores it); the returned
// emit slice is borrowed, valid until the proxy's next interception.
func (p *Proxy) Intercept(raw []byte, in *netsim.Iface) [][]byte {
	return p.intercept(raw, in)
}

// InterceptAppend runs the interception path on raw and appends every
// output datagram to dst, returning the extended slice. Unlike
// Intercept — whose returned slice is reused on the next interception
// — the appended entries stay valid across later interceptions: each
// is either the caller's raw buffer passed through untouched, or a
// freshly marshalled datagram the proxy never writes again. The
// batched shard pipeline relies on this to accumulate a whole batch's
// output before one sink delivery.
func (p *Proxy) InterceptAppend(raw []byte, in *netsim.Iface, dst [][]byte) [][]byte {
	return p.interceptInto(raw, in, dst)
}

// intercept is the node packet hook: the returned slice is the proxy's
// reusable emit list, valid until the next interception, so the
// steady-state hook path never allocates a fresh [][]byte per packet.
func (p *Proxy) intercept(raw []byte, in *netsim.Iface) [][]byte {
	for i := range p.emit {
		p.emit[i] = nil // drop references from the previous packet
	}
	p.emit = p.interceptInto(raw, in, p.emit[:0])
	return p.emit
}

// interceptInto is the interception path: parse, match, build queues
// on demand, run the in and out queues, and append the surviving (and
// injected) datagrams to dst. The steady-state pass-through path (no
// matching service, or a clean traversal of the tcp filter) is
// allocation-free: the parsed view comes from the packet pool and is
// Released before returning.
func (p *Proxy) interceptInto(raw []byte, in *netsim.Iface, dst [][]byte) [][]byte {
	p.Stats.Intercepted.Add(1)
	pkt, err := filter.Parse(raw)
	if err != nil {
		return append(dst, raw) // unparseable: pass through untouched
	}
	if p.obs.PacketsTraced() {
		p.obs.EmitPacket("proxy", "intercept", pkt.Key.String(), raw)
	}
	if pkt.TCP != nil {
		p.flows.Record(pkt.Key, pkt.TCP, len(raw))
	}
	q := p.queues[pkt.Key]
	if q == nil {
		q = p.buildQueue(pkt.Key)
	}
	if q == nil || len(q.attached) == 0 {
		pkt.Release()
		return append(dst, raw)
	}
	p.Stats.Filtered.Add(1)
	q.pkts++
	q.bytes += int64(len(raw))

	// In queue: descending priority (attached is already sorted that
	// way). Read-only inspection.
	for _, a := range q.attached {
		if a.hooks.In != nil && !a.quarantined {
			p.runHook(q, a, a.hooks.In, pkt)
		}
	}
	// Out queue: ascending priority — the highest-priority filter
	// writes last, overriding lower-priority changes (thesis §5.2).
	for i := len(q.attached) - 1; i >= 0; i-- {
		if a := q.attached[i]; a.hooks.Out != nil && !a.quarantined {
			p.runHook(q, a, a.hooks.Out, pkt)
		}
	}
	if q.pendingQuarantine {
		p.sweepQuarantined(q)
	}

	if pkt.Dropped() {
		p.Stats.DroppedByFilter.Add(1)
		p.obs.Emit("proxy", "filter-drop", q.key.String(), obs.F("len", len(raw)))
	} else {
		if pkt.Dirty() {
			// No filter remarshalled the modified packet: emit it with
			// its stale checksums, as an in-place edit would. Loading
			// the tcp bookkeeping filter prevents this.
			if err := pkt.RemarshalStale(); err != nil {
				p.Logf("proxy: remarshal of dirty packet failed: %v", err)
			}
		}
		p.Stats.Reinjected.Add(1)
		dst = append(dst, pkt.Raw)
	}
	for _, extra := range pkt.Injections() {
		p.Stats.Injected.Add(1)
		dst = append(dst, extra)
	}
	pkt.Release()
	return dst
}

// runHook invokes hook(pkt), converting a panic into a quarantine
// strike instead of a crash: a broken filter must never take the
// stream — or the proxy — down with it. The single static defer is
// open-coded by the compiler, so the no-panic path stays
// allocation-free (held to by the internal/perf gates).
func (p *Proxy) runHook(q *queue, a *attachment, hook func(*filter.Packet), pkt *filter.Packet) {
	defer func() {
		if r := recover(); r != nil {
			p.noteHookPanic(q, a, r)
		}
	}()
	hook(pkt)
}

// noteHookPanic records one strike against the attachment and marks it
// for quarantine once it reaches QuarantineStrikes.
func (p *Proxy) noteHookPanic(q *queue, a *attachment, r any) {
	p.Stats.HookPanics.Add(1)
	a.strikes++
	p.obs.Emit("proxy", "filter-panic", q.key.String(),
		obs.F("filter", a.hooks.Filter), obs.F("strikes", a.strikes),
		obs.F("err", fmt.Sprint(r)))
	p.Logf("proxy: filter %s panicked on %v (strike %d/%d): %v",
		a.hooks.Filter, q.key, a.strikes, QuarantineStrikes, r)
	if a.strikes >= QuarantineStrikes && !a.quarantined {
		a.quarantined = true
		q.pendingQuarantine = true
	}
}

// sweepQuarantined detaches every quarantined attachment from q. The
// queue object survives even if it empties: it becomes a tombstone
// through which the stream's packets pass unmodified (fail open),
// rather than being rebuilt — which would re-instantiate the broken
// filter and let it panic another QuarantineStrikes times per rebuild.
func (p *Proxy) sweepQuarantined(q *queue) {
	q.pendingQuarantine = false
	kept := q.attached[:0]
	for _, a := range q.attached {
		if !a.quarantined {
			kept = append(kept, a)
			continue
		}
		p.Stats.FilterQuarantines.Add(1)
		p.obs.Emit("proxy", "filter-quarantine", q.key.String(),
			obs.F("filter", a.hooks.Filter), obs.F("strikes", a.strikes))
		p.Logf("proxy: filter %s quarantined on %v after %d panics (stream fails open)",
			a.hooks.Filter, q.key, a.strikes)
		if a.hooks.OnClose != nil {
			// The filter already proved itself broken; a panicking
			// OnClose must not undo the containment.
			func() {
				defer func() { recover() }()
				a.hooks.OnClose()
			}()
		}
	}
	q.attached = kept
}

// matchesRegistry is the naive reference matcher: scan every
// registration for a (wild-card) key matching exact key k. The
// compiled match program must agree with this on every lookup (see the
// property test in match_test.go and the classifier package's parity
// fuzz target).
func (p *Proxy) matchesRegistry(k filter.Key) bool {
	for _, r := range p.registry {
		if r.key.Matches(k) {
			return true
		}
	}
	return false
}

// markProgramDirty flags the compiled program as stale. Every registry
// mutation calls it before returning, and program() recompiles before
// the next lookup, so no lookup can ever see a pre-mutation answer —
// there is no cached per-key state that can go stale, which is what
// retired the old negative-match cache (and its mass-eviction rescan
// cliff at 2^16 keys under SYN/FIN churn). Deferring the compile to
// the next lookup makes a burst of mutations cost one compile instead
// of one per mutation.
func (p *Proxy) markProgramDirty() { p.progDirty = true }

// program returns the compiled match program, recompiling first if a
// mutation left it dirty.
//
// Concurrency: only the proxy's owning goroutine mutates the registry
// and calls lookups; on the concurrent plane that is the shard
// goroutine, where mutations land between batches (the plane's
// quiesce/epoch barrier) and lookups happen per packet. The rebuild
// and pointer swap are therefore ordinary single-writer state — no
// packet on this shard can ever observe a half-built program, and the
// epoch bump after the mutation barrier publishes the registry change
// to control-plane readers.
func (p *Proxy) program() *classifier.Program {
	if p.progDirty {
		p.rebuildProgram()
	}
	return p.prog
}

// rebuildProgram recompiles the match program from the registry.
func (p *Proxy) rebuildProgram() {
	keys := p.progKeys[:0]
	for _, r := range p.registry {
		keys = append(keys, r.key)
	}
	p.progKeys = keys
	p.prog = classifier.Compile(keys)
	p.progDirty = false
	p.Stats.RegistryRebuilds.Add(1)
}

// FlushMatchCache forces an immediate recompile of the registry match
// program. Steady state never needs this — registry mutations mark the
// program dirty and the next lookup rebuilds it — but the concurrent
// plane broadcasts it as a control message (exercising epoch-boundary
// program swaps under load), and tests use it after poking proxy
// internals.
func (p *Proxy) FlushMatchCache() { p.rebuildProgram() }

// MatchProgramStats exposes the compiled program's shape (rule count,
// equivalence classes, table entries, scan fallback). Owning-goroutine
// only, like every registry accessor.
func (p *Proxy) MatchProgramStats() classifier.Stats { return p.program().Stats() }

// buildQueue instantiates every registered filter whose wild-card key
// matches the new exact key (thesis: "a filter queue is built by
// creating a new instantiation of each filter object in the stream
// registry whose associated wild-card key matches the packet key").
// Returns nil when no registration matches. The compiled program
// answers the match in O(1) w.r.t. registry size and, on the
// (overwhelmingly common) no-match path, allocation-free.
func (p *Proxy) buildQueue(k filter.Key) *queue {
	p.matchScratch = p.program().AppendMatches(p.matchScratch[:0], k)
	if len(p.matchScratch) == 0 {
		p.Stats.RegistryMisses.Add(1)
		return nil
	}
	for _, i := range p.matchScratch {
		r := p.registry[i]
		if err := r.factory.New(p, k, r.args); err != nil {
			p.Logf("proxy: %s insertion on %v failed: %v", r.factory.Name(), k, err)
		}
	}
	q := p.queues[k] // filters attached via Env.Attach
	if q != nil {
		p.obs.Emit("proxy", "queue-build", k.String(), obs.F("filters", len(q.attached)))
	}
	return q
}

// --- command operations (§5.3.1) ---------------------------------------------

// LoadFilter implements the "load" command: fetch a factory from the
// catalog into the filter pool. Returns the registered filter name.
func (p *Proxy) LoadFilter(name string) (string, error) {
	f, err := p.catalog.Load(name)
	if err != nil {
		return "", err
	}
	if _, dup := p.pool[f.Name()]; dup {
		return "", fmt.Errorf("proxy: filter %q %w", f.Name(), ErrAlreadyLoaded)
	}
	p.pool[f.Name()] = f
	return f.Name(), nil
}

// UnloadFilter implements the "remove" command: drop the filter from
// the pool along with its registrations and live attachments.
func (p *Proxy) UnloadFilter(name string) error {
	if _, ok := p.pool[name]; !ok {
		return fmt.Errorf("proxy: filter %q %w", name, ErrNotLoaded)
	}
	delete(p.pool, name)
	keep := p.registry[:0]
	for _, r := range p.registry {
		if r.factory.Name() != name {
			keep = append(keep, r)
		}
	}
	p.registry = keep
	p.noteSizes()
	p.markProgramDirty()
	p.removeAttachments(name, func(filter.Key) bool { return true })
	return nil
}

// AddFilter implements the "add" command: bind the loaded filter to a
// (possibly wild-card) key with arguments. Exact keys are serviced
// immediately; wild-card keys take effect as matching streams appear,
// and also instantiate on currently-active matching streams.
func (p *Proxy) AddFilter(name string, k filter.Key, args []string) error {
	var f filter.Factory
	if d, isSvc := p.services[name]; isSvc {
		f = &serviceFactory{p: p, d: d}
	} else {
		var ok bool
		f, ok = p.pool[name]
		if !ok {
			return fmt.Errorf("proxy: filter %q %w", name, ErrNotLoaded)
		}
	}
	p.registry = append(p.registry, &registration{key: k, factory: f, args: args})
	p.noteSizes()
	p.markProgramDirty()
	if !k.IsWild() {
		if err := f.New(p, k, args); err != nil {
			// Roll back: a registration left behind after New fails
			// would respawn the broken filter on the next matching
			// packet. Recompiling from the restored registry is always
			// correct — unlike the retired negCache-snapshot restore,
			// there is no saved lookup state that an interleaved
			// mutation could make stale, because the program is a pure
			// function of p.registry and f.New (the only code that ran
			// since the append) has no path back into the registry:
			// filter.Env exposes Attach/RemoveStream/Spawn, none of
			// which touch registrations.
			p.registry = p.registry[:len(p.registry)-1]
			p.noteSizes()
			p.markProgramDirty()
			return err
		}
		return nil
	}
	// Service active streams that match the new wild-card.
	var live []filter.Key
	for qk := range p.queues {
		if k.Matches(qk) {
			live = append(live, qk)
		}
	}
	sort.Slice(live, func(i, j int) bool { return live[i].String() < live[j].String() })
	for _, qk := range live {
		if err := f.New(p, qk, args); err != nil {
			return err
		}
	}
	return nil
}

// DeleteFilter implements the "delete" command: remove the filter's
// registration and attachments for the given key.
func (p *Proxy) DeleteFilter(name string, k filter.Key) error {
	_, isSvc := p.services[name]
	if _, ok := p.pool[name]; !ok && !isSvc {
		return fmt.Errorf("proxy: filter %q %w", name, ErrNotLoaded)
	}
	removedReg := false
	keep := p.registry[:0]
	for _, r := range p.registry {
		if r.factory.Name() == name && r.key == k {
			removedReg = true
			continue
		}
		keep = append(keep, r)
	}
	p.registry = keep
	p.noteSizes()
	p.markProgramDirty()
	// Remove attachments on the exact key and its reverse (filters
	// conventionally attach both directions), or on all matching keys
	// for a wild-card delete.
	removedAtt := p.removeAttachments(name, func(qk filter.Key) bool {
		if k.IsWild() {
			return k.Matches(qk)
		}
		return qk == k || qk == k.Reverse()
	})
	if !removedReg && removedAtt == 0 {
		return fmt.Errorf("proxy: %w %v for filter %q", ErrNoSuchStream, k, name)
	}
	return nil
}

// removeAttachments detaches name's hooks from every queue whose key
// matches, returning how many attachments were removed.
func (p *Proxy) removeAttachments(name string, match func(filter.Key) bool) int {
	// Sort the matching keys before touching them: OnClose hooks have
	// observable effects (events, TCP teardown), so their order must
	// not depend on map iteration.
	var keys []filter.Key
	for qk := range p.queues {
		if match(qk) {
			keys = append(keys, qk)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	removed := 0
	for _, qk := range keys {
		q := p.queues[qk]
		kept := q.attached[:0]
		for _, a := range q.attached {
			if a.hooks.Filter == name {
				if a.hooks.OnClose != nil {
					a.hooks.OnClose()
				}
				removed++
				continue
			}
			kept = append(kept, a)
		}
		q.attached = kept
		if len(q.attached) == 0 {
			delete(p.queues, qk)
			p.noteSizes()
			p.obs.Emit("proxy", "queue-teardown", qk.String(),
				obs.F("pkts", q.pkts), obs.F("bytes", q.bytes))
		}
	}
	return removed
}

// Report implements the "report" command: for each loaded filter (or
// just the named one), list the exact stream keys it services, in the
// format of thesis Fig 5.3.
func (p *Proxy) Report(name string) (string, error) {
	names, perFilter, err := p.ReportData(name)
	if err != nil {
		return "", err
	}
	return RenderReport(names, perFilter), nil
}

// ReportData gathers the raw report listing: the filter names to show
// (sorted) and, per filter, the stream keys it services. The sharded
// data plane merges the per-shard maps before rendering.
func (p *Proxy) ReportData(name string) ([]string, map[string][]string, error) {
	if name != "" {
		_, isFilter := p.pool[name]
		_, isSvc := p.services[name]
		if !isFilter && !isSvc {
			return nil, nil, fmt.Errorf("proxy: filter %q %w", name, ErrNotLoaded)
		}
	}
	// Gather keys per filter: live attachments plus wild-card
	// registrations (shown with their wild-card key, as the thesis's
	// launcher line "11.11.10.10 0 -> 0.0.0.0 0" does).
	perFilter := make(map[string][]string)
	for _, r := range p.registry {
		if r.key.IsWild() {
			perFilter[r.factory.Name()] = append(perFilter[r.factory.Name()], r.key.String())
		}
	}
	for qk, q := range p.queues {
		for _, a := range q.attached {
			perFilter[a.hooks.Filter] = append(perFilter[a.hooks.Filter], qk.String())
		}
	}
	var names []string
	if name != "" {
		names = []string{name}
	} else {
		for n := range p.pool {
			names = append(names, n)
		}
		for n := range p.services {
			names = append(names, n)
		}
		sort.Strings(names)
	}
	return names, perFilter, nil
}

// RenderReport renders ReportData output in the Fig 5.3 format: each
// filter name on its own line, its (sorted, deduplicated) stream keys
// tab-indented beneath it.
func RenderReport(names []string, perFilter map[string][]string) string {
	var b strings.Builder
	for _, n := range names {
		keys := perFilter[n]
		sort.Strings(keys)
		keys = dedup(keys)
		fmt.Fprintf(&b, "%s\n", n)
		for _, k := range keys {
			fmt.Fprintf(&b, "\t%s\n", k)
		}
	}
	return b.String()
}

func dedup(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// Streams returns the exact keys with live filter queues, sorted, with
// the filter names attached to each — Kati's stream view.
func (p *Proxy) Streams() []StreamInfo {
	var out []StreamInfo
	for k, q := range p.queues {
		si := StreamInfo{Key: k, Packets: q.pkts, Bytes: q.bytes}
		for _, a := range q.attached {
			si.Filters = append(si.Filters, a.hooks.Filter)
		}
		out = append(out, si)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key.String() < out[j].Key.String() })
	return out
}

// StreamInfo describes one live serviced stream for monitoring.
type StreamInfo struct {
	Key     filter.Key
	Filters []string // in queue order (descending priority)
	Packets int64
	Bytes   int64
}

// LoadedFilters lists the filter pool, sorted by name.
func (p *Proxy) LoadedFilters() []string {
	var out []string
	for n := range p.pool {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Available lists filters the catalog could load.
func (p *Proxy) Available() []string { return p.catalog.Names() }
