package proxy_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/filter"
	"repro/internal/ip"
	"repro/internal/netsim"
	"repro/internal/proxy"
	"repro/internal/tcp"
)

func registerNoop(cat *filter.Catalog, name string) {
	cat.Register(name, func() filter.Factory {
		return &fakeFilter{name: name, priority: filter.Normal,
			onNew: func(env filter.Env, k filter.Key, args []string) error {
				_, err := env.Attach(k, filter.Hooks{Filter: name, Priority: filter.Normal})
				return err
			}}
	})
}

func TestServiceDefinitionAndApply(t *testing.T) {
	cat := filter.NewCatalog()
	registerNoop(cat, "f1")
	registerNoop(cat, "f2")
	rig := newRig(t, cat)
	p := rig.prox

	// Defining with unloaded filters fails.
	if out := p.Command("service combo f1 f2"); !strings.HasPrefix(out, "error") {
		t.Fatalf("service with unloaded filters: %q", out)
	}
	p.Command("load f1")
	p.Command("load f2")
	if out := p.Command("service combo f1 f2"); out != "" {
		t.Fatalf("service define: %q", out)
	}
	if out := p.Command("services"); !strings.Contains(out, "combo = f1 f2") {
		t.Fatalf("services listing: %q", out)
	}

	// Apply the service to a wild-card key; a matching stream gets both
	// filters.
	if out := p.Command("add combo 0.0.0.0 0 10.2.0.1 0"); out != "" {
		t.Fatalf("add service: %q", out)
	}
	rig.mStack.Listen(2000, func(c *tcp.Conn) {})
	rig.wStack.Connect(rig.mobile.Addr(), 2000)
	rig.sched.RunFor(time.Second)

	ss := rig.prox.Streams()
	if len(ss) != 1 {
		t.Fatalf("streams: %v", ss)
	}
	has := map[string]bool{}
	for _, f := range ss[0].Filters {
		has[f] = true
	}
	if !has["f1"] || !has["f2"] {
		t.Fatalf("service members not attached: %v", ss[0].Filters)
	}
	// The service name shows in the report with its wild-card key.
	rep := p.Command("report")
	if !strings.Contains(rep, "combo") {
		t.Fatalf("report missing service:\n%s", rep)
	}
	if out := p.Command("unservice combo"); out != "" {
		t.Fatalf("unservice: %q", out)
	}
	if out := p.Command("services"); strings.Contains(out, "combo") {
		t.Fatalf("service survived unservice: %q", out)
	}
}

func TestServiceNameCannotShadowFilter(t *testing.T) {
	cat := filter.NewCatalog()
	registerNoop(cat, "f1")
	rig := newRig(t, cat)
	rig.prox.Command("load f1")
	if out := rig.prox.Command("service f1 f1"); !strings.HasPrefix(out, "error") {
		t.Fatalf("service shadowing a filter accepted: %q", out)
	}
}

func TestControlSessionAuth(t *testing.T) {
	cat := filter.NewCatalog()
	registerNoop(cat, "f1")
	rig := newRig(t, cat)
	policy := &proxy.ControlPolicy{Token: "sekrit"}
	sess := proxy.NewControlSession(rig.prox, policy)

	// Read-only commands work unauthenticated.
	if out := sess.Exec("report"); strings.HasPrefix(out, "error") {
		t.Fatalf("report blocked: %q", out)
	}
	// Mutations are gated.
	if out := sess.Exec("load f1"); !strings.Contains(out, "authentication required") {
		t.Fatalf("unauthenticated load: %q", out)
	}
	if out := sess.Exec("auth wrong"); !strings.Contains(out, "bad token") {
		t.Fatalf("wrong token: %q", out)
	}
	if out := sess.Exec("auth sekrit"); out != "" {
		t.Fatalf("auth: %q", out)
	}
	if out := sess.Exec("load f1"); out != "f1\n" {
		t.Fatalf("authenticated load: %q", out)
	}
	// Auth on a policy without a token is an error.
	open := proxy.NewControlSession(rig.prox, nil)
	if out := open.Exec("auth anything"); !strings.Contains(out, "not enabled") {
		t.Fatalf("auth without policy: %q", out)
	}
	// No policy: everything open (the thesis prototype's behaviour).
	if out := open.Exec("remove f1"); out != "" {
		t.Fatalf("open session remove: %q", out)
	}
}

func TestControlPolicyPeerACL(t *testing.T) {
	cat := filter.NewCatalog()
	registerNoop(cat, "f1")
	rig := newRig(t, cat)

	ctrlStack := tcp.NewStack(rig.router, tcp.Config{})
	rig.router.RegisterProto(ip.ProtoTCP, func(h ip.Header, p, raw []byte, in *netsim.Iface) {
		if rig.router.HasAddr(h.Dst) {
			ctrlStack.Deliver(h.Src, h.Dst, p)
		}
	})
	// Only the mobile (10.2.0.1) is allowed to control the proxy.
	policy := &proxy.ControlPolicy{AllowedPeers: []ip.Addr{rig.mobile.Addr()}}
	if err := proxy.ServeControlWithPolicy(ctrlStack, proxy.ControlPort, rig.prox, policy); err != nil {
		t.Fatal(err)
	}

	// Disallowed peer (the wired host) is reset.
	var wiredErr error
	wiredDone := false
	cw, _ := rig.wStack.Connect(ip.MustParseAddr("10.1.0.254"), proxy.ControlPort)
	cw.OnClose = func(err error) { wiredErr = err; wiredDone = true }
	cw.OnEstablished = func() { cw.Write([]byte("report\n")) }
	rig.sched.RunFor(2 * time.Second)
	if !wiredDone || wiredErr == nil {
		t.Fatalf("disallowed peer was not rejected: done=%v err=%v", wiredDone, wiredErr)
	}

	// Allowed peer works.
	var resp strings.Builder
	cm, _ := rig.mStack.Connect(ip.MustParseAddr("10.2.0.254"), proxy.ControlPort)
	cm.OnData = func(b []byte) { resp.Write(b) }
	cm.OnEstablished = func() { cm.Write([]byte("help\n")) }
	rig.sched.RunFor(2 * time.Second)
	if !strings.Contains(resp.String(), "commands:") {
		t.Fatalf("allowed peer got %q", resp.String())
	}
}
