package proxy_test

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/filter"
	"repro/internal/proxy"
)

// snapInst is a test filter instance whose whole state is one byte
// string.
type snapInst struct{ data []byte }

func (s *snapInst) SnapshotState() ([]byte, error) { return append([]byte(nil), s.data...), nil }
func (s *snapInst) RestoreState(b []byte) error {
	s.data = append([]byte(nil), b...)
	return nil
}

// exportCatalog registers "snap" (snapshottable, state seeded from its
// arg) and "plain" (no snapshotter — must migrate fresh). Instances
// are recorded in the maps so the test can inspect both proxies.
func exportCatalog(snaps, plains map[string][]*snapInst, tag *string) *filter.Catalog {
	cat := filter.NewCatalog()
	cat.Register("snap", func() filter.Factory {
		return &fakeFilter{name: "snap", priority: filter.Normal,
			onNew: func(env filter.Env, k filter.Key, args []string) error {
				inst := &snapInst{data: []byte("fresh")}
				if len(args) > 0 {
					inst.data = []byte(args[0])
				}
				snaps[*tag] = append(snaps[*tag], inst)
				_, err := env.Attach(k, filter.Hooks{Filter: "snap", Priority: filter.Normal, State: inst})
				return err
			}}
	})
	cat.Register("plain", func() filter.Factory {
		return &fakeFilter{name: "plain", priority: filter.Low,
			onNew: func(env filter.Env, k filter.Key, args []string) error {
				inst := &snapInst{data: []byte("fresh")}
				plains[*tag] = append(plains[*tag], inst)
				_, err := env.Attach(k, filter.Hooks{Filter: "plain", Priority: filter.Low})
				return err
			}}
	})
	return cat
}

func TestExportImportRoundTrip(t *testing.T) {
	snaps := map[string][]*snapInst{}
	plains := map[string][]*snapInst{}
	tag := "A"
	cat := exportCatalog(snaps, plains, &tag)
	rigA := newRig(t, cat)
	rigB := newRig(t, cat)
	k, err := filter.ParseKey([]string{"10.1.0.1", "80", "10.2.0.1", "2000"})
	if err != nil {
		t.Fatal(err)
	}

	a := rigA.prox
	if _, err := a.LoadFilter("snap"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.LoadFilter("plain"); err != nil {
		t.Fatal(err)
	}
	if err := a.AddFilter("snap", k, []string{"seeded"}); err != nil {
		t.Fatal(err)
	}
	if err := a.AddFilter("plain", k, nil); err != nil {
		t.Fatal(err)
	}
	if err := a.AddFilter("snap", k.Reverse(), []string{"reverse-side"}); err != nil {
		t.Fatal(err)
	}
	// Mutate the live state past its seed, as traffic would.
	snaps["A"][0].data = append(snaps["A"][0].data, []byte("+edits")...)

	ex, err := a.ExportStream(k)
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	if len(ex.Bindings) != 3 {
		t.Fatalf("exported %d bindings, want 3", len(ex.Bindings))
	}
	if len(ex.States) != 2 {
		t.Fatalf("exported %d states, want 2 (plain has none)", len(ex.States))
	}

	if _, err := a.ExtractStream(k); err != nil {
		t.Fatalf("extract: %v", err)
	}
	if a.StreamBindings(k) != 0 || a.HasStream(k) {
		t.Fatal("source still owns the stream after extract")
	}

	// Import on B: filters auto-load from the catalog.
	tag = "B"
	b := rigB.prox
	if err := b.ImportStream(ex); err != nil {
		t.Fatalf("import: %v", err)
	}
	if got := b.StreamBindings(k); got != 3 {
		t.Fatalf("destination has %d bindings, want 3", got)
	}
	if !b.HasStream(k) {
		t.Fatal("destination does not own the stream")
	}
	if len(snaps["B"]) != 2 {
		t.Fatalf("destination instantiated %d snap instances, want 2", len(snaps["B"]))
	}
	if want := []byte("seeded+edits"); !bytes.Equal(snaps["B"][0].data, want) {
		t.Fatalf("restored state %q, want %q", snaps["B"][0].data, want)
	}
	if want := []byte("reverse-side"); !bytes.Equal(snaps["B"][1].data, want) {
		t.Fatalf("restored reverse state %q, want %q", snaps["B"][1].data, want)
	}
	// The non-snapshotter filter migrated fresh.
	if want := []byte("fresh"); !bytes.Equal(plains["B"][0].data, want) {
		t.Fatalf("plain instance state %q, want fresh", plains["B"][0].data)
	}
}

func TestExportErrors(t *testing.T) {
	snaps := map[string][]*snapInst{}
	plains := map[string][]*snapInst{}
	tag := "A"
	rig := newRig(t, exportCatalog(snaps, plains, &tag))
	k, _ := filter.ParseKey([]string{"10.1.0.1", "80", "10.2.0.1", "2000"})
	if _, err := rig.prox.ExportStream(k); !errors.Is(err, proxy.ErrNoSuchStream) {
		t.Fatalf("export of absent stream: %v", err)
	}
	if _, err := rig.prox.ExportStream(filter.Key{}); err == nil {
		t.Fatal("wild-card export accepted")
	}
	bogus := &proxy.StreamExport{
		Key:      k,
		Bindings: []proxy.BindingExport{{Filter: "nothere", Key: k}},
	}
	if err := rig.prox.ValidateImport(bogus); err == nil {
		t.Fatal("import with unknown filter validated")
	}
	if err := rig.prox.ImportStream(bogus); err == nil {
		t.Fatal("import with unknown filter accepted")
	}
	if rig.prox.StreamBindings(k) != 0 {
		t.Fatal("failed import left bindings behind")
	}
}

func TestImportQueueCounters(t *testing.T) {
	snaps := map[string][]*snapInst{}
	plains := map[string][]*snapInst{}
	tag := "A"
	cat := exportCatalog(snaps, plains, &tag)
	rigA := newRig(t, cat)
	rigB := newRig(t, cat)
	k, _ := filter.ParseKey([]string{"10.1.0.1", "80", "10.2.0.1", "2000"})
	a := rigA.prox
	if _, err := a.LoadFilter("snap"); err != nil {
		t.Fatal(err)
	}
	if err := a.AddFilter("snap", k, nil); err != nil {
		t.Fatal(err)
	}
	ex, err := a.ExtractStream(k)
	if err != nil {
		t.Fatal(err)
	}
	ex.Pkts, ex.Bytes = 42, 99999
	tag = "B"
	if err := rigB.prox.ImportStream(ex); err != nil {
		t.Fatal(err)
	}
	ex2, err := rigB.prox.ExportStream(k)
	if err != nil {
		t.Fatal(err)
	}
	if ex2.Pkts != 42 || ex2.Bytes != 99999 {
		t.Fatalf("queue counters not restored: %+v", ex2)
	}
}
