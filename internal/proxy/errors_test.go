package proxy_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/filter"
	"repro/internal/filters"
	"repro/internal/netsim"
	"repro/internal/proxy"
	"repro/internal/sim"
)

func newErrRig(t *testing.T) *proxy.Proxy {
	t.Helper()
	s := sim.NewScheduler(1)
	n := netsim.New(s)
	node := n.AddNode("proxyhost")
	cat := filter.NewCatalog()
	filters.RegisterAll(cat)
	return proxy.New(node, cat)
}

func mustKey(t *testing.T) filter.Key {
	t.Helper()
	k, err := filter.ParseKey([]string{"10.0.0.1", "7", "10.0.0.2", "80"})
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// TestTypedControlErrors pins the sentinel classification of every
// control-path failure and the exact legacy diagnostic text riding on
// it: errors.Is must classify without the message changing byte-wise.
func TestTypedControlErrors(t *testing.T) {
	key := mustKey(t)
	cases := []struct {
		name     string
		op       func(p *proxy.Proxy) error
		want     error
		contains string
	}{
		{"load-duplicate", func(p *proxy.Proxy) error {
			if _, err := p.LoadFilter("rdrop"); err != nil {
				return err
			}
			_, err := p.LoadFilter("rdrop")
			return err
		}, proxy.ErrAlreadyLoaded, `filter "rdrop" already loaded`},
		{"load-unknown", func(p *proxy.Proxy) error {
			_, err := p.LoadFilter("no-such-lib")
			return err
		}, filter.ErrUnknownFilter, `no factory "no-such-lib" in catalog`},
		{"remove-not-loaded", func(p *proxy.Proxy) error {
			return p.UnloadFilter("rdrop")
		}, proxy.ErrNotLoaded, `filter "rdrop" not loaded`},
		{"add-not-loaded", func(p *proxy.Proxy) error {
			return p.AddFilter("rdrop", key, nil)
		}, proxy.ErrNotLoaded, `filter "rdrop" not loaded`},
		{"delete-not-loaded", func(p *proxy.Proxy) error {
			return p.DeleteFilter("rdrop", key)
		}, proxy.ErrNotLoaded, `filter "rdrop" not loaded`},
		{"delete-no-stream", func(p *proxy.Proxy) error {
			if _, err := p.LoadFilter("rdrop"); err != nil {
				return err
			}
			return p.DeleteFilter("rdrop", key)
		}, proxy.ErrNoSuchStream, `no such stream`},
	}
	for _, c := range cases {
		p := newErrRig(t)
		err := c.op(p)
		if err == nil {
			t.Errorf("%s: no error", c.name)
			continue
		}
		if !errors.Is(err, c.want) {
			t.Errorf("%s: errors.Is(%v, %v) = false", c.name, err, c.want)
		}
		if !strings.Contains(err.Error(), c.contains) {
			t.Errorf("%s: message %q missing %q", c.name, err, c.contains)
		}
	}
}

// TestDeleteAfterAddSucceeds: a registration created by add is a valid
// delete target even when no live stream ever attached — the historic
// fail-silent contract that examples and tests depend on.
func TestDeleteAfterAddSucceeds(t *testing.T) {
	p := newErrRig(t)
	key := mustKey(t)
	if _, err := p.LoadFilter("rdrop"); err != nil {
		t.Fatal(err)
	}
	if err := p.AddFilter("rdrop", key, nil); err != nil {
		t.Fatal(err)
	}
	if err := p.DeleteFilter("rdrop", key); err != nil {
		t.Fatalf("delete of a registered key errored: %v", err)
	}
	// A second delete of the same key now has nothing to remove.
	if err := p.DeleteFilter("rdrop", key); !errors.Is(err, proxy.ErrNoSuchStream) {
		t.Fatalf("repeat delete: err = %v, want ErrNoSuchStream", err)
	}
}
