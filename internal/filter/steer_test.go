package filter

import (
	"testing"

	"repro/internal/ip"
	"repro/internal/tcp"
	"repro/internal/udp"
)

// steerCorpus builds representative datagrams: clean TCP/UDP, a TCP
// segment with options, an undecoded transport, and malformed shapes
// that must leave ports zero or fail to parse entirely.
func steerCorpus(t testing.TB) [][]byte {
	t.Helper()
	src := ip.MustParseAddr("11.11.10.99")
	dst := ip.MustParseAddr("11.11.10.10")
	hdr := func(proto byte) ip.Header {
		return ip.Header{TTL: 64, Protocol: proto, Src: src, Dst: dst}
	}
	var out [][]byte
	add := func(h ip.Header, payload []byte) {
		raw, err := h.Marshal(payload)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, raw)
	}
	seg := tcp.Segment{SrcPort: 7, DstPort: 5001, Seq: 1, Ack: 1,
		Flags: tcp.FlagACK, Window: 8760, Payload: []byte("data")}
	add(hdr(ip.ProtoTCP), seg.Marshal(src, dst))
	mss := seg
	mss.MSS = 1460
	mss.Flags = tcp.FlagSYN
	add(hdr(ip.ProtoTCP), mss.Marshal(src, dst))
	dgm := udp.Datagram{SrcPort: 4000, DstPort: 4001, Payload: []byte("udp")}
	add(hdr(ip.ProtoUDP), dgm.Marshal(src, dst))
	add(hdr(ip.ProtoICMP), []byte{8, 0, 0, 0})
	// Truncated TCP header: ports must stay zero.
	add(hdr(ip.ProtoTCP), []byte{0, 7, 19, 137, 0, 0})
	// TCP with a malformed option (kind 2, length 0): tcp.Unmarshal
	// rejects it, so the key keeps zero ports.
	bad := seg.Marshal(src, dst)
	bad[12] = 6 << 4 // data offset 24: 4 bytes of options
	badOpts := append(append([]byte{}, bad[:20]...), 2, 0, 0, 0)
	badOpts = append(badOpts, bad[20:]...)
	add(hdr(ip.ProtoTCP), badOpts)
	// UDP with a lying length field.
	badUDP := dgm.Marshal(src, dst)
	badUDP[4], badUDP[5] = 0xff, 0xff
	add(hdr(ip.ProtoUDP), badUDP)
	return out
}

// TestSteerKeyParity pins SteerKey to Parse over the corpus: same
// ok/error decision, same key (including zero ports on undecodable
// transport headers).
func TestSteerKeyParity(t *testing.T) {
	corpus := steerCorpus(t)
	corpus = append(corpus, []byte{0x45, 0x00}, nil, []byte{0x60})
	for i, raw := range corpus {
		k, ok := SteerKey(raw)
		pkt, err := Parse(raw)
		if err != nil {
			if ok {
				t.Fatalf("case %d: SteerKey ok but Parse failed: %v", i, err)
			}
			continue
		}
		if !ok {
			t.Fatalf("case %d: Parse ok but SteerKey rejected", i)
		}
		if k != pkt.Key {
			t.Fatalf("case %d: SteerKey %v != Parse key %v", i, k, pkt.Key)
		}
		pkt.Release()
	}
}

// FuzzSteerKey is the parity gate under arbitrary bytes: SteerKey must
// agree with Parse on every input, so the dispatcher can never steer a
// packet to a shard whose proxy would parse it under a different key.
func FuzzSteerKey(f *testing.F) {
	for _, raw := range steerCorpus(f) {
		f.Add(raw)
	}
	f.Add([]byte{0x45, 0x00})
	f.Fuzz(func(t *testing.T, b []byte) {
		k, ok := SteerKey(b)
		pkt, err := Parse(b)
		if err != nil {
			if ok {
				t.Fatalf("SteerKey ok on unparseable packet (key %v)", k)
			}
			return
		}
		defer pkt.Release()
		if !ok {
			t.Fatalf("SteerKey rejected parseable packet (key %v)", pkt.Key)
		}
		if k != pkt.Key {
			t.Fatalf("SteerKey %v != Parse key %v", k, pkt.Key)
		}
	})
}
