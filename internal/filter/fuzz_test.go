package filter

import (
	"bytes"
	"testing"

	"repro/internal/ip"
	"repro/internal/tcp"
	"repro/internal/udp"
)

// FuzzFilterParse drives the proxy's packet view with arbitrary
// datagrams: Parse must never panic, Encode must be repeatable,
// Remarshal must produce a packet that re-parses to the same stream
// key, and the pool must not leak decoded state from one packet into
// the next (the Release discipline of the hot path).
func FuzzFilterParse(f *testing.F) {
	src := ip.MustParseAddr("11.11.10.99")
	dst := ip.MustParseAddr("11.11.10.10")
	hdr := func(proto byte) ip.Header {
		return ip.Header{TTL: 64, Protocol: proto, Src: src, Dst: dst}
	}
	seg := tcp.Segment{SrcPort: 7, DstPort: 5001, Seq: 1000, Ack: 1,
		Flags: tcp.FlagACK, Window: 8760, Payload: []byte("tcp payload")}
	h := hdr(ip.ProtoTCP)
	rawTCP, _ := h.Marshal(seg.Marshal(src, dst))
	f.Add(rawTCP)
	dgm := udp.Datagram{SrcPort: 4000, DstPort: 4001, Payload: []byte("udp payload")}
	h = hdr(ip.ProtoUDP)
	rawUDP, _ := h.Marshal(dgm.Marshal(src, dst))
	f.Add(rawUDP)
	h = hdr(ip.ProtoICMP) // undecoded transport: Data path
	rawICMP, _ := h.Marshal([]byte{8, 0, 0, 0})
	f.Add(rawICMP)
	f.Add([]byte{0x45, 0x00})

	f.Fuzz(func(t *testing.T, b []byte) {
		pkt, err := Parse(b)
		if err != nil {
			return
		}
		key1 := pkt.Key
		var seg1 tcp.Segment
		hadTCP := pkt.TCP != nil
		if hadTCP {
			seg1 = *pkt.TCP
		}

		// Encode must be repeatable: it promises not to modify the
		// packet, so two calls must agree byte for byte.
		enc1, err1 := pkt.Encode()
		enc2, err2 := pkt.Encode()
		if (err1 == nil) != (err2 == nil) || !bytes.Equal(enc1, enc2) {
			t.Fatalf("Encode not repeatable: (%v, %v)", err1, err2)
		}

		// Remarshal rebuilds Raw; the result must re-parse to the same
		// stream key. (The encoding is normalized — unknown TCP options
		// are dropped — so only semantic equality is required here.)
		if err := pkt.Remarshal(); err != nil {
			t.Fatalf("Remarshal of parsed packet failed: %v", err)
		}
		re, err := Parse(pkt.Raw)
		if err != nil {
			t.Fatalf("re-parse of remarshalled packet failed: %v", err)
		}
		if re.Key != key1 {
			t.Fatalf("stream key changed across remarshal: %v -> %v", key1, re.Key)
		}
		re.Release()
		pkt.Release()

		// Pool-leak check: parsing the same bytes with a recycled
		// Packet must reproduce the original decode exactly.
		pkt2, err := Parse(b)
		if err != nil {
			t.Fatalf("re-parse of original bytes failed after Release: %v", err)
		}
		defer pkt2.Release()
		if pkt2.Key != key1 {
			t.Fatalf("recycled parse changed key: %v -> %v", key1, pkt2.Key)
		}
		if (pkt2.TCP != nil) != hadTCP {
			t.Fatalf("recycled parse changed transport decode")
		}
		if hadTCP {
			s2 := *pkt2.TCP
			if seg1.SrcPort != s2.SrcPort || seg1.DstPort != s2.DstPort ||
				seg1.Seq != s2.Seq || seg1.Ack != s2.Ack || seg1.Flags != s2.Flags ||
				seg1.Window != s2.Window || seg1.Checksum != s2.Checksum ||
				seg1.MSS != s2.MSS || !bytes.Equal(seg1.Payload, s2.Payload) {
				t.Fatalf("recycled parse leaked state:\n%+v\n%+v", seg1, s2)
			}
		}
	})
}
