package filter

import (
	"encoding/binary"

	"repro/internal/ip"
)

// SteerKey extracts the stream key of a raw IPv4 datagram without
// touching the packet pool or building a decoded view — the sharded
// data plane's dispatcher runs it once per packet before handing the
// raw bytes to a shard, so it must be allocation-free.
//
// The result must agree exactly with Parse: ok is false iff Parse
// would return an error, and on success the key equals Parse(raw).Key,
// including the "ports stay zero" behavior when the transport header
// fails to decode (truncated TCP/UDP header, malformed TCP options,
// bad UDP length field). FuzzSteerKey gates that parity.
func SteerKey(raw []byte) (Key, bool) {
	if len(raw) < ip.HeaderLen || raw[0]>>4 != 4 {
		return Key{}, false
	}
	hl := int(raw[0]&0x0f) * 4
	if hl < ip.HeaderLen || len(raw) < hl {
		return Key{}, false
	}
	totalLen := int(binary.BigEndian.Uint16(raw[2:]))
	if totalLen < hl || totalLen > len(raw) {
		return Key{}, false
	}
	k := Key{
		SrcIP: ip.Addr(binary.BigEndian.Uint32(raw[12:])),
		DstIP: ip.Addr(binary.BigEndian.Uint32(raw[16:])),
	}
	t := raw[hl:totalLen]
	switch raw[9] {
	case ip.ProtoTCP:
		if tcpHeaderOK(t) {
			k.SrcPort = binary.BigEndian.Uint16(t[0:])
			k.DstPort = binary.BigEndian.Uint16(t[2:])
		}
	case ip.ProtoUDP:
		// Mirrors udp.Unmarshal: 8-byte header and a sane length field.
		if len(t) >= 8 {
			if l := int(binary.BigEndian.Uint16(t[4:])); l >= 8 && l <= len(t) {
				k.SrcPort = binary.BigEndian.Uint16(t[0:])
				k.DstPort = binary.BigEndian.Uint16(t[2:])
			}
		}
	}
	return k, true
}

// tcpHeaderOK mirrors tcp.Unmarshal's accept/reject decision (not its
// decoding): header length bounds plus the options walk, which rejects
// segments whose option list is malformed.
func tcpHeaderOK(b []byte) bool {
	if len(b) < 20 {
		return false
	}
	hl := int(b[12]>>4) * 4
	if hl < 20 || len(b) < hl {
		return false
	}
	opts := b[20:hl]
	for len(opts) > 0 {
		switch opts[0] {
		case 0: // end of options
			opts = nil
		case 1: // NOP
			opts = opts[1:]
		default:
			if len(opts) < 2 || int(opts[1]) < 2 || int(opts[1]) > len(opts) {
				return false
			}
			opts = opts[opts[1]:]
		}
	}
	return true
}
