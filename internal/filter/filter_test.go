package filter

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/ip"
	"repro/internal/tcp"
)

func mustKey(t *testing.T, fields ...string) Key {
	t.Helper()
	k, err := ParseKey(fields)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestKeyMatching(t *testing.T) {
	exact := mustKey(t, "11.11.10.99", "7", "11.11.10.10", "1169")
	cases := []struct {
		wild  Key
		match bool
	}{
		{mustKey(t, "11.11.10.99", "7", "11.11.10.10", "1169"), true},
		{mustKey(t, "0.0.0.0", "0", "11.11.10.10", "0"), true},
		{mustKey(t, "0.0.0.0", "0", "0.0.0.0", "0"), true},
		{mustKey(t, "11.11.10.99", "0", "0.0.0.0", "0"), true},
		{mustKey(t, "0.0.0.0", "0", "0.0.0.0", "1169"), true},
		{mustKey(t, "0.0.0.0", "0", "11.11.10.11", "0"), false},
		{mustKey(t, "0.0.0.0", "8", "0.0.0.0", "0"), false},
		{mustKey(t, "11.11.10.10", "0", "0.0.0.0", "0"), false},
	}
	for _, c := range cases {
		if got := c.wild.Matches(exact); got != c.match {
			t.Errorf("%v matches %v = %v, want %v", c.wild, exact, got, c.match)
		}
	}
}

func TestKeyReverse(t *testing.T) {
	k := mustKey(t, "1.2.3.4", "80", "5.6.7.8", "99")
	r := k.Reverse()
	if r.SrcIP != k.DstIP || r.SrcPort != k.DstPort || r.DstIP != k.SrcIP || r.DstPort != k.SrcPort {
		t.Fatalf("reverse = %v", r)
	}
	if r.Reverse() != k {
		t.Fatal("double reverse is not identity")
	}
}

func TestKeyString(t *testing.T) {
	k := mustKey(t, "11.11.10.99", "7", "11.11.10.10", "1169")
	want := "11.11.10.99 7 -> 11.11.10.10 1169"
	if k.String() != want {
		t.Fatalf("String = %q, want %q", k.String(), want)
	}
}

func TestParseKeyErrors(t *testing.T) {
	bad := [][]string{
		{"1.2.3.4", "80", "5.6.7.8"},            // short
		{"1.2.3.4", "80", "5.6.7.8", "99", "x"}, // long
		{"nonsense", "80", "5.6.7.8", "99"},
		{"1.2.3.4", "-1", "5.6.7.8", "99"},
		{"1.2.3.4", "80", "5.6.7.8", "70000"},
	}
	for _, f := range bad {
		if _, err := ParseKey(f); err == nil {
			t.Errorf("ParseKey(%v) succeeded", f)
		}
	}
}

func TestIsWild(t *testing.T) {
	if !mustKey(t, "0.0.0.0", "7", "1.1.1.1", "1").IsWild() {
		t.Error("zero src IP should be wild")
	}
	if mustKey(t, "2.2.2.2", "7", "1.1.1.1", "1").IsWild() {
		t.Error("fully specified key reported wild")
	}
}

func buildTCPPacket(t *testing.T, payload []byte) []byte {
	t.Helper()
	seg := tcp.Segment{SrcPort: 7, DstPort: 1169, Seq: 100, Ack: 50,
		Flags: tcp.FlagACK, Window: 8760, Payload: payload}
	src, dst := ip.MustParseAddr("11.11.10.99"), ip.MustParseAddr("11.11.10.10")
	h := ip.Header{TTL: 64, Protocol: ip.ProtoTCP, Src: src, Dst: dst}
	raw, err := h.Marshal(seg.Marshal(src, dst))
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestParsePacketTCP(t *testing.T) {
	raw := buildTCPPacket(t, []byte("data"))
	p, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if p.TCP == nil {
		t.Fatal("TCP not decoded")
	}
	want := Key{SrcIP: ip.MustParseAddr("11.11.10.99"), SrcPort: 7,
		DstIP: ip.MustParseAddr("11.11.10.10"), DstPort: 1169}
	if p.Key != want {
		t.Fatalf("key = %v", p.Key)
	}
	if string(p.TCP.Payload) != "data" {
		t.Fatalf("payload = %q", p.TCP.Payload)
	}
}

func TestParsePacketNonTCP(t *testing.T) {
	h := ip.Header{TTL: 64, Protocol: ip.ProtoUDP,
		Src: ip.MustParseAddr("1.1.1.1"), Dst: ip.MustParseAddr("2.2.2.2")}
	raw, _ := h.Marshal([]byte("udp payload"))
	p, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if p.TCP != nil {
		t.Fatal("decoded TCP from a UDP packet")
	}
	if string(p.Data) != "udp payload" {
		t.Fatalf("data = %q", p.Data)
	}
	if p.Key.SrcPort != 0 || p.Key.DstPort != 0 {
		t.Fatalf("key ports should be zero: %v", p.Key)
	}
}

func TestRemarshalFixesChecksums(t *testing.T) {
	raw := buildTCPPacket(t, []byte("hello"))
	p, _ := Parse(raw)
	p.TCP.Window = 1234
	p.TCP.Payload = []byte("HELLO THERE") // grow payload
	p.MarkDirty()
	if err := p.Remarshal(); err != nil {
		t.Fatal(err)
	}
	if p.Dirty() {
		t.Fatal("dirty after remarshal")
	}
	if !ip.VerifyChecksum(p.Raw) {
		t.Fatal("IP checksum invalid after remarshal")
	}
	h, seg, err := ip.Unmarshal(p.Raw)
	if err != nil {
		t.Fatal(err)
	}
	if !tcp.VerifyChecksum(h.Src, h.Dst, seg) {
		t.Fatal("TCP checksum invalid after remarshal")
	}
	got, _ := tcp.Unmarshal(seg)
	if got.Window != 1234 || !bytes.Equal(got.Payload, []byte("HELLO THERE")) {
		t.Fatalf("rewritten fields lost: %+v", got)
	}
}

func TestRemarshalStaleKeepsBadChecksum(t *testing.T) {
	raw := buildTCPPacket(t, []byte("hello"))
	p, _ := Parse(raw)
	p.TCP.Window = 4321
	p.MarkDirty()
	if err := p.RemarshalStale(); err != nil {
		t.Fatal(err)
	}
	h, seg, err := ip.Unmarshal(p.Raw)
	if err != nil {
		t.Fatal(err)
	}
	if tcp.VerifyChecksum(h.Src, h.Dst, seg) {
		t.Fatal("stale remarshal produced a valid TCP checksum")
	}
	got, _ := tcp.Unmarshal(seg)
	if got.Window != 4321 {
		t.Fatalf("window edit lost: %d", got.Window)
	}
}

func TestPacketDropAndInject(t *testing.T) {
	raw := buildTCPPacket(t, nil)
	p, _ := Parse(raw)
	if p.Dropped() {
		t.Fatal("fresh packet dropped")
	}
	p.Drop()
	if !p.Dropped() {
		t.Fatal("Drop did not mark")
	}
	p.Inject([]byte{1, 2, 3})
	p.Inject([]byte{4})
	if n := len(p.Injections()); n != 2 {
		t.Fatalf("injections = %d", n)
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	c.Register("x", func() Factory { return nil })
	if _, err := c.Load("nope"); err == nil {
		t.Fatal("loaded unregistered factory")
	}
	names := c.Names()
	if len(names) != 1 || names[0] != "x" {
		t.Fatalf("names = %v", names)
	}
}

// Property: key match is reflexive on exact keys, and the full
// wild-card matches everything.
func TestKeyMatchProperty(t *testing.T) {
	f := func(s, d uint32, sp, dp uint16) bool {
		k := Key{SrcIP: ip.Addr(s | 1), SrcPort: sp | 1, DstIP: ip.Addr(d | 1), DstPort: dp | 1}
		return k.Matches(k) && (Key{}).Matches(k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
