// Package filter defines the Comma service-proxy filtering model of
// thesis chapter 5: stream keys (with wild-cards), filter priorities,
// the parsed packet view that filter methods inspect and rewrite, and
// the Factory/Hooks contract by which filters attach "in" and "out"
// methods to per-stream filter queues.
package filter

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/ip"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/udp"
)

// ErrUnknownFilter marks a name the catalog has no factory for.
// Catalog.Load wraps it in an error that keeps the historical message
// (including the catalog listing), so callers branch with errors.Is
// while control-session output stays unchanged.
var ErrUnknownFilter = errors.New("filter: unknown filter")

// unknownFilterError keeps the exact legacy message while exposing
// ErrUnknownFilter through errors.Is.
type unknownFilterError struct{ msg string }

func (e *unknownFilterError) Error() string { return e.msg }
func (e *unknownFilterError) Unwrap() error { return ErrUnknownFilter }

// Key identifies a unidirectional communication stream: the ordered
// quadruple of source address/port and destination address/port
// (thesis §5.2). Zero-valued fields act as wild-cards when the key is
// used in the stream registry.
type Key struct {
	SrcIP   ip.Addr
	SrcPort uint16
	DstIP   ip.Addr
	DstPort uint16
}

// Matches reports whether the (possibly wild-card) key k matches the
// exact stream key e: every non-zero field of k must equal e's.
//
// This is the reference semantics for registry matching: the compiled
// classifier (internal/classifier) must answer every lookup exactly as
// a linear scan of this predicate over the registrations would, pinned
// by parity property tests and the FuzzClassifierParity fuzz target.
func (k Key) Matches(e Key) bool {
	return (k.SrcIP.IsZero() || k.SrcIP == e.SrcIP) &&
		(k.SrcPort == 0 || k.SrcPort == e.SrcPort) &&
		(k.DstIP.IsZero() || k.DstIP == e.DstIP) &&
		(k.DstPort == 0 || k.DstPort == e.DstPort)
}

// Reverse returns the key of the stream in the opposite direction.
func (k Key) Reverse() Key {
	return Key{SrcIP: k.DstIP, SrcPort: k.DstPort, DstIP: k.SrcIP, DstPort: k.SrcPort}
}

// IsWild reports whether any field is a wild-card.
func (k Key) IsWild() bool {
	return k.SrcIP.IsZero() || k.SrcPort == 0 || k.DstIP.IsZero() || k.DstPort == 0
}

// String renders the key in the thesis's report format:
// "11.11.10.99 7 -> 11.11.10.10 1169".
func (k Key) String() string {
	return fmt.Sprintf("%v %d -> %v %d", k.SrcIP, k.SrcPort, k.DstIP, k.DstPort)
}

// ParseKey parses the four whitespace-separated fields of a key as
// given to the SP "add" command: srcIP srcPort dstIP dstPort. Zeros
// are wild-cards. Fields must parse exactly — trailing junk in a port
// ("7x") or address is an error, not silently truncated.
func ParseKey(fields []string) (Key, error) {
	var k Key
	if len(fields) != 4 {
		return k, fmt.Errorf("filter: key needs 4 fields, got %d", len(fields))
	}
	var err error
	if k.SrcIP, err = ip.ParseAddr(fields[0]); err != nil {
		return k, err
	}
	p, err := strconv.ParseUint(fields[1], 10, 16)
	if err != nil {
		return k, fmt.Errorf("filter: bad source port %q", fields[1])
	}
	k.SrcPort = uint16(p)
	if k.DstIP, err = ip.ParseAddr(fields[2]); err != nil {
		return k, err
	}
	if p, err = strconv.ParseUint(fields[3], 10, 16); err != nil {
		return k, fmt.Errorf("filter: bad destination port %q", fields[3])
	}
	k.DstPort = uint16(p)
	return k, nil
}

// Priority orders filter methods within a queue (thesis §5.2):
// high-priority filters read first on the in queue and write last on
// the out queue, letting them override lower-priority modifications.
type Priority int

// Priorities used by the thesis's example filters.
const (
	Lowest  Priority = 0  // wsize
	Low     Priority = 25 // rdrop
	Normal  Priority = 50
	High    Priority = 75  // tcp bookkeeping filter
	Highest Priority = 100 // launcher
)

func (p Priority) String() string {
	switch p {
	case Lowest:
		return "LOWEST"
	case Low:
		return "LOW"
	case Normal:
		return "NORMAL"
	case High:
		return "HIGH"
	case Highest:
		return "HIGHEST"
	}
	return fmt.Sprintf("Priority(%d)", int(p))
}

// Packet is the parsed view of an intercepted IP datagram that filter
// methods operate on. In methods must treat it as read-only; out
// methods may rewrite header fields and payload and must call
// MarkDirty so a re-marshalling filter (the tcp filter) or the proxy
// knows the raw bytes are stale.
//
// Packets come from a pool: Parse recycles structs returned by
// Release, so the decoded view is only valid until the owner (the
// interception path) releases it. Filters that need any part of a
// packet beyond the current hook invocation must copy it (snoop's
// Encode snapshot, the TTSF's payload snapshot); holding the *Packet,
// its TCP/UDP pointers, or slices of its decoded headers across
// packets is a use-after-release bug.
type Packet struct {
	Raw []byte        // datagram as intercepted (stale once dirty)
	IP  ip.Header     // decoded network header
	TCP *tcp.Segment  // decoded transport header; nil for non-TCP
	UDP *udp.Datagram // decoded UDP datagram; nil for non-UDP
	// Data is the raw transport payload for protocols the proxy does
	// not decode; for TCP/UDP use the decoded views.
	Data []byte
	Key  Key

	dropped bool
	dirty   bool
	injects [][]byte

	// Pool-resident decode targets: TCP/UDP point at these when the
	// transport parses, so a recycled Packet performs no per-parse
	// header allocations.
	tcpSeg tcp.Segment
	udpDgm udp.Datagram
	// segBuf is scratch for the transport-layer marshal inside
	// Remarshal/Encode. It never escapes the Packet: only the final
	// IP-layer buffer (which must stay immutable once handed to the
	// network) is freshly allocated.
	segBuf []byte
}

// packetPool recycles Packet structs between Parse and Release. Raw
// datagram bytes are never pooled — they are owned by the network and
// may be in flight after the Packet is released.
var packetPool = sync.Pool{New: func() any { return new(Packet) }}

// Parse decodes a raw IP datagram into a Packet. TCP segments are
// decoded when the protocol is TCP and the bytes parse; otherwise TCP
// stays nil and the transport payload is exposed via Data.
//
// The returned Packet is pool-backed: callers that process packets in
// a loop (the proxy's interception path) should call Release when
// done so steady-state parsing is allocation-free. Dropping the
// Packet without releasing it is safe, merely slower.
func Parse(raw []byte) (*Packet, error) {
	h, payload, err := ip.Unmarshal(raw)
	if err != nil {
		return nil, err
	}
	p := packetPool.Get().(*Packet)
	p.Raw, p.IP, p.Data = raw, h, payload
	p.Key = Key{SrcIP: h.Src, DstIP: h.Dst}
	switch h.Protocol {
	case ip.ProtoTCP:
		if seg, err := tcp.Unmarshal(payload); err == nil {
			p.tcpSeg = seg
			p.TCP = &p.tcpSeg
			p.Key.SrcPort = seg.SrcPort
			p.Key.DstPort = seg.DstPort
		}
	case ip.ProtoUDP:
		if d, err := udp.Unmarshal(payload); err == nil {
			p.udpDgm = d
			p.UDP = &p.udpDgm
			p.Key.SrcPort = d.SrcPort
			p.Key.DstPort = d.DstPort
		}
	}
	return p, nil
}

// Release returns the packet to the parse pool. The caller must be
// the packet's owner (the code that called Parse) and must not touch
// the packet — or anything reached through its TCP/UDP pointers —
// afterwards. Raw bytes and injected datagrams are not recycled; only
// the decoded view is.
func (p *Packet) Release() {
	for i := range p.injects {
		p.injects[i] = nil
	}
	injects, segBuf := p.injects[:0], p.segBuf
	*p = Packet{injects: injects, segBuf: segBuf}
	packetPool.Put(p)
}

// Drop marks the packet to be discarded instead of reinjected.
func (p *Packet) Drop() { p.dropped = true }

// Dropped reports whether an out method dropped the packet.
func (p *Packet) Dropped() bool { return p.dropped }

// MarkDirty records that decoded fields were modified and Raw is
// stale.
func (p *Packet) MarkDirty() { p.dirty = true }

// Dirty reports whether the packet was modified since interception.
func (p *Packet) Dirty() bool { return p.dirty }

// Remarshal rebuilds Raw from the decoded headers with fresh IP and
// TCP checksums, clearing the dirty mark. This is what the thesis's
// "tcp" filter does as the highest-priority out method.
//
// The transport segment is marshalled into the packet's scratch
// buffer (reused across packets); only the final IP datagram — which
// escapes to the network and must stay immutable in flight — is
// freshly allocated.
func (p *Packet) Remarshal() error {
	raw, err := p.IP.Marshal(p.transportBytes())
	if err != nil {
		return err
	}
	p.Raw = raw
	p.dirty = false
	return nil
}

// transportBytes marshals the decoded transport layer into segBuf,
// computing checksums, and returns it (or Data when undecoded).
func (p *Packet) transportBytes() []byte {
	switch {
	case p.TCP != nil:
		p.segBuf = p.TCP.AppendMarshal(p.segBuf[:0], p.IP.Src, p.IP.Dst)
		return p.segBuf
	case p.UDP != nil:
		p.segBuf = p.UDP.AppendMarshal(p.segBuf[:0], p.IP.Src, p.IP.Dst)
		return p.segBuf
	default:
		return p.Data
	}
}

// Encode marshals the packet's current decoded state into a fresh
// byte slice with correct checksums, without touching Raw or the dirty
// mark. Filters use it to snapshot a packet (e.g. the snoop cache)
// mid-queue, when Raw may be stale.
func (p *Packet) Encode() ([]byte, error) {
	var tcpCk, udpCk uint16
	if p.TCP != nil {
		tcpCk = p.TCP.Checksum
	}
	if p.UDP != nil {
		udpCk = p.UDP.Checksum
	}
	h := p.IP
	b, err := h.Marshal(p.transportBytes())
	// transportBytes recomputes transport checksums in place; Encode
	// promises not to modify the packet, so restore the wire values.
	if p.TCP != nil {
		p.TCP.Checksum = tcpCk
	}
	if p.UDP != nil {
		p.UDP.Checksum = udpCk
	}
	return b, err
}

// RemarshalStale rebuilds Raw from the decoded headers while
// preserving the checksum values read off the wire. This models the
// thesis's in-place packet editing: a filter that changes a header
// field without recomputing checksums puts a now-invalid checksum on
// the wire, and the receiver discards the segment. The proxy applies
// this to dirty packets that no filter remarshalled — which is exactly
// why the "tcp" bookkeeping filter exists.
func (p *Packet) RemarshalStale() error {
	var staleTCP uint16
	if p.TCP != nil {
		staleTCP = p.TCP.Checksum
	}
	staleIP := p.IP.Checksum
	if err := p.Remarshal(); err != nil {
		return err
	}
	hl := p.IP.HeaderLength()
	p.Raw[10], p.Raw[11] = byte(staleIP>>8), byte(staleIP)
	p.IP.Checksum = staleIP
	if p.TCP != nil && len(p.Raw) >= hl+18 {
		p.Raw[hl+16], p.Raw[hl+17] = byte(staleTCP>>8), byte(staleTCP)
		p.TCP.Checksum = staleTCP
	}
	return nil
}

// Inject queues an additional raw datagram for the proxy to emit
// alongside (or instead of) this packet. Snoop uses this for local
// retransmissions; wsize uses it for window-update packets.
func (p *Packet) Inject(raw []byte) { p.injects = append(p.injects, raw) }

// Injections returns packets queued by Inject.
func (p *Packet) Injections() [][]byte { return p.injects }

// Hooks are the methods one filter instance contributes to the filter
// queue of one exact stream key (thesis Fig 5.2: each filter supplies
// an in method and an out method per key).
type Hooks struct {
	// Filter is the owning filter's name, used by accounting/report.
	Filter string
	// Priority places the methods within the queue. Defaults to the
	// factory's priority when attached through an Env.
	Priority Priority
	// In inspects the packet; it must not modify it.
	In func(p *Packet)
	// Out may modify or drop the packet.
	Out func(p *Packet)
	// OnClose is called when the stream's queue is torn down or the
	// filter is deleted from the key.
	OnClose func()
	// State, when non-nil, lets the proxy serialize this instance's
	// per-stream state for live migration to a peer SP. Attachments
	// without it migrate as fresh instances (fail open).
	State StateSnapshotter
}

// StateSnapshotter is the optional migration contract of a filter
// instance: SnapshotState serializes the per-stream state behind one
// attachment into an opaque, self-contained byte string, and
// RestoreState rehydrates a freshly instantiated instance on the
// destination proxy from exactly those bytes. Snapshots are taken at a
// data-plane batch boundary (the stream is quiescent on this shard),
// so implementations serialize plain fields — no locking, no pending
// in-flight packet views. A filter that cannot (or need not) carry
// state across a migration simply leaves Hooks.State nil.
type StateSnapshotter interface {
	SnapshotState() ([]byte, error)
	RestoreState(b []byte) error
}

// Env is the service the proxy provides to filter instances: queue
// attachment, packet injection, stream teardown, timers, and logging.
type Env interface {
	// Clock returns the scheduler, for filter timers.
	Clock() *sim.Scheduler
	// Attach splices hooks into the filter queue of the exact key k,
	// creating the queue if needed. It returns a detach function.
	Attach(k Key, h Hooks) (detach func(), err error)
	// RemoveStream tears down the filter queue for exact key k,
	// closing all attached hooks. The tcp filter calls this at stream
	// close.
	RemoveStream(k Key)
	// Inject emits a raw datagram from the proxy node outside the
	// context of an intercepted packet (timer-driven retransmissions).
	Inject(raw []byte)
	// Logf records a diagnostic line in the proxy log.
	Logf(format string, args ...any)
}

// Metrics is implemented by Envs that can answer execution-environment
// queries — the EEM integration of thesis chapter 6 ("EEM clients run
// as user-level threads which can form part of an application or even
// of SP filters"). Adaptive filters obtain it by type-asserting their
// Env; absence means no monitor is wired and the filter should fall
// back to static behaviour.
type Metrics interface {
	// Metric returns the current numeric value of a local
	// execution-environment variable (Table 6.1/6.2 names).
	Metric(name string, index int) (float64, bool)
}

// FlowSampler is implemented by Envs that can answer per-flow
// transport measurements out of the proxy's flow log — the smoothed
// RTT a delay-aware filter (mwin) needs to size a bandwidth-delay
// product. Key orientation is irrelevant: the flow log canonicalizes.
// Calls are owning-goroutine only (filter hooks and timers already
// are). Filters obtain it by type-asserting their Env; absence means
// no flow log is wired and the filter should fall back to static
// behaviour.
type FlowSampler interface {
	// FlowSRTT returns the smoothed RTT estimate of k's flow; ok is
	// false when the flow is unknown or has no sample yet.
	FlowSRTT(k Key) (srtt time.Duration, ok bool)
}

// Spawner is implemented by Envs that can instantiate other loaded
// filters on a stream — the capability behind the launcher filter,
// which applies a configured set of services to each new stream
// matching its wild-card key. Filters obtain it by type-asserting
// their Env.
type Spawner interface {
	Spawn(name string, k Key, args []string) error
}

// Factory creates filter instances. New is the thesis's "insertion
// method": called when a stream matching a registered key first
// appears (or when a filter is added to an existing stream), it
// attaches hooks to the trigger key and to any related keys — most
// filters also attach to the reverse direction.
type Factory interface {
	// Name is the identifier used in SP commands ("rdrop", "wsize"...).
	Name() string
	// Priority is the default queue priority for the filter's hooks.
	Priority() Priority
	// Description is a one-line summary for the report command.
	Description() string
	// New instantiates the filter for the stream identified by
	// trigger, attaching hooks via env. args come verbatim from the
	// "add" command.
	New(env Env, trigger Key, args []string) error
}

// Catalog is a registry of loadable filter factories — the stand-in
// for the thesis's dynamically loaded (dlopen) filter library files.
// The SP "load" command fetches factories from here by name.
type Catalog struct {
	mu        sync.Mutex
	factories map[string]func() Factory
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{factories: make(map[string]func() Factory)}
}

// Register adds a factory constructor under its name. Constructors are
// invoked once per proxy "load" so each proxy gets fresh state.
func (c *Catalog) Register(name string, ctor func() Factory) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.factories[name] = ctor
}

// Load instantiates the named factory.
func (c *Catalog) Load(name string) (Factory, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ctor, ok := c.factories[name]
	if !ok {
		return nil, &unknownFilterError{msg: fmt.Sprintf("filter: no factory %q in catalog (have %s)",
			name, strings.Join(c.names(), ", "))}
	}
	return ctor(), nil
}

// Names lists registered factory names, sorted.
func (c *Catalog) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.names()
}

func (c *Catalog) names() []string {
	out := make([]string, 0, len(c.factories))
	for n := range c.factories {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
