package faults

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/filter"
	"repro/internal/tcp"
)

// RegisterChaosFilter adds the "chaos" fault filter to a catalog. It is
// the in-proxy half of the fault plane: where the Injector breaks the
// world around the Service Proxy, this filter misbehaves *inside* its
// filter queues, exercising panic isolation, quarantine, and insertion
// failure handling. Modes (first argument of the SP "add" command):
//
//	panic         In method panics on every data-bearing segment; the
//	              proxy must isolate the panic and quarantine the
//	              filter after QuarantineStrikes, failing open.
//	err           the insertion method itself fails; the "add" command
//	              must surface a diagnostic and leave the SP healthy.
//	drop <pct>    deterministically drops pct% of data segments
//	              (seeded scheduler RNG), modelling a buggy
//	              data-reduction filter.
//	delay <ms> [every]
//	              holds every every-th data segment (default 5) and
//	              re-injects it ms later — deterministic latency and
//	              reordering injection.
func RegisterChaosFilter(c *filter.Catalog) {
	c.Register("chaos", func() filter.Factory { return &chaosFilter{} })
}

type chaosFilter struct{}

func (*chaosFilter) Name() string              { return "chaos" }
func (*chaosFilter) Priority() filter.Priority { return filter.Normal }
func (*chaosFilter) Description() string {
	return "fault injection: panic, insertion err, deterministic drop/delay"
}

// isData reports whether pkt is a data-bearing TCP segment that is safe
// to misbehave on — chaos never touches SYN/FIN, matching the contract
// real data-reduction filters follow.
func isData(pkt *filter.Packet) bool {
	return pkt.TCP != nil && len(pkt.TCP.Payload) > 0 &&
		pkt.TCP.Flags&(tcp.FlagSYN|tcp.FlagFIN) == 0
}

func (f *chaosFilter) New(env filter.Env, k filter.Key, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("chaos: usage: panic | err | drop <pct> | delay <ms> [every]")
	}
	switch args[0] {
	case "err":
		return fmt.Errorf("chaos: injected insertion failure on %v", k)
	case "panic":
		_, err := env.Attach(k, filter.Hooks{
			Filter: "chaos", Priority: filter.Normal,
			In: func(pkt *filter.Packet) {
				if isData(pkt) {
					panic("chaos: injected filter panic")
				}
			},
		})
		return err
	case "drop":
		p := 0.1
		if len(args) > 1 {
			v, err := strconv.ParseFloat(args[1], 64)
			if err != nil || v < 0 || v > 100 {
				return fmt.Errorf("chaos: bad drop pct %q (want 0..100)", args[1])
			}
			p = v / 100
		}
		_, err := env.Attach(k, filter.Hooks{
			Filter: "chaos", Priority: filter.Normal,
			Out: func(pkt *filter.Packet) {
				if pkt.Dropped() || !isData(pkt) {
					return
				}
				if env.Clock().Rand().Float64() < p {
					pkt.Drop()
				}
			},
		})
		return err
	case "delay":
		if len(args) < 2 {
			return fmt.Errorf("chaos: usage: delay <ms> [every]")
		}
		ms, err := strconv.Atoi(args[1])
		if err != nil || ms <= 0 {
			return fmt.Errorf("chaos: bad delay %q (want ms > 0)", args[1])
		}
		every := 5
		if len(args) > 2 {
			if every, err = strconv.Atoi(args[2]); err != nil || every <= 0 {
				return fmt.Errorf("chaos: bad stride %q (want > 0)", args[2])
			}
		}
		d := time.Duration(ms) * time.Millisecond
		n := 0
		_, err = env.Attach(k, filter.Hooks{
			Filter: "chaos", Priority: filter.Normal,
			Out: func(pkt *filter.Packet) {
				if pkt.Dropped() || !isData(pkt) {
					return
				}
				n++
				if n%every != 0 {
					return
				}
				// Snapshot the segment (Encode allocates a fresh,
				// checksummed datagram — the pooled Packet is invalid by
				// the time the timer fires), swallow the original, and
				// re-inject the copy d later. Injected datagrams bypass
				// interception, so a delayed packet is not re-delayed.
				raw, encErr := pkt.Encode()
				if encErr != nil {
					return
				}
				pkt.Drop()
				env.Clock().After(d, func() { env.Inject(raw) })
			},
		})
		return err
	default:
		return fmt.Errorf("chaos: unknown mode %q (want panic|err|drop|delay)", args[0])
	}
}
