package faults

import (
	"crypto/sha256"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/eem"
	"repro/internal/netsim"
	"repro/internal/policy"
)

// Chaos is the chaos soak scenario behind `wsim -chaos` and
// `make chaos`: a full Comma deployment runs a sequence of bulk
// transfers while the Injector and the chaos filter break things
// around and inside it — link flaps, an asymmetric partition, quality
// degradation, an EEM server crash with a supervised client riding it,
// a panicking filter, an injected insertion failure, deterministic
// drop and delay.
//
// The scenario is its own assertion: it returns an error unless every
// transfer arrives complete and checksum-clean, the panicking filter
// was quarantined (fail open), the supervised EEM client reconnected
// and re-registered after the crash, and the control plane still
// answers afterwards. Everything — fault script, recovery, transfers —
// runs on virtual time with the seeded scheduler, so the full output
// (per-leg results, event log, metrics) must be byte-identical across
// runs with the same seed; TestChaosDeterminism and `make chaos` diff
// exactly this output.
func Chaos(seed int64, w io.Writer) error {
	sys := core.NewSystem(core.Config{
		Seed:         seed,
		EEMInterval:  time.Second,
		ObsRetention: 1 << 16,
		Wireless: netsim.LinkConfig{
			Bandwidth: 2e6,
			Delay:     10 * time.Millisecond,
			QueueLen:  32,
			Loss:      netsim.Bernoulli{P: 0.05},
			ARQ:       &netsim.ARQConfig{RetransDelay: 20 * time.Millisecond, MaxRetries: 4},
		},
	})
	RegisterChaosFilter(sys.Catalog)
	inj := NewInjector(sys.Sched, sys.Obs)
	fmt.Fprintf(w, "=== chaos soak (seed %d) ===\n", seed)

	key := func(sp, dp uint16) string {
		return fmt.Sprintf("%v %d %v %d", core.WiredAddr, sp, core.MobileAddr, dp)
	}
	sys.MustCommand("load tcp")
	sys.MustCommand("load chaos")

	// Injected insertion failure: the add must fail with a diagnostic
	// and leave the SP healthy — subsequent commands still work.
	if out := sys.Plane.Command("add chaos " + key(6000, 6001) + " err"); !strings.HasPrefix(out, "error") {
		return fmt.Errorf("chaos: err-mode add not rejected: %q", out)
	} else {
		fmt.Fprintf(w, "insertion fault rejected: %s", out)
	}

	// Per-stream fault filters for the legs below.
	sys.MustCommand("add tcp " + key(6000, 6001))
	sys.MustCommand("add chaos " + key(6000, 6001) + " panic")
	sys.MustCommand("add tcp " + key(6100, 6101))
	sys.MustCommand("add chaos " + key(6100, 6101) + " delay 30 5")
	sys.MustCommand("add tcp " + key(6200, 6201))
	sys.MustCommand("add chaos " + key(6200, 6201) + " drop 10")

	// A supervised EEM client rides the whole soak: when the server
	// crashes mid-leg it must back off, redial, and re-register.
	client := eem.NewComma(eem.SimDialer(sys.WiredTCP))
	client.SetObs(sys.Obs)
	client.UseScheduler(sys.Sched)
	if err := client.Supervise(eem.SuperviseConfig{BaseDelay: 250 * time.Millisecond, MaxDelay: 4 * time.Second}); err != nil {
		return fmt.Errorf("chaos: supervise: %w", err)
	}
	upID := eem.ID{Var: "sysUpTime", Server: core.ProxyCtrlAddr.String()}
	if err := client.Register(upID, eem.Attr{Lower: eem.LongValue(0), Op: eem.GTE}); err != nil {
		return fmt.Errorf("chaos: register: %w", err)
	}
	sys.Sched.RunFor(500 * time.Millisecond)

	// Each leg schedules its faults a beat after the transfer starts, so
	// the fault lands mid-flight; minElapsed proves the overlap — a
	// transfer that finished faster than the outage it was supposed to
	// ride out never actually met the fault.
	legs := []struct {
		name             string
		srcPort, dstPort uint16
		size             int
		window           time.Duration
		minElapsed       time.Duration
		faults           func()
	}{
		// The panicking filter fires on the first data segments; the
		// proxy must quarantine it and the transfer must still arrive.
		{"panic-quarantine", 6000, 6001, 24 << 10, 8 * time.Second, 0, nil},
		// A 1.5 s full outage in the middle of a delayed, reordered
		// transfer; TCP retransmission rides it out.
		{"link-flap", 6100, 6101, 48 << 10, 12 * time.Second, 1600 * time.Millisecond, func() {
			inj.FlapLink("wireless", sys.Wireless, 100*time.Millisecond, 1500*time.Millisecond)
		}},
		// EEM crash + bandwidth/loss degradation stacked on a stream
		// that is also dropping 10% of its own data. Degradation slows
		// rather than stops the stream, so the floor only proves the
		// transfer ran deep into the degraded window (undergraded it
		// finishes in ~250 ms).
		{"eem-crash+degrade", 6200, 6201, 48 << 10, 12 * time.Second, 600 * time.Millisecond, func() {
			inj.CrashEEM("eem", sys.EEM, 500*time.Millisecond, 3*time.Second)
			inj.DegradeLink("wireless", sys.Wireless, 150*time.Millisecond, 3*time.Second,
				256_000, netsim.Bernoulli{P: 0.25})
		}},
		// One-way blackhole on the data direction.
		{"asym-partition", 6300, 6301, 48 << 10, 10 * time.Second, 900 * time.Millisecond, func() {
			inj.PartitionAB("wireless", sys.Wireless, 100*time.Millisecond, 800*time.Millisecond)
		}},
		// Quiet leg: after the full fault matrix the system must carry
		// a clean transfer at full quality.
		{"clean-recovery", 6400, 6401, 16 << 10, 8 * time.Second, 0, nil},
	}
	for _, lg := range legs {
		if lg.faults != nil {
			lg.faults()
		}
		payload := chaosPayload(lg.size)
		res, err := sys.Transfer(payload, lg.srcPort, lg.dstPort, lg.window)
		if err != nil {
			return fmt.Errorf("chaos: leg %s: %w", lg.name, err)
		}
		sum, want := sha256.Sum256(res.Received), sha256.Sum256(payload)
		intact := res.Completed && sum == want
		fmt.Fprintf(w, "leg %-18s sent=%d received=%d completed=%v elapsed=%v sha=%x intact=%v\n",
			lg.name, res.Sent, len(res.Received), res.Completed, res.Elapsed, sum[:8], intact)
		if !intact {
			return fmt.Errorf("chaos: leg %s corrupt or incomplete: completed=%v received=%d/%d",
				lg.name, res.Completed, len(res.Received), res.Sent)
		}
		if res.Elapsed < lg.minElapsed {
			return fmt.Errorf("chaos: leg %s finished in %v, before its fault window (%v) — fault missed the transfer",
				lg.name, res.Elapsed, lg.minElapsed)
		}
	}

	// Policy phase: a policy engine rides the same supervised client
	// and drives the SP through a degrade/restore cycle. The wireless
	// bandwidth drops under the rule's enter bound, the engine loads
	// the compress filter; bandwidth recovers, the engine withdraws it.
	// The stream key is deliberately unused so the filter attach is
	// inert on this single-proxy topology.
	fmt.Fprintf(w, "\n=== policy phase ===\n")
	eng := policy.New(policy.Config{
		Sched:   sys.Sched,
		Comma:   client,
		Control: sys.Plane,
		Server:  core.ProxyCtrlAddr.String(),
		Bus:     sys.Obs,
		Period:  250 * time.Millisecond,
	})
	eng.RegisterMetrics(sys.Metrics, "policy")
	rule := fmt.Sprintf("squeeze when ifSpeed:1 LT 1000000 for 2 then load comp:6 on %v 7777 %v 7778 rate 1",
		core.WiredAddr, core.MobileAddr)
	if err := eng.AddRule(rule); err != nil {
		return fmt.Errorf("chaos: policy rule: %w", err)
	}
	eng.Start()
	inj.DegradeLink("wireless", sys.Wireless, 250*time.Millisecond, 3*time.Second,
		256_000, netsim.Bernoulli{})
	sys.Sched.RunFor(7 * time.Second)
	var policyFires, policyReverts int
	for _, e := range sys.Obs.Events() {
		if e.Subsys != "policy" {
			continue
		}
		switch e.Kind {
		case "fire":
			policyFires++
		case "revert":
			policyReverts++
		}
	}
	fmt.Fprintf(w, "policy fires=%d reverts=%d\n", policyFires, policyReverts)
	fmt.Fprint(w, eng.Command([]string{"list"}))
	if policyFires == 0 {
		return fmt.Errorf("chaos: policy engine never fired on the degraded link")
	}
	if policyReverts == 0 {
		return fmt.Errorf("chaos: policy engine never reverted after the link recovered")
	}

	// Recoverability: the control plane answers, the quarantine fired,
	// and the supervised client holds fresh (non-stale) data again.
	report := sys.MustCommand("report")
	fmt.Fprintf(w, "\n=== post-fault control plane ===\n%s", report)
	var quarantines, redials, reconnects int
	for _, e := range sys.Obs.Events() {
		switch {
		case e.Subsys == "proxy" && e.Kind == "filter-quarantine":
			quarantines++
		case e.Subsys == "eem-client" && e.Kind == "redial-scheduled":
			redials++
		case e.Subsys == "eem-client" && e.Kind == "reconnected":
			reconnects++
		}
	}
	fmt.Fprintf(w, "quarantines=%d redials=%d reconnects=%d\n", quarantines, redials, reconnects)
	if quarantines == 0 {
		return fmt.Errorf("chaos: panicking filter was never quarantined")
	}
	if reconnects == 0 {
		return fmt.Errorf("chaos: supervised EEM client never reconnected (redials=%d)", redials)
	}
	if _, ok := client.GetValue(upID); !ok || client.Stale(upID) {
		return fmt.Errorf("chaos: EEM client did not recover fresh data (stale=%v)", client.Stale(upID))
	}

	fmt.Fprintf(w, "\n=== obs event log ===\n")
	if err := sys.Obs.WriteLog(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\n=== metrics snapshot ===\n")
	fmt.Fprint(w, sys.Metrics.Table("chaos soak metrics").String())
	return nil
}

// chaosPayload builds a deterministic, position-dependent byte pattern
// so truncation, reordering, and corruption all break the checksum.
func chaosPayload(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*131 + (i>>8)*31 + 7)
	}
	return b
}
