// Package faults is the deterministic fault-injection plane: scripted
// link flaps, asymmetric partitions, quality degradation, EEM server
// crashes, and shard stalls, all driven off the simulation scheduler so
// a fault script is part of the reproducible experiment — two runs with
// the same seed inject the same faults at the same virtual instants and
// must produce byte-identical event logs.
//
// The package has two halves: the Injector (this file) schedules faults
// against live components, and the "chaos" filter (chaosfilter.go)
// injects faults *inside* the Service Proxy's filter queues — panics,
// insertion failures, deterministic drop and delay — to exercise the
// proxy's isolation and quarantine machinery. Chaos (chaos.go) composes
// both into the soak scenario behind `wsim -chaos` and `make chaos`.
package faults

import (
	"fmt"
	"time"

	"repro/internal/dataplane"
	"repro/internal/eem"
	"repro/internal/migrate"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Injector schedules scripted faults on the simulation clock. Every
// injection and recovery is emitted on the event bus under the "faults"
// subsystem, so the fault script is visible in the same ordered log as
// the system's reaction to it.
type Injector struct {
	sched *sim.Scheduler
	bus   *obs.Bus
}

// NewInjector returns an injector driving faults off sched and logging
// them to bus (nil bus = silent injection).
func NewInjector(sched *sim.Scheduler, bus *obs.Bus) *Injector {
	return &Injector{sched: sched, bus: bus}
}

func (in *Injector) emit(kind, key string, fields ...obs.Field) {
	in.bus.Emit("faults", kind, key, fields...)
}

// FlapLink takes the whole link down at now+at and restores it after
// outage — the thesis's disconnection/handoff gap. Packets in flight
// when the link drops are lost.
func (in *Injector) FlapLink(name string, l *netsim.Link, at, outage time.Duration) {
	in.sched.After(at, func() {
		l.SetDown(true)
		in.emit("link-down", name, obs.F("outage_ms", int(outage/time.Millisecond)))
	})
	in.sched.After(at+outage, func() {
		l.SetDown(false)
		in.emit("link-up", name)
	})
}

// PartitionAB blackholes only the a→b direction for outage — an
// asymmetric failure where one side keeps hearing the other (the
// classic "mobile can receive but not send" radio pathology).
func (in *Injector) PartitionAB(name string, l *netsim.Link, at, outage time.Duration) {
	in.sched.After(at, func() {
		l.SetDownAB(true)
		in.emit("partition-ab", name, obs.F("outage_ms", int(outage/time.Millisecond)))
	})
	in.sched.After(at+outage, func() {
		l.SetDownAB(false)
		in.emit("heal-ab", name)
	})
}

// DegradeLink drops both directions of the link to bps bandwidth
// under the given loss model at now+at, restoring each direction's
// previous bandwidth and loss model after dur. The previous values are
// captured per direction when the degradation fires, so a degrade
// scheduled over an already-degraded (or asymmetrically shaped) link
// restores exactly what it found.
func (in *Injector) DegradeLink(name string, l *netsim.Link, at, dur time.Duration, bps int64, loss netsim.LossModel) {
	in.sched.After(at, func() {
		prevAB, prevBA := l.ShapingAB(), l.ShapingBA()
		degraded := netsim.Shaping{
			Fields: netsim.ShapeBandwidth | netsim.ShapeLoss, Bandwidth: bps, Loss: loss,
		}
		l.Shape(netsim.DirBoth, degraded)
		in.emit("link-degrade", name,
			obs.F("bps", bps), obs.F("dur_ms", int(dur/time.Millisecond)))
		in.sched.After(dur, func() {
			restore := netsim.ShapeBandwidth | netsim.ShapeLoss
			l.Shape(netsim.DirAB, netsim.Shaping{Fields: restore, Bandwidth: prevAB.Bandwidth, Loss: prevAB.Loss})
			l.Shape(netsim.DirBA, netsim.Shaping{Fields: restore, Bandwidth: prevBA.Bandwidth, Loss: prevBA.Loss})
			in.emit("link-restore", name, obs.F("bps", prevAB.Bandwidth))
		})
	})
}

// ShapeLink applies an explicit shaping to the selected direction(s)
// at now+at — the injectable form of a single blockage-style retune.
func (in *Injector) ShapeLink(name string, l *netsim.Link, dir netsim.Direction, at time.Duration, s netsim.Shaping) {
	in.sched.After(at, func() {
		l.Shape(dir, s)
		in.emit("link-shape", name, obs.F("dir", dir.String()))
	})
}

// Blockage starts a seeded LoS/NLoS blockage process on l at now+at
// and stops it after dur, restoring the LoS shaping. The model's
// transitions ride its own seeded RNG, so the fault script stays
// byte-reproducible per seed.
func (in *Injector) Blockage(name string, l *netsim.Link, at, dur time.Duration, cfg netsim.BlockageConfig) {
	in.sched.After(at, func() {
		in.emit("blockage-start", name, obs.F("dur_ms", int(dur/time.Millisecond)))
		b := netsim.StartBlockage(in.sched, l, cfg)
		in.sched.After(dur, func() {
			b.Stop()
			l.Shape(cfg.Dir, cfg.LoS)
			in.emit("blockage-stop", name, obs.F("transitions", len(b.Transitions())))
		})
	})
}

// CrashEEM hard-crashes the EEM server at now+at (all client
// connections are severed with a reset) and restarts it after outage.
// Supervised clients are expected to back off, redial, and re-register
// their interests — the soak scenario asserts they do.
func (in *Injector) CrashEEM(name string, srv *eem.Server, at, outage time.Duration) {
	in.sched.After(at, func() {
		srv.Crash()
		in.emit("eem-crash", name, obs.F("outage_ms", int(outage/time.Millisecond)))
	})
	in.sched.After(at+outage, func() {
		srv.Restart()
		in.emit("eem-restart", name)
	})
}

// ArmMigrationFault arms a one-shot fault point inside a migration
// manager at now+at: "drop-offer" and "corrupt-offer" attack the
// snapshot in flight, "crash-pre-commit" and "crash-post-commit" kill
// the source manager on either side of its ack boundary. The migration
// protocol's ownership invariant — each attempt ends completed on the
// destination or resumed on the source, never both, never neither —
// must hold through any of them.
func (in *Injector) ArmMigrationFault(name string, m *migrate.Manager, at time.Duration, point string) {
	in.sched.After(at, func() {
		m.ArmFault(point)
		in.emit("migrate-arm", name, obs.F("point", point))
	})
}

// CrashMigration kills a migration manager at now+at: connections
// reset, volatile protocol state lost, durable journal kept. Restart
// it with RestartMigration to exercise journal recovery.
func (in *Injector) CrashMigration(name string, m *migrate.Manager, at time.Duration) {
	in.sched.After(at, func() {
		m.Crash()
		in.emit("migrate-crash", name)
	})
}

// RestartMigration restarts a crashed migration manager at now+at; the
// manager replays its journal (resume uncommitted transfers, re-drive
// committed ones).
func (in *Injector) RestartMigration(name string, m *migrate.Manager, at time.Duration) {
	in.sched.After(at, func() {
		m.Restart()
		in.emit("migrate-restart", name)
	})
}

// StallShard wedges one shard of a concurrent data plane for stall,
// exercising the watchdog. The stall is fire-and-forget (the shard
// goroutine sleeps; the injector is not blocked). On an inline plane
// this is a no-op — inline shards run on the caller's goroutine and
// cannot stall independently of it.
func (in *Injector) StallShard(pl *dataplane.Plane, shard int, at, stall time.Duration) {
	in.sched.After(at, func() {
		in.emit("shard-stall", fmt.Sprintf("shard%d", shard),
			obs.F("stall_ms", int(stall/time.Millisecond)))
		pl.InjectStall(shard, stall)
	})
}
