package faults

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/filter"
	"repro/internal/ip"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/sim"
)

// injRig is a bare scheduler + two-node link for injector unit tests.
type injRig struct {
	sched *sim.Scheduler
	bus   *obs.Bus
	link  *netsim.Link
}

func newInjRig(t *testing.T) *injRig {
	t.Helper()
	s := sim.NewScheduler(17)
	n := netsim.New(s)
	a := n.AddNode("a")
	b := n.AddNode("b")
	l := n.Connect(a, ip.MustParseAddr("10.0.0.1"), b, ip.MustParseAddr("10.0.0.2"),
		netsim.LinkConfig{Bandwidth: 1e6, Delay: time.Millisecond})
	return &injRig{sched: s, bus: obs.NewBus(s, 256), link: l}
}

// faultEvents returns the kinds of all "faults" events on the bus, in
// emission order.
func faultEvents(b *obs.Bus) []string {
	var kinds []string
	for _, e := range b.Events() {
		if e.Subsys == "faults" {
			kinds = append(kinds, e.Kind)
		}
	}
	return kinds
}

func TestFlapLinkDownThenUp(t *testing.T) {
	r := newInjRig(t)
	inj := NewInjector(r.sched, r.bus)
	inj.FlapLink("l", r.link, time.Second, 500*time.Millisecond)

	r.sched.RunFor(1100 * time.Millisecond)
	if !r.link.Down() {
		t.Fatal("link not down during the scheduled outage")
	}
	r.sched.RunFor(time.Second)
	if r.link.Down() {
		t.Fatal("link still down after the outage elapsed")
	}
	want := []string{"link-down", "link-up"}
	if got := faultEvents(r.bus); len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("fault events = %v, want %v", got, want)
	}
}

func TestPartitionABOnlyOneDirection(t *testing.T) {
	r := newInjRig(t)
	inj := NewInjector(r.sched, r.bus)
	inj.PartitionAB("l", r.link, time.Second, 500*time.Millisecond)

	r.sched.RunFor(1100 * time.Millisecond)
	if !r.link.DownAB() || r.link.DownBA() {
		t.Fatalf("partition state AB=%v BA=%v, want AB-only", r.link.DownAB(), r.link.DownBA())
	}
	r.sched.RunFor(time.Second)
	if r.link.Down() {
		t.Fatal("link not healed after the partition elapsed")
	}
}

func TestDegradeLinkRestoresPreviousQuality(t *testing.T) {
	r := newInjRig(t)
	inj := NewInjector(r.sched, r.bus)
	inj.DegradeLink("l", r.link, time.Second, 500*time.Millisecond,
		64_000, netsim.Bernoulli{P: 0.5})

	r.sched.RunFor(1100 * time.Millisecond)
	if bw := r.link.ConfigAB().Bandwidth; bw != 64_000 {
		t.Fatalf("degraded bandwidth = %d, want 64000", bw)
	}
	if m := r.link.ConfigAB().Loss; m != (netsim.Bernoulli{P: 0.5}) {
		t.Fatalf("degraded loss model = %#v, want Bernoulli{P: 0.5}", m)
	}
	r.sched.RunFor(time.Second)
	if bw := r.link.ConfigAB().Bandwidth; bw != 1e6 {
		t.Fatalf("restored bandwidth = %d, want 1000000", bw)
	}
	// Connect normalizes a nil Loss to NoLoss, so that is what restore
	// must reinstate.
	if m := r.link.ConfigAB().Loss; m != (netsim.NoLoss{}) {
		t.Fatalf("loss model not restored to lossless: %#v", m)
	}
}

// TestChaosFilterModes pins the chaos filter's argument contract: err
// mode fails insertion, unknown modes and bad parameters are rejected.
func TestChaosFilterModes(t *testing.T) {
	cat := filter.NewCatalog()
	RegisterChaosFilter(cat)
	f, err := cat.Load("chaos")
	if err != nil {
		t.Fatal(err)
	}
	k := filter.Key{SrcIP: ip.MustParseAddr("10.0.0.1"), SrcPort: 1,
		DstIP: ip.MustParseAddr("10.0.0.2"), DstPort: 2}
	for _, args := range [][]string{
		{},
		{"err"},
		{"warp"},
		{"drop", "101"},
		{"delay"},
		{"delay", "0"},
		{"delay", "10", "-1"},
	} {
		if err := f.New(nil, k, args); err == nil {
			t.Fatalf("chaos filter accepted args %v", args)
		}
	}
}

// TestChaosDeterminism is the tentpole gate: two in-process runs of the
// full soak with the same seed must succeed and emit byte-identical
// output (per-leg results, event log, metrics). `make chaos` repeats
// this across processes.
func TestChaosDeterminism(t *testing.T) {
	var run1, run2 bytes.Buffer
	if err := Chaos(11, &run1); err != nil {
		t.Fatalf("chaos run 1: %v", err)
	}
	if err := Chaos(11, &run2); err != nil {
		t.Fatalf("chaos run 2: %v", err)
	}
	if !bytes.Equal(run1.Bytes(), run2.Bytes()) {
		l1 := strings.Split(run1.String(), "\n")
		l2 := strings.Split(run2.String(), "\n")
		for i := 0; i < len(l1) && i < len(l2); i++ {
			if l1[i] != l2[i] {
				t.Fatalf("chaos output diverges at line %d:\n run1: %s\n run2: %s", i+1, l1[i], l2[i])
			}
		}
		t.Fatalf("chaos outputs differ in length: %d vs %d lines", len(l1), len(l2))
	}

	// The log must show the whole fault matrix and the reactions the
	// scenario asserts on.
	out := run1.String()
	for _, want := range []string{
		"link-down", "link-up", "partition-ab", "heal-ab",
		"link-degrade", "link-restore", "eem-crash", "eem-restart",
		"filter-quarantine", "reconnected",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("chaos output missing %q", want)
		}
	}
}

// TestChaosSeedsDiverge guards against the scenario accidentally
// ignoring its seed (a constant log would pass the determinism gate).
func TestChaosSeedsDiverge(t *testing.T) {
	var a, b bytes.Buffer
	if err := Chaos(11, &a); err != nil {
		t.Fatal(err)
	}
	if err := Chaos(12, &b); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("different seeds produced identical chaos output")
	}
}
