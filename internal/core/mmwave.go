package core

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/obs"
)

// mmwaveCommand is the "mmwave" SP command, registered only on MMWave
// deployments. It drives the dual-connectivity leg switch of the 5G
// scenario pack:
//
//	mmwave shed on    administratively down the mmWave leg; both ends'
//	                  routing falls back to the parallel LTE leg
//	mmwave shed off   bring the mmWave leg back up; it wins the routes
//	                  again (first-added prefix tie-break)
//	mmwave status     one-line report of both legs
//
// The shed verbs are idempotent so a policy rule can drive them
// through the command action (fire → "shed on", revert → "shed off")
// without tracking leg state itself.
func (s *System) mmwaveCommand(args []string) string {
	switch {
	case len(args) == 2 && args[0] == "shed" && (args[1] == "on" || args[1] == "off"):
		shed := args[1] == "on"
		if s.Wireless.Down() == shed {
			return "mmwave shed " + args[1] + " (no change)"
		}
		s.Wireless.SetDown(shed)
		kind := "restore"
		if shed {
			kind = "shed"
		}
		s.Obs.Emit("mmwave", kind, "", obs.F("leg", "mmwave"))
		return "mmwave shed " + args[1]
	case len(args) == 1 && args[0] == "status":
		return fmt.Sprintf("mmwave %s queued=%d | lte %s queued=%d",
			legState(s.Wireless), s.Wireless.QueuedAB(),
			legState(s.LTELink), s.LTELink.QueuedAB())
	default:
		return "error: usage: mmwave shed on|off | mmwave status"
	}
}

func legState(l *netsim.Link) string {
	if l.Down() {
		return "down"
	}
	return "up"
}
