package core

import (
	"fmt"
	"time"

	"repro/internal/dataplane"
	"repro/internal/eem"
	"repro/internal/sim"
)

// flowVarNames are the EEM variables the flow-log analytics plane
// exports: absolute fleet counters plus windowed traffic-condition
// ratios a policy rule can fire on (flow.retrans_ratio above all).
var flowVarNames = []string{
	"flow.active", "flow.opened", "flow.closed", "flow.evicted",
	"flow.pkts", "flow.data_pkts", "flow.retrans", "flow.zero_win",
	"flow.retrans_ratio", "flow.zero_win_rate", "flow.rtt_mean_ms",
	"flow.rtt",
}

// flowVarSource serves flow-log aggregates to the EEM. The windowed
// ratios are deltas between successive window rolls, in the spirit of
// NodeSource.rate: flow.retrans_ratio is retransmitted-per-data
// segments over the last window, so it climbs while a degradation is
// losing packets and decays to zero once the link recovers — which is
// what lets a hysteresis rule revert. Windows are at least
// flowVarMinWindow wide: retransmissions cluster around RTO expiries,
// so a raw query-to-query delta (the EEM periodic pass and the policy
// pump both read these variables, fragmenting the intervals) would
// oscillate between 0 and spikes and flap any rule watching it.
// Queries inside an open window return the previous window's value,
// keeping the series deterministic regardless of reader interleaving.
type flowVarSource struct {
	sched   *sim.Scheduler
	plane   *dataplane.Plane
	windows map[string]*flowWindow
}

// flowWindow is one ratio variable's inter-query delta state.
type flowWindow struct {
	lastT    sim.Time
	num, den int64
	value    float64
}

func newFlowVarSource(s *sim.Scheduler, pl *dataplane.Plane) *flowVarSource {
	return &flowVarSource{sched: s, plane: pl, windows: make(map[string]*flowWindow)}
}

// Variables implements eem.Source.
func (s *flowVarSource) Variables() []string { return flowVarNames }

// Get implements eem.Source.
func (s *flowVarSource) Get(name string, index int) (eem.Value, error) {
	snap := s.plane.FlowStats()
	switch name {
	case "flow.active":
		return eem.LongValue(snap.Active), nil
	case "flow.opened":
		return eem.LongValue(snap.Opened), nil
	case "flow.closed":
		return eem.LongValue(snap.Closed), nil
	case "flow.evicted":
		return eem.LongValue(snap.Evicted), nil
	case "flow.pkts":
		return eem.LongValue(snap.Pkts), nil
	case "flow.data_pkts":
		return eem.LongValue(snap.DataPkts), nil
	case "flow.retrans":
		return eem.LongValue(snap.Retrans), nil
	case "flow.zero_win":
		return eem.LongValue(snap.ZeroWin), nil
	case "flow.retrans_ratio":
		return eem.DoubleValue(s.window(name, snap.Retrans, snap.DataPkts)), nil
	case "flow.zero_win_rate":
		return eem.DoubleValue(s.window(name, snap.ZeroWin, snap.Pkts)), nil
	case "flow.rtt_mean_ms":
		return eem.DoubleValue(s.window(name, snap.RTTSumMicros, snap.RTTSamples) / 1000), nil
	case "flow.rtt":
		// Lifetime mean RTT in milliseconds — the stable baseline a
		// delay-aware rule compares the windowed flow.rtt_mean_ms
		// against.
		if snap.RTTSamples == 0 {
			return eem.DoubleValue(0), nil
		}
		return eem.DoubleValue(float64(snap.RTTSumMicros) / float64(snap.RTTSamples) / 1000), nil
	default:
		return eem.Value{}, fmt.Errorf("%w: core: flow source has no variable %q", eem.ErrUnknownVar, name)
	}
}

// flowVarMinWindow is the minimum width of a ratio window.
const flowVarMinWindow = 2 * time.Second

// window returns num/den over the last completed window (0 for an
// empty or first window; the cached value while the current window is
// still open).
func (s *flowVarSource) window(key string, num, den int64) float64 {
	now := s.sched.Now()
	w := s.windows[key]
	if w == nil {
		s.windows[key] = &flowWindow{lastT: now, num: num, den: den}
		return 0
	}
	if now.Sub(w.lastT) < flowVarMinWindow {
		return w.value
	}
	dn, dd := num-w.num, den-w.den
	w.lastT, w.num, w.den = now, num, den
	if dd > 0 {
		w.value = float64(dn) / float64(dd)
	} else {
		w.value = 0
	}
	return w.value
}

var _ eem.Source = (*flowVarSource)(nil)
