package core_test

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/eem"
	"repro/internal/ip"
	"repro/internal/netsim"
	"repro/internal/tcp"
)

func TestSystemQuickstartTransfer(t *testing.T) {
	sys := core.NewSystem(core.Config{})
	sys.MustCommand("load tcp")
	sys.MustCommand("load launcher")
	sys.MustCommand("add launcher 11.11.10.99 0 11.11.10.10 0 tcp")

	payload := bytes.Repeat([]byte("comma"), 10_000)
	res, err := sys.Transfer(payload, 7, 5001, 120*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("transfer incomplete: %d of %d", len(res.Received), res.Sent)
	}
	if !bytes.Equal(res.Received, payload) {
		t.Fatal("payload corrupted")
	}
	if res.Elapsed <= 0 {
		t.Fatalf("elapsed = %v", res.Elapsed)
	}
}

func TestSystemDoubleProxyCompression(t *testing.T) {
	sys := core.NewSystem(core.Config{
		DoubleProxy: true,
		Wireless:    netsim.LinkConfig{Bandwidth: 1e6, Delay: 20 * time.Millisecond},
	})
	for _, c := range []string{"load tcp", "load ttsf", "load comp", "load launcher",
		"add launcher 11.11.10.99 0 11.11.10.10 0 tcp ttsf comp"} {
		sys.MustCommand(c)
	}
	for _, c := range []string{"load tcp", "load ttsf", "load decomp", "load launcher",
		"add launcher 11.11.10.99 0 11.11.10.10 0 tcp ttsf decomp"} {
		sys.MustCommandB(c)
	}
	payload := bytes.Repeat([]byte("all work and no play makes jack a dull boy. "), 2000)
	res, err := sys.Transfer(payload, 7, 5001, 300*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || !bytes.Equal(res.Received, payload) {
		t.Fatalf("compressed transfer failed: %d of %d", len(res.Received), res.Sent)
	}
	if carried := sys.Wireless.StatsAB().Bytes; carried > int64(len(payload))/2 {
		t.Fatalf("wireless carried %d bytes for %d payload", carried, len(payload))
	}
}

func TestSystemEEMReachable(t *testing.T) {
	sys := core.NewSystem(core.Config{WithUser: true, EEMInterval: time.Second})
	client := eem.NewComma(eem.SimDialer(sys.UserTCP))
	var got eem.Value
	client.GetValueOnce(eem.ID{Var: "sysName", Server: "11.11.9.1"}, func(v eem.Value, err error) {
		if err != nil {
			t.Errorf("poll: %v", err)
		}
		got = v
	})
	sys.Sched.RunFor(2 * time.Second)
	if got.S != "proxy" {
		t.Fatalf("sysName = %q", got.S)
	}
}

func TestMustCommandPanicsOnError(t *testing.T) {
	sys := core.NewSystem(core.Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("MustCommand did not panic on error")
		}
	}()
	sys.MustCommand("load nonexistent-filter")
}

func TestReportThroughControlPort(t *testing.T) {
	// The SP control port on the proxy host answers over the simulated
	// network, reproducing the thesis's telnet interface end to end.
	sys := core.NewSystem(core.Config{})
	sys.MustCommand("load tcp")
	conn, err := sys.WiredTCP.Connect(core.ProxyCtrlAddr, 12000)
	if err != nil {
		t.Fatal(err)
	}
	var resp strings.Builder
	conn.OnData = func(b []byte) { resp.Write(b) }
	conn.OnEstablished = func() { conn.Write([]byte("report\n")) }
	sys.Sched.RunFor(2 * time.Second)
	if !strings.Contains(resp.String(), "tcp") {
		t.Fatalf("control response: %q", resp.String())
	}
}

func mkCoreSeg(t testing.TB, srcPort uint16, seq uint32) []byte {
	t.Helper()
	seg := tcp.Segment{SrcPort: srcPort, DstPort: 5001, Seq: seq, Ack: 1,
		Flags: tcp.FlagACK, Window: 65535, Payload: []byte("concurrent plane probe")}
	h := ip.Header{TTL: 64, Protocol: ip.ProtoTCP, Src: core.WiredAddr, Dst: core.MobileAddr}
	raw, err := h.Marshal(seg.Marshal(core.WiredAddr, core.MobileAddr))
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestNewConcurrentPlane(t *testing.T) {
	// The standalone concurrent assembly honors the Shards/Batch knobs,
	// carries the full filter catalog, and delivers traffic through the
	// batched pipeline end to end.
	var mu sync.Mutex
	got := 0
	pl := core.NewConcurrentPlane(core.Config{Shards: 2, Batch: 8}, func(_ int, out [][]byte) {
		mu.Lock()
		got += len(out)
		mu.Unlock()
	})
	defer pl.Close()
	if pl.N() != 2 {
		t.Fatalf("shards = %d, want 2", pl.N())
	}
	if out := pl.Command("load tcp"); out != "tcp\n" {
		t.Fatalf("load output %q", out)
	}
	for i := 0; i < 100; i++ {
		pl.Dispatch(mkCoreSeg(t, uint16(4000+i%8), uint32(1+i)))
	}
	pl.Drain()
	mu.Lock()
	defer mu.Unlock()
	if got != 100 {
		t.Fatalf("sink received %d packets, want 100", got)
	}
}
