// Package core assembles the Comma system of the thesis — Service
// Proxy, Execution-Environment Monitor, filter catalogue, and control
// ports — on a simulated wired/wireless topology. It is the public
// entry point: examples, the experiment driver, and the daemons build
// deployments through this package instead of wiring the substrates by
// hand.
//
// The reference topology (thesis Fig 4.1):
//
//	wired host ──(wire)── proxy host ──(wireless)── mobile host
//	                        │
//	                        ├ Service Proxy  (control on TCP :12000)
//	                        └ EEM server     (control on TCP :12001)
//
// With Config.DoubleProxy a second proxy sits on the far side of the
// wireless link (thesis §10.2.4), which is how the transparent
// compression service is deployed end-to-end.
package core

import (
	"fmt"
	"time"

	"repro/internal/dataplane"
	"repro/internal/eem"
	"repro/internal/filter"
	"repro/internal/filters"
	"repro/internal/ip"
	"repro/internal/migrate"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/proxy"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/udp"
)

// Well-known addresses of the reference topology.
var (
	WiredAddr     = ip.MustParseAddr("11.11.10.99")
	MobileAddr    = ip.MustParseAddr("11.11.10.10")
	ProxyCtrlAddr = ip.MustParseAddr("11.11.10.1") // SP/EEM control address
	UserAddr      = ip.MustParseAddr("11.11.9.2")  // Kati workstation
)

// Config shapes a System. Zero values give a 2 Mb/s, 10 ms, lossless
// wireless link and default TCP parameters.
type Config struct {
	Seed        int64
	Wireless    netsim.LinkConfig
	Wire        netsim.LinkConfig
	TCP         tcp.Config
	DoubleProxy bool
	// Shards is the data-plane shard count (0 or 1 = the classic
	// single interception loop, byte-for-byte deterministic; N>1
	// partitions proxy state by flow-steering hash, still inline and
	// deterministic inside the simulator).
	Shards int
	// Batch is the concurrent data plane's ring-slot batch size
	// (dataplane.DefaultBatchSize when 0). It only shapes planes built
	// through NewConcurrentPlane — the inline plane NewSystem installs
	// intercepts synchronously and never batches.
	Batch       int
	EEMInterval time.Duration
	// WithUser adds a Kati workstation node wired to the proxy.
	WithUser bool
	// ObsRetention bounds the observability event ring
	// (obs.DefaultRetention when 0).
	ObsRetention int
	// Policy, when it carries rules, arms an adaptive policy engine
	// against the A-side data plane (thesis ch. 7: the control loop
	// that loads services in response to EEM conditions).
	Policy PolicyConfig
	// Migration arms live stream migration between the two service
	// proxies: a migration manager on each proxy host speaks the
	// two-phase transfer protocol on migrate.Port and the "migrate"
	// command appears on both SPs. Requires DoubleProxy.
	Migration bool
	// MMWave arms the 5G dual-connectivity topology: the wireless link
	// becomes the mmWave leg and a second, steadier LTE leg (LTE config)
	// connects proxy host and mobile in parallel. The mmWave leg is
	// preferred while administratively up; the "mmwave shed on|off" SP
	// command (drivable from a policy rule via the command action)
	// switches both ends to the LTE leg and back. Mutually exclusive
	// with DoubleProxy.
	MMWave bool
	// LTE shapes the LTE leg under MMWave; zero values give a
	// 12 Mb/s, 25 ms link — an order of magnitude below a healthy
	// mmWave leg but immune to its blockage dynamics.
	LTE netsim.LinkConfig
}

// PolicyConfig configures the optional adaptive policy engine.
type PolicyConfig struct {
	// Period is the engine's sampling tick (policy.DefaultPeriod when 0).
	Period time.Duration
	// Rules are parsed by policy.ParseRule; a bad rule panics NewSystem.
	Rules []string
}

// System is a running Comma deployment.
type System struct {
	Sched *sim.Scheduler
	Net   *netsim.Network

	Wired, Mobile *netsim.Node
	ProxyHost     *netsim.Node
	ProxyHostB    *netsim.Node // nil unless DoubleProxy
	User          *netsim.Node // nil unless WithUser

	Proxy  *proxy.Proxy // shard 0 of Plane
	ProxyB *proxy.Proxy // nil unless DoubleProxy; shard 0 of PlaneB
	EEM    *eem.Server

	// Plane is the sharded data plane owning the proxy host's packet
	// hook; commands go through it so mutations reach every shard.
	Plane  *dataplane.Plane
	PlaneB *dataplane.Plane // nil unless DoubleProxy

	WiredTCP, MobileTCP *tcp.Stack
	WiredUDP, MobileUDP *udp.Stack
	UserTCP             *tcp.Stack // nil unless WithUser

	Wireless *netsim.Link
	// LTELink is the parallel LTE leg; nil unless Config.MMWave.
	LTELink *netsim.Link
	Catalog *filter.Catalog

	// Obs is the deployment-wide event bus; Metrics the unified
	// counter/gauge registry (rendered by the SP "stats" command).
	Obs     *obs.Bus
	Metrics *obs.Registry

	// Policy is the adaptive engine; nil unless Config.Policy has rules.
	Policy *policy.Engine

	// Migrate and MigrateB are the per-SP migration managers; nil
	// unless Config.Migration.
	Migrate  *migrate.Manager
	MigrateB *migrate.Manager
}

// NewSystem builds and starts a Comma deployment.
func NewSystem(cfg Config) *System {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Wireless.Bandwidth == 0 {
		cfg.Wireless.Bandwidth = 2e6
	}
	if cfg.Wireless.Delay == 0 {
		cfg.Wireless.Delay = 10 * time.Millisecond
	}
	if cfg.Wire.Bandwidth == 0 {
		cfg.Wire.Bandwidth = 100e6
	}
	if cfg.Wire.Delay == 0 {
		cfg.Wire.Delay = 2 * time.Millisecond
	}
	if cfg.EEMInterval == 0 {
		cfg.EEMInterval = eem.DefaultUpdateInterval
	}
	if cfg.MMWave {
		if cfg.DoubleProxy {
			panic("core: MMWave is mutually exclusive with DoubleProxy")
		}
		if cfg.LTE.Bandwidth == 0 {
			cfg.LTE.Bandwidth = 12e6
		}
		if cfg.LTE.Delay == 0 {
			cfg.LTE.Delay = 25 * time.Millisecond
		}
	}

	s := sim.NewScheduler(cfg.Seed)
	n := netsim.New(s)
	sys := &System{Sched: s, Net: n}

	// Observability: one bus and one registry for the whole deployment.
	sys.Obs = obs.NewBus(s, cfg.ObsRetention)
	sys.Metrics = obs.NewRegistry()
	n.SetObs(sys.Obs)

	sys.Wired = n.AddNode("wired")
	sys.ProxyHost = n.AddNode("proxy")
	sys.ProxyHost.Forwarding = true
	sys.Mobile = n.AddNode("mobile")

	lw := n.Connect(sys.Wired, WiredAddr, sys.ProxyHost, ProxyCtrlAddr, cfg.Wire)
	sys.Wired.AddDefaultRoute(lw.IfaceA())
	lw.RegisterMetrics(sys.Metrics, "link.wire")

	sys.Catalog = filter.NewCatalog()
	filters.RegisterAll(sys.Catalog)
	sys.Plane = dataplane.NewInline(sys.ProxyHost, sys.Catalog, cfg.Shards)
	sys.Proxy = sys.Plane.Shard(0)
	sys.Plane.SetObs(sys.Obs, sys.Metrics)
	sys.Plane.RegisterMetrics(sys.Metrics, "proxy")

	if cfg.DoubleProxy {
		sys.ProxyHostB = n.AddNode("proxyB")
		sys.ProxyHostB.Forwarding = true
		wless := n.Connect(sys.ProxyHost, ip.MustParseAddr("11.11.11.1"),
			sys.ProxyHostB, ip.MustParseAddr("11.11.11.2"), cfg.Wireless)
		sys.Wireless = wless
		lm := n.Connect(sys.ProxyHostB, ip.MustParseAddr("11.11.12.1"), sys.Mobile, MobileAddr, cfg.Wire)
		sys.ProxyHost.AddRoute(MobileAddr.Mask(32), 32, wless.IfaceA())
		sys.ProxyHostB.AddDefaultRoute(wless.IfaceB())
		sys.ProxyHostB.AddRoute(MobileAddr.Mask(32), 32, lm.IfaceA())
		sys.Mobile.AddDefaultRoute(lm.IfaceB())
		catB := filter.NewCatalog()
		filters.RegisterAll(catB)
		sys.PlaneB = dataplane.NewInline(sys.ProxyHostB, catB, cfg.Shards)
		sys.ProxyB = sys.PlaneB.Shard(0)
		sys.PlaneB.SetObs(sys.Obs, sys.Metrics)
		sys.PlaneB.RegisterMetrics(sys.Metrics, "proxyB")
	} else {
		wless := n.Connect(sys.ProxyHost, ip.MustParseAddr("11.11.11.1"), sys.Mobile, MobileAddr, cfg.Wireless)
		sys.Wireless = wless
		sys.ProxyHost.AddRoute(MobileAddr.Mask(32), 32, wless.IfaceA())
		sys.Mobile.AddDefaultRoute(wless.IfaceB())
		if cfg.MMWave {
			// The LTE leg rides in parallel. Both ends install their LTE
			// routes *after* the mmWave ones, so the mmWave leg wins
			// while administratively up (first-added wins prefix ties;
			// the proxy's implicit connected route to the mobile only
			// matches a leg whose transmit direction is up) and routing
			// falls back to LTE the moment the mmWave leg is shed.
			lte := n.Connect(sys.ProxyHost, ip.MustParseAddr("11.11.13.1"),
				sys.Mobile, ip.MustParseAddr("11.11.13.2"), cfg.LTE)
			sys.LTELink = lte
			sys.ProxyHost.AddRoute(MobileAddr.Mask(32), 32, lte.IfaceA())
			sys.Mobile.AddDefaultRoute(lte.IfaceB())
			lte.RegisterMetrics(sys.Metrics, "link.lte")
		}
	}

	sys.Wireless.RegisterMetrics(sys.Metrics, "link.wireless")

	// Data-plane stacks.
	sys.WiredTCP = tcp.NewStack(sys.Wired, cfg.TCP)
	sys.MobileTCP = tcp.NewStack(sys.Mobile, cfg.TCP)
	sys.WiredUDP = udp.NewStack(sys.Wired)
	sys.MobileUDP = udp.NewStack(sys.Mobile)
	registerStacks(sys.Wired, sys.WiredTCP, sys.WiredUDP)
	registerStacks(sys.Mobile, sys.MobileTCP, sys.MobileUDP)
	sys.WiredTCP.RegisterMetrics(sys.Metrics, "tcp.wired")
	sys.MobileTCP.RegisterMetrics(sys.Metrics, "tcp.mobile")
	sys.Wired.RegisterMetrics(sys.Metrics, "node.wired")
	sys.ProxyHost.RegisterMetrics(sys.Metrics, "node.proxy")
	sys.Mobile.RegisterMetrics(sys.Metrics, "node.mobile")

	// Control plane on the proxy host: SP command port and EEM server.
	ctrl := tcp.NewStack(sys.ProxyHost, cfg.TCP)
	sys.ProxyHost.RegisterProto(ip.ProtoTCP, func(h ip.Header, p, raw []byte, in *netsim.Iface) {
		ctrl.Deliver(h.Src, h.Dst, p)
	})
	if err := proxy.ServeControl(ctrl, proxy.ControlPort, sys.Plane); err != nil {
		panic(fmt.Sprintf("core: control port: %v", err))
	}
	ctrl.RegisterMetrics(sys.Metrics, "tcp.proxyctrl")
	sys.EEM = eem.NewServer("proxy")
	sys.EEM.Interval = cfg.EEMInterval
	sys.EEM.SetObs(sys.Obs)
	sys.EEM.RegisterMetrics(sys.Metrics, "eem")
	nodeSrc := &eem.NodeSource{Node: sys.ProxyHost, TCP: ctrl}
	sys.EEM.AddSource(nodeSrc)
	// Traffic-derived variables from the flow-log analytics plane, so
	// policy rules can react to what the streams are doing (retrans
	// ratio, zero-window rate), not just what the links report.
	sys.EEM.AddSource(newFlowVarSource(s, sys.Plane))
	// Per-interface link-shaping variables (link.bw, link.delivery_bps,
	// ...), indexed by the proxy host's interface order — the blockage
	// signal the mmWave policy rules fire on.
	sys.EEM.AddSource(newLinkVarSource(s, sys.ProxyHost))
	if cfg.MMWave {
		sys.Plane.RegisterCommand("mmwave", sys.mmwaveCommand)
	}
	// Adaptive filters query the same variables through their Env
	// (thesis ch. 6: filters are EEM clients too).
	sys.Plane.SetMetricSource(func(name string, index int) (float64, bool) {
		v, err := nodeSrc.Get(name, index)
		if err != nil {
			return 0, false
		}
		switch v.Kind {
		case eem.Long:
			return float64(v.L), true
		case eem.Double:
			return v.D, true
		}
		return 0, false
	})
	if err := eem.ServeSim(ctrl, eem.DefaultPort, sys.EEM); err != nil {
		panic(fmt.Sprintf("core: eem port: %v", err))
	}
	sys.EEM.StartSimTicker(s)

	if cfg.Migration {
		if !cfg.DoubleProxy {
			panic("core: Migration requires DoubleProxy")
		}
		// The A-side proxy has no route to B's wireless address (only
		// keyed routes toward the mobile); the migration control
		// connection needs one. B's default route covers the way back.
		sys.ProxyHost.AddRoute(ip.MustParseAddr("11.11.11.2").Mask(32), 32, sys.Wireless.IfaceA())
		// B gets its own control stack: until now nothing terminated
		// TCP on the far proxy host.
		ctrlB := tcp.NewStack(sys.ProxyHostB, cfg.TCP)
		sys.ProxyHostB.RegisterProto(ip.ProtoTCP, func(h ip.Header, p, raw []byte, in *netsim.Iface) {
			ctrlB.Deliver(h.Src, h.Dst, p)
		})
		ctrlB.RegisterMetrics(sys.Metrics, "tcp.proxyctrlB")
		sys.Migrate = migrate.NewManager(migrate.Config{
			Name: "migrate", ID: 1, Sched: s,
			Plane: sys.Plane, Stack: ctrl, Bus: sys.Obs,
		})
		sys.MigrateB = migrate.NewManager(migrate.Config{
			Name: "migrateB", ID: 2, Sched: s,
			Plane: sys.PlaneB, Stack: ctrlB, Bus: sys.Obs,
		})
		if err := sys.Migrate.Serve(); err != nil {
			panic(fmt.Sprintf("core: migrate port: %v", err))
		}
		if err := sys.MigrateB.Serve(); err != nil {
			panic(fmt.Sprintf("core: migrate port (B): %v", err))
		}
		sys.Migrate.RegisterMetrics(sys.Metrics, "migrate")
		sys.MigrateB.RegisterMetrics(sys.Metrics, "migrateB")
		sys.Plane.RegisterCommand("migrate", sys.Migrate.Command)
		sys.PlaneB.RegisterCommand("migrate", sys.MigrateB.Command)
	}

	if cfg.WithUser {
		sys.User = n.AddNode("user")
		lu := n.Connect(sys.User, UserAddr, sys.ProxyHost, ip.MustParseAddr("11.11.9.1"), cfg.Wire)
		sys.User.AddDefaultRoute(lu.IfaceA())
		sys.ProxyHost.AddRoute(UserAddr.Mask(24), 24, lu.IfaceB())
		sys.UserTCP = tcp.NewStack(sys.User, cfg.TCP)
		registerStacks(sys.User, sys.UserTCP, nil)
		sys.UserTCP.RegisterMetrics(sys.Metrics, "tcp.user")
	}

	if len(cfg.Policy.Rules) > 0 {
		// The engine is an EEM client like any other: it dials the
		// proxy's control address from the wired host (the simulator
		// has no loopback path, so the proxy host cannot dial itself).
		cm := eem.NewComma(eem.SimDialer(sys.WiredTCP))
		cm.UseScheduler(s)
		cm.SetObs(sys.Obs)
		sys.Policy = policy.New(policy.Config{
			Sched:   s,
			Comma:   cm,
			Control: sys.Plane,
			Server:  ProxyCtrlAddr.String(),
			Bus:     sys.Obs,
			Period:  cfg.Policy.Period,
		})
		sys.Policy.RegisterMetrics(sys.Metrics, "policy")
		for _, spec := range cfg.Policy.Rules {
			if err := sys.Policy.AddRule(spec); err != nil {
				panic(fmt.Sprintf("core: %v", err))
			}
		}
		// Expose the engine on the SP control port so Kati's `policy`
		// command reaches it like any other SP command. Registered only
		// when configured, so default deployments keep their command
		// surface (and help text) unchanged.
		sys.Plane.RegisterCommand("policy", sys.Policy.Command)
		sys.Policy.Start()
	}
	return sys
}

// NewConcurrentPlane builds a standalone concurrent (batched,
// goroutine-per-shard) data plane from the same Config knobs the
// simulated deployment uses — Seed, Shards, Batch — with the full
// filter catalog registered. It is the assembly path for throughput
// work outside the deterministic simulator: benchmarks, stress
// harnesses, and eventual kernel-bypass backends. The caller owns the
// plane's lifecycle (Close) and its sink.
func NewConcurrentPlane(cfg Config, sink dataplane.Sink) *dataplane.Plane {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	cat := filter.NewCatalog()
	filters.RegisterAll(cat)
	return dataplane.NewConcurrent(dataplane.ConcurrentConfig{
		Shards:    cfg.Shards,
		Catalog:   cat,
		Seed:      cfg.Seed,
		BatchSize: cfg.Batch,
		Sink:      sink,
	})
}

func registerStacks(node *netsim.Node, t *tcp.Stack, u *udp.Stack) {
	node.RegisterProto(ip.ProtoTCP, func(h ip.Header, p, raw []byte, in *netsim.Iface) {
		t.Deliver(h.Src, h.Dst, p)
	})
	if u != nil {
		node.RegisterProto(ip.ProtoUDP, func(h ip.Header, p, raw []byte, in *netsim.Iface) {
			u.Deliver(h.Src, h.Dst, p)
		})
	}
}

// MustCommand runs an SP command on the primary proxy and panics on an
// error response (setup helper for examples and experiments).
func (s *System) MustCommand(line string) string {
	out := s.Plane.Command(line)
	if len(out) >= 5 && out[:5] == "error" {
		panic(fmt.Sprintf("core: proxy command %q: %s", line, out))
	}
	return out
}

// MustCommandB is MustCommand against the second proxy.
func (s *System) MustCommandB(line string) string {
	if s.PlaneB == nil {
		panic("core: no second proxy (Config.DoubleProxy)")
	}
	out := s.PlaneB.Command(line)
	if len(out) >= 5 && out[:5] == "error" {
		panic(fmt.Sprintf("core: proxyB command %q: %s", line, out))
	}
	return out
}

// TransferResult reports a bulk transfer driven by Transfer.
type TransferResult struct {
	Sent      int
	Received  []byte
	Client    *tcp.Conn
	Elapsed   time.Duration
	Completed bool // all bytes delivered to the mobile application
}

// Transfer pushes payload from the wired host to the mobile on dstPort
// and runs the simulation until delivery completes or deadline
// elapses. The mobile side echoes nothing; it just consumes.
func (s *System) Transfer(payload []byte, srcPort, dstPort uint16, deadline time.Duration) (*TransferResult, error) {
	res := &TransferResult{Sent: len(payload)}
	start := s.Sched.Now()
	var done sim.Time = -1
	_, err := s.MobileTCP.Listen(dstPort, func(c *tcp.Conn) {
		c.OnData = func(b []byte) {
			res.Received = append(res.Received, b...)
			if len(res.Received) == len(payload) {
				done = s.Sched.Now()
			}
		}
		c.OnRemoteClose = func() { c.Close() }
	})
	if err != nil {
		return nil, err
	}
	client, err := s.WiredTCP.ConnectFrom(srcPort, MobileAddr, dstPort)
	if err != nil {
		return nil, err
	}
	res.Client = client
	client.OnEstablished = func() {
		client.Write(payload)
		client.Close()
	}
	s.Sched.RunFor(deadline)
	if done >= 0 {
		res.Completed = true
		res.Elapsed = done.Sub(start)
	} else {
		res.Elapsed = s.Sched.Now().Sub(start)
	}
	return res, nil
}
