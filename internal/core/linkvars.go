package core

import (
	"fmt"
	"time"

	"repro/internal/eem"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// linkVarNames are the per-interface link-shaping variables the EEM
// exports, indexed by the proxy host's interface number (the same
// numbering the SNMP if* tables use: 0 = wire, then each leg in
// Connect order). They read the *transmit* direction — the direction
// the proxy pushes traffic into, which is where blockage bites.
var linkVarNames = []string{
	"link.bw", "link.delay_ms", "link.queue", "link.peak_queue",
	"link.down", "link.delivery_bps",
}

// linkVarSource serves link tuning and occupancy to the EEM. link.bw
// and link.delay_ms read the live shaping (so a Blockage or trace
// segment shows up the moment it is applied); link.delivery_bps is a
// windowed delivered-bits rate in the style of flowVarSource — the
// ground-truth throughput signal a blockage rule fires on even when
// the configured bandwidth alone cannot tell LoS from NLoS.
type linkVarSource struct {
	sched *sim.Scheduler
	node  *netsim.Node
	rates map[int]*linkRate
}

// linkRate is one interface's inter-query delivery-rate window.
type linkRate struct {
	lastT sim.Time
	bytes int64
	value float64
}

// linkVarMinWindow is the minimum width of a delivery-rate window —
// narrower than the flow windows because blockage dwells are short and
// the policy loop must see the collapse within a dwell or two.
const linkVarMinWindow = 500 * time.Millisecond

func newLinkVarSource(s *sim.Scheduler, n *netsim.Node) *linkVarSource {
	return &linkVarSource{sched: s, node: n, rates: make(map[int]*linkRate)}
}

// Variables implements eem.Source.
func (s *linkVarSource) Variables() []string { return linkVarNames }

// Get implements eem.Source.
func (s *linkVarSource) Get(name string, index int) (eem.Value, error) {
	ifs := s.node.Ifaces()
	if index < 0 || index >= len(ifs) || ifs[index].Link() == nil {
		return eem.Value{}, fmt.Errorf("core: link source: no interface %d", index)
	}
	l := ifs[index].Link()
	cfg, st := l.ConfigBA(), l.StatsBA()
	queued, down := l.QueuedBA(), l.DownBA()
	if l.IfaceA() == ifs[index] {
		cfg, st = l.ConfigAB(), l.StatsAB()
		queued, down = l.QueuedAB(), l.DownAB()
	}
	switch name {
	case "link.bw":
		return eem.LongValue(cfg.Bandwidth), nil
	case "link.delay_ms":
		return eem.DoubleValue(float64(cfg.Delay) / float64(time.Millisecond)), nil
	case "link.queue":
		return eem.LongValue(int64(queued)), nil
	case "link.peak_queue":
		return eem.LongValue(int64(st.PeakQueue)), nil
	case "link.down":
		if down {
			return eem.LongValue(1), nil
		}
		return eem.LongValue(0), nil
	case "link.delivery_bps":
		return eem.DoubleValue(s.delivery(index, st.DeliveredBytes)), nil
	default:
		return eem.Value{}, fmt.Errorf("%w: core: link source has no variable %q", eem.ErrUnknownVar, name)
	}
}

// delivery returns the delivered-bits-per-second rate over the last
// completed window (0 for the first; the cached value while the
// current window is open, so interleaved readers see one series).
func (s *linkVarSource) delivery(index int, bytes int64) float64 {
	now := s.sched.Now()
	r := s.rates[index]
	if r == nil {
		s.rates[index] = &linkRate{lastT: now, bytes: bytes}
		return 0
	}
	dt := now.Sub(r.lastT)
	if dt < linkVarMinWindow {
		return r.value
	}
	r.value = float64(bytes-r.bytes) * 8 / dt.Seconds()
	r.lastT, r.bytes = now, bytes
	return r.value
}

var _ eem.Source = (*linkVarSource)(nil)
