package eem

import (
	"fmt"

	"repro/internal/ip"
	"repro/internal/sim"
	"repro/internal/tcp"
)

// DefaultPort is the TCP port EEM servers listen on.
const DefaultPort = 12001

// simConn adapts a simulated TCP connection to the protocol Conn.
type simConn struct{ c *tcp.Conn }

func (s simConn) Write(b []byte) error { return s.c.Write(b) }
func (s simConn) Close()               { s.c.Close() }

// Abort severs the connection with a reset instead of a FIN — crash
// semantics the peer can detect the moment the RST lands.
func (s simConn) Abort() { s.c.Abort() }

// OnDown implements CloseNotifier: fn fires when the underlying TCP
// connection tears down for any reason (reset, timeout, close).
func (s simConn) OnDown(fn func()) { s.c.OnClose = func(error) { fn() } }

// ServeSim exposes the server on a simulated TCP stack, one protocol
// session per accepted connection.
func ServeSim(stack *tcp.Stack, port uint16, srv *Server) error {
	_, err := stack.Listen(port, func(c *tcp.Conn) {
		onData, onClose := srv.Accept(simConn{c})
		c.OnData = onData
		c.OnClose = func(error) { onClose() }
		c.OnRemoteClose = func() { c.Close() }
	})
	return err
}

// StartSimTicker drives the server's periodic pass from the
// simulation scheduler. It returns a stop function.
func (s *Server) StartSimTicker(sched *sim.Scheduler) (stop func()) {
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		s.Tick()
		sched.After(s.Interval, tick)
	}
	sched.After(s.Interval, tick)
	return func() { stopped = true }
}

// SimDialer returns a Dialer that connects over the simulated network
// from the given TCP stack; servers are named by dotted-quad address
// (optionally "addr:port").
func SimDialer(stack *tcp.Stack) Dialer {
	return func(server string) (Conn, func(onData func([]byte)), error) {
		addrStr := server
		port := uint16(DefaultPort)
		if i := indexByte(server, ':'); i >= 0 {
			addrStr = server[:i]
			var p int
			if _, err := fmt.Sscanf(server[i+1:], "%d", &p); err != nil || p <= 0 || p > 65535 {
				return nil, nil, fmt.Errorf("eem: bad server port in %q", server)
			}
			port = uint16(p)
		}
		addr, err := ip.ParseAddr(addrStr)
		if err != nil {
			return nil, nil, fmt.Errorf("eem: bad server address %q: %w", server, err)
		}
		c, err := stack.Connect(addr, port)
		if err != nil {
			return nil, nil, err
		}
		wire := func(onData func([]byte)) { c.OnData = onData }
		return simConn{c}, wire, nil
	}
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}
