package eem

import (
	"encoding/json"
	"fmt"
)

// Dialer opens a protocol stream to a named EEM server. The client
// calls it lazily, once per distinct server referenced by a
// registration (thesis §6.2: "whenever a client registers for a
// variable on an EEM server not already connected to the client, the
// connection thread opens a connection to the new host").
//
// The returned onData function must be invoked with inbound stream
// bytes (wire it to the transport's receive callback).
type Dialer func(server string) (conn Conn, wire func(onData func([]byte)), err error)

// pdaEntry is one slot of the protected data area (thesis §6.2).
type pdaEntry struct {
	val       Value
	inRange   bool
	changed   bool // set on update, cleared by Value()
	haveValue bool
}

// Client is the EEM client library (thesis comma_* interface). All
// methods must be called from the event-loop goroutine driving the
// transports.
type Client struct {
	dial    Dialer
	conns   map[string]Conn
	pda     map[ID]*pdaEntry
	cb      func(ID, Value) // interrupt-style callback
	nextSeq int64
	polls   map[int64]func(Value, error)
	listReq map[int64]func([]string)
	closed  bool
}

// NewClient initializes the client library (comma_init).
func NewClient(dial Dialer) *Client {
	return &Client{
		dial:    dial,
		conns:   make(map[string]Conn),
		pda:     make(map[ID]*pdaEntry),
		polls:   make(map[int64]func(Value, error)),
		listReq: make(map[int64]func([]string)),
	}
}

// SetCallback installs the interrupt-notification callback
// (comma_setcallback). Registrations made with Attr.Interrupt deliver
// through it.
func (c *Client) SetCallback(fn func(ID, Value)) { c.cb = fn }

// Close disconnects from all servers and drops state (comma_term).
func (c *Client) Close() {
	if c.closed {
		return
	}
	c.closed = true
	for _, conn := range c.conns {
		conn.Close()
	}
	c.conns = nil
}

// connTo returns (dialing if needed) the stream to server.
func (c *Client) connTo(server string) (Conn, error) {
	if conn, ok := c.conns[server]; ok {
		return conn, nil
	}
	conn, wire, err := c.dial(server)
	if err != nil {
		return nil, fmt.Errorf("eem: dial %s: %w", server, err)
	}
	var lb lineBuffer
	wire(func(data []byte) {
		lb.feed(data, func(line []byte) { c.handleLine(server, line) })
	})
	c.conns[server] = conn
	return conn, nil
}

// Register asks id's server to watch the variable under attr
// (comma_var_register). Updates land silently in the protected data
// area; if attr.Interrupt is set the callback also fires on entry to
// the region.
func (c *Client) Register(id ID, attr Attr) error {
	conn, err := c.connTo(id.Server)
	if err != nil {
		return err
	}
	if _, ok := c.pda[id]; !ok {
		c.pda[id] = &pdaEntry{}
	}
	return conn.Write(encodeMsg(wireMsg{Kind: msgRegister, ID: id, A: attr}))
}

// Deregister removes one registration (comma_var_deregister).
func (c *Client) Deregister(id ID) error {
	conn, err := c.connTo(id.Server)
	if err != nil {
		return err
	}
	delete(c.pda, id)
	return conn.Write(encodeMsg(wireMsg{Kind: msgDeregister, ID: id}))
}

// DeregisterAll removes every registration on every server
// (comma_var_deregisterall).
func (c *Client) DeregisterAll() {
	for _, conn := range c.conns {
		conn.Write(encodeMsg(wireMsg{Kind: msgDeregisterAll}))
	}
	c.pda = make(map[ID]*pdaEntry)
}

// Value returns the most recent value from the protected data area
// (comma_query_getvalue) and whether one has arrived. It clears the
// changed mark.
func (c *Client) Value(id ID) (Value, bool) {
	e, ok := c.pda[id]
	if !ok || !e.haveValue {
		return Value{}, false
	}
	e.changed = false
	return e.val, true
}

// InRange reports whether the most recent update had the variable
// inside its region of interest (comma_query_isinrange).
func (c *Client) InRange(id ID) bool {
	e, ok := c.pda[id]
	return ok && e.inRange
}

// HasChanged reports whether the variable changed since last read
// (comma_query_haschanged).
func (c *Client) HasChanged(id ID) bool {
	e, ok := c.pda[id]
	return ok && e.changed
}

// PollOnce retrieves a single value directly from the server
// (comma_query_getvalue_once). The reply is delivered asynchronously
// to fn — the event-driven rendering of the thesis's synchronous call.
func (c *Client) PollOnce(id ID, fn func(Value, error)) error {
	conn, err := c.connTo(id.Server)
	if err != nil {
		return err
	}
	c.nextSeq++
	c.polls[c.nextSeq] = fn
	return conn.Write(encodeMsg(wireMsg{Kind: msgPoll, Seq: c.nextSeq, ID: id}))
}

// ListVariables asks a server for its variable catalogue (Kati's
// browsing support).
func (c *Client) ListVariables(server string, fn func([]string)) error {
	conn, err := c.connTo(server)
	if err != nil {
		return err
	}
	c.nextSeq++
	c.listReq[c.nextSeq] = fn
	return conn.Write(encodeMsg(wireMsg{Kind: msgListVars, Seq: c.nextSeq}))
}

// handleLine processes one inbound protocol message from server.
func (c *Client) handleLine(server string, line []byte) {
	var m wireMsg
	if err := json.Unmarshal(line, &m); err != nil {
		return
	}
	switch m.Kind {
	case msgUpdate:
		for _, u := range m.Batch {
			e, ok := c.pda[u.ID]
			if !ok {
				// Tolerate servers that strip the server name.
				id := u.ID
				id.Server = server
				e, ok = c.pda[id]
				if !ok {
					continue
				}
			}
			if !e.haveValue || !e.val.Equal(u.V) {
				e.changed = true
			}
			e.val = u.V
			e.haveValue = true
			e.inRange = true
		}
	case msgNotify:
		id := m.ID
		if e, ok := c.pda[id]; ok {
			if !e.haveValue || !e.val.Equal(m.V) {
				e.changed = true
			}
			e.val = m.V
			e.haveValue = true
			e.inRange = true
		}
		if c.cb != nil {
			c.cb(id, m.V)
		}
	case msgPollReply:
		fn, ok := c.polls[m.Seq]
		if !ok {
			return
		}
		delete(c.polls, m.Seq)
		if m.Err != "" {
			fn(Value{}, fmt.Errorf("eem: %s", m.Err))
		} else {
			fn(m.V, nil)
		}
	case msgVarList:
		if fn, ok := c.listReq[m.Seq]; ok {
			delete(c.listReq, m.Seq)
			fn(m.Names)
		}
	case msgError:
		// Server rejected something; surfaced via logs in callers.
	}
}
