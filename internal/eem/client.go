package eem

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Dialer opens a protocol stream to a named EEM server. The client
// calls it lazily, once per distinct server referenced by a
// registration (thesis §6.2: "whenever a client registers for a
// variable on an EEM server not already connected to the client, the
// connection thread opens a connection to the new host").
//
// The returned onData function must be invoked with inbound stream
// bytes (wire it to the transport's receive callback).
type Dialer func(server string) (conn Conn, wire func(onData func([]byte)), err error)

// CloseNotifier is an optional extension of Conn: transports that can
// detect their stream dying (reset, teardown) implement it so the
// client evicts the connection the moment it goes down instead of
// discovering the corpse on the next write.
type CloseNotifier interface {
	// OnDown arms fn to run once when the stream goes down.
	OnDown(fn func())
}

// pdaEntry is one slot of the protected data area (thesis §6.2).
type pdaEntry struct {
	val       Value
	inRange   bool
	changed   bool // set on update, cleared by Value()
	haveValue bool
	stale     bool // server lost since the value arrived
}

// Client is the low-level EEM client connection machinery. All methods
// must be called from the event-loop goroutine driving the transports.
//
// The comma_* surface lives on the Comma facade (comma.go), which
// renders the thesis's interface with explicit notification modes on
// top of the unexported cores below. Client keeps only the plumbing
// that is mode-independent: lifecycle (NewClient, Close), transport
// supervision, staleness, and the variable catalogue.
type Client struct {
	dial    Dialer
	conns   map[string]Conn
	pda     map[ID]*pdaEntry
	cb      func(ID, Value) // interrupt-style callback
	nextSeq int64
	polls   map[int64]func(Value, error)
	pollSrv map[int64]string // seq → server, to fail polls on disconnect
	listReq map[int64]func([]string)
	closed  bool

	// interests mirrors every live registration so the supervisor can
	// replay them on a fresh connection after the server comes back.
	interests map[ID]Attr

	sup *supervisor
	obs *obs.Bus
}

// NewClient initializes the client library (comma_init).
func NewClient(dial Dialer) *Client {
	return &Client{
		dial:      dial,
		conns:     make(map[string]Conn),
		pda:       make(map[ID]*pdaEntry),
		polls:     make(map[int64]func(Value, error)),
		pollSrv:   make(map[int64]string),
		listReq:   make(map[int64]func([]string)),
		interests: make(map[ID]Attr),
	}
}

// SetObs attaches the observability bus; connection-lifecycle events
// are emitted under the "eem-client" subsystem, keyed by server name.
func (c *Client) SetObs(b *obs.Bus) { c.obs = b }

// setCallback installs the interrupt-notification callback
// (comma_setcallback); Comma.Register's WithCallback mode routes
// through it.
func (c *Client) setCallback(fn func(ID, Value)) { c.cb = fn }

// Close disconnects from all servers and drops state (comma_term).
func (c *Client) Close() { c.close() }

func (c *Client) close() {
	if c.closed {
		return
	}
	c.closed = true
	for _, conn := range c.conns {
		conn.Close()
	}
	c.conns = nil
}

// connTo returns (dialing if needed) the stream to server.
func (c *Client) connTo(server string) (Conn, error) {
	if conn, ok := c.conns[server]; ok {
		return conn, nil
	}
	conn, wire, err := c.dial(server)
	if err != nil {
		return nil, fmt.Errorf("eem: dial %s: %w", server, err)
	}
	var lb lineBuffer
	wire(func(data []byte) {
		lb.feed(data, func(line []byte) { c.handleLine(server, line) })
	})
	if n, ok := conn.(CloseNotifier); ok {
		n.OnDown(func() { c.noteDisconnect(server) })
	}
	c.conns[server] = conn
	return conn, nil
}

// writeTo sends msg on the (freshly dialed if needed) stream to
// server. Any failure evicts the cached connection so the next call
// redials instead of reusing a dead conn.
func (c *Client) writeTo(server string, msg []byte) error {
	conn, err := c.connTo(server)
	if err != nil {
		if c.sup != nil {
			c.sup.scheduleRedial(c, server)
		}
		return err
	}
	if err := conn.Write(msg); err != nil {
		c.noteDisconnect(server)
		return fmt.Errorf("eem: write to %s: %w", server, err)
	}
	return nil
}

// noteDisconnect evicts the cached connection to server, marks the
// server's protected-data-area entries stale, and fails its pending
// polls. Safe to call repeatedly; the supervisor (if any) owns the
// redial schedule.
func (c *Client) noteDisconnect(server string) {
	if c.closed {
		return
	}
	if conn, ok := c.conns[server]; ok {
		delete(c.conns, server)
		conn.Close()
		for id, e := range c.pda {
			if id.Server == server {
				e.stale = true
			}
		}
		// Outstanding polls on this stream will never be answered;
		// fail them now, in seq order for reproducible callback order.
		var seqs []int64
		for seq, srv := range c.pollSrv {
			if srv == server {
				seqs = append(seqs, seq)
			}
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		for _, seq := range seqs {
			fn := c.polls[seq]
			delete(c.polls, seq)
			delete(c.pollSrv, seq)
			if fn != nil {
				fn(Value{}, wrapKind(ErrConnLost,
					fmt.Sprintf("eem: connection to %s lost", server)))
			}
		}
		c.obs.Emit("eem-client", "conn-down", server)
	}
	if c.sup != nil {
		c.sup.scheduleRedial(c, server)
	}
}

// register asks id's server to watch the variable under attr
// (comma_var_register). Updates land silently in the protected data
// area; if attr.Interrupt is set the callback also fires on entry to
// the region. The interest is remembered even if the server is
// currently unreachable: a supervising client re-registers it once
// the connection comes back.
func (c *Client) register(id ID, attr Attr) error {
	c.interests[id] = attr
	if _, ok := c.pda[id]; !ok {
		c.pda[id] = &pdaEntry{}
	}
	return c.writeTo(id.Server, encodeMsg(wireMsg{Kind: msgRegister, ID: id, A: attr}))
}

// localRegister records a client-only registration (Comma's WithPoll
// mode): a PDA slot exists for GetValueOnce results but the server is
// never contacted and the supervisor never replays it.
func (c *Client) localRegister(id ID) {
	if _, ok := c.pda[id]; !ok {
		c.pda[id] = &pdaEntry{}
	}
}

// deregister removes one registration (comma_var_deregister).
func (c *Client) deregister(id ID) error {
	delete(c.interests, id)
	delete(c.pda, id)
	return c.writeTo(id.Server, encodeMsg(wireMsg{Kind: msgDeregister, ID: id}))
}

// localDeregister drops a client-only registration without touching
// the server.
func (c *Client) localDeregister(id ID) {
	delete(c.interests, id)
	delete(c.pda, id)
}

// deregisterAll removes every registration on every server
// (comma_var_deregisterall).
func (c *Client) deregisterAll() {
	servers := make([]string, 0, len(c.conns))
	for s := range c.conns {
		servers = append(servers, s)
	}
	sort.Strings(servers)
	for _, s := range servers {
		c.writeTo(s, encodeMsg(wireMsg{Kind: msgDeregisterAll}))
	}
	c.pda = make(map[ID]*pdaEntry)
	c.interests = make(map[ID]Attr)
}

// value returns the most recent value from the protected data area
// (comma_query_getvalue) and whether one has arrived. It clears the
// changed mark.
func (c *Client) value(id ID) (Value, bool) {
	e, ok := c.pda[id]
	if !ok || !e.haveValue {
		return Value{}, false
	}
	e.changed = false
	return e.val, true
}

// storePDA writes a value into the protected data area directly —
// Comma's WithPDA refresh pump stores poll results through it, keeping
// the changed/stale bookkeeping identical to a server-pushed update.
func (c *Client) storePDA(id ID, v Value, inRange bool) {
	e, ok := c.pda[id]
	if !ok {
		return
	}
	if !e.haveValue || !e.val.Equal(v) {
		e.changed = true
	}
	e.val = v
	e.haveValue = true
	e.inRange = inRange
	e.stale = false
}

// Stale reports whether id's protected-data-area value predates a
// disconnect from its server — still readable, but possibly outdated.
// It clears when fresh data arrives after the reconnect.
func (c *Client) Stale(id ID) bool { return c.stale(id) }

func (c *Client) stale(id ID) bool {
	e, ok := c.pda[id]
	return ok && e.stale
}

// inRange reports whether the most recent update had the variable
// inside its region of interest (comma_query_isinrange).
func (c *Client) inRange(id ID) bool {
	e, ok := c.pda[id]
	return ok && e.inRange
}

// hasChanged reports whether the variable changed since last read
// (comma_query_haschanged).
func (c *Client) hasChanged(id ID) bool {
	e, ok := c.pda[id]
	return ok && e.changed
}

// pollOnce retrieves a single value directly from the server
// (comma_query_getvalue_once). The reply is delivered asynchronously
// to fn — the event-driven rendering of the thesis's synchronous call.
// If the connection dies before the reply, fn receives an error.
func (c *Client) pollOnce(id ID, fn func(Value, error)) error {
	conn, err := c.connTo(id.Server)
	if err != nil {
		if c.sup != nil {
			c.sup.scheduleRedial(c, id.Server)
		}
		return err
	}
	c.nextSeq++
	seq := c.nextSeq
	c.polls[seq] = fn
	c.pollSrv[seq] = id.Server
	if err := conn.Write(encodeMsg(wireMsg{Kind: msgPoll, Seq: seq, ID: id})); err != nil {
		delete(c.polls, seq)
		delete(c.pollSrv, seq)
		c.noteDisconnect(id.Server)
		return fmt.Errorf("eem: write to %s: %w", id.Server, err)
	}
	return nil
}

// ListVariables asks a server for its variable catalogue (Kati's
// browsing support).
func (c *Client) ListVariables(server string, fn func([]string)) error {
	return c.listVariables(server, fn)
}

func (c *Client) listVariables(server string, fn func([]string)) error {
	conn, err := c.connTo(server)
	if err != nil {
		if c.sup != nil {
			c.sup.scheduleRedial(c, server)
		}
		return err
	}
	c.nextSeq++
	seq := c.nextSeq
	c.listReq[seq] = fn
	if err := conn.Write(encodeMsg(wireMsg{Kind: msgListVars, Seq: seq})); err != nil {
		delete(c.listReq, seq)
		c.noteDisconnect(server)
		return fmt.Errorf("eem: write to %s: %w", server, err)
	}
	return nil
}

// handleLine processes one inbound protocol message from server.
func (c *Client) handleLine(server string, line []byte) {
	var m wireMsg
	if err := json.Unmarshal(line, &m); err != nil {
		return
	}
	// Any parseable message proves the server alive: reset the
	// supervisor's backoff so the next outage starts from BaseDelay.
	if c.sup != nil {
		c.sup.attempt[server] = 0
	}
	switch m.Kind {
	case msgUpdate:
		for _, u := range m.Batch {
			e, ok := c.pda[u.ID]
			if !ok {
				// Tolerate servers that strip the server name.
				id := u.ID
				id.Server = server
				e, ok = c.pda[id]
				if !ok {
					continue
				}
			}
			if !e.haveValue || !e.val.Equal(u.V) {
				e.changed = true
			}
			e.val = u.V
			e.haveValue = true
			e.inRange = true
			e.stale = false
		}
	case msgNotify:
		id := m.ID
		if e, ok := c.pda[id]; ok {
			if !e.haveValue || !e.val.Equal(m.V) {
				e.changed = true
			}
			e.val = m.V
			e.haveValue = true
			e.inRange = true
			e.stale = false
		}
		if c.cb != nil {
			c.cb(id, m.V)
		}
	case msgPollReply:
		fn, ok := c.polls[m.Seq]
		if !ok {
			return
		}
		delete(c.polls, m.Seq)
		delete(c.pollSrv, m.Seq)
		if m.Err != "" {
			if kind := kindForCode(m.Code); kind != nil {
				fn(Value{}, wrapKind(kind, "eem: "+m.Err))
			} else {
				fn(Value{}, fmt.Errorf("eem: %s", m.Err))
			}
		} else {
			fn(m.V, nil)
		}
	case msgVarList:
		if fn, ok := c.listReq[m.Seq]; ok {
			delete(c.listReq, m.Seq)
			fn(m.Names)
		}
	case msgError:
		// Server rejected something; surfaced via logs in callers.
	}
}

// SuperviseConfig tunes the client's reconnection supervisor.
type SuperviseConfig struct {
	// BaseDelay is the first redial delay after a disconnect
	// (default 500ms); successive failures double it.
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff (default 15s).
	MaxDelay time.Duration
}

type supervisor struct {
	sched   *sim.Scheduler
	cfg     SuperviseConfig
	pending map[string]bool
	attempt map[string]int
}

// Supervise attaches a reconnection supervisor driven by the given
// scheduler: when a connection dies the client redials with
// exponential backoff and jitter drawn from the scheduler's seeded RNG
// (deterministic per seed, yet de-synchronized across clients), and
// replays every registration held on that server once a redial sticks.
// PDA entries stay readable but report Stale until fresh data arrives.
func (c *Client) Supervise(sched *sim.Scheduler, cfg SuperviseConfig) {
	if cfg.BaseDelay <= 0 {
		cfg.BaseDelay = 500 * time.Millisecond
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 15 * time.Second
	}
	c.sup = &supervisor{
		sched:   sched,
		cfg:     cfg,
		pending: make(map[string]bool),
		attempt: make(map[string]int),
	}
}

// backoff computes the next redial delay for server: exponential in
// the consecutive-failure count, capped at MaxDelay, with ±25% jitter
// so a fleet of clients doesn't stampede a restarting server.
func (s *supervisor) backoff(server string) time.Duration {
	d := s.cfg.BaseDelay
	for i := 0; i < s.attempt[server] && d < s.cfg.MaxDelay; i++ {
		d *= 2
	}
	if d > s.cfg.MaxDelay {
		d = s.cfg.MaxDelay
	}
	jitter := 0.75 + s.sched.Rand().Float64()/2
	return time.Duration(float64(d) * jitter)
}

// scheduleRedial arms (at most one) pending redial timer for server.
func (s *supervisor) scheduleRedial(c *Client, server string) {
	if s.pending[server] {
		return
	}
	s.pending[server] = true
	d := s.backoff(server)
	s.attempt[server]++
	c.obs.Emit("eem-client", "redial-scheduled", server,
		obs.F("attempt", s.attempt[server]), obs.F("delay_ms", d.Milliseconds()))
	s.sched.After(d, func() {
		s.pending[server] = false
		if c.closed {
			return
		}
		if _, ok := c.conns[server]; ok {
			return // something else already reconnected
		}
		if err := c.reconnect(server); err != nil {
			c.obs.Emit("eem-client", "redial-failed", server)
			s.scheduleRedial(c, server)
		}
	})
}

// reconnect redials server and replays its registrations in a
// deterministic (var, index) order.
func (c *Client) reconnect(server string) error {
	conn, err := c.connTo(server)
	if err != nil {
		return err
	}
	c.obs.Emit("eem-client", "reconnected", server)
	ids := make([]ID, 0, len(c.interests))
	for id := range c.interests {
		if id.Server == server {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].Var != ids[j].Var {
			return ids[i].Var < ids[j].Var
		}
		return ids[i].Index < ids[j].Index
	})
	for _, id := range ids {
		if err := conn.Write(encodeMsg(wireMsg{Kind: msgRegister, ID: id, A: c.interests[id]})); err != nil {
			c.noteDisconnect(server)
			return err
		}
	}
	if len(ids) > 0 {
		c.obs.Emit("eem-client", "re-register", server, obs.F("count", len(ids)))
	}
	return nil
}
