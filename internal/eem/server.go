package eem

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"
)

// DefaultUpdateInterval is the periodic check/update interval; the
// thesis used "a currently hard-coded interval of roughly ten
// seconds" (§6.3.2).
const DefaultUpdateInterval = 10 * time.Second

// registrationState tracks one client registration.
type registrationState struct {
	id   ID
	attr Attr
	// wasInRange implements edge-triggered interrupt notification: the
	// callback fires when the variable *changes into* the region.
	wasInRange bool
}

// session is one connected client.
type session struct {
	conn Conn
	lb   lineBuffer
	regs []*registrationState
}

// Server is an EEM server: it owns a set of variable sources and
// serves registrations from any number of clients (thesis §6.2).
type Server struct {
	name     string
	sources  []Source
	varIndex map[string]Source
	sessions map[*session]bool

	// Interval is the periodic check period (default 10s).
	Interval time.Duration

	// Stats.
	Registrations int64
	UpdatesSent   int64
	NotifiesSent  int64
	PollsServed   int64
}

// NewServer creates a server named name (reported to clients in IDs).
func NewServer(name string) *Server {
	return &Server{
		name:     name,
		varIndex: make(map[string]Source),
		sessions: make(map[*session]bool),
		Interval: DefaultUpdateInterval,
	}
}

// AddSource registers a variable source. Later sources win name
// conflicts (application-specific sources can shadow defaults,
// thesis §6.2).
func (s *Server) AddSource(src Source) {
	s.sources = append(s.sources, src)
	for _, v := range src.Variables() {
		s.varIndex[v] = src
	}
}

// Variables lists every variable the server can answer for, sorted.
func (s *Server) Variables() []string {
	out := make([]string, 0, len(s.varIndex))
	for v := range s.varIndex {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// get resolves a variable through the source index.
func (s *Server) get(id ID) (Value, error) {
	src, ok := s.varIndex[id.Var]
	if !ok {
		return Value{}, fmt.Errorf("eem: server %s has no variable %q", s.name, id.Var)
	}
	return src.Get(id.Var, id.Index)
}

// Accept attaches a client connection. Feed inbound bytes through the
// returned function (wire it to the stream's data callback).
func (s *Server) Accept(conn Conn) (onData func([]byte), onClose func()) {
	sess := &session{conn: conn}
	s.sessions[sess] = true
	return func(data []byte) {
			sess.lb.feed(data, func(line []byte) { s.handleLine(sess, line) })
		}, func() {
			delete(s.sessions, sess)
		}
}

func (s *Server) handleLine(sess *session, line []byte) {
	var m wireMsg
	if err := json.Unmarshal(line, &m); err != nil {
		sess.conn.Write(encodeMsg(wireMsg{Kind: msgError, Err: "bad message: " + err.Error()}))
		return
	}
	switch m.Kind {
	case msgRegister:
		if _, ok := s.varIndex[m.ID.Var]; !ok {
			sess.conn.Write(encodeMsg(wireMsg{Kind: msgError, Err: "unknown variable " + m.ID.Var}))
			return
		}
		s.Registrations++
		sess.regs = append(sess.regs, &registrationState{id: m.ID, attr: m.A})
	case msgDeregister:
		kept := sess.regs[:0]
		for _, r := range sess.regs {
			if r.id != m.ID {
				kept = append(kept, r)
			}
		}
		sess.regs = kept
	case msgDeregisterAll:
		sess.regs = nil
	case msgPoll:
		s.PollsServed++
		v, err := s.get(m.ID)
		reply := wireMsg{Kind: msgPollReply, Seq: m.Seq, ID: m.ID, V: v}
		if err != nil {
			reply.Err = err.Error()
		}
		sess.conn.Write(encodeMsg(reply))
	case msgListVars:
		sess.conn.Write(encodeMsg(wireMsg{Kind: msgVarList, Seq: m.Seq, Names: s.Variables()}))
	default:
		sess.conn.Write(encodeMsg(wireMsg{Kind: msgError, Err: "unknown message kind " + m.Kind}))
	}
}

// Tick performs one periodic pass: evaluate every registration, fire
// interrupt notifications for variables that entered their region, and
// send each client a batch update of all its in-range variables
// (thesis §6.2: "an update containing all variables that fall within
// their requested range is sent... once all variables have been
// checked"). The owner drives Tick from a simulator timer or a real
// ticker.
func (s *Server) Tick() {
	for sess := range s.sessions {
		var batch []varUpdate
		for _, r := range sess.regs {
			v, err := s.get(r.id)
			if err != nil {
				continue
			}
			in, err := r.attr.Matches(v)
			if err != nil {
				continue
			}
			if in && r.attr.Interrupt && !r.wasInRange {
				s.NotifiesSent++
				sess.conn.Write(encodeMsg(wireMsg{Kind: msgNotify, ID: r.id, V: v}))
			}
			r.wasInRange = in
			if in {
				batch = append(batch, varUpdate{ID: r.id, V: v})
			}
		}
		if len(batch) > 0 {
			s.UpdatesSent++
			sess.conn.Write(encodeMsg(wireMsg{Kind: msgUpdate, Batch: batch}))
		}
	}
}
