package eem

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"time"

	"repro/internal/obs"
)

// DefaultUpdateInterval is the periodic check/update interval; the
// thesis used "a currently hard-coded interval of roughly ten
// seconds" (§6.3.2).
const DefaultUpdateInterval = 10 * time.Second

// registrationState tracks one client registration.
type registrationState struct {
	id   ID
	attr Attr
	// wasInRange implements edge-triggered interrupt notification: the
	// callback fires when the variable *changes into* the region. An
	// evaluation that errors (unknown source state, type mismatch)
	// counts as out-of-range, so a variable that errors transiently,
	// leaves the region, and re-enters still re-fires its interrupt.
	wasInRange bool
}

// session is one connected client.
type session struct {
	id   int64 // stable per-server session number, for observability
	conn Conn
	lb   lineBuffer
	regs []*registrationState
}

// key renders the session's observability key ("s1", "s2", ...).
func (s *session) key() string { return "s" + strconv.FormatInt(s.id, 10) }

// Server is an EEM server: it owns a set of variable sources and
// serves registrations from any number of clients (thesis §6.2).
type Server struct {
	name     string
	sources  []Source
	varIndex map[string]Source
	// sessions is kept in insertion (accept) order. Tick iterates it
	// directly: the wire-message order across clients under one seed
	// must be reproducible, which a map range would randomize.
	sessions []*session
	nextSess int64

	// obs, when non-nil, receives structured events for session
	// lifecycle and every notify/update/poll served.
	obs *obs.Bus

	// Interval is the periodic check period (default 10s).
	Interval time.Duration

	// down marks a crashed server: it refuses connections and skips
	// periodic passes until Restart.
	down bool

	// Stats.
	Registrations int64
	UpdatesSent   int64
	NotifiesSent  int64
	PollsServed   int64
}

// NewServer creates a server named name (reported to clients in IDs).
func NewServer(name string) *Server {
	return &Server{
		name:     name,
		varIndex: make(map[string]Source),
		Interval: DefaultUpdateInterval,
	}
}

// SetObs attaches the observability bus. Events are emitted under the
// "eem" subsystem, keyed by session ("s1", "s2", ... in accept order).
func (s *Server) SetObs(b *obs.Bus) { s.obs = b }

// RegisterMetrics exposes the server's counters in a metrics registry
// under prefix (e.g. "eem" -> "eem.notifies_sent").
func (s *Server) RegisterMetrics(r *obs.Registry, prefix string) {
	r.Counter(prefix+".registrations", func() int64 { return s.Registrations })
	r.Counter(prefix+".updates_sent", func() int64 { return s.UpdatesSent })
	r.Counter(prefix+".notifies_sent", func() int64 { return s.NotifiesSent })
	r.Counter(prefix+".polls_served", func() int64 { return s.PollsServed })
	r.Gauge(prefix+".sessions", func() float64 { return float64(len(s.sessions)) })
}

// AddSource registers a variable source. Later sources win name
// conflicts (application-specific sources can shadow defaults,
// thesis §6.2).
func (s *Server) AddSource(src Source) {
	s.sources = append(s.sources, src)
	for _, v := range src.Variables() {
		s.varIndex[v] = src
	}
}

// Variables lists every variable the server can answer for, sorted.
func (s *Server) Variables() []string {
	out := make([]string, 0, len(s.varIndex))
	for v := range s.varIndex {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// get resolves a variable through the source index.
func (s *Server) get(id ID) (Value, error) {
	src, ok := s.varIndex[id.Var]
	if !ok {
		return Value{}, wrapKind(ErrUnknownVar,
			fmt.Sprintf("eem: server %s has no variable %q", s.name, id.Var))
	}
	return src.Get(id.Var, id.Index)
}

// Crash simulates abrupt server death: every session is severed with a
// reset (not a graceful FIN — the peer must see the crash, not a
// shutdown), all registration state is lost, and the server refuses
// connections and skips periodic passes until Restart.
func (s *Server) Crash() {
	if s.down {
		return
	}
	s.down = true
	s.obs.Emit("eem", "crash", s.name)
	sessions := s.sessions
	s.sessions = nil
	for _, sess := range sessions {
		abortConn(sess.conn)
	}
}

// Restart brings a crashed server back up, empty: it accepts
// connections again with no memory of prior sessions or
// registrations — clients must re-register, exactly as after a real
// process restart.
func (s *Server) Restart() {
	if !s.down {
		return
	}
	s.down = false
	s.obs.Emit("eem", "restart", s.name)
}

// Down reports whether the server is crashed.
func (s *Server) Down() bool { return s.down }

// abortConn severs conn with a reset when the transport supports it
// (crash semantics the peer detects immediately), else falls back to
// an ordinary close.
func abortConn(c Conn) {
	if a, ok := c.(interface{ Abort() }); ok {
		a.Abort()
	} else {
		c.Close()
	}
}

// Accept attaches a client connection. Feed inbound bytes through the
// returned function (wire it to the stream's data callback).
func (s *Server) Accept(conn Conn) (onData func([]byte), onClose func()) {
	if s.down {
		// A crashed host answers SYNs with RST; the sim listener has
		// already completed the handshake, so sever immediately.
		abortConn(conn)
		return func([]byte) {}, func() {}
	}
	s.nextSess++
	sess := &session{id: s.nextSess, conn: conn}
	s.sessions = append(s.sessions, sess)
	s.obs.Emit("eem", "session-open", sess.key())
	return func(data []byte) {
			sess.lb.feed(data, func(line []byte) { s.handleLine(sess, line) })
		}, func() {
			for i, other := range s.sessions {
				if other == sess {
					s.sessions = append(s.sessions[:i], s.sessions[i+1:]...)
					s.obs.Emit("eem", "session-close", sess.key())
					return
				}
			}
		}
}

func (s *Server) handleLine(sess *session, line []byte) {
	var m wireMsg
	if err := json.Unmarshal(line, &m); err != nil {
		sess.conn.Write(encodeMsg(wireMsg{Kind: msgError, Err: "bad message: " + err.Error()}))
		return
	}
	switch m.Kind {
	case msgRegister:
		if _, ok := s.varIndex[m.ID.Var]; !ok {
			sess.conn.Write(encodeMsg(wireMsg{Kind: msgError,
				Err: "unknown variable " + m.ID.Var, Code: codeUnknownVar}))
			return
		}
		s.Registrations++
		sess.regs = append(sess.regs, &registrationState{id: m.ID, attr: m.A})
		s.obs.Emit("eem", "register", sess.key(),
			obs.F("var", m.ID.Var), obs.F("index", m.ID.Index), obs.F("op", m.A.Op))
	case msgDeregister:
		kept := sess.regs[:0]
		for _, r := range sess.regs {
			if r.id != m.ID {
				kept = append(kept, r)
			}
		}
		sess.regs = kept
		s.obs.Emit("eem", "deregister", sess.key(), obs.F("var", m.ID.Var))
	case msgDeregisterAll:
		sess.regs = nil
		s.obs.Emit("eem", "deregister-all", sess.key())
	case msgPoll:
		s.PollsServed++
		v, err := s.get(m.ID)
		reply := wireMsg{Kind: msgPollReply, Seq: m.Seq, ID: m.ID, V: v}
		if err != nil {
			reply.Err = err.Error()
			reply.Code = codeFor(err)
		}
		s.obs.Emit("eem", "poll", sess.key(), obs.F("var", m.ID.Var))
		sess.conn.Write(encodeMsg(reply))
	case msgListVars:
		sess.conn.Write(encodeMsg(wireMsg{Kind: msgVarList, Seq: m.Seq, Names: s.Variables()}))
	default:
		sess.conn.Write(encodeMsg(wireMsg{Kind: msgError, Err: "unknown message kind " + m.Kind}))
	}
}

// Tick performs one periodic pass: evaluate every registration, fire
// interrupt notifications for variables that entered their region, and
// send each client a batch update of all its in-range variables
// (thesis §6.2: "an update containing all variables that fall within
// their requested range is sent... once all variables have been
// checked"). The owner drives Tick from a simulator timer or a real
// ticker.
//
// Sessions are visited in accept order so the wire-message order
// across clients is identical run-to-run under one seed — part of the
// sim package's reproducibility promise.
func (s *Server) Tick() {
	if s.down {
		return
	}
	for _, sess := range s.sessions {
		var batch []varUpdate
		for _, r := range sess.regs {
			in := false
			v, err := s.get(r.id)
			if err == nil {
				in, err = r.attr.Matches(v)
			}
			if err != nil {
				// An evaluation that errors is out-of-range: leaving
				// wasInRange stale here would swallow the next
				// entering edge after the error clears.
				r.wasInRange = false
				continue
			}
			if in && r.attr.Interrupt && !r.wasInRange {
				s.NotifiesSent++
				s.obs.Emit("eem", "notify", sess.key(),
					obs.F("var", r.id.Var), obs.F("value", v))
				sess.conn.Write(encodeMsg(wireMsg{Kind: msgNotify, ID: r.id, V: v}))
			}
			r.wasInRange = in
			if in {
				batch = append(batch, varUpdate{ID: r.id, V: v})
			}
		}
		if len(batch) > 0 {
			s.UpdatesSent++
			s.obs.Emit("eem", "update", sess.key(), obs.F("vars", len(batch)))
			sess.conn.Write(encodeMsg(wireMsg{Kind: msgUpdate, Batch: batch}))
		}
	}
}
