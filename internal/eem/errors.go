package eem

import "errors"

// Typed sentinels for the client/server control path. Call sites wrap
// them with errors that keep the historical message text, so callers
// branch with errors.Is while logs and golden outputs stay unchanged.
var (
	// ErrUnknownVar marks a variable name no source answers for.
	ErrUnknownVar = errors.New("eem: unknown variable")
	// ErrBadAttr marks a notification attribute that can never match
	// (operator out of range, or a string bound with a numeric-only
	// operator).
	ErrBadAttr = errors.New("eem: bad attribute")
	// ErrConnLost marks a request that died with its connection.
	ErrConnLost = errors.New("eem: connection lost")
	// ErrNoScheduler marks a Comma registration needing timers
	// (WithPDA) on a facade that has no scheduler attached.
	ErrNoScheduler = errors.New("eem: no scheduler attached")
	// ErrBadMode marks an invalid Register option combination.
	ErrBadMode = errors.New("eem: conflicting registration modes")
)

// Wire error codes: the server tags protocol-level errors so the
// client can rebuild the matching sentinel on its side of the stream.
const (
	codeUnknownVar = "unknown-var"
)

// kindError carries an exact message plus the sentinel it stands for.
type kindError struct {
	msg  string
	kind error
}

func (e *kindError) Error() string { return e.msg }
func (e *kindError) Unwrap() error { return e.kind }

// wrapKind builds an error whose text is exactly msg and whose kind is
// recoverable via errors.Is.
func wrapKind(kind error, msg string) error {
	return &kindError{msg: msg, kind: kind}
}

// codeFor maps a server-side error to its wire code ("" when the error
// has no protocol-level meaning).
func codeFor(err error) string {
	if errors.Is(err, ErrUnknownVar) {
		return codeUnknownVar
	}
	return ""
}

// kindForCode inverts codeFor on the client side.
func kindForCode(code string) error {
	if code == codeUnknownVar {
		return ErrUnknownVar
	}
	return nil
}
