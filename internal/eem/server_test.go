package eem

// White-box regression tests for the server's determinism and
// edge-trigger behavior. These live inside the package so they can
// drive the wire protocol directly (encodeMsg) and inspect which
// session each message went to without a full simulated network.

import (
	"encoding/json"
	"fmt"
	"testing"
)

// recConn records everything the server writes to one session into a
// shared, ordered log, so tests can assert cross-session write order.
type recConn struct {
	name string
	log  *[]string
}

func (c *recConn) Write(b []byte) error {
	var m wireMsg
	if err := json.Unmarshal(b, &m); err != nil {
		panic(err)
	}
	*c.log = append(*c.log, c.name+":"+m.Kind)
	return nil
}

func (c *recConn) Close() {}

// register feeds one register line into a session's data callback.
func register(onData func([]byte), id ID, a Attr) {
	onData(encodeMsg(wireMsg{Kind: msgRegister, ID: id, A: a}))
}

// TestTickVisitsSessionsInAcceptOrder pins the determinism contract:
// with several clients registered for an always-in-range variable,
// every Tick must emit their updates in accept order. The pre-fix
// server iterated a map of sessions, so with 6 sessions and 20 ticks
// the chance of this passing by luck is (1/6!)^20.
func TestTickVisitsSessionsInAcceptOrder(t *testing.T) {
	s := NewServer("test")
	s.AddSource(SourceFunc{
		Names: []string{"v"},
		Fn:    func(string, int) (Value, error) { return LongValue(5), nil },
	})

	var log []string
	const n = 6
	for i := 0; i < n; i++ {
		onData, _ := s.Accept(&recConn{name: fmt.Sprintf("c%d", i), log: &log})
		register(onData, ID{Var: "v"}, Attr{Lower: LongValue(0), Op: GTE})
	}

	for tick := 0; tick < 20; tick++ {
		log = log[:0]
		s.Tick()
		if len(log) != n {
			t.Fatalf("tick %d: %d messages, want %d: %v", tick, len(log), n, log)
		}
		for i, got := range log {
			want := fmt.Sprintf("c%d:%s", i, msgUpdate)
			if got != want {
				t.Fatalf("tick %d: message %d = %q, want %q (full order %v)", tick, i, got, want, log)
			}
		}
	}
}

// TestSessionCloseRemovesFromTick verifies the ordered-slice session
// registry drops a closed session and keeps the others in order.
func TestSessionCloseRemovesFromTick(t *testing.T) {
	s := NewServer("test")
	s.AddSource(SourceFunc{
		Names: []string{"v"},
		Fn:    func(string, int) (Value, error) { return LongValue(1), nil },
	})

	var log []string
	var closers []func()
	for i := 0; i < 3; i++ {
		onData, onClose := s.Accept(&recConn{name: fmt.Sprintf("c%d", i), log: &log})
		register(onData, ID{Var: "v"}, Attr{Lower: LongValue(0), Op: GTE})
		closers = append(closers, onClose)
	}
	closers[1]()
	log = log[:0]
	s.Tick()
	if len(log) != 2 || log[0] != "c0:update" || log[1] != "c2:update" {
		t.Fatalf("post-close tick order = %v, want [c0:update c2:update]", log)
	}
}

// TestInterruptRefiresAfterGetError covers the stale-wasInRange bug: a
// registration whose source errors mid-flight must be treated as
// out-of-range, so when the value becomes readable and in-range again
// the interrupt re-fires. Pre-fix, the error path skipped the state
// update and the second notify never arrived.
func TestInterruptRefiresAfterGetError(t *testing.T) {
	val := LongValue(10)
	fail := false
	s := NewServer("test")
	s.AddSource(SourceFunc{
		Names: []string{"v"},
		Fn: func(string, int) (Value, error) {
			if fail {
				return Value{}, fmt.Errorf("source unavailable")
			}
			return val, nil
		},
	})

	var log []string
	onData, _ := s.Accept(&recConn{name: "c", log: &log})
	register(onData, ID{Var: "v"}, Attr{Lower: LongValue(5), Op: GT, Interrupt: true})

	notifies := func() int {
		n := 0
		for _, m := range log {
			if m == "c:"+msgNotify {
				n++
			}
		}
		return n
	}

	s.Tick() // in range -> first notify
	if got := notifies(); got != 1 {
		t.Fatalf("after first tick: %d notifies, want 1", got)
	}

	fail = true
	s.Tick() // evaluation errors: must count as out-of-range
	fail = false
	s.Tick() // back in range -> edge re-fires
	if got := notifies(); got != 2 {
		t.Fatalf("after error round-trip: %d notifies, want 2 (stale wasInRange swallowed the edge)", got)
	}
}

// TestInterruptRefiresAfterMatchesError is the same edge through the
// other error path: Attr.Matches fails (string value under an ordering
// operator) rather than the source read.
func TestInterruptRefiresAfterMatchesError(t *testing.T) {
	val := LongValue(10)
	s := NewServer("test")
	s.AddSource(SourceFunc{
		Names: []string{"v"},
		Fn:    func(string, int) (Value, error) { return val, nil },
	})

	var log []string
	onData, _ := s.Accept(&recConn{name: "c", log: &log})
	register(onData, ID{Var: "v"}, Attr{Lower: LongValue(5), Op: GT, Interrupt: true})

	notifies := func() int {
		n := 0
		for _, m := range log {
			if m == "c:"+msgNotify {
				n++
			}
		}
		return n
	}

	s.Tick()
	if got := notifies(); got != 1 {
		t.Fatalf("after first tick: %d notifies, want 1", got)
	}

	val = StringValue("boom") // GT on a string: Matches errors
	s.Tick()
	val = LongValue(10)
	s.Tick()
	if got := notifies(); got != 2 {
		t.Fatalf("after type-mismatch round-trip: %d notifies, want 2", got)
	}
}
