package eem

import (
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Comma is the paper-faithful rendering of the comma_* client
// interface (thesis Tables 6.3–6.7). It wraps the low-level Client
// machinery and makes the notification mode of every registration
// explicit through functional options:
//
//	Register(id, attr)                  silent periodic updates into the
//	                                    protected data area (the thesis
//	                                    default — no callback fires)
//	Register(id, attr, WithCallback(f)) interrupt-style: f fires when the
//	                                    variable enters the region
//	Register(id, attr, WithPDA(p))      silent registration plus a
//	                                    client-driven poll every p that
//	                                    refreshes the PDA even while the
//	                                    variable is out of range
//	Register(id, attr, WithPoll())      client-local only: no server
//	                                    message; values arrive solely
//	                                    through GetValueOnce
//
// WithCallback and WithPDA compose; WithPoll is exclusive. All methods
// must be called from the event-loop goroutine driving the transports.
type Comma struct {
	c     *Client
	sched *sim.Scheduler

	modes    map[ID]regMode
	cbs      map[ID]func(ID, Value)
	pdaStops map[ID]func()
}

// regMode records which notification modes a registration uses.
type regMode struct {
	callback bool
	pda      bool
	poll     bool
}

// RegisterOption configures one Comma registration.
type RegisterOption func(*regConfig)

// regConfig accumulates Register options before validation.
type regConfig struct {
	cb        func(ID, Value)
	pdaPeriod time.Duration
	poll      bool
}

// WithCallback requests interrupt-style notification: fn fires (with
// the registration's ID and the new value) when the variable enters
// its region of interest. The callback is scoped to this registration.
func WithCallback(fn func(ID, Value)) RegisterOption {
	return func(rc *regConfig) { rc.cb = fn }
}

// WithPDA requests a client-driven protected-data-area refresh: every
// period the client polls the server once and stores the result, so
// GetValue tracks the variable even while it is outside the region of
// interest (where the server's periodic updates go silent). Requires a
// scheduler (UseScheduler).
func WithPDA(period time.Duration) RegisterOption {
	return func(rc *regConfig) { rc.pdaPeriod = period }
}

// WithPoll requests a client-local registration: the server is never
// contacted and values arrive only through explicit GetValueOnce
// calls. Exclusive with WithCallback and WithPDA.
func WithPoll() RegisterOption {
	return func(rc *regConfig) { rc.poll = true }
}

// NewComma initializes the client library (comma_init).
func NewComma(dial Dialer) *Comma {
	cm := &Comma{
		c:        NewClient(dial),
		modes:    make(map[ID]regMode),
		cbs:      make(map[ID]func(ID, Value)),
		pdaStops: make(map[ID]func()),
	}
	// One underlying callback demuxes interrupt notifications to the
	// per-registration callbacks.
	cm.c.setCallback(func(id ID, v Value) {
		if fn, ok := cm.cbs[id]; ok {
			fn(id, v)
		}
	})
	return cm
}

// UseScheduler attaches the scheduler that drives WithPDA refresh
// timers (and, transitively, Supervise's redial timers).
func (cm *Comma) UseScheduler(sched *sim.Scheduler) { cm.sched = sched }

// SetObs attaches the observability bus; connection-lifecycle events
// are emitted under the "eem-client" subsystem, keyed by server name.
func (cm *Comma) SetObs(b *obs.Bus) { cm.c.SetObs(b) }

// Supervise attaches a reconnection supervisor (see Client.Supervise):
// dead connections are redialed with seeded-jitter exponential backoff
// and server-side registrations are replayed once a redial sticks.
func (cm *Comma) Supervise(cfg SuperviseConfig) error {
	if cm.sched == nil {
		return ErrNoScheduler
	}
	cm.c.Supervise(cm.sched, cfg)
	return nil
}

// Term disconnects from all servers and drops state (comma_term).
func (cm *Comma) Term() {
	for _, stop := range cm.pdaStops {
		stop()
	}
	cm.pdaStops = make(map[ID]func())
	cm.c.close()
}

// validAttr rejects attributes that can never match: an operator
// outside the defined set, or a string bound with a numeric-only
// operator (thesis §6.3.2: strings support only EQ/NEQ).
func validAttr(a Attr) bool {
	if a.Op < GT || a.Op > OUT {
		return false
	}
	if a.Lower.Kind == String && a.Op != EQ && a.Op != NEQ {
		return false
	}
	return true
}

// Register subscribes to a variable under attr (comma_var_register).
// With no options the registration is PDA-silent: the server pushes
// periodic updates into the protected data area and no callback ever
// fires. Options select the other thesis notification modes; see the
// type comment.
func (cm *Comma) Register(id ID, attr Attr, opts ...RegisterOption) error {
	var rc regConfig
	for _, o := range opts {
		o(&rc)
	}
	if rc.poll && (rc.cb != nil || rc.pdaPeriod > 0) {
		return ErrBadMode
	}
	if rc.pdaPeriod > 0 && cm.sched == nil {
		return ErrNoScheduler
	}
	if !validAttr(attr) {
		return ErrBadAttr
	}

	mode := regMode{callback: rc.cb != nil, pda: rc.pdaPeriod > 0, poll: rc.poll}
	if rc.poll {
		cm.c.localRegister(id)
		cm.modes[id] = mode
		return nil
	}

	// The registration's mode, not the caller's Attr, decides whether
	// the server sends interrupt notifies.
	attr.Interrupt = rc.cb != nil
	if rc.cb != nil {
		cm.cbs[id] = rc.cb
	} else {
		delete(cm.cbs, id)
	}
	if err := cm.c.register(id, attr); err != nil {
		// The interest is remembered (a supervised client replays it on
		// reconnect), so the mode bookkeeping must survive the error too.
		cm.modes[id] = mode
		cm.armPDA(id, attr, rc.pdaPeriod)
		return err
	}
	cm.modes[id] = mode
	cm.armPDA(id, attr, rc.pdaPeriod)
	return nil
}

// armPDA starts (or replaces) the WithPDA refresh pump for id: every
// period, poll the server once and store the reply in the protected
// data area, computing in-range locally so out-of-range values are
// still visible to GetValue/IsInRange.
func (cm *Comma) armPDA(id ID, attr Attr, period time.Duration) {
	if stop, ok := cm.pdaStops[id]; ok {
		stop()
		delete(cm.pdaStops, id)
	}
	if period <= 0 {
		return
	}
	stopped := false
	cm.pdaStops[id] = func() { stopped = true }
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		cm.c.pollOnce(id, func(v Value, err error) {
			if stopped || err != nil {
				return
			}
			in, merr := attr.Matches(v)
			if merr != nil {
				in = false
			}
			cm.c.storePDA(id, v, in)
		})
		cm.sched.After(period, tick)
	}
	cm.sched.After(period, tick)
}

// Deregister removes one registration (comma_var_deregister).
func (cm *Comma) Deregister(id ID) error {
	mode, known := cm.modes[id]
	if stop, ok := cm.pdaStops[id]; ok {
		stop()
		delete(cm.pdaStops, id)
	}
	delete(cm.cbs, id)
	delete(cm.modes, id)
	if known && mode.poll {
		cm.c.localDeregister(id)
		return nil
	}
	return cm.c.deregister(id)
}

// DeregisterAll removes every registration on every server
// (comma_var_deregisterall).
func (cm *Comma) DeregisterAll() {
	for _, stop := range cm.pdaStops {
		stop()
	}
	cm.pdaStops = make(map[ID]func())
	cm.cbs = make(map[ID]func(ID, Value))
	cm.modes = make(map[ID]regMode)
	cm.c.deregisterAll()
}

// GetValue returns the most recent value from the protected data area
// (comma_query_getvalue) and whether one has arrived. It clears the
// changed mark.
func (cm *Comma) GetValue(id ID) (Value, bool) { return cm.c.value(id) }

// IsInRange reports whether the most recent update had the variable
// inside its region of interest (comma_query_isinrange).
func (cm *Comma) IsInRange(id ID) bool { return cm.c.inRange(id) }

// HasChanged reports whether the variable changed since last read
// (comma_query_haschanged).
func (cm *Comma) HasChanged(id ID) bool { return cm.c.hasChanged(id) }

// Stale reports whether id's protected-data-area value predates a
// disconnect from its server.
func (cm *Comma) Stale(id ID) bool { return cm.c.stale(id) }

// GetValueOnce retrieves a single value directly from the server
// (comma_query_getvalue_once); the reply is delivered asynchronously
// to fn. If the registration was made WithPoll, the result is also
// stored in the protected data area for later GetValue reads.
func (cm *Comma) GetValueOnce(id ID, fn func(Value, error)) error {
	mode := cm.modes[id]
	return cm.c.pollOnce(id, func(v Value, err error) {
		if err == nil && mode.poll {
			cm.c.storePDA(id, v, true)
		}
		if fn != nil {
			fn(v, err)
		}
	})
}

// ListVariables asks a server for its variable catalogue.
func (cm *Comma) ListVariables(server string, fn func([]string)) error {
	return cm.c.listVariables(server, fn)
}
