package eem_test

import (
	"errors"
	"testing"
	"time"

	"repro/internal/eem"
)

// capConn records every write so tests can compare wire traffic.
type capConn struct{ lines []string }

func (c *capConn) Write(b []byte) error { c.lines = append(c.lines, string(b)); return nil }
func (c *capConn) Close()               {}

func capDialer() (eem.Dialer, *capConn) {
	c := &capConn{}
	return func(string) (eem.Conn, func(func([]byte)), error) {
		return c, func(func([]byte)) {}, nil
	}, c
}

// TestCommaRegisterDefaultsToPDASilent is the regression test for the
// facade's central contract: Register with no mode option emits a
// silent (Interrupt unset) wire registration — the server updates the
// protected data area and no interrupt traffic is requested — while
// WithCallback flips exactly the Interrupt flag. The expected lines
// are the literal bytes the legacy Client wrappers emitted before
// their removal, so the wire protocol stays pinned across the facade
// migration.
func TestCommaRegisterDefaultsToPDASilent(t *testing.T) {
	id := eem.ID{Server: "srv", Var: "sysUpTime"}
	attr := eem.Attr{Lower: eem.LongValue(0), Op: eem.GTE}
	const silentWire = `{"kind":"register","id":{"var":"sysUpTime","server":"srv"},` +
		`"attr":{"lower":{"kind":0},"upper":{"kind":0},"op":1},"value":{"kind":0}}` + "\n"
	const interruptWire = `{"kind":"register","id":{"var":"sysUpTime","server":"srv"},` +
		`"attr":{"lower":{"kind":0},"upper":{"kind":0},"op":1,"interrupt":true},"value":{"kind":0}}` + "\n"

	newDial, newConn := capDialer()
	cm := eem.NewComma(newDial)
	if err := cm.Register(id, attr); err != nil {
		t.Fatal(err)
	}
	if len(newConn.lines) != 1 || newConn.lines[0] != silentWire {
		t.Fatalf("default Comma registration diverges from the pinned silent wire bytes:\n got %q\nwant %q",
			newConn.lines, silentWire)
	}

	// WithCallback == Interrupt:true on the wire.
	cbDial, cbConn := capDialer()
	cmCb := eem.NewComma(cbDial)
	if err := cmCb.Register(id, attr, eem.WithCallback(func(eem.ID, eem.Value) {})); err != nil {
		t.Fatal(err)
	}
	if len(cbConn.lines) != 1 || cbConn.lines[0] != interruptWire {
		t.Fatalf("WithCallback registration diverges from the pinned interrupt wire bytes:\n got %q\nwant %q",
			cbConn.lines, interruptWire)
	}
}

// TestCommaOptionMatrix drives Register through every option
// combination and pins the validation sentinels.
func TestCommaOptionMatrix(t *testing.T) {
	id := eem.ID{Server: "srv", Var: "sysUpTime"}
	ok := eem.Attr{Lower: eem.LongValue(0), Op: eem.GTE}
	noop := func(eem.ID, eem.Value) {}
	cases := []struct {
		name string
		attr eem.Attr
		opts []eem.RegisterOption
		want error // nil = success
	}{
		{"default", ok, nil, nil},
		{"callback", ok, []eem.RegisterOption{eem.WithCallback(noop)}, nil},
		{"poll", ok, []eem.RegisterOption{eem.WithPoll()}, nil},
		{"poll+callback", ok, []eem.RegisterOption{eem.WithPoll(), eem.WithCallback(noop)}, eem.ErrBadMode},
		{"poll+pda", ok, []eem.RegisterOption{eem.WithPoll(), eem.WithPDA(time.Second)}, eem.ErrBadMode},
		{"pda-without-scheduler", ok, []eem.RegisterOption{eem.WithPDA(time.Second)}, eem.ErrNoScheduler},
		{"bad-operator", eem.Attr{Lower: eem.LongValue(0), Op: eem.Operator(99)}, nil, eem.ErrBadAttr},
		{"string-with-ordering-op", eem.Attr{Lower: eem.StringValue("x"), Op: eem.GT}, nil, eem.ErrBadAttr},
	}
	for _, c := range cases {
		dial, _ := capDialer()
		cm := eem.NewComma(dial)
		err := cm.Register(id, c.attr, c.opts...)
		if c.want == nil && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if c.want != nil && !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
}

// TestCommaWithPollIsClientLocal: a WithPoll registration never
// contacts the server; values arrive only through GetValueOnce, which
// then lands them in the protected data area.
func TestCommaWithPollIsClientLocal(t *testing.T) {
	dial, conn := capDialer()
	cm := eem.NewComma(dial)
	id := eem.ID{Server: "srv", Var: "sysUpTime"}
	if err := cm.Register(id, eem.Attr{Lower: eem.LongValue(0), Op: eem.GTE}, eem.WithPoll()); err != nil {
		t.Fatal(err)
	}
	if len(conn.lines) != 0 {
		t.Fatalf("WithPoll registration sent wire traffic: %q", conn.lines)
	}
	if _, ok := cm.GetValue(id); ok {
		t.Fatal("value present before any poll")
	}

	// Against a live rig: GetValueOnce fills the PDA for poll-mode ids.
	r := newEEMRig(t, time.Hour)
	pid := sysUpTimeID(r.serverAddr)
	if err := r.client.Register(pid, eem.Attr{Lower: eem.LongValue(0), Op: eem.GTE}, eem.WithPoll()); err != nil {
		t.Fatal(err)
	}
	if err := r.client.GetValueOnce(pid, nil); err != nil {
		t.Fatal(err)
	}
	r.sched.RunFor(2 * time.Second)
	if _, ok := r.client.GetValue(pid); !ok {
		t.Fatal("GetValueOnce reply did not land in the protected data area")
	}
	if err := r.client.Deregister(pid); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.client.GetValue(pid); ok {
		t.Fatal("poll-mode PDA entry survived deregistration")
	}
}

// TestCommaWithPDARefreshesOutOfRange: the WithPDA pump keeps GetValue
// current even while the variable sits outside its region of interest —
// exactly where the server's periodic updates go silent.
func TestCommaWithPDARefreshesOutOfRange(t *testing.T) {
	r := newEEMRig(t, time.Hour) // server periodic updates effectively off
	r.client.UseScheduler(r.sched)
	id := sysUpTimeID(r.serverAddr)
	// sysUpTime is never negative: the region never matches, so only
	// the client-driven pump can populate the PDA.
	attr := eem.Attr{Lower: eem.LongValue(0), Op: eem.LT}
	if err := r.client.Register(id, attr, eem.WithPDA(500*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	r.sched.RunFor(3 * time.Second)
	v, ok := r.client.GetValue(id)
	if !ok {
		t.Fatal("WithPDA pump never refreshed the protected data area")
	}
	if v.L < 0 {
		t.Fatalf("sysUpTime = %v", v)
	}
	if r.client.IsInRange(id) {
		t.Fatal("out-of-range value reported in range")
	}

	// Deregister stops the pump: the PDA entry disappears and stays gone.
	if err := r.client.Deregister(id); err != nil {
		t.Fatal(err)
	}
	r.sched.RunFor(2 * time.Second)
	if _, ok := r.client.GetValue(id); ok {
		t.Fatal("PDA entry survived deregistration (pump still running?)")
	}
}

// TestCommaDeprecatedWrapperEquivalence: the legacy Client methods and
// the Comma facade observe the same protected data area state when
// driven by the same server over the same scenario.
func TestCommaDeprecatedWrapperEquivalence(t *testing.T) {
	r := newEEMRig(t, time.Second)
	id := sysUpTimeID(r.serverAddr)
	if err := r.client.Register(id, eem.Attr{Lower: eem.LongValue(0), Op: eem.GTE}); err != nil {
		t.Fatal(err)
	}
	r.sched.RunFor(3 * time.Second)
	// Facade and wrapper reads must agree on value, range, and change
	// state (HasChanged clears on read, so compare across both orders).
	if got, ok := r.client.GetValue(id); !ok || got.Kind != eem.Long {
		t.Fatalf("GetValue = %v %v", got, ok)
	}
	if !r.client.IsInRange(id) {
		t.Fatal("in-range variable reported out of range")
	}
	r.sched.RunFor(2 * time.Second)
	if !r.client.HasChanged(id) {
		t.Fatal("no change recorded after two server intervals")
	}
	if !r.client.HasChanged(id) {
		t.Fatal("HasChanged cleared by HasChanged — must clear only on GetValue")
	}
	r.client.GetValue(id)
	if r.client.HasChanged(id) {
		t.Fatal("GetValue did not clear the changed mark")
	}
}
