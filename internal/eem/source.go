package eem

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/netsim"
	"repro/internal/tcp"
)

// Source supplies variable values to an EEM server. The server's
// modular query mechanism (thesis §6.2: "designed so that it can
// access a wide and easily extensible variety of information sources")
// is this interface: register as many sources as the host offers.
type Source interface {
	// Variables lists the variable names this source serves.
	Variables() []string
	// Get returns the current value of a variable. index selects an
	// instance for tabular variables (e.g. per-interface counters).
	Get(name string, index int) (Value, error)
}

// SourceFunc adapts a function serving a fixed set of variables.
type SourceFunc struct {
	Names []string
	Fn    func(name string, index int) (Value, error)
}

// Variables implements Source.
func (s SourceFunc) Variables() []string { return s.Names }

// Get implements Source.
func (s SourceFunc) Get(name string, index int) (Value, error) { return s.Fn(name, index) }

// SNMPVariables are the MIB-II names the EEM serves (thesis Table 6.1).
var SNMPVariables = []string{
	"sysDescr", "sysObjectID", "sysUpTime", "sysContact", "sysName",
	"sysLocation", "sysServices",
	"ipInReceives", "ipInHdrErrors", "ipInAddrErrors", "ipForwDatagrams",
	"ipInUnknownProtos", "ipInDiscards", "ipInDelivers", "ipOutRequests",
	"ipOutDiscards", "ipOutNoRoutes", "ipRoutingDiscard",
	"udpInDatagrams", "udpNoPorts", "udpInErrors",
	"tcpRtoAlgorithm", "tcpRtoMax", "tcpRtoMin", "tcpMaxConn",
	"tcpActiveOpens", "tcpPassiveOpens", "tcpAttemptFails",
	"tcpEstabResets", "tcpCurrEstab", "tcpInSegs", "tcpOutSegs",
	"tcpRetransSegs",
	"ifNumbers", "ifIndex", "ifDescr", "ifType", "ifMtu", "ifSpeed",
	"ifInOctets", "ifInUcastPkts", "ifInNUcastPkts", "ifInDiscards",
	"ifInErrors", "ifInUnknownProtos", "ifOutOctets", "ifOutUcastPkts",
	"ifOutNUcastPkts", "ifOutDiscards", "ifOutErrors", "ifOutQLen",
}

// ExtraVariables are the additional measures of thesis Table 6.2.
var ExtraVariables = []string{
	"netLatency", "avgInIPPkts", "cpuLoadAvg", "ethErrsAvg", "ethInAvg",
	"ethOutAvg", "deviceList", "bytes_rx", "bytes_tx",
}

// NodeSource serves the Table 6.1/6.2 variables from a simulated
// host's counters — the stand-in for the local SNMP daemon the thesis
// used. Variables with no simulator analogue return zero values,
// which keeps the full SNMP surface available to clients.
type NodeSource struct {
	Node *netsim.Node
	// TCP, when set, supplies the MIB-II tcp group (tcpActiveOpens,
	// tcpCurrEstab, tcpRetransSegs, ...) from the host's TCP stack.
	TCP *tcp.Stack
	// Latency, when set, is reported as netLatency (milliseconds); the
	// experiment harness wires it to a measured ping RTT.
	Latency func() float64
	// CPULoad, when set, is reported as cpuLoadAvg.
	CPULoad func() float64

	rates map[string]*rateSample
}

// rateSample tracks one counter's per-second rate between queries.
type rateSample struct {
	lastT time.Duration
	lastV int64
	rate  float64
	valid bool
}

// rate returns the per-second rate of change of counter cur under key,
// computed between successive queries (the thesis's "avg" variables
// derive from SNMP history; here the history is the query history).
func (s *NodeSource) rate(key string, cur int64) float64 {
	if s.rates == nil {
		s.rates = make(map[string]*rateSample)
	}
	now := time.Duration(s.Node.Clock().Now())
	r, ok := s.rates[key]
	if !ok {
		s.rates[key] = &rateSample{lastT: now, lastV: cur}
		return 0
	}
	if dt := now - r.lastT; dt > 0 {
		r.rate = float64(cur-r.lastV) / dt.Seconds()
		r.lastT = now
		r.lastV = cur
		r.valid = true
	}
	return r.rate
}

// Variables implements Source.
func (s *NodeSource) Variables() []string {
	out := make([]string, 0, len(SNMPVariables)+len(ExtraVariables))
	out = append(out, SNMPVariables...)
	out = append(out, ExtraVariables...)
	sort.Strings(out)
	return out
}

// Get implements Source.
func (s *NodeSource) Get(name string, index int) (Value, error) {
	n := s.Node
	st := &n.Stats
	switch name {
	case "sysDescr":
		return StringValue("comma simulated host " + n.Name()), nil
	case "sysName":
		return StringValue(n.Name()), nil
	case "sysUpTime":
		// SNMP TimeTicks: hundredths of a second.
		return LongValue(int64(time.Duration(n.Clock().Now()) / (10 * time.Millisecond))), nil
	case "sysContact", "sysLocation", "sysObjectID":
		return StringValue(""), nil
	case "sysServices":
		if n.Forwarding {
			return LongValue(3), nil // internetwork
		}
		return LongValue(72), nil // host
	case "ipInReceives":
		return LongValue(st.IPInReceives), nil
	case "ipInHdrErrors":
		return LongValue(st.IPInHdrErrors), nil
	case "ipInAddrErrors":
		return LongValue(st.IPInAddrErrors), nil
	case "ipForwDatagrams":
		return LongValue(st.IPForwDatagrams), nil
	case "ipInUnknownProtos":
		return LongValue(st.IPInUnknownProtos), nil
	case "ipInDelivers":
		return LongValue(st.IPInDelivers), nil
	case "ipOutRequests":
		return LongValue(st.IPOutRequests), nil
	case "ipOutNoRoutes":
		return LongValue(st.IPOutNoRoutes), nil
	case "ifNumbers":
		return LongValue(int64(len(n.Ifaces()))), nil
	case "ifIndex":
		return LongValue(int64(index)), nil
	case "ifDescr":
		if f := s.iface(index); f != nil {
			return StringValue(fmt.Sprintf("if%d(%v)", index, f.Addr())), nil
		}
		return Value{}, fmt.Errorf("eem: no interface %d", index)
	case "ifMtu":
		return LongValue(1500), nil
	case "ifSpeed":
		if f := s.iface(index); f != nil && f.Link() != nil {
			return LongValue(linkBandwidth(f)), nil
		}
		return Value{}, fmt.Errorf("eem: no interface %d", index)
	case "ifInOctets", "bytes_rx":
		return LongValue(s.octets(index, false)), nil
	case "ifOutOctets", "bytes_tx":
		return LongValue(s.octets(index, true)), nil
	case "ifInUcastPkts":
		return LongValue(s.pkts(index, false)), nil
	case "ifOutUcastPkts":
		return LongValue(s.pkts(index, true)), nil
	case "ethInAvg":
		return DoubleValue(s.rate("ethInAvg", s.pkts(index, false))), nil
	case "ethOutAvg":
		return DoubleValue(s.rate("ethOutAvg", s.pkts(index, true))), nil
	case "ethErrsAvg":
		return DoubleValue(s.rate("ethErrsAvg", s.Node.Stats.IPInHdrErrors)), nil
	case "avgInIPPkts":
		return DoubleValue(s.rate("avgInIPPkts", s.Node.Stats.IPInReceives)), nil
	case "ifOutQLen":
		return LongValue(0), nil
	case "tcpRtoAlgorithm":
		return LongValue(4), nil // vanj (Van Jacobson)
	case "tcpRtoMin":
		return LongValue(200), nil // milliseconds, Config default
	case "tcpRtoMax":
		return LongValue(60000), nil
	case "tcpMaxConn":
		return LongValue(-1), nil // no fixed limit
	case "tcpActiveOpens", "tcpPassiveOpens", "tcpAttemptFails",
		"tcpEstabResets", "tcpCurrEstab", "tcpInSegs", "tcpOutSegs",
		"tcpRetransSegs":
		if s.TCP == nil {
			return LongValue(0), nil
		}
		m := s.TCP.MIB()
		switch name {
		case "tcpActiveOpens":
			return LongValue(m.ActiveOpens), nil
		case "tcpPassiveOpens":
			return LongValue(m.PassiveOpens), nil
		case "tcpAttemptFails":
			return LongValue(m.AttemptFails), nil
		case "tcpEstabResets":
			return LongValue(m.EstabResets), nil
		case "tcpCurrEstab":
			return LongValue(int64(s.TCP.CurrEstab())), nil
		case "tcpInSegs":
			return LongValue(m.InSegs), nil
		case "tcpOutSegs":
			return LongValue(m.OutSegs), nil
		default:
			return LongValue(m.RetransSegs), nil
		}
	case "netLatency":
		if s.Latency != nil {
			return DoubleValue(s.Latency()), nil
		}
		return DoubleValue(0), nil
	case "cpuLoadAvg":
		if s.CPULoad != nil {
			return DoubleValue(s.CPULoad()), nil
		}
		return DoubleValue(0), nil
	case "deviceList":
		var names []string
		for i := range n.Ifaces() {
			names = append(names, fmt.Sprintf("if%d", i))
		}
		return StringValue(strings.Join(names, ",")), nil
	default:
		for _, v := range SNMPVariables {
			if v == name {
				return LongValue(0), nil // no simulator analogue
			}
		}
		for _, v := range ExtraVariables {
			if v == name {
				return LongValue(0), nil
			}
		}
		return Value{}, wrapKind(ErrUnknownVar, fmt.Sprintf("eem: unknown variable %q", name))
	}
}

func (s *NodeSource) iface(index int) *netsim.Iface {
	ifs := s.Node.Ifaces()
	if index < 0 || index >= len(ifs) {
		return nil
	}
	return ifs[index]
}

func (s *NodeSource) octets(index int, out bool) int64 {
	f := s.iface(index)
	if f == nil || f.Link() == nil {
		return 0
	}
	st := dirStats(f, out)
	return st.Bytes
}

func (s *NodeSource) pkts(index int, out bool) int64 {
	f := s.iface(index)
	if f == nil || f.Link() == nil {
		return 0
	}
	st := dirStats(f, out)
	return st.Packets
}

// dirStats returns the stats for traffic leaving (out) or entering
// (!out) the interface.
func dirStats(f *netsim.Iface, out bool) netsim.LinkStats {
	l := f.Link()
	aSide := l.IfaceA() == f
	if aSide == out {
		return l.StatsAB()
	}
	return l.StatsBA()
}

// linkBandwidth reports the interface's egress bandwidth in bits per
// second, as SNMP ifSpeed does.
func linkBandwidth(f *netsim.Iface) int64 {
	l := f.Link()
	if l.IfaceA() == f {
		return l.ConfigAB().Bandwidth
	}
	return l.ConfigBA().Bandwidth
}
