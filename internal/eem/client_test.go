package eem_test

import (
	"errors"
	"testing"
	"time"

	"repro/internal/eem"
	"repro/internal/obs"
)

// fakeConn is an in-memory Conn whose writes can be made to fail,
// standing in for a TCP stream that died mid-session.
type fakeConn struct {
	wrote      int
	failWrites bool
	closed     bool
}

func (f *fakeConn) Write(b []byte) error {
	if f.failWrites {
		return errors.New("broken pipe")
	}
	f.wrote++
	return nil
}

func (f *fakeConn) Close() { f.closed = true }

// TestDeadConnEvictedOnWriteError is the regression test for the
// connection-cache poisoning bug: before the fix, a conn whose Write
// failed stayed in the client's cache forever, so every later call to
// the same server reused the corpse and failed. Now a write error
// evicts the conn and the next call redials.
func TestDeadConnEvictedOnWriteError(t *testing.T) {
	dials := 0
	var conns []*fakeConn
	dial := func(server string) (eem.Conn, func(func([]byte)), error) {
		dials++
		c := &fakeConn{}
		conns = append(conns, c)
		return c, func(func([]byte)) {}, nil
	}
	cm := eem.NewComma(dial)
	id := eem.ID{Server: "srv", Var: "sysUpTime"}
	attr := eem.Attr{Lower: eem.LongValue(0), Upper: eem.LongValue(1 << 40), Op: eem.IN}

	if err := cm.Register(id, attr); err != nil {
		t.Fatal(err)
	}
	if dials != 1 {
		t.Fatalf("dials = %d after first register, want 1", dials)
	}

	// The stream dies; the next write must fail ...
	conns[0].failWrites = true
	if err := cm.Register(id, attr); err == nil {
		t.Fatal("register on a dead conn did not error")
	}
	if !conns[0].closed {
		t.Fatal("dead conn was not closed on eviction")
	}
	// ... and the one after must redial rather than reuse the corpse.
	// Pre-fix this fails: dials stays 1 and the write errors forever.
	if err := cm.Register(id, attr); err != nil {
		t.Fatalf("register after eviction: %v (conn not evicted?)", err)
	}
	if dials != 2 {
		t.Fatalf("dials = %d after eviction, want 2 (redial)", dials)
	}
}

// TestDisconnectFailsPendingPolls pins that polls outstanding on a
// connection that dies receive an error callback instead of hanging
// forever.
func TestDisconnectFailsPendingPolls(t *testing.T) {
	var cur *fakeConn
	dial := func(server string) (eem.Conn, func(func([]byte)), error) {
		cur = &fakeConn{}
		return cur, func(func([]byte)) {}, nil
	}
	cm := eem.NewComma(dial)
	id := eem.ID{Server: "srv", Var: "ifInOctets"}

	var pollErr error
	called := false
	if err := cm.GetValueOnce(id, func(_ eem.Value, err error) { called = true; pollErr = err }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("poll callback fired before any reply")
	}
	// The conn dies, detected by the next write.
	cur.failWrites = true
	if err := cm.Register(id, eem.Attr{Lower: eem.LongValue(0), Op: eem.GTE}); err == nil {
		t.Fatal("register on dead conn did not error")
	}
	if !called {
		t.Fatal("pending poll not failed on disconnect")
	}
	if pollErr == nil {
		t.Fatal("pending poll failed without an error")
	}
}

// TestStaleOnDialFailure: values remain readable but are flagged stale
// once the server's connection is lost.
func TestStaleTracksDisconnect(t *testing.T) {
	var cur *fakeConn
	dial := func(server string) (eem.Conn, func(func([]byte)), error) {
		cur = &fakeConn{}
		return cur, func(func([]byte)) {}, nil
	}
	cm := eem.NewComma(dial)
	id := eem.ID{Server: "srv", Var: "sysUpTime"}
	attr := eem.Attr{Lower: eem.LongValue(0), Op: eem.GTE}
	if err := cm.Register(id, attr); err != nil {
		t.Fatal(err)
	}
	if cm.Stale(id) {
		t.Fatal("fresh registration already stale")
	}
	cur.failWrites = true
	cm.Register(id, attr) // write fails, conn evicted
	if !cm.Stale(id) {
		t.Fatal("entry not stale after its server's conn died")
	}
}

// TestSuperviseReconnectsAndReRegisters runs the full resilience loop
// against a simulated server: register, crash the server, observe
// staleness, restart it, and verify the supervisor redials,
// re-registers the interest, and fresh updates clear the stale flag —
// all without the application doing anything.
func TestSuperviseReconnectsAndReRegisters(t *testing.T) {
	r := newEEMRig(t, time.Second)
	bus := obs.NewBus(r.sched, 4096)
	r.client.SetObs(bus)
	r.client.UseScheduler(r.sched)
	if err := r.client.Supervise(eem.SuperviseConfig{
		BaseDelay: 200 * time.Millisecond,
		MaxDelay:  2 * time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	id := sysUpTimeID(r.serverAddr)
	attr := eem.Attr{Lower: eem.LongValue(0), Upper: eem.LongValue(1 << 40), Op: eem.IN}
	if err := r.client.Register(id, attr); err != nil {
		t.Fatal(err)
	}
	r.sched.RunFor(3 * time.Second)
	if _, ok := r.client.GetValue(id); !ok {
		t.Fatal("no value before the crash")
	}
	if r.client.Stale(id) {
		t.Fatal("value stale while the server is healthy")
	}

	r.server.Crash()
	r.sched.RunFor(2 * time.Second)
	if !r.client.Stale(id) {
		t.Fatal("value not stale after server crash")
	}
	if _, ok := r.client.GetValue(id); !ok {
		t.Fatal("stale value must remain readable")
	}

	r.server.Restart()
	r.sched.RunFor(15 * time.Second)
	if r.client.Stale(id) {
		t.Fatal("value still stale after restart + supervision window")
	}
	if !r.client.HasChanged(id) {
		t.Fatal("no fresh update after reconnect")
	}

	kinds := map[string]int{}
	for _, e := range bus.Events() {
		if e.Subsys == "eem-client" {
			kinds[e.Kind]++
		}
	}
	for _, k := range []string{"conn-down", "redial-scheduled", "reconnected", "re-register"} {
		if kinds[k] == 0 {
			t.Fatalf("no %q event recorded; got %v", k, kinds)
		}
	}
}

// TestSuperviseBackoffGrows pins the exponential part of the redial
// policy: while the server stays dead, consecutive redial delays grow
// (modulo ±25%% jitter) toward the cap rather than hammering at a
// fixed rate.
func TestSuperviseBackoffGrows(t *testing.T) {
	r := newEEMRig(t, time.Second)
	bus := obs.NewBus(r.sched, 4096)
	r.client.SetObs(bus)
	r.client.UseScheduler(r.sched)
	if err := r.client.Supervise(eem.SuperviseConfig{
		BaseDelay: 100 * time.Millisecond,
		MaxDelay:  5 * time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	id := sysUpTimeID(r.serverAddr)
	if err := r.client.Register(id, eem.Attr{Lower: eem.LongValue(0), Upper: eem.LongValue(1 << 40), Op: eem.IN}); err != nil {
		t.Fatal(err)
	}
	r.sched.RunFor(2 * time.Second)
	r.server.Crash()
	r.sched.RunFor(30 * time.Second)

	var attempts []int
	for _, e := range bus.Events() {
		if e.Subsys != "eem-client" || e.Kind != "redial-scheduled" {
			continue
		}
		for _, f := range e.Fields {
			if f.K == "attempt" {
				attempts = append(attempts, len(attempts))
			}
		}
	}
	if len(attempts) < 4 {
		t.Fatalf("only %d redials in 30s of outage, supervisor stalled?", len(attempts))
	}
	// With base 100ms doubling toward a 5s cap, 30s of outage cannot
	// fit more than ~20 attempts; an unbounded retry loop would fit
	// hundreds. This bounds the retry rate without depending on exact
	// jitter draws.
	if len(attempts) > 40 {
		t.Fatalf("%d redials in 30s — backoff not applied", len(attempts))
	}
}
