package eem

import (
	"encoding/json"
	"fmt"
)

// The EEM wire protocol is newline-delimited JSON messages over a byte
// stream (the thesis's "lean data-transfer protocol between client and
// server", §6.1.2, rendered debuggable). The same codec runs over the
// simulated TCP stack and over real net.Conn in the daemons.

// Message kinds.
const (
	msgRegister      = "register"
	msgDeregister    = "deregister"
	msgDeregisterAll = "deregister-all"
	msgPoll          = "poll"
	msgUpdate        = "update" // periodic batch: vars currently in range
	msgNotify        = "notify" // interrupt-style single variable
	msgPollReply     = "poll-reply"
	msgError         = "error"
	msgListVars      = "list-vars"
	msgVarList       = "var-list"
)

// wireMsg is the single envelope for all protocol messages.
type wireMsg struct {
	Kind string `json:"kind"`
	// Seq correlates poll requests with replies.
	Seq int64 `json:"seq,omitempty"`
	ID  ID    `json:"id,omitempty"`
	A   Attr  `json:"attr,omitempty"`
	V   Value `json:"value,omitempty"`
	// Batch carries the variables of a periodic update.
	Batch []varUpdate `json:"batch,omitempty"`
	Err   string      `json:"err,omitempty"`
	// Code tags protocol errors with a machine-readable kind so the
	// client can reconstruct the matching typed sentinel (errors.go).
	Code  string   `json:"code,omitempty"`
	Names []string `json:"names,omitempty"`
}

// varUpdate is one entry in a periodic update batch.
type varUpdate struct {
	ID ID    `json:"id"`
	V  Value `json:"value"`
}

// encodeMsg renders a message as one JSON line.
func encodeMsg(m wireMsg) []byte {
	b, err := json.Marshal(m)
	if err != nil {
		// All fields are marshalable types; this cannot happen.
		panic(fmt.Sprintf("eem: marshal: %v", err))
	}
	return append(b, '\n')
}

// lineBuffer accumulates stream bytes and emits complete lines.
type lineBuffer struct {
	buf []byte
}

// feed appends data and calls fn for each complete line.
func (lb *lineBuffer) feed(data []byte, fn func(line []byte)) {
	lb.buf = append(lb.buf, data...)
	for {
		i := -1
		for j, c := range lb.buf {
			if c == '\n' {
				i = j
				break
			}
		}
		if i < 0 {
			return
		}
		line := lb.buf[:i]
		lb.buf = lb.buf[i+1:]
		if len(line) > 0 {
			fn(line)
		}
	}
}

// Conn abstracts the byte stream the protocol runs over: the simulated
// TCP connection in experiments, a real net.Conn in the daemons.
type Conn interface {
	// Write sends bytes toward the peer.
	Write(b []byte) error
	// Close tears the stream down.
	Close()
}
