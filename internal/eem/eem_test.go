package eem_test

import (
	"errors"
	"testing"
	"time"

	"repro/internal/eem"
	"repro/internal/ip"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/tcp"
)

// eemRig: a client host and a server host joined by one link, with an
// EEM server (node-source-backed) on the server host.
type eemRig struct {
	sched        *sim.Scheduler
	net          *netsim.Network
	cHost, sHost *netsim.Node
	client       *eem.Comma
	server       *eem.Server
	serverAddr   string
}

func newEEMRig(t *testing.T, interval time.Duration) *eemRig {
	t.Helper()
	s := sim.NewScheduler(3)
	n := netsim.New(s)
	ch := n.AddNode("client")
	sh := n.AddNode("server")
	n.Connect(ch, ip.MustParseAddr("10.0.0.1"), sh, ip.MustParseAddr("10.0.0.2"), netsim.LinkConfig{})
	cStack := tcp.NewStack(ch, tcp.Config{})
	sStack := tcp.NewStack(sh, tcp.Config{})
	ch.RegisterProto(ip.ProtoTCP, func(h ip.Header, p, raw []byte, in *netsim.Iface) { cStack.Deliver(h.Src, h.Dst, p) })
	sh.RegisterProto(ip.ProtoTCP, func(h ip.Header, p, raw []byte, in *netsim.Iface) { sStack.Deliver(h.Src, h.Dst, p) })

	srv := eem.NewServer("server")
	srv.Interval = interval
	srv.AddSource(&eem.NodeSource{Node: sh})
	if err := eem.ServeSim(sStack, eem.DefaultPort, srv); err != nil {
		t.Fatal(err)
	}
	srv.StartSimTicker(s)

	client := eem.NewComma(eem.SimDialer(cStack))
	return &eemRig{sched: s, net: n, cHost: ch, sHost: sh,
		client: client, server: srv, serverAddr: "10.0.0.2"}
}

func sysUpTimeID(server string) eem.ID {
	return eem.ID{Var: "sysUpTime", Server: server}
}

// TestSampleProgramFig62 replays the thesis's Fig 6.2 example: install
// an IN [0,20] attribute on sysUpTime, then poll the protected data
// area for changes.
func TestSampleProgramFig62(t *testing.T) {
	r := newEEMRig(t, time.Second)
	id := sysUpTimeID(r.serverAddr)
	attr := eem.Attr{
		Lower: eem.LongValue(0),
		Upper: eem.LongValue(2000), // 20s in TimeTicks (centiseconds)
		Op:    eem.IN,
	}
	if err := r.client.Register(id, attr); err != nil {
		t.Fatal(err)
	}
	var seen []int64
	for i := 0; i < 12; i++ {
		r.sched.RunFor(time.Second)
		if r.client.HasChanged(id) {
			v, ok := r.client.GetValue(id)
			if !ok {
				t.Fatal("HasChanged but no value")
			}
			seen = append(seen, v.L)
		}
	}
	if len(seen) < 5 {
		t.Fatalf("too few updates: %v", seen)
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] <= seen[i-1] {
			t.Fatalf("sysUpTime not increasing: %v", seen)
		}
	}
	// After 20 (virtual) seconds, sysUpTime leaves [0,2000] and the
	// updates stop.
	r.sched.RunFor(15 * time.Second)
	r.client.GetValue(id) // clear changed
	r.sched.RunFor(3 * time.Second)
	if r.client.HasChanged(id) {
		v, _ := r.client.GetValue(id)
		t.Fatalf("updates continued outside the region: %v", v)
	}
}

func TestInterruptCallbackEdgeTriggered(t *testing.T) {
	r := newEEMRig(t, 500*time.Millisecond)
	// Watch ipInReceives > 5 with interrupt notification.
	id := eem.ID{Var: "ipInReceives", Server: r.serverAddr}
	var fired []eem.Value
	err := r.client.Register(id, eem.Attr{Lower: eem.LongValue(5), Op: eem.GT},
		eem.WithCallback(func(gotID eem.ID, v eem.Value) {
			if gotID.Var != "ipInReceives" {
				t.Errorf("callback for %v", gotID)
			}
			fired = append(fired, v)
		}))
	if err != nil {
		t.Fatal(err)
	}
	r.sched.RunFor(2 * time.Second)
	if len(fired) != 0 {
		t.Fatalf("callback fired before threshold: %v", fired)
	}
	// Generate traffic to push the counter over 5.
	for i := 0; i < 10; i++ {
		r.cHost.SendIP(r.sHost.Addr(), ip.ProtoUDP, []byte("x"))
	}
	r.sched.RunFor(2 * time.Second)
	if len(fired) != 1 {
		t.Fatalf("callback fired %d times, want exactly 1 (edge-triggered)", len(fired))
	}
	if fired[0].L <= 5 {
		t.Fatalf("callback value %v", fired[0])
	}
}

func TestPollOnce(t *testing.T) {
	r := newEEMRig(t, time.Hour) // periodic updates effectively off
	var got eem.Value
	var gotErr error
	done := false
	err := r.client.GetValueOnce(eem.ID{Var: "sysName", Server: r.serverAddr}, func(v eem.Value, err error) {
		got, gotErr, done = v, err, true
	})
	if err != nil {
		t.Fatal(err)
	}
	r.sched.RunFor(2 * time.Second)
	if !done {
		t.Fatal("poll reply never arrived")
	}
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	if got.S != "server" {
		t.Fatalf("sysName = %q", got.S)
	}

	// Unknown variable yields an error reply.
	done = false
	r.client.GetValueOnce(eem.ID{Var: "noSuchVar", Server: r.serverAddr}, func(v eem.Value, err error) {
		gotErr, done = err, true
	})
	r.sched.RunFor(2 * time.Second)
	if !done || gotErr == nil {
		t.Fatalf("unknown variable: done=%v err=%v", done, gotErr)
	}
	// The server names the failure with a wire error code, so the
	// client reconstructs the typed sentinel across the connection.
	if !errors.Is(gotErr, eem.ErrUnknownVar) {
		t.Fatalf("poll error = %v, want eem.ErrUnknownVar", gotErr)
	}
}

func TestListVariablesIncludesTables61And62(t *testing.T) {
	r := newEEMRig(t, time.Hour)
	var names []string
	r.client.ListVariables(r.serverAddr, func(ns []string) { names = ns })
	r.sched.RunFor(2 * time.Second)
	set := map[string]bool{}
	for _, n := range names {
		set[n] = true
	}
	for _, want := range []string{"sysUpTime", "ifSpeed", "ipForwDatagrams",
		"tcpRetransSegs", "netLatency", "cpuLoadAvg", "deviceList", "bytes_rx"} {
		if !set[want] {
			t.Errorf("variable %q missing from catalogue", want)
		}
	}
}

func TestDeregisterStopsUpdates(t *testing.T) {
	r := newEEMRig(t, 500*time.Millisecond)
	id := sysUpTimeID(r.serverAddr)
	r.client.Register(id, eem.Attr{Lower: eem.LongValue(0), Op: eem.GTE})
	r.sched.RunFor(2 * time.Second)
	if _, ok := r.client.GetValue(id); !ok {
		t.Fatal("no updates before deregister")
	}
	r.client.Deregister(id)
	r.sched.RunFor(time.Second)
	if _, ok := r.client.GetValue(id); ok {
		t.Fatal("PDA entry survived deregistration")
	}
}

func TestDeregisterAll(t *testing.T) {
	r := newEEMRig(t, 500*time.Millisecond)
	id1 := sysUpTimeID(r.serverAddr)
	id2 := eem.ID{Var: "ipInReceives", Server: r.serverAddr}
	r.client.Register(id1, eem.Attr{Lower: eem.LongValue(0), Op: eem.GTE})
	r.client.Register(id2, eem.Attr{Lower: eem.LongValue(-1), Op: eem.GT})
	r.sched.RunFor(2 * time.Second)
	r.client.DeregisterAll()
	r.sched.RunFor(time.Second)
	if _, ok := r.client.GetValue(id1); ok {
		t.Fatal("id1 survived DeregisterAll")
	}
	if r.client.IsInRange(id2) {
		t.Fatal("id2 survived DeregisterAll")
	}
}

func TestAttrMatching(t *testing.T) {
	cases := []struct {
		attr eem.Attr
		v    eem.Value
		want bool
	}{
		{eem.Attr{Lower: eem.LongValue(10), Op: eem.GT}, eem.LongValue(11), true},
		{eem.Attr{Lower: eem.LongValue(10), Op: eem.GT}, eem.LongValue(10), false},
		{eem.Attr{Lower: eem.LongValue(10), Op: eem.GTE}, eem.LongValue(10), true},
		{eem.Attr{Lower: eem.LongValue(10), Op: eem.LT}, eem.LongValue(9), true},
		{eem.Attr{Lower: eem.LongValue(10), Op: eem.LTE}, eem.LongValue(10), true},
		{eem.Attr{Lower: eem.LongValue(10), Op: eem.EQ}, eem.DoubleValue(10), true},
		{eem.Attr{Lower: eem.LongValue(10), Op: eem.NEQ}, eem.LongValue(10), false},
		{eem.Attr{Lower: eem.LongValue(0), Upper: eem.LongValue(20), Op: eem.IN}, eem.LongValue(20), true},
		{eem.Attr{Lower: eem.LongValue(0), Upper: eem.LongValue(20), Op: eem.IN}, eem.LongValue(21), false},
		{eem.Attr{Lower: eem.LongValue(0), Upper: eem.LongValue(20), Op: eem.OUT}, eem.LongValue(21), true},
		{eem.Attr{Lower: eem.StringValue("up"), Op: eem.EQ}, eem.StringValue("up"), true},
		{eem.Attr{Lower: eem.StringValue("up"), Op: eem.NEQ}, eem.StringValue("down"), true},
	}
	for i, c := range cases {
		got, err := c.attr.Matches(c.v)
		if err != nil {
			t.Errorf("case %d: %v", i, err)
			continue
		}
		if got != c.want {
			t.Errorf("case %d: Matches(%v %v %v) = %v, want %v",
				i, c.attr.Lower, c.attr.Op, c.v, got, c.want)
		}
	}
	// Type checking: ordering operators are invalid for strings
	// (thesis §6.3.2).
	if _, err := (eem.Attr{Lower: eem.StringValue("x"), Op: eem.GT}).Matches(eem.StringValue("y")); err == nil {
		t.Error("GT on strings accepted")
	}
}

func TestOperatorParse(t *testing.T) {
	for _, op := range []eem.Operator{eem.GT, eem.GTE, eem.LT, eem.LTE, eem.EQ, eem.NEQ, eem.IN, eem.OUT} {
		got, err := eem.ParseOperator(op.String())
		if err != nil || got != op {
			t.Errorf("round trip %v: %v %v", op, got, err)
		}
	}
	if _, err := eem.ParseOperator("BOGUS"); err == nil {
		t.Error("parsed bogus operator")
	}
}

func TestValueString(t *testing.T) {
	if eem.LongValue(42).String() != "42" {
		t.Error("long")
	}
	if eem.DoubleValue(2.5).String() != "2.5" {
		t.Error("double")
	}
	if eem.StringValue("hi").String() != "hi" {
		t.Error("string")
	}
}

func TestNodeSourceInterfaceVariables(t *testing.T) {
	r := newEEMRig(t, time.Hour)
	src := &eem.NodeSource{Node: r.sHost}
	v, err := src.Get("ifSpeed", 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.L != 100e6 {
		t.Fatalf("ifSpeed = %v, want default 100Mb/s", v.L)
	}
	if _, err := src.Get("ifSpeed", 99); err == nil {
		t.Fatal("ifSpeed on missing interface succeeded")
	}
	// Traffic moves the octet counters.
	before, _ := src.Get("ifOutOctets", 0)
	r.sHost.SendIP(r.cHost.Addr(), ip.ProtoUDP, []byte("hello"))
	r.sched.RunFor(time.Second)
	after, _ := src.Get("ifOutOctets", 0)
	if after.L <= before.L {
		t.Fatalf("ifOutOctets did not advance: %d -> %d", before.L, after.L)
	}
}

func TestRateVariables(t *testing.T) {
	r := newEEMRig(t, time.Hour)
	src := &eem.NodeSource{Node: r.sHost}
	// First query primes the tracker.
	v, err := src.Get("avgInIPPkts", 0)
	if err != nil || v.D != 0 {
		t.Fatalf("prime: %v %v", v, err)
	}
	// 20 packets over 2 seconds => 10/s.
	for i := 0; i < 20; i++ {
		r.cHost.SendIP(r.sHost.Addr(), ip.ProtoUDP, []byte("x"))
	}
	r.sched.RunFor(2 * time.Second)
	v, err = src.Get("avgInIPPkts", 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind != eem.Double || v.D < 8 || v.D > 12 {
		t.Fatalf("avgInIPPkts = %v, want ≈10/s", v)
	}
	// Quiet period: rate decays to ~0 on the next window.
	r.sched.RunFor(5 * time.Second)
	v, _ = src.Get("avgInIPPkts", 0)
	if v.D != 0 {
		t.Fatalf("quiet rate = %v, want 0", v)
	}
}
