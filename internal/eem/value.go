// Package eem implements the Comma Execution-Environment Monitor of
// thesis chapter 6: servers that gather local network and machine
// statistics from pluggable sources and push them to interested
// clients, and a client library mirroring the comma_* functional
// interface of Tables 6.3–6.7 — variable IDs, notification attributes
// (bounds + operator), registration, and the three notification
// methods (interrupt-style callback, periodic silent updates into a
// protected data area, and synchronous-style polling).
//
// C-API correspondence (thesis Table 6.3–6.7 → this package):
//
//	comma_init / comma_term                → NewComma / Comma.Term
//	comma_setcallback                      → Comma.Register(..., WithCallback(fn))
//	comma_id_*                             → ID struct fields
//	comma_attr_*                           → Attr struct fields
//	comma_var_register / deregister[all]   → Comma.Register / Deregister / DeregisterAll
//	comma_query_getvalue                   → Comma.GetValue
//	comma_query_isinrange                  → Comma.IsInRange
//	comma_query_haschanged                 → Comma.HasChanged
//	comma_query_getvalue_once              → Comma.GetValueOnce
//
// The notification mode of a registration — silent PDA updates (the
// default), interrupt callback (WithCallback), client-driven PDA
// refresh (WithPDA), or explicit polling (WithPoll) — is selected by
// functional options on Comma.Register. The older Client methods
// remain as thin deprecated wrappers over the same machinery.
package eem

import (
	"errors"
	"fmt"
	"strconv"
)

// Kind is the data type of a variable (thesis: LONG, DOUBLE, STRING).
type Kind int

// Variable kinds.
const (
	Long Kind = iota
	Double
	String
)

func (k Kind) String() string {
	switch k {
	case Long:
		return "LONG"
	case Double:
		return "DOUBLE"
	case String:
		return "STRING"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Value is the union type of thesis §6.3.1 (comma_type_t).
type Value struct {
	Kind Kind    `json:"kind"`
	L    int64   `json:"l,omitempty"`
	D    float64 `json:"d,omitempty"`
	S    string  `json:"s,omitempty"`
}

// LongValue, DoubleValue, and StringValue build Values.
func LongValue(v int64) Value     { return Value{Kind: Long, L: v} }
func DoubleValue(v float64) Value { return Value{Kind: Double, D: v} }
func StringValue(v string) Value  { return Value{Kind: String, S: v} }

// String renders the value for display.
func (v Value) String() string {
	switch v.Kind {
	case Long:
		return strconv.FormatInt(v.L, 10)
	case Double:
		return strconv.FormatFloat(v.D, 'g', -1, 64)
	default:
		return v.S
	}
}

// Equal compares two values of the same kind.
func (v Value) Equal(o Value) bool { return v == o }

// asFloat coerces numeric values for comparisons.
func (v Value) asFloat() (float64, bool) {
	switch v.Kind {
	case Long:
		return float64(v.L), true
	case Double:
		return v.D, true
	}
	return 0, false
}

// Operator selects how attribute bounds are interpreted (thesis
// §6.3.2: COMMA_GT, GTE, LT, LTE, EQ, NEQ for unary — lower bound
// only — and COMMA_IN, OUT for binary).
type Operator int

// Attribute operators.
const (
	GT Operator = iota
	GTE
	LT
	LTE
	EQ
	NEQ
	IN
	OUT
)

var opNames = [...]string{"GT", "GTE", "LT", "LTE", "EQ", "NEQ", "IN", "OUT"}

func (o Operator) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Operator(%d)", int(o))
}

// ParseOperator inverts Operator.String (used by Kati).
func ParseOperator(s string) (Operator, error) {
	for i, n := range opNames {
		if n == s {
			return Operator(i), nil
		}
	}
	return 0, fmt.Errorf("eem: unknown operator %q", s)
}

// ErrTypeMismatch reports an attribute/value kind conflict.
var ErrTypeMismatch = errors.New("eem: operator invalid for value type")

// Attr is a notification specification (thesis comma_attr_t): the
// region of interest and how its bounds are read. For unary operators
// only Lower is used. Notify selects interrupt-style callbacks in
// addition to periodic updates.
type Attr struct {
	Lower Value    `json:"lower"`
	Upper Value    `json:"upper"`
	Op    Operator `json:"op"`
	// Interrupt requests callback notification the moment the variable
	// enters the region (in addition to periodic PDA updates).
	Interrupt bool `json:"interrupt,omitempty"`
}

// Matches reports whether v lies in the attribute's region of
// interest. String values support only EQ and NEQ (thesis §6.3.2).
func (a Attr) Matches(v Value) (bool, error) {
	if v.Kind == String {
		switch a.Op {
		case EQ:
			return v.S == a.Lower.S, nil
		case NEQ:
			return v.S != a.Lower.S, nil
		default:
			return false, ErrTypeMismatch
		}
	}
	f, ok := v.asFloat()
	if !ok {
		return false, ErrTypeMismatch
	}
	lo, ok := a.Lower.asFloat()
	if !ok {
		return false, ErrTypeMismatch
	}
	switch a.Op {
	case GT:
		return f > lo, nil
	case GTE:
		return f >= lo, nil
	case LT:
		return f < lo, nil
	case LTE:
		return f <= lo, nil
	case EQ:
		return f == lo, nil
	case NEQ:
		return f != lo, nil
	case IN, OUT:
		hi, ok := a.Upper.asFloat()
		if !ok {
			return false, ErrTypeMismatch
		}
		in := f >= lo && f <= hi
		if a.Op == IN {
			return in, nil
		}
		return !in, nil
	}
	return false, fmt.Errorf("eem: bad operator %v", a.Op)
}

// ID names a variable on a specific EEM server (thesis comma_id_t:
// variable name/number, optional index, and server).
type ID struct {
	Var    string `json:"var"`
	Index  int    `json:"index,omitempty"` // e.g. interface number for if* variables
	Server string `json:"server,omitempty"`
}

// String renders "server/var[index]".
func (id ID) String() string {
	s := id.Var
	if id.Index != 0 {
		s = fmt.Sprintf("%s[%d]", s, id.Index)
	}
	if id.Server != "" {
		s = id.Server + "/" + s
	}
	return s
}
