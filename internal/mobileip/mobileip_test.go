package mobileip_test

import (
	"testing"
	"time"

	"repro/internal/ip"
	"repro/internal/mobileip"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// topo builds the canonical Mobile IP topology of thesis Fig 2.1:
//
//	correspondent ── internet ── homeAgent    (home network)
//	                    │
//	                    ├── fa1 ── wireless cell 1
//	                    └── fa2 ── wireless cell 2
//
// The mobile starts attached to cell 1.
type topo struct {
	sched        *sim.Scheduler
	net          *netsim.Network
	corr, inet   *netsim.Node
	haNode       *netsim.Node
	fa1Node      *netsim.Node
	fa2Node      *netsim.Node
	mobileNode   *netsim.Node
	ha           *mobileip.HomeAgent
	fa1, fa2     *mobileip.ForeignAgent
	mob          *mobileip.Mobile
	cell1, cell2 *netsim.Link
}

var (
	corrAddr   = ip.MustParseAddr("1.1.1.1")
	haAddr     = ip.MustParseAddr("10.0.0.254")
	mobileHome = ip.MustParseAddr("10.0.0.99") // mobile's permanent address
	fa1CareOf  = ip.MustParseAddr("20.0.0.254")
	fa2CareOf  = ip.MustParseAddr("30.0.0.254")
)

func newTopo(t *testing.T) *topo {
	t.Helper()
	s := sim.NewScheduler(5)
	n := netsim.New(s)
	tp := &topo{sched: s, net: n}
	tp.corr = n.AddNode("correspondent")
	tp.inet = n.AddNode("internet")
	tp.haNode = n.AddNode("ha")
	tp.fa1Node = n.AddNode("fa1")
	tp.fa2Node = n.AddNode("fa2")
	tp.mobileNode = n.AddNode("mobile")
	for _, nd := range []*netsim.Node{tp.inet, tp.haNode, tp.fa1Node, tp.fa2Node} {
		nd.Forwarding = true
	}

	wire := netsim.LinkConfig{Bandwidth: 100e6, Delay: 5 * time.Millisecond}
	lc := n.Connect(tp.corr, corrAddr, tp.inet, ip.MustParseAddr("1.1.1.254"), wire)
	lh := n.Connect(tp.inet, ip.MustParseAddr("10.0.1.1"), tp.haNode, haAddr, wire)
	l1 := n.Connect(tp.inet, ip.MustParseAddr("20.0.1.1"), tp.fa1Node, fa1CareOf, wire)
	l2 := n.Connect(tp.inet, ip.MustParseAddr("30.0.1.1"), tp.fa2Node, fa2CareOf, wire)

	tp.corr.AddDefaultRoute(lc.IfaceA())
	tp.inet.AddRoute(ip.MustParseAddr("10.0.0.0"), 16, lh.IfaceA())
	tp.inet.AddRoute(ip.MustParseAddr("20.0.0.0"), 16, l1.IfaceA())
	tp.inet.AddRoute(ip.MustParseAddr("30.0.0.0"), 16, l2.IfaceA())
	tp.inet.AddRoute(ip.MustParseAddr("1.1.1.0"), 24, lc.IfaceB())
	tp.haNode.AddDefaultRoute(lh.IfaceB())
	tp.fa1Node.AddDefaultRoute(l1.IfaceB())
	tp.fa2Node.AddDefaultRoute(l2.IfaceB())

	tp.ha = mobileip.NewHomeAgent(tp.haNode)
	tp.fa1 = mobileip.NewForeignAgent(tp.fa1Node, fa1CareOf)
	tp.fa2 = mobileip.NewForeignAgent(tp.fa2Node, fa2CareOf)
	tp.mob = mobileip.NewMobile(tp.mobileNode, haAddr, mobileHome)

	// Mobile starts in cell 1.
	wireless := netsim.LinkConfig{Bandwidth: 2e6, Delay: 10 * time.Millisecond}
	tp.cell1 = n.Connect(tp.fa1Node, ip.MustParseAddr("20.0.0.1"), tp.mobileNode, mobileHome, wireless)
	tp.mobileNode.AddDefaultRoute(tp.mobileNode.Ifaces()[0])
	return tp
}

// handoff moves the mobile from cell 1 to cell 2.
func (tp *topo) handoff(t *testing.T) {
	t.Helper()
	tp.net.Disconnect(tp.cell1)
	tp.mobileNode.ClearRoutes()
	wireless := netsim.LinkConfig{Bandwidth: 2e6, Delay: 10 * time.Millisecond}
	tp.cell2 = tp.net.Connect(tp.fa2Node, ip.MustParseAddr("30.0.0.1"), tp.mobileNode, mobileHome, wireless)
	tp.mobileNode.AddDefaultRoute(tp.mobileNode.Ifaces()[0])
	tp.mob.Solicit()
}

func TestRegistrationViaAdvertisement(t *testing.T) {
	tp := newTopo(t)
	registered := ip.Addr(0)
	tp.mob.OnRegistered = func(careOf ip.Addr) { registered = careOf }
	tp.fa1.StartAdvertising(time.Second)
	tp.sched.RunFor(3 * time.Second)
	tp.fa1.StopAdvertising()
	if registered != fa1CareOf {
		t.Fatalf("mobile registered care-of %v, want %v", registered, fa1CareOf)
	}
	if careOf, ok := tp.ha.CareOf(mobileHome); !ok || careOf != fa1CareOf {
		t.Fatalf("HA binding = %v, %v", careOf, ok)
	}
	if tp.mob.Registrations != 1 {
		t.Fatalf("registrations = %d", tp.mob.Registrations)
	}
}

func TestTunneledDelivery(t *testing.T) {
	tp := newTopo(t)
	tp.fa1.StartAdvertising(time.Second)
	tp.sched.RunFor(3 * time.Second)
	tp.fa1.StopAdvertising()

	var got []byte
	tp.mobileNode.RegisterProto(ip.ProtoUDP, func(h ip.Header, payload, raw []byte, in *netsim.Iface) {
		got = payload
		if h.Src != corrAddr || h.Dst != mobileHome {
			t.Errorf("inner header %v -> %v", h.Src, h.Dst)
		}
	})
	haBefore, faBefore := tp.ha.Tunneled, tp.fa1.Decapsulated
	tp.corr.SendIP(mobileHome, ip.ProtoUDP, []byte("to the mobile"))
	tp.sched.RunFor(time.Second)
	if string(got) != "to the mobile" {
		t.Fatalf("mobile got %q", got)
	}
	if tp.ha.Tunneled != haBefore+1 || tp.fa1.Decapsulated != faBefore+1 {
		t.Fatalf("tunnel counters: ha=%d fa=%d", tp.ha.Tunneled, tp.fa1.Decapsulated)
	}
}

func TestReversePathIsDirect(t *testing.T) {
	// Triangular routing: mobile → correspondent does NOT pass the HA.
	tp := newTopo(t)
	tp.fa1.StartAdvertising(time.Second)
	tp.sched.RunFor(3 * time.Second)

	got := false
	tp.corr.RegisterProto(ip.ProtoUDP, func(h ip.Header, payload, raw []byte, in *netsim.Iface) {
		got = true
	})
	before := tp.haNode.Stats.IPForwDatagrams
	tp.mobileNode.SendIPFrom(mobileHome, corrAddr, ip.ProtoUDP, []byte("up"))
	tp.sched.RunFor(time.Second)
	if !got {
		t.Fatal("correspondent never received the uplink packet")
	}
	if tp.haNode.Stats.IPForwDatagrams != before {
		t.Fatal("uplink packet was routed through the home agent")
	}
}

func TestHandoffReregistersAndRestoresDelivery(t *testing.T) {
	tp := newTopo(t)
	tp.fa1.StartAdvertising(500 * time.Millisecond)
	tp.fa2.StartAdvertising(500 * time.Millisecond)
	tp.sched.RunFor(2 * time.Second)
	if careOf, _ := tp.ha.CareOf(mobileHome); careOf != fa1CareOf {
		t.Fatalf("initial binding %v", careOf)
	}

	delivered := 0
	tp.mobileNode.RegisterProto(ip.ProtoUDP, func(ip.Header, []byte, []byte, *netsim.Iface) { delivered++ })

	tp.handoff(t)
	tp.sched.RunFor(2 * time.Second)
	if careOf, _ := tp.ha.CareOf(mobileHome); careOf != fa2CareOf {
		t.Fatalf("binding after handoff = %v, want %v", careOf, fa2CareOf)
	}
	if tp.mob.Handoffs != 1 {
		t.Fatalf("handoffs = %d", tp.mob.Handoffs)
	}
	tp.corr.SendIP(mobileHome, ip.ProtoUDP, []byte("after handoff"))
	tp.sched.RunFor(time.Second)
	if delivered != 1 {
		t.Fatalf("delivered = %d after handoff", delivered)
	}
	if tp.fa2.Decapsulated == 0 {
		t.Fatal("fa2 never decapsulated")
	}
}

func TestPacketsLostDuringHandoffGap(t *testing.T) {
	// Packets sent between detachment and re-registration arrive at
	// the old FA and are lost (thesis §2.1's second drawback).
	tp := newTopo(t)
	tp.fa1.StartAdvertising(500 * time.Millisecond)
	tp.sched.RunFor(2 * time.Second)
	tp.fa1.StopAdvertising()

	delivered := 0
	tp.mobileNode.RegisterProto(ip.ProtoUDP, func(ip.Header, []byte, []byte, *netsim.Iface) { delivered++ })

	tp.net.Disconnect(tp.cell1)
	tp.mobileNode.ClearRoutes()
	// In the gap: traffic still tunnels to fa1, vanishing on the dead
	// cell link.
	for i := 0; i < 5; i++ {
		tp.corr.SendIP(mobileHome, ip.ProtoUDP, []byte("lost"))
	}
	tp.sched.RunFor(time.Second)
	if delivered != 0 {
		t.Fatalf("%d packets survived the handoff gap", delivered)
	}
}

func TestTriangularRoutingPenalty(t *testing.T) {
	// RTT via the HA exceeds direct RTT; the binding-cache route
	// optimization recovers the direct path (thesis §2.1).
	tp := newTopo(t)
	tp.fa1.StartAdvertising(500 * time.Millisecond)
	tp.sched.RunFor(2 * time.Second)
	tp.fa1.StopAdvertising()

	// Measure one-way delivery time via HA tunneling.
	var arrive sim.Time
	tp.mobileNode.RegisterProto(ip.ProtoUDP, func(ip.Header, []byte, []byte, *netsim.Iface) {
		arrive = tp.sched.Now()
	})
	start := tp.sched.Now()
	tp.corr.SendIP(mobileHome, ip.ProtoUDP, []byte("x"))
	tp.sched.RunFor(time.Second)
	triangular := arrive.Sub(start)

	// Now with a binding cache on the correspondent.
	bc := mobileip.NewBindingCache(tp.corr)
	bc.Learn(mobileHome, fa1CareOf, time.Minute)
	send := bc.WrapSend()
	start = tp.sched.Now()
	send(mobileHome, ip.ProtoUDP, []byte("y"))
	tp.sched.RunFor(time.Second)
	direct := arrive.Sub(start)

	t.Logf("triangular %v, optimized %v", triangular, direct)
	if direct >= triangular {
		t.Fatalf("route optimization not faster: %v vs %v", direct, triangular)
	}
	if bc.DirectTunneled != 1 {
		t.Fatalf("DirectTunneled = %d", bc.DirectTunneled)
	}
}

func TestBindingExpiry(t *testing.T) {
	tp := newTopo(t)
	tp.ha.Register(mobileHome, fa1CareOf, time.Second)
	if _, ok := tp.ha.CareOf(mobileHome); !ok {
		t.Fatal("fresh binding not live")
	}
	tp.sched.RunFor(2 * time.Second)
	if _, ok := tp.ha.CareOf(mobileHome); ok {
		t.Fatal("binding survived its lifetime")
	}
	tp.ha.Deregister(mobileHome)
}
