// Package mobileip implements the Mobile IP substrate of thesis §2.1:
// home agents that intercept and tunnel traffic for registered
// mobiles, foreign agents that advertise care-of service and
// decapsulate tunnels, mobile-side registration driven by ICMP router
// discovery, and handoff between foreign agents — including the
// triangular-routing behaviour and handoff packet loss the thesis
// discusses, plus the proposed binding-cache route optimization as a
// comparator.
package mobileip

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/ip"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// Registration messages run over UDP-less raw IP for simplicity: the
// simulator delivers them as their own protocol number (private range).
const (
	// ProtoRegistration carries mobile-IP registration requests and
	// replies (stand-in for the RFC 2002 UDP port 434 exchange).
	ProtoRegistration = 250
	// ProtoBindingUpdate carries binding-cache updates for the route
	// optimization extension (§2.1's proposed triangular-routing fix).
	ProtoBindingUpdate = 251
)

// regMessage is the wire form of a registration request or reply.
type regMessage struct {
	Reply    bool
	Mobile   ip.Addr // the mobile's home address
	CareOf   ip.Addr // the foreign agent's care-of address
	Lifetime uint16  // seconds
}

func marshalReg(m regMessage) []byte {
	b := make([]byte, 11)
	if m.Reply {
		b[0] = 1
	}
	binary.BigEndian.PutUint32(b[1:], uint32(m.Mobile))
	binary.BigEndian.PutUint32(b[5:], uint32(m.CareOf))
	binary.BigEndian.PutUint16(b[9:], m.Lifetime)
	return b
}

func unmarshalReg(b []byte) (regMessage, error) {
	var m regMessage
	if len(b) < 11 {
		return m, fmt.Errorf("mobileip: short registration message")
	}
	m.Reply = b[0] == 1
	m.Mobile = ip.Addr(binary.BigEndian.Uint32(b[1:]))
	m.CareOf = ip.Addr(binary.BigEndian.Uint32(b[5:]))
	m.Lifetime = binary.BigEndian.Uint16(b[9:])
	return m, nil
}

// binding is a mobile → care-of mapping with an expiry.
type binding struct {
	careOf  ip.Addr
	expires sim.Time
}

// HomeAgent intercepts packets addressed to its registered mobiles and
// tunnels them to the mobile's current care-of address (thesis §2.1).
type HomeAgent struct {
	node     *netsim.Node
	bindings map[ip.Addr]binding
	tunnelID uint16
	emit     [][]byte // reusable hook return (netsim.Hook contract)

	// Stats for the experiments.
	Tunneled  int64
	NoBinding int64
}

// NewHomeAgent attaches home-agent behaviour to a router node. The
// node must already route/forward for the home network.
func NewHomeAgent(node *netsim.Node) *HomeAgent {
	ha := &HomeAgent{node: node, bindings: make(map[ip.Addr]binding)}
	node.RegisterProto(ProtoRegistration, ha.handleRegistration)
	node.SetHook(ha.intercept)
	return ha
}

// Register records (or refreshes) a mobile's care-of binding.
func (ha *HomeAgent) Register(mobile, careOf ip.Addr, lifetime time.Duration) {
	ha.bindings[mobile] = binding{careOf: careOf, expires: ha.node.Clock().Now().Add(lifetime)}
}

// Deregister removes a binding (mobile returned home).
func (ha *HomeAgent) Deregister(mobile ip.Addr) { delete(ha.bindings, mobile) }

// CareOf returns the current binding for a mobile, if live.
func (ha *HomeAgent) CareOf(mobile ip.Addr) (ip.Addr, bool) {
	b, ok := ha.bindings[mobile]
	if !ok || ha.node.Clock().Now() > b.expires {
		return 0, false
	}
	return b.careOf, true
}

// handleRegistration processes registration requests arriving via a
// foreign agent and answers with a reply.
func (ha *HomeAgent) handleRegistration(h ip.Header, payload, raw []byte, in *netsim.Iface) {
	m, err := unmarshalReg(payload)
	if err != nil || m.Reply {
		return
	}
	ha.Register(m.Mobile, m.CareOf, time.Duration(m.Lifetime)*time.Second)
	reply := marshalReg(regMessage{Reply: true, Mobile: m.Mobile, CareOf: m.CareOf, Lifetime: m.Lifetime})
	ha.node.SendIP(h.Src, ProtoRegistration, reply)
}

// intercept tunnels packets destined for registered mobiles.
func (ha *HomeAgent) intercept(raw []byte, in *netsim.Iface) [][]byte {
	h, _, err := ip.Unmarshal(raw)
	if err != nil {
		return ha.emitOne(raw)
	}
	b, ok := ha.bindings[h.Dst]
	if !ok || ha.node.Clock().Now() > b.expires {
		if _, registered := ha.bindings[h.Dst]; registered {
			ha.NoBinding++
		}
		return ha.emitOne(raw)
	}
	if h.Protocol == ip.ProtoIPIP {
		return ha.emitOne(raw) // already tunneled
	}
	ha.tunnelID++
	enc, err := ip.Encapsulate(ha.node.Addr(), b.careOf, raw, ha.tunnelID)
	if err != nil {
		return ha.emitOne(raw)
	}
	ha.Tunneled++
	return ha.emitOne(enc)
}

// emitOne returns pkt via the agent's reusable emit slice (see
// netsim.Hook's ownership contract).
func (ha *HomeAgent) emitOne(pkt []byte) [][]byte {
	if len(ha.emit) > 0 {
		ha.emit[0] = nil
	}
	ha.emit = append(ha.emit[:0], pkt)
	return ha.emit
}

// ForeignAgent advertises care-of service on its wireless network,
// relays mobile registrations to home agents, and decapsulates
// arriving tunnels (thesis §2.1).
type ForeignAgent struct {
	node    *netsim.Node
	careOf  ip.Addr
	mobiles map[ip.Addr]bool // mobiles currently visiting

	advTimer *sim.Timer

	// Stats.
	Decapsulated       int64
	AdvsSent           int64
	DroppedUnreachable int64 // tunneled packets for a departed mobile
}

// NewForeignAgent attaches foreign-agent behaviour to a router node.
// careOf is the address home agents tunnel to (one of node's).
func NewForeignAgent(node *netsim.Node, careOf ip.Addr) *ForeignAgent {
	fa := &ForeignAgent{node: node, careOf: careOf, mobiles: make(map[ip.Addr]bool)}
	node.RegisterProto(ip.ProtoIPIP, fa.handleTunnel)
	node.RegisterProto(ProtoRegistration, fa.relayRegistration)
	node.RegisterProto(ip.ProtoICMP, fa.handleICMP)
	return fa
}

// StartAdvertising broadcasts mobility-agent router advertisements
// every interval (RFC 1256 style, thesis §2.1).
func (fa *ForeignAgent) StartAdvertising(interval time.Duration) {
	var tick func()
	tick = func() {
		fa.sendAdvertisement()
		fa.advTimer = fa.node.Clock().After(interval, tick)
	}
	tick()
}

// StopAdvertising cancels the periodic advertisements.
func (fa *ForeignAgent) StopAdvertising() { fa.advTimer.Stop() }

func (fa *ForeignAgent) sendAdvertisement() {
	fa.AdvsSent++
	adv := ip.MarshalRouterAdvertisement(ip.RouterAdvertisement{
		Lifetime:   30,
		Addrs:      []ip.Addr{fa.careOf},
		AgentFlags: ip.AgentFlagFA,
	})
	fa.node.SendIPFrom(fa.careOf, netsim.Broadcast, ip.ProtoICMP, adv)
}

// handleICMP answers router solicitations from newly arrived mobiles.
func (fa *ForeignAgent) handleICMP(h ip.Header, payload, raw []byte, in *netsim.Iface) {
	m, err := ip.UnmarshalICMP(payload)
	if err != nil {
		return
	}
	if m.Type == ip.ICMPRouterSolicitation {
		fa.sendAdvertisement()
	}
}

// relayRegistration forwards a mobile's registration request to its
// home agent (addressed by the packet's original destination) and
// passes replies back down to the mobile.
func (fa *ForeignAgent) relayRegistration(h ip.Header, payload, raw []byte, in *netsim.Iface) {
	m, err := unmarshalReg(payload)
	if err != nil {
		return
	}
	if m.Reply {
		// Reply from the HA: note the visitor, hand the reply to the
		// mobile.
		fa.mobiles[m.Mobile] = true
		fa.node.SendIPFrom(fa.careOf, m.Mobile, ProtoRegistration, payload)
		return
	}
	// Request from the mobile: stamp our care-of address and relay to
	// the HA (the request's IP destination).
	m.CareOf = fa.careOf
	fa.node.SendIPFrom(fa.careOf, h.Dst, ProtoRegistration, marshalReg(m))
}

// handleTunnel decapsulates IP-in-IP packets and forwards the inner
// datagram toward the visiting mobile. If the mobile is not reachable
// on any local link (it detached mid-handoff), the packet is dropped —
// the thesis §2.1 behaviour: "these packets may either be dropped by
// the FA, relying on higher-level communication protocols to handle
// the loss".
func (fa *ForeignAgent) handleTunnel(h ip.Header, payload, raw []byte, in *netsim.Iface) {
	inner, err := ip.Decapsulate(raw)
	if err != nil {
		return
	}
	ih, _, err := ip.Unmarshal(inner)
	if err != nil {
		return
	}
	if !fa.mobileReachable(ih.Dst) {
		fa.DroppedUnreachable++
		return
	}
	fa.Decapsulated++
	// If a service proxy is installed on this node, decapsulated
	// traffic runs through its filter queues like natively-routed
	// traffic — otherwise a stream migrated to this FA's SP would slip
	// past its own services the moment it arrives through the tunnel.
	if hook := fa.node.PacketHook(); hook != nil {
		for _, out := range hook(inner, in) {
			fa.node.InjectPacket(out)
		}
		return
	}
	fa.node.InjectPacket(inner)
}

// mobileReachable reports whether addr is a live link neighbour.
func (fa *ForeignAgent) mobileReachable(addr ip.Addr) bool {
	for _, f := range fa.node.Ifaces() {
		l := f.Link()
		if l == nil || l.Down() {
			continue
		}
		peer := l.IfaceA()
		if peer == f {
			peer = l.IfaceB()
		}
		if peer.Addr() == addr {
			return true
		}
	}
	return false
}

// Mobile is the mobile host's Mobile IP machinery: it discovers
// foreign agents from advertisements and registers through them with
// its home agent.
type Mobile struct {
	node *netsim.Node
	home ip.Addr // home agent address
	addr ip.Addr // the mobile's permanent home address

	currentFA ip.Addr
	// OnRegistered fires when a registration reply arrives.
	OnRegistered func(careOf ip.Addr)

	// Stats.
	Registrations int64
	Handoffs      int64
}

// NewMobile attaches mobile behaviour to a host node. homeAgent is the
// HA's address; addr is the mobile's permanent home address.
func NewMobile(node *netsim.Node, homeAgent, addr ip.Addr) *Mobile {
	m := &Mobile{node: node, home: homeAgent, addr: addr}
	node.RegisterProto(ip.ProtoICMP, m.handleICMP)
	node.RegisterProto(ProtoRegistration, m.handleReply)
	return m
}

// Solicit broadcasts a router solicitation (after moving to a new
// network, thesis §2.1).
func (m *Mobile) Solicit() {
	sol := ip.MarshalICMP(ip.ICMPMessage{Type: ip.ICMPRouterSolicitation})
	m.node.SendIPFrom(m.addr, netsim.Broadcast, ip.ProtoICMP, sol)
}

// handleICMP watches for mobility-agent advertisements and registers
// with newly discovered foreign agents.
func (m *Mobile) handleICMP(h ip.Header, payload, raw []byte, in *netsim.Iface) {
	msg, err := ip.UnmarshalICMP(payload)
	if err != nil || msg.Type != ip.ICMPRouterAdvertisement {
		return
	}
	adv, err := ip.ParseRouterAdvertisement(msg)
	if err != nil || adv.AgentFlags&ip.AgentFlagFA == 0 || len(adv.Addrs) == 0 {
		return
	}
	fa := adv.Addrs[0]
	if fa == m.currentFA {
		return // already registered here
	}
	if m.currentFA != 0 {
		m.Handoffs++
	}
	m.currentFA = fa
	m.register(fa)
}

// register sends a registration request toward the HA via the FA.
func (m *Mobile) register(fa ip.Addr) {
	m.Registrations++
	req := marshalReg(regMessage{Mobile: m.addr, CareOf: fa, Lifetime: 300})
	// Addressed to the HA; the FA relays and stamps the care-of.
	m.node.SendIPFrom(m.addr, m.home, ProtoRegistration, req)
}

// handleReply fires the registration callback.
func (m *Mobile) handleReply(h ip.Header, payload, raw []byte, in *netsim.Iface) {
	msg, err := unmarshalReg(payload)
	if err != nil || !msg.Reply {
		return
	}
	if m.OnRegistered != nil {
		m.OnRegistered(msg.CareOf)
	}
}

// CurrentFA returns the care-of address of the FA the mobile last
// registered through (zero if none).
func (m *Mobile) CurrentFA() ip.Addr { return m.currentFA }

// --- route optimization (binding caches, §2.1) -------------------------------

// BindingCache implements the proposed triangular-routing fix: a
// correspondent host caches the mobile's care-of address and tunnels
// directly, bypassing the home agent.
type BindingCache struct {
	node     *netsim.Node
	bindings map[ip.Addr]binding
	tunnelID uint16

	// DirectTunneled counts packets short-cut past the HA.
	DirectTunneled int64
}

// NewBindingCache attaches a binding cache to a correspondent host.
func NewBindingCache(node *netsim.Node) *BindingCache {
	bc := &BindingCache{node: node, bindings: make(map[ip.Addr]binding)}
	node.RegisterProto(ProtoBindingUpdate, bc.handleUpdate)
	return bc
}

// Learn records a binding directly (tests / explicit updates).
func (bc *BindingCache) Learn(mobile, careOf ip.Addr, lifetime time.Duration) {
	bc.bindings[mobile] = binding{careOf: careOf, expires: bc.node.Clock().Now().Add(lifetime)}
}

func (bc *BindingCache) handleUpdate(h ip.Header, payload, raw []byte, in *netsim.Iface) {
	m, err := unmarshalReg(payload)
	if err != nil {
		return
	}
	bc.Learn(m.Mobile, m.CareOf, time.Duration(m.Lifetime)*time.Second)
}

// WrapSend returns a send function that tunnels straight to the
// mobile's care-of address when a live binding exists, falling back to
// plain (triangular) routing otherwise. Hosts use it in place of
// Node.SendIP for traffic to mobiles.
func (bc *BindingCache) WrapSend() func(dst ip.Addr, proto byte, payload []byte) {
	return func(dst ip.Addr, proto byte, payload []byte) {
		b, ok := bc.bindings[dst]
		if !ok || bc.node.Clock().Now() > b.expires {
			bc.node.SendIP(dst, proto, payload)
			return
		}
		h := ip.Header{TTL: 64, Protocol: proto, Src: bc.node.Addr(), Dst: dst}
		inner, err := h.Marshal(payload)
		if err != nil {
			return
		}
		bc.tunnelID++
		enc, err := ip.Encapsulate(bc.node.Addr(), b.careOf, inner, bc.tunnelID)
		if err != nil {
			return
		}
		bc.DirectTunneled++
		bc.node.InjectPacket(enc)
	}
}
