package dataplane_test

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataplane"
	"repro/internal/filter"
	"repro/internal/filters"
	"repro/internal/obs"
)

// TestControlVsTrafficRace hammers control-plane mutations, merged
// queries, and metric scrapes against live traffic on a concurrent
// plane. It asserts nothing subtle — the race detector is the oracle:
// any shard state touched outside its goroutine, or any quiesce bug
// letting a mutation overlap a packet, fails the -race build.
func TestControlVsTrafficRace(t *testing.T) {
	cat := filter.NewCatalog()
	filters.RegisterAll(cat)
	pl := dataplane.NewConcurrent(dataplane.ConcurrentConfig{
		Shards: 4, Catalog: cat, Seed: 7, RingSize: 128,
	})
	defer pl.Close()
	reg := obs.NewRegistry()
	pl.RegisterMetrics(reg, "plane")

	const pkts = 8000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < pkts; i++ {
			port := uint16(1000 + i%64)
			pl.Dispatch(mkSeg(t, port, uint32(1+i), []byte("race traffic payload")))
		}
	}()

	pl.Command("load tcp")
	pl.Command("load rdrop")
	for i := 0; ; i++ {
		select {
		case <-done:
			pl.Drain()
			snap := pl.StatsSnapshot()
			if snap.Intercepted != pkts {
				t.Fatalf("intercepted %d packets, dispatched %d", snap.Intercepted, pkts)
			}
			return
		default:
		}
		switch i % 6 {
		case 0:
			pl.Command("add rdrop 0.0.0.0 0 0.0.0.0 0 10")
		case 1:
			exact := fmt.Sprintf("11.11.10.99 %d 11.11.10.10 5001", 1000+i%64)
			pl.Command("add rdrop " + exact + " 50")
		case 2:
			if out := pl.Command("report"); !strings.Contains(out, "rdrop") {
				t.Fatalf("report lost rdrop: %q", out)
			}
		case 3:
			pl.Command("streams")
			reg.Snapshot()
		case 4:
			pl.Command("delete rdrop 0.0.0.0 0 0.0.0.0 0")
			pl.FlushMatchCache()
		case 5:
			exact := fmt.Sprintf("11.11.10.99 %d 11.11.10.10 5001", 1000+i%64)
			pl.Command("delete rdrop " + exact)
			pl.StatsSnapshot()
		}
	}
}

// TestBatchedControlVsTrafficRace is the batching variant of the race
// gate: full-rate burst traffic through small batches with the flush
// timer armed (so timer flushes race dispatcher flushes on the
// producer lock), while the control side swaps epochs with
// library-wide load/remove cycles, fires exact-key mutations at the
// owning shards, forces classifier recompiles, and injects
// micro-stalls at batch boundaries with the watchdog running. The
// race detector is the oracle for shard-state isolation; the final
// count asserts no packet was lost in a partial batch across all the
// quiesce points.
// TestProgramSwapVsTrafficRace pins the ordering contract between
// registry mutations and the compiled match program on the concurrent
// plane: a mutation (or explicit FlushMatchCache) rides the
// quiesce/epoch barrier, so every packet dispatched after the command
// returns must be answered by a program reflecting the new registry —
// no shard may keep serving pre-mutation match results. Unlike the
// pure hammer tests above it asserts semantics per phase, on fresh
// first-sight keys each round, while the race detector watches the
// recompile-and-swap happen on shard goroutines under batched traffic.
func TestProgramSwapVsTrafficRace(t *testing.T) {
	cat := filter.NewCatalog()
	filters.RegisterAll(cat)
	var emitted atomic.Int64
	pl := dataplane.NewConcurrent(dataplane.ConcurrentConfig{
		Shards: 4, Catalog: cat, Seed: 13, RingSize: 64,
		BatchSize: 16, FlushInterval: 200 * time.Microsecond,
		Sink: func(_ int, out [][]byte) { emitted.Add(int64(len(out))) },
	})
	defer pl.Close()
	stopDog := pl.StartWatchdog(5 * time.Millisecond)
	defer stopDog()
	reg := obs.NewRegistry()
	pl.RegisterMetrics(reg, "plane")

	pl.Command("load rdrop")
	const per = 64
	nextPort := uint16(2000)
	// sendFresh dispatches `per` packets on never-seen stream keys and
	// returns how many the sink emitted for them.
	sendFresh := func() int64 {
		before := emitted.Load()
		for j := 0; j < per; j++ {
			pl.Dispatch(mkSeg(t, nextPort, uint32(1+j), []byte("swap race payload")))
			nextPort++
		}
		pl.Drain()
		return emitted.Load() - before
	}

	for round := 0; round < 20; round++ {
		// Phase 1: no registration — everything passes through.
		if got := sendFresh(); got != per {
			t.Fatalf("round %d: %d/%d packets passed with empty registry", round, got, per)
		}
		// Phase 2: a wild-card drop-all lands via the epoch barrier;
		// once the command returns, no shard may serve its old program.
		pl.Command("add rdrop 0.0.0.0 0 0.0.0.0 0 100")
		if got := sendFresh(); got != 0 {
			t.Fatalf("round %d: %d packets leaked through a stale match program after add", round, got)
		}
		// Phase 3: an explicit flush mid-registration recompiles on
		// every shard; semantics must be unchanged.
		pl.FlushMatchCache()
		if got := sendFresh(); got != 0 {
			t.Fatalf("round %d: %d packets leaked after FlushMatchCache", round, got)
		}
		// Phase 4: delete restores pass-through for the next round's
		// fresh keys.
		pl.Command("delete rdrop 0.0.0.0 0 0.0.0.0 0")
		if got := sendFresh(); got != per {
			t.Fatalf("round %d: %d/%d packets passed after delete (over-retained program)", round, got, per)
		}
		// Concurrent scrapes exercise the read side of the new
		// registry counters against the swaps.
		reg.Snapshot()
		pl.StatsSnapshot()
	}
	snap := pl.StatsSnapshot()
	if snap.RegistryRebuilds == 0 {
		t.Fatal("no program rebuilds recorded across 20 mutation rounds")
	}
}

func TestBatchedControlVsTrafficRace(t *testing.T) {
	cat := filter.NewCatalog()
	filters.RegisterAll(cat)
	pl := dataplane.NewConcurrent(dataplane.ConcurrentConfig{
		Shards: 4, Catalog: cat, Seed: 11, RingSize: 64,
		BatchSize: 16, FlushInterval: 200 * time.Microsecond,
	})
	defer pl.Close()
	stopDog := pl.StartWatchdog(5 * time.Millisecond)
	defer stopDog()

	const bursts = 500
	const per = 16
	done := make(chan struct{})
	go func() {
		defer close(done)
		burst := make([][]byte, per)
		for i := 0; i < bursts; i++ {
			for j := range burst {
				port := uint16(1000 + (i*per+j)%64)
				burst[j] = mkSeg(t, port, uint32(1+i*per+j), []byte("batched race payload"))
			}
			pl.DispatchBurst(burst)
		}
	}()

	pl.Command("load tcp")
	epochAt := pl.Epoch()
	for i := 0; ; i++ {
		select {
		case <-done:
			pl.Drain()
			if snap := pl.StatsSnapshot(); snap.Intercepted != bursts*per {
				t.Fatalf("intercepted %d packets, dispatched %d", snap.Intercepted, bursts*per)
			}
			if pl.Epoch() <= epochAt {
				t.Fatal("control loop never advanced the epoch")
			}
			if got := pl.Batches(); got == 0 {
				t.Fatal("no batches drained")
			}
			return
		default:
		}
		switch i % 7 {
		case 0:
			// Epoch swap: the whole rdrop library comes and goes under
			// traffic, obsoleting every shard's compiled match program.
			pl.Command("load rdrop")
		case 1:
			pl.Command("add rdrop 0.0.0.0 0 0.0.0.0 0 25")
		case 2:
			exact := fmt.Sprintf("11.11.10.99 %d 11.11.10.10 5001", 1000+i%64)
			pl.Command("add rdrop " + exact + " 50")
		case 3:
			exact := fmt.Sprintf("11.11.10.99 %d 11.11.10.10 5001", 1000+i%64)
			pl.Command("delete rdrop " + exact)
		case 4:
			pl.Command("remove rdrop")
			pl.FlushMatchCache()
		case 5:
			pl.InjectStall(i%4, 100*time.Microsecond)
			pl.Command("streams")
		case 6:
			pl.Flush()
			pl.StatsSnapshot()
		}
	}
}
