package dataplane_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/dataplane"
	"repro/internal/filter"
	"repro/internal/filters"
	"repro/internal/obs"
)

// TestControlVsTrafficRace hammers control-plane mutations, merged
// queries, and metric scrapes against live traffic on a concurrent
// plane. It asserts nothing subtle — the race detector is the oracle:
// any shard state touched outside its goroutine, or any quiesce bug
// letting a mutation overlap a packet, fails the -race build.
func TestControlVsTrafficRace(t *testing.T) {
	cat := filter.NewCatalog()
	filters.RegisterAll(cat)
	pl := dataplane.NewConcurrent(dataplane.ConcurrentConfig{
		Shards: 4, Catalog: cat, Seed: 7, RingSize: 128,
	})
	defer pl.Close()
	reg := obs.NewRegistry()
	pl.RegisterMetrics(reg, "plane")

	const pkts = 8000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < pkts; i++ {
			port := uint16(1000 + i%64)
			pl.Dispatch(mkSeg(t, port, uint32(1+i), []byte("race traffic payload")))
		}
	}()

	pl.Command("load tcp")
	pl.Command("load rdrop")
	for i := 0; ; i++ {
		select {
		case <-done:
			pl.Drain()
			snap := pl.StatsSnapshot()
			if snap.Intercepted != pkts {
				t.Fatalf("intercepted %d packets, dispatched %d", snap.Intercepted, pkts)
			}
			return
		default:
		}
		switch i % 6 {
		case 0:
			pl.Command("add rdrop 0.0.0.0 0 0.0.0.0 0 10")
		case 1:
			exact := fmt.Sprintf("11.11.10.99 %d 11.11.10.10 5001", 1000+i%64)
			pl.Command("add rdrop " + exact + " 50")
		case 2:
			if out := pl.Command("report"); !strings.Contains(out, "rdrop") {
				t.Fatalf("report lost rdrop: %q", out)
			}
		case 3:
			pl.Command("streams")
			reg.Snapshot()
		case 4:
			pl.Command("delete rdrop 0.0.0.0 0 0.0.0.0 0")
			pl.FlushMatchCache()
		case 5:
			exact := fmt.Sprintf("11.11.10.99 %d 11.11.10.10 5001", 1000+i%64)
			pl.Command("delete rdrop " + exact)
			pl.StatsSnapshot()
		}
	}
}
