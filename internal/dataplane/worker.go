package dataplane

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/proxy"
)

// ctrlMsg is one control-plane operation executed by the shard
// goroutine between batches. done, when non-nil, is signalled after fn
// returns, so a broadcast that waits on every shard's done is a full
// quiesce point; fire-and-forget messages (fault injection) leave it
// nil.
type ctrlMsg struct {
	fn   func(p *proxy.Proxy)
	done *sync.WaitGroup
}

// worker is one concurrent shard: a goroutine draining batches from an
// SPSC ring into its private proxy instance. The producer side — the
// steering stage — accumulates packets into the shard's open arena and
// seals it onto the ring when it fills (or when the flush timer or a
// quiesce forces a partial batch out). Control messages are checked at
// batch boundaries only, so a shard's proxy state is touched by
// exactly one goroutine at a time and a control mutation never lands
// mid-batch.
type worker struct {
	idx      int
	prox     *proxy.Proxy
	ring     *ring // sealed batches, dispatcher → shard
	free     *ring // drained arenas, shard → dispatcher
	sink     Sink
	batchCap int

	// mu serializes the producer side: the open arena and ring pushes.
	// Dispatchers, the flush timer, and quiesce-time flushes all land
	// here, so the ring keeps a single logical producer even though
	// several goroutines may seal batches.
	mu   sync.Mutex
	open [][]byte // accumulating batch; nil refs after recycle

	// out accumulates the whole batch's interception output for one
	// sink call per batch. Reused across batches; refs cleared after
	// delivery.
	out [][]byte

	ctrl chan ctrlMsg
	wake chan struct{} // buffered(1): at-most-one pending wakeup
	stop chan struct{}
	done chan struct{}

	// stalls counts producer spins on a full ring (backpressure).
	stalls atomic.Int64

	// arenaAllocs counts fresh arena allocations — ramp-up only; in
	// steady state drained arenas recycle through the free ring and
	// this stays flat.
	arenaAllocs atomic.Int64

	// wakes counts wakeup signals actually sent — at most one per
	// empty→non-empty ring transition, i.e. at most one per batch.
	wakes atomic.Int64

	// processed counts packets fully intercepted.
	processed atomic.Int64
	// batches counts batches fully drained.
	batches atomic.Int64
	// progress advances on every unit of forward motion the shard
	// makes — batch pickup, each packet within a batch, each control
	// message — so the watchdog can tell a shard grinding through a
	// large in-flight batch from a wedged one.
	progress atomic.Int64
	// stalled is the watchdog's verdict: backlog with no progress over
	// a full observation interval. Cleared when progress resumes.
	stalled atomic.Bool
}

// wakeup nudges a possibly-parked worker; a full wake buffer means a
// wakeup is already pending, which is just as good.
func (w *worker) wakeup() {
	select {
	case w.wake <- struct{}{}:
		w.wakes.Add(1)
	default:
	}
}

// send enqueues a control message and wakes the worker.
func (w *worker) send(m ctrlMsg) {
	w.ctrl <- m
	w.wakeup()
}

// enqueue appends raw to the shard's open arena, sealing it onto the
// ring when it reaches the batch size.
func (w *worker) enqueue(raw []byte) {
	w.mu.Lock()
	w.open = append(w.open, raw)
	if len(w.open) >= w.batchCap {
		w.flushLocked()
	}
	w.mu.Unlock()
}

// enqueueBurst is enqueue for a run of packets already steered to this
// shard, paying for the producer lock once per run.
func (w *worker) enqueueBurst(raws [][]byte) {
	w.mu.Lock()
	for _, raw := range raws {
		w.open = append(w.open, raw)
		if len(w.open) >= w.batchCap {
			w.flushLocked()
		}
	}
	w.mu.Unlock()
}

// flush seals the open arena onto the ring even if partially filled —
// the timer and quiesce path ("a partial batch never waits forever").
func (w *worker) flush() {
	w.mu.Lock()
	w.flushLocked()
	w.mu.Unlock()
}

// flushLocked pushes the open arena as one ring slot and replaces it
// with a recycled (or, during ramp-up, fresh) arena. A full ring
// applies backpressure: the producer wakes the consumer and yields
// until a slot frees, so packets are delayed, never dropped. Caller
// holds mu.
func (w *worker) flushLocked() {
	if len(w.open) == 0 {
		return
	}
	for {
		ok, wasEmpty := w.ring.push(w.open)
		if ok {
			if wasEmpty {
				w.wakeup()
			}
			break
		}
		w.stalls.Add(1)
		w.wakeup()
		runtime.Gosched()
	}
	if a, ok := w.free.pop(); ok {
		w.open = a
	} else {
		w.arenaAllocs.Add(1)
		w.open = make([][]byte, 0, w.batchCap)
	}
}

// pending reports whether the open arena holds unsealed packets.
func (w *worker) pending() bool {
	w.mu.Lock()
	n := len(w.open)
	w.mu.Unlock()
	return n > 0
}

// run is the shard loop: control messages take priority over batches
// (a mutation broadcast quiesces within one batch even under sustained
// traffic, and never lands mid-batch), batches drain the ring, and an
// empty ring parks on the wake channel. On stop the ring is drained
// before exiting so no dispatched packet is silently lost.
func (w *worker) run() {
	defer close(w.done)
	for {
		select {
		case m := <-w.ctrl:
			w.runCtrl(m)
			continue
		default:
		}
		if b, ok := w.ring.pop(); ok {
			w.deliverBatch(b)
			continue
		}
		select {
		case m := <-w.ctrl:
			w.runCtrl(m)
		case <-w.wake:
		case <-w.stop:
			for {
				b, ok := w.ring.pop()
				if !ok {
					return
				}
				w.deliverBatch(b)
			}
		}
	}
}

func (w *worker) runCtrl(m ctrlMsg) {
	w.progress.Add(1)
	m.fn(w.prox)
	if m.done != nil {
		m.done.Done()
	}
}

// deliverBatch intercepts every packet of the batch, delivers the
// accumulated output in a single sink call, and recycles the arena.
// progress advances per packet, so the watchdog sees a shard grinding
// a large batch as live, not stalled.
func (w *worker) deliverBatch(b [][]byte) {
	w.progress.Add(1)
	for _, raw := range b {
		w.out = w.prox.InterceptAppend(raw, nil, w.out)
		w.processed.Add(1)
		w.progress.Add(1)
	}
	if w.sink != nil && len(w.out) > 0 {
		w.sink(w.idx, w.out)
	}
	for i := range w.out {
		w.out[i] = nil // drop packet refs; keep the arena
	}
	w.out = w.out[:0]
	for i := range b {
		b[i] = nil
	}
	w.batches.Add(1)
	w.free.push(b[:0]) // a full free ring drops the arena to the GC
}
