package dataplane

import (
	"sync"
	"sync/atomic"

	"repro/internal/proxy"
)

// ctrlMsg is one control-plane operation executed by the shard
// goroutine between packets. done, when non-nil, is signalled after fn
// returns, so a broadcast that waits on every shard's done is a full
// quiesce point; fire-and-forget messages (fault injection) leave it
// nil.
type ctrlMsg struct {
	fn   func(p *proxy.Proxy)
	done *sync.WaitGroup
}

// worker is one concurrent shard: a goroutine draining an SPSC ring
// into its private proxy instance. Control messages are checked at
// packet boundaries only, so a shard's proxy state is touched by
// exactly one goroutine at a time.
type worker struct {
	idx  int
	prox *proxy.Proxy
	ring *ring
	sink Sink

	ctrl chan ctrlMsg
	wake chan struct{} // buffered(1): at-most-one pending wakeup
	stop chan struct{}
	done chan struct{}

	// stalls counts dispatcher spins on a full ring (backpressure).
	stalls atomic.Int64

	// processed counts packets fully intercepted; the watchdog reads
	// it to distinguish a busy shard from a wedged one.
	processed atomic.Int64
	// stalled is the watchdog's verdict: backlog with no progress over
	// a full observation interval. Cleared when progress resumes.
	stalled atomic.Bool
}

// wakeup nudges a possibly-parked worker; a full wake buffer means a
// wakeup is already pending, which is just as good.
func (w *worker) wakeup() {
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

// send enqueues a control message and wakes the worker.
func (w *worker) send(m ctrlMsg) {
	w.ctrl <- m
	w.wakeup()
}

// run is the shard loop: control messages take priority over packets
// (a mutation broadcast quiesces in bounded time even under sustained
// traffic), packets drain the ring, and an empty ring parks on the
// wake channel. On stop the ring is drained before exiting so no
// dispatched packet is silently lost.
func (w *worker) run() {
	defer close(w.done)
	for {
		select {
		case m := <-w.ctrl:
			m.fn(w.prox)
			if m.done != nil {
				m.done.Done()
			}
			continue
		default:
		}
		if raw, ok := w.ring.pop(); ok {
			w.deliver(raw)
			continue
		}
		select {
		case m := <-w.ctrl:
			m.fn(w.prox)
			if m.done != nil {
				m.done.Done()
			}
		case <-w.wake:
		case <-w.stop:
			for {
				raw, ok := w.ring.pop()
				if !ok {
					return
				}
				w.deliver(raw)
			}
		}
	}
}

func (w *worker) deliver(raw []byte) {
	out := w.prox.Intercept(raw, nil)
	if w.sink != nil {
		w.sink(w.idx, out)
	}
	w.processed.Add(1)
}
