package dataplane

import (
	"testing"

	"repro/internal/filter"
	"repro/internal/ip"
)

// FuzzSteer is the satellite-4 gate: for ANY 4-tuple, both packet
// directions must map to the same shard at every shard count, and the
// assignment must be a pure function of the tuple (asserted separately
// by TestHashStable's pinned values — no map iteration or randomized
// hashing can leak in, since Hash touches nothing but its argument).
func FuzzSteer(f *testing.F) {
	f.Add(uint32(0x0b0b0a63), uint16(7), uint32(0x0b0b0a0a), uint16(5001), uint8(8))
	f.Add(uint32(0), uint16(0), uint32(0), uint16(0), uint8(1))
	f.Add(uint32(0xffffffff), uint16(0xffff), uint32(1), uint16(1), uint8(255))
	f.Fuzz(func(t *testing.T, src uint32, sp uint16, dst uint32, dp uint16, nRaw uint8) {
		k := filter.Key{SrcIP: ip.Addr(src), SrcPort: sp, DstIP: ip.Addr(dst), DstPort: dp}
		rev := k.Reverse()
		if Hash(k) != Hash(rev) {
			t.Fatalf("Hash(%v)=%#x != Hash(reverse)=%#x", k, Hash(k), Hash(rev))
		}
		n := int(nRaw)%64 + 1
		s := ShardOf(k, n)
		if s != ShardOf(rev, n) {
			t.Fatalf("ShardOf(%v,%d)=%d != reverse %d", k, n, s, ShardOf(rev, n))
		}
		if s < 0 || s >= n {
			t.Fatalf("ShardOf(%v,%d)=%d out of range", k, n, s)
		}
		// Idempotent: same tuple, same run, same answer.
		if ShardOf(k, n) != s {
			t.Fatalf("ShardOf not stable within process")
		}
	})
}
