package dataplane

import (
	"encoding/binary"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/filter"
	"repro/internal/filters"
	"repro/internal/ip"
	"repro/internal/tcp"
)

// buf packs i into a fresh 4-byte buffer.
func buf(i int) []byte {
	b := make([]byte, 4)
	binary.BigEndian.PutUint32(b, uint32(i))
	return b
}

// bval unpacks a buffer written by buf.
func bval(b []byte) int { return int(binary.BigEndian.Uint32(b)) }

// mkBatch builds one batch of n packets numbered from start.
func mkBatch(start, n int) [][]byte {
	b := make([][]byte, n)
	for i := range b {
		b[i] = buf(start + i)
	}
	return b
}

// TestRingOrderAndWrap cycles batches through several wraparounds of
// the slot boundary with a partially-full ring: every batch comes out
// intact, in order, including the batches that straddle the index wrap
// of the free-running head/tail counters.
func TestRingOrderAndWrap(t *testing.T) {
	r := newRing(8)
	if len(r.slots) != 8 {
		t.Fatalf("capacity = %d, want 8", len(r.slots))
	}
	next := 0
	for round := 0; round < 100; round++ {
		for i := 0; i < 5; i++ {
			// Varying batch sizes so slot contents never line up with
			// slot indices.
			n := 1 + (round+i)%4
			if ok, _ := r.push(mkBatch(round*1000+i*10, n)); !ok {
				t.Fatalf("push failed at depth %d", r.len())
			}
		}
		want := 0
		for i := 0; i < 5; i++ {
			b, ok := r.pop()
			if !ok {
				t.Fatal("pop on non-empty ring failed")
			}
			wantN := 1 + (round+i)%4
			if len(b) != wantN {
				t.Fatalf("round %d batch %d: %d packets, want %d", round, i, len(b), wantN)
			}
			for j, raw := range b {
				if got := bval(raw); got != round*1000+i*10+j {
					t.Fatalf("round %d batch %d pkt %d: got %d, want %d",
						round, i, j, got, round*1000+i*10+j)
				}
			}
			want += wantN
		}
		next += want
	}
	if _, ok := r.pop(); ok {
		t.Fatal("pop on empty ring succeeded")
	}
}

func TestRingFull(t *testing.T) {
	r := newRing(4)
	for i := 0; i < 4; i++ {
		if ok, _ := r.push(mkBatch(i, 2)); !ok {
			t.Fatalf("push %d on non-full ring failed", i)
		}
	}
	if ok, _ := r.push(mkBatch(9, 2)); ok {
		t.Fatal("push on full ring succeeded")
	}
	if _, ok := r.pop(); !ok {
		t.Fatal("pop failed")
	}
	if ok, _ := r.push(mkBatch(9, 2)); !ok {
		t.Fatal("push after pop failed")
	}
}

// TestRingWasEmpty pins the wakeup contract at the ring level: only
// the push that transitions empty→non-empty reports wasEmpty, i.e. at
// most one wakeup per batch and none while the consumer has work.
func TestRingWasEmpty(t *testing.T) {
	r := newRing(4)
	if _, wasEmpty := r.push(mkBatch(0, 3)); !wasEmpty {
		t.Fatal("first push must observe empty")
	}
	if _, wasEmpty := r.push(mkBatch(3, 3)); wasEmpty {
		t.Fatal("second push must not observe empty")
	}
	r.pop()
	r.pop()
	if _, wasEmpty := r.push(mkBatch(6, 3)); !wasEmpty {
		t.Fatal("push after drain must observe empty")
	}
}

// TestRingSPSC hammers the batched ring cross-goroutine under the race
// detector: every packet of every batch arrives exactly once, in
// order. Both sides yield when they can't make progress so the test
// passes promptly on a single-core machine.
func TestRingSPSC(t *testing.T) {
	const batches = 10000
	const per = 5
	r := newRing(64)
	done := make(chan int)
	go func() {
		next := 0
		for next < batches*per {
			b, ok := r.pop()
			if !ok {
				runtime.Gosched()
				continue
			}
			for _, raw := range b {
				if got := bval(raw); got != next {
					t.Errorf("consumer: got %d, want %d", got, next)
					done <- next
					return
				}
				next++
			}
		}
		done <- next
	}()
	for i := 0; i < batches; i++ {
		b := mkBatch(i*per, per)
		for {
			if ok, _ := r.push(b); ok {
				break
			}
			runtime.Gosched()
		}
	}
	if got := <-done; got != batches*per {
		t.Fatalf("consumer stopped at %d of %d", got, batches*per)
	}
}

// concurrentPlane builds a small concurrent plane for the in-package
// batch tests, collecting sink deliveries as (batch count, packet
// count) through the given counters.
func concurrentPlane(t *testing.T, shards, batch int, flush time.Duration, sink Sink) *Plane {
	t.Helper()
	cat := filter.NewCatalog()
	filters.RegisterAll(cat)
	pl := NewConcurrent(ConcurrentConfig{
		Shards: shards, Catalog: cat, Seed: 3, RingSize: 64,
		BatchSize: batch, FlushInterval: flush, Sink: sink,
	})
	t.Cleanup(pl.Close)
	return pl
}

// TestPartialBatchFlushOnTimer: with fewer packets than a batch and no
// Drain, the flush timer must seal the partial batch and the packets
// must reach the sink on their own.
func TestPartialBatchFlushOnTimer(t *testing.T) {
	got := make(chan int, 16)
	pl := concurrentPlane(t, 1, 64, 2*time.Millisecond, func(_ int, out [][]byte) {
		got <- len(out)
	})
	for i := 0; i < 5; i++ {
		pl.Dispatch(mkTestSeg(t, 1000, uint32(1+i)))
	}
	deadline := time.After(2 * time.Second)
	total := 0
	for total < 5 {
		select {
		case n := <-got:
			total += n
		case <-deadline:
			t.Fatalf("flush timer never delivered the partial batch (got %d of 5)", total)
		}
	}
	if total != 5 {
		t.Fatalf("delivered %d packets, want 5", total)
	}
}

// TestPartialBatchFlushOnQuiesce: with the flush timer disabled, a
// partial batch still moves at a quiesce boundary — any control
// broadcast (here a wildcard command) seals open arenas first.
func TestPartialBatchFlushOnQuiesce(t *testing.T) {
	var pkts atomic.Int64 // two shards deliver concurrently
	pl := concurrentPlane(t, 2, 64, -1, func(_ int, out [][]byte) {
		pkts.Add(int64(len(out)))
	})
	for i := 0; i < 6; i++ {
		pl.Dispatch(mkTestSeg(t, uint16(1000+i), 1))
	}
	// No Drain yet: the quiesce broadcast of a command must flush.
	pl.Command("load tcp")
	pl.Drain()
	if got := pkts.Load(); got != 6 {
		t.Fatalf("delivered %d packets after quiesce, want 6", got)
	}
	if got := pl.StatsSnapshot().Intercepted; got != 6 {
		t.Fatalf("intercepted %d, want 6", got)
	}
}

// TestPartialBatchFlushOnDrain: same, via Drain alone.
func TestPartialBatchFlushOnDrain(t *testing.T) {
	var pkts int
	pl := concurrentPlane(t, 1, 64, -1, func(_ int, out [][]byte) { pkts += len(out) })
	pl.Dispatch(mkTestSeg(t, 1000, 1))
	pl.Drain()
	if pkts != 1 {
		t.Fatalf("delivered %d packets after Drain, want 1", pkts)
	}
}

// TestWakeupOncePerBatch pins the amortization the batching exists
// for: while a shard is wedged (so the ring only fills), dispatching
// several full batches sends exactly one wakeup — the empty→non-empty
// transition of the first batch — not one per packet or per batch.
func TestWakeupOncePerBatch(t *testing.T) {
	const batch = 8
	pl := concurrentPlane(t, 1, batch, -1, nil)
	w := pl.workers[0]

	pl.InjectStall(0, 500*time.Millisecond)
	// Wait until the worker picked the stall up: the ctrl queue
	// empties when the shard goroutine enters the stall fn.
	deadline := time.Now().Add(2 * time.Second)
	for len(w.ctrl) > 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up the stall")
		}
		time.Sleep(time.Millisecond)
	}
	// The stall's own send() may have left a pending wake token; drain
	// it so the counter below measures only the batch pushes. The worker
	// is wedged in the stall fn, so nothing else touches wake.
	select {
	case <-w.wake:
	default:
	}
	base := w.wakes.Load()
	for i := 0; i < 3*batch; i++ {
		pl.Dispatch(mkTestSeg(t, 1000, uint32(1+i))) // one flow → one shard
	}
	if got := w.ring.len(); got != 3 {
		t.Fatalf("ring holds %d batches, want 3", got)
	}
	if got := w.wakes.Load() - base; got != 1 {
		t.Fatalf("dispatching 3 full batches sent %d wakeups, want exactly 1", got)
	}
	pl.Drain()
	if got := w.processed.Load(); got != 3*batch {
		t.Fatalf("processed %d packets, want %d", got, 3*batch)
	}
	if got := w.batches.Load(); got != 3 {
		t.Fatalf("drained %d batches, want 3", got)
	}
}

// TestArenaRecycling: in steady state the producer reuses arenas the
// worker has drained instead of allocating fresh ones per batch.
func TestArenaRecycling(t *testing.T) {
	const batch = 4
	pl := concurrentPlane(t, 1, batch, -1, nil)
	w := pl.workers[0]
	// Prime: a few rounds populate the free ring.
	for round := 0; round < 8; round++ {
		for i := 0; i < batch; i++ {
			pl.Dispatch(mkTestSeg(t, 1000, uint32(1+i)))
		}
		pl.Drain()
	}
	if w.free.len() == 0 {
		t.Fatal("no arenas recycled onto the free ring")
	}
	raws := make([][]byte, batch)
	for i := range raws {
		raws[i] = mkTestSeg(t, 1000, uint32(1+i))
	}
	base := w.arenaAllocs.Load()
	for round := 0; round < 100; round++ {
		for _, raw := range raws {
			pl.Dispatch(raw)
		}
		pl.Drain()
	}
	if got := w.arenaAllocs.Load() - base; got != 0 {
		t.Fatalf("steady state allocated %d fresh arenas, want 0 (recycled)", got)
	}
}

// mkTestSeg is a minimal valid TCP/IP datagram builder for in-package
// tests (the external-package tests have their own in plane_test.go).
func mkTestSeg(tb testing.TB, srcPort uint16, seq uint32) []byte {
	tb.Helper()
	src := ip.MustParseAddr("11.11.10.99")
	dst := ip.MustParseAddr("11.11.10.10")
	seg := tcp.Segment{SrcPort: srcPort, DstPort: 5001, Seq: seq, Ack: 1,
		Flags: tcp.FlagACK, Window: 65535}
	h := ip.Header{TTL: 64, Protocol: ip.ProtoTCP, Src: src, Dst: dst}
	raw, err := h.Marshal(seg.Marshal(src, dst))
	if err != nil {
		tb.Fatal(err)
	}
	return raw
}
