package dataplane

import (
	"encoding/binary"
	"runtime"
	"testing"
)

func TestRingOrderAndWrap(t *testing.T) {
	r := newRing(8)
	if len(r.slots) != 8 {
		t.Fatalf("capacity = %d, want 8", len(r.slots))
	}
	buf := func(i int) []byte {
		b := make([]byte, 4)
		binary.BigEndian.PutUint32(b, uint32(i))
		return b
	}
	next := 0
	// Cycle through several wraps with a partially-full ring.
	for round := 0; round < 100; round++ {
		for i := 0; i < 5; i++ {
			if ok, _ := r.push(buf(round*5 + i)); !ok {
				t.Fatalf("push failed at depth %d", r.len())
			}
		}
		for i := 0; i < 5; i++ {
			b, ok := r.pop()
			if !ok {
				t.Fatal("pop on non-empty ring failed")
			}
			if got := int(binary.BigEndian.Uint32(b)); got != next {
				t.Fatalf("pop order: got %d, want %d", got, next)
			}
			next++
		}
	}
	if _, ok := r.pop(); ok {
		t.Fatal("pop on empty ring succeeded")
	}
}

func TestRingFull(t *testing.T) {
	r := newRing(4)
	for i := 0; i < 4; i++ {
		if ok, _ := r.push([]byte{byte(i)}); !ok {
			t.Fatalf("push %d on non-full ring failed", i)
		}
	}
	if ok, _ := r.push([]byte{9}); ok {
		t.Fatal("push on full ring succeeded")
	}
	if _, ok := r.pop(); !ok {
		t.Fatal("pop failed")
	}
	if ok, _ := r.push([]byte{9}); !ok {
		t.Fatal("push after pop failed")
	}
}

func TestRingWasEmpty(t *testing.T) {
	r := newRing(4)
	if _, wasEmpty := r.push([]byte{1}); !wasEmpty {
		t.Fatal("first push must observe empty")
	}
	if _, wasEmpty := r.push([]byte{2}); wasEmpty {
		t.Fatal("second push must not observe empty")
	}
	r.pop()
	r.pop()
	if _, wasEmpty := r.push([]byte{3}); !wasEmpty {
		t.Fatal("push after drain must observe empty")
	}
}

// TestRingSPSC hammers the ring cross-goroutine under the race
// detector: every buffer arrives exactly once, in order. Both sides
// yield when they can't make progress so the test passes promptly on
// a single-core machine.
func TestRingSPSC(t *testing.T) {
	const total = 50000
	r := newRing(64)
	done := make(chan int)
	go func() {
		next := 0
		for next < total {
			b, ok := r.pop()
			if !ok {
				runtime.Gosched()
				continue
			}
			if got := int(binary.BigEndian.Uint32(b)); got != next {
				t.Errorf("consumer: got %d, want %d", got, next)
				break
			}
			next++
		}
		done <- next
	}()
	b := make([]byte, 4)
	for i := 0; i < total; i++ {
		binary.BigEndian.PutUint32(b, uint32(i))
		c := append([]byte(nil), b...)
		for {
			if ok, _ := r.push(c); ok {
				break
			}
			runtime.Gosched()
		}
	}
	if got := <-done; got != total {
		t.Fatalf("consumer stopped at %d of %d", got, total)
	}
}
