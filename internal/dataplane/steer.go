// Package dataplane is the sharded flow-steering execution layer of
// the Service Proxy: a dispatcher hashes each packet's stream key onto
// one of N shards, and each shard is a complete single-writer proxy
// instance (its own slice of the stream registry, filter queues,
// negative-match cache, and Stats). Both directions of a stream land
// on the same shard, so per-stream packet order — the property TCP
// filters depend on — is preserved while unrelated streams proceed in
// parallel.
//
// The plane runs in one of two modes:
//
//   - Inline (NewInline): steering and interception run synchronously
//     on the caller's goroutine, inside the deterministic simulator.
//     With one shard this is byte-for-byte today's proxy; with more it
//     partitions state while keeping scheduler-ordered execution.
//   - Concurrent (NewConcurrent): one goroutine per shard behind a
//     bounded SPSC ring, for multi-core throughput outside the
//     deterministic simulator (benchmarks, stress tests, future
//     kernel-bypass backends).
package dataplane

import "repro/internal/filter"

// FNV-1a constants, written out so shard placement can never pick up a
// randomized or platform-dependent hash: the same 4-tuple must land on
// the same shard in every process, every run.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Hash is the direction-normalized steering hash: both directions of a
// stream (k and k.Reverse()) hash identically. Endpoints are reduced
// to 48-bit (IP, port) values, ordered canonically (smaller first),
// and fed byte-by-byte through FNV-1a.
func Hash(k filter.Key) uint64 {
	a := uint64(k.SrcIP)<<16 | uint64(k.SrcPort)
	b := uint64(k.DstIP)<<16 | uint64(k.DstPort)
	if a > b {
		a, b = b, a
	}
	h := uint64(fnvOffset64)
	for shift := 40; shift >= 0; shift -= 8 {
		h = (h ^ (a >> uint(shift) & 0xff)) * fnvPrime64
	}
	for shift := 40; shift >= 0; shift -= 8 {
		h = (h ^ (b >> uint(shift) & 0xff)) * fnvPrime64
	}
	return h
}

// ShardOf maps a stream key to its owning shard index in [0, n).
func ShardOf(k filter.Key, n int) int {
	if n <= 1 {
		return 0
	}
	return int(Hash(k) % uint64(n))
}

// steer is the shared steering step of every packet entry point
// (inline Hook, Dispatch, DispatchBurst): extract the stream key from
// the raw bytes in place and hash it to the owning shard. Packets that
// fail extraction go to shard 0.
func (pl *Plane) steer(raw []byte) int {
	if pl.n == 1 {
		return 0
	}
	if k, ok := filter.SteerKey(raw); ok {
		return ShardOf(k, pl.n)
	}
	return 0
}
