package dataplane

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cmdspec"
	"repro/internal/filter"
	"repro/internal/flowlog"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/proxy"
	"repro/internal/sim"
)

// Sink receives each shard's interception output in concurrent mode,
// one call per drained batch: out holds the surviving datagrams of
// every packet in the batch, in interception order. The slice is the
// shard's reusable delivery buffer — valid only until that shard's
// next batch — so the sink must consume (forward, count, copy)
// synchronously, exactly like netsim's hook contract. The referenced
// buffers themselves are stable (see proxy.InterceptAppend).
type Sink func(shard int, out [][]byte)

// DefaultBatchSize is the number of packets accumulated per ring slot
// when ConcurrentConfig.BatchSize is zero. Batching amortizes the
// per-slot handoff (atomics, empty-transition wakeup, consumer
// park/unpark) over the batch, which is what lets the concurrent
// plane scale with shards instead of drowning in per-packet signaling.
const DefaultBatchSize = 64

// DefaultFlushInterval bounds how long a partial batch may sit in a
// shard's open arena before the flush timer seals it, keeping latency
// deterministic under trickle traffic.
const DefaultFlushInterval = time.Millisecond

// Plane is the sharded data plane: N proxy shards behind a
// flow-steering dispatcher, plus the epoch/quiesce control plane that
// keeps the telnet interface (and Kati behind it) working unchanged.
type Plane struct {
	shards  []*proxy.Proxy
	workers []*worker // nil in inline mode
	n       int

	// bus receives the single "proxy/command" event per control line
	// when the plane (rather than a lone shard) routes commands.
	bus *obs.Bus

	// epoch counts applied control-plane mutations. A reader that
	// observes epoch E is guaranteed every shard has applied mutations
	// 1..E: the counter is bumped only after the quiesce barrier.
	epoch atomic.Uint64

	// flushStop/flushDone bracket the flush-timer goroutine that seals
	// aged partial batches (concurrent mode, FlushInterval >= 0).
	flushStop chan struct{}
	flushDone chan struct{}

	// watchdogTrips counts shard-stall detections (concurrent mode).
	watchdogTrips atomic.Int64

	// ext holds runtime-registered extension commands (e.g. the policy
	// engine's "policy"), dispatched ahead of shard routing so they
	// work at every shard count. Extension names are appended to the
	// plane's help line.
	ext map[string]func(args []string) string

	closed bool
}

// NewInline builds a plane whose steering and interception run
// synchronously on the caller's goroutine — inside the deterministic
// simulator. It installs itself as node's packet hook. With shards=1
// the plane is a transparent wrapper over today's proxy: same hook,
// same events, same bytes.
func NewInline(node *netsim.Node, catalog *filter.Catalog, shards int) *Plane {
	if shards < 1 {
		shards = 1
	}
	pl := &Plane{n: shards}
	for i := 0; i < shards; i++ {
		pl.shards = append(pl.shards, proxy.NewDetached(node, catalog))
	}
	node.SetHook(pl.Hook)
	return pl
}

// ConcurrentConfig shapes NewConcurrent.
type ConcurrentConfig struct {
	Shards  int
	Catalog *filter.Catalog
	// Seed seeds each shard's private scheduler (shard i gets
	// Seed + i), so filters drawing randomness stay single-writer.
	Seed int64
	// RingSize bounds each shard's SPSC ring in batch slots (rounded
	// up to a power of two; default 1024). The ring's capacity in
	// packets is RingSize × BatchSize.
	RingSize int
	// BatchSize is the number of packets accumulated per ring slot
	// (DefaultBatchSize when 0). 1 degenerates to the per-packet
	// handoff of the pre-batching plane — every packet pays the full
	// slot cost — and exists for comparison benchmarks and tests.
	BatchSize int
	// FlushInterval bounds how long a partial batch may wait in a
	// shard's open arena before the flush timer seals it
	// (DefaultFlushInterval when 0). Negative disables the timer:
	// partial batches then move only at size, quiesce, Drain, or
	// Close boundaries — tests use this for deterministic batching.
	FlushInterval time.Duration
	// Sink receives interception output; nil discards it.
	Sink Sink
}

// NewConcurrent builds a plane with one goroutine per shard, each fed
// whole batches through a bounded SPSC ring. Each shard owns a private
// scheduler and node (filter timers never fire — this mode is for
// throughput paths and stress tests, not the deterministic
// experiments; see DESIGN.md).
func NewConcurrent(cfg ConcurrentConfig) *Plane {
	n := cfg.Shards
	if n < 1 {
		n = 1
	}
	size := cfg.RingSize
	if size <= 0 {
		size = 1024
	}
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = DefaultBatchSize
	}
	pl := &Plane{n: n}
	for i := 0; i < n; i++ {
		s := sim.NewScheduler(cfg.Seed + int64(i))
		net := netsim.New(s)
		node := net.AddNode(fmt.Sprintf("shard%d", i))
		w := &worker{
			idx:      i,
			prox:     proxy.NewDetached(node, cfg.Catalog),
			ring:     newRing(size),
			free:     newRing(size + 2), // every in-flight arena fits: ring slots + open + draining
			sink:     cfg.Sink,
			batchCap: batch,
			open:     make([][]byte, 0, batch),
			ctrl:     make(chan ctrlMsg, 4),
			wake:     make(chan struct{}, 1),
			stop:     make(chan struct{}),
			done:     make(chan struct{}),
		}
		pl.shards = append(pl.shards, w.prox)
		pl.workers = append(pl.workers, w)
	}
	for _, w := range pl.workers {
		go w.run()
	}
	interval := cfg.FlushInterval
	if interval == 0 {
		interval = DefaultFlushInterval
	}
	if interval > 0 {
		pl.flushStop = make(chan struct{})
		pl.flushDone = make(chan struct{})
		go pl.flushLoop(interval)
	}
	return pl
}

// flushLoop is the partial-batch flush timer: every interval it seals
// any open arena holding packets, bounding how long a packet can wait
// for its batch to fill under trickle traffic.
func (pl *Plane) flushLoop(interval time.Duration) {
	defer close(pl.flushDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-pl.flushStop:
			return
		case <-t.C:
			for _, w := range pl.workers {
				if w.pending() {
					w.flush()
				}
			}
		}
	}
}

// N returns the shard count.
func (pl *Plane) N() int { return pl.n }

// Epoch returns the number of applied control-plane mutations.
func (pl *Plane) Epoch() uint64 { return pl.epoch.Load() }

// Shard exposes shard i's proxy. In concurrent mode only its atomic
// surface (Stats, QueueCount, RegistrationCount) is safe to touch from
// outside the shard goroutine.
func (pl *Plane) Shard(i int) *proxy.Proxy { return pl.shards[i] }

func (pl *Plane) inline() bool { return pl.workers == nil }

// --- packet path -------------------------------------------------------------

// Hook is the inline-mode node packet hook: steer, then run the owning
// shard's interception synchronously. Allocation-free: SteerKey reads
// the raw bytes in place and the shard reuses its emit list.
func (pl *Plane) Hook(raw []byte, in *netsim.Iface) [][]byte {
	if pl.n == 1 {
		return pl.shards[0].Intercept(raw, in)
	}
	return pl.shards[pl.steer(raw)].Intercept(raw, in)
}

// Dispatch steers raw into its shard's open batch arena (concurrent
// mode). The packet reaches the shard when the arena fills to the
// batch size, the flush timer fires, or a quiesce/Drain seals it. A
// full ring applies backpressure: the producer wakes the consumer and
// yields until a slot frees, so packets are delayed, never dropped.
func (pl *Plane) Dispatch(raw []byte) {
	pl.workers[pl.steer(raw)].enqueue(raw)
}

// DispatchBurst steers a burst of packets, paying the per-shard
// producer lock once per run of consecutive same-shard packets — the
// receive-burst idiom of DPDK-style planes, where packets arrive in
// bursts that often share flows.
func (pl *Plane) DispatchBurst(raws [][]byte) {
	if len(raws) == 0 {
		return
	}
	start, cur := 0, pl.steer(raws[0])
	for i := 1; i < len(raws); i++ {
		if si := pl.steer(raws[i]); si != cur {
			pl.workers[cur].enqueueBurst(raws[start:i])
			start, cur = i, si
		}
	}
	pl.workers[cur].enqueueBurst(raws[start:])
}

// Flush seals every shard's open partial batch onto its ring. Drain
// and the quiesce broadcast call it implicitly; tests running with the
// flush timer disabled call it directly.
func (pl *Plane) Flush() {
	if pl.inline() {
		return
	}
	for _, w := range pl.workers {
		w.flush()
	}
}

// Drain blocks until every open batch is sealed, every ring is empty,
// and every shard has passed a batch boundary — all packets dispatched
// before the call have been fully processed and delivered. The caller
// must not dispatch concurrently.
func (pl *Plane) Drain() {
	if pl.inline() {
		return
	}
	for _, w := range pl.workers {
		w.flush()
		for w.ring.len() > 0 {
			w.wakeup()
			runtime.Gosched()
		}
	}
	pl.do(func(int, *proxy.Proxy) {}) // quiesce: in-flight batch completes
}

// Stalls returns the total dispatcher spins on full rings — a
// backpressure indicator for sizing RingSize.
func (pl *Plane) Stalls() int64 {
	var t int64
	for _, w := range pl.workers {
		t += w.stalls.Load()
	}
	return t
}

// Batches returns the total batches drained across shards.
func (pl *Plane) Batches() int64 {
	var t int64
	for _, w := range pl.workers {
		t += w.batches.Load()
	}
	return t
}

// Wakeups returns the total wakeup signals sent to shard goroutines —
// at most one per batch by construction. Batches()/Wakeups() is the
// handoff amortization factor the batching exists to maximize.
func (pl *Plane) Wakeups() int64 {
	var t int64
	for _, w := range pl.workers {
		t += w.wakes.Load()
	}
	return t
}

// Close stops the shard goroutines after sealing open batches and
// draining the rings. The plane must not be used afterwards. No-op in
// inline mode.
func (pl *Plane) Close() {
	if pl.inline() || pl.closed {
		return
	}
	pl.closed = true
	if pl.flushStop != nil {
		// Stop the flush timer first: a flush racing the workers'
		// stop-drain could seal a batch after its ring was drained.
		close(pl.flushStop)
		<-pl.flushDone
	}
	for _, w := range pl.workers {
		w.flush()
		close(w.stop)
		w.wakeup()
	}
	for _, w := range pl.workers {
		<-w.done
	}
}

// --- shard watchdog ----------------------------------------------------------

// StartWatchdog launches a wall-clock monitor over the concurrent
// shards: a shard that holds backlog (ring batches or queued control
// messages) across a full interval without making any progress is
// flagged stalled, counted in WatchdogTrips, and nudged awake — which
// also heals the one benign cause, a lost wakeup. Progress is the
// worker's fine-grained counter — batch pickups, every packet inside a
// batch, control executions — not completed batches: a shard grinding
// through a large in-flight batch advances it packet by packet and is
// never spuriously flagged just because no whole batch finished within
// the interval. The flag clears on its own when the shard makes
// progress again. Inline planes run on the caller's goroutine and
// cannot stall independently, so the watchdog is a no-op there.
// Returns a stop function (idempotent).
func (pl *Plane) StartWatchdog(interval time.Duration) (stop func()) {
	if pl.inline() {
		return func() {}
	}
	if interval <= 0 {
		interval = time.Second
	}
	stopCh := make(chan struct{})
	var once sync.Once
	last := make([]int64, len(pl.workers))
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stopCh:
				return
			case <-t.C:
				for i, w := range pl.workers {
					p := w.progress.Load()
					backlog := w.ring.len() > 0 || len(w.ctrl) > 0
					if backlog && p == last[i] {
						if !w.stalled.Swap(true) {
							pl.watchdogTrips.Add(1)
						}
						w.wakeup()
					} else if p != last[i] || !backlog {
						w.stalled.Store(false)
					}
					last[i] = p
				}
			}
		}
	}()
	return func() { once.Do(func() { close(stopCh) }) }
}

// StalledShards returns the indices currently flagged by the watchdog,
// in order. Empty on a healthy (or inline) plane.
func (pl *Plane) StalledShards() []int {
	var out []int
	for i, w := range pl.workers {
		if w.stalled.Load() {
			out = append(out, i)
		}
	}
	return out
}

// WatchdogTrips returns the cumulative number of stall detections.
func (pl *Plane) WatchdogTrips() int64 { return pl.watchdogTrips.Load() }

// InjectStall wedges shard i's goroutine for d at its next batch
// boundary — the fault-injection primitive the watchdog tests and the
// chaos harness use. Fire-and-forget: the caller is not blocked for
// the stall's duration. No-op in inline mode.
func (pl *Plane) InjectStall(i int, d time.Duration) {
	if pl.inline() {
		return
	}
	pl.workers[i].send(ctrlMsg{fn: func(*proxy.Proxy) { time.Sleep(d) }})
}

// Processed returns shard i's count of fully intercepted packets.
func (pl *Plane) Processed(i int) int64 {
	if pl.inline() {
		return pl.shards[i].Stats.Intercepted.Load()
	}
	return pl.workers[i].processed.Load()
}

// --- epoch/quiesce control protocol ------------------------------------------

// do runs fn against every shard's proxy and returns when all have
// finished. Inline: direct calls in shard order. Concurrent: each
// shard's open partial batch is sealed first, then fn is executed by
// the shard goroutine at a batch boundary — do is both the mutation
// broadcast and the quiesce barrier, and a mutation can never land
// mid-batch. The barrier is bounded: a worker reaches the next batch
// boundary within at most one batch of packets. fn runs concurrently
// across shards; it must not share unsynchronized state.
func (pl *Plane) do(fn func(i int, p *proxy.Proxy)) {
	if pl.inline() {
		for i, s := range pl.shards {
			fn(i, s)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(pl.workers))
	for i, w := range pl.workers {
		i := i
		w.flush() // quiesce seals partial batches: no packet waits out a mutation in an open arena
		w.send(ctrlMsg{fn: func(p *proxy.Proxy) { fn(i, p) }, done: &wg})
	}
	wg.Wait()
}

// doShard is do for a single shard.
func (pl *Plane) doShard(i int, fn func(p *proxy.Proxy)) {
	if pl.inline() {
		fn(pl.shards[i])
		return
	}
	var wg sync.WaitGroup
	wg.Add(1)
	pl.workers[i].flush()
	pl.workers[i].send(ctrlMsg{fn: fn, done: &wg})
	wg.Wait()
}

// mutate is do plus an epoch bump after the barrier.
func (pl *Plane) mutate(fn func(i int, p *proxy.Proxy)) {
	pl.do(fn)
	pl.epoch.Add(1)
}

// --- control plane -----------------------------------------------------------

// SetObs attaches the deployment bus and metrics registry to the plane
// and every shard (inline mode only: shards in concurrent mode run on
// private schedulers and must not share a scheduler-bound bus).
func (pl *Plane) SetObs(b *obs.Bus, r *obs.Registry) {
	if !pl.inline() {
		panic("dataplane: SetObs is inline-only (concurrent shards own private schedulers)")
	}
	pl.bus = b
	for _, s := range pl.shards {
		s.SetObs(b, r)
	}
}

// SetMetricSource forwards the execution-environment variable source
// to every shard (filters are EEM clients, thesis ch. 6).
func (pl *Plane) SetMetricSource(fn func(name string, index int) (float64, bool)) {
	pl.do(func(_ int, p *proxy.Proxy) { p.SetMetricSource(fn) })
}

// SetLog forwards the diagnostic log sink to every shard.
func (pl *Plane) SetLog(fn func(string)) {
	pl.do(func(_ int, p *proxy.Proxy) { p.Log = fn })
}

// FlushMatchCache recompiles every shard's registry match program. The
// broadcast rides the quiesce/epoch barrier like any other mutation,
// so each shard swaps its program between batches — no packet can
// observe a half-built program, and once the call returns every shard
// answers from a program at least as new as the current registry.
func (pl *Plane) FlushMatchCache() {
	pl.do(func(_ int, p *proxy.Proxy) { p.FlushMatchCache() })
}

// StatsSnapshot returns the exact merged counters across shards (each
// counter is a single-writer atomic).
func (pl *Plane) StatsSnapshot() proxy.StatsSnapshot {
	var t proxy.StatsSnapshot
	for _, s := range pl.shards {
		t = t.Merge(s.Stats.Snapshot())
	}
	return t
}

// RegisterMetrics exposes the plane's counters. With one inline shard
// it delegates to the proxy so the "stats" table is byte-identical to
// the unsharded deployment; otherwise it registers merged aggregates
// plus per-shard breakdowns and the control epoch.
func (pl *Plane) RegisterMetrics(r *obs.Registry, prefix string) {
	if pl.n == 1 && pl.inline() {
		pl.shards[0].RegisterMetrics(r, prefix)
		return
	}
	r.Counter(prefix+".intercepted", func() int64 { return pl.StatsSnapshot().Intercepted })
	r.Counter(prefix+".filtered", func() int64 { return pl.StatsSnapshot().Filtered })
	r.Counter(prefix+".dropped_by_filter", func() int64 { return pl.StatsSnapshot().DroppedByFilter })
	r.Counter(prefix+".injected", func() int64 { return pl.StatsSnapshot().Injected })
	r.Counter(prefix+".reinjected", func() int64 { return pl.StatsSnapshot().Reinjected })
	r.Counter(prefix+".registry_misses", func() int64 { return pl.StatsSnapshot().RegistryMisses })
	r.Counter(prefix+".registry_rebuilds", func() int64 { return pl.StatsSnapshot().RegistryRebuilds })
	r.Gauge(prefix+".flow.active", func() float64 { return float64(pl.FlowStats().Active) })
	r.Counter(prefix+".flow.opened", func() int64 { return pl.FlowStats().Opened })
	r.Counter(prefix+".flow.closed", func() int64 { return pl.FlowStats().Closed })
	r.Counter(prefix+".flow.evicted", func() int64 { return pl.FlowStats().Evicted })
	r.Counter(prefix+".flow.retrans", func() int64 { return pl.FlowStats().Retrans })
	r.Counter(prefix+".flow.zero_win", func() int64 { return pl.FlowStats().ZeroWin })
	r.Gauge(prefix+".streams", func() float64 {
		var t int64
		for _, s := range pl.shards {
			t += s.QueueCount()
		}
		return float64(t)
	})
	r.Gauge(prefix+".registrations", func() float64 {
		var t int64
		for _, s := range pl.shards {
			t += s.RegistrationCount()
		}
		return float64(t)
	})
	r.Gauge(prefix+".shards", func() float64 { return float64(pl.n) })
	r.Counter(prefix+".epoch", func() int64 { return int64(pl.Epoch()) })
	if !pl.inline() {
		r.Counter(prefix+".watchdog_trips", func() int64 { return pl.WatchdogTrips() })
		r.Gauge(prefix+".stalled_shards", func() float64 { return float64(len(pl.StalledShards())) })
		r.Counter(prefix+".batches", func() int64 { return pl.Batches() })
		r.Counter(prefix+".wakeups", func() int64 { return pl.Wakeups() })
		r.Counter(prefix+".ring_stalls", func() int64 { return pl.Stalls() })
	}
	for i, s := range pl.shards {
		s := s
		sp := fmt.Sprintf("%s.shard%d", prefix, i)
		r.Counter(sp+".intercepted", func() int64 { return s.Stats.Intercepted.Load() })
		r.Counter(sp+".filtered", func() int64 { return s.Stats.Filtered.Load() })
		r.Gauge(sp+".streams", func() float64 { return float64(s.QueueCount()) })
	}
}

// RegisterCommand installs an extension command on the plane's control
// surface: lines starting with name are handed to fn (arguments only,
// command word stripped) instead of the shard grammar, and name is
// appended to the plane's help line. Extensions let subsystems that
// live above the shards — the policy engine above all — speak the same
// telnet dialect as everything else.
func (pl *Plane) RegisterCommand(name string, fn func(args []string) string) {
	if pl.ext == nil {
		pl.ext = make(map[string]func(args []string) string)
	}
	pl.ext[name] = fn
}

// extNames lists registered extension commands, sorted.
func (pl *Plane) extNames() []string {
	out := make([]string, 0, len(pl.ext))
	for n := range pl.ext {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Command implements proxy.Commander over the sharded plane. Extension
// commands dispatch first (they exist at the plane, not on any shard).
// With one inline shard every remaining line is delegated verbatim —
// today's behavior, event for event. Otherwise the plane emits a
// single "proxy/command" event and routes by the shared cmdspec table:
// exact-key add/delete go to the owning shard, registry/service
// mutations broadcast under the quiesce protocol, report/streams merge
// per-shard state, and shared-state queries (stats, events, filters,
// services, help) answer from shard 0.
func (pl *Plane) Command(line string) string {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return ""
	}
	if fn, ok := pl.ext[fields[0]]; ok {
		pl.bus.Emit("proxy", "command", fields[0], obs.F("args", len(fields)-1))
		if spec, known := cmdspec.Lookup(fields[0]); known && !spec.ArityOK(len(fields)-1) {
			return spec.UsageError()
		}
		return fn(fields[1:])
	}
	if fields[0] == "help" && len(pl.ext) > 0 {
		// Answer help at the plane so extension commands are listed
		// regardless of shard count.
		pl.bus.Emit("proxy", "command", fields[0], obs.F("args", len(fields)-1))
		return cmdspec.HelpLine(pl.extNames()...)
	}
	if pl.n == 1 && pl.inline() {
		return pl.shards[0].Command(line)
	}
	pl.bus.Emit("proxy", "command", fields[0], obs.F("args", len(fields)-1))
	route := cmdspec.RouteShard0
	if spec, known := cmdspec.Lookup(fields[0]); known {
		route = spec.Route
	}
	switch route {
	case cmdspec.RouteKeyed:
		if len(fields) >= 6 {
			if k, err := filter.ParseKey(fields[2:6]); err == nil && !k.IsWild() {
				// Exact key: only the owning shard can ever see matching
				// packets (both directions steer identically), so route
				// there instead of building ghost queues on every shard.
				var out string
				pl.doShard(ShardOf(k, pl.n), func(p *proxy.Proxy) { out = p.Exec(line) })
				pl.epoch.Add(1)
				return out
			}
		}
		return pl.broadcast(line)
	case cmdspec.RouteBroadcast:
		return pl.broadcast(line)
	case cmdspec.RouteMergedReport:
		name := ""
		if len(fields) > 1 {
			name = fields[1]
		}
		return pl.mergedReport(name)
	case cmdspec.RouteMergedStreams:
		return pl.mergedStreams()
	case cmdspec.RouteMergedFlows:
		n := flowlog.DefaultShow
		if len(fields) > 1 {
			if _, err := fmt.Sscanf(fields[1], "%d", &n); err != nil {
				spec, _ := cmdspec.Lookup("flows")
				return spec.UsageError()
			}
		}
		return pl.mergedFlows(n)
	default:
		// Identical shared state on every shard — answer from shard 0.
		var out string
		pl.doShard(0, func(p *proxy.Proxy) { out = p.Exec(line) })
		return out
	}
}

// --- typed control surface ----------------------------------------------------
//
// The policy engine mutates filter state through these methods rather
// than rendered command lines, so its rollback logic can branch on the
// typed sentinels (proxy.ErrNotLoaded, proxy.ErrAlreadyLoaded,
// proxy.ErrNoSuchStream, filter.ErrUnknownFilter). Routing matches
// Command exactly; no "proxy/command" event is emitted — the engine
// emits its own policy/* transitions instead.

// LoadFilter loads a filter library on every shard.
func (pl *Plane) LoadFilter(libName string) (string, error) {
	if pl.n == 1 && pl.inline() {
		return pl.shards[0].LoadFilter(libName)
	}
	names := make([]string, pl.n)
	errs := make([]error, pl.n)
	pl.mutate(func(i int, p *proxy.Proxy) { names[i], errs[i] = p.LoadFilter(libName) })
	for _, err := range errs {
		if err != nil {
			return "", err
		}
	}
	return names[0], nil
}

// UnloadFilter unloads a filter library from every shard.
func (pl *Plane) UnloadFilter(name string) error {
	if pl.n == 1 && pl.inline() {
		return pl.shards[0].UnloadFilter(name)
	}
	errs := make([]error, pl.n)
	pl.mutate(func(i int, p *proxy.Proxy) { errs[i] = p.UnloadFilter(name) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// AddFilter binds a loaded filter (or defined service) to a stream
// key: exact keys route to the owning shard, wild-cards broadcast.
func (pl *Plane) AddFilter(name string, k filter.Key, args []string) error {
	if pl.n == 1 && pl.inline() {
		return pl.shards[0].AddFilter(name, k, args)
	}
	if !k.IsWild() {
		var err error
		pl.doShard(ShardOf(k, pl.n), func(p *proxy.Proxy) { err = p.AddFilter(name, k, args) })
		pl.epoch.Add(1)
		return err
	}
	errs := make([]error, pl.n)
	pl.mutate(func(i int, p *proxy.Proxy) { errs[i] = p.AddFilter(name, k, args) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// DeleteFilter removes a filter's registration and attachments for a
// stream key, routed like AddFilter.
func (pl *Plane) DeleteFilter(name string, k filter.Key) error {
	if pl.n == 1 && pl.inline() {
		return pl.shards[0].DeleteFilter(name, k)
	}
	if !k.IsWild() {
		var err error
		pl.doShard(ShardOf(k, pl.n), func(p *proxy.Proxy) { err = p.DeleteFilter(name, k) })
		pl.epoch.Add(1)
		return err
	}
	errs := make([]error, pl.n)
	pl.mutate(func(i int, p *proxy.Proxy) { errs[i] = p.DeleteFilter(name, k) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// broadcast Execs line on every shard under the quiesce barrier and
// returns shard 0's output (shards are deterministic replicas for
// registry/pool/service state, so outputs agree; any error wins).
func (pl *Plane) broadcast(line string) string {
	outs := make([]string, pl.n)
	pl.mutate(func(i int, p *proxy.Proxy) { outs[i] = p.Exec(line) })
	for _, o := range outs {
		if strings.HasPrefix(o, "error") {
			return o
		}
	}
	return outs[0]
}

// mergedReport gathers ReportData from every shard and renders one
// listing (keys are sorted and deduplicated by the renderer, so the
// shard partitioning is invisible).
func (pl *Plane) mergedReport(name string) string {
	type res struct {
		names []string
		per   map[string][]string
		err   error
	}
	rs := make([]res, pl.n)
	pl.do(func(i int, p *proxy.Proxy) {
		rs[i].names, rs[i].per, rs[i].err = p.ReportData(name)
	})
	for _, r := range rs {
		if r.err != nil {
			return fmt.Sprintf("error: %v\n", r.err)
		}
	}
	merged := make(map[string][]string)
	for _, r := range rs {
		for f, keys := range r.per {
			merged[f] = append(merged[f], keys...)
		}
	}
	return proxy.RenderReport(rs[0].names, merged)
}

// Streams returns the merged per-stream accounting across shards,
// sorted by key.
func (pl *Plane) Streams() []proxy.StreamInfo {
	rs := make([][]proxy.StreamInfo, pl.n)
	pl.do(func(i int, p *proxy.Proxy) { rs[i] = p.Streams() })
	var out []proxy.StreamInfo
	for _, r := range rs {
		out = append(out, r...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key.String() < out[j].Key.String() })
	return out
}

func (pl *Plane) mergedStreams() string {
	var b strings.Builder
	for _, si := range pl.Streams() {
		fmt.Fprintf(&b, "%s\t[%s]\t%d pkts %d bytes\n",
			si.Key, strings.Join(si.Filters, ","), si.Packets, si.Bytes)
	}
	return b.String()
}

// FlowRecords gathers every shard's flow records under the quiesce
// barrier. Steering is direction-normalized, so each flow lives whole
// on exactly one shard: concatenation is the complete merge, and the
// renderer's total order makes the output independent of the layout.
func (pl *Plane) FlowRecords() []flowlog.Record {
	rs := make([][]flowlog.Record, pl.n)
	pl.do(func(i int, p *proxy.Proxy) { rs[i] = p.AppendFlowRecords(nil) })
	var out []flowlog.Record
	for _, r := range rs {
		out = append(out, r...)
	}
	return out
}

// FlowStats returns the merged flow-log counters across shards.
func (pl *Plane) FlowStats() flowlog.StatsSnapshot {
	var t flowlog.StatsSnapshot
	for _, s := range pl.shards {
		t = t.Merge(s.FlowStats())
	}
	return t
}

func (pl *Plane) mergedFlows(n int) string {
	return flowlog.Render(pl.FlowRecords(), n)
}

var _ proxy.Commander = (*Plane)(nil)
