package dataplane_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/dataplane"
	"repro/internal/filter"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// detFilter is a deterministic per-stream transform for the sharding
// property test: it drops every 3rd data packet of its stream and
// truncates the others by one byte. Its behavior depends only on the
// per-stream packet sequence — never on time, randomness, or other
// streams — so any shard layout that preserves per-stream order must
// reproduce the N=1 output exactly.
type detFilter struct{}

func (*detFilter) Name() string              { return "det" }
func (*detFilter) Priority() filter.Priority { return filter.Low }
func (*detFilter) Description() string       { return "deterministic drop/truncate (test)" }

func (*detFilter) New(env filter.Env, k filter.Key, args []string) error {
	count := 0
	_, err := env.Attach(k, filter.Hooks{
		Filter: "det", Priority: filter.Low,
		Out: func(pkt *filter.Packet) {
			if pkt.Dropped() || pkt.TCP == nil || len(pkt.TCP.Payload) == 0 {
				return
			}
			count++
			if count%3 == 0 {
				pkt.Drop()
				return
			}
			pkt.TCP.Payload = pkt.TCP.Payload[:len(pkt.TCP.Payload)-1]
			pkt.MarkDirty()
		},
	})
	return err
}

// buildTrace makes an interleaved packet trace over flows distinct
// streams. Buffers are never reused: each dispatch owns its bytes.
func buildTrace(t testing.TB, flows, perFlow int) [][]byte {
	t.Helper()
	type cursor struct {
		port uint16
		seq  uint32
		sent int
	}
	cur := make([]*cursor, flows)
	for i := range cur {
		cur[i] = &cursor{port: uint16(1000 + i), seq: 1}
	}
	rng := rand.New(rand.NewSource(42))
	var trace [][]byte
	for len(trace) < flows*perFlow {
		c := cur[rng.Intn(flows)]
		if c.sent == perFlow {
			continue
		}
		payload := []byte(fmt.Sprintf("flow=%d seq=%d padpadpad", c.port, c.sent))
		trace = append(trace, mkSeg(t, c.port, c.seq, payload))
		c.seq += uint32(len(payload))
		c.sent++
	}
	return trace
}

// runTrace pushes the trace through a fresh N-shard concurrent plane
// with the det filter on every stream and returns the per-stream
// output payload sequences.
func runTrace(t *testing.T, trace [][]byte, shards int) (map[filter.Key][][]byte, int) {
	t.Helper()
	cat := filter.NewCatalog()
	cat.Register("det", func() filter.Factory { return &detFilter{} })
	var mu sync.Mutex
	perStream := make(map[filter.Key][][]byte)
	total := 0
	pl := dataplane.NewConcurrent(dataplane.ConcurrentConfig{
		Shards: shards, Catalog: cat, Seed: 99, RingSize: 256,
		Sink: func(_ int, out [][]byte) {
			mu.Lock()
			defer mu.Unlock()
			for _, raw := range out {
				k, ok := filter.SteerKey(raw)
				if !ok {
					t.Errorf("unparseable output packet")
					continue
				}
				perStream[k] = append(perStream[k], append([]byte(nil), raw...))
				total++
			}
		},
	})
	defer pl.Close()
	pl.Command("load det")
	pl.Command("add det 0.0.0.0 0 0.0.0.0 0")
	for _, raw := range trace {
		pl.Dispatch(raw)
	}
	pl.Drain()
	return perStream, total
}

// --- batch-vs-inline equivalence under control interleavings ------------------

// scriptStep is one step of a mixed traffic/control script: a packet
// to intercept or a control line to execute.
type scriptStep struct {
	raw []byte // packet, when non-nil
	cmd string // control line, when raw is nil
}

// buildScript interleaves a multi-flow packet trace with control-plane
// operations at pseudo-random points: exact-key add/delete of the det
// filter on individual flows, wildcard adds, library load/remove
// cycles, and merged read-only queries. Seeded, so every run of every
// mode executes byte-identical steps.
func buildScript(t testing.TB, flows, perFlow int, seed int64) []scriptStep {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var script []scriptStep
	script = append(script,
		scriptStep{cmd: "load det"},
		scriptStep{cmd: "add det 0.0.0.0 0 0.0.0.0 0"},
	)
	key := func(flow int) string {
		return fmt.Sprintf("11.11.10.99 %d 11.11.10.10 5001", 1000+flow)
	}
	type cursor struct {
		seq  uint32
		sent int
	}
	cur := make([]*cursor, flows)
	for i := range cur {
		cur[i] = &cursor{seq: 1}
	}
	sent := 0
	for sent < flows*perFlow {
		if rng.Intn(12) == 0 {
			// A control op lands between packets. All of these are
			// deterministic: their effect (including errors) depends
			// only on the per-stream packet/op sequence.
			flow := rng.Intn(flows)
			switch rng.Intn(5) {
			case 0:
				script = append(script, scriptStep{cmd: "add det " + key(flow)})
			case 1:
				script = append(script, scriptStep{cmd: "delete det " + key(flow)})
			case 2:
				script = append(script, scriptStep{cmd: "report det"})
			case 3:
				script = append(script, scriptStep{cmd: "streams"})
			case 4:
				// Full unload/reload cycle: drops every registration,
				// then re-arms the wildcard.
				script = append(script,
					scriptStep{cmd: "remove det"},
					scriptStep{cmd: "load det"},
					scriptStep{cmd: "add det 0.0.0.0 0 0.0.0.0 0"})
			}
			continue
		}
		flow := rng.Intn(flows)
		c := cur[flow]
		if c.sent == perFlow {
			continue
		}
		port := uint16(1000 + flow)
		payload := []byte(fmt.Sprintf("flow=%d seq=%d padpadpad", port, c.sent))
		script = append(script, scriptStep{raw: mkSeg(t, port, c.seq, payload)})
		c.seq += uint32(len(payload))
		c.sent++
		sent++
	}
	return script
}

// scriptResult is the observable outcome of running a script: the
// per-stream output packet log and every control line's output, in
// script order.
type scriptResult struct {
	perStream map[filter.Key][][]byte
	cmdOut    []string
	total     int
}

func detCatalog() *filter.Catalog {
	cat := filter.NewCatalog()
	cat.Register("det", func() filter.Factory { return &detFilter{} })
	return cat
}

// runScriptInline executes the script on the synchronous inline plane —
// the reference semantics.
func runScriptInline(t *testing.T, script []scriptStep) scriptResult {
	t.Helper()
	s := sim.NewScheduler(7)
	net := netsim.New(s)
	node := net.AddNode("proxy")
	pl := dataplane.NewInline(node, detCatalog(), 1)
	res := scriptResult{perStream: make(map[filter.Key][][]byte)}
	for _, st := range script {
		if st.raw == nil {
			res.cmdOut = append(res.cmdOut, pl.Command(st.cmd))
			continue
		}
		for _, out := range pl.Hook(st.raw, nil) {
			k, ok := filter.SteerKey(out)
			if !ok {
				t.Fatalf("unparseable inline output packet")
			}
			res.perStream[k] = append(res.perStream[k], append([]byte(nil), out...))
			res.total++
		}
	}
	return res
}

// runScriptConcurrent executes the script on a concurrent batched
// plane. Drain() before each control line pins the traffic/control
// order to the script order, exactly as inline executes it.
func runScriptConcurrent(t *testing.T, script []scriptStep, shards, batch int) scriptResult {
	t.Helper()
	var mu sync.Mutex
	res := scriptResult{perStream: make(map[filter.Key][][]byte)}
	pl := dataplane.NewConcurrent(dataplane.ConcurrentConfig{
		Shards: shards, Catalog: detCatalog(), Seed: 7, RingSize: 64,
		BatchSize: batch, FlushInterval: -1,
		Sink: func(_ int, out [][]byte) {
			mu.Lock()
			defer mu.Unlock()
			for _, raw := range out {
				k, ok := filter.SteerKey(raw)
				if !ok {
					t.Errorf("unparseable concurrent output packet")
					continue
				}
				res.perStream[k] = append(res.perStream[k], append([]byte(nil), raw...))
				res.total++
			}
		},
	})
	defer pl.Close()
	for _, st := range script {
		if st.raw == nil {
			pl.Drain()
			res.cmdOut = append(res.cmdOut, pl.Command(st.cmd))
			continue
		}
		pl.Dispatch(st.raw)
	}
	pl.Drain()
	return res
}

// TestBatchedEquivalentToInlineUnderControl is the batching tentpole's
// equivalence property: for a random interleaving of traffic and
// control-plane operations, the concurrent batched plane — at every
// shard count and batch size, including partial batches sealed only at
// quiesce boundaries — must emit exactly the inline plane's per-stream
// event log, and every control line must produce the same output.
// Control mutations landing mid-batch, a stale negative-match cache
// surviving an epoch, or a partial batch lost at a quiesce would all
// break it.
func TestBatchedEquivalentToInlineUnderControl(t *testing.T) {
	for _, seed := range []int64{1, 23} {
		script := buildScript(t, 12, 40, seed)
		ref := runScriptInline(t, script)
		if ref.total == 0 {
			t.Fatal("inline reference produced no output; bad script")
		}
		for _, shards := range []int{1, 2, 4, 8} {
			for _, batch := range []int{1, 7, 64} {
				got := runScriptConcurrent(t, script, shards, batch)
				name := fmt.Sprintf("seed=%d shards=%d batch=%d", seed, shards, batch)
				if got.total != ref.total {
					t.Fatalf("%s: emitted %d packets, inline emitted %d", name, got.total, ref.total)
				}
				if len(got.cmdOut) != len(ref.cmdOut) {
					t.Fatalf("%s: %d command outputs, inline %d", name, len(got.cmdOut), len(ref.cmdOut))
				}
				for i := range ref.cmdOut {
					if got.cmdOut[i] != ref.cmdOut[i] {
						t.Fatalf("%s: command %d output diverges:\n got %q\nwant %q",
							name, i, got.cmdOut[i], ref.cmdOut[i])
					}
				}
				if len(got.perStream) != len(ref.perStream) {
					t.Fatalf("%s: %d streams, inline %d", name, len(got.perStream), len(ref.perStream))
				}
				for k, want := range ref.perStream {
					seq := got.perStream[k]
					if len(seq) != len(want) {
						t.Fatalf("%s stream %v: %d packets, want %d", name, k, len(seq), len(want))
					}
					for i := range want {
						if !bytes.Equal(seq[i], want[i]) {
							t.Fatalf("%s stream %v packet %d differs from inline:\n got %q\nwant %q",
								name, k, i, seq[i], want[i])
						}
					}
				}
			}
		}
	}
}

// TestShardedOutputIsPerStreamOrderedInterleaving is the satellite-3
// property: for any packet trace, the sharded output at any N must be
// a per-stream-ordered interleaving of the N=1 output with identical
// byte payloads — sharding may reorder across streams, never within
// one, and must never alter bytes.
func TestShardedOutputIsPerStreamOrderedInterleaving(t *testing.T) {
	trace := buildTrace(t, 16, 50)
	ref, refTotal := runTrace(t, trace, 1)
	for _, n := range []int{2, 4, 8} {
		got, gotTotal := runTrace(t, trace, n)
		if gotTotal != refTotal {
			t.Fatalf("N=%d emitted %d packets, N=1 emitted %d", n, gotTotal, refTotal)
		}
		if len(got) != len(ref) {
			t.Fatalf("N=%d produced %d streams, N=1 produced %d", n, len(got), len(ref))
		}
		for k, want := range ref {
			seq := got[k]
			if len(seq) != len(want) {
				t.Fatalf("N=%d stream %v: %d packets, want %d", n, k, len(seq), len(want))
			}
			for i := range want {
				if !bytes.Equal(seq[i], want[i]) {
					t.Fatalf("N=%d stream %v packet %d differs from N=1:\n got %q\nwant %q",
						n, k, i, seq[i], want[i])
				}
			}
		}
	}
}
