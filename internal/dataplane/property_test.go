package dataplane_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/dataplane"
	"repro/internal/filter"
)

// detFilter is a deterministic per-stream transform for the sharding
// property test: it drops every 3rd data packet of its stream and
// truncates the others by one byte. Its behavior depends only on the
// per-stream packet sequence — never on time, randomness, or other
// streams — so any shard layout that preserves per-stream order must
// reproduce the N=1 output exactly.
type detFilter struct{}

func (*detFilter) Name() string              { return "det" }
func (*detFilter) Priority() filter.Priority { return filter.Low }
func (*detFilter) Description() string       { return "deterministic drop/truncate (test)" }

func (*detFilter) New(env filter.Env, k filter.Key, args []string) error {
	count := 0
	_, err := env.Attach(k, filter.Hooks{
		Filter: "det", Priority: filter.Low,
		Out: func(pkt *filter.Packet) {
			if pkt.Dropped() || pkt.TCP == nil || len(pkt.TCP.Payload) == 0 {
				return
			}
			count++
			if count%3 == 0 {
				pkt.Drop()
				return
			}
			pkt.TCP.Payload = pkt.TCP.Payload[:len(pkt.TCP.Payload)-1]
			pkt.MarkDirty()
		},
	})
	return err
}

// buildTrace makes an interleaved packet trace over flows distinct
// streams. Buffers are never reused: each dispatch owns its bytes.
func buildTrace(t testing.TB, flows, perFlow int) [][]byte {
	t.Helper()
	type cursor struct {
		port uint16
		seq  uint32
		sent int
	}
	cur := make([]*cursor, flows)
	for i := range cur {
		cur[i] = &cursor{port: uint16(1000 + i), seq: 1}
	}
	rng := rand.New(rand.NewSource(42))
	var trace [][]byte
	for len(trace) < flows*perFlow {
		c := cur[rng.Intn(flows)]
		if c.sent == perFlow {
			continue
		}
		payload := []byte(fmt.Sprintf("flow=%d seq=%d padpadpad", c.port, c.sent))
		trace = append(trace, mkSeg(t, c.port, c.seq, payload))
		c.seq += uint32(len(payload))
		c.sent++
	}
	return trace
}

// runTrace pushes the trace through a fresh N-shard concurrent plane
// with the det filter on every stream and returns the per-stream
// output payload sequences.
func runTrace(t *testing.T, trace [][]byte, shards int) (map[filter.Key][][]byte, int) {
	t.Helper()
	cat := filter.NewCatalog()
	cat.Register("det", func() filter.Factory { return &detFilter{} })
	var mu sync.Mutex
	perStream := make(map[filter.Key][][]byte)
	total := 0
	pl := dataplane.NewConcurrent(dataplane.ConcurrentConfig{
		Shards: shards, Catalog: cat, Seed: 99, RingSize: 256,
		Sink: func(_ int, out [][]byte) {
			mu.Lock()
			defer mu.Unlock()
			for _, raw := range out {
				k, ok := filter.SteerKey(raw)
				if !ok {
					t.Errorf("unparseable output packet")
					continue
				}
				perStream[k] = append(perStream[k], append([]byte(nil), raw...))
				total++
			}
		},
	})
	defer pl.Close()
	pl.Command("load det")
	pl.Command("add det 0.0.0.0 0 0.0.0.0 0")
	for _, raw := range trace {
		pl.Dispatch(raw)
	}
	pl.Drain()
	return perStream, total
}

// TestShardedOutputIsPerStreamOrderedInterleaving is the satellite-3
// property: for any packet trace, the sharded output at any N must be
// a per-stream-ordered interleaving of the N=1 output with identical
// byte payloads — sharding may reorder across streams, never within
// one, and must never alter bytes.
func TestShardedOutputIsPerStreamOrderedInterleaving(t *testing.T) {
	trace := buildTrace(t, 16, 50)
	ref, refTotal := runTrace(t, trace, 1)
	for _, n := range []int{2, 4, 8} {
		got, gotTotal := runTrace(t, trace, n)
		if gotTotal != refTotal {
			t.Fatalf("N=%d emitted %d packets, N=1 emitted %d", n, gotTotal, refTotal)
		}
		if len(got) != len(ref) {
			t.Fatalf("N=%d produced %d streams, N=1 produced %d", n, len(got), len(ref))
		}
		for k, want := range ref {
			seq := got[k]
			if len(seq) != len(want) {
				t.Fatalf("N=%d stream %v: %d packets, want %d", n, k, len(seq), len(want))
			}
			for i := range want {
				if !bytes.Equal(seq[i], want[i]) {
					t.Fatalf("N=%d stream %v packet %d differs from N=1:\n got %q\nwant %q",
						n, k, i, seq[i], want[i])
				}
			}
		}
	}
}
