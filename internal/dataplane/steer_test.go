package dataplane

import (
	"testing"

	"repro/internal/filter"
	"repro/internal/ip"
)

func key(s string, sp uint16, d string, dp uint16) filter.Key {
	return filter.Key{SrcIP: ip.MustParseAddr(s), SrcPort: sp,
		DstIP: ip.MustParseAddr(d), DstPort: dp}
}

// TestHashDirectionNormalized: both directions of any stream must hash
// (and therefore shard) identically.
func TestHashDirectionNormalized(t *testing.T) {
	keys := []filter.Key{
		key("11.11.10.99", 7, "11.11.10.10", 5001),
		key("11.11.10.10", 5001, "11.11.10.99", 7),
		key("1.2.3.4", 80, "5.6.7.8", 80),
		key("0.0.0.0", 0, "0.0.0.0", 0),
		key("255.255.255.255", 65535, "0.0.0.1", 1),
	}
	for _, k := range keys {
		if Hash(k) != Hash(k.Reverse()) {
			t.Fatalf("hash of %v differs from its reverse", k)
		}
		for n := 1; n <= 16; n++ {
			if ShardOf(k, n) != ShardOf(k.Reverse(), n) {
				t.Fatalf("shard of %v differs from its reverse at n=%d", k, n)
			}
			if s := ShardOf(k, n); s < 0 || s >= n {
				t.Fatalf("shard %d out of range [0,%d)", s, n)
			}
		}
	}
}

// TestHashStable pins hash values so shard placement can never change
// across processes, runs, or Go versions — the determinism contract of
// ISSUE satellite 4. If this fails, the steering function changed and
// every recorded shard assignment is invalid.
func TestHashStable(t *testing.T) {
	cases := []struct {
		k    filter.Key
		want uint64
	}{
		{key("11.11.10.99", 7, "11.11.10.10", 5001), 0xa98b93a3eb3120df},
		{key("1.2.3.4", 80, "5.6.7.8", 443), 0x372b6fef8b658005},
		{filter.Key{}, 0x5467b0da1d106495},
	}
	for _, c := range cases {
		if got := Hash(c.k); got != c.want {
			t.Fatalf("Hash(%v) = %#x, want %#x (steering function changed!)", c.k, got, c.want)
		}
	}
}

// TestShardSpread: the hash must not collapse distinct flows onto a
// few shards — every shard of 8 gets work from 256 distinct ports.
func TestShardSpread(t *testing.T) {
	const n = 8
	var hits [n]int
	for p := 1; p <= 256; p++ {
		k := key("11.11.10.99", uint16(p), "11.11.10.10", 5001)
		hits[ShardOf(k, n)]++
	}
	for i, h := range hits {
		if h == 0 {
			t.Fatalf("shard %d received no flows out of 256", i)
		}
	}
}
