package dataplane_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataplane"
	"repro/internal/filter"
	"repro/internal/filters"
	"repro/internal/ip"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/tcp"
)

// runScenario drives one filtered transfer at the given shard count
// and returns the full event log, the received bytes, and the merged
// stats.
func runScenario(t *testing.T, shards int) (string, []byte, int64) {
	t.Helper()
	sys := core.NewSystem(core.Config{Seed: 5, Shards: shards, ObsRetention: 1 << 14})
	sys.MustCommand("load tcp")
	sys.MustCommand("load rdrop")
	sys.MustCommand("add tcp 0.0.0.0 0 0.0.0.0 0")
	sys.MustCommand("add rdrop 0.0.0.0 0 0.0.0.0 0 20")
	payload := make([]byte, 20000)
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	res, err := sys.Transfer(payload, 7, 5001, 10e9)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("transfer incomplete at %d shards: %d/%d bytes",
			shards, len(res.Received), len(payload))
	}
	var log bytes.Buffer
	if err := sys.Obs.WriteLog(&log); err != nil {
		t.Fatal(err)
	}
	return log.String(), res.Received, sys.Plane.StatsSnapshot().Intercepted
}

// TestInlineShardingEquivalence is the determinism tentpole check: the
// same deployment at 1 and 4 inline shards must produce byte-identical
// event logs, payloads, and packet counts — sharding partitions state,
// never behavior, inside the simulator.
func TestInlineShardingEquivalence(t *testing.T) {
	log1, recv1, pkts1 := runScenario(t, 1)
	log4, recv4, pkts4 := runScenario(t, 4)
	if !bytes.Equal(recv1, recv4) {
		t.Fatalf("received payload differs between 1 and 4 shards")
	}
	if pkts1 != pkts4 {
		t.Fatalf("intercepted count differs: %d at 1 shard, %d at 4", pkts1, pkts4)
	}
	if log1 != log4 {
		i := 0
		for i < len(log1) && i < len(log4) && log1[i] == log4[i] {
			i++
		}
		lo := i - 80
		if lo < 0 {
			lo = 0
		}
		t.Fatalf("event logs diverge at byte %d:\n1 shard: %.160q\n4 shards: %.160q",
			i, log1[lo:], log4[lo:])
	}
}

// standalonePlane builds an inline plane outside core, driven directly
// through its Hook.
func standalonePlane(t *testing.T, shards int) *dataplane.Plane {
	t.Helper()
	s := sim.NewScheduler(3)
	net := netsim.New(s)
	node := net.AddNode("proxy")
	cat := filter.NewCatalog()
	filters.RegisterAll(cat)
	return dataplane.NewInline(node, cat, shards)
}

func mkSeg(t testing.TB, srcPort uint16, seq uint32, payload []byte) []byte {
	t.Helper()
	src := ip.MustParseAddr("11.11.10.99")
	dst := ip.MustParseAddr("11.11.10.10")
	seg := tcp.Segment{SrcPort: srcPort, DstPort: 5001, Seq: seq, Ack: 1,
		Flags: tcp.FlagACK, Window: 65535, Payload: payload}
	h := ip.Header{TTL: 64, Protocol: ip.ProtoTCP, Src: src, Dst: dst}
	raw, err := h.Marshal(seg.Marshal(src, dst))
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestCommandRouting: exact-key mutations touch only the owning shard,
// wild-card mutations reach every shard, and the merged report shows
// one coherent listing.
func TestCommandRouting(t *testing.T) {
	pl := standalonePlane(t, 4)
	if out := pl.Command("load rdrop"); out != "rdrop\n" {
		t.Fatalf("load output %q", out)
	}
	for i := 0; i < pl.N(); i++ {
		if got := pl.Shard(i).RegistrationCount(); got != 0 {
			t.Fatalf("shard %d has %d registrations before add", i, got)
		}
	}
	exact := "11.11.10.99 7 11.11.10.10 5001"
	k, err := filter.ParseKey(strings.Fields(exact))
	if err != nil {
		t.Fatal(err)
	}
	if out := pl.Command("add rdrop " + exact + " 100"); out != "" {
		t.Fatalf("exact add: %q", out)
	}
	owner := dataplane.ShardOf(k, pl.N())
	var total int64
	for i := 0; i < pl.N(); i++ {
		n := pl.Shard(i).RegistrationCount()
		total += n
		if i == owner && n != 1 {
			t.Fatalf("owning shard %d has %d registrations, want 1", i, n)
		}
		if i != owner && n != 0 {
			t.Fatalf("non-owning shard %d has %d registrations (ghost state)", i, n)
		}
	}
	if total != 1 {
		t.Fatalf("total registrations = %d, want 1", total)
	}
	if epoch := pl.Epoch(); epoch != 2 { // load + add
		t.Fatalf("epoch = %d, want 2", epoch)
	}
	// Wild-card add replicates to every shard.
	pl.Command("add rdrop 0.0.0.0 0 0.0.0.0 0 100")
	for i := 0; i < pl.N(); i++ {
		want := int64(1)
		if i == owner {
			want = 2
		}
		if got := pl.Shard(i).RegistrationCount(); got != want {
			t.Fatalf("shard %d has %d registrations after wildcard add, want %d", i, got, want)
		}
	}
	// The merged report shows both keys once despite the replication.
	rep := pl.Command("report rdrop")
	want := fmt.Sprintf("rdrop\n\t0.0.0.0 0 -> 0.0.0.0 0\n\t%s\n",
		"11.11.10.99 7 -> 11.11.10.10 5001")
	if rep != want {
		t.Fatalf("merged report:\n%q\nwant:\n%q", rep, want)
	}
	// Exact delete routes back to the owner.
	pl.Command("delete rdrop " + exact)
	if got := pl.Shard(owner).RegistrationCount(); got != 1 {
		t.Fatalf("owner has %d registrations after exact delete, want 1 (the wildcard)", got)
	}
}

// TestWildcardAddCoherenceInline: traffic first seen with no matching
// registration takes the pass-through miss path on its owning shard; a
// wild-card registration added mid-traffic must still take effect on
// that same stream — no stale per-shard match state (once a negCache
// entry, now a compiled program a mutation left behind) may mask it.
func TestWildcardAddCoherenceInline(t *testing.T) {
	pl := standalonePlane(t, 4)
	raw := mkSeg(t, 7, 1000, []byte("payload-1"))
	// Pass-through traffic: no registrations, so the owning shard now
	// caches this key as a negative match.
	if out := pl.Hook(raw, nil); len(out) != 1 || !bytes.Equal(out[0], raw) {
		t.Fatal("expected clean pass-through before registration")
	}
	pl.Command("load rdrop")
	pl.Command("add rdrop 0.0.0.0 0 0.0.0.0 0 100")
	// Same stream, next packet: the wildcard must now catch it.
	raw2 := mkSeg(t, 7, 2000, []byte("payload-2"))
	if out := pl.Hook(raw2, nil); len(out) != 0 {
		t.Fatalf("packet after wildcard add was not dropped (emitted %d): stale match state", len(out))
	}
	if got := pl.StatsSnapshot().DroppedByFilter; got != 1 {
		t.Fatalf("DroppedByFilter = %d, want 1", got)
	}
}

// TestWildcardAddCoherenceConcurrent is the same regression against
// the concurrent plane, where the mutation crosses goroutines through
// the epoch/quiesce broadcast.
func TestWildcardAddCoherenceConcurrent(t *testing.T) {
	cat := filter.NewCatalog()
	filters.RegisterAll(cat)
	var emitted int
	pl := dataplane.NewConcurrent(dataplane.ConcurrentConfig{
		Shards: 4, Catalog: cat, Seed: 11,
		Sink: func(_ int, out [][]byte) { emitted += len(out) },
	})
	defer pl.Close()
	pl.Dispatch(mkSeg(t, 7, 1000, []byte("payload-1")))
	pl.Drain()
	if emitted != 1 {
		t.Fatalf("pass-through emitted %d packets, want 1", emitted)
	}
	pl.Command("load rdrop")
	pl.Command("add rdrop 0.0.0.0 0 0.0.0.0 0 100")
	pl.Dispatch(mkSeg(t, 7, 2000, []byte("payload-2")))
	pl.Drain()
	if emitted != 1 {
		t.Fatalf("packet after wildcard add leaked through stale match state (emitted %d)", emitted)
	}
	if got := pl.StatsSnapshot().DroppedByFilter; got != 1 {
		t.Fatalf("DroppedByFilter = %d, want 1", got)
	}
}

// TestConcurrentCommandOutputs: the routed command surface answers
// like a single proxy (load echo, filters listing, merged streams).
func TestConcurrentCommandOutputs(t *testing.T) {
	cat := filter.NewCatalog()
	filters.RegisterAll(cat)
	pl := dataplane.NewConcurrent(dataplane.ConcurrentConfig{Shards: 2, Catalog: cat, Seed: 1})
	defer pl.Close()
	if out := pl.Command("load tcp"); out != "tcp\n" {
		t.Fatalf("load: %q", out)
	}
	if out := pl.Command("load tcp"); !strings.HasPrefix(out, "error") {
		t.Fatalf("duplicate load: %q", out)
	}
	if out := pl.Command("bogus"); !strings.HasPrefix(out, "error") {
		t.Fatalf("unknown command: %q", out)
	}
	if out := pl.Command("report"); out != "tcp\n" {
		t.Fatalf("report: %q", out)
	}
	if out := pl.Command("streams"); out != "" {
		t.Fatalf("streams with no traffic: %q", out)
	}
}
