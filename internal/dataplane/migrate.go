package dataplane

import (
	"repro/internal/filter"
	"repro/internal/proxy"
)

// Stream migration support: keyed extract/restore operations that ride
// the quiesce/epoch barrier, so a stream is frozen and released (or
// installed) exactly at a batch boundary of the shard that owns it. No
// packet of the stream is ever mid-filter while its state is being
// serialized.

// ExtractStream freezes stream k on its owning shard, serializes its
// bindings and filter state, and releases the shard's ownership of it.
// See proxy.ExtractStream.
func (pl *Plane) ExtractStream(k filter.Key) (*proxy.StreamExport, error) {
	var (
		ex  *proxy.StreamExport
		err error
	)
	pl.doShard(ShardOf(k, pl.n), func(p *proxy.Proxy) { ex, err = p.ExtractStream(k) })
	pl.epoch.Add(1)
	return ex, err
}

// ValidateImport runs the destination-side admission check for an
// offered stream on the shard that would own it, without installing
// anything.
func (pl *Plane) ValidateImport(ex *proxy.StreamExport) error {
	var err error
	pl.doShard(ShardOf(ex.Key, pl.n), func(p *proxy.Proxy) { err = p.ValidateImport(ex) })
	return err
}

// RestoreStream installs an extracted stream on the shard that owns its
// key. On failure the partial install is torn down before returning, so
// a failed restore leaves the plane unchanged.
func (pl *Plane) RestoreStream(ex *proxy.StreamExport) error {
	var err error
	pl.doShard(ShardOf(ex.Key, pl.n), func(p *proxy.Proxy) {
		err = p.ImportStream(ex)
		if err != nil {
			p.DropStream(ex.Key)
		}
	})
	pl.epoch.Add(1)
	return err
}

// HasStream reports whether the plane owns stream k (live queue or
// exact-key binding on the owning shard).
func (pl *Plane) HasStream(k filter.Key) bool {
	var ok bool
	pl.doShard(ShardOf(k, pl.n), func(p *proxy.Proxy) { ok = p.HasStream(k) })
	return ok
}

// StreamBindings counts the exact-key registrations bound to k or its
// reverse on the owning shard — the migration ownership measure.
func (pl *Plane) StreamBindings(k filter.Key) int {
	var n int
	pl.doShard(ShardOf(k, pl.n), func(p *proxy.Proxy) { n = p.StreamBindings(k) })
	return n
}
