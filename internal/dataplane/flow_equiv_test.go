package dataplane_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/dataplane"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/workload"
)

// buildFlowTrace builds a flow-log workload: a churn storm where every
// third flow is left open (its FIN pair is withheld), so the resulting
// records span both the active table and the closed ring. Fresh keys
// per flow make the renderer's sort key total even with every private
// shard clock at zero.
func buildFlowTrace(flows int) [][]byte {
	c := workload.NewChurn(workload.ChurnConfig{DataPkts: 2, PayloadSize: 64})
	var trace [][]byte
	for i := 0; i < flows; i++ {
		pkts := c.NextFlow()
		if i%3 == 0 {
			pkts = pkts[:len(pkts)-2] // withhold both FINs: flow stays active
		}
		trace = append(trace, pkts...)
	}
	return trace
}

// TestFlowRecordsShardMergeEquivalence is the PR 8 shard-merge
// property: for the same traffic, the merged "flows" output of an
// N-shard plane — inline or concurrent batched — must be byte-equal to
// the 1-shard inline reference, and the merged flow counters must sum
// to the same totals. Direction-normalized steering keeps each flow
// whole on one shard, so any divergence means a flow was split,
// double-counted, or lost in the merge.
func TestFlowRecordsShardMergeEquivalence(t *testing.T) {
	trace := buildFlowTrace(120)

	runInline := func(shards int) (string, string) {
		s := sim.NewScheduler(7)
		net := netsim.New(s)
		node := net.AddNode("proxy")
		pl := dataplane.NewInline(node, detCatalog(), shards)
		for _, raw := range trace {
			pl.Hook(raw, nil)
		}
		return pl.Command("flows 1000"), fmt.Sprintf("%+v", pl.FlowStats())
	}

	refOut, refStats := runInline(1)
	if refOut == "" {
		t.Fatal("reference flows output empty")
	}

	for _, shards := range []int{2, 4, 8} {
		out, stats := runInline(shards)
		if out != refOut {
			t.Fatalf("inline %d-shard flows output diverges from 1-shard:\n got %q\nwant %q", shards, out, refOut)
		}
		if stats != refStats {
			t.Fatalf("inline %d-shard FlowStats %s, want %s", shards, stats, refStats)
		}
	}

	for _, shards := range []int{1, 2, 4, 8} {
		var mu sync.Mutex
		pl := dataplane.NewConcurrent(dataplane.ConcurrentConfig{
			Shards: shards, Catalog: detCatalog(), Seed: 7, RingSize: 64,
			Sink: func(_ int, out [][]byte) { mu.Lock(); mu.Unlock() },
		})
		for _, raw := range trace {
			pl.Dispatch(raw)
		}
		pl.Drain()
		out := pl.Command("flows 1000")
		stats := fmt.Sprintf("%+v", pl.FlowStats())
		pl.Close()
		if out != refOut {
			t.Fatalf("concurrent %d-shard flows output diverges from inline:\n got %q\nwant %q", shards, out, refOut)
		}
		if stats != refStats {
			t.Fatalf("concurrent %d-shard FlowStats %s, want %s", shards, stats, refStats)
		}
	}
}
