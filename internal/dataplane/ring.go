package dataplane

import "sync/atomic"

// ring is a bounded single-producer single-consumer queue of raw
// packets. Push and pop are lock-free and allocation-free: one atomic
// load plus one atomic store each in steady state. head and tail are
// free-running uint32 counters (indices are masked), padded onto
// separate cache lines so producer and consumer do not false-share.
//
// Memory ordering: Go's sync/atomic operations are sequentially
// consistent, so the producer's slot write happens-before a consumer
// that observes the advanced tail, and the consumer's slot clear
// happens-before a producer that observes the advanced head.
type ring struct {
	mask  uint32
	slots [][]byte
	_     [64]byte
	head  atomic.Uint32 // consumer position
	_     [64]byte
	tail  atomic.Uint32 // producer position
}

// newRing builds a ring with capacity rounded up to a power of two
// (minimum 2).
func newRing(capacity int) *ring {
	n := uint32(2)
	for int(n) < capacity {
		n <<= 1
	}
	return &ring{mask: n - 1, slots: make([][]byte, n)}
}

// push appends raw. ok is false when the ring is full. wasEmpty
// reports whether the consumer could have been parked when the push
// landed: the producer wakes the consumer only then, so the steady
// state (busy consumer) sends no wakeups at all. The check is sound
// under sequential consistency — if the consumer parked after this
// push's tail store, its emptiness check must have seen the new tail,
// a contradiction; so a parked consumer implies wasEmpty was true and
// a wake was sent.
func (r *ring) push(raw []byte) (ok, wasEmpty bool) {
	t := r.tail.Load()
	if t-r.head.Load() > r.mask {
		return false, false
	}
	r.slots[t&r.mask] = raw
	r.tail.Store(t + 1)
	return true, r.head.Load() == t
}

// pop removes the oldest packet, clearing its slot so the ring never
// pins packet buffers.
func (r *ring) pop() ([]byte, bool) {
	h := r.head.Load()
	if h == r.tail.Load() {
		return nil, false
	}
	raw := r.slots[h&r.mask]
	r.slots[h&r.mask] = nil
	r.head.Store(h + 1)
	return raw, true
}

// len reports the current queue depth (racy but monotonic-safe: each
// side's own counter is exact).
func (r *ring) len() int { return int(r.tail.Load() - r.head.Load()) }
