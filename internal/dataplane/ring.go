package dataplane

import "sync/atomic"

// ring is a bounded single-producer single-consumer queue of packet
// batches. One slot holds one batch — a [][]byte arena accumulated by
// the steering stage — so every per-slot cost (the atomic head/tail
// pair, the empty-transition wakeup, the consumer's park/unpark) is
// paid once per batch instead of once per packet. Push and pop are
// lock-free and allocation-free: one atomic load plus one atomic store
// each in steady state. head and tail are free-running uint32 counters
// (indices are masked), padded onto separate cache lines so producer
// and consumer do not false-share.
//
// The same structure runs in both directions of the shard pipeline:
// full batches flow dispatcher→worker, and drained arenas are recycled
// worker→dispatcher so the steady state allocates nothing.
//
// Memory ordering: Go's sync/atomic operations are sequentially
// consistent, so the producer's slot write happens-before a consumer
// that observes the advanced tail, and the consumer's slot clear
// happens-before a producer that observes the advanced head.
type ring struct {
	mask  uint32
	slots [][][]byte
	_     [64]byte
	head  atomic.Uint32 // consumer position
	_     [64]byte
	tail  atomic.Uint32 // producer position
}

// newRing builds a ring with capacity rounded up to a power of two
// (minimum 2).
func newRing(capacity int) *ring {
	n := uint32(2)
	for int(n) < capacity {
		n <<= 1
	}
	return &ring{mask: n - 1, slots: make([][][]byte, n)}
}

// push appends one batch. ok is false when the ring is full. wasEmpty
// reports whether the consumer could have been parked when the push
// landed: the producer wakes the consumer only then, so a busy
// consumer receives no wakeups at all — and a parked one receives at
// most one per batch, never one per packet. The check is sound under
// sequential consistency — if the consumer parked after this push's
// tail store, its emptiness check must have seen the new tail, a
// contradiction; so a parked consumer implies wasEmpty was true and a
// wake was sent.
func (r *ring) push(b [][]byte) (ok, wasEmpty bool) {
	t := r.tail.Load()
	if t-r.head.Load() > r.mask {
		return false, false
	}
	r.slots[t&r.mask] = b
	r.tail.Store(t + 1)
	return true, r.head.Load() == t
}

// pop removes the oldest batch, clearing its slot so the ring never
// pins arenas (or the packet buffers they reference).
func (r *ring) pop() ([][]byte, bool) {
	h := r.head.Load()
	if h == r.tail.Load() {
		return nil, false
	}
	b := r.slots[h&r.mask]
	r.slots[h&r.mask] = nil
	r.head.Store(h + 1)
	return b, true
}

// len reports the current queue depth in batches (racy but
// monotonic-safe: each side's own counter is exact).
func (r *ring) len() int { return int(r.tail.Load() - r.head.Load()) }
