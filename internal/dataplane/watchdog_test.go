package dataplane_test

import (
	"testing"
	"time"

	"repro/internal/dataplane"
	"repro/internal/filter"
	"repro/internal/filters"
)

// TestWatchdogDetectsInjectedStall wedges one shard of a concurrent
// plane and checks the watchdog flags it while backlog accumulates,
// then clears the flag once the shard resumes and drains.
func TestWatchdogDetectsInjectedStall(t *testing.T) {
	cat := filter.NewCatalog()
	filters.RegisterAll(cat)
	pl := dataplane.NewConcurrent(dataplane.ConcurrentConfig{Shards: 1, Catalog: cat, Seed: 1})
	defer pl.Close()
	stop := pl.StartWatchdog(10 * time.Millisecond)
	defer stop()

	pl.InjectStall(0, 300*time.Millisecond)
	// Give the shard a moment to pick up the stall, then pile backlog
	// behind the wedged goroutine.
	time.Sleep(20 * time.Millisecond)
	for i := 0; i < 32; i++ {
		pl.Dispatch(mkSeg(t, uint16(7000+i), 1000, []byte("stall probe")))
	}

	flagged := false
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if len(pl.StalledShards()) > 0 {
			flagged = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !flagged {
		t.Fatal("watchdog never flagged the wedged shard")
	}
	if pl.WatchdogTrips() == 0 {
		t.Fatal("watchdog trip not counted")
	}

	// Recovery: the stall expires, the shard drains, the flag clears.
	pl.Drain()
	deadline = time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if len(pl.StalledShards()) == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("stall flag stuck after recovery: %v", pl.StalledShards())
}

// TestWatchdogQuietOnHealthyPlane pins the no-false-positive side: a
// plane processing traffic normally must never trip the watchdog.
func TestWatchdogQuietOnHealthyPlane(t *testing.T) {
	cat := filter.NewCatalog()
	filters.RegisterAll(cat)
	pl := dataplane.NewConcurrent(dataplane.ConcurrentConfig{Shards: 2, Catalog: cat, Seed: 2})
	defer pl.Close()
	stop := pl.StartWatchdog(5 * time.Millisecond)
	defer stop()

	for i := 0; i < 500; i++ {
		pl.Dispatch(mkSeg(t, uint16(6000+i%16), uint32(1000+i), []byte("healthy traffic")))
	}
	pl.Drain()
	time.Sleep(30 * time.Millisecond)
	if n := pl.WatchdogTrips(); n != 0 {
		t.Fatalf("watchdog tripped %d times on a healthy plane", n)
	}
	if s := pl.StalledShards(); len(s) != 0 {
		t.Fatalf("healthy shards flagged: %v", s)
	}
}

// slowFilter sleeps on every outbound data packet — a filter whose
// per-packet cost dwarfs the watchdog interval, so one full batch
// takes many intervals to grind through.
type slowFilter struct{ delay time.Duration }

func (*slowFilter) Name() string              { return "slow" }
func (*slowFilter) Priority() filter.Priority { return filter.Low }
func (*slowFilter) Description() string       { return "per-packet delay (test)" }

func (f *slowFilter) New(env filter.Env, k filter.Key, args []string) error {
	_, err := env.Attach(k, filter.Hooks{
		Filter: "slow", Priority: filter.Low,
		Out: func(pkt *filter.Packet) { time.Sleep(f.delay) },
	})
	return err
}

// TestWatchdogNoSpuriousTripOnLargeBatch is the satellite-4 gate: a
// shard grinding through a large in-flight batch — slower per batch
// than several watchdog intervals, with more backlog sealed behind it
// — is making progress packet by packet and must never be flagged. A
// watchdog measuring completed batches instead of batch progress
// would trip here.
func TestWatchdogNoSpuriousTripOnLargeBatch(t *testing.T) {
	const batch = 64
	cat := filter.NewCatalog()
	cat.Register("slow", func() filter.Factory { return &slowFilter{delay: 2 * time.Millisecond} })
	pl := dataplane.NewConcurrent(dataplane.ConcurrentConfig{
		Shards: 1, Catalog: cat, Seed: 4, RingSize: 8,
		BatchSize: batch, FlushInterval: -1,
	})
	defer pl.Close()
	pl.Command("load slow")
	pl.Command("add slow 0.0.0.0 0 0.0.0.0 0")

	stop := pl.StartWatchdog(15 * time.Millisecond)
	defer stop()

	// Two full batches on one flow: the first is picked up and ground
	// at ~2ms/packet (~128ms/batch, ~8 watchdog intervals) while the
	// second sits in the ring as visible backlog the whole time.
	for i := 0; i < 2*batch; i++ {
		pl.Dispatch(mkSeg(t, 9000, uint32(1+i), []byte("slow grind")))
	}
	pl.Drain()
	if n := pl.WatchdogTrips(); n != 0 {
		t.Fatalf("watchdog tripped %d times on a shard grinding a large batch", n)
	}
	if s := pl.StalledShards(); len(s) != 0 {
		t.Fatalf("grinding shard left flagged: %v", s)
	}
	if got := pl.Processed(0); got != 2*batch {
		t.Fatalf("processed %d packets, want %d", got, 2*batch)
	}
}

// TestWatchdogInlineNoop: inline planes cannot stall independently of
// the caller, so the watchdog must be inert there.
func TestWatchdogInlineNoop(t *testing.T) {
	pl := standalonePlane(t, 2)
	stop := pl.StartWatchdog(time.Millisecond)
	stop()
	pl.InjectStall(0, time.Hour) // must not block or wedge anything
	if s := pl.StalledShards(); len(s) != 0 {
		t.Fatalf("inline plane reports stalled shards: %v", s)
	}
}
