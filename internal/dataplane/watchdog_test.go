package dataplane_test

import (
	"testing"
	"time"

	"repro/internal/dataplane"
	"repro/internal/filter"
	"repro/internal/filters"
)

// TestWatchdogDetectsInjectedStall wedges one shard of a concurrent
// plane and checks the watchdog flags it while backlog accumulates,
// then clears the flag once the shard resumes and drains.
func TestWatchdogDetectsInjectedStall(t *testing.T) {
	cat := filter.NewCatalog()
	filters.RegisterAll(cat)
	pl := dataplane.NewConcurrent(dataplane.ConcurrentConfig{Shards: 1, Catalog: cat, Seed: 1})
	defer pl.Close()
	stop := pl.StartWatchdog(10 * time.Millisecond)
	defer stop()

	pl.InjectStall(0, 300*time.Millisecond)
	// Give the shard a moment to pick up the stall, then pile backlog
	// behind the wedged goroutine.
	time.Sleep(20 * time.Millisecond)
	for i := 0; i < 32; i++ {
		pl.Dispatch(mkSeg(t, uint16(7000+i), 1000, []byte("stall probe")))
	}

	flagged := false
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if len(pl.StalledShards()) > 0 {
			flagged = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !flagged {
		t.Fatal("watchdog never flagged the wedged shard")
	}
	if pl.WatchdogTrips() == 0 {
		t.Fatal("watchdog trip not counted")
	}

	// Recovery: the stall expires, the shard drains, the flag clears.
	pl.Drain()
	deadline = time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if len(pl.StalledShards()) == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("stall flag stuck after recovery: %v", pl.StalledShards())
}

// TestWatchdogQuietOnHealthyPlane pins the no-false-positive side: a
// plane processing traffic normally must never trip the watchdog.
func TestWatchdogQuietOnHealthyPlane(t *testing.T) {
	cat := filter.NewCatalog()
	filters.RegisterAll(cat)
	pl := dataplane.NewConcurrent(dataplane.ConcurrentConfig{Shards: 2, Catalog: cat, Seed: 2})
	defer pl.Close()
	stop := pl.StartWatchdog(5 * time.Millisecond)
	defer stop()

	for i := 0; i < 500; i++ {
		pl.Dispatch(mkSeg(t, uint16(6000+i%16), uint32(1000+i), []byte("healthy traffic")))
	}
	pl.Drain()
	time.Sleep(30 * time.Millisecond)
	if n := pl.WatchdogTrips(); n != 0 {
		t.Fatalf("watchdog tripped %d times on a healthy plane", n)
	}
	if s := pl.StalledShards(); len(s) != 0 {
		t.Fatalf("healthy shards flagged: %v", s)
	}
}

// TestWatchdogInlineNoop: inline planes cannot stall independently of
// the caller, so the watchdog must be inert there.
func TestWatchdogInlineNoop(t *testing.T) {
	pl := standalonePlane(t, 2)
	stop := pl.StartWatchdog(time.Millisecond)
	stop()
	pl.InjectStall(0, time.Hour) // must not block or wedge anything
	if s := pl.StalledShards(); len(s) != 0 {
		t.Fatalf("inline plane reports stalled shards: %v", s)
	}
}
