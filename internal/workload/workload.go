// Package workload provides the application traffic generators the
// experiments drive through the proxy: bulk transfers, interactive
// request/response exchanges (the telnet-style traffic the thesis's
// prioritization service protects), and constant-bit-rate media.
package workload

import (
	"time"

	"repro/internal/ip"
	"repro/internal/media"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/udp"
)

// Bulk streams a fixed payload over a fresh TCP connection and keeps
// the pipe full until done.
type Bulk struct {
	Conn  *tcp.Conn
	Total int

	received int
	doneAt   sim.Time
}

// StartBulk connects from client to addr:port and pushes total bytes
// of deterministic data. The server side must already be listening and
// counting. Returns the workload handle for progress queries.
func StartBulk(client *tcp.Stack, addr ip.Addr, port uint16, total int) (*Bulk, error) {
	b := &Bulk{Total: total, doneAt: -1}
	conn, err := client.Connect(addr, port)
	if err != nil {
		return nil, err
	}
	b.Conn = conn
	payload := make([]byte, total)
	for i := range payload {
		payload[i] = byte(i*31 + 7)
	}
	conn.OnEstablished = func() { conn.Write(payload) }
	return b, nil
}

// Interactive is a request/response workload: the client sends a small
// request every interval and measures the time until the (small)
// response returns — a proxy for interactive session latency.
type Interactive struct {
	Conn *tcp.Conn

	// Latencies holds one round-trip per completed exchange.
	Latencies []time.Duration

	sched       *sim.Scheduler
	interval    time.Duration
	reqSize     int
	sentAt      sim.Time
	outstanding bool
	stopped     bool
}

// StartInteractive connects to an echo-style server at addr:port (the
// server must respond to each request with a same-sized reply; see
// ServeEcho) and begins issuing requests.
func StartInteractive(sched *sim.Scheduler, client *tcp.Stack, addr ip.Addr, port uint16,
	interval time.Duration, reqSize int) (*Interactive, error) {
	iw := &Interactive{sched: sched, interval: interval, reqSize: reqSize}
	conn, err := client.Connect(addr, port)
	if err != nil {
		return nil, err
	}
	iw.Conn = conn
	pending := 0
	conn.OnData = func(b []byte) {
		pending += len(b)
		if iw.outstanding && pending >= iw.reqSize {
			pending -= iw.reqSize
			iw.outstanding = false
			iw.Latencies = append(iw.Latencies, sched.Now().Sub(iw.sentAt))
		}
	}
	var tick func()
	tick = func() {
		if iw.stopped || conn.State() != tcp.StateEstablished {
			if !iw.stopped && conn.State() != tcp.StateClosed {
				sched.After(iw.interval, tick)
			}
			return
		}
		if !iw.outstanding {
			iw.outstanding = true
			iw.sentAt = sched.Now()
			conn.Write(make([]byte, iw.reqSize))
		}
		sched.After(iw.interval, tick)
	}
	conn.OnEstablished = func() { sched.After(0, tick) }
	return iw, nil
}

// Stop ends the request loop.
func (iw *Interactive) Stop() { iw.stopped = true }

// Mean returns the average exchange latency (0 if none completed).
func (iw *Interactive) Mean() time.Duration {
	if len(iw.Latencies) == 0 {
		return 0
	}
	var sum time.Duration
	for _, l := range iw.Latencies {
		sum += l
	}
	return sum / time.Duration(len(iw.Latencies))
}

// Max returns the worst exchange latency.
func (iw *Interactive) Max() time.Duration {
	var m time.Duration
	for _, l := range iw.Latencies {
		if l > m {
			m = l
		}
	}
	return m
}

// ServeEcho installs a server on stack:port that echoes every byte
// back — the peer for Interactive.
func ServeEcho(stack *tcp.Stack, port uint16) error {
	_, err := stack.Listen(port, func(c *tcp.Conn) {
		c.OnData = func(b []byte) { c.Write(b) }
		c.OnRemoteClose = func() { c.Close() }
	})
	return err
}

// ServeSink installs a server on stack:port that consumes and counts.
func ServeSink(stack *tcp.Stack, port uint16, count *int) error {
	_, err := stack.Listen(port, func(c *tcp.Conn) {
		c.OnData = func(b []byte) { *count += len(b) }
		c.OnRemoteClose = func() { c.Close() }
	})
	return err
}

// CBRMedia pushes a layered media stream at a constant frame rate over
// UDP (the §8.3.2 workload).
type CBRMedia struct {
	Sent    int // frames sent (all layers)
	stopped bool
}

// StartCBRMedia emits `frames` media instants of `layers` layers at
// the given frame interval from srcPort to dst:dstPort.
func StartCBRMedia(sched *sim.Scheduler, stack *udp.Stack, dst ip.Addr, srcPort, dstPort uint16,
	layers, baseBytes, frames int, interval time.Duration, seed int64) *CBRMedia {
	w := &CBRMedia{}
	src := media.NewLayeredSource(layers, baseBytes, seed)
	n := 0
	var tick func()
	tick = func() {
		if w.stopped {
			return
		}
		for _, f := range src.Next() {
			stack.Send(srcPort, dst, dstPort, media.MarshalFrame(f))
			w.Sent++
		}
		n++
		if n < frames {
			sched.After(interval, tick)
		}
	}
	sched.After(0, tick)
	return w
}

// Stop halts the media source.
func (w *CBRMedia) Stop() { w.stopped = true }
