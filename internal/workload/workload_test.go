package workload_test

import (
	"testing"
	"time"

	"repro/internal/ip"
	"repro/internal/media"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/udp"
	"repro/internal/workload"
)

type wrig struct {
	sched  *sim.Scheduler
	a, b   *netsim.Node
	sa, sb *tcp.Stack
	ua, ub *udp.Stack
}

func newWrig(t *testing.T, cfg netsim.LinkConfig) *wrig {
	t.Helper()
	s := sim.NewScheduler(2)
	n := netsim.New(s)
	a := n.AddNode("a")
	b := n.AddNode("b")
	n.Connect(a, ip.MustParseAddr("10.0.0.1"), b, ip.MustParseAddr("10.0.0.2"), cfg)
	r := &wrig{sched: s, a: a, b: b,
		sa: tcp.NewStack(a, tcp.Config{}), sb: tcp.NewStack(b, tcp.Config{}),
		ua: udp.NewStack(a), ub: udp.NewStack(b)}
	a.RegisterProto(ip.ProtoTCP, func(h ip.Header, p, raw []byte, in *netsim.Iface) { r.sa.Deliver(h.Src, h.Dst, p) })
	b.RegisterProto(ip.ProtoTCP, func(h ip.Header, p, raw []byte, in *netsim.Iface) { r.sb.Deliver(h.Src, h.Dst, p) })
	a.RegisterProto(ip.ProtoUDP, func(h ip.Header, p, raw []byte, in *netsim.Iface) { r.ua.Deliver(h.Src, h.Dst, p) })
	b.RegisterProto(ip.ProtoUDP, func(h ip.Header, p, raw []byte, in *netsim.Iface) { r.ub.Deliver(h.Src, h.Dst, p) })
	return r
}

func TestBulkAndSink(t *testing.T) {
	r := newWrig(t, netsim.LinkConfig{Bandwidth: 10e6, Delay: 5 * time.Millisecond})
	count := 0
	if err := workload.ServeSink(r.sb, 80, &count); err != nil {
		t.Fatal(err)
	}
	bulk, err := workload.StartBulk(r.sa, r.b.Addr(), 80, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	r.sched.RunFor(30 * time.Second)
	if count != 200_000 {
		t.Fatalf("sink got %d of %d", count, bulk.Total)
	}
}

func TestInteractiveLatency(t *testing.T) {
	r := newWrig(t, netsim.LinkConfig{Bandwidth: 10e6, Delay: 25 * time.Millisecond})
	if err := workload.ServeEcho(r.sb, 23); err != nil {
		t.Fatal(err)
	}
	iw, err := workload.StartInteractive(r.sched, r.sa, r.b.Addr(), 23, 200*time.Millisecond, 64)
	if err != nil {
		t.Fatal(err)
	}
	r.sched.RunFor(5 * time.Second)
	iw.Stop()
	if len(iw.Latencies) < 15 {
		t.Fatalf("only %d exchanges completed", len(iw.Latencies))
	}
	mean := iw.Mean()
	// RTT is ~50ms (25ms propagation each way plus serialization).
	if mean < 45*time.Millisecond || mean > 80*time.Millisecond {
		t.Fatalf("mean latency %v, want ≈50ms", mean)
	}
	if iw.Max() < mean {
		t.Fatal("max < mean")
	}
}

func TestCBRMedia(t *testing.T) {
	r := newWrig(t, netsim.LinkConfig{Bandwidth: 10e6, Delay: 5 * time.Millisecond})
	frames := map[uint8]int{}
	r.ub.Bind(4001, func(_ ip.Addr, _ uint16, payload []byte) {
		f, err := media.UnmarshalFrame(payload)
		if err != nil {
			t.Errorf("bad frame: %v", err)
			return
		}
		frames[f.Layer]++
	})
	w := workload.StartCBRMedia(r.sched, r.ua, r.b.Addr(), 4000, 4001, 3, 100, 20, 40*time.Millisecond, 5)
	r.sched.RunFor(5 * time.Second)
	if w.Sent != 60 {
		t.Fatalf("sent %d frames", w.Sent)
	}
	for l := uint8(0); l < 3; l++ {
		if frames[l] != 20 {
			t.Fatalf("layer %d: %d frames", l, frames[l])
		}
	}
}
