package workload

import (
	"fmt"

	"repro/internal/ip"
	"repro/internal/tcp"
)

// ChurnConfig shapes a registry-churn storm: a stream of short-lived
// flows, each on a fresh stream key, carrying a SYN handshake, a few
// data segments, and a FIN in each direction. Driven at the proxy it
// is the worst case for registry matching — every flow is first-sight
// (one classifier lookup and, when a registration matches, one filter
// queue build) and every teardown is a queue removal. The old
// negative-match cache degraded exactly here: each miss inserted a
// cache entry and every 2^16 distinct keys the whole cache was
// discarded, re-exposing the linear registry scan.
type ChurnConfig struct {
	// SrcIP/DstIP are the client and server addresses; they default to
	// the testbed's wired host (11.11.10.99) and mobile host
	// (11.11.10.10).
	SrcIP ip.Addr
	DstIP ip.Addr
	// DstPort is the server port every flow targets (default 5001).
	DstPort uint16
	// DataPkts is the number of data segments per flow (default 2).
	DataPkts int
	// PayloadSize is the bytes per data segment (default 256).
	PayloadSize int
}

// ChurnStats totals what a Drive run emitted.
type ChurnStats struct {
	Flows   int
	Packets int
	Bytes   int64
}

// Churn generates the flow storm. Each flow claims a fresh key: source
// ports cycle through 1024..65534 and the source address is bumped on
// every wrap, so key reuse never occurs within ~4 billion flows.
type Churn struct {
	cfg     ChurnConfig
	flow    int
	payload []byte
}

// NewChurn builds a generator, applying ChurnConfig defaults.
func NewChurn(cfg ChurnConfig) *Churn {
	if cfg.SrcIP.IsZero() {
		cfg.SrcIP = ip.AddrFrom4(11, 11, 10, 99)
	}
	if cfg.DstIP.IsZero() {
		cfg.DstIP = ip.AddrFrom4(11, 11, 10, 10)
	}
	if cfg.DstPort == 0 {
		cfg.DstPort = 5001
	}
	if cfg.DataPkts == 0 {
		cfg.DataPkts = 2
	}
	if cfg.PayloadSize == 0 {
		cfg.PayloadSize = 256
	}
	payload := make([]byte, cfg.PayloadSize)
	for i := range payload {
		payload[i] = byte(i*31 + 7)
	}
	return &Churn{cfg: cfg, payload: payload}
}

// PacketsPerFlow returns how many datagrams NextFlow emits: SYN,
// SYN-ACK, handshake ACK, the data segments, and one FIN-ACK per
// direction.
func (c *Churn) PacketsPerFlow() int { return 5 + c.cfg.DataPkts }

// Flows returns how many flows have been generated so far.
func (c *Churn) Flows() int { return c.flow }

// NextFlow returns the raw datagrams of the next short flow, in wire
// order. Every call allocates fresh buffers, so the slices stay valid
// after later calls — safe to hand to a concurrent plane's Dispatch,
// which requires buffer stability until the batch drains.
func (c *Churn) NextFlow() [][]byte {
	srcPort := uint16(1024 + c.flow%64511)
	srcIP := c.cfg.SrcIP + ip.Addr(c.flow/64511)
	c.flow++

	out := make([][]byte, 0, c.PacketsPerFlow())
	seq, ack := uint32(1000), uint32(501000)
	// Handshake.
	out = append(out,
		c.seg(srcIP, srcPort, true, tcp.Segment{
			SrcPort: srcPort, DstPort: c.cfg.DstPort,
			Seq: seq, Flags: tcp.FlagSYN, Window: 65535}),
		c.seg(srcIP, srcPort, false, tcp.Segment{
			SrcPort: c.cfg.DstPort, DstPort: srcPort,
			Seq: ack, Ack: seq + 1, Flags: tcp.FlagSYN | tcp.FlagACK, Window: 65535}),
		c.seg(srcIP, srcPort, true, tcp.Segment{
			SrcPort: srcPort, DstPort: c.cfg.DstPort,
			Seq: seq + 1, Ack: ack + 1, Flags: tcp.FlagACK, Window: 65535}))
	seq++
	ack++
	// Data.
	for i := 0; i < c.cfg.DataPkts; i++ {
		out = append(out, c.seg(srcIP, srcPort, true, tcp.Segment{
			SrcPort: srcPort, DstPort: c.cfg.DstPort,
			Seq: seq, Ack: ack, Flags: tcp.FlagACK, Window: 65535,
			Payload: c.payload}))
		seq += uint32(len(c.payload))
	}
	// Teardown: FIN in both directions (what the tcp bookkeeping
	// filter watches for before scheduling queue removal).
	out = append(out,
		c.seg(srcIP, srcPort, true, tcp.Segment{
			SrcPort: srcPort, DstPort: c.cfg.DstPort,
			Seq: seq, Ack: ack, Flags: tcp.FlagFIN | tcp.FlagACK, Window: 65535}),
		c.seg(srcIP, srcPort, false, tcp.Segment{
			SrcPort: c.cfg.DstPort, DstPort: srcPort,
			Seq: ack, Ack: seq + 1, Flags: tcp.FlagFIN | tcp.FlagACK, Window: 65535}))
	return out
}

// seg marshals one TCP segment into an IP datagram, forward
// (client→server) or reverse.
func (c *Churn) seg(srcIP ip.Addr, _ uint16, forward bool, s tcp.Segment) []byte {
	src, dst := srcIP, c.cfg.DstIP
	if !forward {
		src, dst = dst, src
	}
	h := ip.Header{TTL: 64, Protocol: ip.ProtoTCP, Src: src, Dst: dst}
	raw, err := h.Marshal(s.Marshal(src, dst))
	if err != nil {
		// Impossible for the fixed segment shapes above; a failure here
		// is generator corruption, not an I/O condition.
		panic(fmt.Sprintf("workload: churn marshal: %v", err))
	}
	return raw
}

// Drive emits `flows` complete flows into emit and totals them.
func (c *Churn) Drive(flows int, emit func([]byte)) ChurnStats {
	var st ChurnStats
	for i := 0; i < flows; i++ {
		for _, raw := range c.NextFlow() {
			emit(raw)
			st.Packets++
			st.Bytes += int64(len(raw))
		}
		st.Flows++
	}
	return st
}
