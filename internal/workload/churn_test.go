package workload_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/ip"
	"repro/internal/tcp"
	"repro/internal/workload"
)

// TestChurnFlowShape parses one generated flow back and checks the
// wire order the tcp bookkeeping filter depends on: SYN forward,
// SYN-ACK reverse, ACK, data, then a FIN in each direction.
func TestChurnFlowShape(t *testing.T) {
	c := workload.NewChurn(workload.ChurnConfig{DataPkts: 3, PayloadSize: 128})
	flow := c.NextFlow()
	if len(flow) != c.PacketsPerFlow() || len(flow) != 8 {
		t.Fatalf("flow has %d packets, want %d", len(flow), c.PacketsPerFlow())
	}
	type step struct {
		forward bool
		flags   uint8
		payload int
	}
	want := []step{
		{true, tcp.FlagSYN, 0},
		{false, tcp.FlagSYN | tcp.FlagACK, 0},
		{true, tcp.FlagACK, 0},
		{true, tcp.FlagACK, 128},
		{true, tcp.FlagACK, 128},
		{true, tcp.FlagACK, 128},
		{true, tcp.FlagFIN | tcp.FlagACK, 0},
		{false, tcp.FlagFIN | tcp.FlagACK, 0},
	}
	client := ip.AddrFrom4(11, 11, 10, 99)
	server := ip.AddrFrom4(11, 11, 10, 10)
	for i, raw := range flow {
		h, body, err := ip.Unmarshal(raw)
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		seg, err := tcp.Unmarshal(body)
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		src, dst := client, server
		if !want[i].forward {
			src, dst = server, client
		}
		if h.Src != src || h.Dst != dst {
			t.Fatalf("packet %d: %v->%v, want %v->%v", i, h.Src, h.Dst, src, dst)
		}
		if seg.Flags != want[i].flags {
			t.Fatalf("packet %d: flags %#x, want %#x", i, seg.Flags, want[i].flags)
		}
		if len(seg.Payload) != want[i].payload {
			t.Fatalf("packet %d: %d payload bytes, want %d", i, len(seg.Payload), want[i].payload)
		}
		if seg.DstPort != 5001 && seg.SrcPort != 5001 {
			t.Fatalf("packet %d: neither port is the configured 5001", i)
		}
	}
}

// TestChurnFreshKeys: consecutive flows never share a stream key, and
// the source address advances once the port range wraps.
func TestChurnFreshKeys(t *testing.T) {
	c := workload.NewChurn(workload.ChurnConfig{})
	seen := make(map[filter.Key]bool)
	var firstIP ip.Addr
	for i := 0; i < 70000; i++ {
		flow := c.NextFlow()
		h, body, err := ip.Unmarshal(flow[0])
		if err != nil {
			t.Fatal(err)
		}
		seg, err := tcp.Unmarshal(body)
		if err != nil {
			t.Fatal(err)
		}
		k := filter.Key{SrcIP: h.Src, SrcPort: seg.SrcPort, DstIP: h.Dst, DstPort: seg.DstPort}
		if seen[k] {
			t.Fatalf("flow %d reuses key %v", i, k)
		}
		seen[k] = true
		if i == 0 {
			firstIP = h.Src
		}
	}
	// 70000 flows overflow the 64511-port cycle, so at least two source
	// addresses must have appeared.
	c2 := workload.NewChurn(workload.ChurnConfig{})
	for i := 0; i < 64512; i++ {
		c2.NextFlow()
	}
	h, _, err := ip.Unmarshal(c2.NextFlow()[0])
	if err != nil {
		t.Fatal(err)
	}
	if h.Src == firstIP {
		t.Fatalf("source address did not advance after port wrap")
	}
}

// TestChurnDriveStats: Drive's totals agree with what it emitted.
func TestChurnDriveStats(t *testing.T) {
	c := workload.NewChurn(workload.ChurnConfig{})
	var pkts int
	var bytes int64
	st := c.Drive(100, func(raw []byte) {
		pkts++
		bytes += int64(len(raw))
	})
	if st.Flows != 100 || st.Packets != pkts || st.Bytes != bytes {
		t.Fatalf("stats %+v disagree with emitted %d packets / %d bytes", st, pkts, bytes)
	}
	if want := 100 * c.PacketsPerFlow(); pkts != want {
		t.Fatalf("emitted %d packets, want %d", pkts, want)
	}
}

// TestChurnLauncherStorm is the instantiation-storm lifecycle check:
// a wild-card launcher registration spawns a tcp bookkeeping filter
// for every fresh flow, so a churn burst creates thousands of queues
// — and every one of them must be reclaimed once the FIN handshakes
// age past the tcp filter's close grace. A leak here is the
// million-flow memory cliff the registry redesign is meant to survive.
func TestChurnLauncherStorm(t *testing.T) {
	sys := core.NewSystem(core.Config{Seed: 23})
	sys.MustCommand("load tcp")
	sys.MustCommand("load launcher")
	sys.MustCommand("add launcher 0.0.0.0 0 0.0.0.0 0 tcp")
	hook := sys.ProxyHost.PacketHook()
	in := sys.ProxyHost.Ifaces()[0]

	const flows = 2000
	c := workload.NewChurn(workload.ChurnConfig{DataPkts: 1, PayloadSize: 64})
	st := c.Drive(flows, func(raw []byte) { hook(raw, in) })
	if st.Flows != flows {
		t.Fatalf("drove %d flows, want %d", st.Flows, flows)
	}
	// Mid-storm: every flow spawned a queue pair and the FIN teardowns
	// are still inside the close grace, so the queues are live.
	if got := sys.Proxy.QueueCount(); got == 0 {
		t.Fatalf("no live queues after %d spawned flows", flows)
	}
	// Let simulated time pass the tcp filter's close grace: all
	// scheduled removals fire and the proxy returns to empty.
	sys.Sched.RunFor(30e9)
	if got := sys.Proxy.QueueCount(); got != 0 {
		t.Fatalf("%d queues leaked after close grace", got)
	}
}
