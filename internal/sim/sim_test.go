package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	s.After(30*time.Millisecond, func() { got = append(got, 3) })
	s.After(10*time.Millisecond, func() { got = append(got, 1) })
	s.After(20*time.Millisecond, func() { got = append(got, 2) })
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if s.Now() != Time(30*time.Millisecond) {
		t.Fatalf("clock = %v, want 30ms", s.Now())
	}
}

func TestSchedulerFIFOAtSameInstant(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(Time(5*time.Millisecond), func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", got)
		}
	}
}

func TestTimerStop(t *testing.T) {
	s := NewScheduler(1)
	fired := false
	tm := s.After(time.Millisecond, func() { fired = true })
	if !tm.Active() {
		t.Fatal("timer should be active before firing")
	}
	if !tm.Stop() {
		t.Fatal("Stop should report success")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report failure")
	}
	s.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
	if tm.Active() {
		t.Fatal("stopped timer reports active")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	s := NewScheduler(1)
	tm := s.After(0, func() {})
	s.Run()
	if tm.Stop() {
		t.Fatal("Stop after fire should report failure")
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	s := NewScheduler(1)
	ran := false
	s.After(5*time.Millisecond, func() { ran = true })
	s.RunUntil(Time(2 * time.Millisecond))
	if ran {
		t.Fatal("event ran before its deadline")
	}
	if s.Now() != Time(2*time.Millisecond) {
		t.Fatalf("clock = %v, want 2ms", s.Now())
	}
	s.RunFor(10 * time.Millisecond)
	if !ran {
		t.Fatal("event did not run inside window")
	}
	if s.Now() != Time(12*time.Millisecond) {
		t.Fatalf("clock = %v, want 12ms", s.Now())
	}
}

func TestSchedulingInsideEvent(t *testing.T) {
	s := NewScheduler(1)
	var order []string
	s.After(time.Millisecond, func() {
		order = append(order, "a")
		s.After(time.Millisecond, func() { order = append(order, "c") })
		s.After(0, func() { order = append(order, "b") })
	})
	s.Run()
	want := []string{"a", "b", "c"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := NewScheduler(1)
	s.After(time.Second, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(Time(time.Millisecond), func() {})
}

func TestPendingCount(t *testing.T) {
	s := NewScheduler(1)
	t1 := s.After(time.Millisecond, func() {})
	s.After(2*time.Millisecond, func() {})
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", s.Pending())
	}
	t1.Stop()
	if s.Pending() != 1 {
		t.Fatalf("Pending after stop = %d, want 1", s.Pending())
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []int64 {
		s := NewScheduler(42)
		var samples []int64
		var tick func()
		n := 0
		tick = func() {
			samples = append(samples, s.rng.Int63n(1000), int64(s.Now()))
			n++
			if n < 50 {
				s.After(Duration(s.rng.Intn(int(time.Millisecond))), tick)
			}
		}
		s.After(0, tick)
		s.Run()
		return samples
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// Property: for any set of non-negative delays, events fire in
// non-decreasing time order.
func TestEventOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		s := NewScheduler(7)
		var times []Time
		for _, d := range delays {
			s.After(Duration(d)*time.Microsecond, func() {
				times = append(times, s.Now())
			})
		}
		s.Run()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == len(delays)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
