package sim

import (
	"sync"
	"time"
)

// Realtime advances a Scheduler in step with wall-clock time, so a
// simulated system can interact with real network clients (the spd and
// eemd daemons). The scheduler is single-threaded: all work that
// touches it — or any state owned by its callbacks — must be submitted
// through Do/DoSync and executes between simulation steps.
type Realtime struct {
	s    *Scheduler
	do   chan func()
	stop chan struct{}
	once sync.Once
}

// NewRealtime wraps a scheduler for wall-clock-paced execution.
func NewRealtime(s *Scheduler) *Realtime {
	return &Realtime{s: s, do: make(chan func(), 64), stop: make(chan struct{})}
}

// Do submits fn for execution on the simulation goroutine.
func (r *Realtime) Do(fn func()) {
	select {
	case r.do <- fn:
	case <-r.stop:
	}
}

// DoSync runs fn on the simulation goroutine and waits for it.
func (r *Realtime) DoSync(fn func()) {
	done := make(chan struct{})
	r.Do(func() {
		defer close(done)
		fn()
	})
	select {
	case <-done:
	case <-r.stop:
	}
}

// Run drives the scheduler until Stop is called. It must be the only
// goroutine touching the scheduler. step is the granularity at which
// virtual time chases wall-clock time (e.g. 5ms).
func (r *Realtime) Run(step time.Duration) {
	if step <= 0 {
		step = 5 * time.Millisecond
	}
	startWall := time.Now()
	startSim := r.s.Now()
	ticker := time.NewTicker(step)
	defer ticker.Stop()
	for {
		select {
		case <-r.stop:
			return
		case fn := <-r.do:
			fn()
		case <-ticker.C:
			target := startSim.Add(time.Since(startWall))
			r.s.RunUntil(target)
		}
	}
}

// Stop terminates Run and unblocks pending Do calls.
func (r *Realtime) Stop() {
	r.once.Do(func() { close(r.stop) })
}
