package sim

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRealtimeAdvancesWithWallClock(t *testing.T) {
	s := NewScheduler(1)
	var fired atomic.Int64
	var arm func()
	arm = func() {
		fired.Add(1)
		s.After(10*time.Millisecond, arm)
	}
	s.After(0, arm)
	rt := NewRealtime(s)
	go rt.Run(2 * time.Millisecond)
	time.Sleep(150 * time.Millisecond)
	rt.Stop()
	n := fired.Load()
	// ~15 firings expected in 150ms of 10ms timers; allow slack for CI.
	if n < 5 || n > 40 {
		t.Fatalf("periodic timer fired %d times in 150ms", n)
	}
}

func TestRealtimeDoSync(t *testing.T) {
	s := NewScheduler(1)
	rt := NewRealtime(s)
	go rt.Run(time.Millisecond)
	defer rt.Stop()
	ran := false
	rt.DoSync(func() { ran = true })
	if !ran {
		t.Fatal("DoSync returned before fn ran")
	}
	// Scheduler access from inside Do is safe (single goroutine).
	var now Time
	rt.DoSync(func() { now = s.Now() })
	_ = now
}

// TestRealtimeConcurrentClients hammers the driver from many
// goroutines at once — mixed Do/DoSync submissions racing timer
// firings and a concurrent Stop. All scheduler access funnels through
// the simulation goroutine, so `go test -race` must stay silent.
func TestRealtimeConcurrentClients(t *testing.T) {
	s := NewScheduler(1)
	rt := NewRealtime(s)
	var timerFired atomic.Int64
	s.After(time.Millisecond, func() { timerFired.Add(1) })
	go rt.Run(time.Millisecond)

	const clients = 8
	var submitted atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if i%2 == 0 {
					rt.DoSync(func() {
						submitted.Add(1)
						s.After(time.Duration(i)*time.Microsecond, func() { timerFired.Add(1) })
					})
				} else {
					rt.Do(func() { submitted.Add(1) })
				}
			}
		}(c)
	}
	wg.Wait()
	// Quiesce, then stop racing against a straggling ticker step.
	rt.DoSync(func() {})
	rt.Stop()
	if n := submitted.Load(); n != clients*50 {
		t.Fatalf("executed %d of %d submitted closures", n, clients*50)
	}
}

func TestRealtimeStopUnblocks(t *testing.T) {
	s := NewScheduler(1)
	rt := NewRealtime(s)
	go rt.Run(time.Millisecond)
	rt.Stop()
	rt.Stop() // idempotent
	done := make(chan struct{})
	go func() {
		rt.DoSync(func() {}) // must not hang after Stop
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("DoSync hung after Stop")
	}
}
