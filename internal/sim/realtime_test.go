package sim

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestRealtimeAdvancesWithWallClock(t *testing.T) {
	s := NewScheduler(1)
	var fired atomic.Int64
	var arm func()
	arm = func() {
		fired.Add(1)
		s.After(10*time.Millisecond, arm)
	}
	s.After(0, arm)
	rt := NewRealtime(s)
	go rt.Run(2 * time.Millisecond)
	time.Sleep(150 * time.Millisecond)
	rt.Stop()
	n := fired.Load()
	// ~15 firings expected in 150ms of 10ms timers; allow slack for CI.
	if n < 5 || n > 40 {
		t.Fatalf("periodic timer fired %d times in 150ms", n)
	}
}

func TestRealtimeDoSync(t *testing.T) {
	s := NewScheduler(1)
	rt := NewRealtime(s)
	go rt.Run(time.Millisecond)
	defer rt.Stop()
	ran := false
	rt.DoSync(func() { ran = true })
	if !ran {
		t.Fatal("DoSync returned before fn ran")
	}
	// Scheduler access from inside Do is safe (single goroutine).
	var now Time
	rt.DoSync(func() { now = s.Now() })
	_ = now
}

func TestRealtimeStopUnblocks(t *testing.T) {
	s := NewScheduler(1)
	rt := NewRealtime(s)
	go rt.Run(time.Millisecond)
	rt.Stop()
	rt.Stop() // idempotent
	done := make(chan struct{})
	go func() {
		rt.DoSync(func() {}) // must not hang after Stop
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("DoSync hung after Stop")
	}
}
