// Package sim provides a deterministic discrete-event scheduler with a
// virtual clock. Every component of the simulated network (links, TCP
// endpoints, the service proxy, the EEM) schedules work on a single
// Scheduler, so whole-system experiments run repeatably and far faster
// than real time.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is a point in virtual time, measured in nanoseconds from the
// start of the run. The zero Time is the beginning of the simulation.
type Time int64

// Duration re-exports time.Duration for callers' convenience; virtual
// durations use the same unit as wall-clock durations.
type Duration = time.Duration

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// String formats the time as a duration from the simulation start.
func (t Time) String() string { return Duration(t).String() }

// event is a scheduled callback. seq breaks ties so events scheduled at
// the same instant fire in scheduling order (deterministic FIFO).
type event struct {
	at      Time
	seq     uint64
	fn      func()
	stopped bool
	index   int // heap index, -1 when popped
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Timer is a handle to a scheduled event. Stop cancels the event if it
// has not yet fired.
type Timer struct {
	ev *event
}

// Stop cancels the timer. It reports whether the call prevented the
// event from firing.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.stopped || t.ev.index == -1 {
		return false
	}
	t.ev.stopped = true
	return true
}

// Active reports whether the timer is still pending.
func (t *Timer) Active() bool {
	return t != nil && t.ev != nil && !t.ev.stopped && t.ev.index != -1
}

// Scheduler owns the virtual clock and the pending-event queue.
// The zero value is not usable; call NewScheduler.
type Scheduler struct {
	now    Time
	seq    uint64
	events eventHeap
	rng    *rand.Rand
}

// NewScheduler returns a scheduler whose clock reads zero and whose
// random source is seeded with seed (deterministic per seed).
func NewScheduler(seed int64) *Scheduler {
	return &Scheduler{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Rand returns the scheduler's deterministic random source. All
// stochastic components (loss models, jitter) must draw from it so a
// run is reproducible from its seed.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// At schedules fn to run at the absolute virtual time t. Scheduling in
// the past panics: it indicates a logic error in the caller.
func (s *Scheduler) At(t Time, fn func()) *Timer {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, s.now))
	}
	e := &event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, e)
	return &Timer{ev: e}
}

// After schedules fn to run d from now. Negative d is treated as zero.
func (s *Scheduler) After(d Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now.Add(d), fn)
}

// Step runs the earliest pending event, advancing the clock to its
// deadline. It reports whether an event ran.
func (s *Scheduler) Step() bool {
	for len(s.events) > 0 {
		e := heap.Pop(&s.events).(*event)
		if e.stopped {
			continue
		}
		s.now = e.at
		e.fn()
		return true
	}
	return false
}

// RunUntil executes events in order until the queue is empty or the
// next event lies after deadline. The clock is left at the later of its
// current value and deadline... precisely: at the time of the last
// event executed, then advanced to deadline.
func (s *Scheduler) RunUntil(deadline Time) {
	for len(s.events) > 0 {
		// Peek; skip stopped events without advancing time.
		e := s.events[0]
		if e.stopped {
			heap.Pop(&s.events)
			continue
		}
		if e.at > deadline {
			break
		}
		heap.Pop(&s.events)
		s.now = e.at
		e.fn()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// RunFor advances the simulation by d.
func (s *Scheduler) RunFor(d Duration) { s.RunUntil(s.now.Add(d)) }

// Run drains the event queue completely. Use with care: components that
// re-arm periodic timers forever will never let Run return; give those
// components a stop mechanism or use RunUntil.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// Pending returns the number of live (non-cancelled) events queued.
func (s *Scheduler) Pending() int {
	n := 0
	for _, e := range s.events {
		if !e.stopped {
			n++
		}
	}
	return n
}
