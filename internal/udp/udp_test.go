package udp_test

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/ip"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/udp"
)

func TestDatagramRoundTrip(t *testing.T) {
	d := udp.Datagram{SrcPort: 4000, DstPort: 4001, Payload: []byte("media frame")}
	src, dst := ip.MustParseAddr("1.1.1.1"), ip.MustParseAddr("2.2.2.2")
	raw := d.Marshal(src, dst)
	if !udp.VerifyChecksum(src, dst, raw) {
		t.Fatal("checksum invalid after marshal")
	}
	g, err := udp.Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if g.SrcPort != 4000 || g.DstPort != 4001 || !bytes.Equal(g.Payload, d.Payload) {
		t.Fatalf("round trip mismatch: %+v", g)
	}
	raw[len(raw)-1] ^= 1
	if udp.VerifyChecksum(src, dst, raw) {
		t.Fatal("corruption not detected")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := udp.Unmarshal([]byte{1, 2, 3}); err == nil {
		t.Fatal("short datagram accepted")
	}
	// Length field larger than the buffer.
	d := udp.Datagram{SrcPort: 1, DstPort: 2, Payload: []byte("xxxx")}
	raw := d.Marshal(1, 2)
	if _, err := udp.Unmarshal(raw[:9]); err == nil {
		t.Fatal("truncated datagram accepted")
	}
}

func TestZeroChecksumMeansUnused(t *testing.T) {
	d := udp.Datagram{SrcPort: 1, DstPort: 2, Payload: []byte("y")}
	raw := d.Marshal(3, 4)
	raw[6], raw[7] = 0, 0 // checksum "not used"
	if !udp.VerifyChecksum(3, 4, raw) {
		t.Fatal("zero checksum must be accepted per RFC 768")
	}
}

func TestStackBindSendDeliver(t *testing.T) {
	s := sim.NewScheduler(1)
	n := netsim.New(s)
	a := n.AddNode("a")
	b := n.AddNode("b")
	n.Connect(a, ip.MustParseAddr("10.0.0.1"), b, ip.MustParseAddr("10.0.0.2"), netsim.LinkConfig{})
	sa, sb := udp.NewStack(a), udp.NewStack(b)
	a.RegisterProto(ip.ProtoUDP, func(h ip.Header, p, raw []byte, in *netsim.Iface) { sa.Deliver(h.Src, h.Dst, p) })
	b.RegisterProto(ip.ProtoUDP, func(h ip.Header, p, raw []byte, in *netsim.Iface) { sb.Deliver(h.Src, h.Dst, p) })

	var got []byte
	var gotSrc ip.Addr
	var gotPort uint16
	if err := sb.Bind(4001, func(src ip.Addr, sp uint16, payload []byte) {
		got, gotSrc, gotPort = payload, src, sp
	}); err != nil {
		t.Fatal(err)
	}
	if err := sb.Bind(4001, func(ip.Addr, uint16, []byte) {}); err == nil {
		t.Fatal("duplicate bind accepted")
	}
	sa.Send(4000, b.Addr(), 4001, []byte("ping"))
	s.RunFor(time.Second)
	if string(got) != "ping" || gotSrc != a.Addr() || gotPort != 4000 {
		t.Fatalf("delivery: %q from %v:%d", got, gotSrc, gotPort)
	}

	// Unbound port: silently dropped.
	got = nil
	sa.Send(4000, b.Addr(), 9999, []byte("lost"))
	s.RunFor(time.Second)
	if got != nil {
		t.Fatal("unbound port delivered")
	}

	// Unbind stops delivery.
	sb.Unbind(4001)
	sa.Send(4000, b.Addr(), 4001, []byte("after"))
	s.RunFor(time.Second)
	if string(got) == "after" {
		t.Fatal("unbound handler still called")
	}
}

func TestDatagramRoundTripProperty(t *testing.T) {
	f := func(sp, dp uint16, src, dst uint32, payload []byte) bool {
		if len(payload) > 2000 {
			payload = payload[:2000]
		}
		d := udp.Datagram{SrcPort: sp, DstPort: dp, Payload: payload}
		raw := d.Marshal(ip.Addr(src), ip.Addr(dst))
		if !udp.VerifyChecksum(ip.Addr(src), ip.Addr(dst), raw) {
			return false
		}
		g, err := udp.Unmarshal(raw)
		return err == nil && g.SrcPort == sp && g.DstPort == dp && bytes.Equal(g.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
