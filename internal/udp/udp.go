// Package udp implements the User Datagram Protocol over the simulated
// network: the wire codec and a minimal port-demultiplexing stack. The
// thesis's real-time media services (hierarchical discard, data-type
// translation) operate on UDP streams, where loss is tolerated by the
// application rather than repaired by the transport.
package udp

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/ip"
)

// HeaderLen is the UDP header length.
const HeaderLen = 8

// Datagram is a decoded UDP datagram.
type Datagram struct {
	SrcPort, DstPort uint16
	Checksum         uint16
	Payload          []byte
}

// Marshal encodes the datagram with a pseudo-header checksum.
func (d *Datagram) Marshal(src, dst ip.Addr) []byte {
	return d.AppendMarshal(nil, src, dst)
}

// AppendMarshal appends the encoded datagram to dst0, growing it as
// needed, and returns the extended slice. It lets hot paths reuse a
// scratch buffer instead of allocating per datagram; the appended
// region must not already alias d.Payload.
func (d *Datagram) AppendMarshal(dst0 []byte, src, dst ip.Addr) []byte {
	off := len(dst0)
	n := HeaderLen + len(d.Payload)
	if cap(dst0)-off < n {
		nb := make([]byte, off, off+n)
		copy(nb, dst0)
		dst0 = nb
	}
	dst0 = dst0[:off+n]
	b := dst0[off:]
	binary.BigEndian.PutUint16(b[0:], d.SrcPort)
	binary.BigEndian.PutUint16(b[2:], d.DstPort)
	binary.BigEndian.PutUint16(b[4:], uint16(n))
	b[6], b[7] = 0, 0 // checksum field must be zero while summing
	copy(b[HeaderLen:], d.Payload)
	d.Checksum = ip.PseudoHeaderChecksum(src, dst, ip.ProtoUDP, b)
	if d.Checksum == 0 {
		d.Checksum = 0xffff // RFC 768: zero means "no checksum"
	}
	binary.BigEndian.PutUint16(b[6:], d.Checksum)
	return dst0
}

// ErrTruncated reports a buffer too short to be a UDP datagram.
var ErrTruncated = errors.New("udp: truncated datagram")

// Unmarshal decodes a UDP datagram; Payload aliases b.
func Unmarshal(b []byte) (Datagram, error) {
	var d Datagram
	if len(b) < HeaderLen {
		return d, ErrTruncated
	}
	d.SrcPort = binary.BigEndian.Uint16(b[0:])
	d.DstPort = binary.BigEndian.Uint16(b[2:])
	length := binary.BigEndian.Uint16(b[4:])
	if int(length) < HeaderLen || int(length) > len(b) {
		return d, ErrTruncated
	}
	d.Checksum = binary.BigEndian.Uint16(b[6:])
	d.Payload = b[HeaderLen:length]
	return d, nil
}

// VerifyChecksum reports whether the datagram checksum is valid (or
// absent, which RFC 768 permits).
func VerifyChecksum(src, dst ip.Addr, b []byte) bool {
	if len(b) < HeaderLen {
		return false
	}
	if binary.BigEndian.Uint16(b[6:]) == 0 {
		return true // checksum not used
	}
	return ip.PseudoHeaderChecksum(src, dst, ip.ProtoUDP, b) == 0
}

// Network is the IP service a Stack runs over (same contract as
// tcp.Network minus the clock).
type Network interface {
	SendIP(dst ip.Addr, proto byte, payload []byte)
	Addr() ip.Addr
}

// Handler consumes datagrams delivered to a bound port.
type Handler func(src ip.Addr, srcPort uint16, payload []byte)

// Stack is a minimal UDP endpoint: bind ports, send datagrams.
type Stack struct {
	net   Network
	ports map[uint16]Handler
}

// NewStack creates a UDP stack on the given host.
func NewStack(n Network) *Stack {
	return &Stack{net: n, ports: make(map[uint16]Handler)}
}

// Bind registers h to receive datagrams addressed to port.
func (s *Stack) Bind(port uint16, h Handler) error {
	if _, dup := s.ports[port]; dup {
		return fmt.Errorf("udp: port %d already bound", port)
	}
	s.ports[port] = h
	return nil
}

// Unbind releases a port.
func (s *Stack) Unbind(port uint16) { delete(s.ports, port) }

// Send transmits payload from srcPort to dst:dstPort.
func (s *Stack) Send(srcPort uint16, dst ip.Addr, dstPort uint16, payload []byte) {
	d := Datagram{SrcPort: srcPort, DstPort: dstPort, Payload: payload}
	s.net.SendIP(dst, ip.ProtoUDP, d.Marshal(s.net.Addr(), dst))
}

// Deliver hands the stack a UDP payload from the IP layer.
func (s *Stack) Deliver(src, dst ip.Addr, payload []byte) {
	if !VerifyChecksum(src, dst, payload) {
		return
	}
	d, err := Unmarshal(payload)
	if err != nil {
		return
	}
	if h, ok := s.ports[d.DstPort]; ok {
		h(src, d.SrcPort, d.Payload)
	}
}
