package filters

import (
	"bytes"
	"fmt"

	"repro/internal/filter"
	"repro/internal/ip"
	"repro/internal/tcp"
)

// ttsf is the TCP-Transparency-Support Filter of thesis §8.1: the
// mechanism that lets data-manipulation services (rdrop, comp,
// discard...) permanently remove, shrink, or grow TCP segment payloads
// while both endpoints continue to see a semantically consistent
// stream.
//
// It works by maintaining, per stream, the mapping between the
// original (wired sender) sequence space and the modified (wireless)
// sequence space:
//
//   - data segments heading to the mobile have their sequence numbers
//     rewritten to the modified space, after the service filters have
//     had their turn at the payload (the TTSF's out method runs at a
//     priority between the services and the tcp checksum filter);
//   - acknowledgements from the mobile have their ack numbers
//     translated back to the original space, taking the "upper
//     preimage" so that acknowledged modified data acknowledges all the
//     original bytes it stands for — including bytes a service dropped;
//   - retransmissions of already-serviced ranges are reconstructed
//     from a record of past edits, so the mobile always sees the same
//     transformation regardless of how often the sender retransmits
//     (§8.1.4's "TCP-specific issues");
//   - when a service drops the segment at the mobile's ack frontier,
//     the TTSF acknowledges the dropped bytes to the sender itself —
//     otherwise the sender would retransmit them forever.
//
// The key names the serviced data direction (wired sender → mobile).
type ttsf struct{}

// NewTTSF returns the TTSF factory.
func NewTTSF() filter.Factory { return &ttsf{} }

func (*ttsf) Name() string              { return "ttsf" }
func (*ttsf) Priority() filter.Priority { return PriorityTTSF }
func (*ttsf) Description() string {
	return "sequence-space remapping for transparent payload modification"
}

// TTSFStats counts remapping events for the experiment harness.
type TTSFStats struct {
	Edits             int64 // recorded transformations (drop/shrink/grow)
	BytesIn           int64 // original payload bytes entering
	BytesOut          int64 // modified payload bytes leaving
	Reconstructed     int64 // retransmissions rebuilt from the edit log
	SynthesizedAcks   int64 // ACKs injected to cover dropped frontiers
	Unreconstructable int64 // retransmissions dropped (partial overlap)
}

// ttsfInstances exposes per-stream stats; keyed by the forward key.
var ttsfInstances = map[filter.Key]*ttsfInst{}

// TTSFStatsFor returns the stats of the TTSF on key k, if any.
func TTSFStatsFor(k filter.Key) (TTSFStats, bool) {
	if inst, ok := ttsfInstances[k]; ok {
		return inst.stats, true
	}
	return TTSFStats{}, false
}

// edit records one transformation of an original sequence range.
type edit struct {
	origStart uint32
	origLen   uint32
	newBytes  []byte // transformed payload; empty = dropped
}

func (e *edit) origEnd() uint32 { return e.origStart + e.origLen }
func (e *edit) delta() int64    { return int64(len(e.newBytes)) - int64(e.origLen) }

type ttsfInst struct {
	env filter.Env
	fwd filter.Key

	started  bool   // frontier initialised
	frontier uint32 // original space: end of the processed region
	base     int64  // cumulative delta of pruned edits
	edits    []edit // live edits, ascending origStart

	// In-hook snapshot of the pre-service payload of the packet
	// currently traversing the queue.
	pendingSeq   uint32
	pendingOrig  []byte
	pendingValid bool

	// Mobile's cumulative ack high-water (modified space) and the
	// highest ack forwarded/synthesized to the sender (original space).
	mobileAckNew  uint32
	haveMobileAck bool
	maxAckFwd     uint32
	haveAckFwd    bool

	// Reverse-packet template for synthesizing ACKs.
	haveTemplate bool
	tmplSeq      uint32
	tmplWindow   uint16
	tmplSrc      ip.Addr
	tmplDst      ip.Addr

	stats TTSFStats
}

func (f *ttsf) New(env filter.Env, k filter.Key, args []string) error {
	inst := &ttsfInst{env: env, fwd: k}
	detachRev, err := env.Attach(k.Reverse(), filter.Hooks{
		Filter: "ttsf", Priority: PriorityTTSF,
		Out: inst.reverseOut,
	})
	if err != nil {
		return err
	}
	_, err = env.Attach(k, filter.Hooks{
		Filter: "ttsf", Priority: PriorityTTSF,
		In:  inst.forwardIn,
		Out: inst.forwardOut,
		OnClose: func() {
			delete(ttsfInstances, k)
			detachRev()
		},
		State: inst,
	})
	if err != nil {
		detachRev()
		return err
	}
	ttsfInstances[k] = inst
	return nil
}

// --- migration ----------------------------------------------------------------

// ttsf state snapshot flag bits.
const (
	ttsfFlagStarted = 1 << iota
	ttsfFlagMobileAck
	ttsfFlagAckFwd
	ttsfFlagTemplate
)

// SnapshotState implements filter.StateSnapshotter: it serializes the
// full sequence-remapping state — frontier, pruned-edit base, the live
// edit log, both ack high-waters, the ACK-synthesis template, and the
// stats — so a peer SP can continue the remapping mid-stream. The
// pending in-packet snapshot is deliberately excluded: snapshots are
// taken at a batch boundary, where no packet is traversing the queue.
func (t *ttsfInst) SnapshotState() ([]byte, error) {
	var w stateWriter
	var flags byte
	if t.started {
		flags |= ttsfFlagStarted
	}
	if t.haveMobileAck {
		flags |= ttsfFlagMobileAck
	}
	if t.haveAckFwd {
		flags |= ttsfFlagAckFwd
	}
	if t.haveTemplate {
		flags |= ttsfFlagTemplate
	}
	w.u8(flags)
	w.u32(t.frontier)
	w.i64(t.base)
	w.u32(t.mobileAckNew)
	w.u32(t.maxAckFwd)
	w.u32(t.tmplSeq)
	w.u16(t.tmplWindow)
	w.u32(uint32(t.tmplSrc))
	w.u32(uint32(t.tmplDst))
	w.i64(t.stats.Edits)
	w.i64(t.stats.BytesIn)
	w.i64(t.stats.BytesOut)
	w.i64(t.stats.Reconstructed)
	w.i64(t.stats.SynthesizedAcks)
	w.i64(t.stats.Unreconstructable)
	w.u32(uint32(len(t.edits)))
	for i := range t.edits {
		e := &t.edits[i]
		w.u32(e.origStart)
		w.u32(e.origLen)
		w.bytes(e.newBytes)
	}
	return w.b, nil
}

// RestoreState implements filter.StateSnapshotter on a freshly
// instantiated instance at the destination proxy.
func (t *ttsfInst) RestoreState(b []byte) error {
	r := stateReader{b: b}
	flags := r.u8()
	frontier := r.u32()
	base := r.i64()
	mobileAckNew := r.u32()
	maxAckFwd := r.u32()
	tmplSeq := r.u32()
	tmplWindow := r.u16()
	tmplSrc := ip.Addr(r.u32())
	tmplDst := ip.Addr(r.u32())
	stats := TTSFStats{
		Edits:             r.i64(),
		BytesIn:           r.i64(),
		BytesOut:          r.i64(),
		Reconstructed:     r.i64(),
		SynthesizedAcks:   r.i64(),
		Unreconstructable: r.i64(),
	}
	n := int(r.u32())
	var edits []edit
	for i := 0; i < n && r.err == nil; i++ {
		edits = append(edits, edit{
			origStart: r.u32(),
			origLen:   r.u32(),
			newBytes:  r.bytes(),
		})
	}
	if err := r.done(); err != nil {
		return fmt.Errorf("ttsf: restore: %w", err)
	}
	t.started = flags&ttsfFlagStarted != 0
	t.haveMobileAck = flags&ttsfFlagMobileAck != 0
	t.haveAckFwd = flags&ttsfFlagAckFwd != 0
	t.haveTemplate = flags&ttsfFlagTemplate != 0
	t.frontier = frontier
	t.base = base
	t.mobileAckNew = mobileAckNew
	t.maxAckFwd = maxAckFwd
	t.tmplSeq = tmplSeq
	t.tmplWindow = tmplWindow
	t.tmplSrc = tmplSrc
	t.tmplDst = tmplDst
	t.stats = stats
	t.edits = edits
	t.pendingValid = false
	return nil
}

var _ filter.StateSnapshotter = (*ttsfInst)(nil)

// --- mapping ------------------------------------------------------------------

// deltaBefore returns the cumulative sequence-space delta of all edits
// that end at or before original position s.
func (t *ttsfInst) deltaBefore(s uint32) int64 {
	d := t.base
	for i := range t.edits {
		if !seqLEu(t.edits[i].origEnd(), s) {
			break
		}
		d += t.edits[i].delta()
	}
	return d
}

// mapOrig translates an original-space sequence number at an edit
// boundary (or in an identity region) to the modified space.
func (t *ttsfInst) mapOrig(s uint32) uint32 {
	return uint32(int64(s) + t.deltaBefore(s))
}

// invMapAck translates a cumulative ack from the modified space back
// to the original space, taking the upper preimage: an ack that covers
// a transformed range acknowledges every original byte behind it, and
// an ack sitting exactly at a dropped range acknowledges the dropped
// bytes too.
func (t *ttsfInst) invMapAck(a uint32) uint32 {
	d := t.base
	for i := range t.edits {
		e := &t.edits[i]
		newStart := uint32(int64(e.origStart) + d)
		newEnd := newStart + uint32(len(e.newBytes))
		if seqLTu(a, newStart) {
			return uint32(int64(a) - d)
		}
		if seqLTu(a, newEnd) {
			// Partial ack of a transformed range: conservatively claim
			// nothing of the original range.
			return e.origStart
		}
		d += e.delta()
	}
	return uint32(int64(a) - d)
}

// --- forward path ---------------------------------------------------------------

// forwardIn snapshots the pre-service payload so forwardOut can
// compare it with the post-service payload.
func (t *ttsfInst) forwardIn(p *filter.Packet) {
	t.pendingValid = false
	if p.TCP == nil {
		return
	}
	if p.TCP.Flags&tcp.FlagSYN != 0 && !t.started {
		t.started = true
		t.frontier = p.TCP.Seq + 1
		return
	}
	if !t.started {
		// Attached mid-stream: the first segment seen defines the
		// frontier; everything before it passes identically.
		t.started = true
		t.frontier = p.TCP.Seq
	}
	t.pendingSeq = p.TCP.Seq
	t.pendingOrig = append(t.pendingOrig[:0], p.TCP.Payload...)
	t.pendingValid = true
}

func (t *ttsfInst) forwardOut(p *filter.Packet) {
	if p.TCP == nil || !t.started {
		return
	}
	if p.TCP.Flags&tcp.FlagSYN != 0 {
		return // handshake passes untouched
	}
	seq := p.TCP.Seq
	origLen := uint32(len(t.pendingOrig))
	if !t.pendingValid {
		origLen = uint32(len(p.TCP.Payload))
	}

	if origLen == 0 {
		// Pure ACK / FIN / window probe: remap the sequence number.
		t.rewriteSeq(p, t.mapOrig(seq))
		return
	}

	end := seq + origLen
	switch {
	case seq == t.frontier || seqLTu(t.frontier, seq):
		// New data (possibly with a gap we'll see later as a
		// retransmission): record the service filters' work.
		t.recordNew(p, seq, origLen)
	default:
		// Retransmission of serviced data.
		if t.haveAckFwd && seqLEu(end, t.maxAckFwd) {
			// The whole range is already acknowledged toward the
			// sender (its covering ack may have been lost): drop the
			// stale copy and re-assert the ack. Edits below this point
			// may have been pruned, so reconstruction is not possible
			// — nor needed.
			p.Drop()
			t.ackDroppedFrontier(true)
			return
		}
		// Rebuild it from the record.
		if seqLTu(t.frontier, end) {
			// Straddles the frontier: cut at the frontier; the tail
			// will arrive again as new data later. Only the recorded
			// prefix can be reproduced faithfully.
			end = t.frontier
			origLen = end - seq
		}
		t.reconstruct(p, seq, origLen)
	}
}

// recordNew processes a segment of not-yet-seen data after the service
// filters have modified (or dropped) it.
func (t *ttsfInst) recordNew(p *filter.Packet, seq, origLen uint32) {
	t.stats.BytesIn += int64(origLen)
	newSeq := t.mapOrig(seq)
	cur := p.TCP.Payload
	switch {
	case p.Dropped():
		t.edits = append(t.edits, edit{origStart: seq, origLen: origLen})
		t.stats.Edits++
	case t.pendingValid && !bytes.Equal(cur, t.pendingOrig):
		nb := make([]byte, len(cur))
		copy(nb, cur)
		t.edits = append(t.edits, edit{origStart: seq, origLen: origLen, newBytes: nb})
		t.stats.Edits++
		t.stats.BytesOut += int64(len(cur))
	default:
		t.stats.BytesOut += int64(origLen)
	}
	t.frontier = seq + origLen
	if !p.Dropped() {
		t.rewriteSeq(p, newSeq)
	} else {
		t.ackDroppedFrontier(false)
	}
}

// reconstruct rebuilds a retransmitted range from the edit log:
// identity gaps come from the packet's own (pre-service) bytes, edited
// ranges from their recorded transformations. Ranges that only
// partially overlap an edit cannot be reproduced and are dropped — the
// sender's next retransmission will align.
func (t *ttsfInst) reconstruct(p *filter.Packet, seq, origLen uint32) {
	orig := t.pendingOrig
	if !t.pendingValid {
		orig = p.TCP.Payload
	}
	end := seq + origLen
	var out []byte
	cur := seq
	truncated := false
	for i := range t.edits {
		e := &t.edits[i]
		if seqLEu(e.origEnd(), cur) {
			continue
		}
		if seqLEu(end, e.origStart) {
			break
		}
		if seqLTu(cur, e.origStart) {
			out = append(out, orig[cur-seq:e.origStart-seq]...)
			cur = e.origStart
		}
		if cur != e.origStart {
			// Starts inside a transformed range: unreproducible.
			t.stats.Unreconstructable++
			p.Drop()
			return
		}
		if seqLTu(end, e.origEnd()) {
			// The retransmission ends inside this edit (the sender
			// re-chunked the window differently): forward only the
			// reconstructable prefix. The covering ack for it moves
			// the sender's next chunk to the edit boundary.
			truncated = true
			break
		}
		out = append(out, e.newBytes...)
		cur = e.origEnd()
	}
	if !truncated && seqLTu(cur, end) {
		out = append(out, orig[cur-seq:end-seq]...)
	}
	t.stats.Reconstructed++
	if len(out) == 0 {
		p.Drop()
		// A fully dropped retransmission means the sender missed (or
		// never got) the covering ack; re-assert it even if we believe
		// we already sent it.
		t.ackDroppedFrontier(true)
		return
	}
	newSeq := t.mapOrig(seq)
	if !bytes.Equal(out, p.TCP.Payload) {
		p.TCP.Payload = out
		p.MarkDirty()
	}
	t.rewriteSeq(p, newSeq)
}

func (t *ttsfInst) rewriteSeq(p *filter.Packet, newSeq uint32) {
	if p.TCP.Seq != newSeq {
		p.TCP.Seq = newSeq
		p.MarkDirty()
	}
}

// --- reverse path ---------------------------------------------------------------

// reverseOut translates mobile acknowledgements into the sender's
// sequence space and keeps the synthesis template fresh.
func (t *ttsfInst) reverseOut(p *filter.Packet) {
	if p.TCP == nil || p.TCP.Flags&tcp.FlagACK == 0 {
		return
	}
	t.haveTemplate = true
	t.tmplSeq = p.TCP.Seq
	if p.TCP.Flags&tcp.FlagSYN != 0 {
		// A SYN consumes sequence space; a synthesized ACK must use
		// the next valid sequence number or the sender discards it.
		t.tmplSeq++
	}
	t.tmplWindow = p.TCP.Window
	t.tmplSrc = p.IP.Src
	t.tmplDst = p.IP.Dst

	a := p.TCP.Ack
	if !t.haveMobileAck || seqLTu(t.mobileAckNew, a) {
		t.mobileAckNew = a
		t.haveMobileAck = true
	}
	orig := t.invMapAck(a)
	if orig != a {
		p.TCP.Ack = orig
		p.MarkDirty()
	}
	if !t.haveAckFwd || seqLTu(t.maxAckFwd, orig) {
		t.maxAckFwd = orig
		t.haveAckFwd = true
		t.prune()
	}
}

// ackDroppedFrontier injects an acknowledgement to the sender covering
// original bytes that a service dropped at the mobile's ack frontier —
// bytes the mobile will never see or ack.
func (t *ttsfInst) ackDroppedFrontier(force bool) {
	if !t.haveMobileAck || !t.haveTemplate {
		return
	}
	orig := t.invMapAck(t.mobileAckNew)
	if t.haveAckFwd && !seqLTu(t.maxAckFwd, orig) && !(force && orig == t.maxAckFwd) {
		return
	}
	t.maxAckFwd = orig
	t.haveAckFwd = true
	seg := tcp.Segment{
		SrcPort: t.fwd.DstPort, DstPort: t.fwd.SrcPort,
		Seq: t.tmplSeq, Ack: orig,
		Flags: tcp.FlagACK, Window: t.tmplWindow,
	}
	h := ip.Header{TTL: 64, Protocol: ip.ProtoTCP, Src: t.tmplSrc, Dst: t.tmplDst}
	raw, err := h.Marshal(seg.Marshal(t.tmplSrc, t.tmplDst))
	if err != nil {
		t.env.Logf("ttsf: synthesize ack: %v", err)
		return
	}
	t.stats.SynthesizedAcks++
	t.env.Inject(raw)
	t.prune()
}

// prune discards edits wholly below the sender's acknowledged
// frontier; the sender will never retransmit them.
func (t *ttsfInst) prune() {
	if !t.haveAckFwd {
		return
	}
	n := 0
	for n < len(t.edits) && seqLEu(t.edits[n].origEnd(), t.maxAckFwd) {
		t.base += t.edits[n].delta()
		n++
	}
	if n > 0 {
		t.edits = append(t.edits[:0], t.edits[n:]...)
	}
}
