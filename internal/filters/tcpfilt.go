package filters

import (
	"time"

	"repro/internal/filter"
	"repro/internal/tcp"
)

// tcpFilt is the thesis's "tcp" bookkeeping filter: it "watches TCP
// streams, recalculating IP checksums as necessary and deleting all
// filters associated with TCP streams when the stream closes"
// (§5.3.2). It runs at HIGH priority so its out method executes last,
// after every other filter's modifications.
type tcpFilt struct{}

// NewTCPFilt returns the tcp bookkeeping filter factory.
func NewTCPFilt() filter.Factory { return &tcpFilt{} }

func (*tcpFilt) Name() string              { return "tcp" }
func (*tcpFilt) Priority() filter.Priority { return filter.High }
func (*tcpFilt) Description() string {
	return "TCP bookkeeping: checksum repair and stream teardown"
}

// closeGrace is how long after observing the stream close the filter
// waits before tearing down the queues, letting retransmitted FINs and
// final ACKs pass through filtered.
const closeGrace = 5 * time.Second

func (f *tcpFilt) New(env filter.Env, k filter.Key, args []string) error {
	inst := &tcpFiltInst{env: env, fwd: k, rev: k.Reverse()}
	var err error
	inst.detachFwd, err = env.Attach(k, filter.Hooks{
		Filter: "tcp", Priority: filter.High,
		In:  func(p *filter.Packet) { inst.observe(p, true) },
		Out: inst.repair,
	})
	if err != nil {
		return err
	}
	inst.detachRev, err = env.Attach(inst.rev, filter.Hooks{
		Filter: "tcp", Priority: filter.High,
		In:  func(p *filter.Packet) { inst.observe(p, false) },
		Out: inst.repair,
	})
	if err != nil {
		inst.detachFwd()
		return err
	}
	return nil
}

type tcpFiltInst struct {
	env                  filter.Env
	fwd, rev             filter.Key
	detachFwd, detachRev func()
	finFwd, finRev       bool
	closing              bool
}

// repair re-marshals packets some lower-priority filter modified,
// recomputing IP and TCP checksums.
func (inst *tcpFiltInst) repair(p *filter.Packet) {
	if p.Dirty() && !p.Dropped() {
		if err := p.Remarshal(); err != nil {
			inst.env.Logf("tcp: remarshal failed: %v", err)
			p.Drop()
		}
	}
}

// observe tracks connection teardown: once FINs have been seen in both
// directions, or a RST in either, the stream's filter queues are
// removed after a grace period.
func (inst *tcpFiltInst) observe(p *filter.Packet, forward bool) {
	if p.TCP == nil || inst.closing {
		return
	}
	if p.TCP.Flags&tcp.FlagRST != 0 {
		inst.scheduleTeardown()
		return
	}
	if p.TCP.Flags&tcp.FlagFIN != 0 {
		if forward {
			inst.finFwd = true
		} else {
			inst.finRev = true
		}
		if inst.finFwd && inst.finRev {
			inst.scheduleTeardown()
		}
	}
}

func (inst *tcpFiltInst) scheduleTeardown() {
	inst.closing = true
	env, fwd, rev := inst.env, inst.fwd, inst.rev
	env.Clock().After(closeGrace, func() {
		env.RemoveStream(fwd)
		env.RemoveStream(rev)
	})
}
