package filters

import (
	"fmt"
	"strings"

	"repro/internal/filter"
)

// launcher is the thesis's launcher filter: registered on a wild-card
// key, it "adds filters to new streams which match its wild-card key"
// (§5.3.2). Its arguments name the services to apply; each may carry
// its own arguments separated by colons, e.g.
//
//	add launcher 0.0.0.0 0 11.11.10.10 0 tcp wsize:cap:4096
type launcher struct{}

// NewLauncher returns the launcher filter factory.
func NewLauncher() filter.Factory { return &launcher{} }

func (*launcher) Name() string              { return "launcher" }
func (*launcher) Priority() filter.Priority { return filter.Highest }
func (*launcher) Description() string {
	return "applies configured services to each new matching stream"
}

func (f *launcher) New(env filter.Env, k filter.Key, args []string) error {
	sp, ok := env.(filter.Spawner)
	if !ok {
		return fmt.Errorf("launcher: environment cannot spawn filters")
	}
	if len(args) == 0 {
		return fmt.Errorf("launcher: no services configured")
	}
	for _, spec := range args {
		parts := strings.Split(spec, ":")
		name, svcArgs := parts[0], parts[1:]
		if err := sp.Spawn(name, k, svcArgs); err != nil {
			return fmt.Errorf("launcher: spawn %s on %v: %w", name, k, err)
		}
	}
	return nil
}
