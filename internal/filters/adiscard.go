package filters

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/filter"
	"repro/internal/media"
	"repro/internal/sim"
)

// adiscard is the adaptive version of hierarchical discard — the
// filter the thesis's EEM chapter exists to enable (§6: "if
// communication streams could be shaped to the available QoS... in
// times of low QoS, minimal operation can continue and regular
// operation resume in periods of high QoS").
//
// It periodically samples the wireless interface's utilization through
// the proxy's execution-environment metrics (ifOutOctets rate against
// ifSpeed) and moves the layer threshold down when the link saturates
// and back up when headroom returns.
//
// Arguments: <ifIndex> [maxLayer] — the egress interface to watch and
// the highest layer ever passed (default 7).
type adiscard struct{}

// NewADiscard returns the adaptive-discard filter factory.
func NewADiscard() filter.Factory { return &adiscard{} }

func (*adiscard) Name() string              { return "adiscard" }
func (*adiscard) Priority() filter.Priority { return filter.Low }
func (*adiscard) Description() string {
	return "EEM-driven hierarchical discard: layer threshold follows link utilization"
}

// Utilization thresholds for moving the layer threshold.
const (
	adiscardHigh = 0.90 // above this, shed a layer
	adiscardLow  = 0.50 // below this, restore a layer
)

// ADiscardStats counts the adaptive filter's behaviour.
type ADiscardStats struct {
	Passed, Discarded int64
	Adaptations       int64 // threshold changes
	CurrentMaxLayer   int
}

// adiscardInstances exposes per-stream state, keyed by forward key.
var adiscardInstances = map[filter.Key]*adiscardInst{}

// ADiscardStatsFor returns the stats of the adaptive-discard instance
// on k.
func ADiscardStatsFor(k filter.Key) (ADiscardStats, bool) {
	if inst, ok := adiscardInstances[k]; ok {
		st := inst.stats
		st.CurrentMaxLayer = inst.maxLayer
		return st, true
	}
	return ADiscardStats{}, false
}

type adiscardInst struct {
	env      filter.Env
	metrics  filter.Metrics
	ifIndex  int
	ceil     int // highest layer ever allowed
	maxLayer int

	lastOctets float64
	lastSample sim.Time
	haveSample bool
	timer      *sim.Timer
	closed     bool

	stats ADiscardStats
}

func (f *adiscard) New(env filter.Env, k filter.Key, args []string) error {
	m, ok := env.(filter.Metrics)
	if !ok {
		return fmt.Errorf("adiscard: environment has no execution-environment metrics")
	}
	inst := &adiscardInst{env: env, metrics: m, ceil: 7}
	if len(args) > 0 {
		v, err := strconv.Atoi(args[0])
		if err != nil || v < 0 {
			return fmt.Errorf("adiscard: bad interface index %q", args[0])
		}
		inst.ifIndex = v
	}
	if len(args) > 1 {
		v, err := strconv.Atoi(args[1])
		if err != nil || v < 0 || v > 255 {
			return fmt.Errorf("adiscard: bad max layer %q", args[1])
		}
		inst.ceil = v
	}
	inst.maxLayer = inst.ceil
	_, err := env.Attach(k, filter.Hooks{
		Filter: "adiscard", Priority: filter.Low,
		Out: inst.filterFrame,
		OnClose: func() {
			inst.closed = true
			inst.timer.Stop()
			delete(adiscardInstances, k)
		},
	})
	if err != nil {
		return err
	}
	adiscardInstances[k] = inst
	inst.arm()
	return nil
}

func (inst *adiscardInst) arm() {
	if inst.closed {
		return
	}
	inst.timer = inst.env.Clock().After(500*time.Millisecond, inst.sample)
}

// sample measures link utilization from the metric source and adapts
// the layer threshold (one step per sample, as adaptive codecs do).
func (inst *adiscardInst) sample() {
	defer inst.arm()
	speed, ok1 := inst.metrics.Metric("ifSpeed", inst.ifIndex)
	octets, ok2 := inst.metrics.Metric("ifOutOctets", inst.ifIndex)
	if !ok1 || !ok2 || speed <= 0 {
		return
	}
	now := inst.env.Clock().Now()
	if !inst.haveSample {
		inst.lastOctets, inst.lastSample, inst.haveSample = octets, now, true
		return
	}
	dt := now.Sub(inst.lastSample).Seconds()
	if dt <= 0 {
		return
	}
	util := (octets - inst.lastOctets) * 8 / dt / speed
	inst.lastOctets, inst.lastSample = octets, now
	switch {
	case util > adiscardHigh && inst.maxLayer > 0:
		inst.maxLayer--
		inst.stats.Adaptations++
		inst.env.Logf("adiscard: utilization %.2f, shedding to layer <=%d", util, inst.maxLayer)
	case util < adiscardLow && inst.maxLayer < inst.ceil:
		inst.maxLayer++
		inst.stats.Adaptations++
		inst.env.Logf("adiscard: utilization %.2f, restoring to layer <=%d", util, inst.maxLayer)
	}
}

// filterFrame applies the current threshold to media frames.
func (inst *adiscardInst) filterFrame(p *filter.Packet) {
	if p.Dropped() || p.UDP == nil {
		return
	}
	frame, err := media.UnmarshalFrame(p.UDP.Payload)
	if err != nil {
		return
	}
	if int(frame.Layer) > inst.maxLayer {
		inst.stats.Discarded++
		p.Drop()
		return
	}
	inst.stats.Passed++
}
