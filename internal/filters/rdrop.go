package filters

import (
	"fmt"
	"strconv"

	"repro/internal/filter"
	"repro/internal/tcp"
)

// rdrop randomly drops data-bearing packets at a configured rate
// (§5.3.2, §8.1.5). Under a TTSF the drop is permanent — the dropped
// bytes are excised from the stream and both endpoints stay
// consistent; without a TTSF it is ordinary loss that TCP repairs.
//
// Argument: drop percentage 0..100 (the thesis example uses 50).
type rdrop struct{}

// NewRDrop returns the rdrop filter factory.
func NewRDrop() filter.Factory { return &rdrop{} }

func (*rdrop) Name() string              { return "rdrop" }
func (*rdrop) Priority() filter.Priority { return filter.Low }
func (*rdrop) Description() string {
	return "randomly drops data packets at a given percentage"
}

func (f *rdrop) New(env filter.Env, k filter.Key, args []string) error {
	rate := 50.0
	if len(args) > 0 {
		v, err := strconv.ParseFloat(args[0], 64)
		if err != nil || v < 0 || v > 100 {
			return fmt.Errorf("rdrop: bad rate %q (want 0..100)", args[0])
		}
		rate = v
	}
	p := rate / 100
	_, err := env.Attach(k, filter.Hooks{
		Filter: "rdrop", Priority: filter.Low,
		Out: func(pkt *filter.Packet) {
			if pkt.Dropped() || pkt.TCP == nil || len(pkt.TCP.Payload) == 0 {
				return
			}
			// Never drop SYN or FIN segments: they carry control
			// semantics a data-reduction service must not touch.
			if pkt.TCP.Flags&(tcp.FlagSYN|tcp.FlagFIN) != 0 {
				return
			}
			if env.Clock().Rand().Float64() < p {
				pkt.Drop()
			}
		},
	})
	return err
}
