package filters

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"strconv"

	"repro/internal/filter"
	"repro/internal/tcp"
)

// comp transparently compresses TCP payloads crossing toward the
// wireless link (thesis §8.1.6). Each segment payload is framed
// independently so the complementary decomp filter — deployed on a
// second proxy at the far side of the wireless link (the double-proxy
// arrangement of §10.2.4) — can invert it packet by packet. A TTSF on
// the same stream remaps sequence numbers around the size changes.
//
// Frame format (1-byte tag):
//
//	0x00 <raw bytes>        stored (compression would not help)
//	0x01 <deflate stream>   compressed
//
// Argument: flate level 1..9 (default 6).
type comp struct{}

// NewCompress returns the comp filter factory.
func NewCompress() filter.Factory { return &comp{} }

func (*comp) Name() string              { return "comp" }
func (*comp) Priority() filter.Priority { return filter.Low }
func (*comp) Description() string {
	return "transparent per-segment payload compression (pair with decomp + ttsf)"
}

// Frame tags.
const (
	tagStored     = 0x00
	tagCompressed = 0x01
)

// CompressPayload frames one payload, compressing when it helps.
// Exported for the experiment harness and the decomp tests.
func CompressPayload(payload []byte, level int) []byte {
	var buf bytes.Buffer
	buf.WriteByte(tagCompressed)
	w, err := flate.NewWriter(&buf, level)
	if err == nil {
		if _, err = w.Write(payload); err == nil {
			err = w.Close()
		}
	}
	if err != nil || buf.Len() >= len(payload)+1 {
		out := make([]byte, len(payload)+1)
		out[0] = tagStored
		copy(out[1:], payload)
		return out
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out
}

// DecompressPayload inverts CompressPayload.
func DecompressPayload(framed []byte) ([]byte, error) {
	if len(framed) == 0 {
		return nil, fmt.Errorf("comp: empty frame")
	}
	switch framed[0] {
	case tagStored:
		out := make([]byte, len(framed)-1)
		copy(out, framed[1:])
		return out, nil
	case tagCompressed:
		r := flate.NewReader(bytes.NewReader(framed[1:]))
		defer r.Close()
		out, err := io.ReadAll(r)
		if err != nil {
			return nil, fmt.Errorf("comp: inflate: %w", err)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("comp: unknown frame tag %#x", framed[0])
	}
}

func (f *comp) New(env filter.Env, k filter.Key, args []string) error {
	level := 6
	if len(args) > 0 {
		v, err := strconv.Atoi(args[0])
		if err != nil || v < 1 || v > 9 {
			return fmt.Errorf("comp: bad level %q (want 1..9)", args[0])
		}
		level = v
	}
	_, err := env.Attach(k, filter.Hooks{
		Filter: "comp", Priority: filter.Low,
		Out: func(p *filter.Packet) {
			if p.Dropped() || p.TCP == nil || len(p.TCP.Payload) == 0 {
				return
			}
			if p.TCP.Flags&(tcp.FlagSYN|tcp.FlagFIN|tcp.FlagRST) != 0 {
				return
			}
			framed := CompressPayload(p.TCP.Payload, level)
			p.TCP.Payload = framed
			p.MarkDirty()
		},
	})
	return err
}

// decomp inverts comp on the far side of the wireless link.
type decomp struct{}

// NewDecompress returns the decomp filter factory.
func NewDecompress() filter.Factory { return &decomp{} }

func (*decomp) Name() string              { return "decomp" }
func (*decomp) Priority() filter.Priority { return filter.Low }
func (*decomp) Description() string {
	return "inverts the comp filter's per-segment framing"
}

func (f *decomp) New(env filter.Env, k filter.Key, args []string) error {
	_, err := env.Attach(k, filter.Hooks{
		Filter: "decomp", Priority: filter.Low,
		Out: func(p *filter.Packet) {
			if p.Dropped() || p.TCP == nil || len(p.TCP.Payload) == 0 {
				return
			}
			if p.TCP.Flags&(tcp.FlagSYN|tcp.FlagFIN|tcp.FlagRST) != 0 {
				return
			}
			out, err := DecompressPayload(p.TCP.Payload)
			if err != nil {
				env.Logf("decomp: %v (passing through)", err)
				return
			}
			p.TCP.Payload = out
			p.MarkDirty()
		},
	})
	return err
}
