package filters

import (
	"bytes"
	"strconv"

	"repro/internal/filter"
	"repro/internal/ip"
	"repro/internal/udp"
)

// cache implements the application-partitioning service class of
// thesis §5.2 ("a service filter can include part of the code of an
// application... The software running on the proxy can also be used as
// an agent"): the proxy caches fetch responses and answers repeated
// requests itself, cutting both wired-link traffic and response
// latency for the mobile.
//
// It services the repository's toy fetch protocol over UDP:
//
//	request : 'R' <key bytes>
//	response: 'D' <key bytes> 0x00 <body bytes>
//
// The key names the request direction (mobile → wired server).
// Argument: maximum number of cached entries (default 128).
type cacheFilter struct{}

// NewCache returns the cache filter factory.
func NewCache() filter.Factory { return &cacheFilter{} }

func (*cacheFilter) Name() string              { return "cache" }
func (*cacheFilter) Priority() filter.Priority { return filter.Normal }
func (*cacheFilter) Description() string {
	return "answers repeated fetch-protocol requests from a proxy-side cache"
}

// Fetch protocol tags.
const (
	fetchRequest  = 'R'
	fetchResponse = 'D'
)

// EncodeFetchRequest builds a request datagram payload.
func EncodeFetchRequest(key string) []byte {
	return append([]byte{fetchRequest}, key...)
}

// EncodeFetchResponse builds a response datagram payload.
func EncodeFetchResponse(key string, body []byte) []byte {
	out := append([]byte{fetchResponse}, key...)
	out = append(out, 0)
	return append(out, body...)
}

// DecodeFetch splits a fetch datagram into its parts. body is nil for
// requests; ok is false for non-fetch payloads.
func DecodeFetch(p []byte) (key string, body []byte, isRequest, ok bool) {
	if len(p) < 2 {
		return "", nil, false, false
	}
	switch p[0] {
	case fetchRequest:
		return string(p[1:]), nil, true, true
	case fetchResponse:
		i := bytes.IndexByte(p[1:], 0)
		if i < 0 {
			return "", nil, false, false
		}
		return string(p[1 : 1+i]), p[2+i:], false, true
	}
	return "", nil, false, false
}

// CacheStats counts the filter's work for the harness.
type CacheStats struct {
	Hits, Misses, Stored int64
}

// cacheInstances exposes per-stream stats, keyed by the request key.
var cacheInstances = map[filter.Key]*cacheInst{}

// CacheStatsFor returns the stats of the cache instance on k.
func CacheStatsFor(k filter.Key) (CacheStats, bool) {
	if inst, ok := cacheInstances[k]; ok {
		return inst.stats, true
	}
	return CacheStats{}, false
}

type cacheInst struct {
	env      filter.Env
	maxEntry int
	entries  map[string][]byte
	order    []string // FIFO eviction
	stats    CacheStats
}

func (f *cacheFilter) New(env filter.Env, k filter.Key, args []string) error {
	maxEntry := 128
	if len(args) > 0 {
		v, err := strconv.Atoi(args[0])
		if err != nil || v < 1 {
			return errBadCacheSize(args[0])
		}
		maxEntry = v
	}
	inst := &cacheInst{env: env, maxEntry: maxEntry, entries: make(map[string][]byte)}
	detachRev, err := env.Attach(k.Reverse(), filter.Hooks{
		Filter: "cache", Priority: filter.Normal,
		In: inst.storeResponse,
	})
	if err != nil {
		return err
	}
	_, err = env.Attach(k, filter.Hooks{
		Filter: "cache", Priority: filter.Normal,
		Out: inst.answerRequest,
		OnClose: func() {
			delete(cacheInstances, k)
			detachRev()
		},
	})
	if err != nil {
		detachRev()
		return err
	}
	cacheInstances[k] = inst
	return nil
}

type badCacheSize string

func errBadCacheSize(s string) error { return badCacheSize(s) }
func (b badCacheSize) Error() string { return "cache: bad size " + strconv.Quote(string(b)) }

// answerRequest intercepts requests heading to the wired server; hits
// are answered from the cache (the request never crosses the wired
// path), misses pass through.
func (inst *cacheInst) answerRequest(p *filter.Packet) {
	if p.Dropped() || p.UDP == nil {
		return
	}
	key, _, isReq, ok := DecodeFetch(p.UDP.Payload)
	if !ok || !isReq {
		return
	}
	body, hit := inst.entries[key]
	if !hit {
		inst.stats.Misses++
		return
	}
	inst.stats.Hits++
	p.Drop()
	// Answer on the server's behalf: swap the datagram's direction.
	resp := udp.Datagram{
		SrcPort: p.UDP.DstPort, DstPort: p.UDP.SrcPort,
		Payload: EncodeFetchResponse(key, body),
	}
	h := ip.Header{TTL: 64, Protocol: ip.ProtoUDP, Src: p.IP.Dst, Dst: p.IP.Src}
	raw, err := h.Marshal(resp.Marshal(p.IP.Dst, p.IP.Src))
	if err != nil {
		inst.env.Logf("cache: marshal response: %v", err)
		return
	}
	p.Inject(raw)
}

// storeResponse learns bodies from responses flowing back to the
// mobile.
func (inst *cacheInst) storeResponse(p *filter.Packet) {
	if p.UDP == nil {
		return
	}
	key, body, isReq, ok := DecodeFetch(p.UDP.Payload)
	if !ok || isReq {
		return
	}
	if _, exists := inst.entries[key]; !exists {
		if len(inst.order) >= inst.maxEntry {
			oldest := inst.order[0]
			inst.order = inst.order[1:]
			delete(inst.entries, oldest)
		}
		inst.order = append(inst.order, key)
		inst.stats.Stored++
	}
	inst.entries[key] = append([]byte(nil), body...)
}
