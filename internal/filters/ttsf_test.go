package filters_test

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/filter"
	"repro/internal/filters"
	"repro/internal/ip"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/tcp"
)

// fakeEnv drives filter instances directly, recording attachments and
// injections, so unit tests can feed hand-crafted packets through the
// TTSF exactly as thesis Fig 8.2/8.3 traces do.
type fakeEnv struct {
	clock   *sim.Scheduler
	hooks   map[filter.Key][]filter.Hooks
	injects [][]byte
}

func newFakeEnv() *fakeEnv {
	return &fakeEnv{clock: sim.NewScheduler(1), hooks: make(map[filter.Key][]filter.Hooks)}
}

func (e *fakeEnv) Clock() *sim.Scheduler { return e.clock }
func (e *fakeEnv) Attach(k filter.Key, h filter.Hooks) (func(), error) {
	e.hooks[k] = append(e.hooks[k], h)
	return func() {}, nil
}
func (e *fakeEnv) RemoveStream(k filter.Key)  { delete(e.hooks, k) }
func (e *fakeEnv) Inject(raw []byte)          { e.injects = append(e.injects, raw) }
func (e *fakeEnv) Logf(f string, args ...any) {}

var (
	uSender = ip.MustParseAddr("1.0.0.1")
	uMobile = ip.MustParseAddr("2.0.0.2")
	uKey    = filter.Key{SrcIP: uSender, SrcPort: 7, DstIP: uMobile, DstPort: 80}
)

// mkData builds a parsed forward data packet.
func mkData(seq uint32, payload []byte) *filter.Packet {
	seg := tcp.Segment{SrcPort: 7, DstPort: 80, Seq: seq, Ack: 1,
		Flags: tcp.FlagACK, Window: 65535, Payload: payload}
	h := ip.Header{TTL: 64, Protocol: ip.ProtoTCP, Src: uSender, Dst: uMobile}
	raw, _ := h.Marshal(seg.Marshal(uSender, uMobile))
	p, _ := filter.Parse(raw)
	return p
}

// mkAck builds a parsed reverse ACK from the mobile.
func mkAck(ack uint32) *filter.Packet {
	seg := tcp.Segment{SrcPort: 80, DstPort: 7, Seq: 1, Ack: ack,
		Flags: tcp.FlagACK, Window: 65535}
	h := ip.Header{TTL: 64, Protocol: ip.ProtoTCP, Src: uMobile, Dst: uSender}
	raw, _ := h.Marshal(seg.Marshal(uMobile, uSender))
	p, _ := filter.Parse(raw)
	return p
}

// ttsfUnit instantiates a TTSF on uKey and returns drivers for the
// forward and reverse hooks.
func ttsfUnit(t *testing.T) (env *fakeEnv, forward func(p *filter.Packet, service func(*filter.Packet)), reverse func(p *filter.Packet)) {
	t.Helper()
	env = newFakeEnv()
	if err := filters.NewTTSF().New(env, uKey, nil); err != nil {
		t.Fatal(err)
	}
	fh := env.hooks[uKey][0]
	rh := env.hooks[uKey.Reverse()][0]
	forward = func(p *filter.Packet, service func(*filter.Packet)) {
		fh.In(p)
		if service != nil {
			service(p) // the lower-priority service filter's out method
		}
		fh.Out(p)
	}
	reverse = func(p *filter.Packet) { rh.Out(p) }
	return env, forward, reverse
}

// TestTTSFDropTraceFig83 replays the §8.1.5 packet-dropping example:
// three segments; the middle one is dropped by a service. The third
// segment's sequence number shifts down by the dropped length, and the
// mobile's final ack is translated up past the dropped bytes.
func TestTTSFDropTraceFig83(t *testing.T) {
	_, fwd, rev := ttsfUnit(t)

	// seq 1: 100 bytes pass untouched.
	p1 := mkData(1, bytes.Repeat([]byte{'a'}, 100))
	fwd(p1, nil)
	if p1.TCP.Seq != 1 || p1.Dropped() {
		t.Fatalf("segment 1 modified: seq=%d dropped=%v", p1.TCP.Seq, p1.Dropped())
	}

	// Mobile acks the first segment.
	a1 := mkAck(101)
	rev(a1)
	if a1.TCP.Ack != 101 {
		t.Fatalf("identity ack translated: %d", a1.TCP.Ack)
	}

	// seq 101: 100 bytes dropped by the service filter.
	p2 := mkData(101, bytes.Repeat([]byte{'b'}, 100))
	fwd(p2, func(p *filter.Packet) { p.Drop() })
	if !p2.Dropped() {
		t.Fatal("drop not preserved")
	}

	// seq 201: 100 bytes; must appear at seq 101 on the wireless side.
	p3 := mkData(201, bytes.Repeat([]byte{'c'}, 100))
	fwd(p3, nil)
	if p3.TCP.Seq != 101 {
		t.Fatalf("segment 3 seq = %d, want 101", p3.TCP.Seq)
	}

	// Mobile acks everything it saw (new space 201 = a+c); the sender
	// must hear ack 301 (a+b+c in original space).
	a2 := mkAck(201)
	rev(a2)
	if a2.TCP.Ack != 301 {
		t.Fatalf("ack translated to %d, want 301", a2.TCP.Ack)
	}
	if !a2.Dirty() {
		t.Fatal("translated ack not marked dirty")
	}
}

// TestTTSFSynthesizedAckForFrontierDrop: when the dropped segment is
// the last data in flight, the TTSF must acknowledge it to the sender
// itself, or the sender retransmits forever (§8.1.4).
func TestTTSFSynthesizedAckForFrontierDrop(t *testing.T) {
	env, fwd, rev := ttsfUnit(t)

	p1 := mkData(1, bytes.Repeat([]byte{'a'}, 100))
	fwd(p1, nil)
	rev(mkAck(101)) // mobile acked everything so far; template captured

	p2 := mkData(101, bytes.Repeat([]byte{'b'}, 50))
	fwd(p2, func(p *filter.Packet) { p.Drop() })

	if len(env.injects) != 1 {
		t.Fatalf("synthesized %d acks, want 1", len(env.injects))
	}
	h, seg, err := ip.Unmarshal(env.injects[0])
	if err != nil {
		t.Fatal(err)
	}
	if h.Src != uMobile || h.Dst != uSender {
		t.Fatalf("synth ack addressed %v -> %v", h.Src, h.Dst)
	}
	g, err := tcp.Unmarshal(seg)
	if err != nil {
		t.Fatal(err)
	}
	if g.Ack != 151 {
		t.Fatalf("synth ack = %d, want 151", g.Ack)
	}
	if !tcp.VerifyChecksum(h.Src, h.Dst, seg) {
		t.Fatal("synth ack has a bad checksum")
	}
}

// TestTTSFShrinkTraceFig84 replays the §8.1.6 compression example: a
// segment shrinks from 100 to 40 bytes; following traffic shifts by 60
// and acks translate back.
func TestTTSFShrinkTraceFig84(t *testing.T) {
	_, fwd, rev := ttsfUnit(t)

	small := bytes.Repeat([]byte{'z'}, 40)
	p1 := mkData(1, bytes.Repeat([]byte{'x'}, 100))
	fwd(p1, func(p *filter.Packet) {
		p.TCP.Payload = small
		p.MarkDirty()
	})
	if p1.TCP.Seq != 1 || len(p1.TCP.Payload) != 40 {
		t.Fatalf("compressed segment wrong: seq=%d len=%d", p1.TCP.Seq, len(p1.TCP.Payload))
	}

	p2 := mkData(101, bytes.Repeat([]byte{'y'}, 100))
	fwd(p2, nil)
	if p2.TCP.Seq != 41 {
		t.Fatalf("following segment seq = %d, want 41", p2.TCP.Seq)
	}

	// Partial ack inside the compressed range claims nothing (must be
	// checked before any larger ack arrives, since later acks prune
	// the edit log).
	a2 := mkAck(21)
	rev(a2)
	if a2.TCP.Ack != 1 {
		t.Fatalf("partial ack translated to %d, want 1", a2.TCP.Ack)
	}
	// Mobile acks the compressed first segment only: 41 (new) -> 101
	// (orig, upper preimage).
	a1 := mkAck(41)
	rev(a1)
	if a1.TCP.Ack != 101 {
		t.Fatalf("ack 41 translated to %d, want 101", a1.TCP.Ack)
	}
	// Full ack of both segments: 141 (new) -> 201 (orig).
	a3 := mkAck(141)
	rev(a3)
	if a3.TCP.Ack != 201 {
		t.Fatalf("ack 141 translated to %d, want 201", a3.TCP.Ack)
	}
}

// TestTTSFRetransmissionReconstruction: a retransmitted segment that
// was previously transformed must be re-emitted with the identical
// transformation and remapped sequence number, even if the service
// filter behaves differently this time (§8.1.4).
func TestTTSFRetransmissionReconstruction(t *testing.T) {
	_, fwd, _ := ttsfUnit(t)

	orig := bytes.Repeat([]byte{'q'}, 100)
	shrunk := bytes.Repeat([]byte{'s'}, 30)
	p1 := mkData(1, orig)
	fwd(p1, func(p *filter.Packet) {
		p.TCP.Payload = shrunk
		p.MarkDirty()
	})

	// Retransmission of the same range; this time the service mangles
	// it differently — the TTSF must ignore that and reproduce the
	// original transformation.
	p1r := mkData(1, orig)
	fwd(p1r, func(p *filter.Packet) {
		p.TCP.Payload = []byte("different!")
		p.MarkDirty()
	})
	if p1r.Dropped() {
		t.Fatal("reconstructable retransmission dropped")
	}
	if !bytes.Equal(p1r.TCP.Payload, shrunk) {
		t.Fatalf("retransmission not reconstructed: %q", p1r.TCP.Payload)
	}
	if p1r.TCP.Seq != 1 {
		t.Fatalf("retransmission seq = %d", p1r.TCP.Seq)
	}
}

// TestTTSFRetransmissionSpanningIdentityAndEdit: a retransmission
// covering an identity region followed by an edited region is rebuilt
// from packet bytes plus the edit log.
func TestTTSFRetransmissionSpanningIdentityAndEdit(t *testing.T) {
	_, fwd, _ := ttsfUnit(t)

	a := bytes.Repeat([]byte{'a'}, 50)
	b := bytes.Repeat([]byte{'b'}, 50)
	bShrunk := bytes.Repeat([]byte{'B'}, 20)

	p1 := mkData(1, a)
	fwd(p1, nil) // identity
	p2 := mkData(51, b)
	fwd(p2, func(p *filter.Packet) { p.TCP.Payload = bShrunk; p.MarkDirty() })

	// Retransmit [1,101) in one segment.
	both := append(append([]byte{}, a...), b...)
	pr := mkData(1, both)
	fwd(pr, nil)
	want := append(append([]byte{}, a...), bShrunk...)
	if !bytes.Equal(pr.TCP.Payload, want) {
		t.Fatalf("spanning reconstruction wrong: got %d bytes, want %d", len(pr.TCP.Payload), len(want))
	}
	if pr.TCP.Seq != 1 {
		t.Fatalf("seq = %d", pr.TCP.Seq)
	}
}

// TestTTSFDroppedRangeRetransmission: retransmitting a fully dropped
// range is re-dropped and re-acked.
func TestTTSFDroppedRangeRetransmission(t *testing.T) {
	env, fwd, rev := ttsfUnit(t)
	p1 := mkData(1, bytes.Repeat([]byte{'a'}, 100))
	fwd(p1, nil)
	rev(mkAck(101))
	p2 := mkData(101, bytes.Repeat([]byte{'b'}, 100))
	fwd(p2, func(p *filter.Packet) { p.Drop() })
	n := len(env.injects)
	if n != 1 {
		t.Fatalf("expected 1 synthesized ack, got %d", n)
	}
	// Sender missed the synth ack and retransmits the dropped range.
	p2r := mkData(101, bytes.Repeat([]byte{'b'}, 100))
	fwd(p2r, nil)
	if !p2r.Dropped() {
		t.Fatal("retransmission of dropped range not re-dropped")
	}
	if len(env.injects) != n+1 {
		t.Fatalf("covering ack not re-asserted: %d injects", len(env.injects))
	}
}

// TestTTSFPureAckAndFinRemapping: forward segments without payload
// (pure ACKs, FIN) get their sequence numbers remapped too.
func TestTTSFPureAckFinRemap(t *testing.T) {
	_, fwd, _ := ttsfUnit(t)
	p1 := mkData(1, bytes.Repeat([]byte{'a'}, 100))
	fwd(p1, func(p *filter.Packet) { p.Drop() }) // everything dropped

	fin := mkData(101, nil)
	fin.TCP.Flags |= tcp.FlagFIN
	fwd(fin, nil)
	if fin.TCP.Seq != 1 {
		t.Fatalf("FIN seq = %d, want 1", fin.TCP.Seq)
	}
}

// TestTTSFPropertyRandomTransformations is experiment E16: under a
// randomized mix of per-segment drops and resizes plus wireless loss,
// the sender always completes and the receiver's stream equals the
// concatenation of the transformed segments.
func TestTTSFPropertyRandomTransformations(t *testing.T) {
	if testing.Short() {
		t.Skip("slow property test")
	}
	f := func(seed int64, lossPct uint8) bool {
		loss := float64(lossPct%8) / 100
		r := newRig(t, rigOpts{
			seed: seed,
			wireless: netsim.LinkConfig{Bandwidth: 5e6, Delay: 10 * time.Millisecond,
				Loss: netsim.Bernoulli{P: loss}, QueueLen: 500},
		})
		r.cmd(t, r.proxyA, "load tcp")
		r.cmd(t, r.proxyA, "load ttsf")
		r.cmd(t, r.proxyA, "load rdrop")
		r.cmd(t, r.proxyA, "load launcher")
		rate := int(uint64(seed)%61) + 10 // 10..70%
		r.cmd(t, r.proxyA, fmt.Sprintf("add launcher 11.11.10.99 0 11.11.10.10 0 tcp ttsf rdrop:%d", rate))

		payload := pattern(80_000)
		got, client := r.transfer(t, payload, 600*time.Second)
		if client.State() != tcp.StateClosed && client.State() != tcp.StateTimeWait {
			t.Logf("seed=%d loss=%.2f rate=%d: sender stuck in %v (stats %+v)",
				seed, loss, rate, client.State(), client.Stats())
			return false
		}
		if !isChunkSubsequence(got, payload) {
			t.Logf("seed=%d: receiver stream not a subsequence", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
