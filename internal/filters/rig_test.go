package filters_test

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/filter"
	"repro/internal/filters"
	"repro/internal/ip"
	"repro/internal/netsim"
	"repro/internal/proxy"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/udp"
)

// rig builds the thesis's reference topology:
//
//	wired host ── fast wire ── proxy (router) ── wireless ── mobile
//
// and optionally a second proxy in front of the mobile for
// double-proxy services (§10.2.4):
//
//	wired ── wire ── proxyA ── wireless ── proxyB ── wire ── mobile
type rig struct {
	sched  *sim.Scheduler
	net    *netsim.Network
	wired  *netsim.Node
	mobile *netsim.Node
	proxyA *proxy.Proxy
	proxyB *proxy.Proxy // nil unless double-proxy
	wless  *netsim.Link // the wireless link

	wStack, mStack *tcp.Stack
	wUDP, mUDP     *udp.Stack
}

var (
	wiredAddr  = ip.MustParseAddr("11.11.10.99")
	mobileAddr = ip.MustParseAddr("11.11.10.10")
)

type rigOpts struct {
	seed        int64
	wireless    netsim.LinkConfig
	tcpCfg      tcp.Config
	doubleProxy bool
}

func newRig(t *testing.T, o rigOpts) *rig {
	t.Helper()
	if o.seed == 0 {
		o.seed = 1
	}
	s := sim.NewScheduler(o.seed)
	n := netsim.New(s)
	r := &rig{sched: s, net: n}
	r.wired = n.AddNode("wired")
	pa := n.AddNode("proxyA")
	pa.Forwarding = true
	r.mobile = n.AddNode("mobile")

	wire := netsim.LinkConfig{Bandwidth: 100e6, Delay: 2 * time.Millisecond}
	n.Connect(r.wired, wiredAddr, pa, ip.MustParseAddr("10.0.1.254"), wire)
	r.wired.AddDefaultRoute(r.wired.Ifaces()[0])

	cat := filter.NewCatalog()
	filters.RegisterAll(cat)
	r.proxyA = proxy.New(pa, cat)

	if o.doubleProxy {
		pb := n.AddNode("proxyB")
		pb.Forwarding = true
		lw := n.Connect(pa, ip.MustParseAddr("10.0.2.1"), pb, ip.MustParseAddr("10.0.2.2"), o.wireless)
		r.wless = lw
		lm := n.Connect(pb, ip.MustParseAddr("10.0.3.254"), r.mobile, mobileAddr, wire)
		pa.AddRoute(mobileAddr.Mask(32), 32, lw.IfaceA())
		pa.AddRoute(ip.MustParseAddr("10.0.3.0"), 24, lw.IfaceA())
		pb.AddDefaultRoute(lw.IfaceB())
		pb.AddRoute(mobileAddr.Mask(32), 32, lm.IfaceA())
		r.mobile.AddDefaultRoute(r.mobile.Ifaces()[0])
		cat2 := filter.NewCatalog()
		filters.RegisterAll(cat2)
		r.proxyB = proxy.New(pb, cat2)
	} else {
		lw := n.Connect(pa, ip.MustParseAddr("10.0.2.254"), r.mobile, mobileAddr, o.wireless)
		r.wless = lw
		pa.AddRoute(mobileAddr.Mask(32), 32, lw.IfaceA())
		r.mobile.AddDefaultRoute(r.mobile.Ifaces()[0])
	}

	r.wStack = tcp.NewStack(r.wired, o.tcpCfg)
	r.mStack = tcp.NewStack(r.mobile, o.tcpCfg)
	r.wUDP = udp.NewStack(r.wired)
	r.mUDP = udp.NewStack(r.mobile)
	r.wired.RegisterProto(ip.ProtoTCP, func(h ip.Header, p, raw []byte, in *netsim.Iface) {
		r.wStack.Deliver(h.Src, h.Dst, p)
	})
	r.mobile.RegisterProto(ip.ProtoTCP, func(h ip.Header, p, raw []byte, in *netsim.Iface) {
		r.mStack.Deliver(h.Src, h.Dst, p)
	})
	r.wired.RegisterProto(ip.ProtoUDP, func(h ip.Header, p, raw []byte, in *netsim.Iface) {
		r.wUDP.Deliver(h.Src, h.Dst, p)
	})
	r.mobile.RegisterProto(ip.ProtoUDP, func(h ip.Header, p, raw []byte, in *netsim.Iface) {
		r.mUDP.Deliver(h.Src, h.Dst, p)
	})
	return r
}

// cmd runs a proxy command and fails the test on an error response.
func (r *rig) cmd(t *testing.T, p *proxy.Proxy, line string) string {
	t.Helper()
	out := p.Command(line)
	if len(out) >= 5 && out[:5] == "error" {
		t.Fatalf("proxy command %q: %s", line, out)
	}
	return out
}

// transfer pushes payload from the wired host to port 5001 on the
// mobile and returns what the mobile's application received.
func (r *rig) transfer(t *testing.T, payload []byte, d time.Duration) ([]byte, *tcp.Conn) {
	t.Helper()
	var rcvd bytes.Buffer
	_, err := r.mStack.Listen(5001, func(c *tcp.Conn) {
		c.OnData = func(b []byte) { rcvd.Write(b) }
		c.OnRemoteClose = func() { c.Close() }
	})
	if err != nil {
		t.Fatal(err)
	}
	client, err := r.wStack.ConnectFrom(7, mobileAddr, 5001)
	if err != nil {
		t.Fatal(err)
	}
	client.OnEstablished = func() {
		client.Write(payload)
		client.Close()
	}
	r.sched.RunFor(d)
	return rcvd.Bytes(), client
}

// mUDPSend sends a UDP datagram from the mobile.
func (r *rig) mUDPSend(srcPort uint16, dst ip.Addr, dstPort uint16, payload []byte) {
	r.mUDP.Send(srcPort, dst, dstPort, payload)
}

// mUDPRigSendWired sends a UDP datagram from the wired host to the
// mobile.
func (r *rig) mUDPRigSendWired(srcPort, dstPort uint16, payload []byte) {
	r.wUDP.Send(srcPort, mobileAddr, dstPort, payload)
}

func pattern(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*31 + i/253)
	}
	return b
}
