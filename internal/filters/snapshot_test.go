package filters

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/filter"
	"repro/internal/ip"
)

// richTTSF builds an instance with every flag and field populated the
// way a mid-stream snoop/transform leaves them.
func richTTSF() *ttsfInst {
	return &ttsfInst{
		started:       true,
		frontier:      99173,
		base:          -512,
		haveMobileAck: true,
		mobileAckNew:  88001,
		haveAckFwd:    true,
		maxAckFwd:     91234,
		haveTemplate:  true,
		tmplSeq:       77001,
		tmplWindow:    8192,
		tmplSrc:       ip.MustParseAddr("11.11.10.10"),
		tmplDst:       ip.MustParseAddr("11.11.10.99"),
		stats: TTSFStats{
			Edits: 12, BytesIn: 34567, BytesOut: 34000,
			Reconstructed: 3, SynthesizedAcks: 7, Unreconstructable: 1,
		},
		edits: []edit{
			{origStart: 1000, origLen: 100, newBytes: []byte("shortened")},
			{origStart: 2000, origLen: 50, newBytes: nil}, // dropped region
			{origStart: 3000, origLen: 10, newBytes: bytes.Repeat([]byte{0xAB}, 400)},
		},
	}
}

func TestTTSFSnapshotRoundTrip(t *testing.T) {
	src := richTTSF()
	snap, err := src.SnapshotState()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	dst := &ttsfInst{pendingValid: true, pendingSeq: 42, pendingOrig: []byte{1}}
	if err := dst.RestoreState(snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if dst.pendingValid {
		t.Fatal("restore must invalidate the pending in-packet snapshot")
	}
	if dst.started != src.started || dst.frontier != src.frontier || dst.base != src.base ||
		dst.haveMobileAck != src.haveMobileAck || dst.mobileAckNew != src.mobileAckNew ||
		dst.haveAckFwd != src.haveAckFwd || dst.maxAckFwd != src.maxAckFwd ||
		dst.haveTemplate != src.haveTemplate || dst.tmplSeq != src.tmplSeq ||
		dst.tmplWindow != src.tmplWindow || dst.tmplSrc != src.tmplSrc || dst.tmplDst != src.tmplDst ||
		dst.stats != src.stats {
		t.Fatalf("scalar state mismatch:\n got %+v\nwant %+v", dst, src)
	}
	if len(dst.edits) != len(src.edits) {
		t.Fatalf("edit count: got %d, want %d", len(dst.edits), len(src.edits))
	}
	for i := range src.edits {
		if dst.edits[i].origStart != src.edits[i].origStart ||
			dst.edits[i].origLen != src.edits[i].origLen ||
			!bytes.Equal(dst.edits[i].newBytes, src.edits[i].newBytes) {
			t.Fatalf("edit %d mismatch: got %+v, want %+v", i, dst.edits[i], src.edits[i])
		}
	}
	// Byte-exactness: the restored instance snapshots identically.
	snap2, err := dst.SnapshotState()
	if err != nil {
		t.Fatalf("re-snapshot: %v", err)
	}
	if !bytes.Equal(snap, snap2) {
		t.Fatalf("re-snapshot differs: %d vs %d bytes", len(snap), len(snap2))
	}
}

// TestTTSFSnapshotProperty round-trips randomized instances: for any
// state, restore(snapshot(x)) re-snapshots byte-identically.
func TestTTSFSnapshotProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1999))
	for trial := 0; trial < 200; trial++ {
		src := &ttsfInst{
			started:       rng.Intn(2) == 1,
			frontier:      rng.Uint32(),
			base:          rng.Int63() - 1<<62,
			haveMobileAck: rng.Intn(2) == 1,
			mobileAckNew:  rng.Uint32(),
			haveAckFwd:    rng.Intn(2) == 1,
			maxAckFwd:     rng.Uint32(),
			haveTemplate:  rng.Intn(2) == 1,
			tmplSeq:       rng.Uint32(),
			tmplWindow:    uint16(rng.Intn(1 << 16)),
			tmplSrc:       ip.Addr(rng.Uint32()),
			tmplDst:       ip.Addr(rng.Uint32()),
			stats: TTSFStats{
				Edits: rng.Int63n(1 << 30), BytesIn: rng.Int63n(1 << 40),
				BytesOut: rng.Int63n(1 << 40), Reconstructed: rng.Int63n(100),
				SynthesizedAcks: rng.Int63n(100), Unreconstructable: rng.Int63n(10),
			},
		}
		for i, n := 0, rng.Intn(5); i < n; i++ {
			nb := make([]byte, rng.Intn(64))
			rng.Read(nb)
			src.edits = append(src.edits, edit{
				origStart: rng.Uint32(), origLen: rng.Uint32() % 1500, newBytes: nb,
			})
		}
		snap, err := src.SnapshotState()
		if err != nil {
			t.Fatalf("trial %d: snapshot: %v", trial, err)
		}
		dst := &ttsfInst{}
		if err := dst.RestoreState(snap); err != nil {
			t.Fatalf("trial %d: restore: %v", trial, err)
		}
		snap2, err := dst.SnapshotState()
		if err != nil {
			t.Fatalf("trial %d: re-snapshot: %v", trial, err)
		}
		if !bytes.Equal(snap, snap2) {
			t.Fatalf("trial %d: round trip not byte-exact", trial)
		}
	}
}

func TestTTSFRestoreErrors(t *testing.T) {
	snap, err := richTTSF().SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	// Every proper prefix must fail cleanly, never panic.
	for n := 0; n < len(snap); n++ {
		if err := (&ttsfInst{}).RestoreState(snap[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	if err := (&ttsfInst{}).RestoreState(append(append([]byte(nil), snap...), 0xFF)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	// A failed restore must not clobber the instance.
	dst := richTTSF()
	before, _ := dst.SnapshotState()
	if err := dst.RestoreState(snap[:len(snap)/2]); err == nil {
		t.Fatal("half snapshot accepted")
	}
	after, _ := dst.SnapshotState()
	if !bytes.Equal(before, after) {
		t.Fatal("failed restore mutated the instance")
	}
}

func TestWSizeCapSnapshot(t *testing.T) {
	for _, capBytes := range []uint16{0, 1, 255, 4096, 65535} {
		src := &wsizeCapInst{capBytes: capBytes}
		snap, err := src.SnapshotState()
		if err != nil {
			t.Fatalf("cap %d: snapshot: %v", capBytes, err)
		}
		if len(snap) != 2 {
			t.Fatalf("cap %d: snapshot is %d bytes, want 2", capBytes, len(snap))
		}
		dst := &wsizeCapInst{}
		if err := dst.RestoreState(snap); err != nil {
			t.Fatalf("cap %d: restore: %v", capBytes, err)
		}
		if dst.capBytes != capBytes {
			t.Fatalf("cap %d: restored %d", capBytes, dst.capBytes)
		}
	}
	for _, bad := range [][]byte{nil, {1}, {1, 2, 3}} {
		if err := (&wsizeCapInst{}).RestoreState(bad); err == nil {
			t.Fatalf("bad state %v accepted", bad)
		}
	}
}

// The ZWSM instance holds timers and liveness deadlines that cannot
// move between proxies; it deliberately migrates fresh.
func TestZWSMNotSnapshottable(t *testing.T) {
	var i interface{} = &zwsmInst{}
	if _, ok := i.(filter.StateSnapshotter); ok {
		t.Fatal("zwsmInst must not be snapshottable")
	}
}
