package filters

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/filter"
	"repro/internal/sim"
	"repro/internal/tcp"
)

// mwin is the milliProxy-style delay-aware window filter (PAPERS.md):
// it decouples wired-side from wireless-side flow control by rewriting
// the receive window the mobile advertises to the wired sender, sized
// to the *measured* wireless-side bandwidth-delay product instead of
// whatever the mobile's socket buffer happens to be.
//
// Where wsize's cap mode is a static clamp ("never let this stream
// have more than N bytes in flight"), mwin resizes continuously:
//
//	window = gain × delivery_rate × srtt
//
// with delivery_rate measured from the mobile's cumulative-ACK advance
// over a roll interval and the RTT read from the proxy flow log
// through filter.FlowSampler. The flow log's srtt is taken at the
// proxy, so it measures the *wireless-side* round trip — but it also
// inflates with the queueing delay the stream itself causes, and
// sizing a window from an inflated RTT ratchets the window (and the
// queue) open. mwin therefore sizes against the minimum srtt observed
// over a sliding window of recent rolls — BBR's RTprop idea — which
// resists the self-inflation feedback while still adapting when a
// trace segment genuinely changes the propagation delay.
//
// The min-filter has one failure mode: after an outage the stream may
// resume on a different leg with a much longer RTT (the 5G pack's
// mmWave→LTE shed), and the ring's stale short-RTT samples would then
// strangle the window far below the new leg's BDP. So when delivery
// resumes after zero-delivery rolls, mwin discards the ring and sizes
// from the live srtt for a few relearn rolls before rebuilding the
// min — BBR's PROBE_RTT restart in miniature, triggered by the outage
// itself instead of a timer.
//
// On an mmWave link this tracks capacity swings on
// blockage timescales — LoS multi-Mb/s rates open the window, an NLoS
// collapse shrinks it within a roll or two, so the wired sender stops
// stuffing the proxy's queue with packets the wireless leg cannot
// drain (lower proxy buffer occupancy), and after the blockage clears
// the gain factor ramps the window back up exponentially (measured
// rate is bounded by window/rtt, so each roll multiplies the window by
// at most the gain — self-limiting at the true BDP).
//
// The key identifies the data direction (wired sender → mobile); the
// filter rewrites the reverse-direction ACKs, like wsize. It only ever
// *lowers* the advertised window, never raises it, and never touches
// sequence or ack numbers — end-to-end semantics are preserved
// (thesis §8.2.3). Without a FlowSampler env or before the first RTT
// sample it stays passive (fail open).
type mwin struct{}

// NewMWin returns the mwin filter factory.
func NewMWin() filter.Factory { return &mwin{} }

func (*mwin) Name() string              { return "mwin" }
func (*mwin) Priority() filter.Priority { return filter.Lowest }
func (*mwin) Description() string {
	return "delay-aware receive-window sizing from measured wireless BDP: 'mwin [gain] [interval-ms]'"
}

// mwinMSS floors the computed window: one full segment always fits,
// so the clamp can throttle a stream but never wedge it.
const mwinMSS = 1460

// mwinFloor is the lowest window the controller ever sets: four
// segments, not one. A single-MSS window degenerates into one segment
// per round trip with the receiver's delayed-ACK penalty on every
// round — recovery from an outage would crawl for seconds. Four
// segments keep the ACK clock dense enough to re-measure a delivery
// rate within a roll or two while still draining a blocked queue.
const mwinFloor = 4 * mwinMSS

// mwinMaxWindow is the largest expressible unscaled TCP window.
const mwinMaxWindow = 65535

// mwinRTTRing is how many roll-interval srtt samples the RTT-floor
// window spans: 64 rolls at the default 50ms interval ≈ 3.2s, long
// enough to remember the uninflated RTT across a queue-building burst,
// short enough to adopt a genuinely changed propagation delay within a
// few seconds.
const mwinRTTRing = 64

// mwinRelearnRolls is how many rolls after an outage mwin sizes from
// the live srtt instead of the ring minimum, giving the flow log's
// estimator time to converge on the (possibly new) path before the
// min-filter re-engages.
const mwinRelearnRolls = 8

func (f *mwin) New(env filter.Env, k filter.Key, args []string) error {
	gain := 2.0
	interval := 50 * time.Millisecond
	if len(args) > 0 {
		v, err := strconv.ParseFloat(args[0], 64)
		if err != nil || v < 1 || v > 16 {
			return fmt.Errorf("mwin: bad gain %q (want 1..16)", args[0])
		}
		gain = v
	}
	if len(args) > 1 {
		ms, err := strconv.Atoi(args[1])
		if err != nil || ms <= 0 {
			return fmt.Errorf("mwin: bad roll interval %q", args[1])
		}
		interval = time.Duration(ms) * time.Millisecond
	}
	inst := &mwinInst{
		env: env, fwd: k, gain: gain, interval: interval,
		window: mwinMaxWindow,
	}
	inst.sampler, _ = env.(filter.FlowSampler)
	if inst.sampler == nil {
		env.Logf("mwin: env has no flow sampler, staying passive on %v", k)
	}
	_, err := env.Attach(k.Reverse(), filter.Hooks{
		Filter: "mwin", Priority: filter.Lowest,
		Out:     inst.out,
		OnClose: func() { inst.closed = true; inst.timer.Stop() },
		State:   inst,
	})
	if err != nil {
		return err
	}
	inst.armTimer()
	return nil
}

// mwinInst is one stream's window controller.
type mwinInst struct {
	env      filter.Env
	sampler  filter.FlowSampler
	fwd      filter.Key // wired sender → mobile (the data direction)
	gain     float64
	interval time.Duration

	// Delivery-rate measurement: cumulative-ACK frontier of the
	// mobile's ACK stream and the bytes it advanced this interval.
	lastAck    uint32
	haveAck    bool
	ackedBytes int64

	// Sliding-minimum RTT: the last mwinRTTRing srtt readings, one per
	// roll. rttN counts valid entries (< mwinRTTRing until warm).
	rttRing [mwinRTTRing]time.Duration
	rttNext int
	rttN    int

	// Outage/path-change tracking: hadOutage marks a zero-delivery roll;
	// the first delivering roll after one clears the ring and starts a
	// relearn countdown during which the live srtt sizes the window.
	hadOutage bool
	relearn   int

	// The current clamp. active gates rewriting: false until the first
	// roll with both a rate and an srtt sample.
	window uint16
	active bool

	timer  *sim.Timer
	closed bool

	// Counters for reports and experiments.
	Rolls   int64
	Clamped int64
}

// out runs on every packet the mobile sends toward the wired sender:
// advance the delivery frontier, then clamp the advertised window.
func (m *mwinInst) out(p *filter.Packet) {
	if p.TCP == nil || p.TCP.Flags&tcp.FlagACK == 0 {
		return
	}
	ack := p.TCP.Ack
	if !m.haveAck {
		m.haveAck, m.lastAck = true, ack
	} else if adv := int32(ack - m.lastAck); adv > 0 {
		m.ackedBytes += int64(adv)
		m.lastAck = ack
	}
	if m.active && p.TCP.Window > m.window {
		p.TCP.Window = m.window
		m.Clamped++
		p.MarkDirty()
	}
}

func (m *mwinInst) armTimer() {
	if m.closed {
		return
	}
	m.timer = m.env.Clock().After(m.interval, m.roll)
}

// roll closes one measurement interval: delivery rate from the ACK
// advance, BDP against the flow log's srtt, new window.
func (m *mwinInst) roll() {
	if m.closed {
		return
	}
	defer m.armTimer()
	m.Rolls++
	acked := m.ackedBytes
	m.ackedBytes = 0
	if m.sampler == nil {
		return
	}
	if acked == 0 {
		// Nothing delivered this interval — blockage or idle. Halve
		// toward the floor so a dead wireless leg stops admitting
		// wired-side data within a few rolls, while a mere idle tick
		// costs at most one gain-doubling to recover. (Needs no RTT
		// sample, so it works even after the flow log evicted the flow
		// during the outage.)
		if m.active {
			m.hadOutage = true
			m.setWindow(int64(m.window) / 2)
		}
		return
	}
	srtt, ok := m.sampler.FlowSRTT(m.fwd)
	if !ok {
		// No RTT estimate: before the first sample, stay passive (fail
		// open). Once active, keep the current clamp — the flow log may
		// have evicted the flow across an idle outage, and snapping the
		// window open on a recovering link would dump a full
		// advertisement into a queue we just spent rolls draining.
		return
	}
	var target int64
	switch {
	case m.hadOutage || m.relearn > 0:
		// First delivery after an outage, or still relearning: the path
		// may have changed under us (leg shed), so the ring's old minima
		// are suspect. Size from the live srtt — inflated at worst, never
		// stale — and rebuild the min from scratch afterwards. Never
		// shrink while relearning: the outage halvings already pulled the
		// window low, and the srtt estimator converges on the new path
		// over these same rolls; the re-armed min-filter takes over
		// clamping when the relearn window ends.
		if m.hadOutage {
			m.hadOutage, m.relearn = false, mwinRelearnRolls
		}
		m.relearn--
		m.rttNext, m.rttN = 0, 0
		target = int64(m.gain * float64(acked) * float64(srtt) / float64(m.interval))
		if cur := int64(m.window); m.active && target < cur {
			target = cur
		}
	default:
		m.rttRing[m.rttNext] = srtt
		m.rttNext = (m.rttNext + 1) % mwinRTTRing
		if m.rttN < mwinRTTRing {
			m.rttN++
		}
		minRTT := m.rttRing[0]
		for _, v := range m.rttRing[1:m.rttN] {
			if v < minRTT {
				minRTT = v
			}
		}
		// bdp = rate × rtt-floor = acked/interval × minRTT.
		target = int64(m.gain * float64(acked) * float64(minRTT) / float64(m.interval))
	}
	if !m.active {
		m.env.Logf("mwin: active on %v, window %d (srtt %v)", m.fwd, target, srtt)
		m.active = true
	}
	m.setWindow(target)
}

// setWindow clamps target into [mwinFloor, mwinMaxWindow] and makes it
// the current advertisement.
func (m *mwinInst) setWindow(target int64) {
	if target < mwinFloor {
		target = mwinFloor
	}
	if target > mwinMaxWindow {
		target = mwinMaxWindow
	}
	m.window = uint16(target)
}

// Window reports the current clamp (65535 while passive).
func (m *mwinInst) Window() uint16 { return m.window }

// --- migration state ---------------------------------------------------------

const (
	mwinFlagHaveAck = 1 << iota
	mwinFlagActive
)

// SnapshotState implements filter.StateSnapshotter: flags, the current
// window, and the ACK frontier (7 bytes). The partial interval's
// ackedBytes is deliberately dropped — the first roll on the
// destination re-measures; the clamp itself carries over so the wired
// sender never sees the window snap open across a migration.
func (m *mwinInst) SnapshotState() ([]byte, error) {
	var flags byte
	if m.haveAck {
		flags |= mwinFlagHaveAck
	}
	if m.active {
		flags |= mwinFlagActive
	}
	return []byte{
		flags,
		byte(m.window >> 8), byte(m.window),
		byte(m.lastAck >> 24), byte(m.lastAck >> 16), byte(m.lastAck >> 8), byte(m.lastAck),
	}, nil
}

// RestoreState implements filter.StateSnapshotter.
func (m *mwinInst) RestoreState(b []byte) error {
	if len(b) != 7 {
		return fmt.Errorf("mwin: state needs 7 bytes, got %d", len(b))
	}
	flags := b[0]
	m.haveAck = flags&mwinFlagHaveAck != 0
	m.active = flags&mwinFlagActive != 0
	m.window = uint16(b[1])<<8 | uint16(b[2])
	m.lastAck = uint32(b[3])<<24 | uint32(b[4])<<16 | uint32(b[5])<<8 | uint32(b[6])
	m.ackedBytes = 0
	return nil
}

var _ filter.StateSnapshotter = (*mwinInst)(nil)
