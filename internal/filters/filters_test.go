package filters_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/filter"
	"repro/internal/filters"
	"repro/internal/ip"
	"repro/internal/media"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/tcp"
)

func fwdKey(clientPort uint16) filter.Key {
	return filter.Key{SrcIP: wiredAddr, SrcPort: clientPort, DstIP: mobileAddr, DstPort: 5001}
}

func TestTCPFiltRepairsWsizeModification(t *testing.T) {
	// wsize cap rewrites the window field; without the tcp filter the
	// checksum would be stale and the stream would die. With it, the
	// transfer completes.
	r := newRig(t, rigOpts{wireless: netsim.LinkConfig{Bandwidth: 2e6, Delay: 10 * time.Millisecond}})
	r.cmd(t, r.proxyA, "load tcp")
	r.cmd(t, r.proxyA, "load wsize")
	r.cmd(t, r.proxyA, "load launcher")
	r.cmd(t, r.proxyA, "add launcher 11.11.10.99 0 11.11.10.10 0 tcp wsize:cap:4096")

	payload := pattern(100_000)
	got, client := r.transfer(t, payload, 120*time.Second)
	if !bytes.Equal(got, payload) {
		t.Fatalf("transfer corrupted: %d of %d bytes", len(got), len(payload))
	}
	if client.Stats().Retransmits > 5 {
		t.Errorf("unexpected retransmits: %+v", client.Stats())
	}
}

func TestWsizeCapObservedAtSender(t *testing.T) {
	r := newRig(t, rigOpts{wireless: netsim.LinkConfig{Bandwidth: 10e6, Delay: 5 * time.Millisecond}})
	r.cmd(t, r.proxyA, "load tcp")
	r.cmd(t, r.proxyA, "load wsize")
	r.cmd(t, r.proxyA, "load launcher")
	r.cmd(t, r.proxyA, "add launcher 11.11.10.99 0 11.11.10.10 0 tcp wsize:cap:2048")

	maxWin := -1
	r.wStack.OnSegment = func(send bool, src, dst ip.Addr, seg *tcp.Segment) {
		if !send && seg.Flags&tcp.FlagSYN == 0 {
			if int(seg.Window) > maxWin {
				maxWin = int(seg.Window)
			}
		}
	}
	payload := pattern(50_000)
	got, _ := r.transfer(t, payload, 300*time.Second)
	if !bytes.Equal(got, payload) {
		t.Fatalf("transfer corrupted under window cap: %d bytes", len(got))
	}
	if maxWin > 2048 {
		t.Fatalf("sender observed window %d > cap 2048", maxWin)
	}
	if maxWin < 0 {
		t.Fatal("sender observed no ACKs")
	}
}

func TestWsizeCapPrioritizesOtherStream(t *testing.T) {
	// Two concurrent streams share the wireless link; capping one's
	// window gives the other stream the larger share (§8.2.2).
	r := newRig(t, rigOpts{wireless: netsim.LinkConfig{Bandwidth: 2e6, Delay: 20 * time.Millisecond}})
	r.cmd(t, r.proxyA, "load tcp")
	r.cmd(t, r.proxyA, "load wsize")
	// Low-priority stream goes to port 5002: cap its window hard.
	r.cmd(t, r.proxyA, "add wsize 0.0.0.0 0 11.11.10.10 5002 cap 2048")
	r.cmd(t, r.proxyA, "add tcp 0.0.0.0 0 11.11.10.10 5002")

	var hi, lo bytes.Buffer
	r.mStack.Listen(5001, func(c *tcp.Conn) { c.OnData = func(b []byte) { hi.Write(b) } })
	r.mStack.Listen(5002, func(c *tcp.Conn) { c.OnData = func(b []byte) { lo.Write(b) } })
	big := pattern(2_000_000)
	cHi, _ := r.wStack.Connect(mobileAddr, 5001)
	cHi.OnEstablished = func() { cHi.Write(big) }
	cLo, _ := r.wStack.Connect(mobileAddr, 5002)
	cLo.OnEstablished = func() { cLo.Write(big) }
	r.sched.RunFor(20 * time.Second)
	if lo.Len() == 0 || hi.Len() == 0 {
		t.Fatalf("streams stalled: hi=%d lo=%d", hi.Len(), lo.Len())
	}
	if hi.Len() < 2*lo.Len() {
		t.Errorf("window cap did not prioritize: hi=%d lo=%d", hi.Len(), lo.Len())
	}
	t.Logf("priority stream %d bytes, capped stream %d bytes", hi.Len(), lo.Len())
}

func TestLauncherReportMatchesFig53Shape(t *testing.T) {
	r := newRig(t, rigOpts{wireless: netsim.LinkConfig{}})
	r.cmd(t, r.proxyA, "load tcp")
	r.cmd(t, r.proxyA, "load wsize")
	r.cmd(t, r.proxyA, "load launcher")
	r.cmd(t, r.proxyA, "load rdrop")
	r.cmd(t, r.proxyA, "add launcher 11.11.10.99 0 11.11.10.10 0 tcp wsize:cap:8192")

	var rcvd bytes.Buffer
	r.mStack.Listen(5001, func(c *tcp.Conn) { c.OnData = func(b []byte) { rcvd.Write(b) } })
	client, _ := r.wStack.ConnectFrom(7, mobileAddr, 5001)
	payload := pattern(5_000)
	client.OnEstablished = func() { client.Write(payload) }
	r.sched.RunFor(5 * time.Second) // stream still open: filters live

	if !bytes.Equal(rcvd.Bytes(), payload) {
		t.Fatalf("transfer corrupted: %d bytes", rcvd.Len())
	}
	rep := r.cmd(t, r.proxyA, "report")
	want := fwdKey(client.LocalPort()).String()
	if !strings.Contains(rep, want) {
		t.Fatalf("report missing live stream %s:\n%s", want, rep)
	}
	if !strings.Contains(rep, "launcher\n\t11.11.10.99 0 -> 11.11.10.10 0") {
		t.Fatalf("report missing launcher wild-card:\n%s", rep)
	}
	if !strings.Contains(rep, "rdrop\n") {
		t.Fatalf("report missing idle rdrop:\n%s", rep)
	}
}

func TestTCPFiltTearsDownQueuesAfterClose(t *testing.T) {
	r := newRig(t, rigOpts{wireless: netsim.LinkConfig{}})
	r.cmd(t, r.proxyA, "load tcp")
	r.cmd(t, r.proxyA, "load launcher")
	r.cmd(t, r.proxyA, "add launcher 11.11.10.99 0 11.11.10.10 0 tcp")
	payload := pattern(1000)
	got, _ := r.transfer(t, payload, 3*time.Second)
	if !bytes.Equal(got, payload) {
		t.Fatalf("transfer corrupted")
	}
	if len(r.proxyA.Streams()) == 0 {
		t.Fatal("queues gone before the close grace elapsed")
	}
	r.sched.RunFor(10 * time.Second) // past closeGrace
	if n := len(r.proxyA.Streams()); n != 0 {
		t.Fatalf("%d stream queues leaked after close: %v", n, r.proxyA.Streams())
	}
}

func TestRdropWithoutTTSFIsOrdinaryLoss(t *testing.T) {
	r := newRig(t, rigOpts{wireless: netsim.LinkConfig{Bandwidth: 5e6, Delay: 10 * time.Millisecond}})
	r.cmd(t, r.proxyA, "load tcp")
	r.cmd(t, r.proxyA, "load rdrop")
	r.cmd(t, r.proxyA, "load launcher")
	r.cmd(t, r.proxyA, "add launcher 11.11.10.99 0 11.11.10.10 0 tcp rdrop:20")

	payload := pattern(60_000)
	got, client := r.transfer(t, payload, 300*time.Second)
	if !bytes.Equal(got, payload) {
		t.Fatalf("without TTSF the stream must still be reliable: %d of %d bytes",
			len(got), len(payload))
	}
	if client.Stats().Retransmits == 0 {
		t.Error("20% rdrop caused no retransmits?")
	}
}

func TestRdropWithTTSFPermanentlyRemovesData(t *testing.T) {
	// The §8.1.5 packet-dropping example: with the TTSF, dropped
	// payloads are excised. The sender completes (everything acked),
	// the mobile receives a strict subsequence, and the wireless link
	// carries fewer bytes.
	r := newRig(t, rigOpts{wireless: netsim.LinkConfig{Bandwidth: 5e6, Delay: 10 * time.Millisecond}})
	r.cmd(t, r.proxyA, "load tcp")
	r.cmd(t, r.proxyA, "load ttsf")
	r.cmd(t, r.proxyA, "load rdrop")
	r.cmd(t, r.proxyA, "load launcher")
	r.cmd(t, r.proxyA, "add launcher 11.11.10.99 0 11.11.10.10 0 tcp ttsf rdrop:50")

	payload := pattern(200_000)
	got, client := r.transfer(t, payload, 600*time.Second)

	if client.State() != tcp.StateClosed && client.State() != tcp.StateTimeWait {
		t.Fatalf("sender did not complete: state %v, stats %+v", client.State(), client.Stats())
	}
	if len(got) == len(payload) {
		t.Fatal("50% rdrop under TTSF delivered everything — drops were not permanent")
	}
	if len(got) < len(payload)/5 || len(got) > len(payload)*4/5 {
		t.Fatalf("delivered %d of %d bytes; expected roughly half", len(got), len(payload))
	}
	if !isChunkSubsequence(got, payload) {
		t.Fatal("delivered bytes are not an ordered subsequence of the original")
	}
}

// isChunkSubsequence reports whether got can be formed by deleting
// bytes from want while preserving order.
func isChunkSubsequence(got, want []byte) bool {
	gi := 0
	for wi := 0; wi < len(want) && gi < len(got); wi++ {
		if want[wi] == got[gi] {
			gi++
		}
	}
	return gi == len(got)
}

func TestCompressionDoubleProxyEndToEnd(t *testing.T) {
	// The §8.1.6 packet-compression example, deployed double-proxy
	// (§10.2.4): comp+ttsf at the base station, decomp+ttsf on the far
	// side. The mobile application receives the exact original bytes;
	// the wireless link carries fewer.
	r := newRig(t, rigOpts{
		doubleProxy: true,
		wireless:    netsim.LinkConfig{Bandwidth: 1e6, Delay: 20 * time.Millisecond},
	})
	for _, c := range []string{"load tcp", "load ttsf", "load comp", "load launcher",
		"add launcher 11.11.10.99 0 11.11.10.10 0 tcp ttsf comp:6"} {
		r.cmd(t, r.proxyA, c)
	}
	for _, c := range []string{"load tcp", "load ttsf", "load decomp", "load launcher",
		"add launcher 11.11.10.99 0 11.11.10.10 0 tcp ttsf decomp"} {
		r.cmd(t, r.proxyB, c)
	}

	payload := bytes.Repeat([]byte("the quick brown fox jumps over the lazy dog. "), 3000)
	got, client := r.transfer(t, payload, 600*time.Second)
	if !bytes.Equal(got, payload) {
		t.Fatalf("double-proxy compression corrupted data: got %d want %d bytes",
			len(got), len(payload))
	}
	carried := r.wless.StatsAB().Bytes
	if carried > int64(len(payload))*2/3 {
		t.Errorf("wireless carried %d bytes for a %d-byte payload; compression ineffective",
			carried, len(payload))
	}
	if client.State() != tcp.StateClosed && client.State() != tcp.StateTimeWait {
		t.Fatalf("sender did not complete: %v", client.State())
	}
}

func TestCompressionLossyWireless(t *testing.T) {
	// Same pipeline over a lossy wireless link: retransmissions must be
	// reconstructed identically from the TTSF edit log (§8.1.4).
	r := newRig(t, rigOpts{
		doubleProxy: true,
		wireless: netsim.LinkConfig{Bandwidth: 2e6, Delay: 20 * time.Millisecond,
			Loss: netsim.Bernoulli{P: 0.05}, QueueLen: 200},
	})
	for _, c := range []string{"load tcp", "load ttsf", "load comp", "load launcher",
		"add launcher 11.11.10.99 0 11.11.10.10 0 tcp ttsf comp:6"} {
		r.cmd(t, r.proxyA, c)
	}
	for _, c := range []string{"load tcp", "load ttsf", "load decomp", "load launcher",
		"add launcher 11.11.10.99 0 11.11.10.10 0 tcp ttsf decomp"} {
		r.cmd(t, r.proxyB, c)
	}
	payload := bytes.Repeat([]byte("wireless links lose packets but semantics survive! "), 1500)
	got, _ := r.transfer(t, payload, 900*time.Second)
	if !bytes.Equal(got, payload) {
		t.Fatalf("lossy double-proxy compression corrupted data: got %d want %d bytes",
			len(got), len(payload))
	}
}

func TestSnoopImprovesLossyTransfer(t *testing.T) {
	// §8.2.1: with snoop, wireless losses are repaired locally and the
	// sender sees far fewer retransmissions.
	run := func(withSnoop bool) (time.Duration, tcp.Stats) {
		r := newRig(t, rigOpts{
			seed: 42,
			wireless: netsim.LinkConfig{Bandwidth: 2e6, Delay: 25 * time.Millisecond,
				Loss: netsim.Bernoulli{P: 0.12}, QueueLen: 200},
		})
		r.cmd(t, r.proxyA, "load tcp")
		r.cmd(t, r.proxyA, "load launcher")
		if withSnoop {
			r.cmd(t, r.proxyA, "load snoop")
			r.cmd(t, r.proxyA, "add launcher 11.11.10.99 0 11.11.10.10 0 tcp snoop")
		} else {
			r.cmd(t, r.proxyA, "add launcher 11.11.10.99 0 11.11.10.10 0 tcp")
		}
		payload := pattern(300_000)
		var first, done time.Duration = -1, -1
		var rcvd bytes.Buffer
		r.mStack.Listen(5001, func(c *tcp.Conn) {
			c.OnData = func(b []byte) {
				if first < 0 {
					first = time.Duration(r.sched.Now())
				}
				rcvd.Write(b)
				if rcvd.Len() == len(payload) {
					done = time.Duration(r.sched.Now())
				}
			}
		})
		client, _ := r.wStack.ConnectFrom(7, mobileAddr, 5001)
		client.OnEstablished = func() { client.Write(payload) }
		r.sched.RunFor(900 * time.Second)
		if !bytes.Equal(rcvd.Bytes(), payload) {
			t.Fatalf("transfer corrupted (snoop=%v): %d bytes", withSnoop, rcvd.Len())
		}
		if done < 0 {
			t.Fatalf("transfer never finished (snoop=%v)", withSnoop)
		}
		// Measure from the first delivered byte: handshake losses are
		// luck (snoop cannot cache SYNs) and would swamp the comparison.
		return done - first, client.Stats()
	}
	tPlain, stPlain := run(false)
	tSnoop, stSnoop := run(true)
	t.Logf("plain: %v (%d sender rexmits), snoop: %v (%d sender rexmits)",
		tPlain, stPlain.Retransmits, tSnoop, stSnoop.Retransmits)
	if stSnoop.Retransmits >= stPlain.Retransmits {
		t.Errorf("snoop did not reduce sender retransmits: %d vs %d",
			stSnoop.Retransmits, stPlain.Retransmits)
	}
	if tSnoop >= tPlain {
		t.Errorf("snoop did not speed up the transfer: %v vs %v", tSnoop, tPlain)
	}
}

func TestZWSMReducesTimeoutsAcrossDisconnection(t *testing.T) {
	// §8.2.2 disconnection management: a burst sent during an outage
	// stalls on a zero window (persist mode) instead of hammering RTO
	// backoff, and restarts promptly at reconnection.
	run := func(withZWSM bool) (restart time.Duration, st tcp.Stats) {
		r := newRig(t, rigOpts{
			seed:     7,
			wireless: netsim.LinkConfig{Bandwidth: 2e6, Delay: 10 * time.Millisecond},
		})
		r.cmd(t, r.proxyA, "load tcp")
		r.cmd(t, r.proxyA, "load launcher")
		if withZWSM {
			r.cmd(t, r.proxyA, "load wsize")
			r.cmd(t, r.proxyA, "add launcher 11.11.10.99 0 11.11.10.10 0 tcp wsize:zwsm:300")
		} else {
			r.cmd(t, r.proxyA, "add launcher 11.11.10.99 0 11.11.10.10 0 tcp")
		}
		var rcvd bytes.Buffer
		doneAt := sim.Time(-1)
		r.mStack.Listen(5001, func(c *tcp.Conn) {
			c.OnData = func(b []byte) {
				rcvd.Write(b)
				if rcvd.Len() == 40_000 {
					doneAt = r.sched.Now()
				}
			}
		})
		client, _ := r.wStack.ConnectFrom(7, mobileAddr, 5001)
		client.OnEstablished = func() { client.Write(pattern(20_000)) }
		r.sched.RunFor(2 * time.Second) // burst 1 delivered, link idle

		r.wless.SetDown(true)
		r.sched.RunFor(time.Second)
		client.Write(pattern(20_000)) // burst 2 during the outage
		r.sched.RunFor(19 * time.Second)
		r.wless.SetDown(false)
		reconnect := r.sched.Now()
		r.sched.RunFor(120 * time.Second)
		if rcvd.Len() != 40_000 {
			t.Fatalf("burst 2 never fully arrived (zwsm=%v): %d bytes, stats %+v",
				withZWSM, rcvd.Len(), client.Stats())
		}
		return doneAt.Sub(reconnect), client.Stats()
	}
	rZ, stZ := run(true)
	rP, stP := run(false)
	t.Logf("zwsm: restart %v, timeouts=%d probes=%d zerowin=%d; plain: restart %v, timeouts=%d",
		rZ, stZ.Timeouts, stZ.PersistProbes, stZ.ZeroWindowSeen, rP, stP.Timeouts)
	if stZ.ZeroWindowSeen == 0 {
		t.Errorf("zwsm: sender never saw the zero window (stats %+v)", stZ)
	}
	if stZ.Timeouts >= stP.Timeouts {
		t.Errorf("zwsm did not reduce sender timeouts: %d vs %d", stZ.Timeouts, stP.Timeouts)
	}
	if rZ >= rP {
		t.Errorf("zwsm restart (%v) not faster than plain (%v)", rZ, rP)
	}
}

func TestDiscardDropsEnhancementLayers(t *testing.T) {
	r := newRig(t, rigOpts{wireless: netsim.LinkConfig{Bandwidth: 5e6, Delay: 5 * time.Millisecond}})
	r.cmd(t, r.proxyA, "load discard")
	r.cmd(t, r.proxyA, "add discard 11.11.10.99 4000 11.11.10.10 4001 1")

	layerCount := map[uint8]int{}
	r.mUDP.Bind(4001, func(src ip.Addr, sp uint16, payload []byte) {
		f, err := media.UnmarshalFrame(payload)
		if err != nil {
			t.Errorf("bad frame: %v", err)
			return
		}
		layerCount[f.Layer]++
	})
	src := media.NewLayeredSource(4, 200, 3)
	var tick func()
	sent := 0
	tick = func() {
		for _, f := range src.Next() {
			r.wUDP.Send(4000, mobileAddr, 4001, media.MarshalFrame(f))
		}
		sent++
		if sent < 50 {
			r.sched.After(40*time.Millisecond, tick)
		}
	}
	r.sched.After(0, tick)
	r.sched.RunFor(10 * time.Second)
	if layerCount[0] != 50 || layerCount[1] != 50 {
		t.Fatalf("base/first layers incomplete: %v", layerCount)
	}
	if layerCount[2] != 0 || layerCount[3] != 0 {
		t.Fatalf("enhancement layers leaked through: %v", layerCount)
	}
	st, ok := filters.DiscardStatsFor(filter.Key{SrcIP: wiredAddr, SrcPort: 4000, DstIP: mobileAddr, DstPort: 4001})
	if !ok || st.Discarded != 100 || st.Passed != 100 {
		t.Fatalf("discard stats: %+v ok=%v", st, ok)
	}
}

func TestTranslateMonoTiles(t *testing.T) {
	r := newRig(t, rigOpts{wireless: netsim.LinkConfig{Bandwidth: 5e6, Delay: 5 * time.Millisecond}})
	r.cmd(t, r.proxyA, "load translate")
	r.cmd(t, r.proxyA, "add translate 11.11.10.99 4000 11.11.10.10 4001 mono")

	var rcvdTiles []media.ImageTile
	var rcvdBytes int
	r.mUDP.Bind(4001, func(src ip.Addr, sp uint16, payload []byte) {
		tile, err := media.UnmarshalTile(payload)
		if err != nil {
			t.Errorf("bad tile: %v", err)
			return
		}
		pix := make([]byte, len(tile.Pixels))
		copy(pix, tile.Pixels)
		tile.Pixels = pix
		rcvdTiles = append(rcvdTiles, tile)
		rcvdBytes += len(payload)
	})
	tiles := media.TestImageTiles(64, 64, 8, 5)
	sentBytes := 0
	for _, tile := range tiles {
		b, err := media.MarshalTile(tile)
		if err != nil {
			t.Fatal(err)
		}
		sentBytes += len(b)
		r.wUDP.Send(4000, mobileAddr, 4001, b)
	}
	r.sched.RunFor(10 * time.Second)
	if len(rcvdTiles) != len(tiles) {
		t.Fatalf("received %d of %d tiles", len(rcvdTiles), len(tiles))
	}
	for i, tile := range rcvdTiles {
		if tile.Mode != media.ModeMono {
			t.Fatalf("tile %d still RGB", i)
		}
		want := media.ToMono(tiles[i])
		if !bytes.Equal(tile.Pixels, want.Pixels) {
			t.Fatalf("tile %d luma mismatch", i)
		}
	}
	if rcvdBytes*2 > sentBytes {
		t.Fatalf("translation saved too little: %d -> %d bytes", sentBytes, rcvdBytes)
	}
}

func TestTranslateASCII(t *testing.T) {
	r := newRig(t, rigOpts{wireless: netsim.LinkConfig{}})
	r.cmd(t, r.proxyA, "load translate")
	r.cmd(t, r.proxyA, "add translate 11.11.10.99 4000 11.11.10.10 4001 ascii")

	var got []byte
	r.mUDP.Bind(4001, func(src ip.Addr, sp uint16, payload []byte) {
		got = append(got, payload...)
	})
	rich := media.EncodeRich("Hello, mobile world!", 0x42)
	r.wUDP.Send(4000, mobileAddr, 4001, rich)
	r.sched.RunFor(time.Second)
	if string(got) != "Hello, mobile world!" {
		t.Fatalf("ascii translation got %q", got)
	}
}

func TestCacheFilterAnswersRepeats(t *testing.T) {
	// The mobile fetches documents from the wired server; the cache
	// filter on the proxy answers repeats locally (§5.2's partitioned
	// application class).
	r := newRig(t, rigOpts{wireless: netsim.LinkConfig{Bandwidth: 2e6, Delay: 10 * time.Millisecond}})
	r.cmd(t, r.proxyA, "load cache")
	// Request direction: mobile -> wired server port 6000.
	r.cmd(t, r.proxyA, "add cache 11.11.10.10 6001 11.11.10.99 6000 64")

	// Wired fetch server.
	served := 0
	r.wUDP.Bind(6000, func(src ip.Addr, sp uint16, payload []byte) {
		key, _, isReq, ok := filters.DecodeFetch(payload)
		if !ok || !isReq {
			return
		}
		served++
		body := bytes.Repeat([]byte(key), 100)
		r.wUDP.Send(6000, src, sp, filters.EncodeFetchResponse(key, body))
	})
	// Mobile client.
	type rcv struct {
		key  string
		body []byte
		at   sim.Time
	}
	var got []rcv
	r.mUDP.Bind(6001, func(_ ip.Addr, _ uint16, payload []byte) {
		key, body, _, ok := filters.DecodeFetch(payload)
		if ok {
			got = append(got, rcv{key, append([]byte(nil), body...), r.sched.Now()})
		}
	})
	send := func(key string) { r.mUDPSend(6001, wiredAddr, 6000, filters.EncodeFetchRequest(key)) }

	send("doc-a")
	r.sched.RunFor(time.Second)
	send("doc-a") // repeat: answered by the proxy
	r.sched.RunFor(time.Second)
	send("doc-b")
	r.sched.RunFor(time.Second)

	if len(got) != 3 {
		t.Fatalf("mobile received %d responses", len(got))
	}
	if served != 2 {
		t.Fatalf("server served %d requests, want 2 (one absorbed by the cache)", served)
	}
	if !bytes.Equal(got[0].body, got[1].body) || got[0].key != "doc-a" {
		t.Fatal("cached response differs from the original")
	}
	k := filter.Key{SrcIP: mobileAddr, SrcPort: 6001, DstIP: wiredAddr, DstPort: 6000}
	st, ok := filters.CacheStatsFor(k)
	if !ok || st.Hits != 1 || st.Misses != 2 || st.Stored != 2 {
		t.Fatalf("cache stats: %+v ok=%v", st, ok)
	}
}

// metricEnv wraps the proxy rig so filters can be tested against a
// controllable metric source... the real rig's proxy already
// implements filter.Metrics once a source is set; this test drives the
// adaptive-discard filter through changing link conditions.
func TestAdaptiveDiscardFollowsBandwidth(t *testing.T) {
	r := newRig(t, rigOpts{wireless: netsim.LinkConfig{Bandwidth: 4e6, Delay: 5 * time.Millisecond, QueueLen: 30}})
	// Wire the proxy-host metrics: interface 1 is the wireless egress
	// (interface 0 is the wired side).
	wlessIface := r.wless.IfaceA()
	r.proxyA.SetMetricSource(func(name string, index int) (float64, bool) {
		switch name {
		case "ifSpeed":
			return float64(r.wless.ConfigAB().Bandwidth), true
		case "ifOutOctets":
			_ = wlessIface
			return float64(r.wless.StatsAB().Bytes), true
		}
		return 0, false
	})
	r.cmd(t, r.proxyA, "load adiscard")
	r.cmd(t, r.proxyA, "add adiscard 11.11.10.99 4000 11.11.10.10 4001 0 3")

	layerCount := map[uint8]int{}
	r.mUDP.Bind(4001, func(_ ip.Addr, _ uint16, payload []byte) {
		f, err := media.UnmarshalFrame(payload)
		if err == nil {
			layerCount[f.Layer]++
		}
	})
	// 4 layers of 300B base at 25fps: full stream ≈ 0.3+0.6+1.2+2.4KB
	// per 40ms ≈ 900 kb/s — fits in 4 Mb/s, saturates 600 kb/s.
	src := media.NewLayeredSource(4, 300, 9)
	sent := 0
	var tick func()
	tick = func() {
		for _, f := range src.Next() {
			r.mUDPRigSendWired(4000, 4001, media.MarshalFrame(f))
		}
		sent++
		if sent < 500 {
			r.sched.After(40*time.Millisecond, tick)
		}
	}
	r.sched.After(0, tick)

	// Phase 1 (4 Mb/s): everything fits, threshold stays at the ceiling.
	r.sched.RunFor(5 * time.Second)
	k := filter.Key{SrcIP: wiredAddr, SrcPort: 4000, DstIP: mobileAddr, DstPort: 4001}
	st, ok := filters.ADiscardStatsFor(k)
	if !ok {
		t.Fatal("no adiscard instance")
	}
	if st.CurrentMaxLayer != 3 {
		t.Fatalf("phase 1 threshold %d, want 3 (link uncongested)", st.CurrentMaxLayer)
	}

	// Phase 2: the mobile moves to a 600 kb/s cell.
	r.wless.Shape(netsim.DirBoth, netsim.Shaping{Fields: netsim.ShapeBandwidth, Bandwidth: 600e3})
	r.sched.RunFor(6 * time.Second)
	st, _ = filters.ADiscardStatsFor(k)
	if st.CurrentMaxLayer >= 3 {
		t.Fatalf("phase 2 threshold %d, want < 3 (link saturated)", st.CurrentMaxLayer)
	}
	if st.Adaptations == 0 || st.Discarded == 0 {
		t.Fatalf("no adaptation happened: %+v", st)
	}
	low := st.CurrentMaxLayer

	// Phase 3: back to a fast cell — layers are restored.
	r.wless.Shape(netsim.DirBoth, netsim.Shaping{Fields: netsim.ShapeBandwidth, Bandwidth: 4e6})
	r.sched.RunFor(6 * time.Second)
	st, _ = filters.ADiscardStatsFor(k)
	if st.CurrentMaxLayer <= low {
		t.Fatalf("phase 3 threshold %d did not recover from %d", st.CurrentMaxLayer, low)
	}
	if layerCount[0] == 0 {
		t.Fatal("base layer never delivered")
	}
}

func TestCompAndRdropComposeUnderTTSF(t *testing.T) {
	// Two payload-modifying services on the same stream: rdrop excises
	// segments, comp shrinks the survivors; the TTSF must keep both
	// endpoints consistent, and the mobile-side proxy decompresses
	// whatever survives.
	r := newRig(t, rigOpts{
		doubleProxy: true,
		wireless:    netsim.LinkConfig{Bandwidth: 2e6, Delay: 15 * time.Millisecond},
	})
	for _, c := range []string{"load tcp", "load ttsf", "load rdrop", "load comp", "load launcher",
		"add launcher 11.11.10.99 0 11.11.10.10 0 tcp ttsf rdrop:30 comp:6"} {
		r.cmd(t, r.proxyA, c)
	}
	for _, c := range []string{"load tcp", "load ttsf", "load decomp", "load launcher",
		"add launcher 11.11.10.99 0 11.11.10.10 0 tcp ttsf decomp"} {
		r.cmd(t, r.proxyB, c)
	}
	payload := pattern(150_000)
	got, client := r.transfer(t, payload, 600*time.Second)
	if client.State() != tcp.StateClosed && client.State() != tcp.StateTimeWait {
		t.Fatalf("sender did not complete: %v (stats %+v)", client.State(), client.Stats())
	}
	if len(got) == 0 || len(got) >= len(payload) {
		t.Fatalf("delivered %d of %d (expected a proper subset)", len(got), len(payload))
	}
	if !isChunkSubsequence(got, payload) {
		t.Fatal("delivered bytes are not a subsequence of the original")
	}
	t.Logf("rdrop:30 + comp over double proxy: delivered %d of %d bytes, sender clean",
		len(got), len(payload))
}

func TestServiceCompositionViaServiceCommand(t *testing.T) {
	// §10.2.1 composition used end to end: define a 'shrink' service
	// and apply it like a filter.
	r := newRig(t, rigOpts{wireless: netsim.LinkConfig{Bandwidth: 5e6, Delay: 10 * time.Millisecond}})
	for _, c := range []string{"load tcp", "load ttsf", "load rdrop",
		"service shrink tcp ttsf rdrop:50",
		"add shrink 11.11.10.99 0 11.11.10.10 0"} {
		r.cmd(t, r.proxyA, c)
	}
	payload := pattern(100_000)
	got, client := r.transfer(t, payload, 600*time.Second)
	if client.State() != tcp.StateClosed && client.State() != tcp.StateTimeWait {
		t.Fatalf("sender did not complete: %v", client.State())
	}
	if len(got) >= len(payload) || len(got) == 0 {
		t.Fatalf("service composition ineffective: %d of %d", len(got), len(payload))
	}
}
