package filters

import (
	"fmt"
	"strconv"

	"repro/internal/filter"
	"repro/internal/media"
)

// discard implements hierarchical discard (thesis §8.3.2): layered
// real-time media streams carry a base layer plus enhancement layers;
// under low wireless QoS the proxy drops the enhancement layers above
// a threshold so the base layer keeps arriving on time.
//
// It services UDP streams carrying media.Frame payloads.
// Argument: highest layer to keep (default 0 = base layer only).
type discard struct{}

// NewDiscard returns the discard filter factory.
func NewDiscard() filter.Factory { return &discard{} }

func (*discard) Name() string              { return "discard" }
func (*discard) Priority() filter.Priority { return filter.Low }
func (*discard) Description() string {
	return "hierarchical discard of layered media above a layer threshold"
}

// DiscardStats counts the filter's decisions for the harness.
type DiscardStats struct {
	Passed, Discarded           int64
	BytesPassed, BytesDiscarded int64
}

// discardInstances exposes per-stream stats, keyed by forward key.
var discardInstances = map[filter.Key]*discardInst{}

// DiscardStatsFor returns the stats of the discard instance on k.
func DiscardStatsFor(k filter.Key) (DiscardStats, bool) {
	if inst, ok := discardInstances[k]; ok {
		return inst.stats, true
	}
	return DiscardStats{}, false
}

type discardInst struct {
	maxLayer uint8
	stats    DiscardStats
}

func (f *discard) New(env filter.Env, k filter.Key, args []string) error {
	maxLayer := 0
	if len(args) > 0 {
		v, err := strconv.Atoi(args[0])
		if err != nil || v < 0 || v > 255 {
			return fmt.Errorf("discard: bad layer threshold %q", args[0])
		}
		maxLayer = v
	}
	inst := &discardInst{maxLayer: uint8(maxLayer)}
	_, err := env.Attach(k, filter.Hooks{
		Filter: "discard", Priority: filter.Low,
		Out: func(p *filter.Packet) {
			if p.Dropped() || p.UDP == nil {
				return
			}
			frame, err := media.UnmarshalFrame(p.UDP.Payload)
			if err != nil {
				return // not a media frame; leave it alone
			}
			if frame.Layer > inst.maxLayer {
				inst.stats.Discarded++
				inst.stats.BytesDiscarded += int64(len(p.Raw))
				p.Drop()
				return
			}
			inst.stats.Passed++
			inst.stats.BytesPassed += int64(len(p.Raw))
		},
		OnClose: func() { delete(discardInstances, k) },
	})
	if err != nil {
		return err
	}
	discardInstances[k] = inst
	return nil
}
