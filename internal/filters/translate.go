package filters

import (
	"fmt"

	"repro/internal/filter"
	"repro/internal/media"
)

// translate implements data-type translation (thesis §8.3.3):
// converting data to a more compact representation whose semantic
// content survives — "images can be converted from colour to
// monochrome, or text from PostScript to ASCII".
//
// It services UDP streams. Modes:
//
//	mono  — media.ImageTile payloads: RGB → monochrome (3× smaller)
//	ascii — rich-text payloads: strip style bytes (2× smaller)
type translate struct{}

// NewTranslate returns the translate filter factory.
func NewTranslate() filter.Factory { return &translate{} }

func (*translate) Name() string              { return "translate" }
func (*translate) Priority() filter.Priority { return filter.Low }
func (*translate) Description() string {
	return "data-type translation: 'mono' (RGB→mono tiles) or 'ascii' (rich text→ASCII)"
}

// TranslateStats counts conversion work for the harness.
type TranslateStats struct {
	Converted         int64
	BytesIn, BytesOut int64
}

// translateInstances exposes per-stream stats, keyed by forward key.
var translateInstances = map[filter.Key]*translateInst{}

// TranslateStatsFor returns the stats of the translate instance on k.
func TranslateStatsFor(k filter.Key) (TranslateStats, bool) {
	if inst, ok := translateInstances[k]; ok {
		return inst.stats, true
	}
	return TranslateStats{}, false
}

type translateInst struct {
	mode  string
	stats TranslateStats
}

func (f *translate) New(env filter.Env, k filter.Key, args []string) error {
	mode := "mono"
	if len(args) > 0 {
		mode = args[0]
	}
	if mode != "mono" && mode != "ascii" {
		return fmt.Errorf("translate: unknown mode %q (want mono or ascii)", mode)
	}
	inst := &translateInst{mode: mode}
	_, err := env.Attach(k, filter.Hooks{
		Filter: "translate", Priority: filter.Low,
		Out: func(p *filter.Packet) {
			if p.Dropped() || p.UDP == nil || len(p.UDP.Payload) == 0 {
				return
			}
			in := p.UDP.Payload
			var out []byte
			switch inst.mode {
			case "mono":
				tile, err := media.UnmarshalTile(in)
				if err != nil || tile.Mode != media.ModeRGB {
					return
				}
				conv, err := media.MarshalTile(media.ToMono(tile))
				if err != nil {
					return
				}
				out = conv
			case "ascii":
				out = media.RichToASCII(in)
			}
			inst.stats.Converted++
			inst.stats.BytesIn += int64(len(in))
			inst.stats.BytesOut += int64(len(out))
			p.UDP.Payload = out
			p.MarkDirty()
			// UDP streams have no tcp bookkeeping filter to repair
			// checksums; this filter re-marshals its own work.
			if err := p.Remarshal(); err != nil {
				env.Logf("translate: remarshal: %v", err)
				p.Drop()
			}
		},
		OnClose: func() { delete(translateInstances, k) },
	})
	if err != nil {
		return err
	}
	translateInstances[k] = inst
	return nil
}
