package filters

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"repro/internal/filter"
	"repro/internal/ip"
	"repro/internal/sim"
	"repro/internal/tcp"
)

func TestMwinSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 200; trial++ {
		src := &mwinInst{
			haveAck: rng.Intn(2) == 1,
			active:  rng.Intn(2) == 1,
			lastAck: rng.Uint32(),
			window:  uint16(rng.Intn(1 << 16)),
		}
		snap, err := src.SnapshotState()
		if err != nil {
			t.Fatalf("trial %d: snapshot: %v", trial, err)
		}
		dst := &mwinInst{ackedBytes: 999}
		if err := dst.RestoreState(snap); err != nil {
			t.Fatalf("trial %d: restore: %v", trial, err)
		}
		if dst.haveAck != src.haveAck || dst.active != src.active ||
			dst.lastAck != src.lastAck || dst.window != src.window {
			t.Fatalf("trial %d: mismatch: got %+v, want %+v", trial, dst, src)
		}
		if dst.ackedBytes != 0 {
			t.Fatal("restore must reset the partial-interval ACK count")
		}
		snap2, err := dst.SnapshotState()
		if err != nil {
			t.Fatalf("trial %d: re-snapshot: %v", trial, err)
		}
		if !bytes.Equal(snap, snap2) {
			t.Fatalf("trial %d: round trip not byte-exact", trial)
		}
	}
}

func TestMwinRestoreErrors(t *testing.T) {
	snap, err := (&mwinInst{active: true, window: 8192, lastAck: 12345}).SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(snap); n++ {
		if err := (&mwinInst{}).RestoreState(snap[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	if err := (&mwinInst{}).RestoreState(append(append([]byte(nil), snap...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

// stubEnv implements filter.Env and nothing else — in particular not
// FlowSampler — so it exercises mwin's fail-open path.
type stubEnv struct {
	sched *sim.Scheduler
	hooks []filter.Hooks
}

func (e *stubEnv) Clock() *sim.Scheduler { return e.sched }
func (e *stubEnv) Attach(k filter.Key, h filter.Hooks) (func(), error) {
	e.hooks = append(e.hooks, h)
	return func() {}, nil
}
func (e *stubEnv) RemoveStream(filter.Key) {}
func (e *stubEnv) Inject([]byte)           {}
func (e *stubEnv) Logf(string, ...any)     {}

// TestMwinPassiveWithoutFlowSampler: with no flow log wired into the
// Env, mwin must attach but never modify a packet (fail open).
func TestMwinPassiveWithoutFlowSampler(t *testing.T) {
	env := &stubEnv{sched: sim.NewScheduler(1)}
	k := filter.Key{
		SrcIP: ip.MustParseAddr("11.11.10.99"), SrcPort: 7,
		DstIP: ip.MustParseAddr("11.11.10.10"), DstPort: 5001,
	}
	if err := NewMWin().New(env, k, nil); err != nil {
		t.Fatal(err)
	}
	if len(env.hooks) != 1 {
		t.Fatalf("attached %d hooks, want 1", len(env.hooks))
	}
	env.sched.RunFor(5 * time.Second) // many rolls with no sampler
	seg := tcp.Segment{
		SrcPort: 5001, DstPort: 7, Flags: tcp.FlagACK, Ack: 5000, Window: 65535,
	}
	h := ip.Header{TTL: 64, Protocol: ip.ProtoTCP,
		Src: k.DstIP, Dst: k.SrcIP}
	raw, err := h.Marshal(seg.Marshal(h.Src, h.Dst))
	if err != nil {
		t.Fatal(err)
	}
	p, err := filter.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	env.hooks[0].Out(p)
	if p.TCP.Window != 65535 || p.Dirty() {
		t.Fatalf("samplerless mwin modified the packet: window=%d dirty=%v",
			p.TCP.Window, p.Dirty())
	}
}

func TestMwinBadArgs(t *testing.T) {
	env := &stubEnv{sched: sim.NewScheduler(1)}
	k := filter.Key{SrcIP: 1, SrcPort: 2, DstIP: 3, DstPort: 4}
	for _, args := range [][]string{{"0.5"}, {"17"}, {"x"}, {"2", "0"}, {"2", "-5"}, {"2", "ms"}} {
		if err := NewMWin().New(env, k, args); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}
