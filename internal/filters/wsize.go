package filters

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/filter"
	"repro/internal/ip"
	"repro/internal/sim"
	"repro/internal/tcp"
)

// wsize implements the BSSP-style services of thesis §8.2.2 by
// rewriting the TCP receive-window field of packets intercepted at the
// base station:
//
//   - prioritization — "wsize <key> cap <bytes>": clamps the window
//     advertised to the sender of the keyed stream, slowing
//     low-priority streams so priority streams get more bandwidth and
//     smaller delay;
//   - disconnection management — "wsize <key> zwsm [timeout-ms]":
//     when the mobile falls silent, sends zero-window-size messages
//     (ZWSMs) to the wired sender so the connection stalls in persist
//     mode instead of backing off exponentially, and lets the window
//     reopen when the mobile returns.
//
// The key identifies the *data* direction (wired sender → mobile); the
// filter rewrites the reverse-direction ACKs, which is where the
// sender reads its peer's window.
//
// ZWSM ACKs never acknowledge data the mobile has not acknowledged
// itself, preserving end-to-end semantics (§8.2.3).
type wsize struct{}

// NewWSize returns the wsize filter factory.
func NewWSize() filter.Factory { return &wsize{} }

func (*wsize) Name() string              { return "wsize" }
func (*wsize) Priority() filter.Priority { return filter.Lowest }
func (*wsize) Description() string {
	return "TCP window rewriting: 'cap <bytes>' prioritization or 'zwsm [ms]' disconnection management"
}

func (f *wsize) New(env filter.Env, k filter.Key, args []string) error {
	mode := "cap"
	if len(args) > 0 {
		mode = args[0]
	}
	switch mode {
	case "cap":
		capBytes := 4096
		if len(args) > 1 {
			v, err := strconv.Atoi(args[1])
			if err != nil || v < 0 || v > 65535 {
				return fmt.Errorf("wsize: bad window cap %q", args[1])
			}
			capBytes = v
		}
		return f.newCap(env, k, uint16(capBytes))
	case "zwsm":
		timeout := 300 * time.Millisecond
		if len(args) > 1 {
			ms, err := strconv.Atoi(args[1])
			if err != nil || ms <= 0 {
				return fmt.Errorf("wsize: bad zwsm timeout %q", args[1])
			}
			timeout = time.Duration(ms) * time.Millisecond
		}
		return f.newZWSM(env, k, timeout)
	default:
		return fmt.Errorf("wsize: unknown mode %q (want cap or zwsm)", mode)
	}
}

// wsizeCapInst is one prioritization instance: the configured clamp is
// its whole per-stream state, snapshottable for live migration.
type wsizeCapInst struct {
	capBytes uint16
}

func (w *wsizeCapInst) out(p *filter.Packet) {
	if p.TCP == nil || p.TCP.Flags&tcp.FlagACK == 0 {
		return
	}
	if p.TCP.Window > w.capBytes {
		p.TCP.Window = w.capBytes
		p.MarkDirty()
	}
}

// SnapshotState implements filter.StateSnapshotter: the clamp as two
// big-endian bytes.
func (w *wsizeCapInst) SnapshotState() ([]byte, error) {
	return []byte{byte(w.capBytes >> 8), byte(w.capBytes)}, nil
}

// RestoreState implements filter.StateSnapshotter.
func (w *wsizeCapInst) RestoreState(b []byte) error {
	if len(b) != 2 {
		return fmt.Errorf("wsize: cap state needs 2 bytes, got %d", len(b))
	}
	w.capBytes = uint16(b[0])<<8 | uint16(b[1])
	return nil
}

var _ filter.StateSnapshotter = (*wsizeCapInst)(nil)

// newCap attaches the prioritization service: clamp the window in
// ACKs flowing back to the keyed stream's sender.
func (f *wsize) newCap(env filter.Env, k filter.Key, capBytes uint16) error {
	inst := &wsizeCapInst{capBytes: capBytes}
	_, err := env.Attach(k.Reverse(), filter.Hooks{
		Filter: "wsize", Priority: filter.Lowest,
		Out:   inst.out,
		State: inst,
	})
	return err
}

// zwsmInst is one disconnection-management instance.
type zwsmInst struct {
	env     filter.Env
	fwd     filter.Key // wired sender → mobile
	timeout time.Duration

	lastFromMobile sim.Time
	stalled        bool
	// Template for crafting ZWSMs: the last ACK seen from the mobile.
	haveTemplate bool
	tmplSeq      uint32 // mobile's snd.nxt
	tmplAck      uint32 // mobile's cumulative ack — never advanced by us
	tmplWindow   uint16
	srcIP, dstIP ip.Addr
	timer        *sim.Timer
	closed       bool

	// Stats for experiments.
	ZWSMsSent int64
}

func (f *wsize) newZWSM(env filter.Env, k filter.Key, timeout time.Duration) error {
	inst := &zwsmInst{env: env, fwd: k, timeout: timeout, lastFromMobile: env.Clock().Now()}
	var err error
	// The template observer runs as an out method above the TTSF so
	// the captured seq/ack values are in the wired sender's sequence
	// space even when a TTSF is remapping the stream.
	detachRev, err := env.Attach(k.Reverse(), filter.Hooks{
		Filter: "wsize", Priority: PriorityTTSF + 5,
		Out: inst.fromMobile,
	})
	if err != nil {
		return err
	}
	_, err = env.Attach(k, filter.Hooks{
		Filter: "wsize", Priority: filter.Lowest,
		In:      inst.fromWired,
		OnClose: func() { inst.closed = true; inst.timer.Stop(); detachRev() },
	})
	if err != nil {
		detachRev()
		return err
	}
	inst.armTimer()
	return nil
}

func (inst *zwsmInst) armTimer() {
	if inst.closed {
		return
	}
	inst.timer = inst.env.Clock().After(inst.timeout/2, inst.check)
}

// fromMobile notes mobile liveness and keeps the ZWSM template fresh.
func (inst *zwsmInst) fromMobile(p *filter.Packet) {
	inst.lastFromMobile = inst.env.Clock().Now()
	if p.TCP != nil && p.TCP.Flags&tcp.FlagACK != 0 {
		inst.haveTemplate = true
		inst.tmplSeq = p.TCP.Seq
		inst.tmplAck = p.TCP.Ack
		inst.tmplWindow = p.TCP.Window
		inst.srcIP = p.IP.Src
		inst.dstIP = p.IP.Dst
	}
	if inst.stalled {
		// The mobile is back; its own ACK (passing through right now)
		// re-opens the window at the sender.
		inst.stalled = false
		inst.env.Logf("wsize/zwsm: mobile back, window restored on %v", inst.fwd)
	}
}

// fromWired only matters to keep the filter cheap: nothing to do, but
// the hook documents the attachment in reports.
func (inst *zwsmInst) fromWired(p *filter.Packet) {}

// check fires periodically: if the mobile has been silent past the
// timeout while we hold a template, stall the sender with a ZWSM.
func (inst *zwsmInst) check() {
	if inst.closed {
		return
	}
	defer inst.armTimer()
	silent := inst.env.Clock().Now().Sub(inst.lastFromMobile)
	if silent < inst.timeout || !inst.haveTemplate {
		return
	}
	if !inst.stalled {
		inst.env.Logf("wsize/zwsm: mobile silent %v on %v, sending ZWSM", silent, inst.fwd)
	}
	inst.stalled = true
	inst.sendZWSM()
}

// sendZWSM injects a zero-window ACK toward the wired sender, built
// from the mobile's last genuine ACK so no unseen data is
// acknowledged.
func (inst *zwsmInst) sendZWSM() {
	seg := tcp.Segment{
		SrcPort: inst.fwd.DstPort, DstPort: inst.fwd.SrcPort,
		Seq: inst.tmplSeq, Ack: inst.tmplAck,
		Flags: tcp.FlagACK, Window: 0,
	}
	h := ip.Header{TTL: 64, Protocol: ip.ProtoTCP, Src: inst.srcIP, Dst: inst.dstIP}
	raw, err := h.Marshal(seg.Marshal(inst.srcIP, inst.dstIP))
	if err != nil {
		inst.env.Logf("wsize/zwsm: marshal: %v", err)
		return
	}
	inst.ZWSMsSent++
	inst.env.Inject(raw)
}
