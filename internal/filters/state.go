package filters

import (
	"encoding/binary"
	"errors"
)

// errStateTruncated marks a filter state snapshot that ends before the
// fields it declares — the decoder never reads past the buffer and
// never panics on short input.
var errStateTruncated = errors.New("filters: truncated state snapshot")

// stateWriter appends big-endian fields to a snapshot buffer.
type stateWriter struct{ b []byte }

func (w *stateWriter) u8(v byte)    { w.b = append(w.b, v) }
func (w *stateWriter) u16(v uint16) { w.b = binary.BigEndian.AppendUint16(w.b, v) }
func (w *stateWriter) u32(v uint32) { w.b = binary.BigEndian.AppendUint32(w.b, v) }
func (w *stateWriter) i64(v int64)  { w.b = binary.BigEndian.AppendUint64(w.b, uint64(v)) }
func (w *stateWriter) bytes(v []byte) {
	w.u32(uint32(len(v)))
	w.b = append(w.b, v...)
}

// stateReader consumes the fields of a snapshot with bounds checking:
// the first short read latches err and every later read returns zero
// values, so decoders can parse straight-line and check err once.
type stateReader struct {
	b   []byte
	err error
}

func (r *stateReader) take(n int) []byte {
	if r.err != nil || len(r.b) < n {
		r.err = errStateTruncated
		return nil
	}
	v := r.b[:n]
	r.b = r.b[n:]
	return v
}

func (r *stateReader) u8() byte {
	v := r.take(1)
	if v == nil {
		return 0
	}
	return v[0]
}

func (r *stateReader) u16() uint16 {
	v := r.take(2)
	if v == nil {
		return 0
	}
	return binary.BigEndian.Uint16(v)
}

func (r *stateReader) u32() uint32 {
	v := r.take(4)
	if v == nil {
		return 0
	}
	return binary.BigEndian.Uint32(v)
}

func (r *stateReader) i64() int64 {
	v := r.take(8)
	if v == nil {
		return 0
	}
	return int64(binary.BigEndian.Uint64(v))
}

// bytes reads a u32 length-prefixed byte string. The declared length is
// validated against the remaining buffer before any copy, so a lying
// prefix cannot force an over-allocation.
func (r *stateReader) bytes() []byte {
	n := int(r.u32())
	if r.err != nil || len(r.b) < n {
		r.err = errStateTruncated
		return nil
	}
	out := make([]byte, n)
	copy(out, r.take(n))
	return out
}

// done reports decode success: no field error and no trailing bytes.
func (r *stateReader) done() error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return errors.New("filters: trailing bytes in state snapshot")
	}
	return nil
}
