// Package filters implements the Comma stream-service filters of
// thesis chapters 5 and 8:
//
//   - tcp: bookkeeping — checksum repair for modified packets and
//     filter-queue teardown at stream close (§5.3.2).
//   - launcher: applies a configured set of services to each new
//     stream matching its wild-card key (§5.3.2).
//   - ttsf: the TCP-Transparency-Support Filter — sequence-space
//     remapping that lets other filters drop, shrink, or grow segment
//     payloads without breaking end-to-end TCP semantics (§8.1).
//   - rdrop: random permanent payload drop, a TTSF demonstration
//     service (§8.1.5).
//   - comp / decomp: transparent payload compression and its inverse,
//     the §8.1.6 example (pair them across a double-proxy deployment).
//   - snoop: TCP-aware link-layer caching with local retransmission
//     and duplicate-ACK suppression (§8.2.1).
//   - wsize: BSSP-style receive-window rewriting — stream
//     prioritization and zero-window-size-message (ZWSM)
//     disconnection management (§8.2.2).
//   - mwin: milliProxy-style delay-aware window sizing — the wsize
//     idea generalized from a static clamp to a controller tracking
//     the measured wireless-side bandwidth-delay product (PAPERS.md).
//   - discard: hierarchical discard of layered real-time media
//     (§8.3.2).
//   - cache: proxy-side response cache for the toy fetch protocol —
//     the application-partitioning service class of §5.2.
//   - adiscard: EEM-driven adaptive hierarchical discard — the
//     adaptive service the monitor chapter exists to enable.
//   - translate: data-type translation of media streams, e.g. colour
//     to monochrome (§8.3.3).
package filters

import "repro/internal/filter"

// PriorityTTSF sits between the service filters (Low/Normal) and the
// tcp bookkeeping filter (High): on the out queue the TTSF rewrites
// sequence numbers after the services have modified the payload, and
// the tcp filter repairs checksums after that.
const PriorityTTSF filter.Priority = 60

// RegisterAll registers every filter in this package with the catalog,
// the moral equivalent of a directory of loadable filter libraries.
func RegisterAll(c *filter.Catalog) {
	c.Register("tcp", func() filter.Factory { return NewTCPFilt() })
	c.Register("launcher", func() filter.Factory { return NewLauncher() })
	c.Register("rdrop", func() filter.Factory { return NewRDrop() })
	c.Register("wsize", func() filter.Factory { return NewWSize() })
	c.Register("mwin", func() filter.Factory { return NewMWin() })
	c.Register("snoop", func() filter.Factory { return NewSnoop() })
	c.Register("ttsf", func() filter.Factory { return NewTTSF() })
	c.Register("comp", func() filter.Factory { return NewCompress() })
	c.Register("decomp", func() filter.Factory { return NewDecompress() })
	c.Register("discard", func() filter.Factory { return NewDiscard() })
	c.Register("cache", func() filter.Factory { return NewCache() })
	c.Register("adiscard", func() filter.Factory { return NewADiscard() })
	c.Register("translate", func() filter.Factory { return NewTranslate() })
}
